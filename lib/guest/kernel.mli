(** The HiTactix-like guest RTOS.

    A small interrupt-driven kernel, written in LWM-32 assembly through the
    {!Vmm_hw.Asm} eDSL, that implements the paper's evaluation workload:
    read segments from the SCSI disks at a constant rate (timer-paced,
    round-robin across targets), split each segment into MTU-sized UDP
    packets and transmit them on the gigabit NIC.  The {e same binary} runs
    on bare hardware (ring 0, real devices), under the lightweight monitor
    (deprivileged, PIC/PIT emulated, SCSI/NIC direct) and under the hosted
    full VMM (everything emulated) — exactly the comparison of Fig 3.1.

    The kernel keeps its statistics in a fixed counter block that the host
    harness reads from guest memory. *)

type config = {
  rate_mbps : float;  (** aggregate target transfer rate; 0 = idle *)
  segment_bytes : int;  (** per-disk read size, <= 512 KiB *)
  payload_bytes : int;  (** UDP payload per frame, <= 1458 *)
  disks : int;  (** SCSI targets used, 1-3 *)
  user_mode : bool;
      (** run the streaming application at ring 3: the kernel builds
          identity page tables with per-region user bits, enables paging,
          and the app packetizes in user space, crossing into the kernel
          through wait-segment and send system calls — the full
          application / OS / monitor protection stack of the paper *)
}

(** The paper's setup: three disks, 64 KiB segments, full-MTU packets. *)
val default_config : rate_mbps:float -> config

(** Entry point address of the built image. *)
val entry : int

(** [build config] assembles the kernel.
    @raise Invalid_argument on out-of-range config values. *)
val build : config -> Vmm_hw.Asm.program

(** {2 Counters} *)

type counters = {
  ticks : int;  (** timer interrupts serviced *)
  segments_issued : int;
  segments_done : int;
  frames_sent : int;
  bytes_sent : int;  (** payload bytes handed to the NIC *)
  reads_skipped : int;  (** pacing ticks that found the disk still busy *)
  nic_full_spins : int;  (** transmit-ring backpressure iterations *)
  tx_acked : int;
  scsi_retries : int;
      (** failed reads re-issued (bounded per segment, linear backoff) *)
  scsi_drops : int;  (** segments abandoned after the retry budget *)
  nic_tx_resets : int;
      (** transmit-ring resets after an exhausted spin budget (the
          driver's escape from a stalled wire; the frame is dropped) *)
}

(** [read_counters mem program] snapshots the guest's counter block. *)
val read_counters : Vmm_hw.Phys_mem.t -> Vmm_hw.Asm.program -> counters

(** [interesting_symbols] — labels a debugger user would set breakpoints
    on, with a short description. *)
val interesting_symbols : (string * string) list
