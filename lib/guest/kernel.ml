module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Machine = Vmm_hw.Machine
module Phys_mem = Vmm_hw.Phys_mem

type config = {
  rate_mbps : float;
  segment_bytes : int;
  payload_bytes : int;
  disks : int;
  user_mode : bool;
}

let default_config ~rate_mbps =
  {
    rate_mbps;
    segment_bytes = 64 * 1024;
    payload_bytes = 1458;
    disks = 3;
    user_mode = false;
  }

let entry = 0x1000
let stack_top = 0x100000
let user_stack_base = 0x180000
let user_stack_top = 0x188000
let disk_buffer_base = 0x200000
let disk_buffer_stride = 0x80000
let packet_buffer = 0x400000
let page_dir = 0x600000
let page_table0 = 0x601000
let page_table1 = 0x602000

(* Counter block offsets (32-bit words). *)
let off_ticks = 0
let off_segs_issued = 4
let off_segs_done = 8
let off_frames = 12
let off_bytes = 16
let off_skipped = 20
let off_nic_spins = 24
let off_tx_acked = 28
let off_next_disk = 32
let off_lba0 = 36
let off_pending = 48
let off_retry0 = 64  (* per-disk retries of the in-flight segment, 3 words *)
let off_backoff0 = 76  (* per-disk cumulative backoff iterations, 3 words *)
let off_scsi_retries = 88
let off_scsi_drops = 92
let off_nic_resets = 96

(* Driver recovery tuning.  The retry budget is per segment (the pacing
   tick resets it when it issues a fresh read).  The NIC spin budget must
   sit far above the healthy worst case — one full serialization wait for
   a ring slot is ~1.6k iterations at gigabit — and far below the
   multi-millisecond stalls the fault plan arms. *)
let scsi_max_retries = 3
let scsi_backoff_unit = 64
let nic_spin_limit = 20_000

(* Ports. *)
let pit = Machine.Ports.pit
let pic = Machine.Ports.pic
let scsi = Machine.Ports.scsi
let nic = Machine.Ports.nic
let scsi_target = scsi
let scsi_lba = scsi + 1
let scsi_count = scsi + 2
let scsi_dma = scsi + 3
let scsi_cmd = scsi + 4
let scsi_status = scsi + 5
let scsi_ack = scsi + 6
let nic_tx_addr = nic
let nic_tx_len = nic + 1
let nic_cmd = nic + 2
let nic_status = nic + 3
let nic_ack = nic + 4

(* Syscall vectors. *)
let sys_send = 48
let sys_wait_segment = 49

let pit_input_hz = 1193182.0

(* One tick issues one segment read on one disk, so the aggregate rate is
   segment_bytes * 8 * ticks_per_sec bits per second. *)
let pit_reload config =
  let ticks_per_sec =
    config.rate_mbps *. 1e6 /. (8.0 *. float_of_int config.segment_bytes)
  in
  let reload = int_of_float (pit_input_hz /. ticks_per_sec +. 0.5) in
  max 2 (min reload 0xFFFFFFF)

let validate config =
  if config.rate_mbps < 0.0 then invalid_arg "Kernel.build: negative rate";
  if config.segment_bytes <= 0 || config.segment_bytes > disk_buffer_stride
  then invalid_arg "Kernel.build: segment_bytes out of range";
  if config.payload_bytes <= 0 || config.payload_bytes > 1458 then
    invalid_arg "Kernel.build: payload_bytes out of range";
  if config.disks < 1 || config.disks > 3 then
    invalid_arg "Kernel.build: disks out of range"

(* Counter update helper using two scratch registers. *)
let bump a ~scratch1 ~scratch2 off =
  Asm.movi a scratch1 (Asm.lbl "counters");
  Asm.ld a scratch2 scratch1 off;
  Asm.addi a scratch2 scratch2 (Asm.imm 1);
  Asm.st a scratch1 off scratch2

(* The completion handlers' error path: disk r2 was just acked with the
   medium-error flag up.  Retry the read up to [scsi_max_retries] times,
   spinning a linear backoff first; past the budget the segment is
   dropped and the pacing moves on.  The lba rewind undoes the advance
   the pacing tick did at issue time, so a retry re-reads the same
   segment.  Clobbers r5-r9 and r11; jumps to [next] when done. *)
let emit_scsi_error_path a config ~next =
  Asm.label a "scsi_error";
  Asm.movi a 11 (Asm.lbl "counters");
  Asm.movi a 5 (Asm.imm 4);
  Asm.mul a 5 2 5;
  Asm.add a 5 5 11 (* r5 = &counters + 4*disk *);
  Asm.ld a 6 5 off_retry0;
  Asm.addi a 6 6 (Asm.imm 1);
  Asm.cmpi a 6 (Asm.imm (scsi_max_retries + 1));
  Asm.jae a (Asm.lbl "scsi_drop");
  Asm.st a 5 off_retry0 6;
  Asm.ld a 7 11 off_scsi_retries;
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.st a 11 off_scsi_retries 7;
  (* linear backoff: retry * unit iterations, accounted per disk *)
  Asm.movi a 7 (Asm.imm scsi_backoff_unit);
  Asm.mul a 7 6 7;
  Asm.ld a 8 5 off_backoff0;
  Asm.add a 8 8 7;
  Asm.st a 5 off_backoff0 8;
  Asm.movi a 8 (Asm.imm 1);
  Asm.label a "scsi_backoff";
  Asm.cmpi a 7 (Asm.imm 0);
  Asm.jz a (Asm.lbl "scsi_reissue");
  Asm.sub a 7 7 8;
  Asm.jmp a (Asm.lbl "scsi_backoff");
  Asm.label a "scsi_reissue";
  Asm.ld a 7 5 off_lba0;
  Asm.movi a 8 (Asm.imm (config.segment_bytes / 512));
  Asm.sub a 7 7 8;
  Asm.st a 5 off_lba0 7;
  Asm.outi a (Asm.imm scsi_target) 2;
  Asm.outi a (Asm.imm scsi_lba) 7;
  Asm.movi a 8 (Asm.imm config.segment_bytes);
  Asm.outi a (Asm.imm scsi_count) 8;
  Asm.movi a 8 (Asm.imm disk_buffer_stride);
  Asm.mul a 8 2 8;
  Asm.addi a 8 8 (Asm.imm disk_buffer_base);
  Asm.outi a (Asm.imm scsi_dma) 8;
  Asm.movi a 8 (Asm.imm 1);
  Asm.outi a (Asm.imm scsi_cmd) 8;
  Asm.jmp a (Asm.lbl next);
  Asm.label a "scsi_drop";
  Asm.movi a 6 (Asm.imm 0);
  Asm.st a 5 off_retry0 6;
  Asm.ld a 7 11 off_scsi_drops;
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.st a 11 off_scsi_drops 7;
  Asm.jmp a (Asm.lbl next)

let emit_iht a ~gates =
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    match List.assoc_opt v gates with
    | Some (target, dpl) ->
      Asm.word a (Asm.lbl target);
      Asm.word a (Asm.imm (1 lor (dpl lsl 3))) (* present, handler ring 0 *)
    | None ->
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
  done

(* Build one UDP frame in the packet buffer.  Register contract (both the
   kernel path and the user application use it): r5 = payload source,
   r6 = bytes remaining, r10 = packet buffer; r7 becomes the payload
   length, r8/r9 are scratch.  [ip_id] says where the sequence number
   comes from: the kernel's frame counter or the app's local register. *)
let emit_frame_build a config ~prefix ~ip_id =
  Asm.movi a 7 (Asm.imm config.payload_bytes);
  Asm.cmp a 6 7;
  Asm.jae a (Asm.lbl (prefix ^ "_len_ok"));
  Asm.mov a 7 6;
  Asm.label a (prefix ^ "_len_ok");
  (* header template *)
  Asm.movi a 8
    (Asm.lbl (if ip_id = `From_counter then "header_template" else "app_header_template"));
  Asm.movi a 9 (Asm.imm Netfmt.header_bytes);
  Asm.copy a 10 8 9;
  (* ip total length = payload + 28 *)
  Asm.addi a 8 7 (Asm.imm 28);
  Asm.movi a 9 (Asm.imm 8);
  Asm.shr a 9 8 9;
  Asm.stb a 10 Netfmt.off_ip_total_len 9;
  Asm.stb a 10 (Netfmt.off_ip_total_len + 1) 8;
  (* ip id = frame sequence number *)
  (match ip_id with
   | `From_counter ->
     Asm.movi a 8 (Asm.lbl "counters");
     Asm.ld a 8 8 off_frames
   | `From_r11 -> Asm.mov a 8 11);
  Asm.movi a 9 (Asm.imm 8);
  Asm.shr a 9 8 9;
  Asm.stb a 10 Netfmt.off_ip_id 9;
  Asm.stb a 10 (Netfmt.off_ip_id + 1) 8;
  (* udp length = payload + 8 *)
  Asm.addi a 8 7 (Asm.imm 8);
  Asm.movi a 9 (Asm.imm 8);
  Asm.shr a 9 8 9;
  Asm.stb a 10 Netfmt.off_udp_len 9;
  Asm.stb a 10 (Netfmt.off_udp_len + 1) 8;
  (* payload copy and checksum *)
  Asm.addi a 8 10 (Asm.imm Netfmt.off_payload);
  Asm.copy a 8 5 7;
  Asm.csum a 9 8 7;
  Asm.movi a 8 (Asm.imm 8);
  Asm.shr a 8 9 8;
  Asm.stb a 10 Netfmt.off_udp_checksum 8;
  Asm.stb a 10 (Netfmt.off_udp_checksum + 1) 9

(* Identity page tables for the low 8 MiB, built by the kernel itself.
   Leaf entries default to supervisor; the regions the application needs
   are re-marked user afterwards. *)
let emit_page_table_setup a =
  (* PDEs: maximally permissive at the directory level *)
  Asm.movi a 1 (Asm.imm page_dir);
  Asm.movi a 2 (Asm.imm (page_table0 lor 0x7));
  Asm.st a 1 0 2;
  Asm.movi a 2 (Asm.imm (page_table1 lor 0x7));
  Asm.st a 1 4 2;
  (* identity leaves: 2048 pages, present|writable *)
  Asm.movi a 1 (Asm.imm 0) (* page index *);
  Asm.movi a 2 (Asm.imm page_table0) (* entry cursor *);
  Asm.label a "pt_fill";
  Asm.movi a 4 (Asm.imm 12);
  Asm.shl a 3 1 4;
  Asm.addi a 3 3 (Asm.imm 0x3);
  Asm.st a 2 0 3;
  Asm.addi a 2 2 (Asm.imm 4);
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.cmpi a 1 (Asm.imm 2048);
  Asm.jb a (Asm.lbl "pt_fill")

let mark_counter = ref 0

(* Set the user bit on the leaf entries covering [start_addr, end_addr). *)
let emit_mark_user a ~start_addr ~end_addr =
  incr mark_counter;
  let loop = Printf.sprintf "mark_user_%d" !mark_counter in
  Asm.movi a 1 (Asm.imm start_addr);
  Asm.label a loop;
  Asm.movi a 4 (Asm.imm 12);
  Asm.shr a 2 1 4;
  Asm.movi a 4 (Asm.imm 4);
  Asm.mul a 2 2 4;
  Asm.addi a 2 2 (Asm.imm page_table0);
  Asm.ld a 3 2 0;
  Asm.movi a 4 (Asm.imm 0x4);
  Asm.or_ a 3 3 4;
  Asm.st a 2 0 3;
  Asm.addi a 1 1 (Asm.imm 0x1000);
  Asm.cmpi a 1 (Asm.imm end_addr);
  Asm.jb a (Asm.lbl loop)

let emit_marked_operand_regions a =
  emit_mark_user a ~start_addr:user_stack_base ~end_addr:user_stack_top;
  emit_mark_user a ~start_addr:disk_buffer_base
    ~end_addr:(disk_buffer_base + (3 * disk_buffer_stride));
  emit_mark_user a ~start_addr:packet_buffer ~end_addr:(packet_buffer + 0x1000)

let build config =
  validate config;
  mark_counter := 0;
  let a = Asm.create ~origin:entry () in
  let segment = config.segment_bytes in

  (* ---- boot ---- *)
  Asm.label a "boot";
  Asm.movi a Isa.sp (Asm.imm stack_top);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  if config.rate_mbps > 0.0 then begin
    let reload = pit_reload config in
    Asm.movi a 2 (Asm.imm (reload land 0xFFFF));
    Asm.outi a (Asm.imm pit) 2;
    Asm.movi a 2 (Asm.imm ((reload lsr 16) land 0xFFFF));
    Asm.outi a (Asm.imm (pit + 1)) 2;
    Asm.movi a 2 (Asm.imm 1) (* periodic *);
    Asm.outi a (Asm.imm (pit + 2)) 2
  end;
  if config.user_mode then begin
    (* three-level protection: kernel builds page tables, enables paging,
       and drops the streaming application to ring 3 *)
    Asm.movi a 1 (Asm.imm stack_top);
    Asm.lstk a 0 1;
    emit_page_table_setup a;
    emit_marked_operand_regions a;
    (* app code pages: resolved from labels at assembly time via a small
       run-time loop whose bounds are label-valued immediates *)
    (let loop = "mark_user_app" in
     Asm.movi a 1 (Asm.lbl "app_base");
     Asm.label a loop;
     Asm.movi a 4 (Asm.imm 12);
     Asm.shr a 2 1 4;
     Asm.movi a 4 (Asm.imm 4);
     Asm.mul a 2 2 4;
     Asm.addi a 2 2 (Asm.imm page_table0);
     Asm.ld a 3 2 0;
     Asm.movi a 4 (Asm.imm 0x4);
     Asm.or_ a 3 3 4;
     Asm.st a 2 0 3;
     Asm.addi a 1 1 (Asm.imm 0x1000);
     Asm.cmpi a 1 (Asm.lbl "app_end");
     Asm.jb a (Asm.lbl loop));
    Asm.movi a 1 (Asm.imm page_dir);
    Asm.lptb a 1;
    (* enter the application: iret to ring 3 with interrupts on *)
    Asm.movi a 3 (Asm.imm user_stack_top);
    Asm.push a 3;
    Asm.movi a 3 (Asm.imm 0x3200) (* cpl 3, IF set *);
    Asm.push a 3;
    Asm.movi a 3 (Asm.lbl "app_entry");
    Asm.push a 3;
    Asm.movi a 3 (Asm.imm 0);
    Asm.push a 3;
    Asm.iret a
  end
  else begin
    Asm.sti a;
    Asm.label a "idle_loop";
    Asm.hlt a;
    Asm.jmp a (Asm.lbl "idle_loop")
  end;

  (* ---- timer interrupt: pace one segment read, round-robin ---- *)
  Asm.label a "timer_handler";
  List.iter (Asm.push a) [ 1; 2; 3; 4; 5; 6; 7 ];
  Asm.movi a 7 (Asm.lbl "counters");
  Asm.ld a 1 7 off_ticks;
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.st a 7 off_ticks 1;
  Asm.ld a 2 7 off_next_disk;
  (* busy check: status bit (16 + disk) *)
  Asm.movi a 4 (Asm.imm 16);
  Asm.add a 4 4 2;
  Asm.movi a 5 (Asm.imm 1);
  Asm.shl a 5 5 4;
  Asm.ini a 3 (Asm.imm scsi_status);
  Asm.and_ a 3 3 5;
  Asm.jnz a (Asm.lbl "timer_skip");
  (* issue the read *)
  Asm.outi a (Asm.imm scsi_target) 2;
  Asm.movi a 6 (Asm.imm 4);
  Asm.mul a 6 2 6;
  Asm.add a 6 6 7 (* &lba[disk] - off_lba0 *);
  Asm.ld a 4 6 off_lba0;
  Asm.outi a (Asm.imm scsi_lba) 4;
  Asm.addi a 4 4 (Asm.imm (segment / 512));
  Asm.st a 6 off_lba0 4;
  Asm.movi a 5 (Asm.imm segment);
  Asm.outi a (Asm.imm scsi_count) 5;
  Asm.movi a 5 (Asm.imm disk_buffer_stride);
  Asm.mul a 5 2 5;
  Asm.addi a 5 5 (Asm.imm disk_buffer_base);
  Asm.outi a (Asm.imm scsi_dma) 5;
  Asm.movi a 5 (Asm.imm 1);
  Asm.outi a (Asm.imm scsi_cmd) 5;
  (* a fresh segment gets a fresh retry budget *)
  Asm.movi a 5 (Asm.imm 0);
  Asm.st a 6 off_retry0 5;
  Asm.ld a 1 7 off_segs_issued;
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.st a 7 off_segs_issued 1;
  Asm.jmp a (Asm.lbl "timer_advance");
  Asm.label a "timer_skip";
  Asm.ld a 1 7 off_skipped;
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.st a 7 off_skipped 1;
  Asm.label a "timer_advance";
  Asm.ld a 2 7 off_next_disk;
  Asm.addi a 2 2 (Asm.imm 1);
  Asm.cmpi a 2 (Asm.imm config.disks);
  Asm.jnz a (Asm.lbl "timer_nowrap");
  Asm.movi a 2 (Asm.imm 0);
  Asm.label a "timer_nowrap";
  Asm.st a 7 off_next_disk 2;
  Asm.movi a 1 (Asm.imm 0x20);
  Asm.outi a (Asm.imm pic) 1;
  List.iter (Asm.pop a) [ 7; 6; 5; 4; 3; 2; 1 ];
  Asm.iret a;

  (* ---- SCSI completion ---- *)
  Asm.label a "scsi_handler";
  if config.user_mode then begin
    (* hand finished segments to the application: mark them pending and
       let the blocked wait-segment syscall pick them up.  A medium
       error never reaches the app: it is retried (bounded, with
       backoff) and past the budget the segment is dropped. *)
    List.iter (Asm.push a) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 11 ];
    Asm.ini a 1 (Asm.imm scsi_status);
    Asm.movi a 2 (Asm.imm 0);
    Asm.label a "scsi_loop";
    Asm.movi a 3 (Asm.imm 1);
    Asm.shl a 3 3 2;
    Asm.and_ a 4 1 3;
    Asm.jz a (Asm.lbl "scsi_next");
    (* fresh status for the error flag — the ack below clears it *)
    Asm.ini a 4 (Asm.imm scsi_status);
    Asm.movi a 5 (Asm.imm 31);
    Asm.shr a 4 4 5;
    Asm.outi a (Asm.imm scsi_ack) 2;
    Asm.cmpi a 4 (Asm.imm 0);
    Asm.jnz a (Asm.lbl "scsi_error");
    Asm.movi a 4 (Asm.lbl "counters");
    Asm.ld a 5 4 off_pending;
    Asm.or_ a 5 5 3;
    Asm.st a 4 off_pending 5;
    Asm.ld a 5 4 off_segs_done;
    Asm.addi a 5 5 (Asm.imm 1);
    Asm.st a 4 off_segs_done 5;
    Asm.jmp a (Asm.lbl "scsi_next");
    emit_scsi_error_path a config ~next:"scsi_next";
    Asm.label a "scsi_next";
    Asm.addi a 2 2 (Asm.imm 1);
    Asm.cmpi a 2 (Asm.imm config.disks);
    Asm.jb a (Asm.lbl "scsi_loop");
    Asm.movi a 1 (Asm.imm 0x20);
    Asm.outi a (Asm.imm pic) 1;
    List.iter (Asm.pop a) [ 11; 9; 8; 7; 6; 5; 4; 3; 2; 1 ];
    Asm.iret a
  end
  else begin
    (* kernel-mode: transmit each done segment right here; a medium
       error is retried (bounded, with backoff) before the segment is
       given up *)
    List.iter (Asm.push a) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
    Asm.ini a 1 (Asm.imm scsi_status);
    Asm.movi a 2 (Asm.imm 0);
    Asm.label a "scsi_loop";
    Asm.movi a 3 (Asm.imm 1);
    Asm.shl a 3 3 2;
    Asm.and_ a 4 1 3;
    Asm.jz a (Asm.lbl "scsi_next");
    (* fresh status for the error flag — the ack below clears it *)
    Asm.ini a 4 (Asm.imm scsi_status);
    Asm.movi a 5 (Asm.imm 31);
    Asm.shr a 4 4 5;
    Asm.outi a (Asm.imm scsi_ack) 2;
    Asm.cmpi a 4 (Asm.imm 0);
    Asm.jnz a (Asm.lbl "scsi_error");
    Asm.movi a 5 (Asm.imm disk_buffer_stride);
    Asm.mul a 5 2 5;
    Asm.addi a 5 5 (Asm.imm disk_buffer_base);
    Asm.call a (Asm.lbl "send_segment");
    Asm.movi a 11 (Asm.lbl "counters");
    Asm.ld a 6 11 off_segs_done;
    Asm.addi a 6 6 (Asm.imm 1);
    Asm.st a 11 off_segs_done 6;
    Asm.jmp a (Asm.lbl "scsi_next");
    emit_scsi_error_path a config ~next:"scsi_next";
    Asm.label a "scsi_next";
    Asm.addi a 2 2 (Asm.imm 1);
    Asm.cmpi a 2 (Asm.imm config.disks);
    Asm.jb a (Asm.lbl "scsi_loop");
    Asm.movi a 1 (Asm.imm 0x20);
    Asm.outi a (Asm.imm pic) 1;
    List.iter (Asm.pop a) [ 11; 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ];
    Asm.iret a;

    (* ---- send_segment: r5 = source buffer; clobbers r5-r10 ---- *)
    Asm.label a "send_segment";
    Asm.movi a 6 (Asm.imm segment);
    Asm.movi a 10 (Asm.imm packet_buffer);
    Asm.label a "seg_loop";
    Asm.cmpi a 6 (Asm.imm 0);
    Asm.jz a (Asm.lbl "seg_done");
    emit_frame_build a config ~prefix:"seg" ~ip_id:`From_counter;
    (* one send system call per packet, as the streaming application
       does on HiTactix *)
    Asm.int_ a sys_send;
    Asm.add a 5 5 7;
    Asm.sub a 6 6 7;
    Asm.jmp a (Asm.lbl "seg_loop");
    Asm.label a "seg_done";
    Asm.ret a
  end;

  (* ---- send syscall (vector 48): r7 = payload length, r10 = packet
     buffer.  Waits for a transmit-ring slot, rings the doorbell and
     accounts the frame. *)
  Asm.label a "syscall_send";
  Asm.push a 8;
  Asm.push a 9;
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm nic_spin_limit);
  Asm.label a "nic_spin";
  Asm.ini a 8 (Asm.imm nic_status);
  Asm.movi a 9 (Asm.imm 1);
  Asm.and_ a 8 8 9;
  Asm.jz a (Asm.lbl "nic_ready");
  bump a ~scratch1:8 ~scratch2:9 off_nic_spins;
  Asm.movi a 9 (Asm.imm 1);
  Asm.sub a 3 3 9;
  Asm.cmpi a 3 (Asm.imm 0);
  Asm.jnz a (Asm.lbl "nic_spin");
  (* spin budget exhausted: the wire is wedged.  Reset the transmit
     ring, drop this frame and return — the stream degrades instead of
     hanging the kernel inside a syscall forever. *)
  Asm.movi a 8 (Asm.imm 3);
  Asm.outi a (Asm.imm nic_cmd) 8;
  bump a ~scratch1:8 ~scratch2:9 off_nic_resets;
  Asm.jmp a (Asm.lbl "nic_out");
  Asm.label a "nic_ready";
  Asm.outi a (Asm.imm nic_tx_addr) 10;
  Asm.addi a 8 7 (Asm.imm Netfmt.header_bytes);
  Asm.outi a (Asm.imm nic_tx_len) 8;
  Asm.movi a 8 (Asm.imm 1);
  Asm.outi a (Asm.imm nic_cmd) 8;
  (* frames++ and bytes += payload *)
  Asm.movi a 8 (Asm.lbl "counters");
  Asm.ld a 9 8 off_frames;
  Asm.addi a 9 9 (Asm.imm 1);
  Asm.st a 8 off_frames 9;
  Asm.ld a 9 8 off_bytes;
  Asm.add a 9 9 7;
  Asm.st a 8 off_bytes 9;
  Asm.label a "nic_out";
  Asm.pop a 3;
  Asm.pop a 9;
  Asm.pop a 8;
  Asm.iret a;

  (* ---- wait-segment syscall (vector 49, user mode): blocks until a
     segment is pending, returns its buffer address in r5 ---- *)
  if config.user_mode then begin
    Asm.label a "syscall_wait";
    List.iter (Asm.push a) [ 1; 2; 3; 4 ];
    Asm.label a "wait_loop";
    Asm.movi a 1 (Asm.lbl "counters");
    Asm.ld a 2 1 off_pending;
    Asm.cmpi a 2 (Asm.imm 0);
    Asm.jnz a (Asm.lbl "wait_got");
    (* idle inside the kernel until an interrupt changes the state *)
    Asm.sti a;
    Asm.hlt a;
    Asm.cli a;
    Asm.jmp a (Asm.lbl "wait_loop");
    Asm.label a "wait_got";
    (* lowest pending disk *)
    Asm.movi a 3 (Asm.imm 0);
    Asm.label a "wait_find";
    Asm.movi a 4 (Asm.imm 1);
    Asm.shl a 4 4 3;
    Asm.and_ a 5 2 4;
    Asm.jnz a (Asm.lbl "wait_found");
    Asm.addi a 3 3 (Asm.imm 1);
    Asm.jmp a (Asm.lbl "wait_find");
    Asm.label a "wait_found";
    Asm.xor_ a 2 2 4;
    Asm.st a 1 off_pending 2;
    Asm.movi a 5 (Asm.imm disk_buffer_stride);
    Asm.mul a 5 3 5;
    Asm.addi a 5 5 (Asm.imm disk_buffer_base);
    List.iter (Asm.pop a) [ 4; 3; 2; 1 ];
    Asm.iret a
  end;

  (* ---- NIC completion: acknowledge one frame per interrupt (2002-era
     driver, no interrupt coalescing) ---- *)
  Asm.label a "nic_handler";
  List.iter (Asm.push a) [ 1; 2; 3 ];
  Asm.ini a 1 (Asm.imm nic_status);
  Asm.movi a 2 (Asm.imm 2);
  Asm.and_ a 1 1 2;
  Asm.jz a (Asm.lbl "nic_drained");
  Asm.movi a 1 (Asm.imm 1);
  Asm.outi a (Asm.imm nic_ack) 1;
  bump a ~scratch1:1 ~scratch2:3 off_tx_acked;
  Asm.label a "nic_drained";
  Asm.movi a 1 (Asm.imm 0x20);
  Asm.outi a (Asm.imm pic) 1;
  List.iter (Asm.pop a) [ 3; 2; 1 ];
  Asm.iret a;

  (* ---- kernel data ---- *)
  Asm.align a 8;
  Asm.label a "counters";
  Asm.space a 128;
  Asm.label a "header_template";
  Asm.bytes a
    (Bytes.of_string
       (Netfmt.header_template ~src:Netfmt.default_source
          ~dst:Netfmt.default_destination));
  emit_iht a
    ~gates:
      ([
         (Isa.vec_irq_base_default + Machine.Irq.timer, ("timer_handler", 0));
         (Isa.vec_irq_base_default + Machine.Irq.scsi, ("scsi_handler", 0));
         (Isa.vec_irq_base_default + Machine.Irq.nic, ("nic_handler", 0));
         (sys_send, ("syscall_send", 3));
       ]
      @
      if config.user_mode then [ (sys_wait_segment, ("syscall_wait", 3)) ]
      else []);

  (* ---- the streaming application (ring 3, own pages) ---- *)
  if config.user_mode then begin
    Asm.align a 4096;
    Asm.label a "app_base";
    Asm.label a "app_entry";
    Asm.movi a 10 (Asm.imm packet_buffer);
    Asm.movi a 11 (Asm.imm 0) (* frame sequence *);
    Asm.label a "app_loop";
    Asm.int_ a sys_wait_segment (* r5 = segment buffer *);
    Asm.movi a 6 (Asm.imm segment);
    Asm.label a "app_seg_loop";
    Asm.cmpi a 6 (Asm.imm 0);
    Asm.jz a (Asm.lbl "app_seg_done");
    emit_frame_build a config ~prefix:"app" ~ip_id:`From_r11;
    Asm.int_ a sys_send;
    Asm.addi a 11 11 (Asm.imm 1);
    Asm.add a 5 5 7;
    Asm.sub a 6 6 7;
    Asm.jmp a (Asm.lbl "app_seg_loop");
    Asm.label a "app_seg_done";
    Asm.jmp a (Asm.lbl "app_loop");
    Asm.label a "app_header_template";
    Asm.bytes a
      (Bytes.of_string
         (Netfmt.header_template ~src:Netfmt.default_source
            ~dst:Netfmt.default_destination));
    Asm.align a 4096;
    Asm.label a "app_end"
  end;
  Asm.assemble a

type counters = {
  ticks : int;
  segments_issued : int;
  segments_done : int;
  frames_sent : int;
  bytes_sent : int;
  reads_skipped : int;
  nic_full_spins : int;
  tx_acked : int;
  scsi_retries : int;
  scsi_drops : int;
  nic_tx_resets : int;
}

let read_counters mem program =
  let base = Asm.symbol program "counters" in
  let word off = Phys_mem.read_u32 mem (base + off) in
  {
    ticks = word off_ticks;
    segments_issued = word off_segs_issued;
    segments_done = word off_segs_done;
    frames_sent = word off_frames;
    bytes_sent = word off_bytes;
    reads_skipped = word off_skipped;
    nic_full_spins = word off_nic_spins;
    tx_acked = word off_tx_acked;
    scsi_retries = word off_scsi_retries;
    scsi_drops = word off_scsi_drops;
    nic_tx_resets = word off_nic_resets;
  }

let interesting_symbols =
  [
    ("boot", "kernel entry point");
    ("timer_handler", "pacing interrupt: issues one disk read");
    ("scsi_handler", "segment completion handler");
    ("syscall_send", "per-packet send system call");
    ("nic_handler", "transmit-completion drain");
  ]
