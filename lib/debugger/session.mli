(** The host-side remote debugger session.

    Runs on the "host machine" of Fig 2.1: it owns the host end of the
    serial wire and exchanges protocol packets with the target's debug
    stub.  Because host and target share one simulation clock, every
    blocking call pumps the target machine forward in small slices until
    the reply (or a stop notification) arrives — the measured command
    latencies therefore include real wire serialization time. *)

type t

(** [attach machine] wires the session to the machine's UART (host side).
    Only one session (or host harness) can own the UART at a time.

    The session speaks the sequenced {!Vmm_proto.Reliable} protocol;
    [link_config] tunes its timeouts and retry budget.  [wrap_to_target]
    and [wrap_to_host] interpose on the raw byte streams (host->UART and
    UART->host respectively) — the fault harness uses them to model a
    lossy transport; the identity default is a perfect wire. *)
val attach :
  ?link_config:Vmm_proto.Reliable.config ->
  ?wrap_to_target:((int -> unit) -> int -> unit) ->
  ?wrap_to_host:((int -> unit) -> int -> unit) ->
  Vmm_hw.Machine.t ->
  t

(** Simulated seconds a blocking call will pump before giving up. *)
val default_timeout_s : float

(** {2 Synchronous commands} *)

val read_registers : ?timeout_s:float -> t -> int array option
val write_register : ?timeout_s:float -> t -> int -> int -> bool
val read_memory : ?timeout_s:float -> t -> addr:int -> len:int -> string option
val write_memory : ?timeout_s:float -> t -> addr:int -> data:string -> bool
val insert_breakpoint : ?timeout_s:float -> t -> int -> bool
val remove_breakpoint : ?timeout_s:float -> t -> int -> bool

(** [read_console t] drains the guest's console output (text written via
    the console hypercall or the virtualized serial port). *)
val read_console : ?timeout_s:float -> t -> string option

(** [read_profile_dump t] — the continuous profiler's report ([qP]): the
    raw {!Vmm_profile.Profiler.dump} text plus its parsed header fields
    ([samples], [period], [buckets]) and (key, count) buckets, hottest
    first. *)
val read_profile_dump :
  ?timeout_s:float ->
  t ->
  (string * (string * string) list * (Vmm_profile.Profiler.key * int) list)
  option

(** [read_profile t] — the profile collapsed to per-pc totals (hits
    summed over rings and categories), hottest first. *)
val read_profile : ?timeout_s:float -> t -> (int * int) list option

(** [query_watchdog t] — the monitor's lifecycle/watchdog report ([qW]):
    the raw text plus its parsed [key=value] fields.  Keys include
    [lifecycle], [cause]/[vector]/[pc]/[chain] when crashed, the
    [watchdog]/[checks]/[breakins] counters and [restarts]. *)
val query_watchdog :
  ?timeout_s:float -> t -> (string * (string * string) list) option

(** [query_verify t] — the monitor's load-time static-verification
    report ([qV]): the raw text plus its parsed [key=value] fields.
    Keys include [analysis] ([clean]/[dirty]/[off]), the [diags]/
    [instructions]/[blocks]/[functions]/[roots]/[summaries]/[races]
    counters, and the first diagnostics as [dN] fields.  With race
    witnessing armed the monitor appends a wire-compatible trailer
    ([witness]/[wsites]/[wwindows]/[wseen] and per-site [wN] tokens)
    which parses through the same [key=value] splitter. *)
val query_verify :
  ?timeout_s:float -> t -> (string * (string * string) list) option

(** [query_flight t] — the flight recorder ([qR]): the crash bundle when
    the target has crashed or wedged ({!Vmm_profile.Bundle} text), the
    live flight-ring dump otherwise. *)
val query_flight : ?timeout_s:float -> t -> string option

type restart_result =
  | Restarted
  | Refused  (** the target has no boot snapshot ([E0F]) *)
  | No_answer

(** [restart t] — warm-restart the guest from its boot snapshot ([R]).
    The session, the reliable link and planted breakpoints survive. *)
val restart : ?timeout_s:float -> t -> restart_result

(** Write watchpoints: the target stops when the guest stores into
    [addr, addr+len). *)
val insert_watchpoint : ?timeout_s:float -> t -> addr:int -> len:int -> bool

val remove_watchpoint : ?timeout_s:float -> t -> addr:int -> len:int -> bool

(** [query ?timeout_s t] — [Some reason] when stopped, [None] when the
    target reports running (or no answer arrived). *)
val query : ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [is_running ?timeout_s t] — explicit three-way wrapper over [?]. *)
val is_running : ?timeout_s:float -> t -> bool option

(** {2 Execution control} *)

(** [continue_ t] resumes the target; returns immediately.  The stub's
    single ack (OK, or E03 from a crashed target) is absorbed when it
    arrives and never disturbs later command/reply pairing; refusals
    show up in {!unsolicited_errors}. *)
val continue_ : t -> unit

(** [step ?timeout_s t] single-steps and waits for the stop report. *)
val step : ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [reverse_step ?timeout_s t] — [rs]: step backward one instruction
    (checkpoint restore + deterministic replay on the target) and wait
    for the landing report.  [None] also when the target refused (not
    stopped, or no checkpoint covers the boundary — see
    {!unsolicited_errors}). *)
val reverse_step :
  ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [reverse_continue ?timeout_s t] — [rc]: run backward; stops at the
    first breakpoint planted along the replayed path, else at the
    boundary just before the current stop (for a crashed guest, the
    exact pre-crash instruction). *)
val reverse_continue :
  ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [halt ?timeout_s t] stops the target and waits for the report. *)
val halt : ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [wait_stop ?timeout_s t] pumps until the target reports a stop
    (breakpoint hit, fault, ...). *)
val wait_stop : ?timeout_s:float -> t -> Vmm_proto.Command.stop_reason option

(** [detach ?timeout_s t] removes target breakpoints and resumes. *)
val detach : ?timeout_s:float -> t -> bool

(** {2 Link failure and recovery} *)

(** [link_up t] — false once this side's retry budget ran out (the peer
    may have concluded the same independently).  Blocking calls return
    [None]/[false] promptly instead of burning their timeout. *)
val link_up : t -> bool

(** [reconnect ?timeout_s t] restarts the ARQ state on both ends: resets
    the local endpoint, drops stale replies, and confirms with a Resync
    exchange.  Pending stop notifications survive (they describe real
    target state).  Returns true when the target confirmed. *)
val reconnect : ?timeout_s:float -> t -> bool

(** {2 Introspection} *)

(** [pending_stop t] — a stop notification that arrived unsolicited. *)
val pending_stop : t -> Vmm_proto.Command.stop_reason option

(** [unsolicited_errors t] — error replies to fire-and-forget commands:
    a crashed target refusing resume answers [c]/[s] with [E03], which
    must not shift the positional command/reply pairing. *)
val unsolicited_errors : t -> int

val packets_sent : t -> int
val packets_received : t -> int

(** [retransmissions t] — commands resent after a target NAK or an ack
    timeout. *)
val retransmissions : t -> int

val link_stats : t -> Vmm_proto.Reliable.counters

(** [link_downs t] — times this side declared the link dead. *)
val link_downs : t -> int

(** [last_latency_s t] — simulated seconds between the last command's
    transmission and its reply (E5 measures this under load). *)
val last_latency_s : t -> float

(** [register_metrics t registry] publishes the session's link health
    (packets, retransmits, resets, last command latency) as
    [hostlink_*] gauges — typically into the target machine's registry
    so one dump covers both ends of the wire. *)
val register_metrics : t -> Vmm_obs.Registry.t -> unit
