module Command = Vmm_proto.Command
module Isa = Vmm_hw.Isa

type t = {
  session : Session.t;
  symbols : Symbols.t;
}

let create ~session ~symbols = { session; symbols }

let parse_int token =
  match int_of_string_opt token with
  | Some v when v >= 0 -> Some v
  | Some _ | None -> None

let parse_address t token =
  match Symbols.address t.symbols token with
  | Some addr -> Some addr
  | None ->
    (match String.index_opt token '+' with
     | Some i ->
       let name = String.sub token 0 i
       and off = String.sub token (i + 1) (String.length token - i - 1) in
       (match (Symbols.address t.symbols name, parse_int off) with
        | Some base, Some off -> Some (base + off)
        | _ -> None)
     | None -> parse_int token)

let reg_names =
  [| "r0"; "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "r7"; "r8"; "r9"; "r10";
     "r11"; "r12"; "r13"; "sp"; "r15"; "pc"; "flags" |]

let dump_registers t =
  match Session.read_registers t.session with
  | None -> "error: no response from target"
  | Some regs ->
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i v ->
        Buffer.add_string buf (Printf.sprintf "%-5s = 0x%08x" reg_names.(i) v);
        if i = 16 then
          Buffer.add_string buf
            (Printf.sprintf "  %s" (Symbols.format_addr t.symbols v));
        Buffer.add_char buf (if (i + 1) mod 3 = 0 then '\n' else ' '))
      regs;
    String.trim (Buffer.contents buf)

let hex_dump ~addr data =
  let buf = Buffer.create 256 in
  String.iteri
    (fun i c ->
      if i mod 16 = 0 then
        Buffer.add_string buf (Printf.sprintf "%s%08x: " (if i = 0 then "" else "\n") (addr + i));
      Buffer.add_string buf (Printf.sprintf "%02x " (Char.code c)))
    data;
  Buffer.contents buf

let stop_to_string t reason =
  match reason with
  | Command.Break addr ->
    Printf.sprintf "breakpoint at %s" (Symbols.format_addr t.symbols addr)
  | Command.Step_done addr ->
    Printf.sprintf "stepped; now at %s" (Symbols.format_addr t.symbols addr)
  | Command.Faulted { vector; pc } ->
    Printf.sprintf "target fault (vector %d) at %s" vector
      (Symbols.format_addr t.symbols pc)
  | Command.Halt_requested addr ->
    Printf.sprintf "halted at %s" (Symbols.format_addr t.symbols addr)
  | Command.Watch_hit { pc; addr } ->
    Printf.sprintf "watchpoint on %s hit at %s"
      (Symbols.format_addr t.symbols addr)
      (Symbols.format_addr t.symbols pc)
  | Command.Wedged addr ->
    Printf.sprintf "watchdog break-in (no guest progress) at %s"
      (Symbols.format_addr t.symbols addr)

let disassemble t ~addr ~count =
  match Session.read_memory t.session ~addr ~len:(count * Isa.width) with
  | None -> "error: cannot read target memory"
  | Some data ->
    let buf = Buffer.create 256 in
    for i = 0 to count - 1 do
      let a = addr + (i * Isa.width) in
      let text =
        try Isa.to_string (Isa.decode ~addr:a (Bytes.of_string data) ~off:(i * Isa.width))
        with Isa.Decode_error _ -> "(bad opcode)"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-28s %s" (if i = 0 then "" else "\n")
           (Symbols.format_addr t.symbols a) text)
    done;
    Buffer.contents buf

let usage =
  "commands: regs | reg <n> <value> | x <addr> <len> | w <addr> <hex> | \
   disas <addr> <n> | break <addr> | delete <addr> | watch <addr> [len] | \
   unwatch <addr> [len] | continue | step | rs | rc | halt | status | \
   wait | restart | watchdog | verify | console | profile [n] | flight | \
   symbols | help"

let with_addr t token f =
  match parse_address t token with
  | Some addr -> f addr
  | None -> Printf.sprintf "error: cannot resolve address '%s'" token

let execute t line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> ""
  | [ "help" ] -> usage
  | [ "regs" ] -> dump_registers t
  | [ "reg"; n; v ] ->
    (match (parse_int n, parse_address t v) with
     | Some idx, Some value ->
       if Session.write_register t.session idx value then "ok"
       else "error: write refused"
     | _ -> "error: usage: reg <index> <value>")
  | [ "x"; addr_s; len_s ] ->
    with_addr t addr_s (fun addr ->
        match parse_int len_s with
        | Some len ->
          (match Session.read_memory t.session ~addr ~len with
           | Some data -> hex_dump ~addr data
           | None -> "error: cannot read target memory")
        | None -> "error: bad length")
  | [ "w"; addr_s; hex_s ] ->
    with_addr t addr_s (fun addr ->
        match Vmm_proto.Packet.of_hex hex_s with
        | Some data ->
          if Session.write_memory t.session ~addr ~data then "ok"
          else "error: write refused"
        | None -> "error: bad hex")
  | [ "disas"; addr_s; count_s ] ->
    with_addr t addr_s (fun addr ->
        match parse_int count_s with
        | Some count when count > 0 && count <= 64 -> disassemble t ~addr ~count
        | Some _ | None -> "error: bad count")
  | [ "break"; addr_s ] ->
    with_addr t addr_s (fun addr ->
        if Session.insert_breakpoint t.session addr then
          Printf.sprintf "breakpoint set at %s" (Symbols.format_addr t.symbols addr)
        else "error: cannot set breakpoint")
  | [ "delete"; addr_s ] ->
    with_addr t addr_s (fun addr ->
        if Session.remove_breakpoint t.session addr then "deleted"
        else "error: cannot remove breakpoint")
  | [ "watch"; addr_s ] | [ "watch"; addr_s; _ ] as args ->
    let len =
      match args with
      | [ _; _; len_s ] -> Option.value ~default:4 (parse_int len_s)
      | _ -> 4
    in
    with_addr t addr_s (fun addr ->
        if Session.insert_watchpoint t.session ~addr ~len then
          Printf.sprintf "watchpoint set on %s (%d bytes)"
            (Symbols.format_addr t.symbols addr)
            len
        else "error: cannot set watchpoint")
  | [ "unwatch"; addr_s ] | [ "unwatch"; addr_s; _ ] as args ->
    let len =
      match args with
      | [ _; _; len_s ] -> Option.value ~default:4 (parse_int len_s)
      | _ -> 4
    in
    with_addr t addr_s (fun addr ->
        if Session.remove_watchpoint t.session ~addr ~len then "unwatched"
        else "error: no such watchpoint")
  | [ "continue" ] ->
    Session.continue_ t.session;
    "continuing"
  | [ "step" ] ->
    (match Session.step t.session with
     | Some reason -> stop_to_string t reason
     | None -> "error: no stop report")
  | [ "rs" ] | [ "reverse-step" ] ->
    (match Session.reverse_step t.session with
     | Some reason -> stop_to_string t reason
     | None -> "error: no stop report (no checkpoint?)")
  | [ "rc" ] | [ "reverse-continue" ] ->
    (match Session.reverse_continue t.session with
     | Some reason -> stop_to_string t reason
     | None -> "error: no stop report (no checkpoint?)")
  | [ "halt" ] ->
    (match Session.halt t.session with
     | Some reason -> stop_to_string t reason
     | None -> "error: no stop report")
  | [ "status" ] ->
    (match Session.is_running t.session with
     | Some true -> "target running"
     | Some false ->
       (match Session.query t.session with
        | Some reason -> stop_to_string t reason
        | None -> "target stopped")
     | None -> "error: no response")
  | [ "wait" ] ->
    (match Session.wait_stop t.session with
     | Some reason -> stop_to_string t reason
     | None -> "error: timeout waiting for stop")
  | [ "profile" ] | [ "profile"; _ ] as args ->
    let top =
      match args with
      | [ _; n ] -> Option.value ~default:10 (parse_int n)
      | _ -> 10
    in
    (match Session.read_profile_dump t.session with
     | None -> "error: no response"
     | Some (_, _, []) ->
       "(no samples yet -- arm the profiler, or wait for timer ticks)"
     | Some (_, header, buckets) ->
       let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
       let pct c = 100.0 *. float_of_int c /. float_of_int total in
       let buf = Buffer.create 512 in
       (* period=0 marks the legacy timer-interrupt fallback *)
       (match List.assoc_opt "period" header with
        | Some "0" | None ->
          Buffer.add_string buf
            (Printf.sprintf "%d samples (timer-interrupt pc sampling)" total)
        | Some p ->
          Buffer.add_string buf
            (Printf.sprintf
               "%d samples (continuous pc sampling, every %s cycles)" total p));
       List.iteri
         (fun i (key, count) ->
           if i < top then
             Buffer.add_string buf
               (Printf.sprintf "\n%6.1f%% %6d  ring%d %-10s %s" (pct count)
                  count key.Vmm_profile.Profiler.k_ring
                  key.Vmm_profile.Profiler.k_cat
                  (Symbols.format_addr t.symbols
                     key.Vmm_profile.Profiler.k_pc)))
         buckets;
       (* per-ring / per-category splits, summed over all buckets *)
       let split name key_of =
         let totals = Hashtbl.create 8 in
         List.iter
           (fun (key, count) ->
             let k = key_of key in
             Hashtbl.replace totals k
               (count + Option.value ~default:0 (Hashtbl.find_opt totals k)))
           buckets;
         let entries =
           Hashtbl.fold (fun k c acc -> (k, c) :: acc) totals []
           |> List.sort compare
         in
         Buffer.add_string buf (Printf.sprintf "\nby %s:" name);
         List.iter
           (fun (k, c) ->
             Buffer.add_string buf
               (Printf.sprintf " %s=%d (%.1f%%)" k c (pct c)))
           entries
       in
       split "ring" (fun k ->
           Printf.sprintf "ring%d" k.Vmm_profile.Profiler.k_ring);
       split "category" (fun k -> k.Vmm_profile.Profiler.k_cat);
       Buffer.contents buf)
  | [ "restart" ] ->
    (match Session.restart t.session with
     | Session.Restarted -> "guest restarted from boot snapshot"
     | Session.Refused -> "error: target has no boot snapshot"
     | Session.No_answer -> "error: no response")
  | [ "watchdog" ] ->
    (match Session.query_watchdog t.session with
     | Some (text, _) -> text
     | None -> "error: no response")
  | [ "verify" ] ->
    (match Session.query_verify t.session with
     | Some (text, _) -> text
     | None -> "error: no response")
  | [ "flight" ] ->
    (* The crash bundle when the target crashed/wedged, else the live
       flight ring; both are self-describing text. *)
    (match Session.query_flight t.session with
     | Some text -> text
     | None -> "error: no response")
  | [ "console" ] ->
    (match Session.read_console t.session with
     | Some "" -> "(console empty)"
     | Some text -> text
     | None -> "error: no response")
  | [ "symbols" ] ->
    String.concat "\n"
      (List.map
         (fun (name, addr) -> Printf.sprintf "%08x %s" addr name)
         (Symbols.all t.symbols))
  | _ -> usage
