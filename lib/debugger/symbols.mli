(** Symbol table for the host debugger, built from an assembled guest
    image. *)

type t

val of_program : Vmm_hw.Asm.program -> t

(** [of_list symbols] — build a table from raw [(name, address)] pairs
    (the debugger normally uses {!of_program}; this is for tests and
    hand-built tables). *)
val of_list : (string * int) list -> t

(** [address t name] — the label's absolute address. *)
val address : t -> string -> int option

(** [nearest t addr] — the closest label at or below [addr], as
    [(name, base_address)]; [None] below the first symbol or when the
    table is empty.  When several labels share an address the first in
    (address, name) order is reported, deterministically. *)
val nearest : t -> int -> (string * int) option

(** [format_addr t addr] — ["label+0x10 (0x1234)"] style rendering. *)
val format_addr : t -> int -> string

val all : t -> (string * int) list
