type t = { by_name : (string, int) Hashtbl.t; sorted : (string * int) array }

let of_list symbols =
  let by_name = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace by_name name addr) symbols;
  let sorted = Array.of_list symbols in
  (* [Array.sort] is not stable: break address ties by name so that
     rendering stays deterministic when several labels alias the same
     address (e.g. a region base that is also an entry point). *)
  Array.sort (fun (n1, a1) (n2, a2) -> compare (a1, n1) (a2, n2)) sorted;
  { by_name; sorted }

let of_program (p : Vmm_hw.Asm.program) = of_list p.Vmm_hw.Asm.symbols

let address t name = Hashtbl.find_opt t.by_name name

let nearest t addr =
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let _, a = t.sorted.(mid) in
      if a <= addr then search (mid + 1) hi (Some mid)
      else search lo (mid - 1) best
  in
  match search 0 (Array.length t.sorted - 1) None with
  | None -> None
  | Some i ->
    (* several labels can share an address: report the first in
       (address, name) order, always the same one *)
    let _, a = t.sorted.(i) in
    let rec first j =
      if j > 0 && snd t.sorted.(j - 1) = a then first (j - 1) else j
    in
    Some t.sorted.(first i)

let format_addr t addr =
  match nearest t addr with
  | Some (name, base) when addr = base -> Printf.sprintf "%s (0x%x)" name addr
  | Some (name, base) -> Printf.sprintf "%s+0x%x (0x%x)" name (addr - base) addr
  | None -> Printf.sprintf "0x%x" addr

let all t = Array.to_list t.sorted
