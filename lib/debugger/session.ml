module Machine = Vmm_hw.Machine
module Uart = Vmm_hw.Uart
module Costs = Vmm_hw.Costs
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Reliable = Vmm_proto.Reliable

type t = {
  machine : Machine.t;
  endpoint : Reliable.t;
  replies : string Queue.t;  (** raw non-stop payloads *)
  stops : Command.stop_reason Queue.t;
  mutable sent : int;
  received : int ref;
  stale : int ref;
      (** replies still owed to commands whose wait was abandoned; they
          must be discarded on arrival, not matched to a later command *)
  awaiting : int ref;
      (** reply-bearing commands currently waiting; a non-stop payload
          arriving when this is zero was not asked for and must not
          enter the positional reply queue *)
  discards : int ref;
      (** acks owed to fire-and-forget sends: the stub answers [c]/[s]
          exactly once (OK or an error code), so each such send owns one
          reply slot that is consumed and dropped on arrival — error
          codes among them (a crashed target refusing resume with E03)
          are tallied in [unsolicited] *)
  unsolicited : int ref;
  mutable last_latency_s : float;
  mutable link_downs : int;
}

let default_timeout_s = 5.0

let is_stop_payload payload = String.length payload >= 3 && payload.[0] = 'T'

(* [wrap_to_target] / [wrap_to_host] interpose on the raw byte streams
   (host->UART and UART->host); the fault harness uses them to model a
   lossy transport.  The identity default is the historical perfect
   link. *)
let attach ?link_config ?(wrap_to_target = fun sink -> sink)
    ?(wrap_to_host = fun sink -> sink) machine =
  let uart = Machine.uart machine in
  let replies = Queue.create () in
  let stops = Queue.create () in
  let received = ref 0 in
  let stale = ref 0 in
  let awaiting = ref 0 in
  let discards = ref 0 in
  let unsolicited = ref 0 in
  let deliver payload =
    incr received;
    let stop =
      if is_stop_payload payload then
        match Command.reply_of_wire payload with
        | Some (Command.Stopped reason) -> Some reason
        | Some _ | None -> None
      else None
    in
    match stop with
    | Some reason -> Queue.add reason stops
    | None ->
      (* Replies pair with commands positionally, so a reply owed to an
         abandoned wait or to a fire-and-forget send must never satisfy
         a later command. *)
      if !stale > 0 then decr stale
      else if !discards > 0 then begin
        decr discards;
        if String.length payload = 3 && payload.[0] = 'E' then
          incr unsolicited
      end
      else if !awaiting = 0 then incr unsolicited
      else Queue.add payload replies
  in
  let link_config =
    match link_config with
    | Some c -> c
    | None ->
      { Reliable.default_config with
        Reliable.byte_cycles = (Machine.costs machine).Costs.uart_cycles_per_byte
      }
  in
  let endpoint =
    Reliable.create ~config:link_config ~engine:(Machine.engine machine)
      ~send_byte:(wrap_to_target (fun byte -> Uart.inject_rx uart byte))
      ~deliver ()
  in
  (* The host initiates, so it always speaks the sequenced protocol. *)
  Reliable.set_sequenced endpoint true;
  let t =
    {
      machine;
      endpoint;
      replies;
      stops;
      sent = 0;
      received;
      stale;
      awaiting;
      discards;
      unsolicited;
      last_latency_s = 0.0;
      link_downs = 0;
    }
  in
  Reliable.set_on_link_down endpoint (fun () -> t.link_downs <- t.link_downs + 1);
  Uart.set_on_tx uart (wrap_to_host (fun byte -> Reliable.on_rx_byte endpoint byte));
  t

let send t command =
  t.sent <- t.sent + 1;
  Reliable.send t.endpoint (Command.command_to_wire command)

(* Pump the shared simulation in slices until [ready] or timeout.  The
   slice bounds the latency-measurement quantization, not correctness.
   A link declared down also ends the wait: the caller gets None now
   instead of burning the whole timeout on a dead wire. *)
let pump_until t ~timeout_s ready =
  let slice = 0.0005 in
  let rec go budget =
    if ready () then true
    else if not (Reliable.link_up t.endpoint) then ready ()
    else if budget <= 0.0 then false
    else begin
      Machine.run_seconds t.machine slice;
      go (budget -. slice)
    end
  in
  go timeout_s

let transact ?(timeout_s = default_timeout_s) t command =
  let start = Machine.now t.machine in
  send t command;
  incr t.awaiting;
  let got = pump_until t ~timeout_s (fun () -> not (Queue.is_empty t.replies)) in
  decr t.awaiting;
  let costs = Machine.costs t.machine in
  t.last_latency_s <-
    Costs.seconds_of_cycles costs (Int64.sub (Machine.now t.machine) start);
  if got then Some (Queue.pop t.replies)
  else begin
    (* Abandoned: when the reply does land it belongs to this command,
       not the next one. *)
    incr t.stale;
    None
  end

let read_registers ?timeout_s t =
  match transact ?timeout_s t Command.Read_registers with
  | Some payload ->
    (match Command.reply_of_wire payload with
     | Some (Command.Registers regs) -> Some regs
     | Some _ | None -> None)
  | None -> None

let expect_ok ?timeout_s t command =
  match transact ?timeout_s t command with
  | Some "OK" -> true
  | Some _ | None -> false

let write_register ?timeout_s t idx v =
  expect_ok ?timeout_s t (Command.Write_register (idx, v))

let read_memory ?timeout_s t ~addr ~len =
  match transact ?timeout_s t (Command.Read_memory { addr; len }) with
  | Some payload ->
    if String.length payload = 3 && payload.[0] = 'E' then None
    else Packet.of_hex payload
  | None -> None

let write_memory ?timeout_s t ~addr ~data =
  expect_ok ?timeout_s t (Command.Write_memory { addr; data })

let insert_breakpoint ?timeout_s t addr =
  expect_ok ?timeout_s t (Command.Insert_breakpoint addr)

let remove_breakpoint ?timeout_s t addr =
  expect_ok ?timeout_s t (Command.Remove_breakpoint addr)

let read_console ?timeout_s t =
  match transact ?timeout_s t Command.Read_console with
  | Some payload -> Packet.of_hex payload
  | None -> None

(* The [qP] payload is the profiler's self-describing dump (a
   [samples=… period=… buckets=…] header plus one bucket line each);
   parse it back into (raw text, header fields, buckets). *)
let read_profile_dump ?timeout_s t =
  match transact ?timeout_s t Command.Read_profile with
  | Some payload ->
    (match Packet.of_hex payload with
     | Some text ->
       (match Vmm_profile.Profiler.parse_dump text with
        | Some (header, buckets) -> Some (text, header, buckets)
        | None -> None)
     | None -> None)
  | None -> None

(* Legacy shape: collapse the buckets to per-pc totals, hottest first. *)
let read_profile ?timeout_s t =
  match read_profile_dump ?timeout_s t with
  | Some (_, _, buckets) ->
    let totals = Hashtbl.create 64 in
    List.iter
      (fun (key, count) ->
        let pc = key.Vmm_profile.Profiler.k_pc in
        Hashtbl.replace totals pc
          (count + Option.value ~default:0 (Hashtbl.find_opt totals pc)))
      buckets;
    Some
      (Hashtbl.fold (fun pc count acc -> (pc, count) :: acc) totals []
      |> List.sort (fun (_, a) (_, b) -> compare b a))
  | None -> None

(* The [qW] payload is textual [key=value] pairs, hex-encoded on the
   wire like the console; parse into an assoc list, raw text first. *)
let query_watchdog ?timeout_s t =
  match transact ?timeout_s t Command.Query_watchdog with
  | Some payload ->
    (match Packet.of_hex payload with
     | Some text ->
       let fields =
         List.filter_map
           (fun tok ->
             match String.index_opt tok '=' with
             | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) )
             | None -> None)
           (String.split_on_char ' ' text)
       in
       Some (text, fields)
     | None -> None)
  | None -> None

(* The [qV] payload (load-time static-verification report) has the same
   flat [key=value] shape as [qW]. *)
let query_verify ?timeout_s t =
  match transact ?timeout_s t Command.Query_verify with
  | Some payload ->
    (match Packet.of_hex payload with
     | Some text ->
       let fields =
         List.filter_map
           (fun tok ->
             match String.index_opt tok '=' with
             | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) )
             | None -> None)
           (String.split_on_char ' ' text)
       in
       Some (text, fields)
     | None -> None)
  | None -> None

(* The [qR] payload — the crash bundle when the target has crashed or
   wedged, the live flight-ring dump otherwise — is opaque
   self-describing text; no field parsing here. *)
let query_flight ?timeout_s t =
  match transact ?timeout_s t Command.Query_flight with
  | Some payload -> Packet.of_hex payload
  | None -> None

(* Warm restart: distinguish "restarted" from "refused" (E0F: the target
   has no boot snapshot) and "no answer". *)
type restart_result = Restarted | Refused | No_answer

let restart ?timeout_s t =
  match transact ?timeout_s t Command.Restart with
  | Some "OK" -> Restarted
  | Some payload when String.length payload = 3 && payload.[0] = 'E' ->
    Refused
  | Some _ -> No_answer
  | None -> No_answer

let insert_watchpoint ?timeout_s t ~addr ~len =
  expect_ok ?timeout_s t (Command.Insert_watchpoint { addr; len })

let remove_watchpoint ?timeout_s t ~addr ~len =
  expect_ok ?timeout_s t (Command.Remove_watchpoint { addr; len })

(* Stop replies to '?' land in the stop queue like asynchronous
   notifications.  A notification already pending answers the query
   without any wire traffic — sending '?' anyway would orphan its reply,
   and a stopped target answers '?' with a T payload that lands in the
   stop queue, not the positional reply queue, so marking the orphan
   stale would eat the next genuine reply instead. *)
let query_raw ?(timeout_s = default_timeout_s) t =
  match Queue.take_opt t.stops with
  | Some reason -> Some (Error reason)
  | None ->
    send t Command.Query_stop;
    incr t.awaiting;
    let ready () =
      (not (Queue.is_empty t.replies)) || not (Queue.is_empty t.stops)
    in
    let got = pump_until t ~timeout_s ready in
    decr t.awaiting;
    if got then
      match Queue.take_opt t.stops with
      | Some reason ->
        (* The ['?'] reply itself: a stopped target answers with its
           stop reason. *)
        Some (Error reason)
      | None -> Some (Ok (Queue.pop t.replies))
    else begin
      incr t.stale;
      None
    end

let query ?timeout_s t =
  match query_raw ?timeout_s t with
  | Some (Error reason) -> Some reason
  | Some (Ok _) | None -> None

let is_running ?timeout_s t =
  match query_raw ?timeout_s t with
  | Some (Ok "R") -> Some true
  | Some (Error _) -> Some false
  | Some (Ok _) | None -> None

let wait_stop ?(timeout_s = default_timeout_s) t =
  let got = pump_until t ~timeout_s (fun () -> not (Queue.is_empty t.stops)) in
  if got then Some (Queue.pop t.stops) else None

(* [c] and [s] are fire-and-forget on this side, but the stub acks each
   exactly once (OK or an error code): reserve the discard slot so that
   ack never shifts the positional pairing of later commands. *)
let continue_ t =
  send t Command.Continue;
  incr t.discards

let step ?timeout_s t =
  send t Command.Step;
  incr t.discards;
  wait_stop ?timeout_s t

(* Reverse execution follows the [s] shape: one reserved ack (OK, or an
   error when there is no eligible checkpoint / the target is not
   stopped), then a stop notification once the replay lands. *)
let reverse_step ?timeout_s t =
  send t Command.Reverse_step;
  incr t.discards;
  wait_stop ?timeout_s t

let reverse_continue ?timeout_s t =
  send t Command.Reverse_continue;
  incr t.discards;
  wait_stop ?timeout_s t

let halt ?timeout_s t =
  send t Command.Halt;
  wait_stop ?timeout_s t

let detach ?timeout_s t = expect_ok ?timeout_s t Command.Detach

(* Reconnection after a Link_down: restart this side's ARQ state and
   tell the stub to do the same over a fresh exchange.  Stale replies
   from the dead incarnation are dropped; pending stop notifications are
   kept (they describe real target state). *)
let link_up t = Reliable.link_up t.endpoint

let reconnect ?(timeout_s = default_timeout_s) t =
  Reliable.reset t.endpoint;
  Queue.clear t.replies;
  t.stale := 0;
  (* Acks owed by the dead incarnation will never arrive; forgetting
     them keeps the discard filter from eating post-resync replies. *)
  t.discards := 0;
  (* Resync travels as a plain (unsequenced) frame: the stub delivers
     those without the duplicate filter, so it gets through even when the
     stale sequence spaces disagree about everything. *)
  t.sent <- t.sent + 1;
  Reliable.send_plain t.endpoint (Command.command_to_wire Command.Resync);
  (* Replies from the dead incarnation can still trickle in ahead of the
     resync ack; only the distinctive [sync] payload counts, everything
     earlier is discarded. *)
  let sync_wire = Command.reply_to_wire Command.Sync_ok in
  let synced = ref false in
  let ready () =
    while (not !synced) && not (Queue.is_empty t.replies) do
      if Queue.pop t.replies = sync_wire then synced := true
    done;
    !synced
  in
  incr t.awaiting;
  ignore (pump_until t ~timeout_s ready : bool);
  decr t.awaiting;
  !synced

let pending_stop t = Queue.take_opt t.stops
let unsolicited_errors t = !(t.unsolicited)
let link_stats t = Reliable.stats t.endpoint
let retransmissions t = (link_stats t).Reliable.retransmits
let link_downs t = t.link_downs
let packets_sent t = t.sent
let packets_received t = !(t.received)
let last_latency_s t = t.last_latency_s

(* Host-side link health, published next to the target-side metrics so
   `lwvmm_dbg stats` shows both ends of the wire in one dump. *)
let register_metrics t registry =
  let g name f = Vmm_obs.Registry.int_gauge registry name f in
  g "hostlink_packets_sent_total" (fun () -> packets_sent t);
  g "hostlink_packets_received_total" (fun () -> packets_received t);
  g "hostlink_retransmits_total" (fun () -> retransmissions t);
  g "hostlink_bad_checksums_total" (fun () ->
      (link_stats t).Reliable.bad_checksums);
  g "hostlink_resets_total" (fun () -> (link_stats t).Reliable.link_resets);
  g "hostlink_downs_total" (fun () -> link_downs t);
  Vmm_obs.Registry.gauge registry "hostlink_last_latency_seconds" (fun () ->
      last_latency_s t)
