(** Typed grammar of debugger commands and stub replies, with the textual
    wire encoding used inside packets.

    The encoding follows the GDB remote serial protocol where a natural
    counterpart exists ([g], [m], [M], [P], [Z0]/[z0], [c], [s], [?]) and
    adds a stop/halt request.  Registers travel as 18 words: r0-r15, pc,
    flags. *)

val register_count : int

type command =
  | Read_registers  (** [g] *)
  | Write_register of int * int  (** [P<idx>=<val>] *)
  | Read_memory of { addr : int; len : int }  (** [m<addr>,<len>] *)
  | Write_memory of { addr : int; data : string }
      (** [M<addr>,<len>:<hex>] *)
  | Insert_breakpoint of int  (** [Z0,<addr>] *)
  | Remove_breakpoint of int  (** [z0,<addr>] *)
  | Insert_watchpoint of { addr : int; len : int }  (** [Z2,<addr>,<len>] *)
  | Remove_watchpoint of { addr : int; len : int }  (** [z2,<addr>,<len>] *)
  | Continue  (** [c] *)
  | Step  (** [s] *)
  | Reverse_step
      (** [rs] — step backward one instruction: the stub restores the
          newest checkpoint at or before the previous boundary and
          deterministically re-executes to it (replay-to-N) *)
  | Reverse_continue
      (** [rc] — run backward: restore the checkpoint, re-execute; stops
          at the first breakpoint hit after it, else at the boundary
          just before the current stop (for a crashed guest, the exact
          pre-crash instruction) *)
  | Halt  (** [H] — stop a running target *)
  | Query_stop  (** [?] *)
  | Read_console  (** [qC] — drain the target-side console buffer *)
  | Read_profile
      (** [qP] — fetch the continuous profiler's sample dump (textual
          [samples=… period=… buckets=…] header plus one
          [pc=… ring=… cat=… count=…] line per bucket, hex-encoded on
          the wire like [qC]) *)
  | Query_watchdog
      (** [qW] — fetch the monitor's lifecycle/watchdog report (textual
          [key=value] pairs, hex-encoded on the wire like [qC]) *)
  | Query_verify
      (** [qV] — fetch the monitor's load-time static-verification
          report for the booted guest image (textual [key=value] pairs,
          hex-encoded on the wire like [qW]) *)
  | Query_flight
      (** [qR] — fetch the flight recorder: the crash bundle when the
          guest has crashed or wedged, else the live flight-ring dump
          (self-describing text, hex-encoded on the wire like [qW]) *)
  | Restart
      (** [R] — warm-restart the guest from its boot snapshot without
          dropping the debug session or the reliable-link state *)
  | Detach  (** [D] *)
  | Resync
      (** [!] — restart the reliable-link state on the target after the
          host declared the link dead; see {!Reliable}. *)

(** Why the target is (now) stopped. *)
type stop_reason =
  | Break of int  (** breakpoint hit, at address *)
  | Step_done of int  (** single step retired, now at address *)
  | Faulted of { vector : int; pc : int }  (** unhandled guest fault *)
  | Halt_requested of int  (** host asked; stopped at address *)
  | Watch_hit of { pc : int; addr : int }
      (** a watched location was written *)
  | Wedged of int
      (** the monitor's watchdog saw no guest progress and forced a
          break-in; stopped at address *)

type reply =
  | Ok_reply  (** [OK] *)
  | Error of int  (** [E<nn>] *)
  | Registers of int array  (** hex-encoded words *)
  | Memory of string  (** raw bytes, hex on the wire *)
  | Stopped of stop_reason  (** [T<code>;<pc>] *)
  | Running  (** [R] — reply to [?] while not stopped *)
  | Sync_ok
      (** [sync] — reply to [!].  Deliberately distinct from [OK]: a
          reconnecting host discards stale replies until it sees this. *)
  | Unsupported  (** empty reply *)

val command_to_wire : command -> string
val command_of_wire : string -> command option
val reply_to_wire : reply -> string
val reply_of_wire : string -> reply option
val pp_command : Format.formatter -> command -> unit
val pp_reply : Format.formatter -> reply -> unit
val pp_stop_reason : Format.formatter -> stop_reason -> unit
