(** Reliable ARQ endpoint over the {!Packet} framing.

    The base protocol produces Ack/Nak events but nothing drives
    retransmission from them; this layer does.  Each endpoint is a
    stop-and-wait sender plus a duplicate-suppressing receiver:

    - outgoing payloads are tagged with an 8-bit sequence number and
      framed as [|ss<payload>]; at most one frame per direction is in
      flight, the rest queue;
    - a well-formed sequenced frame is acknowledged with [+ss] (the ack
      carries the sequence so a duplicated or stale ack cannot be
      misattributed to a newer frame); a checksum failure elicits a bare
      [-];
    - an unacknowledged frame is retransmitted on NAK and on a sim-time
      timeout, with capped exponential backoff; after [max_retries] the
      endpoint gives up, drops its queue and reports link-down instead of
      hanging;
    - the receiver accepts only frames whose sequence number lies in the
      half-window ahead of the last accepted one (serial-number
      arithmetic, wraparound-safe); retransmissions and delay-displaced
      copies of older frames fall behind the window edge and are
      re-acked but dropped, so a command is never re-executed and
      reordering never delivers stale data.

    For compatibility with peers that speak the bare protocol (the
    embedded-debugger baseline, hand-rolled test hosts), an endpoint
    starts in {e plain} mode: unsequenced frames are delivered as-is,
    sends are fire-and-forget with the historical NAK-retransmit
    behaviour, and the first sequenced frame received upgrades the
    endpoint. *)

type config = {
  byte_cycles : int;
      (** serialization cost per wire byte; timeouts scale with it *)
  slack_bytes : int;
      (** extra byte-times allowed for queueing before a retry *)
  max_retries : int;  (** retransmissions before the link is declared down *)
  backoff_exp_cap : int;  (** cap on the exponential backoff doubling *)
}

(** 115200 baud at the default clock; 8 retries, backoff capped at 16x. *)
val default_config : config

type counters = {
  mutable retransmits : int;
  mutable bad_checksums : int;
  mutable duplicates_dropped : int;
  mutable stray_acks : int;
  mutable link_downs : int;
  mutable link_resets : int;
}

type t

(** [create ~engine ~send_byte ~deliver ()] — [send_byte] transmits one
    wire byte; [deliver] receives each de-duplicated decoded payload.
    Retransmission timers run on [engine]'s simulated clock. *)
val create :
  ?config:config ->
  engine:Vmm_sim.Engine.t ->
  send_byte:(int -> unit) ->
  deliver:(string -> unit) ->
  unit ->
  t

(** [set_on_link_down t f] — called once per transition to down (retry
    budget exhausted).  The endpoint stays down until {!reset}. *)
val set_on_link_down : t -> (unit -> unit) -> unit

(** [set_sequenced t flag] forces the mode; receivers normally upgrade
    automatically on the first sequenced frame. *)
val set_sequenced : t -> bool -> unit

val sequenced : t -> bool
val link_up : t -> bool

(** [send t payload] — sequenced mode: queue and transmit under ARQ
    (silently dropped while the link is down — the caller observes
    {!link_up} and reconnects).  Plain mode: fire-and-forget. *)
val send : t -> string -> unit

(** [send_plain t payload] transmits one unsequenced fire-and-forget
    frame regardless of mode.  Receivers deliver plain frames without the
    duplicate filter — the Resync exchange uses this so it gets through
    even when the two sequence spaces disagree about everything. *)
val send_plain : t -> string -> unit

(** [on_rx_byte t byte] — feed one received wire byte. *)
val on_rx_byte : t -> int -> unit

(** [reset t] forgets all transfer state (flight, queue, sequence
    numbers, partial decode) and brings the link back up.  Counters and
    mode survive.  Both ends must reset around the same exchange — the
    debugger's Resync command pairs them. *)
val reset : t -> unit

val stats : t -> counters

(** [pending_tx t] — frames queued or in flight. *)
val pending_tx : t -> int

(** {2 Checkpoint support}

    The sequence-space position (next TX sequence, last accepted RX
    sequence, mode, up/down) is what must round-trip for a restored
    endpoint to keep talking to its peer.  A flight or queued frames are
    {e not} captured — their payloads belong to the interrupted
    conversation — so {!restore_seq_state} abandons them like {!reset},
    then reinstates the captured numbers. *)

type seq_state = {
  sq_next_seq : int;
  sq_last_rx_seq : int;
  sq_sequenced : bool;
  sq_up : bool;
}

val seq_state : t -> seq_state
val restore_seq_state : t -> seq_state -> unit
