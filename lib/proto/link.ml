type endpoint = {
  send : int -> unit;
  set_receive : (int -> unit) -> unit;
}

type side = {
  mutable receive : (int -> unit) option;
  backlog : int Queue.t;
}

let deliver side byte =
  match side.receive with
  | Some f -> f byte
  | None -> Queue.add byte side.backlog

let make_side () = { receive = None; backlog = Queue.create () }

let endpoint_of ~peer ~own =
  {
    send = (fun byte -> deliver peer (byte land 0xFF));
    set_receive =
      (fun f ->
        (* Drain before going live: if [f] sends a reply that loops back
           synchronously, the looped bytes must queue behind the backlog
           rather than interleave mid-drain.  Swapping the backlog into a
           local queue keeps any re-entrant arrivals ordered after the
           batch being delivered. *)
        let rec drain () =
          if not (Queue.is_empty own.backlog) then begin
            let batch = Queue.create () in
            Queue.transfer own.backlog batch;
            Queue.iter f batch;
            drain ()
          end
        in
        drain ();
        own.receive <- Some f);
  }

let loopback () =
  let a = make_side () and b = make_side () in
  (endpoint_of ~peer:b ~own:a, endpoint_of ~peer:a ~own:b)

let send_string e s = String.iter (fun c -> e.send (Char.code c)) s
