let register_count = 18

type command =
  | Read_registers
  | Write_register of int * int
  | Read_memory of { addr : int; len : int }
  | Write_memory of { addr : int; data : string }
  | Insert_breakpoint of int
  | Remove_breakpoint of int
  | Insert_watchpoint of { addr : int; len : int }
  | Remove_watchpoint of { addr : int; len : int }
  | Continue
  | Step
  | Reverse_step
      (** step backward one instruction (checkpoint + replay-to-N) *)
  | Reverse_continue
      (** run backward: to the first breakpoint hit after the restored
          checkpoint, else to the boundary just before the current stop *)
  | Halt
  | Query_stop
  | Read_console
  | Read_profile
  | Query_watchdog
  | Query_verify
  | Query_flight
  | Restart
  | Detach
  | Resync
      (** reset the reliable-link endpoints on both sides after a
          [Link_down] escalation; the session stays attached *)

type stop_reason =
  | Break of int
  | Step_done of int
  | Faulted of { vector : int; pc : int }
  | Halt_requested of int
  | Watch_hit of { pc : int; addr : int }
  | Wedged of int

type reply =
  | Ok_reply
  | Error of int
  | Registers of int array
  | Memory of string
  | Stopped of stop_reason
  | Running
  | Sync_ok
  | Unsupported

let hex = Packet.hex_of_int

let command_to_wire = function
  | Read_registers -> "g"
  | Write_register (idx, v) ->
    Printf.sprintf "P%s=%s" (hex idx ~width:2) (hex v ~width:8)
  | Read_memory { addr; len } ->
    Printf.sprintf "m%s,%s" (hex addr ~width:8) (hex len ~width:8)
  | Write_memory { addr; data } ->
    Printf.sprintf "M%s,%s:%s" (hex addr ~width:8)
      (hex (String.length data) ~width:8)
      (Packet.to_hex data)
  | Insert_breakpoint addr -> Printf.sprintf "Z0,%s" (hex addr ~width:8)
  | Remove_breakpoint addr -> Printf.sprintf "z0,%s" (hex addr ~width:8)
  | Insert_watchpoint { addr; len } ->
    Printf.sprintf "Z2,%s,%s" (hex addr ~width:8) (hex len ~width:4)
  | Remove_watchpoint { addr; len } ->
    Printf.sprintf "z2,%s,%s" (hex addr ~width:8) (hex len ~width:4)
  | Continue -> "c"
  | Step -> "s"
  | Reverse_step -> "rs"
  | Reverse_continue -> "rc"
  | Halt -> "H"
  | Query_stop -> "?"
  | Read_console -> "qC"
  | Read_profile -> "qP"
  | Query_watchdog -> "qW"
  | Query_verify -> "qV"
  | Query_flight -> "qR"
  | Restart -> "R"
  | Detach -> "D"
  | Resync -> "!"

let split_once s ~on =
  match String.index_opt s on with
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let tail s = String.sub s 1 (String.length s - 1)

let ( let* ) = Option.bind

let command_of_wire s =
  if String.length s = 0 then None
  else
    match s.[0] with
    | 'g' -> Some Read_registers
    | 'c' -> Some Continue
    | 's' -> Some Step
    | 'r' ->
      if s = "rs" then Some Reverse_step
      else if s = "rc" then Some Reverse_continue
      else None
    | 'H' -> Some Halt
    | '?' -> Some Query_stop
    | 'q' ->
      if s = "qC" then Some Read_console
      else if s = "qP" then Some Read_profile
      else if s = "qW" then Some Query_watchdog
      else if s = "qV" then Some Query_verify
      else if s = "qR" then Some Query_flight
      else None
    | 'R' -> Some Restart
    | 'D' -> Some Detach
    | '!' -> Some Resync
    | 'P' ->
      let* idx_s, val_s = split_once (tail s) ~on:'=' in
      let* idx = Packet.int_of_hex idx_s in
      let* v = Packet.int_of_hex val_s in
      Some (Write_register (idx, v))
    | 'm' ->
      let* addr_s, len_s = split_once (tail s) ~on:',' in
      let* addr = Packet.int_of_hex addr_s in
      let* len = Packet.int_of_hex len_s in
      Some (Read_memory { addr; len })
    | 'M' ->
      let* addr_s, rest = split_once (tail s) ~on:',' in
      let* len_s, hex_s = split_once rest ~on:':' in
      let* addr = Packet.int_of_hex addr_s in
      let* len = Packet.int_of_hex len_s in
      let* data = Packet.of_hex hex_s in
      if String.length data = len then Some (Write_memory { addr; data })
      else None
    | 'Z' ->
      let* kind, rest = split_once (tail s) ~on:',' in
      (match kind with
       | "0" ->
         let* addr = Packet.int_of_hex rest in
         Some (Insert_breakpoint addr)
       | "2" ->
         let* addr_s, len_s = split_once rest ~on:',' in
         let* addr = Packet.int_of_hex addr_s in
         let* len = Packet.int_of_hex len_s in
         Some (Insert_watchpoint { addr; len })
       | _ -> None)
    | 'z' ->
      let* kind, rest = split_once (tail s) ~on:',' in
      (match kind with
       | "0" ->
         let* addr = Packet.int_of_hex rest in
         Some (Remove_breakpoint addr)
       | "2" ->
         let* addr_s, len_s = split_once rest ~on:',' in
         let* addr = Packet.int_of_hex addr_s in
         let* len = Packet.int_of_hex len_s in
         Some (Remove_watchpoint { addr; len })
       | _ -> None)
    | _ -> None

(* Stop-reply codes (mirroring Unix signal numbers where GDB does). *)
let code_break = 0x05
let code_step = 0x01
let code_fault = 0x0B
let code_halt = 0x02
let code_watch = 0x06
let code_wedge = 0x07

let stop_to_wire = function
  | Break addr -> Printf.sprintf "T%s;%s" (hex code_break ~width:2) (hex addr ~width:8)
  | Step_done addr ->
    Printf.sprintf "T%s;%s" (hex code_step ~width:2) (hex addr ~width:8)
  | Faulted { vector; pc } ->
    Printf.sprintf "T%s;%s;%s" (hex code_fault ~width:2) (hex pc ~width:8)
      (hex vector ~width:2)
  | Halt_requested addr ->
    Printf.sprintf "T%s;%s" (hex code_halt ~width:2) (hex addr ~width:8)
  | Watch_hit { pc; addr } ->
    Printf.sprintf "T%s;%s;%s" (hex code_watch ~width:2) (hex pc ~width:8)
      (hex addr ~width:8)
  | Wedged addr ->
    Printf.sprintf "T%s;%s" (hex code_wedge ~width:2) (hex addr ~width:8)

let reply_to_wire = function
  | Ok_reply -> "OK"
  | Error code -> Printf.sprintf "E%s" (hex code ~width:2)
  | Registers regs ->
    String.concat "" (Array.to_list (Array.map (fun v -> hex v ~width:8) regs))
  | Memory data -> Packet.to_hex data
  | Stopped reason -> stop_to_wire reason
  | Running -> "R"
  | Sync_ok -> "sync"
  | Unsupported -> ""

let parse_stop s =
  let* code = Packet.int_of_hex (String.sub s 1 2) in
  let rest = String.sub s 3 (String.length s - 3) in
  let fields =
    if String.length rest = 0 then []
    else String.split_on_char ';' (tail rest)
  in
  match (code, fields) with
  | c, [ a ] when c = code_break ->
    let* addr = Packet.int_of_hex a in
    Some (Break addr)
  | c, [ a ] when c = code_step ->
    let* addr = Packet.int_of_hex a in
    Some (Step_done addr)
  | c, [ a ] when c = code_halt ->
    let* addr = Packet.int_of_hex a in
    Some (Halt_requested addr)
  | c, [ a ] when c = code_wedge ->
    let* addr = Packet.int_of_hex a in
    Some (Wedged addr)
  | c, [ a; v ] when c = code_fault ->
    let* pc = Packet.int_of_hex a in
    let* vector = Packet.int_of_hex v in
    Some (Faulted { vector; pc })
  | c, [ a; w ] when c = code_watch ->
    let* pc = Packet.int_of_hex a in
    let* addr = Packet.int_of_hex w in
    Some (Watch_hit { pc; addr })
  | _ -> None

let reply_of_wire s =
  if s = "" then Some Unsupported
  else if s = "OK" then Some Ok_reply
  else if s = "R" then Some Running
  else if s = "sync" then Some Sync_ok
  else if s.[0] = 'E' && String.length s = 3 then
    let* code = Packet.int_of_hex (tail s) in
    Some (Error code)
  else if s.[0] = 'T' && String.length s >= 3 then
    let* reason = parse_stop s in
    Some (Stopped reason)
  else if String.length s mod 8 = 0 && String.length s / 8 = register_count
  then begin
    (* Exactly 18 words: a register dump. *)
    let regs = Array.make register_count 0 in
    let ok = ref true in
    for i = 0 to register_count - 1 do
      match Packet.int_of_hex (String.sub s (8 * i) 8) with
      | Some v -> regs.(i) <- v
      | None -> ok := false
    done;
    if !ok then Some (Registers regs) else None
  end
  else
    let* data = Packet.of_hex s in
    Some (Memory data)

let pp_command fmt c = Format.pp_print_string fmt (command_to_wire c)

let pp_stop_reason fmt = function
  | Break addr -> Format.fprintf fmt "breakpoint at 0x%x" addr
  | Step_done addr -> Format.fprintf fmt "stepped to 0x%x" addr
  | Faulted { vector; pc } ->
    Format.fprintf fmt "fault vector %d at 0x%x" vector pc
  | Halt_requested addr -> Format.fprintf fmt "halted at 0x%x" addr
  | Watch_hit { pc; addr } ->
    Format.fprintf fmt "watchpoint on 0x%x hit at 0x%x" addr pc
  | Wedged addr ->
    Format.fprintf fmt "watchdog: no guest progress, stopped at 0x%x" addr

let pp_reply fmt = function
  | Ok_reply -> Format.pp_print_string fmt "OK"
  | Error code -> Format.fprintf fmt "error %d" code
  | Registers _ -> Format.pp_print_string fmt "<registers>"
  | Memory data -> Format.fprintf fmt "<%d bytes>" (String.length data)
  | Stopped reason -> pp_stop_reason fmt reason
  | Running -> Format.pp_print_string fmt "running"
  | Sync_ok -> Format.pp_print_string fmt "sync"
  | Unsupported -> Format.pp_print_string fmt "<unsupported>"
