(** Wire framing for the remote-debug link (GDB remote-serial-protocol
    style).

    A packet is [$<payload>#<checksum>] where the checksum is the two-digit
    lowercase hex of the payload byte sum modulo 256.  The bytes ['$'],
    ['#'] and ['}'] are escaped inside the payload as ['}' (byte ^ 0x20)].
    The receiver answers each packet with ['+'] (good checksum) or ['-']
    (retransmit request). *)

(** {2 Framing} *)

(** [checksum payload] — byte sum mod 256 of the (escaped) payload. *)
val checksum : string -> int

(** [frame payload] is the complete escaped packet text. *)
val frame : string -> string

val ack : char
val nak : char

(** {2 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

type event =
  | Packet of string  (** a well-formed packet's unescaped payload *)
  | Bad_checksum  (** a complete packet that failed verification *)
  | Ack
  | Nak

(** [feed d byte] consumes one wire byte; returns an event when one
    completes.  Noise between packets is discarded. *)
val feed : decoder -> int -> event option

(** [feed_string d s] convenience: feed every byte, collect events. *)
val feed_string : decoder -> string -> event list

(** [reset d] abandons any partial frame and returns to idle. *)
val reset : decoder -> unit

(** {2 Hex helpers} *)

(** [to_hex s] — lowercase hex, two digits per byte. *)
val to_hex : string -> string

(** [of_hex s] — inverse of [to_hex]; [None] on odd length or bad digit. *)
val of_hex : string -> string option

(** [hex_of_int v ~width] — fixed-width lowercase hex of a non-negative
    int. *)
val hex_of_int : int -> width:int -> string

(** [int_of_hex s] — [None] on empty or invalid input. *)
val int_of_hex : string -> int option
