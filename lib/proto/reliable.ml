(* Reliable ARQ endpoint over the $...# framing.

   The base protocol (Packet) produces Ack/Nak events but nothing drives
   retransmission from them; this layer finally does.  Each endpoint is a
   stop-and-wait sender plus a duplicate-suppressing receiver:

   - outgoing payloads are tagged with an 8-bit sequence number and
     framed as [|ss<payload>]; at most one frame per direction is in
     flight, the rest queue;
   - a well-formed sequenced frame is acknowledged with [+ss] (the ack
     carries the sequence so a duplicated or stale ack cannot be
     misattributed to a newer frame); a checksum failure elicits a bare
     [-];
   - an unacknowledged frame is retransmitted on NAK and on a sim-time
     timeout (Engine events), with capped exponential backoff; after
     [max_retries] the endpoint gives up, drops its queue and reports
     Link_down instead of hanging;
   - the receiver accepts only frames whose sequence number lies in the
     half-window ahead of the last accepted one (serial-number
     arithmetic, so wraparound is handled); retransmissions and
     delay-displaced copies of older frames land in the half-window
     behind and are re-acked but dropped, so a command is never
     re-executed and reordering never delivers stale data.

   For compatibility with peers that speak the bare protocol (the
   embedded-debugger baseline, hand-rolled test hosts), an endpoint
   starts in plain mode: unsequenced frames are delivered as-is, sends
   are fire-and-forget with the historical NAK-retransmit behaviour, and
   the first sequenced frame received upgrades the endpoint. *)

module Engine = Vmm_sim.Engine
module Event_queue = Vmm_sim.Event_queue

type config = {
  byte_cycles : int;
      (** serialization cost per wire byte; timeouts scale with it *)
  slack_bytes : int;
      (** extra byte-times allowed for queueing before a retry *)
  max_retries : int;  (** retransmissions before the link is declared down *)
  backoff_exp_cap : int;  (** cap on the exponential backoff doubling *)
}

let default_config =
  {
    byte_cycles = 109_375 (* 115200 baud at 1.26 GHz *);
    slack_bytes = 256;
    max_retries = 8;
    backoff_exp_cap = 4;
  }

type counters = {
  mutable retransmits : int;
  mutable bad_checksums : int;
  mutable duplicates_dropped : int;
  mutable stray_acks : int;
  mutable link_downs : int;
  mutable link_resets : int;
}

type flight = {
  seq : int;
  framed : string;
  mutable retries : int;
  mutable timer : Event_queue.handle option;
}

(* Ack parsing state: a '+' in sequenced mode is followed by two hex
   digits naming the acknowledged sequence number. *)
type ack_state = No_ack | Ack_seen | Ack_digit of int

type t = {
  engine : Engine.t;
  config : config;
  send_byte : int -> unit;
  deliver : string -> unit;
  mutable on_link_down : unit -> unit;
  decoder : Packet.decoder;
  txq : string Queue.t;
  mutable flight : flight option;
  mutable next_seq : int;
  mutable last_rx_seq : int;  (** -1 = nothing received yet *)
  mutable sequenced : bool;
  mutable up : bool;
  mutable last_plain_tx : string option;  (** plain-mode NAK retransmit *)
  mutable ack_state : ack_state;
  counters : counters;
}

let create ?(config = default_config) ~engine ~send_byte ~deliver () =
  {
    engine;
    config;
    send_byte;
    deliver;
    on_link_down = (fun () -> ());
    decoder = Packet.decoder ();
    txq = Queue.create ();
    flight = None;
    next_seq = 0;
    last_rx_seq = -1;
    sequenced = false;
    up = true;
    last_plain_tx = None;
    ack_state = No_ack;
    counters =
      {
        retransmits = 0;
        bad_checksums = 0;
        duplicates_dropped = 0;
        stray_acks = 0;
        link_downs = 0;
        link_resets = 0;
      };
  }

let set_on_link_down t f = t.on_link_down <- f
let set_sequenced t flag = t.sequenced <- flag
let sequenced t = t.sequenced
let link_up t = t.up
let stats t = t.counters
let pending_tx t = Queue.length t.txq + match t.flight with Some _ -> 1 | None -> 0

let send_raw t s = String.iter (fun c -> t.send_byte (Char.code c)) s

let seq_payload ~seq payload = "|" ^ Packet.hex_of_int seq ~width:2 ^ payload

let parse_seq payload =
  if String.length payload >= 3 && payload.[0] = '|' then
    match Packet.int_of_hex (String.sub payload 1 2) with
    | Some seq -> Some (seq, String.sub payload 3 (String.length payload - 3))
    | None -> None
  else None

let cancel_timer t fl =
  match fl.timer with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    fl.timer <- None
  | None -> ()

(* Retry n waits (frame + slack) byte-times, doubled per attempt up to
   the cap, so a slow-but-healthy link (a long reply still serializing
   ahead of the ack) runs out of patience strictly slower than it runs
   out of wire. *)
let timeout_cycles t fl =
  let base = (String.length fl.framed + t.config.slack_bytes) * t.config.byte_cycles in
  let exp = min fl.retries t.config.backoff_exp_cap in
  Int64.of_int (base lsl exp)

let rec arm_timer t fl =
  fl.timer <-
    Some (Engine.after t.engine ~delay:(timeout_cycles t fl) (fun () -> on_timeout t fl))

and on_timeout t fl =
  (* Only the current flight's timer may act; a cancelled or superseded
     timer that still fires must not retransmit stale data. *)
  match t.flight with
  | Some cur when cur == fl ->
    fl.timer <- None;
    if fl.retries >= t.config.max_retries then begin
      t.up <- false;
      t.flight <- None;
      Queue.clear t.txq;
      t.counters.link_downs <- t.counters.link_downs + 1;
      t.on_link_down ()
    end
    else begin
      fl.retries <- fl.retries + 1;
      t.counters.retransmits <- t.counters.retransmits + 1;
      send_raw t fl.framed;
      arm_timer t fl
    end
  | Some _ | None -> ()

let rec pump t =
  match t.flight with
  | Some _ -> ()
  | None ->
    if t.up then
      match Queue.take_opt t.txq with
      | None -> ()
      | Some payload ->
        let seq = t.next_seq in
        t.next_seq <- (t.next_seq + 1) land 0xFF;
        let fl =
          { seq; framed = Packet.frame (seq_payload ~seq payload); retries = 0; timer = None }
        in
        t.flight <- Some fl;
        send_raw t fl.framed;
        arm_timer t fl

and send t payload =
  if t.sequenced then begin
    if t.up then begin
      Queue.add payload t.txq;
      pump t
    end
    (* link declared down: drop rather than hang; the caller sees the
       down state and reconnects *)
  end
  else begin
    let framed = Packet.frame payload in
    t.last_plain_tx <- Some framed;
    send_raw t framed
  end

(* An unsequenced frame from a sequenced endpoint.  Receivers deliver
   plain frames unconditionally (no duplicate filter), which is exactly
   what a Resync needs: it must get through even when the two sequence
   spaces disagree about everything. *)
let send_plain t payload =
  let framed = Packet.frame payload in
  t.last_plain_tx <- Some framed;
  send_raw t framed

let on_ack t seq =
  match t.flight with
  | Some fl when fl.seq = seq ->
    cancel_timer t fl;
    t.flight <- None;
    pump t
  | Some _ | None -> t.counters.stray_acks <- t.counters.stray_acks + 1

let on_nak t =
  if t.sequenced then
    match t.flight with
    | Some fl ->
      cancel_timer t fl;
      if fl.retries >= t.config.max_retries then begin
        t.up <- false;
        t.flight <- None;
        Queue.clear t.txq;
        t.counters.link_downs <- t.counters.link_downs + 1;
        t.on_link_down ()
      end
      else begin
        fl.retries <- fl.retries + 1;
        t.counters.retransmits <- t.counters.retransmits + 1;
        send_raw t fl.framed;
        arm_timer t fl
      end
    | None -> ()
  else
    match t.last_plain_tx with
    | Some framed ->
      t.counters.retransmits <- t.counters.retransmits + 1;
      send_raw t framed
    | None -> ()

let send_ack t seq =
  t.send_byte (Char.code Packet.ack);
  String.iter (fun c -> t.send_byte (Char.code c)) (Packet.hex_of_int seq ~width:2)

let on_packet t payload =
  match parse_seq payload with
  | Some (seq, body) ->
    t.sequenced <- true;
    send_ack t seq;
    (* Serial-number window test (cf. RFC 1982): with a stop-and-wait peer
       the sequence space only ever moves forward, so a frame whose number
       sits in the half-window {e behind} the last accepted one can only be
       a retransmission or a delay-displaced copy of an older frame — it is
       re-acked above (so the peer stops resending it) and dropped here.
       Frames ahead of the window edge are delivered even across a gap:
       refusing them would wedge the receiver forever if the peer ever
       advanced on an ack we never delivered for. *)
    let behind =
      t.last_rx_seq >= 0
      &&
      let delta = (seq - t.last_rx_seq) land 0xFF in
      delta = 0 || delta > 128
    in
    if behind then
      t.counters.duplicates_dropped <- t.counters.duplicates_dropped + 1
    else begin
      t.last_rx_seq <- seq;
      t.deliver body
    end
  | None ->
    (* plain-mode peer: historical ack-and-deliver behaviour *)
    t.send_byte (Char.code Packet.ack);
    t.deliver payload

let feed_decoder t byte =
  match Packet.feed t.decoder byte with
  | None -> ()
  | Some Packet.Ack -> if t.sequenced then t.ack_state <- Ack_seen
  | Some Packet.Nak -> on_nak t
  | Some Packet.Bad_checksum ->
    t.counters.bad_checksums <- t.counters.bad_checksums + 1;
    t.send_byte (Char.code Packet.nak)
  | Some (Packet.Packet payload) -> on_packet t payload

let hex_digit_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let on_rx_byte t byte =
  let byte = byte land 0xFF in
  let c = Char.chr byte in
  match t.ack_state with
  | Ack_seen ->
    (match hex_digit_value c with
     | Some hi -> t.ack_state <- Ack_digit hi
     | None ->
       (* corrupted ack tail: abandon it (the timeout re-covers the
          frame) and reinterpret the byte normally *)
       t.ack_state <- No_ack;
       feed_decoder t byte)
  | Ack_digit hi ->
    (match hex_digit_value c with
     | Some lo ->
       t.ack_state <- No_ack;
       on_ack t ((hi lsl 4) lor lo)
     | None ->
       t.ack_state <- No_ack;
       feed_decoder t byte)
  | No_ack -> feed_decoder t byte

(* Reconnect: forget all transfer state but keep counters and mode.  Both
   ends must reset around the same exchange (the debugger's Resync
   command does this) so the sequence spaces restart together. *)
let reset t =
  (match t.flight with Some fl -> cancel_timer t fl | None -> ());
  t.flight <- None;
  Queue.clear t.txq;
  t.next_seq <- 0;
  t.last_rx_seq <- -1;
  t.up <- true;
  t.last_plain_tx <- None;
  t.ack_state <- No_ack;
  Packet.reset t.decoder;
  t.counters.link_resets <- t.counters.link_resets + 1

(* Checkpoint support: the sequence-space position is the part of the
   endpoint state that must round-trip for a restored run to keep
   talking — a flight or queued frames cannot be restored meaningfully
   (their payloads belong to the conversation that was interrupted), so
   restore abandons them like {!reset} does, but keeps the sequence
   numbers where the capture left them. *)
type seq_state = {
  sq_next_seq : int;
  sq_last_rx_seq : int;
  sq_sequenced : bool;
  sq_up : bool;
}

let seq_state t =
  {
    sq_next_seq = t.next_seq;
    sq_last_rx_seq = t.last_rx_seq;
    sq_sequenced = t.sequenced;
    sq_up = t.up;
  }

let restore_seq_state t s =
  (match t.flight with Some fl -> cancel_timer t fl | None -> ());
  t.flight <- None;
  Queue.clear t.txq;
  t.last_plain_tx <- None;
  t.ack_state <- No_ack;
  Packet.reset t.decoder;
  t.next_seq <- s.sq_next_seq;
  t.last_rx_seq <- s.sq_last_rx_seq;
  t.sequenced <- s.sq_sequenced;
  t.up <- s.sq_up
