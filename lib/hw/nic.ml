module Engine = Vmm_sim.Engine

let tx_ring_slots = 64
let mtu = 1500

(* An in-flight TX frame, materialized so checkpoints can capture the
   wire contents and re-arm the completion after a restore. *)
type tx_op = { txo_len : int; txo_buf : Bytes.t; txo_done_at : int64 }

type t = {
  engine : Engine.t;
  costs : Costs.t;
  mem : Phys_mem.t;
  mutable tx_addr : int;
  mutable tx_len : int;
  mutable queued : int; (* frames in the ring, not yet on the wire *)
  mutable inflight : tx_op list; (* submission order; length = queued *)
  mutable wire_busy_until : int64;
  mutable completions : int;
  mutable overflow : bool;
  mutable overflow_count : int;
  mutable frames_sent : int;
  mutable bytes_sent : int64;
  mutable irq : unit -> unit;
  mutable on_frame : bytes -> unit;
  mutable has_consumer : bool;
  mutable rx_tap : bytes -> unit;
  pool : Bytes.t Stack.t; (* recycled TX frame buffers, each mtu bytes *)
  rx : bytes Queue.t;
  mutable rx_addr : int;
  mutable tx_stalls : int;
  mutable stall_cycles : int64;
  mutable tracer : Vmm_obs.Tracer.t option;
  mutable epoch : int;
      (* bumped by [tx_reset]/[reset]; in-flight completion events compare
         their captured epoch and only recycle their buffer afterwards *)
  mutable tx_resets : int;
}

let create ~engine ~costs ~mem () =
  {
    engine;
    costs;
    mem;
    tx_addr = 0;
    tx_len = 0;
    queued = 0;
    inflight = [];
    wire_busy_until = 0L;
    completions = 0;
    overflow = false;
    overflow_count = 0;
    frames_sent = 0;
    bytes_sent = 0L;
    irq = (fun () -> ());
    on_frame = (fun _ -> ());
    has_consumer = false;
    rx_tap = (fun _ -> ());
    pool = Stack.create ();
    rx = Queue.create ();
    rx_addr = 0;
    tx_stalls = 0;
    stall_cycles = 0L;
    tracer = None;
    epoch = 0;
    tx_resets = 0;
  }

let set_irq t f = t.irq <- f

let set_on_frame t f =
  t.on_frame <- f;
  t.has_consumer <- true

let clear_on_frame t =
  t.on_frame <- (fun _ -> ());
  t.has_consumer <- false
let set_tracer t tracer = t.tracer <- Some tracer

let serialization_cycles t len =
  let seconds = float_of_int (8 * len) /. (t.costs.Costs.nic_gbps *. 1e9) in
  Int64.add
    (Int64.of_int t.costs.Costs.nic_setup_cycles)
    (Costs.cycles_of_seconds t.costs seconds)

(* Schedule a frame's wire completion.  The descriptor lives in
   [inflight] until the event fires, so checkpoints see the wire
   contents; the event is epoch-guarded so reset/restore abandons it. *)
let arm_tx t ~buf ~len ~done_at =
  let op = { txo_len = len; txo_buf = buf; txo_done_at = done_at } in
  t.inflight <- t.inflight @ [ op ];
  let epoch = t.epoch in
  ignore
    (Engine.at t.engine ~time:done_at (fun () ->
         if t.epoch = epoch then begin
           t.inflight <- List.filter (fun o -> o != op) t.inflight;
           t.queued <- t.queued - 1;
           t.completions <- t.completions + 1;
           t.frames_sent <- t.frames_sent + 1;
           t.bytes_sent <- Int64.add t.bytes_sent (Int64.of_int len);
           (* Consumers may retain the frame, so they get a right-sized
              copy; benches never register one and pay no allocation. *)
           if t.has_consumer then t.on_frame (Bytes.sub buf 0 len);
           t.irq ()
         end;
         (* The buffer is recycled either way — a reset emptied the ring
            but the frame is no longer referenced. *)
         Stack.push buf t.pool))

let send t =
  if t.tx_len <= 0 || t.tx_len > mtu then t.overflow <- true
  else if t.queued >= tx_ring_slots then begin
    t.overflow <- true;
    t.overflow_count <- t.overflow_count + 1
  end
  else begin
    (* DMA the frame out immediately into a recycled buffer; serialization
       happens on the wire.  The ring bounds in-flight frames, so the pool
       stays at most [tx_ring_slots] buffers deep. *)
    let len = t.tx_len in
    let buf =
      match Stack.pop_opt t.pool with
      | Some b -> b
      | None -> Bytes.create mtu
    in
    Phys_mem.blit_to_bytes t.mem ~addr:t.tx_addr buf ~off:0 ~len;
    t.queued <- t.queued + 1;
    let now = Engine.now t.engine in
    let start =
      if Int64.compare t.wire_busy_until now > 0 then t.wire_busy_until else now
    in
    let done_at = Int64.add start (serialization_cycles t len) in
    t.wire_busy_until <- done_at;
    (match t.tracer with
     | Some tracer ->
       Vmm_obs.Tracer.add_complete tracer ~cat:"dma" ~name:"nic_tx" ~start
         ~stop:done_at ()
     | None -> ());
    arm_tx t ~buf ~len ~done_at
  end

(* Guest-visible TX-ring reset (command 3): drop every queued frame (their
   completion events are epoch-guarded no-ops now), clear pending
   completions and the overflow flag.  The wire itself is untouched — an
   armed stall keeps the wire busy; the reset just gives the driver an
   empty ring to refill behind it.  This is the driver's escape hatch from
   a TX stall that filled the ring. *)
let tx_reset t =
  t.epoch <- t.epoch + 1;
  t.inflight <- [];
  t.queued <- 0;
  t.completions <- 0;
  t.overflow <- false;
  t.tx_resets <- t.tx_resets + 1

let receive_into_buffer t =
  match Queue.take_opt t.rx with
  | None -> ()
  | Some frame -> Phys_mem.load_bytes t.mem ~addr:t.rx_addr frame

let inject_rx t frame =
  t.rx_tap frame;
  Queue.add (Bytes.copy frame) t.rx;
  t.irq ()

let set_rx_tap t f = t.rx_tap <- f

let io_read t offset =
  match offset with
  | 3 ->
    (if t.queued >= tx_ring_slots then 1 else 0)
    lor (if t.completions > 0 then 2 else 0)
    lor (if t.overflow then 4 else 0)
    lor (if Queue.is_empty t.rx then 0 else 8)
  | 5 -> t.frames_sent
  | 7 -> (match Queue.peek_opt t.rx with None -> 0 | Some f -> Bytes.length f)
  | 0 -> t.tx_addr
  | 1 -> t.tx_len
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> t.tx_addr <- v
  | 1 -> t.tx_len <- v
  | 2 ->
    (match v land 3 with
     | 1 -> send t
     | 2 -> receive_into_buffer t
     | 3 -> tx_reset t
     | _ -> ())
  | 4 ->
    if v land 1 <> 0 && t.completions > 0 then
      t.completions <- t.completions - 1;
    if v land 2 <> 0 then t.overflow <- false
  | 6 -> t.rx_addr <- v
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"nic" ~base ~count:8 ~read:(io_read t)
    ~write:(io_write t)

let frames_sent t = t.frames_sent
let bytes_sent t = t.bytes_sent
let overflows t = t.overflow_count

(* Fault injection: the wire refuses to serialize for [cycles]; frames
   submitted meanwhile queue behind the stall (and overflow the ring if
   the guest keeps pushing). *)
let stall_tx t ~cycles =
  if Int64.compare cycles 0L < 0 then invalid_arg "Nic.stall_tx: negative";
  let now = Engine.now t.engine in
  let resume = Int64.add now cycles in
  if Int64.compare resume t.wire_busy_until > 0 then begin
    (* Only the extension beyond already-queued serialization counts as
       stall time — the rest would have been wire-busy anyway. *)
    let busy_from =
      if Int64.compare t.wire_busy_until now > 0 then t.wire_busy_until
      else now
    in
    t.stall_cycles <- Int64.add t.stall_cycles (Int64.sub resume busy_from);
    t.wire_busy_until <- resume
  end;
  t.tx_stalls <- t.tx_stalls + 1

let tx_stalls t = t.tx_stalls
let stall_cycles t = t.stall_cycles
let tx_queued t = t.queued
let tx_ring_resets t = t.tx_resets

(* Warm-restart support: everything [tx_reset] drops plus the DMA/RX
   registers and any waiting inbound frames — power-on state, without
   counting a driver-initiated ring reset.  [wire_busy_until] survives on
   purpose: an armed stall is a property of the wire (the fault plan), not
   of the guest being rebooted.  Cumulative counters survive too. *)
let reset t =
  t.epoch <- t.epoch + 1;
  t.inflight <- [];
  t.queued <- 0;
  t.completions <- 0;
  t.overflow <- false;
  t.tx_addr <- 0;
  t.tx_len <- 0;
  t.rx_addr <- 0;
  Queue.clear t.rx

(* Checkpoint support.  Wire and completion times are captured relative
   (cycles from capture) so a restore at a later absolute time re-arms
   the same serialization schedule; in-flight frames are deep-copied. *)
type tx_op_state = { xs_data : Bytes.t; xs_remaining : int64 }

type state = {
  n_tx_addr : int;
  n_tx_len : int;
  n_completions : int;
  n_overflow : bool;
  n_wire_remaining : int64;
  n_rx : Bytes.t list;
  n_rx_addr : int;
  n_inflight : tx_op_state list;
}

let capture t =
  let now = Engine.now t.engine in
  let rel at =
    let d = Int64.sub at now in
    if Int64.compare d 0L < 0 then 0L else d
  in
  {
    n_tx_addr = t.tx_addr;
    n_tx_len = t.tx_len;
    n_completions = t.completions;
    n_overflow = t.overflow;
    n_wire_remaining = rel t.wire_busy_until;
    n_rx = Queue.fold (fun acc f -> Bytes.copy f :: acc) [] t.rx |> List.rev;
    n_rx_addr = t.rx_addr;
    n_inflight =
      List.map
        (fun op ->
          {
            xs_data = Bytes.sub op.txo_buf 0 op.txo_len;
            xs_remaining = rel op.txo_done_at;
          })
        t.inflight;
  }

let restore t s =
  let now = Engine.now t.engine in
  t.epoch <- t.epoch + 1;
  t.inflight <- [];
  t.tx_addr <- s.n_tx_addr;
  t.tx_len <- s.n_tx_len;
  t.completions <- s.n_completions;
  t.overflow <- s.n_overflow;
  t.wire_busy_until <- Int64.add now s.n_wire_remaining;
  Queue.clear t.rx;
  List.iter (fun f -> Queue.add (Bytes.copy f) t.rx) s.n_rx;
  t.rx_addr <- s.n_rx_addr;
  t.queued <- List.length s.n_inflight;
  List.iter
    (fun xs ->
      let len = Bytes.length xs.xs_data in
      let buf =
        match Stack.pop_opt t.pool with Some b -> b | None -> Bytes.create mtu
      in
      Bytes.blit xs.xs_data 0 buf 0 len;
      arm_tx t ~buf ~len ~done_at:(Int64.add now xs.xs_remaining))
    s.n_inflight

let inflight_tx t = List.length t.inflight
