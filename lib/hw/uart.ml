module Engine = Vmm_sim.Engine

type t = {
  engine : Engine.t;
  costs : Costs.t;
  rx : int Queue.t;
  mutable irq : unit -> unit;
  mutable on_tx : int -> unit;
  mutable ier : int;
  mutable tx_busy_until : int64;
  mutable tx_in_flight : int;
  mutable rx_tap : int -> unit;
}

let create ~engine ~costs () =
  {
    engine;
    costs;
    rx = Queue.create ();
    irq = (fun () -> ());
    on_tx = (fun _ -> ());
    ier = 0;
    tx_busy_until = 0L;
    tx_in_flight = 0;
    rx_tap = (fun _ -> ());
  }

let set_irq t f = t.irq <- f
let set_on_tx t f = t.on_tx <- f
let set_rx_tap t f = t.rx_tap <- f

let inject_rx t byte =
  let byte = byte land 0xFF in
  t.rx_tap byte;
  Queue.add byte t.rx;
  if t.ier land 1 <> 0 then t.irq ()

let rx_pending t = Queue.length t.rx
let tx_in_flight t = t.tx_in_flight

let transmit t byte =
  let now = Engine.now t.engine in
  let start = if Int64.compare t.tx_busy_until now > 0 then t.tx_busy_until else now in
  let done_at = Int64.add start (Int64.of_int t.costs.Costs.uart_cycles_per_byte) in
  t.tx_busy_until <- done_at;
  t.tx_in_flight <- t.tx_in_flight + 1;
  ignore
    (Engine.at t.engine ~time:done_at (fun () ->
         t.tx_in_flight <- t.tx_in_flight - 1;
         t.on_tx byte))

let io_read t offset =
  match offset with
  | 0 -> (try Queue.pop t.rx with Queue.Empty -> 0)
  | 1 ->
    (if Queue.is_empty t.rx then 0 else 1)
    lor (if t.tx_in_flight = 0 then 2 else 0)
  | 2 -> t.ier
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> transmit t (v land 0xFF)
  | 2 ->
    t.ier <- v land 1;
    if t.ier land 1 <> 0 && not (Queue.is_empty t.rx) then t.irq ()
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"uart" ~base ~count:3 ~read:(io_read t)
    ~write:(io_write t)
