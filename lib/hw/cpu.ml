module Engine = Vmm_sim.Engine
module Stats = Vmm_sim.Stats

type gp_reason =
  | Privileged_instruction of Isa.instr
  | Io_denied of int
  | Bad_iret
  | Bad_int_gate of int
  | Bad_vector of int
  | Bad_ring of int

type fault_kind =
  | Page of Mmu.fault
  | Gp of gp_reason
  | Undefined of int
  | Breakpoint_trap
  | Step_trap
  | Machine_check of int

type event =
  | Fault of fault_kind * int
  | Irq of int
  | Soft_int of int * int
  | Hypercall of int * int

type hook_result = Handled | Deliver

exception Panic of string

exception Fault_exn of fault_kind

(* Decoded-instruction cache slot: physically tagged, validated against the
   memory write generations captured at fill time and the CPU-wide flush
   generation.  An 8-byte instruction can touch two generation granules;
   the sum of both granule generations is stored — generations only grow,
   so any store under either granule makes the sum diverge for good. *)
type icache_slot = {
  mutable itag : int; (* physical address, -1 = invalid *)
  mutable igen : int; (* summed Phys_mem granule generations at fill *)
  mutable iflush : int; (* icache_gen at fill *)
  mutable idecoded : Isa.instr;
}

let icache_slots = 2048
let icache_mask = icache_slots - 1

type t = {
  mem : Phys_mem.t;
  bus : Io_bus.t;
  engine : Engine.t;
  costs : Costs.t;
  load : Stats.load;
  mmu : Mmu.t;
  regs : int array;
  mutable pc : int;
  mutable z : bool;
  mutable n : bool;
  mutable c : bool;
  mutable tf : bool;
  mutable if_ : bool;
  mutable cpl : int;
  mutable iht : int;
  mutable ptb : int;
  stacks : int array;
  io_bitmap : Bytes.t;
  mutable halted : bool;
  mutable stopped : bool;
  mutable pic_ack : unit -> int option;
  mutable pic_pending : unit -> bool;
  mutable hypervisor : (t -> event -> hook_result) option;
  mutable retired : int64;
  mutable retire_stop : (int64 * (t -> unit)) option;
      (* reverse-debug replay-to-N: stop when [retired] reaches the
         target, between instructions *)
  mutable irqs_taken : int64;
  mutable faults : int64;
  mutable sample_period : int64;
      (* pc-sampling cadence in cycles; 0 = profiling off, and the
         dispatch loop pays exactly one Int64 compare per instruction *)
  mutable next_sample : int64;
  mutable sample_hook : pc:int -> cpl:int -> unit;
  fetch_buf : Bytes.t;
  icache : icache_slot array;
  mutable icache_gen : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable ic_inval : int;
  (* Block translator (threaded code).  [jit_cyc]/[jit_ret] accumulate
     cycles and retirements in unboxed ints while a block chain runs and
     are flushed to the engine/stats/retired counters at every point
     where anything else could observe them; [jit_limit] is the cycle
     budget of the current chain, relative to the engine clock at chain
     entry, so the per-op continuation guard is one int compare. *)
  jcache : jblock option array;
  mutable jit_enabled : bool;
  mutable jit_pin : int -> bool;
      (* virtual pcs that must start their own block (planted traps);
         installed by the monitor from the debug stub's breakpoint table *)
  mutable jit_cyc : int;
  mutable jit_ret : int;
  mutable jit_limit : int;
  mutable jit_vpn : int; (* virtual page of the executing block's text *)
  mutable jb_compiled : int;
  mutable jb_hits : int;
  mutable jb_inval : int;
  mutable jb_chains : int;
  mutable jb_fallbacks : int;
}

(* Compiled basic block: a straight-line decoded run (optionally ending
   in a direct/indirect jump, call or return) compiled into a chain of
   OCaml closures — threaded code.  Like an icache slot it is physically
   tagged and validated against the granule write generations captured
   over its whole text at compile time plus the CPU-wide flush stamp, so
   self-modifying stores, DMA over text, breakpoint patching and
   LPTB/TLBFLUSH invalidate it exactly as they invalidate decoded
   instructions today. *)
and jblock = {
  jb_ppc : int; (* physical address of the first instruction *)
  jb_bytes : int; (* total encoded length *)
  jb_gsum : int; (* summed granule generations over the text at compile *)
  jb_flush : int; (* icache_gen at compile *)
  jb_entry : t -> unit; (* head of the threaded-code chain *)
}

let table_entries = 64
let jcache_slots = 1024
let jcache_mask = jcache_slots - 1

(* Longest run compiled into one block.  Long enough that hot loops and
   leaf functions compile whole; short enough that a block's generation
   probe at dispatch stays a handful of granule reads. *)
let jit_max_block = 64

let create ~mem ~bus ~engine ~costs ~load () =
  {
    mem;
    bus;
    engine;
    costs;
    load;
    mmu = Mmu.create costs;
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    z = false;
    n = false;
    c = false;
    tf = false;
    if_ = false;
    cpl = 0;
    iht = 0;
    ptb = 0;
    stacks = Array.make 4 0;
    io_bitmap = Bytes.make 8192 '\000';
    halted = false;
    stopped = false;
    pic_ack = (fun () -> None);
    pic_pending = (fun () -> false);
    hypervisor = None;
    retired = 0L;
    retire_stop = None;
    irqs_taken = 0L;
    faults = 0L;
    sample_period = 0L;
    next_sample = 0L;
    sample_hook = (fun ~pc:_ ~cpl:_ -> ());
    fetch_buf = Bytes.make Isa.width '\000';
    icache =
      Array.init icache_slots (fun _ ->
          { itag = -1; igen = 0; iflush = 0; idecoded = Isa.Nop });
    icache_gen = 0;
    ic_hits = 0;
    ic_misses = 0;
    ic_inval = 0;
    jcache = Array.make jcache_slots None;
    jit_enabled = true;
    jit_pin = (fun _ -> false);
    jit_cyc = 0;
    jit_ret = 0;
    jit_limit = 0;
    jit_vpn = 0;
    jb_compiled = 0;
    jb_hits = 0;
    jb_inval = 0;
    jb_chains = 0;
    jb_fallbacks = 0;
  }

let set_pic t ~ack ~pending =
  t.pic_ack <- ack;
  t.pic_pending <- pending

let set_hypervisor t hook = t.hypervisor <- hook
let has_hypervisor t = t.hypervisor <> None

(* -- Architectural state -- *)

let read_reg t r = t.regs.(r)
let write_reg t r v = t.regs.(r) <- Word.mask v
let pc t = t.pc
let set_pc t v = t.pc <- Word.mask v
let cpl t = t.cpl
let set_cpl t v = t.cpl <- v land 3

let flags_word t =
  (if t.z then 1 else 0)
  lor (if t.n then 2 else 0)
  lor (if t.c then 4 else 0)
  lor (if t.tf then 0x100 else 0)
  lor (if t.if_ then 0x200 else 0)
  lor (t.cpl lsl 12)

let set_flags_word t w =
  t.z <- w land 1 <> 0;
  t.n <- w land 2 <> 0;
  t.c <- w land 4 <> 0;
  t.tf <- w land 0x100 <> 0;
  t.if_ <- w land 0x200 <> 0;
  t.cpl <- (w lsr 12) land 3

let interrupts_enabled t = t.if_
let set_interrupts_enabled t v = t.if_ <- v
let trap_flag t = t.tf
let set_trap_flag t v = t.tf <- v
let iht_base t = t.iht
let set_iht_base t v = t.iht <- Word.mask v
let ptb t = t.ptb

let flush_tlb t =
  Mmu.flush t.mmu;
  (* O(1) whole-icache drop: entries filled under an older generation stop
     validating.  The monitor flushes on every shadow-table update, so this
     must not walk the array. *)
  t.icache_gen <- t.icache_gen + 1

let set_ptb t v =
  t.ptb <- Word.mask v;
  flush_tlb t

let ring_stack t ring = t.stacks.(ring land 3)
let set_ring_stack t ring v = t.stacks.(ring land 3) <- Word.mask v
let halted t = t.halted
let set_halted t v = t.halted <- v
let stopped t = t.stopped
let set_stopped t v = t.stopped <- v

(* -- I/O permission bitmap -- *)

let allow_port t port allowed =
  if port < 0 || port >= Io_bus.port_space then invalid_arg "Cpu.allow_port";
  let byte = Char.code (Bytes.get t.io_bitmap (port lsr 3)) in
  let bit = 1 lsl (port land 7) in
  let byte = if allowed then byte lor bit else byte land lnot bit in
  Bytes.set t.io_bitmap (port lsr 3) (Char.chr byte)

let port_allowed t port =
  port >= 0
  && port < Io_bus.port_space
  && Char.code (Bytes.get t.io_bitmap (port lsr 3)) land (1 lsl (port land 7)) <> 0

(* -- Cycle accounting -- *)

let charge t cycles =
  if cycles > 0 then begin
    let c = Int64.of_int cycles in
    Engine.advance t.engine c;
    Stats.note_busy t.load c
  end

(* -- Translated memory access -- *)

let translate t ~access ~cpl vaddr =
  let paddr, extra =
    Mmu.translate t.mmu t.mem ~ptb:t.ptb ~cpl access (Word.mask vaddr)
  in
  charge t extra;
  paddr

(* Multi-byte accesses that straddle a page fall back to byte-at-a-time so
   each byte is translated in its own page. *)
let load_u32 t ~cpl vaddr =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.read_u32 t.mem (translate t ~access:Mmu.Read ~cpl vaddr)
  else begin
    let b0 = Phys_mem.read_u8 t.mem (translate t ~access:Mmu.Read ~cpl vaddr) in
    let b1 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 1))
    in
    let b2 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 2))
    in
    let b3 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 3))
    in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

let store_u32 t ~cpl vaddr v =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.write_u32 t.mem (translate t ~access:Mmu.Write ~cpl vaddr) v
  else
    for i = 0 to 3 do
      Phys_mem.write_u8 t.mem
        (translate t ~access:Mmu.Write ~cpl (Word.add vaddr i))
        ((v lsr (8 * i)) land 0xFF)
    done

let load_u8 t ~cpl vaddr =
  Phys_mem.read_u8 t.mem (translate t ~access:Mmu.Read ~cpl (Word.mask vaddr))

let store_u8 t ~cpl vaddr v =
  Phys_mem.write_u8 t.mem
    (translate t ~access:Mmu.Write ~cpl (Word.mask vaddr))
    v

(* -- Interrupt table -- *)

type gate = { handler : int; present : bool; ring : int; dpl : int }

let read_gate t ~table ~vector =
  if vector < 0 || vector >= table_entries then
    raise (Fault_exn (Gp (Bad_vector vector)));
  let base = Word.add table (8 * vector) in
  let handler = load_u32 t ~cpl:0 base in
  let info = load_u32 t ~cpl:0 (Word.add base 4) in
  {
    handler;
    present = info land 1 <> 0;
    ring = (info lsr 1) land 3;
    dpl = (info lsr 3) land 3;
  }

let push_frame t ~ring ~sp ~value =
  let sp = Word.sub sp 4 in
  store_u32 t ~cpl:ring sp value;
  sp

let deliver t ~table ~vector ~error ~return_pc =
  let gate = read_gate t ~table ~vector in
  if not gate.present then
    raise (Panic (Printf.sprintf "no handler for vector %d" vector));
  let old_sp = t.regs.(Isa.sp) in
  let old_flags = flags_word t in
  let ring = gate.ring in
  let sp0 = if ring < t.cpl then t.stacks.(ring) else old_sp in
  let sp1 = push_frame t ~ring ~sp:sp0 ~value:old_sp in
  let sp2 = push_frame t ~ring ~sp:sp1 ~value:old_flags in
  let sp3 = push_frame t ~ring ~sp:sp2 ~value:(Word.mask return_pc) in
  let sp4 = push_frame t ~ring ~sp:sp3 ~value:(Word.mask error) in
  t.regs.(Isa.sp) <- sp4;
  t.cpl <- ring;
  t.if_ <- false;
  t.tf <- false;
  t.pc <- gate.handler;
  charge t t.costs.interrupt_delivery

let do_iret t =
  let sp = t.regs.(Isa.sp) in
  let _error = load_u32 t ~cpl:0 sp in
  let return_pc = load_u32 t ~cpl:0 (Word.add sp 4) in
  let flags = load_u32 t ~cpl:0 (Word.add sp 8) in
  let old_sp = load_u32 t ~cpl:0 (Word.add sp 12) in
  set_flags_word t flags;
  t.regs.(Isa.sp) <- old_sp;
  t.pc <- return_pc;
  charge t t.costs.iret_cost

(* -- Fault dispatch -- *)

let vector_and_error = function
  | Page f -> (Isa.vec_page_fault, Word.mask f.Mmu.vaddr)
  | Gp (Io_denied port) -> (Isa.vec_protection, port)
  | Gp (Bad_int_gate v) -> (Isa.vec_protection, v)
  | Gp (Bad_vector v) -> (Isa.vec_protection, v)
  | Gp (Privileged_instruction _) | Gp Bad_iret | Gp (Bad_ring _) ->
    (Isa.vec_protection, 0)
  | Undefined opcode -> (Isa.vec_undefined, opcode)
  | Breakpoint_trap -> (Isa.vec_breakpoint, 0)
  | Step_trap -> (Isa.vec_debug_step, 0)
  | Machine_check addr -> (Isa.vec_machine_check, Word.mask addr)

let hw_deliver_fault t kind ~return_pc =
  let vector, error = vector_and_error kind in
  try deliver t ~table:t.iht ~vector ~error ~return_pc with
  | Fault_exn _ | Mmu.Page_fault _ | Phys_mem.Bus_error _ ->
    raise (Panic (Printf.sprintf "double fault delivering vector %d" vector))

let dispatch_fault t kind ~return_pc =
  t.faults <- Int64.add t.faults 1L;
  match t.hypervisor with
  | Some hook ->
    (match hook t (Fault (kind, return_pc)) with
     | Handled -> ()
     | Deliver -> hw_deliver_fault t kind ~return_pc)
  | None -> hw_deliver_fault t kind ~return_pc

let poll_interrupts t =
  let bare_metal = match t.hypervisor with None -> true | Some _ -> false in
  if t.if_ && t.pic_pending () && not (t.stopped && bare_metal) then
    match t.pic_ack () with
    | None -> ()
    | Some vector ->
      t.halted <- false;
      t.irqs_taken <- Int64.add t.irqs_taken 1L;
      (match t.hypervisor with
       | Some hook ->
         (match hook t (Irq vector) with
          | Handled -> ()
          | Deliver ->
            deliver t ~table:t.iht ~vector ~error:0 ~return_pc:t.pc)
       | None -> deliver t ~table:t.iht ~vector ~error:0 ~return_pc:t.pc)

let dispatch_soft t ~vector ~next_pc =
  match t.hypervisor with
  | Some hook ->
    (match hook t (Soft_int (vector, next_pc)) with
     | Handled -> ()
     | Deliver ->
       let gate = read_gate t ~table:t.iht ~vector in
       if (not gate.present) || gate.dpl < t.cpl then
         raise (Fault_exn (Gp (Bad_int_gate vector)))
       else deliver t ~table:t.iht ~vector ~error:0 ~return_pc:next_pc)
  | None ->
    let gate = read_gate t ~table:t.iht ~vector in
    if (not gate.present) || gate.dpl < t.cpl then
      raise (Fault_exn (Gp (Bad_int_gate vector)))
    else deliver t ~table:t.iht ~vector ~error:0 ~return_pc:next_pc

(* -- Fetch -- *)

let fetch_cached t paddr =
  let slot = Array.unsafe_get t.icache ((paddr lsr 3) land icache_mask) in
  let pgen =
    Phys_mem.generation t.mem paddr
    + Phys_mem.generation t.mem (paddr + (Isa.width - 1))
  in
  if slot.itag = paddr && slot.iflush = t.icache_gen && slot.igen = pgen
  then begin
    t.ic_hits <- t.ic_hits + 1;
    slot.idecoded
  end
  else begin
    if slot.itag = paddr then t.ic_inval <- t.ic_inval + 1;
    t.ic_misses <- t.ic_misses + 1;
    let instr = Isa.read t.mem paddr in
    slot.itag <- paddr;
    slot.igen <- pgen;
    slot.iflush <- t.icache_gen;
    slot.idecoded <- instr;
    instr
  end

let fetch t =
  let pc = t.pc in
  if pc land 0xFFF <= Mmu.page_size - Isa.width then begin
    let paddr = translate t ~access:Mmu.Exec ~cpl:t.cpl pc in
    if paddr >= 0 && paddr + Isa.width <= Phys_mem.size t.mem then
      fetch_cached t paddr
    else
      (* Translation does not bound physical addresses (identity map when
         paging is off, PTE frames above RAM), and the generation probe in
         [fetch_cached] is unchecked — take the checked read, which raises
         Bus_error and becomes a guest machine check. *)
      Isa.read t.mem paddr
  end
  else begin
    for i = 0 to Isa.width - 1 do
      let paddr = translate t ~access:Mmu.Exec ~cpl:t.cpl (Word.add pc i) in
      Bytes.set t.fetch_buf i (Char.chr (Phys_mem.read_u8 t.mem paddr))
    done;
    Isa.decode ~addr:pc t.fetch_buf ~off:0
  end

(* -- Port I/O -- *)

let check_port t port =
  if t.cpl <> 0 && not (port_allowed t port) then
    raise (Fault_exn (Gp (Io_denied port)))

let port_in t port =
  let port = port land 0xFFFF in
  check_port t port;
  charge t t.costs.port_io;
  Io_bus.read t.bus port

let port_out t port v =
  let port = port land 0xFFFF in
  check_port t port;
  charge t t.costs.port_io;
  Io_bus.write t.bus port v

(* -- Block operations -- *)

let copy_block t ~dst ~src ~len =
  charge t (Costs.cycles_for_bytes ~per_byte:t.costs.copy_per_byte len);
  let rec go dst src len =
    if len > 0 then begin
      let src_room = Mmu.page_size - (src land 0xFFF) in
      let dst_room = Mmu.page_size - (dst land 0xFFF) in
      let chunk = min len (min src_room dst_room) in
      let psrc = translate t ~access:Mmu.Read ~cpl:t.cpl src in
      let pdst = translate t ~access:Mmu.Write ~cpl:t.cpl dst in
      Phys_mem.blit t.mem ~src:psrc ~dst:pdst ~len:chunk;
      go (Word.add dst chunk) (Word.add src chunk) (len - chunk)
    end
  in
  go (Word.mask dst) (Word.mask src) len

let checksum_block t ~addr ~len =
  charge t (Costs.cycles_for_bytes ~per_byte:t.costs.csum_per_byte len);
  (* Internet checksum with little-endian 16-bit pairing, accumulated chunk
     by chunk so page boundaries keep global byte parity. *)
  let sum = ref 0 in
  let index = ref 0 in
  let rec go addr len =
    if len > 0 then begin
      let room = Mmu.page_size - (addr land 0xFFF) in
      let chunk = min len room in
      let paddr = translate t ~access:Mmu.Read ~cpl:t.cpl addr in
      sum := Phys_mem.checksum_add t.mem ~addr:paddr ~len:chunk ~index:!index !sum;
      index := !index + chunk;
      go (Word.add addr chunk) (len - chunk)
    end
  in
  go (Word.mask addr) len;
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

(* -- Execution -- *)

let require_ring0 t i =
  if t.cpl <> 0 then raise (Fault_exn (Gp (Privileged_instruction i)))

let set_zn t v =
  t.z <- v = 0;
  t.n <- v land 0x80000000 <> 0

let exec t instr =
  let next = Word.add t.pc Isa.width in
  let r = t.regs in
  let goto a = t.pc <- Word.mask a in
  charge t (Isa.base_cycles t.costs instr);
  match instr with
  | Isa.Nop -> goto next
  | Isa.Hlt ->
    require_ring0 t instr;
    t.halted <- true;
    goto next
  | Isa.Movi (rd, imm) ->
    r.(rd) <- imm;
    goto next
  | Isa.Mov (rd, rs) ->
    r.(rd) <- r.(rs);
    goto next
  | Isa.Add (rd, a, b) ->
    r.(rd) <- Word.add r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Addi (rd, a, imm) ->
    r.(rd) <- Word.add r.(a) imm;
    set_zn t r.(rd);
    goto next
  | Isa.Sub (rd, a, b) ->
    r.(rd) <- Word.sub r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.And_ (rd, a, b) ->
    r.(rd) <- Word.logand r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Or_ (rd, a, b) ->
    r.(rd) <- Word.logor r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Xor_ (rd, a, b) ->
    r.(rd) <- Word.logxor r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Shl (rd, a, b) ->
    r.(rd) <- Word.shift_left r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Shr (rd, a, b) ->
    r.(rd) <- Word.shift_right r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Mul (rd, a, b) ->
    r.(rd) <- Word.mul r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Cmp (a, b) ->
    t.z <- Word.equal r.(a) r.(b);
    t.n <- Word.signed_lt r.(a) r.(b);
    t.c <- Word.unsigned_lt r.(a) r.(b);
    goto next
  | Isa.Cmpi (a, imm) ->
    t.z <- Word.equal r.(a) imm;
    t.n <- Word.signed_lt r.(a) imm;
    t.c <- Word.unsigned_lt r.(a) imm;
    goto next
  | Isa.Ld (rd, base, imm) ->
    r.(rd) <- load_u32 t ~cpl:t.cpl (Word.add r.(base) imm);
    goto next
  | Isa.St (base, imm, src) ->
    store_u32 t ~cpl:t.cpl (Word.add r.(base) imm) r.(src);
    goto next
  | Isa.Ldb (rd, base, imm) ->
    r.(rd) <- load_u8 t ~cpl:t.cpl (Word.add r.(base) imm);
    goto next
  | Isa.Stb (base, imm, src) ->
    store_u8 t ~cpl:t.cpl (Word.add r.(base) imm) (r.(src) land 0xFF);
    goto next
  | Isa.Jmp target -> goto target
  | Isa.Jz target -> goto (if t.z then target else next)
  | Isa.Jnz target -> goto (if not t.z then target else next)
  | Isa.Jlt target -> goto (if t.n then target else next)
  | Isa.Jge target -> goto (if not t.n then target else next)
  | Isa.Jb target -> goto (if t.c then target else next)
  | Isa.Jae target -> goto (if not t.c then target else next)
  | Isa.Jr rs -> goto r.(rs)
  | Isa.Call target ->
    let sp = Word.sub r.(Isa.sp) 4 in
    store_u32 t ~cpl:t.cpl sp next;
    r.(Isa.sp) <- sp;
    goto target
  | Isa.Ret ->
    let sp = r.(Isa.sp) in
    let target = load_u32 t ~cpl:t.cpl sp in
    r.(Isa.sp) <- Word.add sp 4;
    goto target
  | Isa.Push rs ->
    let sp = Word.sub r.(Isa.sp) 4 in
    store_u32 t ~cpl:t.cpl sp r.(rs);
    r.(Isa.sp) <- sp;
    goto next
  | Isa.Pop rd ->
    let sp = r.(Isa.sp) in
    let v = load_u32 t ~cpl:t.cpl sp in
    r.(Isa.sp) <- Word.add sp 4;
    r.(rd) <- v;
    goto next
  | Isa.In_ (rd, rs) ->
    r.(rd) <- Word.mask (port_in t r.(rs));
    goto next
  | Isa.Ini (rd, imm) ->
    r.(rd) <- Word.mask (port_in t imm);
    goto next
  | Isa.Out (p, v) ->
    port_out t r.(p) r.(v);
    goto next
  | Isa.Outi (imm, v) ->
    port_out t imm r.(v);
    goto next
  | Isa.Int_ vector -> dispatch_soft t ~vector ~next_pc:next
  | Isa.Iret ->
    require_ring0 t instr;
    do_iret t
  | Isa.Sti ->
    require_ring0 t instr;
    t.if_ <- true;
    goto next
  | Isa.Cli ->
    require_ring0 t instr;
    t.if_ <- false;
    goto next
  | Isa.Liht rs ->
    require_ring0 t instr;
    t.iht <- r.(rs);
    goto next
  | Isa.Lptb rs ->
    require_ring0 t instr;
    set_ptb t r.(rs);
    goto next
  | Isa.Lstk (ring, rs) ->
    require_ring0 t instr;
    t.stacks.(ring land 3) <- r.(rs);
    goto next
  | Isa.Tlbflush ->
    require_ring0 t instr;
    flush_tlb t;
    goto next
  | Isa.Copy (d, s, n) ->
    copy_block t ~dst:r.(d) ~src:r.(s) ~len:r.(n);
    goto next
  | Isa.Csum (rd, a, n) ->
    r.(rd) <- checksum_block t ~addr:r.(a) ~len:r.(n);
    goto next
  | Isa.Rdtsc rd ->
    r.(rd) <- Word.mask (Int64.to_int (Engine.now t.engine));
    goto next
  | Isa.Vmcall imm ->
    (match t.hypervisor with
     | Some hook ->
       goto next;
       ignore (hook t (Hypercall (imm, next)))
     | None -> raise (Fault_exn (Undefined 0x2E)))
  | Isa.Brk -> raise (Fault_exn Breakpoint_trap)

(* -- Basic-block threaded-code translator --

   [jit_run] replaces [step] inside the batched dispatch loop whenever no
   per-instruction observer is armed (no trap flag, no retire stop, no
   deliverable interrupt).  It compiles straight-line decoded runs into
   chains of closures keyed by physical pc and executes them, chaining
   across taken jumps/calls/returns while the cycle budget holds.

   Bit-identity with the per-instruction interpreter rests on four
   invariants:

   1. Frozen clock.  While a chain runs, nothing reads the engine clock:
      every charge lands in the unboxed [jit_cyc] accumulator, so true
      time is always [now-at-entry + jit_cyc], and the per-op budget
      guard [jit_cyc < jit_limit] is exactly the unbatched loop's
      [now < min horizon next_sample] test.  The accumulator (and the
      retirement accumulator [jit_ret]) is flushed before anything that
      could observe the clock or counters runs: an interpreter fallback,
      a fault hook, or returning to [run_batch].  Chains therefore stop
      on the same instruction boundary where the unbatched loop would
      have stopped for the horizon, a profiler sample, or an event.

   2. Poll elision.  Compiled ops cannot change IF, HALT, the PIC, or
      schedule events — STI/CLI/HLT/OUT/VMCALL and friends never compile
      — so if no interrupt was deliverable when the chain started (the
      dispatcher checks), none can become deliverable mid-chain, and the
      skipped per-instruction polls were all no-ops.

   3. Fetch elision.  Instruction 1's fetch-translate runs for real at
      dispatch (charging a TLB miss and setting accessed bits exactly
      like the interpreter's fetch).  Later ops skip it, which is only
      visible if a data access evicts the code page's direct-mapped TLB
      entry — the next fetch would walk again, charging cycles and
      writing accessed bits.  Memory ops therefore guard on
      [Mmu.tlb_covers] for the code page and bail to the dispatcher when
      it fails (with paging off there is nothing to evict).  The only
      tolerated divergence is the MMU's internal hit counter, which no
      guest-visible path reads.

   4. Text stability.  A block is (re)validated at every dispatch against
      the granule write generations of its whole text plus the flush
      stamp.  Mid-chain, the only writers are the compiled stores
      themselves: each store checks its physical range against the
      block's text and stops the chain short when it intersects, so the
      remaining stale ops never run — the dispatcher revalidates,
      recompiles from the fresh bytes and continues.  DMA and host writes
      cannot happen mid-chain because no events dispatch mid-chain.

   Faults propagate out of the chain as exceptions with pc still at the
   faulting instruction (ops advance pc only after all faulting work is
   done, like [exec]); the handler flushes the accumulators and
   dispatches with [return_pc = pc], then returns to [run_batch] — hooks
   may halt, stop, schedule or retarget the CPU, all of which the batch
   loop re-checks. *)

let jit_flush t =
  if t.jit_cyc > 0 then begin
    let c = Int64.of_int t.jit_cyc in
    Engine.advance t.engine c;
    Stats.note_busy t.load c;
    t.jit_cyc <- 0
  end;
  if t.jit_ret > 0 then begin
    t.retired <- Int64.add t.retired (Int64.of_int t.jit_ret);
    t.jit_ret <- 0
  end

(* Translation for compiled ops: identical to [translate]/[load_u32]/...
   except the TLB-miss penalty lands in the accumulator instead of the
   engine (invariant 1 above). *)
let jit_translate t ~access vaddr =
  let paddr, extra =
    Mmu.translate t.mmu t.mem ~ptb:t.ptb ~cpl:t.cpl access (Word.mask vaddr)
  in
  if extra > 0 then t.jit_cyc <- t.jit_cyc + extra;
  paddr

let jit_load_u32 t vaddr =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.read_u32 t.mem (jit_translate t ~access:Mmu.Read vaddr)
  else begin
    let b0 = Phys_mem.read_u8 t.mem (jit_translate t ~access:Mmu.Read vaddr) in
    let b1 =
      Phys_mem.read_u8 t.mem (jit_translate t ~access:Mmu.Read (Word.add vaddr 1))
    in
    let b2 =
      Phys_mem.read_u8 t.mem (jit_translate t ~access:Mmu.Read (Word.add vaddr 2))
    in
    let b3 =
      Phys_mem.read_u8 t.mem (jit_translate t ~access:Mmu.Read (Word.add vaddr 3))
    in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

let jit_load_u8 t vaddr =
  Phys_mem.read_u8 t.mem (jit_translate t ~access:Mmu.Read (Word.mask vaddr))

(* Plain store, used by the block-final CALL (no ops follow, so a store
   over this block's own text needs no special handling — the next
   dispatch revalidates). *)
let jit_store_u32 t vaddr v =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.write_u32 t.mem (jit_translate t ~access:Mmu.Write vaddr) v
  else
    for i = 0 to 3 do
      Phys_mem.write_u8 t.mem
        (jit_translate t ~access:Mmu.Write (Word.add vaddr i))
        ((v lsr (8 * i)) land 0xFF)
    done

(* Mid-block stores report whether they wrote over the block's own text
   (invariant 4): [true] means the chain must stop before the next op. *)
let jit_store_u32_chk t ~bppc ~bbytes vaddr v =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then begin
    let p = jit_translate t ~access:Mmu.Write vaddr in
    Phys_mem.write_u32 t.mem p v;
    p + 4 > bppc && p < bppc + bbytes
  end
  else begin
    let hit = ref false in
    for i = 0 to 3 do
      let p = jit_translate t ~access:Mmu.Write (Word.add vaddr i) in
      Phys_mem.write_u8 t.mem p ((v lsr (8 * i)) land 0xFF);
      if p >= bppc && p < bppc + bbytes then hit := true
    done;
    !hit
  end

let jit_store_u8_chk t ~bppc ~bbytes vaddr v =
  let p = jit_translate t ~access:Mmu.Write (Word.mask vaddr) in
  Phys_mem.write_u8 t.mem p v;
  p >= bppc && p < bppc + bbytes

(* Chain terminator for blocks that end at a page boundary, a pinned
   site, or an interpreter-only instruction: pc already points at the
   next instruction, so the dispatcher takes over. *)
let jit_block_end (_ : t) = ()

(* Mid-block instruction set.  Every constructor accepted here has a
   matching arm in [compile_op]; keep the two in sync.  The excluded
   fallthrough instructions (I/O, privileged control, COPY/CSUM, RDTSC,
   VMCALL, INT, HLT) end the block and run in the interpreter: they
   reach devices, rings, the clock or the monitor — exactly where the
   unbatched loop's per-instruction bookkeeping is observable. *)
let jit_compiles_mid = function
  | Isa.Nop | Isa.Movi _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _ | Isa.Sub _
  | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _ | Isa.Shl _ | Isa.Shr _ | Isa.Mul _
  | Isa.Cmp _ | Isa.Cmpi _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _ | Isa.Stb _
  | Isa.Push _ | Isa.Pop _ ->
    true
  | _ -> false

(* Compile one straight-line instruction into an op closure.  Each op
   charges its base cost into the accumulator, replicates [exec]'s work
   and state-update order exactly (pc advances only after all faulting
   work, flags after the result write), counts the retirement, and
   tail-calls [next] while the cycle budget holds — memory ops, the only
   ops that can disturb the TLB, additionally require the code page to
   still be resident (invariant 3).  Returns [None] for instructions
   that must run in the interpreter. *)
let compile_op cpu instr ~bppc ~bbytes ~(next : t -> unit) : (t -> unit) option
    =
  let w = Isa.width in
  let cyc = Isa.base_cycles cpu.costs instr in
  match instr with
  | Isa.Nop ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Movi (rd, imm) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.regs.(rd) <- imm;
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Mov (rd, rs) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.regs.(rd) <- t.regs.(rs);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Add (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.add r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Addi (rd, a, imm) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.add r.(a) imm;
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Sub (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.sub r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.And_ (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.logand r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Or_ (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.logor r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Xor_ (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.logxor r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Shl (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.shift_left r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Shr (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.shift_right r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Mul (rd, a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- Word.mul r.(a) r.(b);
        set_zn t r.(rd);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Cmp (a, b) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        t.z <- Word.equal r.(a) r.(b);
        t.n <- Word.signed_lt r.(a) r.(b);
        t.c <- Word.unsigned_lt r.(a) r.(b);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Cmpi (a, imm) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        t.z <- Word.equal r.(a) imm;
        t.n <- Word.signed_lt r.(a) imm;
        t.c <- Word.unsigned_lt r.(a) imm;
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if t.jit_cyc < t.jit_limit then next t)
  | Isa.Ld (rd, base, imm) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- jit_load_u32 t (Word.add r.(base) imm);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | Isa.St (base, imm, src) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let hit = jit_store_u32_chk t ~bppc ~bbytes (Word.add r.(base) imm) r.(src) in
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          (not hit)
          && t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | Isa.Ldb (rd, base, imm) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        r.(rd) <- jit_load_u8 t (Word.add r.(base) imm);
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | Isa.Stb (base, imm, src) ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let hit =
          jit_store_u8_chk t ~bppc ~bbytes (Word.add r.(base) imm)
            (r.(src) land 0xFF)
        in
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          (not hit)
          && t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | Isa.Push rs ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let sp = Word.sub r.(Isa.sp) 4 in
        let hit = jit_store_u32_chk t ~bppc ~bbytes sp r.(rs) in
        r.(Isa.sp) <- sp;
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          (not hit)
          && t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | Isa.Pop rd ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let sp = r.(Isa.sp) in
        let v = jit_load_u32 t sp in
        r.(Isa.sp) <- Word.add sp 4;
        r.(rd) <- v;
        t.pc <- Word.add t.pc w;
        t.jit_ret <- t.jit_ret + 1;
        if
          t.jit_cyc < t.jit_limit
          && (t.ptb = 0 || Mmu.tlb_covers t.mmu ~vpn:t.jit_vpn)
        then next t)
  | _ -> None

(* Compile a block-final control transfer.  These end the chain — the
   dispatcher decides whether to follow (superblock chaining) — so they
   carry no continuation guard.  Returns [None] for anything that is not
   a compilable transfer (IRET, BRK and all fallthroughs take the
   interpreter). *)
let compile_final cpu instr : (t -> unit) option =
  let w = Isa.width in
  let cyc = Isa.base_cycles cpu.costs instr in
  match instr with
  | Isa.Jmp target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- tgt;
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jz target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if t.z then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jnz target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if not t.z then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jlt target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if t.n then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jge target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if not t.n then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jb target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if t.c then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jae target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- (if not t.c then tgt else Word.add t.pc w);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Jr rs ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        t.pc <- Word.mask t.regs.(rs);
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Call target ->
    let tgt = Word.mask target in
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let ret = Word.add t.pc w in
        let sp = Word.sub r.(Isa.sp) 4 in
        jit_store_u32 t sp ret;
        r.(Isa.sp) <- sp;
        t.pc <- tgt;
        t.jit_ret <- t.jit_ret + 1)
  | Isa.Ret ->
    Some
      (fun t ->
        t.jit_cyc <- t.jit_cyc + cyc;
        let r = t.regs in
        let sp = r.(Isa.sp) in
        let tgt = jit_load_u32 t sp in
        r.(Isa.sp) <- Word.add sp 4;
        t.pc <- Word.mask tgt;
        t.jit_ret <- t.jit_ret + 1)
  | _ -> None

let jit_gsum t ~ppc ~bytes =
  let g = Phys_mem.granule_bits in
  let first = ppc lsr g and last = (ppc + bytes - 1) lsr g in
  let sum = ref 0 in
  for i = first to last do
    sum := !sum + Phys_mem.generation t.mem (i lsl g)
  done;
  !sum

(* Compile the run starting at [vpc] (physically at [ppc], both inside
   one page — blocks never cross a page boundary, so virtual and
   physical offsets advance in lockstep).  Stops at the page end, the
   length cap, an interpreter-only instruction, an undecodable slot, or
   a pinned pc (planted breakpoint sites must head their own block so
   the trap fires before any compiled op runs).  Ops are chained back to
   front; pc updates inside ops are pc-relative (or absolute targets
   from the encoding), so a block is reusable across virtual mappings of
   the same physical text — which is exactly what physical keying
   promises. *)
let compile_block t ~vpc ~ppc : jblock option =
  if t.jit_pin vpc then None
  else begin
    let w = Isa.width in
    let vroom = (Mmu.page_size - (vpc land (Mmu.page_size - 1))) / w in
    let proom = (Phys_mem.size t.mem - ppc) / w in
    let room = min jit_max_block (min vroom proom) in
    let mids = Array.make (max room 1) Isa.Nop in
    let n_mid = ref 0 in
    let final = ref None in
    let stop = ref false in
    while (not !stop) && Option.is_none !final && !n_mid < room do
      let off = !n_mid * w in
      if !n_mid > 0 && t.jit_pin (vpc + off) then stop := true
      else
        match Isa.read t.mem (ppc + off) with
        | exception Isa.Decode_error _ -> stop := true
        | i ->
          (match Isa.flow_of i with
           | Isa.Fallthrough ->
             if jit_compiles_mid i then begin
               mids.(!n_mid) <- i;
               incr n_mid
             end
             else stop := true
           | Isa.Jump _ | Isa.Branch _ | Isa.Call_to _ | Isa.Indirect
           | Isa.Return ->
             final := Some i
           | Isa.Int_return | Isa.Terminal -> stop := true)
    done;
    let tail, n_final =
      match !final with
      | Some i ->
        (match compile_final t i with
         | Some op -> (op, 1)
         | None -> (jit_block_end, 0))
      | None -> (jit_block_end, 0)
    in
    let total = !n_mid + n_final in
    if total = 0 then None
    else begin
      (* The validated byte range always covers the full decoded run even
         if closure construction bails early below: over-approximating
         the text only invalidates more often, never less. *)
      let bytes = (!n_mid + (match !final with Some _ -> 1 | None -> 0)) * w in
      let bppc = ppc and bbytes = bytes in
      let entry = ref tail in
      for k = !n_mid - 1 downto 0 do
        match compile_op t mids.(k) ~bppc ~bbytes ~next:!entry with
        | Some op -> entry := op
        | None ->
          (* Unreachable while [jit_compiles_mid] and [compile_op] agree;
             ending the block here keeps it safe even if they drift. *)
          entry := jit_block_end
      done;
      t.jb_compiled <- t.jb_compiled + 1;
      Some
        {
          jb_ppc = ppc;
          jb_bytes = bytes;
          jb_gsum = jit_gsum t ~ppc ~bytes;
          jb_flush = t.icache_gen;
          jb_entry = !entry;
        }
    end
  end

(* Direct-mapped lookup with full revalidation (invariant 4): stamp and
   generation sum must both match, else recompile from current bytes. *)
let jit_block_at t ~ppc : jblock option =
  let slot = (ppc lsr 3) land jcache_mask in
  match t.jcache.(slot) with
  | Some b when b.jb_ppc = ppc ->
    if b.jb_flush = t.icache_gen && jit_gsum t ~ppc ~bytes:b.jb_bytes = b.jb_gsum
    then begin
      t.jb_hits <- t.jb_hits + 1;
      Some b
    end
    else begin
      t.jb_inval <- t.jb_inval + 1;
      let nb = compile_block t ~vpc:t.pc ~ppc in
      t.jcache.(slot) <- nb;
      nb
    end
  | prev ->
    let nb = compile_block t ~vpc:t.pc ~ppc in
    (match nb with
     | Some _ -> t.jcache.(slot) <- nb
     | None -> ignore prev);
    nb

let read_instr t vaddr =
  if vaddr land 0xFFF <= Mmu.page_size - Isa.width then
    Isa.read t.mem (translate t ~access:Mmu.Read ~cpl:0 vaddr)
  else begin
    let buf = Bytes.create Isa.width in
    for i = 0 to Isa.width - 1 do
      let paddr = translate t ~access:Mmu.Read ~cpl:0 (Word.add vaddr i) in
      Bytes.set buf i (Char.chr (Phys_mem.read_u8 t.mem paddr))
    done;
    Isa.decode ~addr:vaddr buf ~off:0
  end

let step t =
  let start_pc = t.pc in
  let tf0 = t.tf in
  try
    let instr = fetch t in
    exec t instr;
    t.retired <- Int64.add t.retired 1L;
    (match t.retire_stop with
     | Some (target, on_stop) when Int64.compare t.retired target >= 0 ->
       (* Landed on the requested instruction boundary: freeze with pc at
          the next instruction to execute, exactly like a debugger stop. *)
       t.retire_stop <- None;
       t.stopped <- true;
       on_stop t
     | _ -> ());
    if tf0 && t.tf then begin
      (* Trap after the stepped instruction; handlers run with TF clear. *)
      t.faults <- Int64.add t.faults 1L;
      match t.hypervisor with
      | Some hook ->
        (match hook t (Fault (Step_trap, t.pc)) with
         | Handled -> ()
         | Deliver -> hw_deliver_fault t Step_trap ~return_pc:t.pc)
      | None -> hw_deliver_fault t Step_trap ~return_pc:t.pc
    end
  with
  | Fault_exn kind -> dispatch_fault t kind ~return_pc:start_pc
  | Mmu.Page_fault f -> dispatch_fault t (Page f) ~return_pc:start_pc
  | Phys_mem.Bus_error addr ->
    dispatch_fault t (Machine_check addr) ~return_pc:start_pc
  | Isa.Decode_error { opcode; _ } ->
    dispatch_fault t (Undefined opcode) ~return_pc:start_pc

(* Dispatch loop of the block translator: execute compiled blocks from
   the cache, chaining across taken transfers while the cycle budget
   [limit] holds, and falling back to one interpreter [step] whenever the
   pc cannot head a block (straddling fetch, out-of-RAM text,
   interpreter-only instruction, pinned site).  At least one instruction
   always retires.  See the invariant comment at the translator above
   for why this is bit-identical to stepping. *)
let jit_run t ~limit =
  t.jit_cyc <- 0;
  t.jit_ret <- 0;
  let rel = Int64.sub limit (Engine.now t.engine) in
  t.jit_limit <-
    (if Int64.compare rel (Int64.of_int max_int) >= 0 then max_int
     else if Int64.compare rel 0L < 0 then 0
     else Int64.to_int rel);
  let chained = ref false in
  (try
     let continue = ref true in
     while !continue do
       let pc = t.pc in
       if pc land 0xFFF > Mmu.page_size - Isa.width then begin
         (* Page-straddling fetch: the interpreter's byte-wise path. *)
         jit_flush t;
         t.jb_fallbacks <- t.jb_fallbacks + 1;
         step t;
         continue := false
       end
       else begin
         (* Instruction 1's fetch-translate, for real: charges a miss
            into the accumulator and sets accessed bits exactly like the
            interpreter's fetch would. *)
         let ppc = jit_translate t ~access:Mmu.Exec pc in
         if ppc < 0 || ppc + Isa.width > Phys_mem.size t.mem then begin
           (* Out-of-RAM text: [step]'s checked read raises Bus_error and
              becomes a machine check.  Its own translate is a TLB hit
              after the walk above, so nothing double-charges. *)
           jit_flush t;
           t.jb_fallbacks <- t.jb_fallbacks + 1;
           step t;
           continue := false
         end
         else
           match jit_block_at t ~ppc with
           | None ->
             (* Interpreter-only instruction at pc (or pinned site); as
                above, [step] refetches through the now-warm TLB. *)
             jit_flush t;
             t.jb_fallbacks <- t.jb_fallbacks + 1;
             step t;
             continue := false
           | Some b ->
             if !chained then t.jb_chains <- t.jb_chains + 1;
             chained := true;
             t.jit_vpn <- pc lsr 12;
             b.jb_entry t;
             if t.jit_cyc >= t.jit_limit then continue := false
       end
     done
   with
   | Fault_exn kind ->
     jit_flush t;
     dispatch_fault t kind ~return_pc:t.pc
   | Mmu.Page_fault f ->
     jit_flush t;
     dispatch_fault t (Page f) ~return_pc:t.pc
   | Phys_mem.Bus_error addr ->
     jit_flush t;
     dispatch_fault t (Machine_check addr) ~return_pc:t.pc
   | Isa.Decode_error { opcode; _ } ->
     jit_flush t;
     dispatch_fault t (Undefined opcode) ~return_pc:t.pc
   | e ->
     jit_flush t;
     raise e);
  jit_flush t

(* Tight stepping loop between event horizons.  The caller has already
   dispatched due events and polled once, so the first action is a step;
   the loop preserves the canonical dispatch/poll/step interleaving by
   construction: while the clock stays short of [horizon] and nothing new
   is scheduled ([wake] unchanged), a dispatch would be a no-op, so
   step/poll pairs are exactly what the unbatched loop would execute.  Any
   exit condition returns control to the dispatcher *between* a step and
   the next poll — the same point where the unbatched loop runs its
   dispatch — so cycle accounting, trap ordering and IRQ delivery points
   are bit-identical.

   When the block translator is on and no per-instruction observer is
   armed — no trap flag, no retire stop, no deliverable interrupt — the
   step is replaced by [jit_run], bounded by the nearer of the horizon
   and the next profiler sample so chains stop on exactly the boundary
   the unbatched loop would have stopped on. *)
let run_batch t ~horizon ~wake =
  let engine = t.engine in
  let continue = ref true in
  while !continue do
    if
      t.jit_enabled
      && (not t.tf)
      && (match t.retire_stop with None -> true | Some _ -> false)
      && not (t.if_ && t.pic_pending ())
    then begin
      let limit =
        if
          Int64.compare t.sample_period 0L > 0
          && Int64.compare t.next_sample horizon < 0
        then t.next_sample
        else horizon
      in
      jit_run t ~limit
    end
    else step t;
    (* Continuous pc sampling: a pure read of (pc, cpl) handed to the
       profiler between instructions.  It never advances the clock or
       schedules events, so enabling it cannot perturb guest-visible
       behaviour — replay bit-equality holds with profiling on. *)
    if
      Int64.compare t.sample_period 0L > 0
      && Int64.compare (Engine.now engine) t.next_sample >= 0
    then begin
      t.sample_hook ~pc:t.pc ~cpl:t.cpl;
      t.next_sample <- Int64.add (Engine.now engine) t.sample_period
    end;
    if
      t.halted || t.stopped
      || Int64.compare (Engine.now engine) horizon >= 0
      || Engine.wake_generation engine <> wake
    then continue := false
    else begin
      poll_interrupts t;
      (* A hook running off the poll may halt or stop the CPU; the
         unbatched loop would idle-skip here, so hand back. *)
      if t.halted || t.stopped then continue := false
    end
  done

(* -- Introspection -- *)

let set_sampling t ~period ~hook =
  if Int64.compare period 0L < 0 then
    invalid_arg "Cpu.set_sampling: negative period";
  t.sample_period <- period;
  t.sample_hook <- hook;
  t.next_sample <-
    (if Int64.compare period 0L > 0 then Int64.add (Engine.now t.engine) period
     else 0L)

let sampling_period t = t.sample_period

let icache_hits t = t.ic_hits
let icache_misses t = t.ic_misses
let icache_invalidations t = t.ic_inval

(* -- Block-translator control and telemetry -- *)

let jit_enabled t = t.jit_enabled
let set_jit_enabled t v = t.jit_enabled <- v

let set_jit_pin t pin =
  t.jit_pin <- pin;
  (* Pin-set changes that do not rewrite guest text (the stub's do) would
     otherwise leave stale blocks spanning a newly pinned site; the O(1)
     flush-stamp bump forces every block through recompilation, where the
     new predicate is consulted. *)
  t.icache_gen <- t.icache_gen + 1

let blocks_compiled t = t.jb_compiled
let block_hits t = t.jb_hits
let block_invalidations t = t.jb_inval
let block_chain_follows t = t.jb_chains
let block_fallbacks t = t.jb_fallbacks
let instructions_retired t = t.retired

(* Reverse-debug support: checkpoint restore rewinds the retirement
   counter; replay-to-N arms a stop at an absolute retirement count. *)
let set_instructions_retired t v = t.retired <- v
let set_retire_stop t spec = t.retire_stop <- spec
let retire_stop_armed t =
  match t.retire_stop with Some _ -> true | None -> false
let interrupts_taken t = t.irqs_taken
let faults_taken t = t.faults
let mmu t = t.mmu
let mem t = t.mem
let bus t = t.bus
let engine t = t.engine
let costs t = t.costs

let pp_gp_reason fmt = function
  | Privileged_instruction i ->
    Format.fprintf fmt "privileged instruction (%s)" (Isa.to_string i)
  | Io_denied port -> Format.fprintf fmt "i/o denied on port 0x%x" port
  | Bad_iret -> Format.fprintf fmt "malformed iret"
  | Bad_int_gate v -> Format.fprintf fmt "gate %d not callable" v
  | Bad_vector v -> Format.fprintf fmt "bad vector %d" v
  | Bad_ring r -> Format.fprintf fmt "bad ring %d" r

let pp_fault fmt = function
  | Page f ->
    Format.fprintf fmt "page fault at 0x%x (%s, %s)" f.Mmu.vaddr
      (match f.Mmu.access with
       | Mmu.Read -> "read"
       | Mmu.Write -> "write"
       | Mmu.Exec -> "exec")
      (if f.Mmu.not_present then "not present" else "protection")
  | Gp reason -> Format.fprintf fmt "protection fault: %a" pp_gp_reason reason
  | Undefined opcode -> Format.fprintf fmt "undefined opcode 0x%x" opcode
  | Breakpoint_trap -> Format.fprintf fmt "breakpoint"
  | Step_trap -> Format.fprintf fmt "single-step"
  | Machine_check addr -> Format.fprintf fmt "machine check at 0x%x" addr

let pp_event fmt = function
  | Fault (kind, pc) -> Format.fprintf fmt "fault@0x%x: %a" pc pp_fault kind
  | Irq vector -> Format.fprintf fmt "irq vector %d" vector
  | Soft_int (v, _) -> Format.fprintf fmt "int %d" v
  | Hypercall (imm, _) -> Format.fprintf fmt "vmcall 0x%x" imm
