module Engine = Vmm_sim.Engine
module Stats = Vmm_sim.Stats

type gp_reason =
  | Privileged_instruction of Isa.instr
  | Io_denied of int
  | Bad_iret
  | Bad_int_gate of int
  | Bad_vector of int
  | Bad_ring of int

type fault_kind =
  | Page of Mmu.fault
  | Gp of gp_reason
  | Undefined of int
  | Breakpoint_trap
  | Step_trap
  | Machine_check of int

type event =
  | Fault of fault_kind * int
  | Irq of int
  | Soft_int of int * int
  | Hypercall of int * int

type hook_result = Handled | Deliver

exception Panic of string

exception Fault_exn of fault_kind

(* Decoded-instruction cache slot: physically tagged, validated against the
   memory write generations captured at fill time and the CPU-wide flush
   generation.  An 8-byte instruction can touch two generation granules;
   the sum of both granule generations is stored — generations only grow,
   so any store under either granule makes the sum diverge for good. *)
type icache_slot = {
  mutable itag : int; (* physical address, -1 = invalid *)
  mutable igen : int; (* summed Phys_mem granule generations at fill *)
  mutable iflush : int; (* icache_gen at fill *)
  mutable idecoded : Isa.instr;
}

let icache_slots = 2048
let icache_mask = icache_slots - 1

type t = {
  mem : Phys_mem.t;
  bus : Io_bus.t;
  engine : Engine.t;
  costs : Costs.t;
  load : Stats.load;
  mmu : Mmu.t;
  regs : int array;
  mutable pc : int;
  mutable z : bool;
  mutable n : bool;
  mutable c : bool;
  mutable tf : bool;
  mutable if_ : bool;
  mutable cpl : int;
  mutable iht : int;
  mutable ptb : int;
  stacks : int array;
  io_bitmap : Bytes.t;
  mutable halted : bool;
  mutable stopped : bool;
  mutable pic_ack : unit -> int option;
  mutable pic_pending : unit -> bool;
  mutable hypervisor : (t -> event -> hook_result) option;
  mutable retired : int64;
  mutable retire_stop : (int64 * (t -> unit)) option;
      (* reverse-debug replay-to-N: stop when [retired] reaches the
         target, between instructions *)
  mutable irqs_taken : int64;
  mutable faults : int64;
  mutable sample_period : int64;
      (* pc-sampling cadence in cycles; 0 = profiling off, and the
         dispatch loop pays exactly one Int64 compare per instruction *)
  mutable next_sample : int64;
  mutable sample_hook : pc:int -> cpl:int -> unit;
  fetch_buf : Bytes.t;
  icache : icache_slot array;
  mutable icache_gen : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable ic_inval : int;
}

let table_entries = 64

let create ~mem ~bus ~engine ~costs ~load () =
  {
    mem;
    bus;
    engine;
    costs;
    load;
    mmu = Mmu.create costs;
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    z = false;
    n = false;
    c = false;
    tf = false;
    if_ = false;
    cpl = 0;
    iht = 0;
    ptb = 0;
    stacks = Array.make 4 0;
    io_bitmap = Bytes.make 8192 '\000';
    halted = false;
    stopped = false;
    pic_ack = (fun () -> None);
    pic_pending = (fun () -> false);
    hypervisor = None;
    retired = 0L;
    retire_stop = None;
    irqs_taken = 0L;
    faults = 0L;
    sample_period = 0L;
    next_sample = 0L;
    sample_hook = (fun ~pc:_ ~cpl:_ -> ());
    fetch_buf = Bytes.make Isa.width '\000';
    icache =
      Array.init icache_slots (fun _ ->
          { itag = -1; igen = 0; iflush = 0; idecoded = Isa.Nop });
    icache_gen = 0;
    ic_hits = 0;
    ic_misses = 0;
    ic_inval = 0;
  }

let set_pic t ~ack ~pending =
  t.pic_ack <- ack;
  t.pic_pending <- pending

let set_hypervisor t hook = t.hypervisor <- hook
let has_hypervisor t = t.hypervisor <> None

(* -- Architectural state -- *)

let read_reg t r = t.regs.(r)
let write_reg t r v = t.regs.(r) <- Word.mask v
let pc t = t.pc
let set_pc t v = t.pc <- Word.mask v
let cpl t = t.cpl
let set_cpl t v = t.cpl <- v land 3

let flags_word t =
  (if t.z then 1 else 0)
  lor (if t.n then 2 else 0)
  lor (if t.c then 4 else 0)
  lor (if t.tf then 0x100 else 0)
  lor (if t.if_ then 0x200 else 0)
  lor (t.cpl lsl 12)

let set_flags_word t w =
  t.z <- w land 1 <> 0;
  t.n <- w land 2 <> 0;
  t.c <- w land 4 <> 0;
  t.tf <- w land 0x100 <> 0;
  t.if_ <- w land 0x200 <> 0;
  t.cpl <- (w lsr 12) land 3

let interrupts_enabled t = t.if_
let set_interrupts_enabled t v = t.if_ <- v
let trap_flag t = t.tf
let set_trap_flag t v = t.tf <- v
let iht_base t = t.iht
let set_iht_base t v = t.iht <- Word.mask v
let ptb t = t.ptb

let flush_tlb t =
  Mmu.flush t.mmu;
  (* O(1) whole-icache drop: entries filled under an older generation stop
     validating.  The monitor flushes on every shadow-table update, so this
     must not walk the array. *)
  t.icache_gen <- t.icache_gen + 1

let set_ptb t v =
  t.ptb <- Word.mask v;
  flush_tlb t

let ring_stack t ring = t.stacks.(ring land 3)
let set_ring_stack t ring v = t.stacks.(ring land 3) <- Word.mask v
let halted t = t.halted
let set_halted t v = t.halted <- v
let stopped t = t.stopped
let set_stopped t v = t.stopped <- v

(* -- I/O permission bitmap -- *)

let allow_port t port allowed =
  if port < 0 || port >= Io_bus.port_space then invalid_arg "Cpu.allow_port";
  let byte = Char.code (Bytes.get t.io_bitmap (port lsr 3)) in
  let bit = 1 lsl (port land 7) in
  let byte = if allowed then byte lor bit else byte land lnot bit in
  Bytes.set t.io_bitmap (port lsr 3) (Char.chr byte)

let port_allowed t port =
  port >= 0
  && port < Io_bus.port_space
  && Char.code (Bytes.get t.io_bitmap (port lsr 3)) land (1 lsl (port land 7)) <> 0

(* -- Cycle accounting -- *)

let charge t cycles =
  if cycles > 0 then begin
    let c = Int64.of_int cycles in
    Engine.advance t.engine c;
    Stats.note_busy t.load c
  end

(* -- Translated memory access -- *)

let translate t ~access ~cpl vaddr =
  let paddr, extra =
    Mmu.translate t.mmu t.mem ~ptb:t.ptb ~cpl access (Word.mask vaddr)
  in
  charge t extra;
  paddr

(* Multi-byte accesses that straddle a page fall back to byte-at-a-time so
   each byte is translated in its own page. *)
let load_u32 t ~cpl vaddr =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.read_u32 t.mem (translate t ~access:Mmu.Read ~cpl vaddr)
  else begin
    let b0 = Phys_mem.read_u8 t.mem (translate t ~access:Mmu.Read ~cpl vaddr) in
    let b1 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 1))
    in
    let b2 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 2))
    in
    let b3 =
      Phys_mem.read_u8 t.mem
        (translate t ~access:Mmu.Read ~cpl (Word.add vaddr 3))
    in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end

let store_u32 t ~cpl vaddr v =
  let vaddr = Word.mask vaddr in
  if vaddr land 0xFFF <= Mmu.page_size - 4 then
    Phys_mem.write_u32 t.mem (translate t ~access:Mmu.Write ~cpl vaddr) v
  else
    for i = 0 to 3 do
      Phys_mem.write_u8 t.mem
        (translate t ~access:Mmu.Write ~cpl (Word.add vaddr i))
        ((v lsr (8 * i)) land 0xFF)
    done

let load_u8 t ~cpl vaddr =
  Phys_mem.read_u8 t.mem (translate t ~access:Mmu.Read ~cpl (Word.mask vaddr))

let store_u8 t ~cpl vaddr v =
  Phys_mem.write_u8 t.mem
    (translate t ~access:Mmu.Write ~cpl (Word.mask vaddr))
    v

(* -- Interrupt table -- *)

type gate = { handler : int; present : bool; ring : int; dpl : int }

let read_gate t ~table ~vector =
  if vector < 0 || vector >= table_entries then
    raise (Fault_exn (Gp (Bad_vector vector)));
  let base = Word.add table (8 * vector) in
  let handler = load_u32 t ~cpl:0 base in
  let info = load_u32 t ~cpl:0 (Word.add base 4) in
  {
    handler;
    present = info land 1 <> 0;
    ring = (info lsr 1) land 3;
    dpl = (info lsr 3) land 3;
  }

let push_frame t ~ring ~sp ~value =
  let sp = Word.sub sp 4 in
  store_u32 t ~cpl:ring sp value;
  sp

let deliver t ~table ~vector ~error ~return_pc =
  let gate = read_gate t ~table ~vector in
  if not gate.present then
    raise (Panic (Printf.sprintf "no handler for vector %d" vector));
  let old_sp = t.regs.(Isa.sp) in
  let old_flags = flags_word t in
  let ring = gate.ring in
  let sp0 = if ring < t.cpl then t.stacks.(ring) else old_sp in
  let sp1 = push_frame t ~ring ~sp:sp0 ~value:old_sp in
  let sp2 = push_frame t ~ring ~sp:sp1 ~value:old_flags in
  let sp3 = push_frame t ~ring ~sp:sp2 ~value:(Word.mask return_pc) in
  let sp4 = push_frame t ~ring ~sp:sp3 ~value:(Word.mask error) in
  t.regs.(Isa.sp) <- sp4;
  t.cpl <- ring;
  t.if_ <- false;
  t.tf <- false;
  t.pc <- gate.handler;
  charge t t.costs.interrupt_delivery

let do_iret t =
  let sp = t.regs.(Isa.sp) in
  let _error = load_u32 t ~cpl:0 sp in
  let return_pc = load_u32 t ~cpl:0 (Word.add sp 4) in
  let flags = load_u32 t ~cpl:0 (Word.add sp 8) in
  let old_sp = load_u32 t ~cpl:0 (Word.add sp 12) in
  set_flags_word t flags;
  t.regs.(Isa.sp) <- old_sp;
  t.pc <- return_pc;
  charge t t.costs.iret_cost

(* -- Fault dispatch -- *)

let vector_and_error = function
  | Page f -> (Isa.vec_page_fault, Word.mask f.Mmu.vaddr)
  | Gp (Io_denied port) -> (Isa.vec_protection, port)
  | Gp (Bad_int_gate v) -> (Isa.vec_protection, v)
  | Gp (Bad_vector v) -> (Isa.vec_protection, v)
  | Gp (Privileged_instruction _) | Gp Bad_iret | Gp (Bad_ring _) ->
    (Isa.vec_protection, 0)
  | Undefined opcode -> (Isa.vec_undefined, opcode)
  | Breakpoint_trap -> (Isa.vec_breakpoint, 0)
  | Step_trap -> (Isa.vec_debug_step, 0)
  | Machine_check addr -> (Isa.vec_machine_check, Word.mask addr)

let hw_deliver_fault t kind ~return_pc =
  let vector, error = vector_and_error kind in
  try deliver t ~table:t.iht ~vector ~error ~return_pc with
  | Fault_exn _ | Mmu.Page_fault _ | Phys_mem.Bus_error _ ->
    raise (Panic (Printf.sprintf "double fault delivering vector %d" vector))

let dispatch_fault t kind ~return_pc =
  t.faults <- Int64.add t.faults 1L;
  match t.hypervisor with
  | Some hook ->
    (match hook t (Fault (kind, return_pc)) with
     | Handled -> ()
     | Deliver -> hw_deliver_fault t kind ~return_pc)
  | None -> hw_deliver_fault t kind ~return_pc

let poll_interrupts t =
  let bare_metal = match t.hypervisor with None -> true | Some _ -> false in
  if t.if_ && t.pic_pending () && not (t.stopped && bare_metal) then
    match t.pic_ack () with
    | None -> ()
    | Some vector ->
      t.halted <- false;
      t.irqs_taken <- Int64.add t.irqs_taken 1L;
      (match t.hypervisor with
       | Some hook ->
         (match hook t (Irq vector) with
          | Handled -> ()
          | Deliver ->
            deliver t ~table:t.iht ~vector ~error:0 ~return_pc:t.pc)
       | None -> deliver t ~table:t.iht ~vector ~error:0 ~return_pc:t.pc)

let dispatch_soft t ~vector ~next_pc =
  match t.hypervisor with
  | Some hook ->
    (match hook t (Soft_int (vector, next_pc)) with
     | Handled -> ()
     | Deliver ->
       let gate = read_gate t ~table:t.iht ~vector in
       if (not gate.present) || gate.dpl < t.cpl then
         raise (Fault_exn (Gp (Bad_int_gate vector)))
       else deliver t ~table:t.iht ~vector ~error:0 ~return_pc:next_pc)
  | None ->
    let gate = read_gate t ~table:t.iht ~vector in
    if (not gate.present) || gate.dpl < t.cpl then
      raise (Fault_exn (Gp (Bad_int_gate vector)))
    else deliver t ~table:t.iht ~vector ~error:0 ~return_pc:next_pc

(* -- Fetch -- *)

let fetch_cached t paddr =
  let slot = Array.unsafe_get t.icache ((paddr lsr 3) land icache_mask) in
  let pgen =
    Phys_mem.generation t.mem paddr
    + Phys_mem.generation t.mem (paddr + (Isa.width - 1))
  in
  if slot.itag = paddr && slot.iflush = t.icache_gen && slot.igen = pgen
  then begin
    t.ic_hits <- t.ic_hits + 1;
    slot.idecoded
  end
  else begin
    if slot.itag = paddr then t.ic_inval <- t.ic_inval + 1;
    t.ic_misses <- t.ic_misses + 1;
    let instr = Isa.read t.mem paddr in
    slot.itag <- paddr;
    slot.igen <- pgen;
    slot.iflush <- t.icache_gen;
    slot.idecoded <- instr;
    instr
  end

let fetch t =
  let pc = t.pc in
  if pc land 0xFFF <= Mmu.page_size - Isa.width then begin
    let paddr = translate t ~access:Mmu.Exec ~cpl:t.cpl pc in
    if paddr >= 0 && paddr + Isa.width <= Phys_mem.size t.mem then
      fetch_cached t paddr
    else
      (* Translation does not bound physical addresses (identity map when
         paging is off, PTE frames above RAM), and the generation probe in
         [fetch_cached] is unchecked — take the checked read, which raises
         Bus_error and becomes a guest machine check. *)
      Isa.read t.mem paddr
  end
  else begin
    for i = 0 to Isa.width - 1 do
      let paddr = translate t ~access:Mmu.Exec ~cpl:t.cpl (Word.add pc i) in
      Bytes.set t.fetch_buf i (Char.chr (Phys_mem.read_u8 t.mem paddr))
    done;
    Isa.decode ~addr:pc t.fetch_buf ~off:0
  end

(* -- Port I/O -- *)

let check_port t port =
  if t.cpl <> 0 && not (port_allowed t port) then
    raise (Fault_exn (Gp (Io_denied port)))

let port_in t port =
  let port = port land 0xFFFF in
  check_port t port;
  charge t t.costs.port_io;
  Io_bus.read t.bus port

let port_out t port v =
  let port = port land 0xFFFF in
  check_port t port;
  charge t t.costs.port_io;
  Io_bus.write t.bus port v

(* -- Block operations -- *)

let copy_block t ~dst ~src ~len =
  charge t (Costs.cycles_for_bytes ~per_byte:t.costs.copy_per_byte len);
  let rec go dst src len =
    if len > 0 then begin
      let src_room = Mmu.page_size - (src land 0xFFF) in
      let dst_room = Mmu.page_size - (dst land 0xFFF) in
      let chunk = min len (min src_room dst_room) in
      let psrc = translate t ~access:Mmu.Read ~cpl:t.cpl src in
      let pdst = translate t ~access:Mmu.Write ~cpl:t.cpl dst in
      Phys_mem.blit t.mem ~src:psrc ~dst:pdst ~len:chunk;
      go (Word.add dst chunk) (Word.add src chunk) (len - chunk)
    end
  in
  go (Word.mask dst) (Word.mask src) len

let checksum_block t ~addr ~len =
  charge t (Costs.cycles_for_bytes ~per_byte:t.costs.csum_per_byte len);
  (* Internet checksum with little-endian 16-bit pairing, accumulated chunk
     by chunk so page boundaries keep global byte parity. *)
  let sum = ref 0 in
  let index = ref 0 in
  let rec go addr len =
    if len > 0 then begin
      let room = Mmu.page_size - (addr land 0xFFF) in
      let chunk = min len room in
      let paddr = translate t ~access:Mmu.Read ~cpl:t.cpl addr in
      sum := Phys_mem.checksum_add t.mem ~addr:paddr ~len:chunk ~index:!index !sum;
      index := !index + chunk;
      go (Word.add addr chunk) (len - chunk)
    end
  in
  go (Word.mask addr) len;
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

(* -- Execution -- *)

let require_ring0 t i =
  if t.cpl <> 0 then raise (Fault_exn (Gp (Privileged_instruction i)))

let set_zn t v =
  t.z <- v = 0;
  t.n <- v land 0x80000000 <> 0

let exec t instr =
  let next = Word.add t.pc Isa.width in
  let r = t.regs in
  let goto a = t.pc <- Word.mask a in
  charge t (Isa.base_cycles t.costs instr);
  match instr with
  | Isa.Nop -> goto next
  | Isa.Hlt ->
    require_ring0 t instr;
    t.halted <- true;
    goto next
  | Isa.Movi (rd, imm) ->
    r.(rd) <- imm;
    goto next
  | Isa.Mov (rd, rs) ->
    r.(rd) <- r.(rs);
    goto next
  | Isa.Add (rd, a, b) ->
    r.(rd) <- Word.add r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Addi (rd, a, imm) ->
    r.(rd) <- Word.add r.(a) imm;
    set_zn t r.(rd);
    goto next
  | Isa.Sub (rd, a, b) ->
    r.(rd) <- Word.sub r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.And_ (rd, a, b) ->
    r.(rd) <- Word.logand r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Or_ (rd, a, b) ->
    r.(rd) <- Word.logor r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Xor_ (rd, a, b) ->
    r.(rd) <- Word.logxor r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Shl (rd, a, b) ->
    r.(rd) <- Word.shift_left r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Shr (rd, a, b) ->
    r.(rd) <- Word.shift_right r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Mul (rd, a, b) ->
    r.(rd) <- Word.mul r.(a) r.(b);
    set_zn t r.(rd);
    goto next
  | Isa.Cmp (a, b) ->
    t.z <- Word.equal r.(a) r.(b);
    t.n <- Word.signed_lt r.(a) r.(b);
    t.c <- Word.unsigned_lt r.(a) r.(b);
    goto next
  | Isa.Cmpi (a, imm) ->
    t.z <- Word.equal r.(a) imm;
    t.n <- Word.signed_lt r.(a) imm;
    t.c <- Word.unsigned_lt r.(a) imm;
    goto next
  | Isa.Ld (rd, base, imm) ->
    r.(rd) <- load_u32 t ~cpl:t.cpl (Word.add r.(base) imm);
    goto next
  | Isa.St (base, imm, src) ->
    store_u32 t ~cpl:t.cpl (Word.add r.(base) imm) r.(src);
    goto next
  | Isa.Ldb (rd, base, imm) ->
    r.(rd) <- load_u8 t ~cpl:t.cpl (Word.add r.(base) imm);
    goto next
  | Isa.Stb (base, imm, src) ->
    store_u8 t ~cpl:t.cpl (Word.add r.(base) imm) (r.(src) land 0xFF);
    goto next
  | Isa.Jmp target -> goto target
  | Isa.Jz target -> goto (if t.z then target else next)
  | Isa.Jnz target -> goto (if not t.z then target else next)
  | Isa.Jlt target -> goto (if t.n then target else next)
  | Isa.Jge target -> goto (if not t.n then target else next)
  | Isa.Jb target -> goto (if t.c then target else next)
  | Isa.Jae target -> goto (if not t.c then target else next)
  | Isa.Jr rs -> goto r.(rs)
  | Isa.Call target ->
    let sp = Word.sub r.(Isa.sp) 4 in
    store_u32 t ~cpl:t.cpl sp next;
    r.(Isa.sp) <- sp;
    goto target
  | Isa.Ret ->
    let sp = r.(Isa.sp) in
    let target = load_u32 t ~cpl:t.cpl sp in
    r.(Isa.sp) <- Word.add sp 4;
    goto target
  | Isa.Push rs ->
    let sp = Word.sub r.(Isa.sp) 4 in
    store_u32 t ~cpl:t.cpl sp r.(rs);
    r.(Isa.sp) <- sp;
    goto next
  | Isa.Pop rd ->
    let sp = r.(Isa.sp) in
    let v = load_u32 t ~cpl:t.cpl sp in
    r.(Isa.sp) <- Word.add sp 4;
    r.(rd) <- v;
    goto next
  | Isa.In_ (rd, rs) ->
    r.(rd) <- Word.mask (port_in t r.(rs));
    goto next
  | Isa.Ini (rd, imm) ->
    r.(rd) <- Word.mask (port_in t imm);
    goto next
  | Isa.Out (p, v) ->
    port_out t r.(p) r.(v);
    goto next
  | Isa.Outi (imm, v) ->
    port_out t imm r.(v);
    goto next
  | Isa.Int_ vector -> dispatch_soft t ~vector ~next_pc:next
  | Isa.Iret ->
    require_ring0 t instr;
    do_iret t
  | Isa.Sti ->
    require_ring0 t instr;
    t.if_ <- true;
    goto next
  | Isa.Cli ->
    require_ring0 t instr;
    t.if_ <- false;
    goto next
  | Isa.Liht rs ->
    require_ring0 t instr;
    t.iht <- r.(rs);
    goto next
  | Isa.Lptb rs ->
    require_ring0 t instr;
    set_ptb t r.(rs);
    goto next
  | Isa.Lstk (ring, rs) ->
    require_ring0 t instr;
    t.stacks.(ring land 3) <- r.(rs);
    goto next
  | Isa.Tlbflush ->
    require_ring0 t instr;
    flush_tlb t;
    goto next
  | Isa.Copy (d, s, n) ->
    copy_block t ~dst:r.(d) ~src:r.(s) ~len:r.(n);
    goto next
  | Isa.Csum (rd, a, n) ->
    r.(rd) <- checksum_block t ~addr:r.(a) ~len:r.(n);
    goto next
  | Isa.Rdtsc rd ->
    r.(rd) <- Word.mask (Int64.to_int (Engine.now t.engine));
    goto next
  | Isa.Vmcall imm ->
    (match t.hypervisor with
     | Some hook ->
       goto next;
       ignore (hook t (Hypercall (imm, next)))
     | None -> raise (Fault_exn (Undefined 0x2E)))
  | Isa.Brk -> raise (Fault_exn Breakpoint_trap)

let read_instr t vaddr =
  if vaddr land 0xFFF <= Mmu.page_size - Isa.width then
    Isa.read t.mem (translate t ~access:Mmu.Read ~cpl:0 vaddr)
  else begin
    let buf = Bytes.create Isa.width in
    for i = 0 to Isa.width - 1 do
      let paddr = translate t ~access:Mmu.Read ~cpl:0 (Word.add vaddr i) in
      Bytes.set buf i (Char.chr (Phys_mem.read_u8 t.mem paddr))
    done;
    Isa.decode ~addr:vaddr buf ~off:0
  end

let step t =
  let start_pc = t.pc in
  let tf0 = t.tf in
  try
    let instr = fetch t in
    exec t instr;
    t.retired <- Int64.add t.retired 1L;
    (match t.retire_stop with
     | Some (target, on_stop) when Int64.compare t.retired target >= 0 ->
       (* Landed on the requested instruction boundary: freeze with pc at
          the next instruction to execute, exactly like a debugger stop. *)
       t.retire_stop <- None;
       t.stopped <- true;
       on_stop t
     | _ -> ());
    if tf0 && t.tf then begin
      (* Trap after the stepped instruction; handlers run with TF clear. *)
      t.faults <- Int64.add t.faults 1L;
      match t.hypervisor with
      | Some hook ->
        (match hook t (Fault (Step_trap, t.pc)) with
         | Handled -> ()
         | Deliver -> hw_deliver_fault t Step_trap ~return_pc:t.pc)
      | None -> hw_deliver_fault t Step_trap ~return_pc:t.pc
    end
  with
  | Fault_exn kind -> dispatch_fault t kind ~return_pc:start_pc
  | Mmu.Page_fault f -> dispatch_fault t (Page f) ~return_pc:start_pc
  | Phys_mem.Bus_error addr ->
    dispatch_fault t (Machine_check addr) ~return_pc:start_pc
  | Isa.Decode_error { opcode; _ } ->
    dispatch_fault t (Undefined opcode) ~return_pc:start_pc

(* Tight stepping loop between event horizons.  The caller has already
   dispatched due events and polled once, so the first action is a step;
   the loop preserves the canonical dispatch/poll/step interleaving by
   construction: while the clock stays short of [horizon] and nothing new
   is scheduled ([wake] unchanged), a dispatch would be a no-op, so
   step/poll pairs are exactly what the unbatched loop would execute.  Any
   exit condition returns control to the dispatcher *between* a step and
   the next poll — the same point where the unbatched loop runs its
   dispatch — so cycle accounting, trap ordering and IRQ delivery points
   are bit-identical. *)
let run_batch t ~horizon ~wake =
  let engine = t.engine in
  let continue = ref true in
  while !continue do
    step t;
    (* Continuous pc sampling: a pure read of (pc, cpl) handed to the
       profiler between instructions.  It never advances the clock or
       schedules events, so enabling it cannot perturb guest-visible
       behaviour — replay bit-equality holds with profiling on. *)
    if
      Int64.compare t.sample_period 0L > 0
      && Int64.compare (Engine.now engine) t.next_sample >= 0
    then begin
      t.sample_hook ~pc:t.pc ~cpl:t.cpl;
      t.next_sample <- Int64.add (Engine.now engine) t.sample_period
    end;
    if
      t.halted || t.stopped
      || Int64.compare (Engine.now engine) horizon >= 0
      || Engine.wake_generation engine <> wake
    then continue := false
    else begin
      poll_interrupts t;
      (* A hook running off the poll may halt or stop the CPU; the
         unbatched loop would idle-skip here, so hand back. *)
      if t.halted || t.stopped then continue := false
    end
  done

(* -- Introspection -- *)

let set_sampling t ~period ~hook =
  if Int64.compare period 0L < 0 then
    invalid_arg "Cpu.set_sampling: negative period";
  t.sample_period <- period;
  t.sample_hook <- hook;
  t.next_sample <-
    (if Int64.compare period 0L > 0 then Int64.add (Engine.now t.engine) period
     else 0L)

let sampling_period t = t.sample_period

let icache_hits t = t.ic_hits
let icache_misses t = t.ic_misses
let icache_invalidations t = t.ic_inval
let instructions_retired t = t.retired

(* Reverse-debug support: checkpoint restore rewinds the retirement
   counter; replay-to-N arms a stop at an absolute retirement count. *)
let set_instructions_retired t v = t.retired <- v
let set_retire_stop t spec = t.retire_stop <- spec
let retire_stop_armed t =
  match t.retire_stop with Some _ -> true | None -> false
let interrupts_taken t = t.irqs_taken
let faults_taken t = t.faults
let mmu t = t.mmu
let mem t = t.mem
let bus t = t.bus
let engine t = t.engine
let costs t = t.costs

let pp_gp_reason fmt = function
  | Privileged_instruction i ->
    Format.fprintf fmt "privileged instruction (%s)" (Isa.to_string i)
  | Io_denied port -> Format.fprintf fmt "i/o denied on port 0x%x" port
  | Bad_iret -> Format.fprintf fmt "malformed iret"
  | Bad_int_gate v -> Format.fprintf fmt "gate %d not callable" v
  | Bad_vector v -> Format.fprintf fmt "bad vector %d" v
  | Bad_ring r -> Format.fprintf fmt "bad ring %d" r

let pp_fault fmt = function
  | Page f ->
    Format.fprintf fmt "page fault at 0x%x (%s, %s)" f.Mmu.vaddr
      (match f.Mmu.access with
       | Mmu.Read -> "read"
       | Mmu.Write -> "write"
       | Mmu.Exec -> "exec")
      (if f.Mmu.not_present then "not present" else "protection")
  | Gp reason -> Format.fprintf fmt "protection fault: %a" pp_gp_reason reason
  | Undefined opcode -> Format.fprintf fmt "undefined opcode 0x%x" opcode
  | Breakpoint_trap -> Format.fprintf fmt "breakpoint"
  | Step_trap -> Format.fprintf fmt "single-step"
  | Machine_check addr -> Format.fprintf fmt "machine check at 0x%x" addr

let pp_event fmt = function
  | Fault (kind, pc) -> Format.fprintf fmt "fault@0x%x: %a" pc pp_fault kind
  | Irq vector -> Format.fprintf fmt "irq vector %d" vector
  | Soft_int (v, _) -> Format.fprintf fmt "int %d" v
  | Hypercall (imm, _) -> Format.fprintf fmt "vmcall 0x%x" imm
