(* Every store bumps the generation of the 64-byte granule(s) it touches,
   so physically-tagged caches above (the CPU's decoded-instruction cache)
   validate with an array read instead of watching every writer.  The
   granule is deliberately finer than an MMU page: guest kernels keep hot
   data right next to code, and a 4 KiB granule would let counter stores
   invalidate the whole text page around them. *)
let granule_bits = 6

type t = {
  data : Bytes.t;
  granule_gens : int array;
}

exception Bus_error of int

let create ~size =
  if size <= 0 then invalid_arg "Phys_mem.create: size <= 0";
  {
    data = Bytes.make size '\000';
    granule_gens = Array.make (((size - 1) lsr granule_bits) + 1) 0;
  }

let size t = Bytes.length t.data

let check t addr len =
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bus_error addr)

let generation t addr =
  Array.unsafe_get t.granule_gens (addr lsr granule_bits)

(* [addr, addr+len) is already bounds-checked when this runs. *)
let bump t addr len =
  let first = addr lsr granule_bits in
  let last = (addr + len - 1) lsr granule_bits in
  Array.unsafe_set t.granule_gens first
    (Array.unsafe_get t.granule_gens first + 1);
  if last > first then
    for p = first + 1 to last do
      t.granule_gens.(p) <- t.granule_gens.(p) + 1
    done

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  check t addr 1;
  bump t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let read_u16 t addr =
  check t addr 2;
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)

let write_u16 t addr v =
  check t addr 2;
  bump t addr 2;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let read_u32 t addr =
  check t addr 4;
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 3)) lsl 24)

let write_u32 t addr v =
  check t addr 4;
  bump t addr 4;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t.data (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set t.data (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let load_bytes t ~addr bytes =
  check t addr (Bytes.length bytes);
  if Bytes.length bytes > 0 then bump t addr (Bytes.length bytes);
  Bytes.blit bytes 0 t.data addr (Bytes.length bytes)

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let blit_to_bytes t ~addr dst ~off ~len =
  check t addr len;
  Bytes.blit t.data addr dst off len

let write_bytes t ~addr src ~off ~len =
  check t addr len;
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Phys_mem.write_bytes";
  if len > 0 then bump t addr len;
  Bytes.blit src off t.data addr len

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  if len > 0 then bump t dst len;
  Bytes.blit t.data src t.data dst len

let checksum_add t ~addr ~len ~index sum =
  check t addr len;
  (* Ones'-complement accumulation with explicit byte index, so callers
     summing chunk by chunk keep global little-endian 16-bit pairing. *)
  let sum = ref sum in
  for i = 0 to len - 1 do
    let b = Char.code (Bytes.unsafe_get t.data (addr + i)) in
    if (index + i) land 1 = 0 then sum := !sum + b
    else sum := !sum + (b lsl 8)
  done;
  !sum

let checksum t ~addr ~len =
  check t addr len;
  (* Standard Internet checksum: 16-bit ones'-complement sum, odd trailing
     byte padded with zero. *)
  let sum = checksum_add t ~addr ~len ~index:0 0 in
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let fill t ~addr ~len v =
  check t addr len;
  if len > 0 then bump t addr len;
  Bytes.fill t.data addr len (Char.chr (v land 0xFF))
