(** Serial port (16550-flavoured, fixed 115200 8N1).

    The host side of the debug link talks to the UART through
    {!set_on_tx}/{!inject_rx}; the target side uses the ports.  Port map
    (offsets):
    - +0 data — write enqueues a byte for transmission; read pops the
      receive FIFO (0 when empty)
    - +1 status (read) — bit 0 receive-data-ready, bit 1 transmit-idle
    - +2 interrupt enable — bit 0 raise the IRQ while receive data is
      pending

    Transmission is paced at the serial line rate
    ({!Costs.t.uart_cycles_per_byte}); bytes arrive at the host in order,
    each after its serialization delay. *)

type t

val create : engine:Vmm_sim.Engine.t -> costs:Costs.t -> unit -> t

(** [set_irq t f] wires the receive interrupt line (PIC line 4). *)
val set_irq : t -> (unit -> unit) -> unit

(** [set_on_tx t f] — [f byte] runs when a transmitted byte finishes
    serializing onto the wire. *)
val set_on_tx : t -> (int -> unit) -> unit

(** [inject_rx t byte] — the host wire delivers a byte; raises the IRQ when
    enabled. *)
val inject_rx : t -> int -> unit

(** [set_rx_tap t f] — [f byte] runs on every {!inject_rx}, before the
    byte queues.  The machine's record/replay taps use this to log
    debug-link ingress, one of the nondeterministic inputs. *)
val set_rx_tap : t -> (int -> unit) -> unit

val rx_pending : t -> int
val tx_in_flight : t -> int
val io_read : t -> int -> int
val io_write : t -> int -> int -> unit
val attach : t -> Io_bus.t -> base:int -> unit
