(** Streaming SCSI controller with several disk targets (the paper's three
    Ultra160 drives hang off one of these).

    Reads stream at the per-disk media rate ({!Costs.t.disk_rate_mbps}) and
    complete with a DMA transfer into physical memory followed by an
    interrupt (PIC line 6).  Disk contents are synthetic but stable: a
    deterministic byte pattern per (target, byte offset), overridden by any
    data previously written — so data integrity is checkable end-to-end.

    Port map (offsets):
    - +0 target select (write)
    - +1 logical block address, 512-byte sectors (write)
    - +2 transfer length in bytes (write)
    - +3 DMA physical address (write)
    - +4 command (write): 1 = read, 2 = write
    - +5 status (read): bits 0..targets-1 completion flags,
      bits 16..16+targets-1 busy flags, bit 31 command error
    - +6 completion acknowledge (write): value = target number *)

type t

val sector_size : int

val create :
  engine:Vmm_sim.Engine.t ->
  costs:Costs.t ->
  mem:Phys_mem.t ->
  targets:int ->
  unit ->
  t

val targets : t -> int

(** [set_irq t f] wires the completion interrupt. *)
val set_irq : t -> (unit -> unit) -> unit

(** [set_tracer t tracer] — emit a ["dma"]-category span per command
    covering its media transfer window. *)
val set_tracer : t -> Vmm_obs.Tracer.t -> unit

(** [pattern_byte ~target ~offset] is the synthetic content of an
    unwritten byte (exposed so tests and the guest can validate data). *)
val pattern_byte : target:int -> offset:int -> int

val io_read : t -> int -> int
val io_write : t -> int -> int -> unit
val attach : t -> Io_bus.t -> base:int -> unit

(** Counters for tests/benches. *)
val reads_completed : t -> int

val bytes_read : t -> int64
val writes_completed : t -> int

(** [busy_targets t] — targets with a command in flight (queue-depth
    gauge). *)
val busy_targets : t -> int

(** [reset t] returns the controller to power-on state for a warm
    restart: in-flight commands are abandoned (their completion events
    become no-ops), completion/error state and guest-written sectors are
    dropped, selection registers clear.  Cumulative counters and armed
    fault injections are preserved. *)
val reset : t -> unit

(** {2 Checkpoint support}

    Captures the full controller state — selection registers, per-target
    completion/busy flags, written sectors, write staging and the
    in-flight command descriptors with their {e relative} completion
    offsets — so a restore at any later absolute time re-arms the same
    DMA schedule.  Restore abandons whatever was in flight (epoch
    guard), like {!reset}, then reinstates the captured state. *)

type op_state = {
  os_target : int;
  os_cmd : int;  (** 1 = read, 2 = write *)
  os_lba : int;
  os_count : int;
  os_dma : int;
  os_remaining : int64;  (** cycles until completion, relative to capture *)
}

type tgt_state = {
  ts_busy : bool;
  ts_done : bool;
  ts_sectors : (int * Bytes.t) list;  (** sorted by sector index *)
  ts_staging : Bytes.t;
}

type state = {
  s_targets : tgt_state array;
  s_sel_target : int;
  s_sel_lba : int;
  s_sel_count : int;
  s_sel_dma : int;
  s_error : bool;
  s_inflight : op_state list;
}

val capture : t -> state
val restore : t -> state -> unit

(** [inflight_ops t] — commands currently on the wire (tests). *)
val inflight_ops : t -> int

(** {2 Fault injection} *)

(** [inject_read_errors t n] — the next [n] reads fail at the medium: the
    command completes (busy clears, done sets) but no data transfers and
    the error status bit is raised. *)
val inject_read_errors : t -> int -> unit

val read_errors : t -> int
