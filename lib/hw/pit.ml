module Engine = Vmm_sim.Engine
module Event_queue = Vmm_sim.Event_queue

let input_hz = 1193182.0

type mode = Stopped | Periodic | One_shot

type t = {
  engine : Engine.t;
  costs : Costs.t;
  raise_irq : unit -> unit;
  mutable reload : int;
  mutable mode : mode;
  mutable armed_at : int64;
  mutable handle : Event_queue.handle option;
  mutable fired : int;
}

let create ~engine ~costs ~raise_irq () =
  {
    engine;
    costs;
    raise_irq;
    reload = 0x10000;
    mode = Stopped;
    armed_at = 0L;
    handle = None;
    fired = 0;
  }

let cycles_per_tick t = t.costs.Costs.cpu_hz /. input_hz

let period_cycles t =
  let ticks = if t.reload = 0 then 0x10000 else t.reload in
  Int64.of_float (float_of_int ticks *. cycles_per_tick t)

let disarm t =
  match t.handle with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    t.handle <- None
  | None -> ()

let rec arm t =
  t.armed_at <- Engine.now t.engine;
  let handle =
    Engine.after t.engine ~delay:(period_cycles t) (fun () -> expire t)
  in
  t.handle <- Some handle

and expire t =
  t.handle <- None;
  t.fired <- t.fired + 1;
  t.raise_irq ();
  match t.mode with
  | Periodic -> arm t
  | One_shot | Stopped -> t.mode <- Stopped

let current_count t =
  match t.mode with
  | Stopped -> 0
  | Periodic | One_shot ->
    let elapsed = Int64.sub (Engine.now t.engine) t.armed_at in
    let elapsed_ticks = Int64.to_float elapsed /. cycles_per_tick t in
    let ticks = if t.reload = 0 then 0x10000 else t.reload in
    let remaining = ticks - int_of_float elapsed_ticks in
    if remaining < 0 then 0 else remaining

let io_read t offset =
  match offset with
  | 0 -> current_count t land 0xFFFF
  | 1 -> (current_count t lsr 16) land 0xFFFF
  | 2 -> (match t.mode with Stopped -> 0 | Periodic | One_shot -> 1)
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> t.reload <- (t.reload land 0xFFFF0000) lor (v land 0xFFFF)
  | 1 -> t.reload <- (t.reload land 0xFFFF) lor ((v land 0xFFFF) lsl 16)
  | 2 ->
    disarm t;
    (match v land 3 with
     | 1 ->
       t.mode <- Periodic;
       arm t
     | 2 ->
       t.mode <- One_shot;
       arm t
     | _ -> t.mode <- Stopped)
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"pit" ~base ~count:3 ~read:(io_read t)
    ~write:(io_write t)

let running t = match t.mode with Stopped -> false | Periodic | One_shot -> true
let reload t = t.reload
let ticks_fired t = t.fired

(* Checkpoint support.  The phase is captured {e relative} (cycles until
   the pending expiry) so a restore at any later absolute time re-arms
   with the same offset — restores never rewind the engine clock. *)
type phase = { ph_reload : int; ph_mode : int; ph_remaining : int64 }

let capture_phase t =
  let ph_mode =
    match t.mode with Stopped -> 0 | Periodic -> 1 | One_shot -> 2
  in
  let ph_remaining =
    match t.handle with
    | None -> 0L
    | Some _ ->
      let due = Int64.add t.armed_at (period_cycles t) in
      let d = Int64.sub due (Engine.now t.engine) in
      if Int64.compare d 0L < 0 then 0L else d
  in
  { ph_reload = t.reload; ph_mode; ph_remaining }

let restore_phase t ph =
  disarm t;
  t.reload <- ph.ph_reload;
  t.mode <-
    (match ph.ph_mode with 1 -> Periodic | 2 -> One_shot | _ -> Stopped);
  match t.mode with
  | Stopped -> ()
  | Periodic | One_shot ->
    (* Backdate armed_at so current_count reads as it did at capture. *)
    t.armed_at <-
      Int64.sub
        (Int64.add (Engine.now t.engine) ph.ph_remaining)
        (period_cycles t);
    t.handle <-
      Some (Engine.after t.engine ~delay:ph.ph_remaining (fun () -> expire t))
