type t = {
  mutable vector_base : int;
  mutable request : int;
  mutable service : int;
  mutable mask : int;
  mutable intr : bool -> unit;
  mutable intr_level : bool;
  (* delivery-latency probe: raise -> ack time per line *)
  mutable probe_now : (unit -> int64) option;
  mutable probe_observe : float -> unit;
  raised_at : int64 array;
  mutable raises : int;
  mutable acks : int;
}

let lines = 8

let create ?(vector_base = Isa.vec_irq_base_default) () =
  {
    vector_base;
    request = 0;
    service = 0;
    mask = 0;
    intr = (fun _ -> ());
    intr_level = false;
    probe_now = None;
    probe_observe = (fun _ -> ());
    raised_at = Array.make lines 0L;
    raises = 0;
    acks = 0;
  }

let set_latency_probe t ~now ~observe =
  t.probe_now <- Some now;
  t.probe_observe <- observe

let lowest_bit v =
  let rec scan i = if i >= lines then None else if v land (1 lsl i) <> 0 then Some i else scan (i + 1) in
  scan 0

(* A request is deliverable when unmasked and of strictly higher priority
   (lower line number) than everything currently in service. *)
let deliverable t =
  match lowest_bit (t.request land lnot t.mask) with
  | None -> None
  | Some line ->
    (match lowest_bit t.service with
     | Some s when s <= line -> None
     | Some _ | None -> Some line)

let update_intr t =
  let level = deliverable t <> None in
  if level <> t.intr_level then begin
    t.intr_level <- level;
    t.intr level
  end

let set_intr t f =
  t.intr <- f;
  t.intr_level <- deliverable t <> None;
  f t.intr_level

let raise_irq t line =
  if line < 0 || line >= lines then invalid_arg "Pic.raise_irq";
  t.raises <- t.raises + 1;
  (* Stamp only a fresh request: re-raising a still-pending line keeps
     the original time, so latency measures raise-to-ack, not last-kick
     to ack. *)
  (match t.probe_now with
   | Some now when t.request land (1 lsl line) = 0 ->
     t.raised_at.(line) <- now ()
   | Some _ | None -> ());
  t.request <- t.request lor (1 lsl line);
  update_intr t

let pending t = deliverable t <> None

let ack t =
  match deliverable t with
  | None -> None
  | Some line ->
    t.request <- t.request land lnot (1 lsl line);
    t.service <- t.service lor (1 lsl line);
    t.acks <- t.acks + 1;
    (match t.probe_now with
     | Some now ->
       t.probe_observe
         (Int64.to_float (Int64.sub (now ()) t.raised_at.(line)))
     | None -> ());
    update_intr t;
    Some (t.vector_base + line)

let vector_base t = t.vector_base

let eoi t =
  match lowest_bit t.service with
  | Some line ->
    t.service <- t.service land lnot (1 lsl line);
    update_intr t
  | None -> ()

let io_read t offset =
  match offset with
  | 0 -> t.service
  | 1 -> t.mask
  | 2 -> t.vector_base
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> if v land 0xFF = 0x20 then eoi t
  | 1 ->
    t.mask <- v land 0xFF;
    update_intr t
  | 2 -> t.vector_base <- v land 0x3F
  | _ -> ()

(* Warm-restart support: back to power-on state — no requests, nothing in
   service, all lines unmasked, default vector base — then recompute INTR
   so a level left high by the old guest drops.  Cumulative raise/ack
   counters survive; they are monitor-side telemetry, not guest state. *)
let reset t =
  t.request <- 0;
  t.service <- 0;
  t.mask <- 0;
  t.vector_base <- Isa.vec_irq_base_default;
  update_intr t

(* Checkpoint support: the four programming registers are the whole
   guest-visible state (INTR is derived; telemetry is monitor-side). *)
type state = {
  st_vector_base : int;
  st_request : int;
  st_service : int;
  st_mask : int;
}

let capture t =
  {
    st_vector_base = t.vector_base;
    st_request = t.request;
    st_service = t.service;
    st_mask = t.mask;
  }

let restore t s =
  t.vector_base <- s.st_vector_base;
  t.request <- s.st_request;
  t.service <- s.st_service;
  t.mask <- s.st_mask;
  update_intr t

let attach t bus ~base =
  Io_bus.register bus ~name:"pic" ~base ~count:3 ~read:(io_read t)
    ~write:(io_write t)

let requested t = t.request
let in_service t = t.service
let mask t = t.mask
let raises t = t.raises
let acks t = t.acks
