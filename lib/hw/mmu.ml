type access = Read | Write | Exec

type fault = {
  vaddr : int;
  access : access;
  not_present : bool;
}

exception Page_fault of fault

let page_size = 4096
let entries_per_table = 1024

let pte_present = 0x1
let pte_writable = 0x2
let pte_user = 0x4
let pte_nx = 0x8
let pte_accessed = 0x20
let pte_dirty = 0x40

let make_pte ~frame ~writable ~user =
  (frame land 0xFFFFF000) lor pte_present
  lor (if writable then pte_writable else 0)
  lor (if user then pte_user else 0)

let frame_of pte = pte land 0xFFFFF000
let is_present pte = pte land pte_present <> 0
let is_writable pte = pte land pte_writable <> 0
let is_user pte = pte land pte_user <> 0
let is_nx pte = pte land pte_nx <> 0
let dir_index vaddr = (vaddr lsr 22) land 0x3FF
let table_index vaddr = (vaddr lsr 12) land 0x3FF

(* Direct-mapped TLB keyed by virtual page number.  Each entry caches the
   physical frame, the effective permissions and the PTE's physical address
   so the dirty bit can be set on write hits. *)
type tlb_entry = {
  mutable vpn : int; (* -1 = invalid *)
  mutable frame : int;
  mutable writable : bool;
  mutable user : bool;
  mutable nx : bool;
  mutable pte_addr : int;
  mutable dirty : bool; (* PTE dirty bit already set via this entry *)
}

type t = {
  tlb : tlb_entry array;
  tlb_mask : int;
  costs : Costs.t;
  mutable hits : int64;
  mutable misses : int64;
}

let tlb_slots = 256

let create costs =
  {
    tlb =
      Array.init tlb_slots (fun _ ->
          {
            vpn = -1;
            frame = 0;
            writable = false;
            user = false;
            nx = false;
            pte_addr = 0;
            dirty = false;
          });
    tlb_mask = tlb_slots - 1;
    costs;
    hits = 0L;
    misses = 0L;
  }

let flush t =
  Array.iter (fun e -> e.vpn <- -1) t.tlb

let check_perms ~cpl ~access ~writable ~user ~nx ~vaddr =
  if cpl = 3 && not user then
    raise (Page_fault { vaddr; access; not_present = false });
  match access with
  | Write when not writable ->
    raise (Page_fault { vaddr; access; not_present = false })
  | Exec when nx ->
    raise (Page_fault { vaddr; access; not_present = false })
  | Write | Read | Exec -> ()

let walk mem ~ptb ~vaddr ~access =
  let pde_addr = (ptb land 0xFFFFF000) + (4 * dir_index vaddr) in
  let pde = Phys_mem.read_u32 mem pde_addr in
  if not (is_present pde) then
    raise (Page_fault { vaddr; access; not_present = true });
  let pte_addr = frame_of pde + (4 * table_index vaddr) in
  let pte = Phys_mem.read_u32 mem pte_addr in
  if not (is_present pte) then
    raise (Page_fault { vaddr; access; not_present = true });
  (pde, pde_addr, pte, pte_addr)

let translate t mem ~ptb ~cpl access vaddr =
  if ptb = 0 then (vaddr, 0)
  else begin
    let vpn = vaddr lsr 12 in
    let entry = t.tlb.(vpn land t.tlb_mask) in
    if entry.vpn = vpn then begin
      t.hits <- Int64.add t.hits 1L;
      check_perms ~cpl ~access ~writable:entry.writable ~user:entry.user
        ~nx:entry.nx ~vaddr;
      (* Write-hit fast path: once this entry has set the PTE dirty bit,
         later write hits skip the PTE read-modify-write entirely.  A flush
         (LPTB/TLBFLUSH) drops the entry, so table edits behave as on real
         hardware, where stale dirty state also requires a flush. *)
      if access = Write && not entry.dirty then begin
        let pte = Phys_mem.read_u32 mem entry.pte_addr in
        Phys_mem.write_u32 mem entry.pte_addr (pte lor pte_dirty);
        entry.dirty <- true
      end;
      (entry.frame lor (vaddr land 0xFFF), 0)
    end
    else begin
      t.misses <- Int64.add t.misses 1L;
      let pde, pde_addr, pte, pte_addr = walk mem ~ptb ~vaddr ~access in
      (* Effective permissions combine both levels, like x86.  NX is
         restrictive at either level (shadow directories never set it, so
         in practice only leaf PTEs carry it). *)
      let writable = is_writable pde && is_writable pte in
      let user = is_user pde && is_user pte in
      let nx = is_nx pde || is_nx pte in
      check_perms ~cpl ~access ~writable ~user ~nx ~vaddr;
      Phys_mem.write_u32 mem pde_addr (pde lor pte_accessed);
      let dirty = if access = Write then pte_dirty else 0 in
      Phys_mem.write_u32 mem pte_addr (pte lor pte_accessed lor dirty);
      entry.vpn <- vpn;
      entry.frame <- frame_of pte;
      entry.writable <- writable;
      entry.user <- user;
      entry.nx <- nx;
      entry.pte_addr <- pte_addr;
      entry.dirty <- access = Write;
      (frame_of pte lor (vaddr land 0xFFF), t.costs.tlb_miss)
    end
  end

let probe mem ~ptb vaddr =
  if ptb = 0 then Some (make_pte ~frame:(vaddr land 0xFFFFF000) ~writable:true ~user:true)
  else
    let pde_addr = (ptb land 0xFFFFF000) + (4 * dir_index vaddr) in
    let pde = Phys_mem.read_u32 mem pde_addr in
    if not (is_present pde) then None
    else
      let pte_addr = frame_of pde + (4 * table_index vaddr) in
      let pte = Phys_mem.read_u32 mem pte_addr in
      if not (is_present pte) then None
      else
        (* Report effective permissions so callers need not re-combine. *)
        let combined =
          pte land lnot (pte_writable lor pte_user)
          lor (pde land pte land (pte_writable lor pte_user))
        in
        Some combined

let tlb_covers t ~vpn = (t.tlb.(vpn land t.tlb_mask)).vpn = vpn

let tlb_hits t = t.hits
let tlb_misses t = t.misses
