(** Two-level paging MMU with a small TLB, modelled on IA-32.

    A page-table base (PTB) of 0 disables paging (identity mapping, no
    checks) — the state the machine boots in.  Otherwise PTB points at a
    4 KiB page directory of 1024 entries, each optionally pointing at a page
    table of 1024 page-table entries mapping 4 KiB pages.

    PTE/PDE format (like x86 without PAE):
    bit 0 present, bit 1 writable, bit 2 user-accessible, bit 5 accessed,
    bit 6 dirty, bits 12-31 frame number.  The supervisor/user split is the
    two-level hardware protection the paper works around: rings 0-2 are
    supervisor, ring 3 is user. *)

type access = Read | Write | Exec

type fault = {
  vaddr : int;
  access : access;
  not_present : bool;  (** true: missing PDE/PTE; false: permission *)
}

exception Page_fault of fault

val page_size : int
val entries_per_table : int

(** {2 Entry construction/inspection} *)

val pte_present : int
val pte_writable : int
val pte_user : int

(** No-execute (bit 3, reserved on real IA-32).  Only the monitor's shadow
    tables set it — it is the mechanism behind page-permission virtual
    breakpoints: an armed page stays readable/writable (pristine data
    reads) but any fetch from it raises [Page_fault] with [access = Exec]
    and [not_present = false] into the monitor. *)
val pte_nx : int

val pte_accessed : int
val pte_dirty : int

(** [make_pte ~frame ~writable ~user] is a present entry mapping physical
    [frame] (byte address, low 12 bits ignored). *)
val make_pte : frame:int -> writable:bool -> user:bool -> int

val frame_of : int -> int
val is_present : int -> bool
val is_writable : int -> bool
val is_user : int -> bool
val is_nx : int -> bool

(** [dir_index vaddr] and [table_index vaddr] split a virtual address. *)
val dir_index : int -> int

val table_index : int -> int

(** {2 Translation} *)

type t

val create : Costs.t -> t

(** [flush t] drops every TLB entry (LPTB and TLBFLUSH do this). *)
val flush : t -> unit

(** [translate t mem ~ptb ~cpl access vaddr] is [(paddr, extra_cycles)].
    Sets accessed/dirty bits on the walked entries.  [extra_cycles] is the
    TLB-miss penalty when a walk was needed, 0 on a hit or with paging off.
    @raise Page_fault on a missing or forbidden mapping. *)
val translate :
  t -> Phys_mem.t -> ptb:int -> cpl:int -> access -> int -> int * int

(** [probe mem ~ptb vaddr] walks the tables without touching accessed/dirty
    bits or the TLB; [None] when unmapped at either level.  Used by the
    monitor's shadow-paging code to read the guest's tables. *)
val probe : Phys_mem.t -> ptb:int -> int -> int option

(** [tlb_covers t ~vpn] — the direct-mapped slot for virtual page [vpn]
    still holds that page's entry.  The CPU's block translator uses this
    as a per-instruction guard: while the code page stays resident, no
    fetch in the block could have walked the tables (no TLB-miss charge,
    no accessed-bit store), so skipping the per-instruction fetch
    translation is invisible.  A data access that evicts the code page's
    entry flips this to [false] and the block bails to the
    interpreter. *)
val tlb_covers : t -> vpn:int -> bool

(** [tlb_hits t] / [tlb_misses t] expose counters for tests and benches. *)
val tlb_hits : t -> int64

val tlb_misses : t -> int64
