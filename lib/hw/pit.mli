(** Programmable interval timer (8253-flavoured).

    Driven by a 1.193182 MHz input clock regardless of CPU frequency, like
    the PC/AT part.  Port map (offsets):
    - +0 reload counter, low 16 bits (write); current count low (read)
    - +1 reload counter, high 16 bits (write); current count high (read)
    - +2 control — write 1 start periodic, 2 start one-shot, 0 stop;
      read 1 while running

    The monitor instantiates a second, unattached timer as the guest's
    virtual PIT (the paper's "timer emulator"). *)

type t

val input_hz : float

(** [create ~engine ~costs ~raise_irq ()] — [raise_irq] fires on expiry
    (wired to PIC line 0 for the physical instance). *)
val create :
  engine:Vmm_sim.Engine.t -> costs:Costs.t -> raise_irq:(unit -> unit) -> unit -> t

val io_read : t -> int -> int
val io_write : t -> int -> int -> unit
val attach : t -> Io_bus.t -> base:int -> unit

(** [running t] and [reload t] expose programming state for tests. *)
val running : t -> bool

val reload : t -> int

(** [ticks_fired t] counts expiries since creation. *)
val ticks_fired : t -> int

(** Checkpoint support: reload, mode (0 stopped / 1 periodic / 2
    one-shot) and cycles remaining until the pending expiry —
    {e relative}, so a restore at a later absolute time re-arms with the
    same offset. *)
type phase = { ph_reload : int; ph_mode : int; ph_remaining : int64 }

val capture_phase : t -> phase

(** [restore_phase t ph] cancels any pending expiry and re-arms from the
    captured phase. *)
val restore_phase : t -> phase -> unit
