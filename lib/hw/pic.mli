(** Programmable interrupt controller (8259-flavoured, simplified
    programming model).

    Eight level-latched request lines with fixed priority (line 0 highest).
    Port map (offsets from the attach base):
    - +0 command/status — write [0x20] = EOI (retire the highest-priority
      in-service line); read = in-service bitmask
    - +1 mask register (read/write; bit set = masked)
    - +2 vector base (read/write)

    The same module implements both the machine's physical PIC and the
    monitor's {e virtual} PIC (created unattached and driven through
    {!io_read}/{!io_write} — the paper's "interruption-controller
    emulator" presents this identical interface to the guest). *)

type t

val lines : int

(** [create ?vector_base ()] — default base {!Isa.vec_irq_base_default}. *)
val create : ?vector_base:int -> unit -> t

(** [set_intr t f] wires the INTR line; [f true] is called when an
    unmasked request becomes deliverable, [f false] when none is. *)
val set_intr : t -> (bool -> unit) -> unit

(** [raise_irq t line] latches a request. *)
val raise_irq : t -> int -> unit

(** [pending t] — would an acknowledge succeed now? *)
val pending : t -> bool

(** [ack t] acknowledges the highest-priority deliverable request: moves it
    to in-service and returns its vector. *)
val ack : t -> int option

(** [vector_base t] — current programmed base. *)
val vector_base : t -> int

(** Direct register access (offset 0-2), used by the bus attachment and by
    the monitor's emulation path. *)
val io_read : t -> int -> int

val io_write : t -> int -> int -> unit

(** [attach t bus ~base] claims three ports at [base]. *)
val attach : t -> Io_bus.t -> base:int -> unit

(** [reset t] returns the controller to power-on state — no requests,
    nothing in service, all lines unmasked, default vector base — and
    recomputes INTR.  Used by the monitor's warm restart on the virtual
    PIC.  Cumulative {!raises}/{!acks} counters are preserved. *)
val reset : t -> unit

(** Checkpoint support: the four programming registers, the whole
    guest-visible state. *)
type state = {
  st_vector_base : int;
  st_request : int;
  st_service : int;
  st_mask : int;
}

val capture : t -> state

(** [restore t s] reinstates captured registers and recomputes INTR. *)
val restore : t -> state -> unit

(** [set_latency_probe t ~now ~observe] arms delivery-latency
    measurement: each {!ack} calls [observe] with the cycles between the
    line's (first) raise and the acknowledge.  Re-raising a pending line
    keeps the original timestamp.  [now] supplies the clock — the PIC
    itself is clockless. *)
val set_latency_probe : t -> now:(unit -> int64) -> observe:(float -> unit) -> unit

(** Introspection for tests. *)
val requested : t -> int

val in_service : t -> int
val mask : t -> int

(** [raises t] / [acks t] — cumulative {!raise_irq} and successful
    {!ack} counts (metrics feed). *)
val raises : t -> int

val acks : t -> int
