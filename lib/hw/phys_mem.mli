(** Physical memory: a flat, byte-addressable array with little-endian
    multi-byte access.

    Addresses are physical; translation lives in {!Mmu}.  Out-of-range
    accesses raise {!Bus_error}, which the CPU turns into a machine check. *)

type t

exception Bus_error of int

(** [create ~size] is zero-filled memory of [size] bytes. *)
val create : size:int -> t

val size : t -> int

(** {2 Write generations}

    Every store bumps a generation counter for each [1 lsl granule_bits]-
    byte granule it touches.  Physically tagged caches — the CPU's
    decoded-instruction cache — validate an entry by comparing the
    generation captured at fill time against {!generation}, so guest
    stores, DMA, breakpoint patching and program loading all invalidate
    without explicit hooks.  Granules are finer than MMU pages so data
    kept adjacent to code does not thrash the instruction cache. *)

val granule_bits : int

(** [generation t addr] is the current write generation of the granule
    containing physical address [addr] (which must be in range). *)
val generation : t -> int -> int

(** 8-bit access; value in [0, 255]. *)
val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit

(** 16-bit little-endian access. *)
val read_u16 : t -> int -> int

val write_u16 : t -> int -> int -> unit

(** 32-bit little-endian access. *)
val read_u32 : t -> int -> Word.t

val write_u32 : t -> int -> Word.t -> unit

(** [load_bytes t ~addr bytes] copies [bytes] into memory at [addr]. *)
val load_bytes : t -> addr:int -> bytes -> unit

(** [read_bytes t ~addr ~len] copies a region out. *)
val read_bytes : t -> addr:int -> len:int -> bytes

(** [blit_to_bytes t ~addr dst ~off ~len] copies a region out into a
    caller-supplied buffer — the allocation-free form of {!read_bytes}
    used by the DMA device models. *)
val blit_to_bytes : t -> addr:int -> bytes -> off:int -> len:int -> unit

(** [write_bytes t ~addr src ~off ~len] copies [len] bytes of [src]
    starting at [off] into memory at [addr] — the counterpart of
    {!blit_to_bytes} for device-to-memory DMA. *)
val write_bytes : t -> addr:int -> bytes -> off:int -> len:int -> unit

(** [blit t ~src ~dst ~len] copies within physical memory (used by the DMA
    engine and the COPY instruction); handles overlap like [Bytes.blit]. *)
val blit : t -> src:int -> dst:int -> len:int -> unit

(** [checksum t ~addr ~len] is the ones'-complement 16-bit sum used by the
    guest's UDP stack (and by tests to validate transmitted frames). *)
val checksum : t -> addr:int -> len:int -> int

(** [checksum_add t ~addr ~len ~index sum] accumulates the region into a
    running ones'-complement sum, where [index] is the byte offset of
    [addr] within the overall message (it fixes 16-bit pairing parity).
    Fold the result with [checksum]-style carry wrapping when done. *)
val checksum_add : t -> addr:int -> len:int -> index:int -> int -> int

(** [fill t ~addr ~len v] sets a region to byte [v]. *)
val fill : t -> addr:int -> len:int -> int -> unit
