(** The LWM-32 processor.

    Executes instructions against physical memory through the {!Mmu},
    dispatches port I/O through the {!Io_bus}, takes external interrupts
    from the interrupt controller and — crucially for this reproduction —
    exposes a {e hypervisor hook}: when installed, every fault, external
    interrupt, software interrupt and hypercall is presented to the hook
    before (instead of) hardware interrupt-table delivery.  The lightweight
    monitor of the paper is that hook; without a hook the CPU behaves like
    bare hardware and delivers through the guest's own table.

    Interrupt frames are uniform: the CPU pushes [old_sp], [old_flags],
    [return_pc], [error] (so the handler sees [error] at [sp+0]); IRET pops
    them in reverse.  Entering a more-privileged ring switches to that
    ring's entry stack (LSTK). *)

(** {2 Faults and events} *)

type gp_reason =
  | Privileged_instruction of Isa.instr
  | Io_denied of int  (** port *)
  | Bad_iret
  | Bad_int_gate of int  (** vector *)
  | Bad_vector of int  (** missing/not-present table entry *)
  | Bad_ring of int

type fault_kind =
  | Page of Mmu.fault
  | Gp of gp_reason
  | Undefined of int  (** opcode *)
  | Breakpoint_trap
  | Step_trap
  | Machine_check of int  (** physical address behind a bus error *)

(** What the hypervisor hook observes. *)
type event =
  | Fault of fault_kind * int  (** fault and the faulting instruction's pc *)
  | Irq of int  (** interrupt vector, already acknowledged at the PIC *)
  | Soft_int of int * int  (** INT vector, pc after the instruction *)
  | Hypercall of int * int  (** VMCALL immediate, pc after the instruction *)

type hook_result =
  | Handled  (** hook updated CPU state itself *)
  | Deliver  (** fall through to hardware table delivery *)

(** Raised when delivery is impossible (double fault, missing handler) and
    no hook is installed. *)
exception Panic of string

type t

(** {2 Construction} *)

(** [create ~mem ~bus ~engine ~costs ~load ()] — [load] accumulates busy
    cycles for utilization measurements. *)
val create :
  mem:Phys_mem.t ->
  bus:Io_bus.t ->
  engine:Vmm_sim.Engine.t ->
  costs:Costs.t ->
  load:Vmm_sim.Stats.load ->
  unit ->
  t

(** [set_pic t ~ack ~pending] wires the interrupt controller's acknowledge
    and level callbacks. *)
val set_pic : t -> ack:(unit -> int option) -> pending:(unit -> bool) -> unit

(** [set_hypervisor t hook] installs/removes the monitor. *)
val set_hypervisor : t -> (t -> event -> hook_result) option -> unit

val has_hypervisor : t -> bool

(** {2 Architectural state} *)

val read_reg : t -> Isa.reg -> Word.t
val write_reg : t -> Isa.reg -> Word.t -> unit
val pc : t -> int
val set_pc : t -> int -> unit
val cpl : t -> int
val set_cpl : t -> int -> unit

(** Flags word layout: bit 0 Z, 1 N, 2 C, 8 TF, 9 IF, 12-13 CPL. *)
val flags_word : t -> int

val set_flags_word : t -> int -> unit
val interrupts_enabled : t -> bool
val set_interrupts_enabled : t -> bool -> unit
val trap_flag : t -> bool
val set_trap_flag : t -> bool -> unit
val iht_base : t -> int
val set_iht_base : t -> int -> unit
val ptb : t -> int

(** [set_ptb t v] loads the page-table base and flushes the TLB. *)
val set_ptb : t -> int -> unit

val ring_stack : t -> int -> int
val set_ring_stack : t -> int -> int -> unit
val halted : t -> bool
val set_halted : t -> bool -> unit

(** Debug stop: freezes instruction execution without affecting the halted
    flag; only the monitor/stub toggles it. *)
val stopped : t -> bool

val set_stopped : t -> bool -> unit

(** {2 I/O permission bitmap} *)

(** [allow_port t port allowed] grants/revokes direct port access for
    rings above 0 (the paper's pass-through mechanism). *)
val allow_port : t -> int -> bool -> unit

val port_allowed : t -> int -> bool

(** {2 Memory access (respecting current translation)} *)

(** [load_u32 t ~cpl vaddr] translates and reads; faults propagate as
    [Mmu.Page_fault]. *)
val load_u32 : t -> cpl:int -> int -> Word.t

val store_u32 : t -> cpl:int -> int -> Word.t -> unit
val load_u8 : t -> cpl:int -> int -> int
val store_u8 : t -> cpl:int -> int -> int -> unit

(** [translate t ~access ~cpl vaddr] is the physical address (charges TLB
    costs). *)
val translate : t -> access:Mmu.access -> cpl:int -> int -> int

val flush_tlb : t -> unit

(** {2 Execution} *)

(** [charge t cycles] advances simulated time and books the cycles as busy
    (used by instruction execution and by the monitor for emulation work). *)
val charge : t -> int -> unit

(** [poll_interrupts t] accepts one pending external interrupt when IF is
    set: acknowledges the PIC, clears halt, and dispatches to the hook or
    the hardware table.  Call between instructions and while halted. *)
val poll_interrupts : t -> unit

(** [step t] executes exactly one instruction (the caller checks
    [halted]/[stopped] first).  Faults dispatch internally; the function
    returns normally unless the machine panics. *)
val step : t -> unit

(** [run_batch t ~horizon ~wake] steps the CPU in a tight loop until the
    clock reaches [horizon], the engine's wake generation moves past
    [wake] (something scheduled an event), or the CPU halts/stops.  The
    caller must have dispatched due events and polled interrupts
    immediately before; the interleaving then matches step-at-a-time
    execution exactly.  Interrupts are still polled between instructions
    inside the batch. *)
val run_batch : t -> horizon:int64 -> wake:int -> unit

(** [deliver t ~table ~vector ~error ~return_pc] runs the interrupt-frame
    protocol against an arbitrary table base — the hardware path uses the
    CPU's own table; the monitor uses it to reflect events into the guest's
    {e virtual} table.
    @raise Panic when the entry is missing and no hook can take over. *)
val deliver : t -> table:int -> vector:int -> error:int -> return_pc:int -> unit

(** [do_iret t] performs the IRET state restore (the monitor uses it to
    emulate a guest IRET).  @raise Panic on a malformed frame request. *)
val do_iret : t -> unit

(** [read_instr t vaddr] fetches and decodes the instruction at a virtual
    address with supervisor rights (used by the monitor to inspect the
    guest instruction behind a trap). *)
val read_instr : t -> int -> Isa.instr

(** {2 Continuous pc sampling}

    The batched dispatch loop ({!run_batch}) checks a cadence after
    every retired instruction: when at least [period] cycles have
    elapsed since the last sample, it calls [hook ~pc ~cpl] — a pure
    read of the interrupted state, between instructions.  The hook must
    not advance the clock or schedule events; under that contract,
    enabling sampling leaves guest-visible behaviour (and therefore
    record/replay bit-equality) untouched.  With [period = 0] the whole
    feature costs one [Int64] compare per instruction. *)

(** [set_sampling t ~period ~hook] arms ([period > 0]) or disarms
    ([period = 0]) the sampler; the next sample is due one period from
    now.  @raise Invalid_argument on a negative period. *)
val set_sampling : t -> period:int64 -> hook:(pc:int -> cpl:int -> unit) -> unit

val sampling_period : t -> int64

(** {2 Introspection} *)

val icache_hits : t -> int
val icache_misses : t -> int
val icache_invalidations : t -> int

(** {2 Block translator}

    [run_batch] normally executes through a basic-block threaded-code
    translator: straight-line decoded runs are compiled into chains of
    closures keyed by {e physical} pc, validated at every dispatch
    against the {!Phys_mem} granule write generations of their whole
    text plus the icache flush stamp (self-modifying code, DMA over
    text, breakpoint patching and [LPTB]/[TLBFLUSH] invalidate compiled
    blocks exactly as they invalidate decoded instructions), and chained
    across taken jumps, calls and returns.  Architectural state,
    cycle accounting, trap ordering, IRQ delivery points and profiler
    sample boundaries are bit-identical to per-instruction stepping —
    the translator is disabled automatically while a per-instruction
    observer is armed (trap flag, retire stop, deliverable interrupt)
    and falls back to the interpreter mid-chain on any fault, budget
    boundary, or code-page TLB eviction. *)

(** [set_jit_enabled t v] turns the translator on/off ([true] at
    creation; {!Machine.create} honors [LWVMM_JIT=0]).  Toggling is safe
    at any instruction boundary and never changes guest-visible
    behaviour, only speed. *)
val set_jit_enabled : t -> bool -> unit

val jit_enabled : t -> bool

(** [set_jit_pin t pred] registers pcs that must head their own block —
    the monitor points this at the debug stub's breakpoint table so a
    planted trap site is never buried mid-block.  Installing a predicate
    flushes compiled blocks (O(1) stamp bump) so it takes effect
    immediately. *)
val set_jit_pin : t -> (int -> bool) -> unit

val blocks_compiled : t -> int
val block_hits : t -> int
val block_invalidations : t -> int

(** [block_chain_follows t] — dispatches that continued a chain within
    one translator run (superblock chaining across taken transfers). *)
val block_chain_follows : t -> int

(** [block_fallbacks t] — translator dispatches that fell back to one
    interpreter step (interpreter-only instruction, straddling fetch,
    pinned site, out-of-RAM text). *)
val block_fallbacks : t -> int

val instructions_retired : t -> int64

(** {2 Reverse-debug support}

    Reverse-step/continue are implemented as checkpoint restore plus
    deterministic re-execution to an absolute retirement count. *)

(** [set_instructions_retired t n] rewinds (or forwards) the retirement
    counter — checkpoint restore only; the counter otherwise only
    increments. *)
val set_instructions_retired : t -> int64 -> unit

(** [set_retire_stop t (Some (target, f))] arms a stop: the CPU freezes
    ([stopped] set) between instructions as soon as [instructions_retired]
    reaches [target], then calls [f].  [None] disarms. *)
val set_retire_stop : t -> (int64 * (t -> unit)) option -> unit

val retire_stop_armed : t -> bool
val interrupts_taken : t -> int64
val faults_taken : t -> int64
val mmu : t -> Mmu.t
val mem : t -> Phys_mem.t
val bus : t -> Io_bus.t
val engine : t -> Vmm_sim.Engine.t
val costs : t -> Costs.t

val pp_gp_reason : Format.formatter -> gp_reason -> unit
val pp_fault : Format.formatter -> fault_kind -> unit
val pp_event : Format.formatter -> event -> unit
