module Engine = Vmm_sim.Engine

let sector_size = 512

type target_state = {
  mutable busy : bool;
  mutable done_ : bool;
  sectors : (int, Bytes.t) Hashtbl.t; (* sector index -> sector_size block *)
  mutable staging : Bytes.t; (* reusable write-command latch buffer *)
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  mem : Phys_mem.t;
  target_states : target_state array;
  mutable sel_target : int;
  mutable sel_lba : int;
  mutable sel_count : int;
  mutable sel_dma : int;
  mutable error : bool;
  mutable irq : unit -> unit;
  mutable reads_completed : int;
  mutable bytes_read : int64;
  mutable inject_read_errors : int;
      (* fault injection: the next N reads fail at the medium *)
  mutable read_errors : int;
  mutable writes_completed : int;
  mutable tracer : Vmm_obs.Tracer.t option;
  mutable epoch : int;
      (* bumped by [reset]; in-flight completion events compare their
         captured epoch and become no-ops after a warm restart *)
}

let create ~engine ~costs ~mem ~targets () =
  if targets < 1 || targets > 8 then invalid_arg "Scsi.create: targets";
  {
    engine;
    costs;
    mem;
    target_states =
      Array.init targets (fun _ ->
          {
            busy = false;
            done_ = false;
            sectors = Hashtbl.create 64;
            staging = Bytes.create 0;
          });
    sel_target = 0;
    sel_lba = 0;
    sel_count = 0;
    sel_dma = 0;
    error = false;
    irq = (fun () -> ());
    reads_completed = 0;
    bytes_read = 0L;
    inject_read_errors = 0;
    read_errors = 0;
    writes_completed = 0;
    tracer = None;
    epoch = 0;
  }

let targets t = Array.length t.target_states

let set_irq t f = t.irq <- f
let set_tracer t tracer = t.tracer <- Some tracer

let pattern_byte ~target ~offset = (offset + (7 * target) + 13) mod 251

(* The pattern has period 251, so any run of up to a sector is a contiguous
   slice of this table: byte [offset] of target [tg] is
   [pattern_table.((offset + 7*tg + 13) mod 251 + k)] for consecutive [k].
   That turns synthetic-medium reads into blits instead of per-byte math. *)
let pattern_table =
  Bytes.init (251 + sector_size) (fun j -> Char.chr (j mod 251))

let pattern_start ~target ~offset = (offset + (7 * target) + 13) mod 251

(* Backing block for one sector, created on first write and pre-filled with
   the synthetic pattern so partially written sectors read back exactly as
   the per-byte store did. *)
let sector_block ~target ts sector =
  match Hashtbl.find_opt ts.sectors sector with
  | Some b -> b
  | None ->
    let j0 = pattern_start ~target ~offset:(sector * sector_size) in
    let b = Bytes.sub pattern_table j0 sector_size in
    Hashtbl.add ts.sectors sector b;
    b

let transfer_cycles t bytes =
  let seconds =
    float_of_int (8 * bytes) /. (t.costs.Costs.disk_rate_mbps *. 1e6)
  in
  Int64.add
    (Int64.of_int t.costs.Costs.disk_setup_cycles)
    (Costs.cycles_of_seconds t.costs seconds)

let complete_read t target lba count dma =
  let ts = t.target_states.(target) in
  if t.inject_read_errors > 0 then begin
    (* A medium error: the command completes (so the driver's wait ends)
       but no data is transferred and the error flag is raised. *)
    t.inject_read_errors <- t.inject_read_errors - 1;
    t.read_errors <- t.read_errors + 1;
    ts.busy <- false;
    ts.done_ <- true;
    t.error <- true;
    t.irq ()
  end
  else begin
  let base = lba * sector_size in
  let pos = ref 0 in
  while !pos < count do
    let off = base + !pos in
    let sector = off / sector_size in
    let s_off = off land (sector_size - 1) in
    let chunk = min (count - !pos) (sector_size - s_off) in
    (match Hashtbl.find_opt ts.sectors sector with
     | Some b -> Phys_mem.write_bytes t.mem ~addr:(dma + !pos) b ~off:s_off ~len:chunk
     | None ->
       let j0 = pattern_start ~target ~offset:off in
       Phys_mem.write_bytes t.mem ~addr:(dma + !pos) pattern_table ~off:j0
         ~len:chunk);
    pos := !pos + chunk
  done;
  ts.busy <- false;
  ts.done_ <- true;
  t.reads_completed <- t.reads_completed + 1;
  t.bytes_read <- Int64.add t.bytes_read (Int64.of_int count);
  t.irq ()
  end

(* Write data is latched when the command is issued (the controller DMAs
   it out immediately); completion only signals that the medium has it.
   This keeps a single staging buffer in the guest race-free. *)
let complete_write t target lba count =
  let ts = t.target_states.(target) in
  let base = lba * sector_size in
  let pos = ref 0 in
  while !pos < count do
    let off = base + !pos in
    let sector = off / sector_size in
    let s_off = off land (sector_size - 1) in
    let chunk = min (count - !pos) (sector_size - s_off) in
    Bytes.blit ts.staging !pos (sector_block ~target ts sector) s_off chunk;
    pos := !pos + chunk
  done;
  ts.busy <- false;
  ts.done_ <- true;
  t.writes_completed <- t.writes_completed + 1;
  t.irq ()

let start_command t cmd =
  let target = t.sel_target in
  if target < 0 || target >= targets t then t.error <- true
  else begin
    let ts = t.target_states.(target) in
    if ts.busy || t.sel_count <= 0 then t.error <- true
    else begin
      let lba = t.sel_lba and count = t.sel_count and dma = t.sel_dma in
      ts.busy <- true;
      let finish =
        match cmd with
        | 1 -> fun () -> complete_read t target lba count dma
        | _ ->
          (* Latch outgoing data into the target's staging buffer now; the
             [busy] guard keeps it exclusive until completion. *)
          if Bytes.length ts.staging < count then
            ts.staging <- Bytes.create count;
          Phys_mem.blit_to_bytes t.mem ~addr:dma ts.staging ~off:0 ~len:count;
          fun () -> complete_write t target lba count
      in
      let delay = transfer_cycles t count in
      (match t.tracer with
       | Some tracer ->
         let start = Engine.now t.engine in
         Vmm_obs.Tracer.add_complete tracer ~cat:"dma"
           ~name:(if cmd = 1 then "scsi_read" else "scsi_write")
           ~start ~stop:(Int64.add start delay) ()
       | None -> ());
      let epoch = t.epoch in
      ignore
        (Engine.after t.engine ~delay (fun () ->
             if t.epoch = epoch then finish ()))
    end
  end

let status t =
  let acc = ref (if t.error then 1 lsl 31 else 0) in
  Array.iteri
    (fun i ts ->
      if ts.done_ then acc := !acc lor (1 lsl i);
      if ts.busy then acc := !acc lor (1 lsl (16 + i)))
    t.target_states;
  !acc

let io_read t offset =
  match offset with
  | 5 -> status t
  | 0 -> t.sel_target
  | 1 -> t.sel_lba
  | 2 -> t.sel_count
  | 3 -> t.sel_dma
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> t.sel_target <- v
  | 1 -> t.sel_lba <- v
  | 2 -> t.sel_count <- v
  | 3 -> t.sel_dma <- v
  | 4 ->
    (match v land 3 with
     | 1 | 2 -> start_command t (v land 3)
     | _ -> t.error <- true)
  | 6 ->
    if v >= 0 && v < targets t then begin
      t.target_states.(v).done_ <- false;
      t.error <- false
    end
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"scsi" ~base ~count:7 ~read:(io_read t)
    ~write:(io_write t)

let reads_completed t = t.reads_completed
let bytes_read t = t.bytes_read
let writes_completed t = t.writes_completed

let busy_targets t =
  Array.fold_left (fun acc ts -> if ts.busy then acc + 1 else acc) 0
    t.target_states

(* Warm-restart support: abandon in-flight commands (their completion
   events are epoch-guarded no-ops now), drop completion/error state and
   guest-written sectors, and clear the selection registers — power-on
   state.  Cumulative counters and armed fault injections survive: the
   former are monitor-side telemetry, the latter belong to the fault
   plan, not the guest. *)
let reset t =
  t.epoch <- t.epoch + 1;
  Array.iter
    (fun ts ->
      ts.busy <- false;
      ts.done_ <- false;
      Hashtbl.reset ts.sectors)
    t.target_states;
  t.sel_target <- 0;
  t.sel_lba <- 0;
  t.sel_count <- 0;
  t.sel_dma <- 0;
  t.error <- false

(* Fault injection: fail the next [n] reads at the medium. *)
let inject_read_errors t n =
  if n < 0 then invalid_arg "Scsi.inject_read_errors: negative";
  t.inject_read_errors <- t.inject_read_errors + n

let read_errors t = t.read_errors
