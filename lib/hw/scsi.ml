module Engine = Vmm_sim.Engine

let sector_size = 512

type target_state = {
  mutable busy : bool;
  mutable done_ : bool;
  sectors : (int, Bytes.t) Hashtbl.t; (* sector index -> sector_size block *)
  mutable staging : Bytes.t; (* reusable write-command latch buffer *)
}

(* An in-flight command, materialized so checkpoints can capture it and
   re-arm it after a restore (the completion event alone is a closure and
   cannot round-trip). *)
type op = {
  op_target : int;
  op_cmd : int; (* 1 = read, 2 = write *)
  op_lba : int;
  op_count : int;
  op_dma : int;
  op_done_at : int64;
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  mem : Phys_mem.t;
  target_states : target_state array;
  mutable inflight : op list; (* submission order *)
  mutable sel_target : int;
  mutable sel_lba : int;
  mutable sel_count : int;
  mutable sel_dma : int;
  mutable error : bool;
  mutable irq : unit -> unit;
  mutable reads_completed : int;
  mutable bytes_read : int64;
  mutable inject_read_errors : int;
      (* fault injection: the next N reads fail at the medium *)
  mutable read_errors : int;
  mutable writes_completed : int;
  mutable tracer : Vmm_obs.Tracer.t option;
  mutable epoch : int;
      (* bumped by [reset]; in-flight completion events compare their
         captured epoch and become no-ops after a warm restart *)
}

let create ~engine ~costs ~mem ~targets () =
  if targets < 1 || targets > 8 then invalid_arg "Scsi.create: targets";
  {
    engine;
    costs;
    mem;
    target_states =
      Array.init targets (fun _ ->
          {
            busy = false;
            done_ = false;
            sectors = Hashtbl.create 64;
            staging = Bytes.create 0;
          });
    inflight = [];
    sel_target = 0;
    sel_lba = 0;
    sel_count = 0;
    sel_dma = 0;
    error = false;
    irq = (fun () -> ());
    reads_completed = 0;
    bytes_read = 0L;
    inject_read_errors = 0;
    read_errors = 0;
    writes_completed = 0;
    tracer = None;
    epoch = 0;
  }

let targets t = Array.length t.target_states

let set_irq t f = t.irq <- f
let set_tracer t tracer = t.tracer <- Some tracer

let pattern_byte ~target ~offset = (offset + (7 * target) + 13) mod 251

(* The pattern has period 251, so any run of up to a sector is a contiguous
   slice of this table: byte [offset] of target [tg] is
   [pattern_table.((offset + 7*tg + 13) mod 251 + k)] for consecutive [k].
   That turns synthetic-medium reads into blits instead of per-byte math. *)
let pattern_table =
  Bytes.init (251 + sector_size) (fun j -> Char.chr (j mod 251))

let pattern_start ~target ~offset = (offset + (7 * target) + 13) mod 251

(* Backing block for one sector, created on first write and pre-filled with
   the synthetic pattern so partially written sectors read back exactly as
   the per-byte store did. *)
let sector_block ~target ts sector =
  match Hashtbl.find_opt ts.sectors sector with
  | Some b -> b
  | None ->
    let j0 = pattern_start ~target ~offset:(sector * sector_size) in
    let b = Bytes.sub pattern_table j0 sector_size in
    Hashtbl.add ts.sectors sector b;
    b

let transfer_cycles t bytes =
  let seconds =
    float_of_int (8 * bytes) /. (t.costs.Costs.disk_rate_mbps *. 1e6)
  in
  Int64.add
    (Int64.of_int t.costs.Costs.disk_setup_cycles)
    (Costs.cycles_of_seconds t.costs seconds)

let complete_read t target lba count dma =
  let ts = t.target_states.(target) in
  if t.inject_read_errors > 0 then begin
    (* A medium error: the command completes (so the driver's wait ends)
       but no data is transferred and the error flag is raised. *)
    t.inject_read_errors <- t.inject_read_errors - 1;
    t.read_errors <- t.read_errors + 1;
    ts.busy <- false;
    ts.done_ <- true;
    t.error <- true;
    t.irq ()
  end
  else begin
  let base = lba * sector_size in
  let pos = ref 0 in
  while !pos < count do
    let off = base + !pos in
    let sector = off / sector_size in
    let s_off = off land (sector_size - 1) in
    let chunk = min (count - !pos) (sector_size - s_off) in
    (match Hashtbl.find_opt ts.sectors sector with
     | Some b -> Phys_mem.write_bytes t.mem ~addr:(dma + !pos) b ~off:s_off ~len:chunk
     | None ->
       let j0 = pattern_start ~target ~offset:off in
       Phys_mem.write_bytes t.mem ~addr:(dma + !pos) pattern_table ~off:j0
         ~len:chunk);
    pos := !pos + chunk
  done;
  ts.busy <- false;
  ts.done_ <- true;
  t.reads_completed <- t.reads_completed + 1;
  t.bytes_read <- Int64.add t.bytes_read (Int64.of_int count);
  t.irq ()
  end

(* Write data is latched when the command is issued (the controller DMAs
   it out immediately); completion only signals that the medium has it.
   This keeps a single staging buffer in the guest race-free. *)
let complete_write t target lba count =
  let ts = t.target_states.(target) in
  let base = lba * sector_size in
  let pos = ref 0 in
  while !pos < count do
    let off = base + !pos in
    let sector = off / sector_size in
    let s_off = off land (sector_size - 1) in
    let chunk = min (count - !pos) (sector_size - s_off) in
    Bytes.blit ts.staging !pos (sector_block ~target ts sector) s_off chunk;
    pos := !pos + chunk
  done;
  ts.busy <- false;
  ts.done_ <- true;
  t.writes_completed <- t.writes_completed + 1;
  t.irq ()

let complete_op t op =
  match op.op_cmd with
  | 1 -> complete_read t op.op_target op.op_lba op.op_count op.op_dma
  | _ -> complete_write t op.op_target op.op_lba op.op_count

(* Schedule an op's completion.  The descriptor lives in [inflight] until
   the event fires, so checkpoints see exactly what is on the wire; the
   event itself is epoch-guarded so reset/restore abandons it. *)
let arm_op t op ~delay =
  t.inflight <- t.inflight @ [ op ];
  let epoch = t.epoch in
  ignore
    (Engine.after t.engine ~delay (fun () ->
         if t.epoch = epoch then begin
           t.inflight <- List.filter (fun o -> o != op) t.inflight;
           complete_op t op
         end))

let start_command t cmd =
  let target = t.sel_target in
  if target < 0 || target >= targets t then t.error <- true
  else begin
    let ts = t.target_states.(target) in
    if ts.busy || t.sel_count <= 0 then t.error <- true
    else begin
      let lba = t.sel_lba and count = t.sel_count and dma = t.sel_dma in
      ts.busy <- true;
      if cmd <> 1 then begin
        (* Latch outgoing data into the target's staging buffer now; the
           [busy] guard keeps it exclusive until completion. *)
        if Bytes.length ts.staging < count then ts.staging <- Bytes.create count;
        Phys_mem.blit_to_bytes t.mem ~addr:dma ts.staging ~off:0 ~len:count
      end;
      let delay = transfer_cycles t count in
      (match t.tracer with
       | Some tracer ->
         let start = Engine.now t.engine in
         Vmm_obs.Tracer.add_complete tracer ~cat:"dma"
           ~name:(if cmd = 1 then "scsi_read" else "scsi_write")
           ~start ~stop:(Int64.add start delay) ()
       | None -> ());
      arm_op t
        {
          op_target = target;
          op_cmd = cmd;
          op_lba = lba;
          op_count = count;
          op_dma = dma;
          op_done_at = Int64.add (Engine.now t.engine) delay;
        }
        ~delay
    end
  end

let status t =
  let acc = ref (if t.error then 1 lsl 31 else 0) in
  Array.iteri
    (fun i ts ->
      if ts.done_ then acc := !acc lor (1 lsl i);
      if ts.busy then acc := !acc lor (1 lsl (16 + i)))
    t.target_states;
  !acc

let io_read t offset =
  match offset with
  | 5 -> status t
  | 0 -> t.sel_target
  | 1 -> t.sel_lba
  | 2 -> t.sel_count
  | 3 -> t.sel_dma
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> t.sel_target <- v
  | 1 -> t.sel_lba <- v
  | 2 -> t.sel_count <- v
  | 3 -> t.sel_dma <- v
  | 4 ->
    (match v land 3 with
     | 1 | 2 -> start_command t (v land 3)
     | _ -> t.error <- true)
  | 6 ->
    if v >= 0 && v < targets t then begin
      t.target_states.(v).done_ <- false;
      t.error <- false
    end
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"scsi" ~base ~count:7 ~read:(io_read t)
    ~write:(io_write t)

let reads_completed t = t.reads_completed
let bytes_read t = t.bytes_read
let writes_completed t = t.writes_completed

let busy_targets t =
  Array.fold_left (fun acc ts -> if ts.busy then acc + 1 else acc) 0
    t.target_states

(* Warm-restart support: abandon in-flight commands (their completion
   events are epoch-guarded no-ops now), drop completion/error state and
   guest-written sectors, and clear the selection registers — power-on
   state.  Cumulative counters and armed fault injections survive: the
   former are monitor-side telemetry, the latter belong to the fault
   plan, not the guest. *)
let reset t =
  t.epoch <- t.epoch + 1;
  t.inflight <- [];
  Array.iter
    (fun ts ->
      ts.busy <- false;
      ts.done_ <- false;
      Hashtbl.reset ts.sectors)
    t.target_states;
  t.sel_target <- 0;
  t.sel_lba <- 0;
  t.sel_count <- 0;
  t.sel_dma <- 0;
  t.error <- false

(* Checkpoint support.  In-flight completion times are captured relative
   (cycles until completion) so a restore at a later absolute time
   re-arms with the same offsets; sector tables are deep-copied and
   sorted so two captures of the same state serialize identically. *)
type op_state = {
  os_target : int;
  os_cmd : int;
  os_lba : int;
  os_count : int;
  os_dma : int;
  os_remaining : int64;
}

type tgt_state = {
  ts_busy : bool;
  ts_done : bool;
  ts_sectors : (int * Bytes.t) list;
  ts_staging : Bytes.t;
}

type state = {
  s_targets : tgt_state array;
  s_sel_target : int;
  s_sel_lba : int;
  s_sel_count : int;
  s_sel_dma : int;
  s_error : bool;
  s_inflight : op_state list;
}

let capture t =
  let now = Engine.now t.engine in
  {
    s_targets =
      Array.map
        (fun ts ->
          {
            ts_busy = ts.busy;
            ts_done = ts.done_;
            ts_sectors =
              Hashtbl.fold (fun k v acc -> (k, Bytes.copy v) :: acc) ts.sectors []
              |> List.sort (fun (a, _) (b, _) -> compare a b);
            ts_staging = Bytes.copy ts.staging;
          })
        t.target_states;
    s_sel_target = t.sel_target;
    s_sel_lba = t.sel_lba;
    s_sel_count = t.sel_count;
    s_sel_dma = t.sel_dma;
    s_error = t.error;
    s_inflight =
      List.map
        (fun op ->
          let d = Int64.sub op.op_done_at now in
          {
            os_target = op.op_target;
            os_cmd = op.op_cmd;
            os_lba = op.op_lba;
            os_count = op.op_count;
            os_dma = op.op_dma;
            os_remaining = (if Int64.compare d 0L < 0 then 0L else d);
          })
        t.inflight;
  }

let restore t s =
  if Array.length s.s_targets <> targets t then
    invalid_arg "Scsi.restore: target count mismatch";
  t.epoch <- t.epoch + 1;
  t.inflight <- [];
  Array.iteri
    (fun i ts ->
      let st = s.s_targets.(i) in
      ts.busy <- st.ts_busy;
      ts.done_ <- st.ts_done;
      Hashtbl.reset ts.sectors;
      List.iter (fun (k, v) -> Hashtbl.replace ts.sectors k (Bytes.copy v))
        st.ts_sectors;
      ts.staging <- Bytes.copy st.ts_staging)
    t.target_states;
  t.sel_target <- s.s_sel_target;
  t.sel_lba <- s.s_sel_lba;
  t.sel_count <- s.s_sel_count;
  t.sel_dma <- s.s_sel_dma;
  t.error <- s.s_error;
  List.iter
    (fun os ->
      arm_op t
        {
          op_target = os.os_target;
          op_cmd = os.os_cmd;
          op_lba = os.os_lba;
          op_count = os.os_count;
          op_dma = os.os_dma;
          op_done_at = Int64.add (Engine.now t.engine) os.os_remaining;
        }
        ~delay:os.os_remaining)
    s.s_inflight

let inflight_ops t = List.length t.inflight

(* Fault injection: fail the next [n] reads at the medium. *)
let inject_read_errors t n =
  if n < 0 then invalid_arg "Scsi.inject_read_errors: negative";
  t.inject_read_errors <- t.inject_read_errors + n

let read_errors t = t.read_errors
