module Engine = Vmm_sim.Engine

let sector_size = 512

type target_state = {
  mutable busy : bool;
  mutable done_ : bool;
  written : (int, int) Hashtbl.t; (* byte offset -> value *)
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  mem : Phys_mem.t;
  target_states : target_state array;
  mutable sel_target : int;
  mutable sel_lba : int;
  mutable sel_count : int;
  mutable sel_dma : int;
  mutable error : bool;
  mutable irq : unit -> unit;
  mutable reads_completed : int;
  mutable bytes_read : int64;
  mutable inject_read_errors : int;
      (* fault injection: the next N reads fail at the medium *)
  mutable read_errors : int;
  mutable writes_completed : int;
  mutable tracer : Vmm_obs.Tracer.t option;
}

let create ~engine ~costs ~mem ~targets () =
  if targets < 1 || targets > 8 then invalid_arg "Scsi.create: targets";
  {
    engine;
    costs;
    mem;
    target_states =
      Array.init targets (fun _ ->
          { busy = false; done_ = false; written = Hashtbl.create 64 });
    sel_target = 0;
    sel_lba = 0;
    sel_count = 0;
    sel_dma = 0;
    error = false;
    irq = (fun () -> ());
    reads_completed = 0;
    bytes_read = 0L;
    inject_read_errors = 0;
    read_errors = 0;
    writes_completed = 0;
    tracer = None;
  }

let targets t = Array.length t.target_states

let set_irq t f = t.irq <- f
let set_tracer t tracer = t.tracer <- Some tracer

let pattern_byte ~target ~offset = (offset + (7 * target) + 13) mod 251

let transfer_cycles t bytes =
  let seconds =
    float_of_int (8 * bytes) /. (t.costs.Costs.disk_rate_mbps *. 1e6)
  in
  Int64.add
    (Int64.of_int t.costs.Costs.disk_setup_cycles)
    (Costs.cycles_of_seconds t.costs seconds)

let complete_read t target lba count dma =
  let ts = t.target_states.(target) in
  if t.inject_read_errors > 0 then begin
    (* A medium error: the command completes (so the driver's wait ends)
       but no data is transferred and the error flag is raised. *)
    t.inject_read_errors <- t.inject_read_errors - 1;
    t.read_errors <- t.read_errors + 1;
    ts.busy <- false;
    ts.done_ <- true;
    t.error <- true;
    t.irq ()
  end
  else begin
  let base = lba * sector_size in
  for i = 0 to count - 1 do
    let v =
      match Hashtbl.find_opt ts.written (base + i) with
      | Some v -> v
      | None -> pattern_byte ~target ~offset:(base + i)
    in
    Phys_mem.write_u8 t.mem (dma + i) v
  done;
  ts.busy <- false;
  ts.done_ <- true;
  t.reads_completed <- t.reads_completed + 1;
  t.bytes_read <- Int64.add t.bytes_read (Int64.of_int count);
  t.irq ()
  end

(* Write data is latched when the command is issued (the controller DMAs
   it out immediately); completion only signals that the medium has it.
   This keeps a single staging buffer in the guest race-free. *)
let complete_write t target lba data =
  let ts = t.target_states.(target) in
  let base = lba * sector_size in
  Bytes.iteri
    (fun i byte -> Hashtbl.replace ts.written (base + i) (Char.code byte))
    data;
  ts.busy <- false;
  ts.done_ <- true;
  t.writes_completed <- t.writes_completed + 1;
  t.irq ()

let start_command t cmd =
  let target = t.sel_target in
  if target < 0 || target >= targets t then t.error <- true
  else begin
    let ts = t.target_states.(target) in
    if ts.busy || t.sel_count <= 0 then t.error <- true
    else begin
      let lba = t.sel_lba and count = t.sel_count and dma = t.sel_dma in
      ts.busy <- true;
      let finish =
        match cmd with
        | 1 -> fun () -> complete_read t target lba count dma
        | _ ->
          let data = Phys_mem.read_bytes t.mem ~addr:dma ~len:count in
          fun () -> complete_write t target lba data
      in
      let delay = transfer_cycles t count in
      (match t.tracer with
       | Some tracer ->
         let start = Engine.now t.engine in
         Vmm_obs.Tracer.add_complete tracer ~cat:"dma"
           ~name:(if cmd = 1 then "scsi_read" else "scsi_write")
           ~start ~stop:(Int64.add start delay) ()
       | None -> ());
      ignore (Engine.after t.engine ~delay finish)
    end
  end

let status t =
  let acc = ref (if t.error then 1 lsl 31 else 0) in
  Array.iteri
    (fun i ts ->
      if ts.done_ then acc := !acc lor (1 lsl i);
      if ts.busy then acc := !acc lor (1 lsl (16 + i)))
    t.target_states;
  !acc

let io_read t offset =
  match offset with
  | 5 -> status t
  | 0 -> t.sel_target
  | 1 -> t.sel_lba
  | 2 -> t.sel_count
  | 3 -> t.sel_dma
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> t.sel_target <- v
  | 1 -> t.sel_lba <- v
  | 2 -> t.sel_count <- v
  | 3 -> t.sel_dma <- v
  | 4 ->
    (match v land 3 with
     | 1 | 2 -> start_command t (v land 3)
     | _ -> t.error <- true)
  | 6 ->
    if v >= 0 && v < targets t then begin
      t.target_states.(v).done_ <- false;
      t.error <- false
    end
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"scsi" ~base ~count:7 ~read:(io_read t)
    ~write:(io_write t)

let reads_completed t = t.reads_completed
let bytes_read t = t.bytes_read
let writes_completed t = t.writes_completed

let busy_targets t =
  Array.fold_left (fun acc ts -> if ts.busy then acc + 1 else acc) 0
    t.target_states

(* Fault injection: fail the next [n] reads at the medium. *)
let inject_read_errors t n =
  if n < 0 then invalid_arg "Scsi.inject_read_errors: negative";
  t.inject_read_errors <- t.inject_read_errors + n

let read_errors t = t.read_errors
