(** The LWM-32 instruction set.

    A small 32-bit architecture with the system-level features the paper's
    monitor relies on: four privilege rings, privileged control-register
    instructions, port-mapped I/O, software interrupts and a one-byte-patchable
    breakpoint instruction.  Every instruction occupies exactly 8 bytes
    (opcode byte, three 4-bit register fields, 32-bit immediate), which keeps
    breakpoint patching and single-stepping trivial for the debug stub. *)

(** Register index in [0, 15].  By convention r14 is the stack pointer
    ({!sp}) and r15 the frame/link scratch register. *)
type reg = int

val sp : reg
val num_regs : int

(** [instr] — see the manual section in README.md for semantics. *)
type instr =
  | Nop
  | Hlt  (** privileged: idle until the next interrupt *)
  | Movi of reg * Word.t  (** rd := imm *)
  | Mov of reg * reg  (** rd := rs *)
  | Add of reg * reg * reg
  | Addi of reg * reg * Word.t
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Mul of reg * reg * reg
  | Cmp of reg * reg  (** set Z/N/C from rs1 - rs2 *)
  | Cmpi of reg * Word.t
  | Ld of reg * reg * Word.t  (** rd := mem32\[rs + imm\] *)
  | St of reg * Word.t * reg  (** mem32\[base + imm\] := src *)
  | Ldb of reg * reg * Word.t  (** rd := mem8\[rs + imm\] *)
  | Stb of reg * Word.t * reg  (** mem8\[base + imm\] := src (low byte) *)
  | Jmp of Word.t  (** absolute jump *)
  | Jz of Word.t
  | Jnz of Word.t
  | Jlt of Word.t  (** signed less-than *)
  | Jge of Word.t
  | Jb of Word.t  (** unsigned below *)
  | Jae of Word.t
  | Jr of reg
  | Call of Word.t  (** push return address, jump *)
  | Ret
  | Push of reg
  | Pop of reg
  | In_ of reg * reg  (** rd := port\[rs\]; checked against the I/O bitmap *)
  | Ini of reg * Word.t  (** rd := port\[imm\] *)
  | Out of reg * reg  (** port\[rs1\] := rs2 *)
  | Outi of Word.t * reg  (** port\[imm\] := rs *)
  | Int_ of int  (** software interrupt through vector *)
  | Iret  (** privileged: return from interrupt *)
  | Sti  (** privileged: enable interrupts *)
  | Cli  (** privileged: disable interrupts *)
  | Liht of reg  (** privileged: interrupt-handling-table base := rs *)
  | Lptb of reg  (** privileged: page-table base := rs (0 disables paging) *)
  | Lstk of int * reg  (** privileged: ring-[n] entry stack := rs *)
  | Tlbflush  (** privileged: drop all TLB entries *)
  | Copy of reg * reg * reg  (** mem\[rd..\] := mem\[rs1..\] for rs2 bytes *)
  | Csum of reg * reg * reg  (** rd := inet_checksum(mem\[rs1..\], rs2 bytes) *)
  | Rdtsc of reg  (** rd := low 32 bits of the cycle counter *)
  | Vmcall of Word.t  (** explicit trap to the monitor (hypercall) *)
  | Brk  (** breakpoint trap (vector 3) *)

(** Encoded instruction width in bytes. *)
val width : int

exception Decode_error of { addr : int; opcode : int }

(** [encode i] is the 8-byte little-endian encoding. *)
val encode : instr -> bytes

(** [decode ~addr b ~off] decodes 8 bytes at [off]; [addr] only labels the
    exception. @raise Decode_error on an unknown opcode. *)
val decode : addr:int -> bytes -> off:int -> instr

(** [read mem addr] decodes directly from physical memory. *)
val read : Phys_mem.t -> int -> instr

(** [write mem addr i] encodes directly into physical memory. *)
val write : Phys_mem.t -> int -> instr -> unit

(** [to_string i] is an assembly-like rendering, e.g. ["add r1, r2, r3"]. *)
val to_string : instr -> string

(** [is_privileged i] — instructions that fault with #GP outside ring 0. *)
val is_privileged : instr -> bool

(** [base_cycles costs i] is the instruction's execution cost excluding
    dynamic components (TLB misses, COPY length, port waits). *)
val base_cycles : Costs.t -> instr -> int

(** Control-flow shape of an instruction, shared by the static
    verifier's CFG recovery ({!Vmm_analysis.Cfg} re-exports it) and the
    CPU's basic-block translator: both need the same leader/terminator
    classification.  [Fallthrough] covers every instruction whose sole
    static successor is the next slot — including privileged and I/O
    instructions, which fall through {e architecturally} even though the
    translator refuses to compile them into a block. *)
type flow =
  | Fallthrough
  | Jump of Word.t
  | Branch of Word.t  (** conditional: target plus fall-through *)
  | Call_to of Word.t
  | Indirect  (** [Jr] — unknown target *)
  | Return
  | Int_return  (** [Iret] *)
  | Terminal  (** [Brk] *)

val flow_of : instr -> flow

(** Fault vector numbers (interrupt-handling-table slots). *)
val vec_debug_step : int

val vec_breakpoint : int
val vec_undefined : int
val vec_protection : int
val vec_page_fault : int
val vec_machine_check : int

(** First vector usable for external interrupts by convention. *)
val vec_irq_base_default : int
