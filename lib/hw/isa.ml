type reg = int

let sp = 14
let num_regs = 16

type instr =
  | Nop
  | Hlt
  | Movi of reg * Word.t
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * Word.t
  | Sub of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Mul of reg * reg * reg
  | Cmp of reg * reg
  | Cmpi of reg * Word.t
  | Ld of reg * reg * Word.t
  | St of reg * Word.t * reg
  | Ldb of reg * reg * Word.t
  | Stb of reg * Word.t * reg
  | Jmp of Word.t
  | Jz of Word.t
  | Jnz of Word.t
  | Jlt of Word.t
  | Jge of Word.t
  | Jb of Word.t
  | Jae of Word.t
  | Jr of reg
  | Call of Word.t
  | Ret
  | Push of reg
  | Pop of reg
  | In_ of reg * reg
  | Ini of reg * Word.t
  | Out of reg * reg
  | Outi of Word.t * reg
  | Int_ of int
  | Iret
  | Sti
  | Cli
  | Liht of reg
  | Lptb of reg
  | Lstk of int * reg
  | Tlbflush
  | Copy of reg * reg * reg
  | Csum of reg * reg * reg
  | Rdtsc of reg
  | Vmcall of Word.t
  | Brk

let width = 8

exception Decode_error of { addr : int; opcode : int }

(* Encoding: byte 0 opcode, byte 1 = a:4 | b:4, byte 2 = c:4 in low nibble,
   byte 3 reserved zero, bytes 4-7 imm32 little-endian. *)

let op_nop = 0x00
let op_hlt = 0x01
let op_movi = 0x02
let op_mov = 0x03
let op_add = 0x04
let op_addi = 0x05
let op_sub = 0x06
let op_and = 0x07
let op_or = 0x08
let op_xor = 0x09
let op_shl = 0x0A
let op_shr = 0x0B
let op_mul = 0x0C
let op_cmp = 0x0D
let op_cmpi = 0x0E
let op_ld = 0x0F
let op_st = 0x10
let op_ldb = 0x11
let op_stb = 0x12
let op_jmp = 0x13
let op_jz = 0x14
let op_jnz = 0x15
let op_jlt = 0x16
let op_jge = 0x17
let op_jb = 0x18
let op_jae = 0x19
let op_jr = 0x1A
let op_call = 0x1B
let op_ret = 0x1C
let op_push = 0x1D
let op_pop = 0x1E
let op_in = 0x1F
let op_ini = 0x20
let op_out = 0x21
let op_outi = 0x22
let op_int = 0x23
let op_iret = 0x24
let op_sti = 0x25
let op_cli = 0x26
let op_liht = 0x27
let op_lptb = 0x28
let op_lstk = 0x29
let op_tlbflush = 0x2A
let op_copy = 0x2B
let op_csum = 0x2C
let op_rdtsc = 0x2D
let op_vmcall = 0x2E
let op_brk = 0x2F

let fields = function
  | Nop -> (op_nop, 0, 0, 0, 0)
  | Hlt -> (op_hlt, 0, 0, 0, 0)
  | Movi (rd, imm) -> (op_movi, rd, 0, 0, imm)
  | Mov (rd, rs) -> (op_mov, rd, rs, 0, 0)
  | Add (rd, rs1, rs2) -> (op_add, rd, rs1, rs2, 0)
  | Addi (rd, rs1, imm) -> (op_addi, rd, rs1, 0, imm)
  | Sub (rd, rs1, rs2) -> (op_sub, rd, rs1, rs2, 0)
  | And_ (rd, rs1, rs2) -> (op_and, rd, rs1, rs2, 0)
  | Or_ (rd, rs1, rs2) -> (op_or, rd, rs1, rs2, 0)
  | Xor_ (rd, rs1, rs2) -> (op_xor, rd, rs1, rs2, 0)
  | Shl (rd, rs1, rs2) -> (op_shl, rd, rs1, rs2, 0)
  | Shr (rd, rs1, rs2) -> (op_shr, rd, rs1, rs2, 0)
  | Mul (rd, rs1, rs2) -> (op_mul, rd, rs1, rs2, 0)
  | Cmp (rs1, rs2) -> (op_cmp, 0, rs1, rs2, 0)
  | Cmpi (rs1, imm) -> (op_cmpi, 0, rs1, 0, imm)
  | Ld (rd, base, imm) -> (op_ld, rd, base, 0, imm)
  | St (base, imm, src) -> (op_st, 0, base, src, imm)
  | Ldb (rd, base, imm) -> (op_ldb, rd, base, 0, imm)
  | Stb (base, imm, src) -> (op_stb, 0, base, src, imm)
  | Jmp imm -> (op_jmp, 0, 0, 0, imm)
  | Jz imm -> (op_jz, 0, 0, 0, imm)
  | Jnz imm -> (op_jnz, 0, 0, 0, imm)
  | Jlt imm -> (op_jlt, 0, 0, 0, imm)
  | Jge imm -> (op_jge, 0, 0, 0, imm)
  | Jb imm -> (op_jb, 0, 0, 0, imm)
  | Jae imm -> (op_jae, 0, 0, 0, imm)
  | Jr rs -> (op_jr, 0, rs, 0, 0)
  | Call imm -> (op_call, 0, 0, 0, imm)
  | Ret -> (op_ret, 0, 0, 0, 0)
  | Push rs -> (op_push, 0, rs, 0, 0)
  | Pop rd -> (op_pop, rd, 0, 0, 0)
  | In_ (rd, rs) -> (op_in, rd, rs, 0, 0)
  | Ini (rd, imm) -> (op_ini, rd, 0, 0, imm)
  | Out (rs1, rs2) -> (op_out, 0, rs1, rs2, 0)
  | Outi (imm, rs) -> (op_outi, 0, rs, 0, imm)
  | Int_ vec -> (op_int, 0, 0, 0, vec)
  | Iret -> (op_iret, 0, 0, 0, 0)
  | Sti -> (op_sti, 0, 0, 0, 0)
  | Cli -> (op_cli, 0, 0, 0, 0)
  | Liht rs -> (op_liht, 0, rs, 0, 0)
  | Lptb rs -> (op_lptb, 0, rs, 0, 0)
  | Lstk (ring, rs) -> (op_lstk, ring, rs, 0, 0)
  | Tlbflush -> (op_tlbflush, 0, 0, 0, 0)
  | Copy (rd, rs1, rs2) -> (op_copy, rd, rs1, rs2, 0)
  | Csum (rd, rs1, rs2) -> (op_csum, rd, rs1, rs2, 0)
  | Rdtsc rd -> (op_rdtsc, rd, 0, 0, 0)
  | Vmcall imm -> (op_vmcall, 0, 0, 0, imm)
  | Brk -> (op_brk, 0, 0, 0, 0)

let encode i =
  let opcode, a, b, c, imm = fields i in
  let buf = Bytes.make width '\000' in
  Bytes.set buf 0 (Char.chr opcode);
  Bytes.set buf 1 (Char.chr (((a land 0xF) lsl 4) lor (b land 0xF)));
  Bytes.set buf 2 (Char.chr (c land 0xF));
  Bytes.set buf 4 (Char.chr (imm land 0xFF));
  Bytes.set buf 5 (Char.chr ((imm lsr 8) land 0xFF));
  Bytes.set buf 6 (Char.chr ((imm lsr 16) land 0xFF));
  Bytes.set buf 7 (Char.chr ((imm lsr 24) land 0xFF));
  buf

let decode_fields ~addr ~opcode ~a ~bb ~c ~imm =
  match opcode with
  | o when o = op_nop -> Nop
  | o when o = op_hlt -> Hlt
  | o when o = op_movi -> Movi (a, imm)
  | o when o = op_mov -> Mov (a, bb)
  | o when o = op_add -> Add (a, bb, c)
  | o when o = op_addi -> Addi (a, bb, imm)
  | o when o = op_sub -> Sub (a, bb, c)
  | o when o = op_and -> And_ (a, bb, c)
  | o when o = op_or -> Or_ (a, bb, c)
  | o when o = op_xor -> Xor_ (a, bb, c)
  | o when o = op_shl -> Shl (a, bb, c)
  | o when o = op_shr -> Shr (a, bb, c)
  | o when o = op_mul -> Mul (a, bb, c)
  | o when o = op_cmp -> Cmp (bb, c)
  | o when o = op_cmpi -> Cmpi (bb, imm)
  | o when o = op_ld -> Ld (a, bb, imm)
  | o when o = op_st -> St (bb, imm, c)
  | o when o = op_ldb -> Ldb (a, bb, imm)
  | o when o = op_stb -> Stb (bb, imm, c)
  | o when o = op_jmp -> Jmp imm
  | o when o = op_jz -> Jz imm
  | o when o = op_jnz -> Jnz imm
  | o when o = op_jlt -> Jlt imm
  | o when o = op_jge -> Jge imm
  | o when o = op_jb -> Jb imm
  | o when o = op_jae -> Jae imm
  | o when o = op_jr -> Jr bb
  | o when o = op_call -> Call imm
  | o when o = op_ret -> Ret
  | o when o = op_push -> Push bb
  | o when o = op_pop -> Pop a
  | o when o = op_in -> In_ (a, bb)
  | o when o = op_ini -> Ini (a, imm)
  | o when o = op_out -> Out (bb, c)
  | o when o = op_outi -> Outi (imm, bb)
  | o when o = op_int -> Int_ (imm land 0x3F)
  | o when o = op_iret -> Iret
  | o when o = op_sti -> Sti
  | o when o = op_cli -> Cli
  | o when o = op_liht -> Liht bb
  | o when o = op_lptb -> Lptb bb
  | o when o = op_lstk -> Lstk (a, bb)
  | o when o = op_tlbflush -> Tlbflush
  | o when o = op_copy -> Copy (a, bb, c)
  | o when o = op_csum -> Csum (a, bb, c)
  | o when o = op_rdtsc -> Rdtsc a
  | o when o = op_vmcall -> Vmcall imm
  | o when o = op_brk -> Brk
  | opcode -> raise (Decode_error { addr; opcode })

let decode ~addr b ~off =
  let opcode = Char.code (Bytes.get b off) in
  let ab = Char.code (Bytes.get b (off + 1)) in
  let a = ab lsr 4 and bb = ab land 0xF in
  let c = Char.code (Bytes.get b (off + 2)) land 0xF in
  let imm =
    Char.code (Bytes.get b (off + 4))
    lor (Char.code (Bytes.get b (off + 5)) lsl 8)
    lor (Char.code (Bytes.get b (off + 6)) lsl 16)
    lor (Char.code (Bytes.get b (off + 7)) lsl 24)
  in
  decode_fields ~addr ~opcode ~a ~bb ~c ~imm

(* Decode from two aligned word reads — no intermediate buffer, so the
   fetch path allocates nothing beyond the [instr] value itself. *)
let read mem addr =
  let lo = Phys_mem.read_u32 mem addr in
  let imm = Phys_mem.read_u32 mem (addr + 4) in
  let ab = (lo lsr 8) land 0xFF in
  decode_fields ~addr ~opcode:(lo land 0xFF) ~a:(ab lsr 4) ~bb:(ab land 0xF)
    ~c:((lo lsr 16) land 0xF) ~imm

let write mem addr i = Phys_mem.load_bytes mem ~addr (encode i)

let r n = Printf.sprintf "r%d" n

let to_string = function
  | Nop -> "nop"
  | Hlt -> "hlt"
  | Movi (rd, imm) -> Printf.sprintf "movi %s, 0x%x" (r rd) imm
  | Mov (rd, rs) -> Printf.sprintf "mov %s, %s" (r rd) (r rs)
  | Add (rd, a, b) -> Printf.sprintf "add %s, %s, %s" (r rd) (r a) (r b)
  | Addi (rd, a, imm) -> Printf.sprintf "addi %s, %s, 0x%x" (r rd) (r a) imm
  | Sub (rd, a, b) -> Printf.sprintf "sub %s, %s, %s" (r rd) (r a) (r b)
  | And_ (rd, a, b) -> Printf.sprintf "and %s, %s, %s" (r rd) (r a) (r b)
  | Or_ (rd, a, b) -> Printf.sprintf "or %s, %s, %s" (r rd) (r a) (r b)
  | Xor_ (rd, a, b) -> Printf.sprintf "xor %s, %s, %s" (r rd) (r a) (r b)
  | Shl (rd, a, b) -> Printf.sprintf "shl %s, %s, %s" (r rd) (r a) (r b)
  | Shr (rd, a, b) -> Printf.sprintf "shr %s, %s, %s" (r rd) (r a) (r b)
  | Mul (rd, a, b) -> Printf.sprintf "mul %s, %s, %s" (r rd) (r a) (r b)
  | Cmp (a, b) -> Printf.sprintf "cmp %s, %s" (r a) (r b)
  | Cmpi (a, imm) -> Printf.sprintf "cmpi %s, 0x%x" (r a) imm
  | Ld (rd, base, imm) -> Printf.sprintf "ld %s, [%s+0x%x]" (r rd) (r base) imm
  | St (base, imm, src) -> Printf.sprintf "st [%s+0x%x], %s" (r base) imm (r src)
  | Ldb (rd, base, imm) -> Printf.sprintf "ldb %s, [%s+0x%x]" (r rd) (r base) imm
  | Stb (base, imm, src) ->
    Printf.sprintf "stb [%s+0x%x], %s" (r base) imm (r src)
  | Jmp imm -> Printf.sprintf "jmp 0x%x" imm
  | Jz imm -> Printf.sprintf "jz 0x%x" imm
  | Jnz imm -> Printf.sprintf "jnz 0x%x" imm
  | Jlt imm -> Printf.sprintf "jlt 0x%x" imm
  | Jge imm -> Printf.sprintf "jge 0x%x" imm
  | Jb imm -> Printf.sprintf "jb 0x%x" imm
  | Jae imm -> Printf.sprintf "jae 0x%x" imm
  | Jr rs -> Printf.sprintf "jr %s" (r rs)
  | Call imm -> Printf.sprintf "call 0x%x" imm
  | Ret -> "ret"
  | Push rs -> Printf.sprintf "push %s" (r rs)
  | Pop rd -> Printf.sprintf "pop %s" (r rd)
  | In_ (rd, rs) -> Printf.sprintf "in %s, (%s)" (r rd) (r rs)
  | Ini (rd, imm) -> Printf.sprintf "in %s, 0x%x" (r rd) imm
  | Out (p, v) -> Printf.sprintf "out (%s), %s" (r p) (r v)
  | Outi (imm, v) -> Printf.sprintf "out 0x%x, %s" imm (r v)
  | Int_ vec -> Printf.sprintf "int %d" vec
  | Iret -> "iret"
  | Sti -> "sti"
  | Cli -> "cli"
  | Liht rs -> Printf.sprintf "liht %s" (r rs)
  | Lptb rs -> Printf.sprintf "lptb %s" (r rs)
  | Lstk (ring, rs) -> Printf.sprintf "lstk %d, %s" ring (r rs)
  | Tlbflush -> "tlbflush"
  | Copy (d, s, n) -> Printf.sprintf "copy %s, %s, %s" (r d) (r s) (r n)
  | Csum (rd, a, n) -> Printf.sprintf "csum %s, %s, %s" (r rd) (r a) (r n)
  | Rdtsc rd -> Printf.sprintf "rdtsc %s" (r rd)
  | Vmcall imm -> Printf.sprintf "vmcall 0x%x" imm
  | Brk -> "brk"

let is_privileged = function
  | Hlt | Iret | Sti | Cli | Liht _ | Lptb _ | Lstk _ | Tlbflush -> true
  | Nop | Movi _ | Mov _ | Add _ | Addi _ | Sub _ | And_ _ | Or_ _ | Xor_ _
  | Shl _ | Shr _ | Mul _ | Cmp _ | Cmpi _ | Ld _ | St _ | Ldb _ | Stb _
  | Jmp _ | Jz _ | Jnz _ | Jlt _ | Jge _ | Jb _ | Jae _ | Jr _ | Call _ | Ret
  | Push _ | Pop _ | In_ _ | Ini _ | Out _ | Outi _ | Int_ _ | Copy _ | Csum _
  | Rdtsc _ | Vmcall _ | Brk ->
    false

let base_cycles (c : Costs.t) = function
  | Ld _ | St _ | Ldb _ | Stb _ | Push _ | Pop _ ->
    c.base_instr + c.mem_access
  | Call _ | Ret -> c.base_instr + c.mem_access
  | Mul _ -> c.base_instr + c.mul_extra
  | Iret -> c.iret_cost
  | Nop | Hlt | Movi _ | Mov _ | Add _ | Addi _ | Sub _ | And_ _ | Or_ _
  | Xor_ _ | Shl _ | Shr _ | Cmp _ | Cmpi _ | Jmp _ | Jz _ | Jnz _ | Jlt _
  | Jge _ | Jb _ | Jae _ | Jr _ | In_ _ | Ini _ | Out _ | Outi _ | Int_ _
  | Sti | Cli | Liht _ | Lptb _ | Lstk _ | Tlbflush | Copy _ | Csum _
  | Rdtsc _ | Vmcall _ | Brk ->
    c.base_instr

(* Control-flow shape, shared by the static verifier's CFG recovery
   (lib/analysis.Cfg) and the CPU's block translator: both need the same
   leader/terminator classification, and keeping it next to the decoder
   means a new instruction cannot be added without deciding its shape. *)
type flow =
  | Fallthrough
  | Jump of Word.t
  | Branch of Word.t
  | Call_to of Word.t
  | Indirect
  | Return
  | Int_return
  | Terminal

let flow_of = function
  | Jmp t -> Jump t
  | Jz t | Jnz t | Jlt t | Jge t | Jb t | Jae t -> Branch t
  | Call t -> Call_to t
  | Jr _ -> Indirect
  | Ret -> Return
  | Iret -> Int_return
  | Brk -> Terminal
  | Nop | Hlt | Movi _ | Mov _ | Add _ | Addi _ | Sub _ | And_ _ | Or_ _
  | Xor_ _ | Shl _ | Shr _ | Mul _ | Cmp _ | Cmpi _ | Ld _ | St _ | Ldb _
  | Stb _ | Push _ | Pop _ | In_ _ | Ini _ | Out _ | Outi _ | Int_ _ | Sti
  | Cli | Liht _ | Lptb _ | Lstk _ | Tlbflush | Copy _ | Csum _ | Rdtsc _
  | Vmcall _ ->
    Fallthrough

let vec_debug_step = 1
let vec_breakpoint = 3
let vec_undefined = 6
let vec_machine_check = 8
let vec_protection = 13
let vec_page_fault = 14
let vec_irq_base_default = 32
