module Engine = Vmm_sim.Engine
module Stats = Vmm_sim.Stats
module Trace = Vmm_sim.Trace
module Registry = Vmm_obs.Registry
module Tracer = Vmm_obs.Tracer
module Recorder = Vmm_replay.Recorder
module Profiler = Vmm_profile.Profiler
module Flight = Vmm_profile.Flight

module Ports = struct
  let pic = 0x20
  let pit = 0x40
  let uart = 0x3F8
  let scsi = 0x1C0
  let nic = 0x2C0
end

module Irq = struct
  let timer = 0
  let uart = 4
  let nic = 5
  let scsi = 6
end

type t = {
  engine : Engine.t;
  mem : Phys_mem.t;
  bus : Io_bus.t;
  cpu : Cpu.t;
  pic : Pic.t;
  pit : Pit.t;
  uart : Uart.t;
  scsi : Scsi.t;
  nic : Nic.t;
  costs : Costs.t;
  trace : Trace.t;
  load : Stats.load;
  registry : Registry.t;
  tracer : Tracer.t;
  recorder : Recorder.t;
  profiler : Profiler.t;
  flight : Flight.t;
  mutable jit_counters_mark : int;
      (* sum of the CPU's block-cache counters at the last Perfetto
         counter-track emission; counters only grow, so an unchanged sum
         means nothing to emit *)
}

let default_mem_size = 16 * 1024 * 1024

let create ?(mem_size = default_mem_size) ?(costs = Costs.default) () =
  let engine = Engine.create () in
  let mem = Phys_mem.create ~size:mem_size in
  let bus = Io_bus.create () in
  let load = Stats.load () in
  let cpu = Cpu.create ~mem ~bus ~engine ~costs ~load () in
  (* LWVMM_JIT=0 forces the per-instruction interpreter; anything else
     (including unset) leaves the block translator on.  Reading it here
     means run, record and replay all honor the knob the way the CLI
     driver honors LWVMM_PROFILE — and since the translator never changes
     guest-visible state, a trace recorded in either mode replays in
     either mode. *)
  (match Sys.getenv_opt "LWVMM_JIT" with
   | Some "0" -> Cpu.set_jit_enabled cpu false
   | Some _ | None -> ());
  let recorder = Recorder.create () in
  (* Record/replay taps: every nondeterministic event at the machine
     boundary reports to the recorder (a no-op until a recording or
     replay starts).  Device-internal scheduling is deterministic; what
     gets logged is the points where timing meets the instruction
     stream — IRQ raises from timer/DMA expiry — plus host-driven
     ingress (UART bytes, NIC frames). *)
  let flight = Flight.create () in
  (* Every nondeterministic event also lands in the always-on flight
     ring (one ring write plus rendering the short detail string), so a
     crash dump shows the last moments even when nothing was recording. *)
  let emit source payload =
    let cycle = Engine.now engine in
    Recorder.emit recorder ~cycle ~source payload;
    Flight.note flight ~cycle ~kind:source
      (Format.asprintf "%a" Vmm_replay.Event.pp_payload payload)
  in
  let pic = Pic.create () in
  Pic.attach pic bus ~base:Ports.pic;
  Cpu.set_pic cpu ~ack:(fun () -> Pic.ack pic) ~pending:(fun () -> Pic.pending pic);
  let pit_fires = ref 0 in
  let pit =
    Pit.create ~engine ~costs
      ~raise_irq:(fun () ->
        incr pit_fires;
        emit "pit" (Vmm_replay.Event.Timer_fire { count = !pit_fires });
        Pic.raise_irq pic Irq.timer)
      ()
  in
  Pit.attach pit bus ~base:Ports.pit;
  let uart = Uart.create ~engine ~costs () in
  Uart.set_irq uart (fun () -> Pic.raise_irq pic Irq.uart);
  Uart.set_rx_tap uart (fun byte ->
      emit "uart.rx" (Vmm_replay.Event.Uart_rx { byte }));
  Uart.attach uart bus ~base:Ports.uart;
  let scsi = Scsi.create ~engine ~costs ~mem ~targets:3 () in
  let scsi_seq = ref 0 in
  Scsi.set_irq scsi (fun () ->
      incr scsi_seq;
      emit "scsi.irq"
        (Vmm_replay.Event.Dma_complete { chan = "scsi"; seq = !scsi_seq });
      Pic.raise_irq pic Irq.scsi);
  Scsi.attach scsi bus ~base:Ports.scsi;
  let nic = Nic.create ~engine ~costs ~mem () in
  let nic_seq = ref 0 in
  Nic.set_irq nic (fun () ->
      incr nic_seq;
      emit "nic.irq"
        (Vmm_replay.Event.Dma_complete { chan = "nic"; seq = !nic_seq });
      Pic.raise_irq pic Irq.nic);
  Nic.set_rx_tap nic (fun frame ->
      emit "nic.rx" (Vmm_replay.Event.Nic_rx { len = Bytes.length frame }));
  Nic.attach nic bus ~base:Ports.nic;
  let trace = Trace.create ~capacity:4096 () in
  let registry = Registry.create () in
  let tracer = Tracer.create ~engine () in
  let profiler = Profiler.create ~engine () in
  Nic.set_tracer nic tracer;
  Scsi.set_tracer scsi tracer;
  (* Device metrics (subsystem_name_unit); monitor/link metrics join the
     same registry when a monitor is installed. *)
  Pic.set_latency_probe pic
    ~now:(fun () -> Engine.now engine)
    ~observe:
      (let h =
         Registry.histogram registry "pic_delivery_latency_cycles"
           ~buckets:64 ~width:2000.0
       in
       Stats.observe h);
  Registry.int_gauge registry "pic_irqs_raised_total" (fun () -> Pic.raises pic);
  Registry.int_gauge registry "pic_irqs_acked_total" (fun () -> Pic.acks pic);
  Registry.int_gauge registry "pit_ticks_total" (fun () -> Pit.ticks_fired pit);
  Registry.int_gauge registry "nic_frames_sent_total" (fun () ->
      Nic.frames_sent nic);
  Registry.gauge registry "nic_bytes_sent_bytes" (fun () ->
      Int64.to_float (Nic.bytes_sent nic));
  Registry.int_gauge registry "nic_tx_queued_frames" (fun () ->
      Nic.tx_queued nic);
  Registry.int_gauge registry "nic_tx_stalls_total" (fun () ->
      Nic.tx_stalls nic);
  Registry.gauge registry "nic_tx_stall_cycles_total" (fun () ->
      Int64.to_float (Nic.stall_cycles nic));
  Registry.int_gauge registry "nic_tx_overflows_total" (fun () ->
      Nic.overflows nic);
  Registry.int_gauge registry "scsi_reads_completed_total" (fun () ->
      Scsi.reads_completed scsi);
  Registry.int_gauge registry "scsi_writes_completed_total" (fun () ->
      Scsi.writes_completed scsi);
  Registry.gauge registry "scsi_bytes_read_bytes" (fun () ->
      Int64.to_float (Scsi.bytes_read scsi));
  Registry.int_gauge registry "scsi_read_errors_total" (fun () ->
      Scsi.read_errors scsi);
  Registry.int_gauge registry "scsi_busy_targets" (fun () ->
      Scsi.busy_targets scsi);
  Registry.int_gauge registry "cpu_icache_hits_total" (fun () ->
      Cpu.icache_hits cpu);
  Registry.int_gauge registry "cpu_icache_misses_total" (fun () ->
      Cpu.icache_misses cpu);
  Registry.int_gauge registry "cpu_icache_invalidations_total" (fun () ->
      Cpu.icache_invalidations cpu);
  Registry.int_gauge registry "cpu_block_compiled_total"
    ~help:"basic blocks compiled by the threaded-code translator" (fun () ->
      Cpu.blocks_compiled cpu);
  Registry.int_gauge registry "cpu_block_hits_total"
    ~help:"block-cache dispatches that revalidated a compiled block"
    (fun () -> Cpu.block_hits cpu);
  Registry.int_gauge registry "cpu_block_invalidations_total"
    ~help:"compiled blocks dropped by generation/flush revalidation"
    (fun () -> Cpu.block_invalidations cpu);
  Registry.int_gauge registry "cpu_block_chain_follows_total"
    ~help:"superblock chain follows across taken transfers" (fun () ->
      Cpu.block_chain_follows cpu);
  Registry.int_gauge registry "cpu_block_interp_fallbacks_total"
    ~help:"translator dispatches that fell back to one interpreter step"
    (fun () -> Cpu.block_fallbacks cpu);
  Registry.gauge registry "cpu_busy_cycles_total" (fun () ->
      Int64.to_float (Stats.busy_cycles load));
  Registry.gauge registry "sim_now_cycles" (fun () ->
      Int64.to_float (Engine.now engine));
  Registry.int_gauge registry "profiler_samples_total"
    ~help:"pc samples taken by the continuous profiler" (fun () ->
      Profiler.total_samples profiler);
  Registry.gauge registry "profiler_period_cycles"
    ~help:"profiler sampling period in guest cycles (0 = off)" (fun () ->
      Int64.to_float (Profiler.period profiler));
  Registry.int_gauge registry "flight_events_total"
    ~help:"events ever written to the flight ring" (fun () ->
      Flight.total flight);
  Registry.int_gauge registry "flight_events_dropped_total"
    ~help:"flight-ring entries overwritten by wrap" (fun () ->
      Flight.dropped flight);
  {
    engine;
    mem;
    bus;
    cpu;
    pic;
    pit;
    uart;
    scsi;
    nic;
    costs;
    trace;
    load;
    registry;
    tracer;
    recorder;
    profiler;
    flight;
    jit_counters_mark = 0;
  }

let cpu t = t.cpu
let mem t = t.mem
let bus t = t.bus
let engine t = t.engine
let costs t = t.costs
let pic t = t.pic
let pit t = t.pit
let uart t = t.uart
let scsi t = t.scsi
let nic t = t.nic
let trace t = t.trace
let load t = t.load
let registry t = t.registry
let tracer t = t.tracer
let recorder t = t.recorder
let profiler t = t.profiler
let flight t = t.flight

(* Arm (period > 0) or disarm (period = 0) continuous pc sampling: the
   CPU's dispatch-loop cadence feeds the machine's profiler, attributing
   each sample to the load accumulator's current category (guest,
   mon_*, irq, stub, ...). *)
let set_profiling t ~period =
  Profiler.set_period t.profiler period;
  Cpu.set_sampling t.cpu ~period
    ~hook:(fun ~pc ~cpl ->
      Profiler.sample t.profiler ~pc ~ring:cpl ~cat:(Stats.category t.load))

let now t = Engine.now t.engine

let utilization t ~since ~since_busy =
  let elapsed = Int64.sub (now t) since in
  let busy = Int64.sub (Stats.busy_cycles t.load) since_busy in
  if Int64.compare elapsed 0L <= 0 then 0.0
  else
    let u = Int64.to_float busy /. Int64.to_float elapsed in
    if u < 0.0 then 0.0 else if u > 1.0 then 1.0 else u

let idle t = Cpu.halted t.cpu || Cpu.stopped t.cpu

(* Perfetto counter tracks for the block cache, sampled at batch
   granularity from the dispatcher (never from inside a chain, so the
   tracer stays invisible to guest timing).  Emitted only when armed and
   only when some counter moved — the counters are monotone, so an
   unchanged sum means an unchanged tuple. *)
let emit_block_counters t =
  if Tracer.enabled t.tracer then begin
    let compiled = Cpu.blocks_compiled t.cpu in
    let hits = Cpu.block_hits t.cpu in
    let inval = Cpu.block_invalidations t.cpu in
    let chains = Cpu.block_chain_follows t.cpu in
    let fallbacks = Cpu.block_fallbacks t.cpu in
    let mark = compiled + hits + inval + chains + fallbacks in
    if mark <> t.jit_counters_mark then begin
      t.jit_counters_mark <- mark;
      let c name v =
        Tracer.counter t.tracer ~cat:"jit" name (float_of_int v)
      in
      c "cpu_block_compiled" compiled;
      c "cpu_block_hits" hits;
      c "cpu_block_invalidations" inval;
      c "cpu_block_chain_follows" chains;
      c "cpu_block_interp_fallbacks" fallbacks
    end
  end

let run_until t ~time =
  while Int64.compare (Engine.now t.engine) time < 0 do
    ignore (Engine.dispatch_due t.engine);
    Cpu.poll_interrupts t.cpu;
    if idle t then begin
      (* Skip idle time to the next device event (or the horizon). *)
      match Engine.next_event_time t.engine with
      | Some te ->
        let target = if Int64.compare te time > 0 then time else te in
        Engine.run_until t.engine ~time:target
      | None -> Engine.run_until t.engine ~time
    end
    else begin
      (* Event-horizon batch: nothing can fire before the next scheduled
         event, so step in a tight loop up to it (or to [time]); the wake
         generation snaps the batch shut if an instruction schedules
         something new (device kick, monitor timer). *)
      let horizon =
        match Engine.next_event_time t.engine with
        | Some te when Int64.compare te time < 0 -> te
        | Some _ | None -> time
      in
      Cpu.run_batch t.cpu ~horizon ~wake:(Engine.wake_generation t.engine);
      emit_block_counters t
    end
  done

let run_for t ~cycles = run_until t ~time:(Int64.add (now t) cycles)

let run_seconds t s = run_for t ~cycles:(Costs.cycles_of_seconds t.costs s)

let run_steps t n =
  let retired = ref 0 in
  let stuck = ref false in
  while !retired < n && not !stuck do
    ignore (Engine.dispatch_due t.engine);
    Cpu.poll_interrupts t.cpu;
    if idle t then begin
      match Engine.next_event_time t.engine with
      | Some te -> Engine.run_until t.engine ~time:te
      | None -> stuck := true
    end
    else begin
      Cpu.step t.cpu;
      incr retired
    end
  done;
  !retired

let run_until_halted ?(limit = 1_000_000) t =
  let steps = ref 0 in
  let halted = ref (Cpu.halted t.cpu) in
  while (not !halted) && !steps < limit do
    ignore (Engine.dispatch_due t.engine);
    Cpu.poll_interrupts t.cpu;
    if Cpu.halted t.cpu then halted := true
    else if Cpu.stopped t.cpu then begin
      match Engine.next_event_time t.engine with
      | Some te -> Engine.run_until t.engine ~time:te
      | None -> steps := limit
    end
    else begin
      Cpu.step t.cpu;
      incr steps;
      if Cpu.halted t.cpu then halted := true
    end
  done;
  !halted

let load_program t program = Asm.load program t.mem

let boot t program ~entry =
  load_program t program;
  Cpu.set_pc t.cpu entry;
  Cpu.set_halted t.cpu false;
  Cpu.set_stopped t.cpu false
