(** A complete PC/AT-like target machine: CPU, memory, interrupt
    controller, timer, serial port, a three-target SCSI controller and a
    gigabit NIC, all sharing one simulation engine.

    The run loop interleaves instruction execution with device events and
    keeps the busy/idle accounting the CPU-load experiments rely on:
    instruction and emulation cycles are busy; time skipped while the CPU
    is halted (or stopped by the debugger) is idle. *)

(** Fixed port assignments, mirroring a PC/AT layout. *)
module Ports : sig
  val pic : int
  val pit : int
  val uart : int
  val scsi : int
  val nic : int
end

(** IRQ line assignments. *)
module Irq : sig
  val timer : int
  val uart : int
  val nic : int
  val scsi : int
end

type t

(** [create ?mem_size ?costs ()] builds and wires a machine.  Default
    memory is 16 MiB; the CPU starts at pc 0, ring 0, paging off,
    interrupts off. *)
val create : ?mem_size:int -> ?costs:Costs.t -> unit -> t

val cpu : t -> Cpu.t
val mem : t -> Phys_mem.t
val bus : t -> Io_bus.t
val engine : t -> Vmm_sim.Engine.t
val costs : t -> Costs.t
val pic : t -> Pic.t
val pit : t -> Pit.t
val uart : t -> Uart.t
val scsi : t -> Scsi.t
val nic : t -> Nic.t
val trace : t -> Vmm_sim.Trace.t
val load : t -> Vmm_sim.Stats.load

(** [registry t] — the machine-wide metrics registry.  Devices register
    their gauges at construction; the monitor, debug stub and host
    debugger add theirs on attach.  Dump with {!Vmm_obs.Registry.dump}. *)
val registry : t -> Vmm_obs.Registry.t

(** [tracer t] — the machine-wide span tracer (disabled until
    {!Vmm_obs.Tracer.set_enabled}); devices emit DMA spans into it and
    the monitor adds trap/interrupt/stub spans. *)
val tracer : t -> Vmm_obs.Tracer.t

(** [recorder t] — the machine-wide record/replay hub (off by default).
    Device taps report timer fires, DMA completion IRQs and UART/NIC
    ingress to it; the monitor adds virtual-IRQ, crash, wedge and
    checkpoint events.  Start a recording or replay through
    {!Vmm_replay.Recorder}. *)
val recorder : t -> Vmm_replay.Recorder.t

(** [profiler t] — the machine's continuous pc-sampling profiler
    (disabled until {!set_profiling}).  One per machine, like the
    registry and tracer, so fleets of instances never share state. *)
val profiler : t -> Vmm_profile.Profiler.t

(** [flight t] — the machine's always-on flight recorder.  Device taps
    write every nondeterministic boundary event (timer fires, DMA
    completion IRQs, UART/NIC ingress) into it regardless of recorder
    state; the monitor adds traps, IRQ deliveries, watchdog/chaos
    verdicts and lifecycle transitions. *)
val flight : t -> Vmm_profile.Flight.t

(** [set_profiling t ~period] arms ([period > 0]) or disarms
    ([period = 0]) continuous pc sampling at one sample every [period]
    guest cycles.  Samples attribute to the current cycle category and
    the guest's privilege ring.  Sampling never perturbs guest-visible
    behaviour (see {!Cpu.set_sampling}). *)
val set_profiling : t -> period:int64 -> unit

(** [now t] — current simulation time in cycles. *)
val now : t -> int64

(** [utilization t ~since] — busy fraction over [\[since, now\]] given the
    busy-cycle snapshot [since_busy] taken at [since]. *)
val utilization : t -> since:int64 -> since_busy:int64 -> float

(** [run_until t ~time] advances the simulation to an absolute cycle
    count. *)
val run_until : t -> time:int64 -> unit

(** [run_for t ~cycles] advances by a relative amount. *)
val run_for : t -> cycles:int64 -> unit

(** [run_seconds t s] advances by wall time at the machine's clock rate. *)
val run_seconds : t -> float -> unit

(** [run_steps t n] retires up to [n] instructions (skipping over idle
    gaps); stops early when the machine is idle with no pending events.
    Returns instructions actually retired. *)
val run_steps : t -> int -> int

(** [run_until_halted ?limit t] runs until the CPU halts (useful for batch
    test programs that end in HLT with interrupts off); [limit] bounds the
    instruction count (default 1_000_000).  Returns [true] when the halt
    was reached. *)
val run_until_halted : ?limit:int -> t -> bool

(** [load_program t program] copies an assembled image into memory. *)
val load_program : t -> Asm.program -> unit

(** [boot t program ~entry] loads the image, points pc at [entry] and
    clears halt state. *)
val boot : t -> Asm.program -> entry:int -> unit
