(** Gigabit Ethernet controller.

    Transmit-side model: the driver points the NIC at a frame in physical
    memory and issues a send; the NIC DMAs the frame, serializes it at the
    wire rate ({!Costs.t.nic_gbps}) and raises a completion interrupt (PIC
    line 5).  Up to {!tx_ring_slots} frames may be queued; a send into a
    full ring sets the overflow flag and is dropped (like a driver bug
    would on real hardware).  Transmitted frames are handed to the host
    harness via {!set_on_frame} for validation and rate measurement.

    A minimal receive path exists for completeness: the harness calls
    {!inject_rx}; the driver reads RX_LEN, points RX_ADDR at a buffer and
    issues command 2 to DMA the frame in.

    Port map (offsets):
    - +0 TX frame physical address (write)
    - +1 TX frame length in bytes (write)
    - +2 command (write): 1 = send, 2 = receive-into-buffer, 3 = TX-ring
      reset (drop queued frames and pending completions, clear overflow;
      the wire itself — including an armed stall — is untouched)
    - +3 status (read): bit 0 ring full, bit 1 completions pending,
      bit 2 overflow happened, bit 3 rx frame waiting
    - +4 acknowledge (write): 1 = consume one tx completion, 2 = clear
      overflow
    - +5 frames transmitted, total (read)
    - +6 RX buffer physical address (write)
    - +7 length of the waiting rx frame (read; 0 = none) *)

type t

val tx_ring_slots : int
val mtu : int

val create :
  engine:Vmm_sim.Engine.t -> costs:Costs.t -> mem:Phys_mem.t -> unit -> t

val set_irq : t -> (unit -> unit) -> unit

(** [set_on_frame t f] — [f frame] runs when a frame finishes on the wire.
    Registering a consumer costs a per-frame copy (consumers may retain
    the frame); detach with {!clear_on_frame} to get the copy-free path
    back. *)
val set_on_frame : t -> (bytes -> unit) -> unit

(** [clear_on_frame t] detaches the consumer, so completions stop paying
    the per-frame copy that {!set_on_frame} enables. *)
val clear_on_frame : t -> unit

(** [set_tracer t tracer] — emit a ["dma"]-category span per transmitted
    frame covering its wire serialization window. *)
val set_tracer : t -> Vmm_obs.Tracer.t -> unit

(** [inject_rx t frame] queues an inbound frame and raises the IRQ. *)
val inject_rx : t -> bytes -> unit

(** [set_rx_tap t f] — [f frame] runs on every {!inject_rx}, before the
    frame queues.  The machine's record/replay taps use this to log
    network ingress, one of the nondeterministic inputs. *)
val set_rx_tap : t -> (bytes -> unit) -> unit

val io_read : t -> int -> int
val io_write : t -> int -> int -> unit
val attach : t -> Io_bus.t -> base:int -> unit

val frames_sent : t -> int
val bytes_sent : t -> int64
val overflows : t -> int

(** [tx_queued t] — frames in the ring not yet off the wire (queue-depth
    gauge). *)
val tx_queued : t -> int

(** {2 Fault injection} *)

(** [stall_tx t ~cycles] — the wire refuses to serialize for [cycles];
    frames submitted meanwhile queue behind the stall (and overflow the
    ring if the driver keeps pushing). *)
val stall_tx : t -> cycles:int64 -> unit

val tx_stalls : t -> int

(** [stall_cycles t] — cumulative wire time added by {!stall_tx} beyond
    serialization that was already queued. *)
val stall_cycles : t -> int64

(** [tx_ring_resets t] — driver-issued TX-ring resets (command 3). *)
val tx_ring_resets : t -> int

(** [reset t] returns the controller to power-on state for a warm
    restart: queued frames and pending completions are dropped, DMA/RX
    registers clear, waiting inbound frames discarded.  An armed wire
    stall and the cumulative counters are preserved. *)
val reset : t -> unit

(** {2 Checkpoint support}

    Captures registers, pending completions, the receive queue and the
    in-flight TX frames with {e relative} wire/completion offsets, so a
    restore at any later absolute time re-arms the same serialization
    schedule.  Restore abandons whatever was in flight (epoch guard),
    then reinstates the captured state. *)

type tx_op_state = {
  xs_data : Bytes.t;
  xs_remaining : int64;  (** cycles until completion, relative to capture *)
}

type state = {
  n_tx_addr : int;
  n_tx_len : int;
  n_completions : int;
  n_overflow : bool;
  n_wire_remaining : int64;
  n_rx : Bytes.t list;
  n_rx_addr : int;
  n_inflight : tx_op_state list;
}

val capture : t -> state
val restore : t -> state -> unit

(** [inflight_tx t] — frames currently serializing on the wire (tests). *)
val inflight_tx : t -> int
