(** Control-flow graph recovery over an assembled LWM-32 image (pass 1 of
    the static verifier).

    Instructions are decoded with {!Vmm_hw.Isa} starting from registered
    roots; direct jump/branch/call targets are followed, [Jr] (indirect)
    is summarized conservatively with no successors, and [Iret]
    successors are added later by the abstract interpreter when it can
    prove the return frame constant.  The graph is growable — new roots
    (interrupt gates, iret targets) can be registered at any time and
    exploration resumes incrementally. *)

(** Re-export of {!Vmm_hw.Isa.flow}: the classification lives with the
    decoder so the CPU's block translator and this verifier share one
    notion of what terminates a basic block. *)
type flow = Vmm_hw.Isa.flow =
  | Fallthrough
  | Jump of int
  | Branch of int  (** conditional: target plus fall-through *)
  | Call_to of int
  | Indirect  (** [Jr] — unknown target, no static successors *)
  | Return
  | Int_return  (** [Iret] — successor may be recovered by the verifier *)
  | Terminal  (** [Brk] *)

val flow_of : Vmm_hw.Isa.instr -> flow

(** Malformed control flow found while building the graph (diagnostic
    class (e) raw material). *)
type issue =
  | Bad_target of { at : int; target : int }
      (** jump/branch/call to a misaligned or out-of-image address *)
  | Fall_off of { at : int }  (** execution can run off the end of the image *)
  | Undecodable of { at : int; opcode : int }
      (** a reachable slot that does not decode *)

type block = { start : int; finish : int; block_succs : int list }
type t

val create : origin:int -> bytes -> t

(** [add_root t addr] explores everything reachable from [addr];
    idempotent.  An invalid root records a {!Bad_target} issue. *)
val add_root : t -> int -> unit

val instr_at : t -> int -> Vmm_hw.Isa.instr option
val successors : t -> int -> int list
val instruction_count : t -> int
val issues : t -> issue list

(** Call graph edges, [(site, target)]. *)
val calls : t -> (int * int) list

val roots : t -> int list
val origin : t -> int
val image : t -> bytes

(** [in_image t ~addr ~len] — the byte range lies entirely inside the
    image. *)
val in_image : t -> addr:int -> len:int -> bool

(** Sorted addresses of every reachable instruction. *)
val text : t -> int array

(** [overlaps_text t ~lo ~hi] — the byte range [\[lo, hi\]] overlaps some
    reachable instruction's encoding (self-modifying-code check). *)
val overlaps_text : t -> lo:int -> hi:int -> bool

(** Basic blocks in address order. *)
val blocks : t -> block list
