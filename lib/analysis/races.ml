(* Interrupt-race pass (pass 4 of the static verifier).

   Consumes the interprocedural results of {!Summary}: mainline
   read-modify-write sequences executed while interrupts may be enabled
   are intersected against the transitive memory footprint of every
   asynchronous IHT handler.  Only facts derived from {e exact} IF
   states are reported — with exact call summaries, every bit of a
   may-set is realized by some concrete static path, which is what keeps
   the clean-corpus false-positive count at zero. *)

module Isa = Vmm_hw.Isa

type site = {
  load_pc : int;
  store_pc : int;
  lo : int;  (* written interval, inclusive *)
  hi : int;
  vector : int;  (* conflicting asynchronous gate *)
  handler : int;
  handler_writes : bool;
      (* the handler writes the interval (write/write race); false means
         it only reads what the torn RMW publishes *)
}

type result = {
  sites : site list;
  wedges : int list;  (* [Hlt] executed with interrupts provably masked *)
  divergent : (int * int) list;
      (* (entry, ret): function whose cli/sti balance provably depends
         on the path taken *)
}

let empty = { sites = []; wedges = []; divergent = [] }

(* Asynchronous = wired to a PIC line; software-interrupt gates (e.g.
   syscalls) only run synchronously and cannot interleave an RMW. *)
let is_async_vector v =
  v >= Isa.vec_irq_base_default && v < Isa.vec_irq_base_default + 8

(* ---------------------------------------------------------------- *)

let analyze ~cfg ~summary ~gates ~regs_at =
  let enabled_at a =
    match Summary.ifs_at summary a with
    | Some { may; exact = true } -> may land Summary.if_enabled <> 0
    | _ -> false
  in
  let masked_at a =
    match Summary.ifs_at summary a with
    | Some { may; exact = true } -> may = Summary.if_disabled
    | _ -> false
  in
  (* window (load_pc, store_pc]: an IRQ delivered at any boundary in it
     interleaves the handler between the load and the store *)
  let window_open ~load_pc ~store_pc =
    let rec go a = a <= store_pc && (enabled_at a || go (a + Isa.width)) in
    go (load_pc + Isa.width)
  in

  (* transitive footprints of the asynchronous handlers *)
  let handlers =
    List.filter_map
      (fun (vector, handler) ->
        if is_async_vector vector then
          let access, _incomplete = Summary.transitive summary handler in
          Some (vector, handler, access)
        else None)
      gates
  in

  let bounds_of a reg off =
    match regs_at a with
    | None -> None
    | Some regs -> Domain.bounds (Domain.add regs.(reg) (Domain.const off))
  in

  let sites = ref [] in
  let seen = Hashtbl.create 16 in
  let add_site s =
    let key = (s.store_pc, s.vector) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      sites := s :: !sites
    end
  in

  (* Intra-block taint: reg -> (pc of the load, loaded interval).  A
     store of a tainted register back over the loaded interval is a
     non-atomic read-modify-write. *)
  let scan_block (b : Cfg.block) =
    let taint : (int, int * int * int) Hashtbl.t = Hashtbl.create 8 in
    let set rd v =
      match v with
      | Some t -> Hashtbl.replace taint rd t
      | None -> Hashtbl.remove taint rd
    in
    let get r = Hashtbl.find_opt taint r in
    let first t1 t2 = match t1 with Some _ -> t1 | None -> t2 in
    let check_store pc rs ~lo ~hi =
      match get rs with
      | Some (load_pc, tlo, thi)
        when tlo <= hi && lo <= thi && window_open ~load_pc ~store_pc:pc ->
        List.iter
          (fun (vector, handler, (access : Summary.access)) ->
            if Summary.intervals_overlap access.writes ~lo ~hi then
              add_site
                { load_pc; store_pc = pc; lo; hi; vector; handler;
                  handler_writes = true }
            else if Summary.intervals_overlap access.reads ~lo ~hi then
              add_site
                { load_pc; store_pc = pc; lo; hi; vector; handler;
                  handler_writes = false })
          handlers
      | _ -> ()
    in
    let a = ref b.Cfg.start in
    while !a <= b.Cfg.finish do
      let pc = !a in
      (match Cfg.instr_at cfg pc with
      | Some (Isa.Ld (rd, rb, off)) ->
        set rd
          (match bounds_of pc rb off with
          | Some (lo, hi) -> Some (pc, lo, hi + 3)
          | None -> None)
      | Some (Isa.Ldb (rd, rb, off)) ->
        set rd
          (match bounds_of pc rb off with
          | Some (lo, hi) -> Some (pc, lo, hi)
          | None -> None)
      | Some (Isa.St (rb, off, rs)) -> (
        match bounds_of pc rb off with
        | Some (lo, hi) -> check_store pc rs ~lo ~hi:(hi + 3)
        | None -> ())
      | Some (Isa.Stb (rb, off, rs)) -> (
        match bounds_of pc rb off with
        | Some (lo, hi) -> check_store pc rs ~lo ~hi
        | None -> ())
      | Some (Isa.Mov (rd, rs)) -> set rd (get rs)
      | Some (Isa.Addi (rd, rs, _)) -> set rd (get rs)
      | Some (Isa.Add (rd, r1, r2))
      | Some (Isa.Sub (rd, r1, r2))
      | Some (Isa.And_ (rd, r1, r2))
      | Some (Isa.Or_ (rd, r1, r2))
      | Some (Isa.Xor_ (rd, r1, r2))
      | Some (Isa.Shl (rd, r1, r2))
      | Some (Isa.Shr (rd, r1, r2))
      | Some (Isa.Mul (rd, r1, r2)) -> set rd (first (get r1) (get r2))
      | Some (Isa.Movi (rd, _))
      | Some (Isa.In_ (rd, _))
      | Some (Isa.Ini (rd, _))
      | Some (Isa.Pop rd)
      | Some (Isa.Rdtsc rd)
      | Some (Isa.Csum (rd, _, _)) -> set rd None
      (* a synchronous trap may run arbitrary code: drop all taint *)
      | Some (Isa.Int_ _) | Some (Isa.Vmcall _) -> Hashtbl.reset taint
      | _ -> ());
      a := !a + Isa.width
    done
  in
  List.iter scan_block (Cfg.blocks cfg);

  (* [Hlt] with interrupts provably masked: nothing can ever wake the
     guest — the wedge the paper's watchdog fires on, caught statically *)
  let wedges = ref [] in
  Array.iter
    (fun a ->
      match Cfg.instr_at cfg a with
      | Some Isa.Hlt when masked_at a -> wedges := a :: !wedges
      | _ -> ())
    (Cfg.text cfg);

  (* provably path-divergent cli/sti balance, reported at the
     function's first return *)
  let divergent = ref [] in
  List.iter
    (fun entry ->
      match Summary.func_at summary entry with
      | Some f when f.Summary.xfer_exact -> (
        match Summary.ifs_at summary entry with
        | Some { may; exact = true } ->
          let diverges =
            List.exists
              (fun bit ->
                may land bit <> 0
                && Summary.xfer_divergent_for f.Summary.xfer bit)
              [ Summary.if_enabled; Summary.if_disabled ]
          in
          if diverges then
            let ret =
              List.find_opt
                (fun a -> Cfg.instr_at cfg a = Some Isa.Ret)
                f.Summary.body
            in
            (match ret with
            | Some r -> divergent := (entry, r) :: !divergent
            | None -> ())
        | _ -> ())
      | _ -> ())
    (Summary.functions summary);

  {
    sites = List.rev !sites;
    wedges = List.sort compare !wedges;
    divergent = List.sort compare !divergent;
  }

(* ---------------------------------------------------------------- *)
(* Crash-bundle [static-races] section: one site per line, parsed back
   by post-mortem tooling.  [status]/[windows] carry the monitor's
   dynamic cross-validation verdict. *)

let render_site ?(status = "static") ?(windows = 0) s =
  Printf.sprintf
    "site load=0x%x store=0x%x lo=0x%x hi=0x%x vector=%d handler=0x%x hwrites=%d status=%s windows=%d"
    s.load_pc s.store_pc s.lo s.hi s.vector s.handler
    (if s.handler_writes then 1 else 0)
    status windows

let parse_site line =
  match String.split_on_char ' ' (String.trim line) with
  | "site" :: fields -> (
    let tbl = Hashtbl.create 9 in
    List.iter
      (fun f ->
        match String.index_opt f '=' with
        | Some i ->
          Hashtbl.replace tbl
            (String.sub f 0 i)
            (String.sub f (i + 1) (String.length f - i - 1))
        | None -> ())
      fields;
    let num k =
      match Hashtbl.find_opt tbl k with
      | Some v -> int_of_string_opt v
      | None -> None
    in
    match
      (num "load", num "store", num "lo", num "hi", num "vector",
       num "handler", num "hwrites", num "windows")
    with
    | ( Some load_pc, Some store_pc, Some lo, Some hi, Some vector,
        Some handler, Some hw, Some windows ) ->
      let status =
        match Hashtbl.find_opt tbl "status" with
        | Some s -> s
        | None -> "static"
      in
      Some
        ( { load_pc; store_pc; lo; hi; vector; handler;
            handler_writes = hw <> 0 },
          status, windows )
    | _ -> None)
  | _ -> None
