(* Pass 1 of the guest-image verifier: decode the assembled image with
   {!Vmm_hw.Isa} and recover a control-flow graph over every instruction
   reachable from the registered roots.  Direct jump/branch/call targets
   are followed; [Jr] (indirect) is summarized conservatively with no
   successors, and [Iret] successors are discovered later by the abstract
   interpreter when the frame on the abstract stack is constant.

   The graph is growable: the verifier registers new roots as it
   discovers interrupt gates and iret targets, and exploration resumes
   from there. *)

module Isa = Vmm_hw.Isa

(* The flow classification lives with the decoder (Isa.flow) so the CPU's
   block translator and this verifier can never disagree about what
   terminates a basic block; re-export it under the historical name. *)
type flow = Isa.flow =
  | Fallthrough
  | Jump of int
  | Branch of int
  | Call_to of int
  | Indirect
  | Return
  | Int_return
  | Terminal

let flow_of = Isa.flow_of

(* Diagnostic class (e) raw material: malformed control flow found while
   building the graph. *)
type issue =
  | Bad_target of { at : int; target : int }
  | Fall_off of { at : int }
  | Undecodable of { at : int; opcode : int }

type block = { start : int; finish : int; block_succs : int list }

type t = {
  origin : int;
  limit : int;  (* origin + image length *)
  image : bytes;
  insns : (int, Isa.instr) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  mutable roots : int list;
  jump_targets : (int, unit) Hashtbl.t;
  mutable calls : (int * int) list;
  mutable issues : issue list;
  issue_seen : (issue, unit) Hashtbl.t;
  mutable text_cache : int array option;
}

let create ~origin image =
  {
    origin;
    limit = origin + Bytes.length image;
    image;
    insns = Hashtbl.create 256;
    succs = Hashtbl.create 256;
    roots = [];
    jump_targets = Hashtbl.create 64;
    calls = [];
    issues = [];
    issue_seen = Hashtbl.create 16;
    text_cache = None;
  }

let issue t i =
  if not (Hashtbl.mem t.issue_seen i) then begin
    Hashtbl.add t.issue_seen i ();
    t.issues <- i :: t.issues
  end

(* A decodable instruction slot: in the image and 8-byte aligned relative
   to the origin. *)
let valid_slot t a =
  a >= t.origin && a + Isa.width <= t.limit && (a - t.origin) mod Isa.width = 0

let explore t start =
  let pending = Queue.create () in
  let push a = if not (Hashtbl.mem t.insns a) then Queue.add a pending in
  push start;
  while not (Queue.is_empty pending) do
    let a = Queue.pop pending in
    if not (Hashtbl.mem t.insns a) then begin
      match Isa.decode ~addr:a t.image ~off:(a - t.origin) with
      | exception Isa.Decode_error { addr; opcode } ->
        issue t (Undecodable { at = addr; opcode });
        t.text_cache <- None
      | i ->
        Hashtbl.replace t.insns a i;
        t.text_cache <- None;
        let out = ref [] in
        let edge_to target =
          if valid_slot t target then begin
            Hashtbl.replace t.jump_targets target ();
            out := target :: !out;
            push target
          end
          else issue t (Bad_target { at = a; target })
        in
        let fall () =
          let next = a + Isa.width in
          if next + Isa.width <= t.limit then begin
            out := next :: !out;
            push next
          end
          else issue t (Fall_off { at = a })
        in
        (match flow_of i with
        | Fallthrough -> fall ()
        | Jump target -> edge_to target
        | Branch target ->
          edge_to target;
          fall ()
        | Call_to target ->
          t.calls <- (a, target) :: t.calls;
          edge_to target;
          fall ()
        | Indirect | Return | Int_return | Terminal -> ());
        Hashtbl.replace t.succs a (List.rev !out)
    end
  done

let add_root t a =
  if valid_slot t a then begin
    if not (List.mem a t.roots) then t.roots <- a :: t.roots;
    explore t a
  end
  else issue t (Bad_target { at = a; target = a })

let instr_at t a = Hashtbl.find_opt t.insns a
let successors t a = match Hashtbl.find_opt t.succs a with Some l -> l | None -> []
let instruction_count t = Hashtbl.length t.insns
let issues t = List.rev t.issues
let calls t = t.calls
let roots t = t.roots
let origin t = t.origin
let image t = t.image
let in_image t ~addr ~len = addr >= t.origin && addr + len <= t.limit

let text t =
  match t.text_cache with
  | Some a -> a
  | None ->
    let a = Array.of_seq (Hashtbl.to_seq_keys t.insns) in
    Array.sort compare a;
    t.text_cache <- Some a;
    a

(* Does the byte range [lo, hi] overlap any reachable instruction's
   8-byte encoding?  (Class (d) raw material.) *)
let overlaps_text t ~lo ~hi =
  let a = text t in
  let n = Array.length a in
  (* first instruction address >= lo - 7 *)
  let lo' = lo - (Isa.width - 1) in
  let rec search l r = if l >= r then l else
      let m = (l + r) / 2 in
      if a.(m) < lo' then search (m + 1) r else search l m
  in
  let i = search 0 n in
  i < n && a.(i) <= hi

let blocks t =
  let txt = text t in
  let n = Array.length txt in
  if n = 0 then []
  else begin
    let leader = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace leader r ()) t.roots;
    Hashtbl.iter (fun a () -> Hashtbl.replace leader a ()) t.jump_targets;
    Array.iter
      (fun a ->
        match instr_at t a with
        | Some i when flow_of i <> Fallthrough ->
          Hashtbl.replace leader (a + Isa.width) ()
        | _ -> ())
      txt;
    let out = ref [] in
    let start = ref txt.(0) in
    let flush finish =
      out := { start = !start; finish; block_succs = successors t finish } :: !out
    in
    for i = 0 to n - 1 do
      let a = txt.(i) in
      if a <> !start && Hashtbl.mem leader a then begin
        flush (a - Isa.width);
        start := a
      end;
      let ends =
        (match instr_at t a with
        | Some ins -> flow_of ins <> Fallthrough
        | None -> true)
        || i + 1 >= n
        || txt.(i + 1) <> a + Isa.width
      in
      if ends then begin
        flush a;
        if i + 1 < n then start := txt.(i + 1)
      end
    done;
    List.rev !out
  end
