(* Interprocedural stage of the guest-image verifier: function discovery
   with call-summary propagation of the interrupt-enable state, plus
   per-function memory-access summaries over the interval domain.

   The interrupt-enable (IF) lattice is a may-set over {enabled,
   disabled}.  A function's effect on IF is summarized as a transformer
   [xfer = { dep; forced }] with the semantics

     apply x i = (if x.dep then i else 0) lor x.forced

   — [dep] records that some path through the function preserves the
   caller's IF, [forced] the bits some path forces.  The transformer
   join is exact as a set transformer (apply (join a b) i is precisely
   apply a i ∪ apply b i), so the only precision loss comes from code
   the traversal cannot follow: an indirect jump ([Jr]) or a call to an
   unresolvable target marks the function [incomplete], and everything
   whose IF state flows through such a function is demoted to inexact.
   The race pass only trusts {e exact} states, keeping the verifier's
   zero-false-positive contract. *)

module Isa = Vmm_hw.Isa

(* -- IF may-set -- *)

type ifs = int

let if_enabled = 1
let if_disabled = 2
let if_either = 3

(* -- Function IF transformers -- *)

type xfer = { dep : bool; forced : ifs }

let xfer_bottom = { dep = false; forced = 0 }
let xfer_identity = { dep = true; forced = 0 }
let apply x i = (if x.dep then i else 0) lor x.forced
let xfer_join a b = { dep = a.dep || b.dep; forced = a.forced lor b.forced }

(* [compose f g] — run [f], then [g]. *)
let xfer_compose f g =
  { dep = f.dep && g.dep; forced = (if g.dep then f.forced else 0) lor g.forced }

let xfer_equal a b = a.dep = b.dep && a.forced = b.forced

(* A joined transformer maps the single input [i] to more than one
   outcome exactly when different paths through the function leave the
   caller's mask in different states. *)
let xfer_divergent_for x i =
  let out = apply x i in
  out land (out - 1) <> 0

(* -- Access summaries -- *)

type interval = { lo : int; hi : int }

(* Interval lists are kept sorted, disjoint and short: overlapping or
   adjacent ranges merge, and past [interval_cap] the whole list widens
   to its hull — per-function widening, mirroring the register domain. *)
let interval_cap = 32

let normalize ivs =
  let sorted = List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi)) ivs in
  let merged =
    List.fold_left
      (fun acc iv ->
        match acc with
        | prev :: rest when iv.lo <= prev.hi + 1 ->
          { prev with hi = max prev.hi iv.hi } :: rest
        | _ -> iv :: acc)
      [] sorted
  in
  let merged = List.rev merged in
  if List.length merged > interval_cap then
    match (merged, List.rev merged) with
    | first :: _, last :: _ -> [ { lo = first.lo; hi = last.hi } ]
    | _ -> merged
  else merged

let intervals_overlap ivs ~lo ~hi =
  List.exists (fun iv -> iv.lo <= hi && lo <= iv.hi) ivs

type access = {
  reads : interval list;
  writes : interval list;
  reads_unknown : bool;  (* some load address could not be bounded *)
  writes_unknown : bool;  (* some store address could not be bounded *)
}

let access_empty =
  { reads = []; writes = []; reads_unknown = false; writes_unknown = false }

type func = {
  entry : int;
  body : int list;  (* sorted instruction addresses, callees excluded *)
  callees : int list;  (* resolved direct call targets *)
  xfer : xfer;
  xfer_exact : bool;
  incomplete : bool;
      (* the body reaches a [Jr] or an unresolvable call target: the
         traversal under-approximates, so summaries derived from it
         carry no proof weight *)
  access : access;
}

type ifstate = { may : ifs; exact : bool }

type t = {
  funcs : (int, func) Hashtbl.t;
  ifs : (int, ifstate) Hashtbl.t;
}

let func_at t entry = Hashtbl.find_opt t.funcs entry
let ifs_at t addr = Hashtbl.find_opt t.ifs addr
let function_count t = Hashtbl.length t.funcs

let incomplete_count t =
  Hashtbl.fold (fun _ f n -> if f.incomplete then n + 1 else n) t.funcs 0

let functions t =
  List.sort compare (Hashtbl.fold (fun e _ acc -> e :: acc) t.funcs [])

(* ---------------------------------------------------------------- *)
(* Function discovery                                                *)

(* Intraprocedural membership: follow successors from the entry, but
   never into a callee — at a call site only the return edge continues
   the function.  Shared tails belong to every function reaching them. *)
let explore_body cfg entry =
  let seen = Hashtbl.create 64 in
  let incomplete = ref false in
  let pending = Queue.create () in
  let push a = if not (Hashtbl.mem seen a) then Queue.add a pending in
  push entry;
  while not (Queue.is_empty pending) do
    let a = Queue.pop pending in
    if not (Hashtbl.mem seen a) then begin
      match Cfg.instr_at cfg a with
      | None -> ()
      | Some i ->
        Hashtbl.replace seen a ();
        (match Cfg.flow_of i with
        | Cfg.Call_to target ->
          let next = a + Isa.width in
          let succs = Cfg.successors cfg a in
          if not (List.mem target succs) then
            (* unresolvable callee: its effect on IF and memory is
               unknown to the traversal *)
            incomplete := true;
          if List.mem next succs then push next
        | Cfg.Indirect -> incomplete := true
        | Cfg.Fallthrough | Cfg.Jump _ | Cfg.Branch _ ->
          List.iter push (Cfg.successors cfg a)
        | Cfg.Return | Cfg.Int_return | Cfg.Terminal -> ())
    end
  done;
  let body = List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) seen []) in
  (body, !incomplete)

(* Callgraph transformer fixpoint: recompute every function's
   transformer against the current callee table until nothing grows.
   The per-function lattice has four points, so this terminates. *)
let xfer_fixpoint bodies xfers compute_xfer =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun entry b ->
        let x = compute_xfer entry b in
        let old =
          match Hashtbl.find_opt xfers entry with
          | Some x -> x
          | None -> xfer_bottom
        in
        let j = xfer_join old x in
        if not (xfer_equal j old) then begin
          Hashtbl.replace xfers entry j;
          changed := true
        end)
      bodies
  done

(* ---------------------------------------------------------------- *)

let compute ~cfg ~roots ~regs_at =
  let entries = Hashtbl.create 32 in
  List.iter (fun (r, _) -> if Cfg.instr_at cfg r <> None then Hashtbl.replace entries r ()) roots;
  List.iter
    (fun (_, tgt) -> if Cfg.instr_at cfg tgt <> None then Hashtbl.replace entries tgt ())
    (Cfg.calls cfg);

  (* body + direct callees per function *)
  let bodies = Hashtbl.create 32 in
  Hashtbl.iter
    (fun entry () ->
      let body, incomplete = explore_body cfg entry in
      let in_body = Hashtbl.create 64 in
      List.iter (fun a -> Hashtbl.replace in_body a ()) body;
      let callees =
        List.sort_uniq compare
          (List.filter_map
             (fun (site, tgt) ->
               if Hashtbl.mem in_body site && Hashtbl.mem entries tgt then
                 Some tgt
               else None)
             (Cfg.calls cfg))
      in
      Hashtbl.replace bodies entry (body, in_body, callees, incomplete))
    entries;

  (* -- IF-transformer fixpoint over the call graph --
     Bottom-initialized; each round recomputes every function's
     transformer from its body and the current callee transformers.
     The lattice is finite (2 x 4 per function), so this terminates. *)
  let xfers : (int, xfer) Hashtbl.t = Hashtbl.create 32 in
  let xfer_of entry =
    match Hashtbl.find_opt xfers entry with
    | Some x -> x
    | None -> xfer_bottom
  in
  let compute_xfer entry (body, _, _, _) =
    (* forward dataflow inside the body: transformer from function entry
       to each program point *)
    let at : (int, xfer) Hashtbl.t = Hashtbl.create 64 in
    let work = Queue.create () in
    let propagate a x =
      match Hashtbl.find_opt at a with
      | None ->
        Hashtbl.replace at a x;
        Queue.add a work
      | Some old ->
        let j = xfer_join old x in
        if not (xfer_equal j old) then begin
          Hashtbl.replace at a j;
          Queue.add a work
        end
    in
    let in_body =
      let h = Hashtbl.create 64 in
      List.iter (fun a -> Hashtbl.replace h a ()) body;
      h
    in
    propagate entry xfer_identity;
    let ret_state = ref None in
    let note_ret x =
      ret_state :=
        Some (match !ret_state with None -> x | Some r -> xfer_join r x)
    in
    while not (Queue.is_empty work) do
      let a = Queue.pop work in
      match (Cfg.instr_at cfg a, Hashtbl.find_opt at a) with
      | Some i, Some x ->
        let out =
          match i with
          | Isa.Sti -> { dep = false; forced = if_enabled }
          | Isa.Cli -> { dep = false; forced = if_disabled }
          | _ -> x
        in
        (match Cfg.flow_of i with
        | Cfg.Call_to target ->
          let next = a + Isa.width in
          let succs = Cfg.successors cfg a in
          let after =
            if List.mem target succs then xfer_compose out (xfer_of target)
            else (* unresolvable callee already marked incomplete *) out
          in
          if List.mem next succs && Hashtbl.mem in_body next then
            propagate next after
        | Cfg.Return -> note_ret out
        | Cfg.Fallthrough | Cfg.Jump _ | Cfg.Branch _ ->
          List.iter
            (fun s -> if Hashtbl.mem in_body s then propagate s out)
            (Cfg.successors cfg a)
        | Cfg.Indirect | Cfg.Int_return | Cfg.Terminal -> ())
      | _ -> ()
    done;
    (* no reachable Ret: the function never returns to its caller, so
       its transformer contributes nothing at return sites (bottom) *)
    match !ret_state with Some x -> x | None -> xfer_bottom
  in
  xfer_fixpoint bodies xfers compute_xfer;

  (* transformer exactness: poisoned by an incomplete body anywhere in
     the callee closure (monotone decreasing, iterate to stability) *)
  let exact : (int, bool) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun entry _ -> Hashtbl.replace exact entry true) bodies;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun entry (_, _, callees, incomplete) ->
        let now =
          (not incomplete)
          && List.for_all
               (fun c -> Option.value ~default:false (Hashtbl.find_opt exact c))
               callees
        in
        if Hashtbl.find exact entry && not now then begin
          Hashtbl.replace exact entry false;
          changed := true
        end)
      bodies
  done;

  (* -- access summaries -- *)
  let access_of (body, _, _, _) =
    let reads = ref [] and writes = ref [] in
    let reads_unknown = ref false and writes_unknown = ref false in
    let bounds_of a reg off =
      match regs_at a with
      | None -> None
      | Some regs -> Domain.bounds (Domain.add regs.(reg) (Domain.const off))
    in
    List.iter
      (fun a ->
        match Cfg.instr_at cfg a with
        | Some (Isa.Ld (_, rb, off)) -> (
          match bounds_of a rb off with
          | Some (lo, hi) -> reads := { lo; hi = hi + 3 } :: !reads
          | None -> reads_unknown := true)
        | Some (Isa.Ldb (_, rb, off)) -> (
          match bounds_of a rb off with
          | Some (lo, hi) -> reads := { lo; hi } :: !reads
          | None -> reads_unknown := true)
        | Some (Isa.St (rb, off, _)) -> (
          match bounds_of a rb off with
          | Some (lo, hi) -> writes := { lo; hi = hi + 3 } :: !writes
          | None -> writes_unknown := true)
        | Some (Isa.Stb (rb, off, _)) -> (
          match bounds_of a rb off with
          | Some (lo, hi) -> writes := { lo; hi } :: !writes
          | None -> writes_unknown := true)
        | Some (Isa.Copy (rd, rs, rl)) -> (
          match regs_at a with
          | None -> ()
          | Some regs -> (
            match Domain.bounds regs.(rl) with
            | Some (_, lhi) when lhi > 0 ->
              (match Domain.bounds regs.(rd) with
              | Some (lo, hi) -> writes := { lo; hi = hi + lhi - 1 } :: !writes
              | None -> writes_unknown := true);
              (match Domain.bounds regs.(rs) with
              | Some (lo, hi) -> reads := { lo; hi = hi + lhi - 1 } :: !reads
              | None -> reads_unknown := true)
            | Some _ -> ()
            | None ->
              writes_unknown := true;
              reads_unknown := true))
        (* Push/Pop address the per-context stack frame, never shared
           state; including them would make every function conflict
           with every handler through the stack region. *)
        | _ -> ())
      body;
    {
      reads = normalize !reads;
      writes = normalize !writes;
      reads_unknown = !reads_unknown;
      writes_unknown = !writes_unknown;
    }
  in

  let funcs = Hashtbl.create 32 in
  Hashtbl.iter
    (fun entry ((body, _, callees, incomplete) as b) ->
      Hashtbl.replace funcs entry
        {
          entry;
          body;
          callees;
          xfer = xfer_of entry;
          xfer_exact = Hashtbl.find exact entry;
          incomplete;
          access = access_of b;
        })
    bodies;

  (* -- global per-instruction IF dataflow --
     Roots seed their known entry state; calls propagate into the callee
     body directly and across the call via the callee's transformer.
     [exact] decays through inexact transformers and unresolved calls;
     the may-set and exactness lattices are finite, so the worklist
     terminates. *)
  let ifs : (int, ifstate) Hashtbl.t = Hashtbl.create 256 in
  let work = Queue.create () in
  let propagate a s =
    if s.may <> 0 && Cfg.instr_at cfg a <> None then
      match Hashtbl.find_opt ifs a with
      | None ->
        Hashtbl.replace ifs a s;
        Queue.add a work
      | Some old ->
        let j = { may = old.may lor s.may; exact = old.exact && s.exact } in
        if j <> old then begin
          Hashtbl.replace ifs a j;
          Queue.add a work
        end
  in
  List.iter (fun (r, i) -> propagate r { may = i; exact = true }) roots;
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    match (Cfg.instr_at cfg a, Hashtbl.find_opt ifs a) with
    | Some i, Some s ->
      let out =
        match i with
        | Isa.Sti -> { s with may = if_enabled }
        | Isa.Cli -> { s with may = if_disabled }
        (* Int_: the gate clears IF for the handler, whose iret restores
           the caller's flags word — IF is preserved across the
           fall-through edge *)
        | _ -> s
      in
      (match Cfg.flow_of i with
      | Cfg.Call_to target ->
        let next = a + Isa.width in
        let succs = Cfg.successors cfg a in
        let resolved = List.mem target succs && Hashtbl.mem funcs target in
        if resolved then propagate target out;
        if List.mem next succs then
          if resolved then begin
            let f = Hashtbl.find funcs target in
            propagate next
              {
                may = apply f.xfer out.may;
                exact = out.exact && f.xfer_exact;
              }
          end
          else propagate next { may = if_either; exact = false }
      | Cfg.Fallthrough | Cfg.Jump _ | Cfg.Branch _ ->
        List.iter (fun su -> propagate su out) (Cfg.successors cfg a)
      (* Return: flows to the caller through the call-site transformer.
         Int_return: iret targets recovered by the verifier enter the
         root list with their frame's IF bit. *)
      | Cfg.Indirect | Cfg.Return | Cfg.Int_return | Cfg.Terminal -> ())
    | _ -> ()
  done;

  { funcs; ifs }

(* ---------------------------------------------------------------- *)
(* Transitive (whole-call-tree) access summary                       *)

let transitive t entry =
  let seen = Hashtbl.create 16 in
  let acc = ref access_empty in
  let incomplete = ref false in
  let rec go e =
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.replace seen e ();
      match Hashtbl.find_opt t.funcs e with
      | None -> incomplete := true
      | Some f ->
        incomplete := !incomplete || f.incomplete;
        acc :=
          {
            reads = normalize (f.access.reads @ !acc.reads);
            writes = normalize (f.access.writes @ !acc.writes);
            reads_unknown = !acc.reads_unknown || f.access.reads_unknown;
            writes_unknown = !acc.writes_unknown || f.access.writes_unknown;
          };
        List.iter go f.callees
    end
  in
  go entry;
  (!acc, !incomplete)
