(** Abstract values for the guest-image verifier.

    A flat constant/interval domain over 32-bit words.  [Top] is "any
    word"; [Iv (lo, hi)] the inclusive unsigned range (a constant is the
    singleton interval).  Transfers that could wrap modulo 2{^32} give up
    to [Top] — the verifier only flags when a {e bounded} value proves a
    violation, so [Top] never causes a false positive. *)

type value = Top | Iv of int * int

val top : value
val const : int -> value

(** [range lo hi] — [Top] when the bounds are out of the 32-bit unsigned
    order. *)
val range : int -> int -> value

val is_const : value -> int option
val bounds : value -> (int * int) option
val equal : value -> value -> bool

(** Least upper bound (interval hull). *)
val join : value -> value -> value

(** {2 Transfer functions}

    Exact (wrapping, via {!Vmm_hw.Word}) on constants; conservative on
    intervals — bitwise and shift operations only track constants. *)

val add : value -> value -> value
val sub : value -> value -> value
val mul : value -> value -> value
val logand : value -> value -> value
val logor : value -> value -> value
val logxor : value -> value -> value
val shl : value -> value -> value
val shr : value -> value -> value
val pp : Format.formatter -> value -> unit
