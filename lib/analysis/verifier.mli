(** Static verifier for assembled LWM-32 guest images.

    Runs two passes over an image: {!Cfg} recovery (decode + control
    flow from the entry point, interrupt gates and provably-constant
    iret frames) and an abstract interpretation (constant/interval
    register domain, privilege-ring sets, per-function stack discipline)
    that proves load-time properties the monitor otherwise only enforces
    dynamically at trap time.

    The verifier is deliberately one-sided: a diagnostic is emitted only
    when a {e bounded} abstract value proves the violation, so unknown
    (Top) values and conservative control flow ([Jr], non-constant iret
    frames) can hide real bugs but never flag correct code.  See
    docs/ANALYSIS.md. *)

(** Diagnostic classes (a)–(h) of the verifier. *)
type diag_class =
  | Monitor_store  (** (a) store/copy can reach non-guest-owned memory *)
  | Privileged_reach
      (** (b) privileged instruction reachable outside ring 0 *)
  | Stack_unbalanced  (** (c) push/pop/call/ret discipline broken *)
  | Text_write  (** (d) store into executable text (icache hazard) *)
  | Control_flow
      (** (e) fall-through off the image, misaligned or undecodable
          targets *)
  | Port_io  (** (f) port I/O outside the configured bitmap *)
  | Irq_race
      (** (g) non-atomic read-modify-write of a location an asynchronous
          IHT handler also touches, on a path where interrupts are
          provably enabled inside the window ({!Races}) *)
  | Unbalanced_mask
      (** (h) provably divergent cli/sti balance, including [Hlt]
          reachable only with interrupts masked (wedge) *)

type diagnostic = { cls : diag_class; addr : int; detail : string }

type report = {
  clean : bool;
  diagnostics : diagnostic list;  (** sorted by address *)
  instructions : int;  (** reachable instructions decoded *)
  blocks : int;  (** basic blocks *)
  functions : int;  (** distinct call targets plus roots *)
  roots : int;  (** entry, gate handlers, discovered iret targets *)
  summaries : int;  (** functions summarized by the interprocedural pass *)
  summary_incomplete : int;
      (** summaries degraded by [Jr] or an unresolvable call — present
          but carrying no proof weight *)
  race_sites : Races.site list;
      (** raw race-pass output, one entry per (store, vector) pair; the
          monitor samples these for dynamic cross-validation *)
  timings : (string * float) list;
      (** per-pass seconds from the [clock] argument; all zero under the
          deterministic default clock *)
}

type config = {
  guest_owns : int -> bool;
      (** guest-owned physical addresses; the monitor passes
          [Vm_layout.guest_owns].  Must hold for a contiguous prefix
          (the verifier checks range endpoints). *)
  allowed_ports : (int * int) list;  (** inclusive I/O port ranges *)
  entry_ring : int;  (** ring the image is entered at, normally 0 *)
}

(** PIC/PIT/UART plus the passed-through SCSI and NIC register files. *)
val default_ports : (int * int) list

(** Everything-allowed memory, {!default_ports}, ring 0 — flags only
    intrinsic image problems (classes (b)–(e)). *)
val default_config : config

val class_name : diag_class -> string

(** [verify config program] — [entry] defaults to the program origin.
    [clock] feeds the per-pass [timings]; the default is a constant
    function, keeping library callers deterministic (record/replay
    safe).  Benchmarks pass a real monotonic clock. *)
val verify :
  ?clock:(unit -> float) -> config -> ?entry:int -> Vmm_hw.Asm.program -> report

val verify_image :
  ?clock:(unit -> float) -> config -> origin:int -> ?entry:int -> bytes -> report

(** Multi-line human rendering; addresses go through
    {!Vmm_debugger.Symbols.format_addr} when a table is given. *)
val render : ?symbols:Vmm_debugger.Symbols.t -> report -> string

(** One-line space-separated [key=value] summary (the [qV] payload). *)
val summary : report -> string
