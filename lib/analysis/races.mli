(** Interrupt-race pass (pass 4 of the static verifier).

    Intersects mainline read-modify-write sequences that execute with
    interrupts possibly enabled against the transitive memory footprint
    of every asynchronous IHT handler ({!Summary}), and checks the two
    mask-balance properties ([Hlt]-while-masked wedge, path-divergent
    cli/sti balance).  Diagnostics are emitted only from exact IF
    states, so everything reported corresponds to a realizable static
    path. *)

(** A statically detected race: the window [(load_pc, store_pc]] can be
    interleaved by the handler of [vector], which touches the written
    interval [\[lo, hi\]]. *)
type site = {
  load_pc : int;
  store_pc : int;
  lo : int;
  hi : int;
  vector : int;
  handler : int;
  handler_writes : bool;
      (** write/write race; [false] = the handler reads the torn value *)
}

type result = {
  sites : site list;
  wedges : int list;
      (** [Hlt] addresses reachable only with interrupts masked *)
  divergent : (int * int) list;
      (** [(entry, ret)] of functions whose mask balance provably
          depends on the path taken *)
}

val empty : result

val is_async_vector : int -> bool
(** Wired to a PIC line, i.e. can preempt mainline code. *)

val analyze :
  cfg:Cfg.t ->
  summary:Summary.t ->
  gates:(int * int) list ->
  regs_at:(int -> Domain.value array option) ->
  result
(** [gates] are [(vector, handler)] pairs parsed from the guest's IHT;
    [regs_at] is the verifier's abstract register file per address. *)

val render_site : ?status:string -> ?windows:int -> site -> string
(** One [static-races] bundle line; [status] is ["static"] or
    ["witnessed"], [windows] the dynamically observed open-window
    count. *)

val parse_site : string -> (site * string * int) option
(** Inverse of {!render_site}; [None] on a malformed line. *)
