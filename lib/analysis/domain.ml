(* Abstract values for the guest-image verifier: a flat constant/interval
   domain over 32-bit words.  [Top] means "any word"; [Iv (lo, hi)] is an
   inclusive unsigned range.  Constant operands are computed exactly with
   {!Vmm_hw.Word} (matching the interpreter, wrap included); genuine
   intervals give up to [Top] whenever the result could wrap modulo 2^32.
   The verifier only flags a violation when a *bounded* value proves it,
   so [Top] can never produce a false positive. *)

module Word = Vmm_hw.Word

type value = Top | Iv of int * int

let mask = 0xFFFFFFFF
let top = Top

let const n =
  let n = n land mask in
  Iv (n, n)

let range lo hi = if lo < 0 || hi > mask || lo > hi then Top else Iv (lo, hi)
let is_const = function Iv (lo, hi) when lo = hi -> Some lo | _ -> None
let bounds = function Top -> None | Iv (lo, hi) -> Some (lo, hi)

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Iv (l1, h1), Iv (l2, h2) -> l1 = l2 && h1 = h2
  | _ -> false

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Iv (l1, h1), Iv (l2, h2) -> Iv (min l1 l2, max h1 h2)

(* Exact on constants (wrap and all); [ivop] handles the interval case. *)
let binop word_op iv_op a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> const (word_op x y)
  | _ -> iv_op a b

let add =
  binop Word.add (fun a b ->
      match (a, b) with
      | Iv (l1, h1), Iv (l2, h2) when h1 + h2 <= mask -> Iv (l1 + l2, h1 + h2)
      | _ -> Top)

let sub =
  binop Word.sub (fun a b ->
      match (a, b) with
      | Iv (l1, h1), Iv (l2, h2) when l1 - h2 >= 0 -> Iv (l1 - h2, h1 - l2)
      | _ -> Top)

let mul =
  binop Word.mul (fun a b ->
      match (a, b) with
      | Iv (l1, h1), Iv (l2, h2) when h1 * h2 <= mask -> Iv (l1 * l2, h1 * h2)
      | _ -> Top)

let const_only word_op = binop word_op (fun _ _ -> Top)
let logand = const_only Word.logand
let logor = const_only Word.logor
let logxor = const_only Word.logxor
let shl = const_only (fun x y -> Word.shift_left x y)
let shr = const_only (fun x y -> Word.shift_right x y)

let pp ppf = function
  | Top -> Format.fprintf ppf "T"
  | Iv (lo, hi) when lo = hi -> Format.fprintf ppf "0x%x" lo
  | Iv (lo, hi) -> Format.fprintf ppf "[0x%x,0x%x]" lo hi
