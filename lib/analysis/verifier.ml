(* Pass 2 of the guest-image static verifier: a small abstract
   interpreter over the recovered CFG.

   Per-instruction abstract state: one {!Domain.value} per register, a
   bitmask of possible privilege rings, and the current function's stack
   discipline (push depth plus the abstract values of the top slots).
   The worklist iterates to a fixpoint (interval hulls are widened to
   Top after a few joins per address), interrupt-gate handlers found
   through constant [Liht] values become new roots at the gate's target
   ring, and [Iret] with a fully-constant frame on the abstract stack is
   followed to the returned-to ring — this is how the ring-3 application
   entered via the boot-time iret is discovered.

   All diagnostics are emitted in a separate pass over the *fixpoint*
   states, so partially-converged intervals never flag: only a bounded
   value in the final state can prove a violation. *)

module Isa = Vmm_hw.Isa
module Asm = Vmm_hw.Asm
module Ports = Vmm_hw.Machine.Ports
module Symbols = Vmm_debugger.Symbols

type diag_class =
  | Monitor_store
  | Privileged_reach
  | Stack_unbalanced
  | Text_write
  | Control_flow
  | Port_io
  | Irq_race
  | Unbalanced_mask

type diagnostic = { cls : diag_class; addr : int; detail : string }

type report = {
  clean : bool;
  diagnostics : diagnostic list;
  instructions : int;
  blocks : int;
  functions : int;
  roots : int;
  summaries : int;
  summary_incomplete : int;
  race_sites : Races.site list;
  timings : (string * float) list;
}

type config = {
  guest_owns : int -> bool;
  allowed_ports : (int * int) list;
  entry_ring : int;
}

(* The machine's device ports: PIC/PIT/UART (trapped and emulated under
   the monitor) plus the full SCSI and NIC register files (passed
   through).  Inclusive ranges. *)
let default_ports =
  [
    (Ports.pic, Ports.pic + 2);
    (Ports.pit, Ports.pit + 2);
    (Ports.uart, Ports.uart + 2);
    (Ports.scsi, Ports.scsi + 6);
    (Ports.nic, Ports.nic + 7);
  ]

let default_config =
  { guest_owns = (fun _ -> true); allowed_ports = default_ports; entry_ring = 0 }

let class_name = function
  | Monitor_store -> "monitor-store"
  | Privileged_reach -> "privileged"
  | Stack_unbalanced -> "stack"
  | Text_write -> "text-write"
  | Control_flow -> "control-flow"
  | Port_io -> "port-io"
  | Irq_race -> "irq-race"
  | Unbalanced_mask -> "unbalanced-mask"

(* ---------------------------------------------------------------- *)
(* Abstract state                                                    *)

type astate = {
  regs : Domain.value array;  (* 16 registers *)
  rings : int;  (* bitmask of possible privilege rings *)
  depth : int;  (* words pushed since function entry; -1 = unknown *)
  stack : Domain.value list;  (* abstract top slots, most recent first *)
}

let widen_after = 6
let stack_cap = 32

let fresh_state ~rings =
  { regs = Array.make Isa.num_regs Domain.top; rings; depth = 0; stack = [] }

let state_equal a b =
  a.rings = b.rings && a.depth = b.depth
  && Array.for_all2 Domain.equal a.regs b.regs
  && List.length a.stack = List.length b.stack
  && List.for_all2 Domain.equal a.stack b.stack

let state_join a b =
  let stack =
    if a.depth = b.depth && List.length a.stack = List.length b.stack then
      List.map2 Domain.join a.stack b.stack
    else []
  in
  {
    regs = Array.init Isa.num_regs (fun i -> Domain.join a.regs.(i) b.regs.(i));
    rings = a.rings lor b.rings;
    depth = (if a.depth = b.depth then a.depth else -1);
    stack;
  }

(* After [widen_after] changes at one address, snap every still-moving
   register (and the tracked stack) to Top so the fixpoint terminates. *)
let widen old j =
  {
    j with
    regs =
      Array.init Isa.num_regs (fun i ->
          if Domain.equal old.regs.(i) j.regs.(i) then j.regs.(i) else Domain.top);
    stack =
      (if
         List.length old.stack = List.length j.stack
         && List.for_all2 Domain.equal old.stack j.stack
       then j.stack
       else []);
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* ---------------------------------------------------------------- *)

(* [clock] feeds the per-pass timings in the report; the default is a
   constant so library users stay deterministic (the bench passes a real
   clock). *)
let verify_image ?(clock = fun () -> 0.) config ~origin ?entry image =
  let t0 = clock () in
  let entry = match entry with Some e -> e | None -> origin in
  let cfg = Cfg.create ~origin image in
  let states : (int, astate) Hashtbl.t = Hashtbl.create 512 in
  let join_counts : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let work = Queue.create () in
  let queued = Hashtbl.create 512 in
  let iht_bases = Hashtbl.create 4 in
  (* raw material for the interprocedural stage: IHT gates and the
     constant-frame iret edges the fixpoint discovers *)
  let gates = ref [] in
  let iret_roots = ref [] in
  let enqueue a =
    if not (Hashtbl.mem queued a) then begin
      Hashtbl.add queued a ();
      Queue.add a work
    end
  in
  let propagate a st =
    if Cfg.instr_at cfg a <> None then
      match Hashtbl.find_opt states a with
      | None ->
        Hashtbl.replace states a st;
        enqueue a
      | Some old ->
        let j = state_join old st in
        if not (state_equal j old) then begin
          let c =
            (match Hashtbl.find_opt join_counts a with Some c -> c | None -> 0)
            + 1
          in
          Hashtbl.replace join_counts a c;
          let j = if c > widen_after then widen old j else j in
          Hashtbl.replace states a j;
          enqueue a
        end
  in
  let add_abs_root a st =
    Cfg.add_root cfg a;
    propagate a st
  in

  (* One transfer-function application (no diagnostics here — those run
     over the fixpoint states afterwards). *)
  let step a st =
    match Cfg.instr_at cfg a with
    | None -> ()
    | Some i ->
      let regs = Array.copy st.regs in
      let get r = regs.(r) in
      let set r v = regs.(r) <- v in
      let depth = ref st.depth and stack = ref st.stack in
      let push v =
        set Isa.sp (Domain.sub (get Isa.sp) (Domain.const 4));
        if !depth >= 0 then begin
          depth := !depth + 1;
          stack := v :: take (stack_cap - 1) !stack
        end
      in
      let pop () =
        set Isa.sp (Domain.add (get Isa.sp) (Domain.const 4));
        let v =
          match !stack with
          | v :: rest ->
            stack := rest;
            v
          | [] -> Domain.top
        in
        if !depth > 0 then decr depth
        else if !depth = 0 then begin
          (* underflow: the fixpoint state at this address keeps depth 0,
             which the check pass flags; downstream is unknown. *)
          depth := -1;
          stack := []
        end;
        v
      in
      let clobber () = Array.fill regs 0 Isa.num_regs Domain.top in
      (match i with
      | Isa.Movi (rd, imm) -> set rd (Domain.const imm)
      | Isa.Mov (rd, rs) -> set rd (get rs)
      | Isa.Add (rd, r1, r2) -> set rd (Domain.add (get r1) (get r2))
      | Isa.Addi (rd, rs, imm) -> set rd (Domain.add (get rs) (Domain.const imm))
      | Isa.Sub (rd, r1, r2) -> set rd (Domain.sub (get r1) (get r2))
      | Isa.And_ (rd, r1, r2) -> set rd (Domain.logand (get r1) (get r2))
      | Isa.Or_ (rd, r1, r2) -> set rd (Domain.logor (get r1) (get r2))
      | Isa.Xor_ (rd, r1, r2) -> set rd (Domain.logxor (get r1) (get r2))
      | Isa.Shl (rd, r1, r2) -> set rd (Domain.shl (get r1) (get r2))
      | Isa.Shr (rd, r1, r2) -> set rd (Domain.shr (get r1) (get r2))
      | Isa.Mul (rd, r1, r2) -> set rd (Domain.mul (get r1) (get r2))
      | Isa.Ld (rd, _, _) | Isa.Ldb (rd, _, _) -> set rd Domain.top
      | Isa.In_ (rd, _) | Isa.Ini (rd, _) -> set rd Domain.top
      | Isa.Csum (rd, _, _) | Isa.Rdtsc rd -> set rd Domain.top
      | Isa.Push r -> push (get r)
      | Isa.Pop r ->
        let v = pop () in
        set r v
      | Isa.Int_ _ | Isa.Vmcall _ ->
        (* handler/monitor round trip: registers are clobbered, but the
           frame slots above the stack pointer survive. *)
        clobber ()
      | Isa.Liht r -> (
        match Domain.is_const (get r) with
        | Some base -> Hashtbl.replace iht_bases base ()
        | None -> ())
      | Isa.Nop | Isa.Hlt | Isa.Cmp _ | Isa.Cmpi _ | Isa.St _ | Isa.Stb _
      | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _ | Isa.Jb _
      | Isa.Jae _ | Isa.Jr _ | Isa.Call _ | Isa.Ret | Isa.Out _ | Isa.Outi _
      | Isa.Iret | Isa.Sti | Isa.Cli | Isa.Lptb _ | Isa.Lstk _ | Isa.Tlbflush
      | Isa.Copy _ | Isa.Brk ->
        ());
      let st' = { regs; rings = st.rings; depth = !depth; stack = !stack } in
      (match Cfg.flow_of i with
      | Cfg.Call_to target ->
        let succs = Cfg.successors cfg a in
        if List.mem target succs then
          (* callee: fresh frame, caller's registers *)
          propagate target
            { regs = Array.copy regs; rings = st.rings; depth = 0; stack = [] };
        let next = a + Isa.width in
        if List.mem next succs && next <> target then
          (* back from a balanced callee: registers clobbered, the
             caller's frame shape survives but its values may not. *)
          propagate next
            {
              regs = Array.make Isa.num_regs Domain.top;
              rings = st.rings;
              depth = !depth;
              stack = List.map (fun _ -> Domain.top) !stack;
            }
      | Cfg.Int_return -> (
        (* Follow an iret whose frame is constant on the abstract stack:
           error, return pc, flags, then the old stack pointer. *)
        match !stack with
        | _err :: pcv :: flagsv :: rest -> (
          match (Domain.is_const pcv, Domain.is_const flagsv) with
          | Some pc, Some flags ->
            let ring = (flags lsr 12) land 3 in
            let regs' = Array.copy regs in
            regs'.(Isa.sp) <-
              (match rest with sp' :: _ -> sp' | [] -> Domain.top);
            if not (List.mem (pc, flags) !iret_roots) then
              iret_roots := (pc, flags) :: !iret_roots;
            Cfg.add_root cfg pc;
            propagate pc
              { regs = regs'; rings = 1 lsl ring; depth = 0; stack = [] }
          | _ -> ())
        | _ -> ())
      | Cfg.Fallthrough | Cfg.Jump _ | Cfg.Branch _ ->
        List.iter (fun s -> propagate s st') (Cfg.successors cfg a)
      | Cfg.Indirect | Cfg.Return | Cfg.Terminal -> ())
  in

  add_abs_root entry (fresh_state ~rings:(1 lsl config.entry_ring));
  let parsed = Hashtbl.create 4 in
  let progress = ref true in
  while !progress do
    while not (Queue.is_empty work) do
      let a = Queue.pop work in
      Hashtbl.remove queued a;
      match Hashtbl.find_opt states a with Some st -> step a st | None -> ()
    done;
    (* Interrupt gates from any constant IHT base that lies inside the
       image: each present gate's handler is a root at the gate's target
       ring.  New handlers may load further tables, so iterate. *)
    let fresh_roots = ref [] in
    Hashtbl.iter
      (fun base () ->
        if not (Hashtbl.mem parsed base) then begin
          Hashtbl.replace parsed base ();
          for vec = 0 to 63 do
            let off = base - origin + (vec * 8) in
            if off >= 0 && off + 8 <= Bytes.length image then begin
              let word o =
                Int32.to_int (Bytes.get_int32_le image o) land 0xFFFFFFFF
              in
              let handler = word off and info = word (off + 4) in
              if info land 1 = 1 then begin
                gates := (vec, handler) :: !gates;
                fresh_roots := (handler, (info lsr 1) land 3) :: !fresh_roots
              end
            end
          done
        end)
      iht_bases;
    if !fresh_roots = [] then progress := false
    else
      List.iter
        (fun (h, ring) -> add_abs_root h (fresh_state ~rings:(1 lsl ring)))
        !fresh_roots
  done;

  let t_fixpoint = clock () in

  (* ------------------------------------------------------------ *)
  (* Check pass over the fixpoint states.                          *)
  let diags = ref [] in
  let diag_seen = Hashtbl.create 32 in
  let flag cls addr detail =
    if not (Hashtbl.mem diag_seen (cls, addr)) then begin
      Hashtbl.add diag_seen (cls, addr) ();
      diags := { cls; addr; detail } :: !diags
    end
  in
  let check_range a lo last what =
    if not (config.guest_owns lo && config.guest_owns last) then
      flag Monitor_store a
        (Printf.sprintf "%s can reach non-guest memory 0x%x..0x%x" what lo last);
    if Cfg.overlaps_text cfg ~lo ~hi:last then
      flag Text_write a
        (Printf.sprintf "%s overlaps executable text at 0x%x..0x%x" what lo last)
  in
  let check_store a v len what =
    match Domain.bounds v with
    | Some (lo, hi) -> check_range a lo (hi + len - 1) what
    | None -> ()
  in
  let check_port a v =
    match Domain.bounds v with
    | Some (lo, hi) ->
      if
        not
          (List.exists
             (fun (plo, phi) -> plo <= lo && hi <= phi)
             config.allowed_ports)
      then
        flag Port_io a
          (if lo = hi then Printf.sprintf "port 0x%x outside the I/O bitmap" lo
           else
             Printf.sprintf "ports 0x%x..0x%x outside the I/O bitmap" lo hi)
    | None -> ()
  in
  let check a st =
    match Cfg.instr_at cfg a with
    | None -> ()
    | Some i ->
      let get r = st.regs.(r) in
      if Isa.is_privileged i && st.rings land lnot 1 <> 0 then
        flag Privileged_reach a
          (Printf.sprintf "privileged '%s' reachable outside ring 0"
             (Isa.to_string i));
      (match i with
      | Isa.St (base, off, _) ->
        check_store a (Domain.add (get base) (Domain.const off)) 4 "store"
      | Isa.Stb (base, off, _) ->
        check_store a (Domain.add (get base) (Domain.const off)) 1 "byte store"
      | Isa.Push _ ->
        check_store a (Domain.sub (get Isa.sp) (Domain.const 4)) 4 "push"
      | Isa.Copy (rd, _, rl) -> (
        match (Domain.bounds (get rd), Domain.bounds (get rl)) with
        | Some (dlo, dhi), Some (_, lhi) when lhi > 0 ->
          check_range a dlo (dhi + lhi - 1) "copy"
        | _ -> ())
      | Isa.In_ (_, rp) | Isa.Out (rp, _) -> check_port a (get rp)
      | Isa.Ini (_, imm) | Isa.Outi (imm, _) -> check_port a (Domain.const imm)
      | Isa.Pop _ ->
        if st.depth = 0 then
          flag Stack_unbalanced a "pop with an empty frame"
      | Isa.Ret ->
        if st.depth > 0 then
          flag Stack_unbalanced a
            (Printf.sprintf "ret with %d word(s) still pushed" st.depth)
      | _ -> ())
  in
  Hashtbl.iter check states;
  List.iter
    (function
      | Cfg.Bad_target { at; target } ->
        flag Control_flow at
          (Printf.sprintf "jump to invalid target 0x%x" target)
      | Cfg.Fall_off { at } ->
        flag Control_flow at "fall-through off the end of the image"
      | Cfg.Undecodable { at; opcode } ->
        flag Control_flow at (Printf.sprintf "undecodable opcode 0x%02x" opcode))
    (Cfg.issues cfg);
  let t_check = clock () in

  (* ------------------------------------------------------------ *)
  (* Interprocedural stage (pass 3) + race pass (pass 4).          *)
  let regs_at a =
    match Hashtbl.find_opt states a with
    | Some st -> Some st.regs
    | None -> None
  in
  let if_roots =
    (* the monitor boots the guest with virtual IF clear, and gate
       delivery clears it for the handler; an iret target inherits the
       IF bit of its constant return frame *)
    (entry, Summary.if_disabled)
    :: List.map (fun (_, h) -> (h, Summary.if_disabled)) !gates
    @ List.map
        (fun (pc, flags) ->
          ( pc,
            if flags land 0x200 <> 0 then Summary.if_enabled
            else Summary.if_disabled ))
        !iret_roots
  in
  let summary = Summary.compute ~cfg ~roots:if_roots ~regs_at in
  let t_summary = clock () in
  let races = Races.analyze ~cfg ~summary ~gates:!gates ~regs_at in
  List.iter
    (fun (s : Races.site) ->
      flag Irq_race s.store_pc
        (Printf.sprintf
           "rmw of 0x%x..0x%x (load at 0x%x) can be interleaved by vector %d \
            handler 0x%x (%s)"
           s.lo s.hi s.load_pc s.vector s.handler
           (if s.handler_writes then "write/write" else "handler reads")))
    races.sites;
  List.iter
    (fun a -> flag Unbalanced_mask a "hlt reachable only with interrupts masked (wedge)")
    races.wedges;
  List.iter
    (fun (fentry, ret) ->
      flag Unbalanced_mask ret
        (Printf.sprintf
           "cli/sti balance of function 0x%x diverges across paths" fentry))
    races.divergent;
  let t_races = clock () in

  let diagnostics =
    List.sort (fun a b -> compare (a.addr, a.cls) (b.addr, b.cls)) !diags
  in
  let functions =
    let fn = Hashtbl.create 16 in
    List.iter (fun (_, tgt) -> Hashtbl.replace fn tgt ()) (Cfg.calls cfg);
    List.iter (fun r -> Hashtbl.replace fn r ()) (Cfg.roots cfg);
    Hashtbl.length fn
  in
  {
    clean = diagnostics = [];
    diagnostics;
    instructions = Cfg.instruction_count cfg;
    blocks = List.length (Cfg.blocks cfg);
    functions;
    roots = List.length (Cfg.roots cfg);
    summaries = Summary.function_count summary;
    summary_incomplete = Summary.incomplete_count summary;
    race_sites = races.sites;
    timings =
      [
        ("absint", t_fixpoint -. t0);
        ("check", t_check -. t_fixpoint);
        ("summary", t_summary -. t_check);
        ("races", t_races -. t_summary);
      ];
  }

let verify ?clock config ?entry (program : Asm.program) =
  verify_image ?clock config ~origin:program.origin ?entry program.code

(* ---------------------------------------------------------------- *)
(* Rendering                                                         *)

let render ?symbols r =
  let fmt_addr a =
    match symbols with
    | Some s -> Symbols.format_addr s a
    | None -> Printf.sprintf "0x%x" a
  in
  let b = Buffer.create 256 in
  Printf.bprintf b
    "analysis: %s (%d instructions, %d blocks, %d functions, %d roots, %d \
     summaries%s, %d race site(s))"
    (if r.clean then "clean"
     else Printf.sprintf "%d diagnostic(s)" (List.length r.diagnostics))
    r.instructions r.blocks r.functions r.roots r.summaries
    (if r.summary_incomplete > 0 then
       Printf.sprintf " [%d incomplete]" r.summary_incomplete
     else "")
    (List.length r.race_sites);
  List.iter
    (fun d ->
      Printf.bprintf b "\n  [%s] %s: %s" (class_name d.cls) (fmt_addr d.addr)
        d.detail)
    r.diagnostics;
  Buffer.contents b

(* Flat space-separated key=value pairs, like the watchdog report, so the
   qV reply parses with the same splitter. *)
let summary r =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "analysis=%s diags=%d instructions=%d blocks=%d functions=%d roots=%d \
     summaries=%d incomplete=%d races=%d"
    (if r.clean then "clean" else "dirty")
    (List.length r.diagnostics)
    r.instructions r.blocks r.functions r.roots r.summaries
    r.summary_incomplete
    (List.length r.race_sites);
  List.iteri
    (fun i d ->
      if i < 8 then
        Printf.bprintf b " d%d=%s@0x%x" i (class_name d.cls) d.addr)
    r.diagnostics;
  let n = List.length r.diagnostics in
  if n > 8 then Printf.bprintf b " truncated=%d" (n - 8);
  Buffer.contents b
