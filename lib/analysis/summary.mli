(** Interprocedural summaries (pass 3 of the static verifier).

    Discovers functions from the {!Cfg} call graph, computes a
    call-summary transformer for each function's effect on the
    interrupt-enable flag, runs a whole-image may-analysis of the IF
    state at every instruction, and derives per-function memory
    read/write sets as abstract address intervals.  {!Races} consumes
    all three. *)

(** May-set over the interrupt-enable flag: a bitmask of
    {!if_enabled} / {!if_disabled}.  [0] means "unreached". *)
type ifs = int

val if_enabled : ifs
val if_disabled : ifs
val if_either : ifs

(** A function's effect on the caller's IF state:
    [apply x i = (if x.dep then i else 0) lor x.forced].  Exact as a
    set transformer under {!xfer_join}, so joining paths loses no
    precision. *)
type xfer = { dep : bool; forced : ifs }

val xfer_bottom : xfer
(** Never returns (no reachable [Ret]); identity of {!xfer_join} and
    maps every input to the empty may-set. *)

val xfer_identity : xfer

val apply : xfer -> ifs -> ifs
val xfer_join : xfer -> xfer -> xfer

val xfer_compose : xfer -> xfer -> xfer
(** [xfer_compose f g] — run [f], then [g]. *)

val xfer_equal : xfer -> xfer -> bool

val xfer_divergent_for : xfer -> ifs -> bool
(** [xfer_divergent_for x i] — starting from the single state [i],
    different paths through the function provably leave IF in different
    states (the raw material of [Unbalanced_mask]). *)

(** Closed integer interval of guest-physical byte addresses. *)
type interval = { lo : int; hi : int }

val intervals_overlap : interval list -> lo:int -> hi:int -> bool

(** Per-function memory footprint.  The [_unknown] flags record loads or
    stores whose address the interval domain could not bound — the set
    is then an under-approximation and carries no proof weight. *)
type access = {
  reads : interval list;
  writes : interval list;
  reads_unknown : bool;
  writes_unknown : bool;
}

val access_empty : access

type func = {
  entry : int;
  body : int list;  (** sorted instruction addresses; callees excluded *)
  callees : int list;  (** resolved direct call targets *)
  xfer : xfer;
  xfer_exact : bool;
      (** no [Jr] / unresolvable call anywhere in the callee closure *)
  incomplete : bool;
      (** this body reaches a [Jr] or an unresolvable call target, so
          the traversal under-approximates it (satellite: explicit
          [summary_incomplete], never a silent gap) *)
  access : access;
}

(** May-state of IF at one instruction.  [exact] survives only along
    paths whose every call summary is exact; diagnostics are emitted
    from exact states alone. *)
type ifstate = { may : ifs; exact : bool }

type t

val compute :
  cfg:Cfg.t ->
  roots:(int * ifs) list ->
  regs_at:(int -> Domain.value array option) ->
  t
(** [roots] seed the IF dataflow: image entry and gate handlers enter
    with {!if_disabled}, iret-recovered roots with the IF bit of their
    return frame's flags word.  [regs_at] supplies the abstract register
    file the verifier computed at each address. *)

val func_at : t -> int -> func option
val ifs_at : t -> int -> ifstate option
val function_count : t -> int
val incomplete_count : t -> int

val functions : t -> int list
(** Sorted function entry addresses. *)

val transitive : t -> int -> access * bool
(** Whole-call-tree access summary from [entry]; the flag reports
    whether any function in the closure was incomplete or missing. *)
