module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Uart = Vmm_hw.Uart
module Phys_mem = Vmm_hw.Phys_mem
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command

let footprint = 1024

type t = {
  machine : Machine.t;
  region : int;
  checksum : int;
  decoder : Packet.decoder;
  mutable machine_dead : bool;
  mutable answered : int;
}

(* A recognizable pattern standing in for the agent's code and data. *)
let plant_image mem ~region =
  for i = 0 to footprint - 1 do
    Phys_mem.write_u8 mem (region + i) ((i * 37) lxor 0xA5 land 0xFF)
  done

let attach machine ~region =
  let mem = Machine.mem machine in
  plant_image mem ~region;
  (* The in-OS agent initializes like any kernel service: interrupts on,
     its UART line unmasked.  Both remain at the mercy of the OS. *)
  Cpu.set_interrupts_enabled (Machine.cpu machine) true;
  {
    machine;
    region;
    checksum = Phys_mem.checksum mem ~addr:region ~len:footprint;
    decoder = Packet.decoder ();
    machine_dead = false;
    answered = 0;
  }

(* Alive only while everything the agent depends on is intact: its own
   image, the machine itself, and the interrupt path that invokes it. *)
let alive t =
  let cpu = Machine.cpu t.machine in
  let uart_masked =
    Vmm_hw.Pic.mask (Machine.pic t.machine) land (1 lsl Machine.Irq.uart) <> 0
  in
  (not t.machine_dead)
  && Cpu.interrupts_enabled cpu
  && (not uart_masked)
  && Phys_mem.checksum (Machine.mem t.machine) ~addr:t.region ~len:footprint
     = t.checksum

let mark_machine_dead t = t.machine_dead <- true

let send t s =
  String.iter
    (fun c -> Uart.io_write (Machine.uart t.machine) 0 (Char.code c))
    s

let reply t r = send t (Packet.frame (Command.reply_to_wire r))

let handle t command =
  let cpu = Machine.cpu t.machine in
  match command with
  | Command.Read_registers ->
    reply t
      (Command.Registers
         (Array.init 18 (fun i ->
              if i < 16 then Cpu.read_reg cpu i
              else if i = 16 then Cpu.pc cpu
              else Cpu.flags_word cpu)))
  | Command.Read_memory { addr; len } ->
    let mem = Machine.mem t.machine in
    if addr >= 0 && len >= 0 && addr + len <= Phys_mem.size mem then
      reply t
        (Command.Memory (Bytes.to_string (Phys_mem.read_bytes mem ~addr ~len)))
    else reply t (Command.Error 0x0E)
  | Command.Query_stop -> reply t Command.Running
  | Command.Write_register _ | Command.Write_memory _
  | Command.Insert_breakpoint _ | Command.Remove_breakpoint _
  | Command.Insert_watchpoint _ | Command.Remove_watchpoint _
  | Command.Read_console | Command.Read_profile
  | Command.Query_watchdog | Command.Query_verify | Command.Query_flight
  | Command.Restart
  | Command.Continue | Command.Step | Command.Halt | Command.Detach
  | Command.Reverse_step | Command.Reverse_continue | Command.Resync ->
    reply t Command.Unsupported

let service t =
  let uart = Machine.uart t.machine in
  let before = t.answered in
  let rec drain () =
    if Uart.io_read uart 1 land 1 <> 0 then begin
      let byte = Uart.io_read uart 0 in
      (* A dead agent consumes bytes (the hardware FIFO still drains) but
         can no longer respond. *)
      (if alive t then
         match Packet.feed t.decoder byte with
         | Some (Packet.Packet payload) ->
           send t (String.make 1 Packet.ack);
           (match Command.command_of_wire payload with
            | Some command ->
              t.answered <- t.answered + 1;
              handle t command
            | None -> reply t Command.Unsupported)
         | Some (Packet.Ack | Packet.Nak | Packet.Bad_checksum) | None -> ());
      drain ()
    end
  in
  drain ();
  t.answered - before

let commands_answered t = t.answered
