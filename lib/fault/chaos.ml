(* A lossy wire: wraps a byte sink and, while active, drops, corrupts,
   duplicates or delays each byte independently, drawing every decision
   from a seeded Rng stream so a failing run replays from its seed.

   Two draw disciplines share one RNG:

   - Live (no recorder, or recorder Off): the historical inline path.
     Rolls interleave with [sink] — the dup roll happens at DELIVERY
     time, after the byte has been sunk, so draws made by traffic the
     sink triggers synchronously (an ACK back through the other
     direction's wrap) land between this byte's delay and dup rolls,
     and a delayed byte's dup roll defers into its Engine callback.
     This keeps every pre-recorder seed (fault storm, --lossy REPL)
     byte-for-byte stable.

   - Record/Replay: the whole per-byte verdict (drop? corrupt-mask?
     delay? duplicate?) is drawn up-front in a fixed order and routed
     through the machine recorder: recording logs it, replaying
     substitutes the scripted verdict for the live RNG — so a recorded
     chaos campaign replays byte-for-byte.  Turning recording on
     therefore shifts the chaos stream for a given seed relative to a
     live run; record-mode runs are deterministic against each other
     and against their own replays, which is the property CI pins.

   Delayed bytes are re-submitted through an Engine event, so they can
   land behind later traffic — reordering is deliberately part of the
   menu; to the framing layer it reads as corruption and the ARQ layer
   must recover either way. *)

module Engine = Vmm_sim.Engine
module Rng = Vmm_sim.Rng
module Event = Vmm_replay.Event
module Recorder = Vmm_replay.Recorder

type profile = {
  drop_p : float;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  max_delay_cycles : int;  (** uniform in [1, max] when a delay fires *)
}

let quiet =
  { drop_p = 0.0; corrupt_p = 0.0; dup_p = 0.0; delay_p = 0.0; max_delay_cycles = 1 }

let check_profile p =
  let bad x = x < 0.0 || x > 1.0 in
  if bad p.drop_p || bad p.corrupt_p || bad p.dup_p || bad p.delay_p then
    invalid_arg "Chaos: probabilities must be in [0,1]";
  if p.max_delay_cycles < 1 then invalid_arg "Chaos: max_delay_cycles < 1"

type counters = {
  mutable passed : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable active : bool;
  mutable profile : profile;
  mutable recorder : Recorder.t option;
  counters : counters;
}

let create ~engine ~rng () =
  {
    engine;
    rng;
    active = false;
    profile = quiet;
    recorder = None;
    counters =
      { passed = 0; dropped = 0; corrupted = 0; duplicated = 0; delayed = 0 };
  }

let set_profile t p =
  check_profile p;
  t.profile <- p

let set_active t flag = t.active <- flag
let set_recorder t r = t.recorder <- Some r

(* [window t ~start ~stop ~profile] arms the profile for the sim-time
   interval [start, stop); both edges are Engine events so the schedule
   is part of the deterministic replay. *)
let window t ~start ~stop ~profile =
  check_profile profile;
  if Int64.compare stop start < 0 then invalid_arg "Chaos.window: stop < start";
  ignore
    (Engine.at t.engine ~time:start (fun () ->
         t.profile <- profile;
         t.active <- true));
  ignore (Engine.at t.engine ~time:stop (fun () -> t.active <- false))

let active t = t.active
let stats t = t.counters

let roll t p = p > 0.0 && Rng.float t.rng 1.0 < p

(* The verdict for one byte, drawn in a FIXED order (drop, corrupt,
   delay, dup) so a given seed always spends the same number of draws
   per byte regardless of which branches fire.  Record/Replay path
   only — the live path below interleaves its rolls with the sink. *)
let draw_verdict t =
  if roll t t.profile.drop_p then Event.Drop
  else
    let mask =
      (* xor with a uniform nonzero mask: guaranteed to differ *)
      if roll t t.profile.corrupt_p then 1 + Rng.int t.rng 255 else 0
    in
    let delay =
      if roll t t.profile.delay_p then 1 + Rng.int t.rng t.profile.max_delay_cycles
      else 0
    in
    let dup = roll t t.profile.dup_p in
    Event.Deliver { mask; dup; delay }

let apply t sink byte verdict =
  match verdict with
  | Event.Drop -> t.counters.dropped <- t.counters.dropped + 1
  | Event.Deliver { mask; dup; delay } ->
    if mask <> 0 then t.counters.corrupted <- t.counters.corrupted + 1;
    let byte = byte lxor mask in
    let deliver () =
      t.counters.passed <- t.counters.passed + 1;
      sink byte;
      if dup then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        sink byte
      end
    in
    if delay > 0 then begin
      t.counters.delayed <- t.counters.delayed + 1;
      ignore (Engine.after t.engine ~delay:(Int64.of_int delay) deliver)
    end
    else deliver ()

(* The historical live path, draw-for-draw identical to the
   pre-recorder wire.  Do NOT reorder these rolls: the dup roll sits
   after [sink byte] on purpose (see the header comment). *)
let wrap_live t sink byte =
  if roll t t.profile.drop_p then t.counters.dropped <- t.counters.dropped + 1
  else begin
    let byte =
      if roll t t.profile.corrupt_p then begin
        t.counters.corrupted <- t.counters.corrupted + 1;
        (* xor with a uniform nonzero mask: guaranteed to differ *)
        byte lxor (1 + Rng.int t.rng 255)
      end
      else byte
    in
    let deliver () =
      t.counters.passed <- t.counters.passed + 1;
      sink byte;
      if roll t t.profile.dup_p then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        sink byte
      end
    in
    if roll t t.profile.delay_p then begin
      t.counters.delayed <- t.counters.delayed + 1;
      let delay = Int64.of_int (1 + Rng.int t.rng t.profile.max_delay_cycles) in
      ignore (Engine.after t.engine ~delay deliver)
    end
    else deliver ()
  end

let wrap ?(source = "chaos") t sink =
  fun byte ->
    if not t.active then begin
      t.counters.passed <- t.counters.passed + 1;
      sink byte
    end
    else
      match t.recorder with
      | Some recorder when Recorder.mode recorder <> Recorder.Off ->
        let verdict =
          Recorder.decide_chaos recorder ~cycle:(Engine.now t.engine) ~source
            ~roll:(fun () -> draw_verdict t)
        in
        apply t sink byte verdict
      | _ -> wrap_live t sink byte
