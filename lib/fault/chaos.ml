(* A lossy wire: wraps a byte sink and, while active, drops, corrupts,
   duplicates or delays each byte independently, drawing every decision
   from a seeded Rng stream so a failing run replays from its seed.

   Delayed bytes are re-submitted through an Engine event, so they can
   land behind later traffic — reordering is deliberately part of the
   menu; to the framing layer it reads as corruption and the ARQ layer
   must recover either way. *)

module Engine = Vmm_sim.Engine
module Rng = Vmm_sim.Rng

type profile = {
  drop_p : float;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  max_delay_cycles : int;  (** uniform in [1, max] when a delay fires *)
}

let quiet = { drop_p = 0.0; corrupt_p = 0.0; dup_p = 0.0; delay_p = 0.0; max_delay_cycles = 1 }

let check_profile p =
  let bad x = x < 0.0 || x > 1.0 in
  if bad p.drop_p || bad p.corrupt_p || bad p.dup_p || bad p.delay_p then
    invalid_arg "Chaos: probabilities must be in [0,1]";
  if p.max_delay_cycles < 1 then invalid_arg "Chaos: max_delay_cycles < 1"

type counters = {
  mutable passed : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mutable active : bool;
  mutable profile : profile;
  counters : counters;
}

let create ~engine ~rng () =
  {
    engine;
    rng;
    active = false;
    profile = quiet;
    counters =
      { passed = 0; dropped = 0; corrupted = 0; duplicated = 0; delayed = 0 };
  }

let set_profile t p =
  check_profile p;
  t.profile <- p

let set_active t flag = t.active <- flag

(* [window t ~start ~stop ~profile] arms the profile for the sim-time
   interval [start, stop); both edges are Engine events so the schedule
   is part of the deterministic replay. *)
let window t ~start ~stop ~profile =
  check_profile profile;
  if Int64.compare stop start < 0 then invalid_arg "Chaos.window: stop < start";
  ignore
    (Engine.at t.engine ~time:start (fun () ->
         t.profile <- profile;
         t.active <- true));
  ignore (Engine.at t.engine ~time:stop (fun () -> t.active <- false))

let active t = t.active
let stats t = t.counters

let roll t p = p > 0.0 && Rng.float t.rng 1.0 < p

let wrap t sink =
  fun byte ->
    if not t.active then begin
      t.counters.passed <- t.counters.passed + 1;
      sink byte
    end
    else if roll t t.profile.drop_p then
      t.counters.dropped <- t.counters.dropped + 1
    else begin
      let byte =
        if roll t t.profile.corrupt_p then begin
          t.counters.corrupted <- t.counters.corrupted + 1;
          (* xor with a uniform nonzero mask: guaranteed to differ *)
          byte lxor (1 + Rng.int t.rng 255)
        end
        else byte
      in
      let deliver () =
        t.counters.passed <- t.counters.passed + 1;
        sink byte;
        if roll t t.profile.dup_p then begin
          t.counters.duplicated <- t.counters.duplicated + 1;
          sink byte
        end
      in
      if roll t t.profile.delay_p then begin
        t.counters.delayed <- t.counters.delayed + 1;
        let delay = Int64.of_int (1 + Rng.int t.rng t.profile.max_delay_cycles) in
        ignore (Engine.after t.engine ~delay deliver)
      end
      else deliver ()
    end
