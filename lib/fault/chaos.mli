(** A lossy wire: wraps a byte sink and, while active, drops, corrupts,
    duplicates or delays each byte independently, drawing every decision
    from a seeded {!Vmm_sim.Rng} stream — a failing run replays from its
    seed.

    Delayed bytes are re-submitted through an Engine event, so they can
    land behind later traffic; reordering is deliberately part of the
    menu.  To the framing layer it reads as corruption, and the ARQ layer
    must recover either way. *)

type profile = {
  drop_p : float;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  max_delay_cycles : int;  (** uniform in [1, max] when a delay fires *)
}

(** All-zero probabilities: a perfect wire. *)
val quiet : profile

type counters = {
  mutable passed : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
}

type t

(** [create ~engine ~rng ()] starts inactive (pass-through). *)
val create : engine:Vmm_sim.Engine.t -> rng:Vmm_sim.Rng.t -> unit -> t

(** [set_profile t p] — @raise Invalid_argument on probabilities outside
    [0,1] or [max_delay_cycles < 1]. *)
val set_profile : t -> profile -> unit

val set_active : t -> bool -> unit

(** [window t ~start ~stop ~profile] arms [profile] for the sim-time
    interval [start, stop); both edges are Engine events, so the schedule
    is part of the deterministic replay. *)
val window : t -> start:int64 -> stop:int64 -> profile:profile -> unit

val active : t -> bool
val stats : t -> counters

(** [wrap t sink] is a sink that applies the chaos (when active) before
    forwarding to [sink]. *)
val wrap : t -> (int -> unit) -> int -> unit
