(** A lossy wire: wraps a byte sink and, while active, drops, corrupts,
    duplicates or delays each byte independently, drawing every decision
    from a seeded {!Vmm_sim.Rng} stream — a failing run replays from its
    seed.  When a recorder is attached ({!set_recorder}), every per-byte
    verdict also routes through {!Vmm_replay.Recorder.decide_chaos}:
    recording logs it; replaying substitutes the scripted verdict for
    the live RNG.

    Delayed bytes are re-submitted through an Engine event, so they can
    land behind later traffic; reordering is deliberately part of the
    menu.  To the framing layer it reads as corruption, and the ARQ layer
    must recover either way. *)

type profile = {
  drop_p : float;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  max_delay_cycles : int;  (** uniform in [1, max] when a delay fires *)
}

(** All-zero probabilities: a perfect wire. *)
val quiet : profile

type counters = {
  mutable passed : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable delayed : int;
}

type t

(** [create ~engine ~rng ()] starts inactive (pass-through). *)
val create : engine:Vmm_sim.Engine.t -> rng:Vmm_sim.Rng.t -> unit -> t

(** [set_profile t p] — @raise Invalid_argument on probabilities outside
    [0,1] or [max_delay_cycles < 1]. *)
val set_profile : t -> profile -> unit

val set_active : t -> bool -> unit

(** [set_recorder t r] routes every per-byte verdict through [r]: logged
    under the wrap's [source] when recording, scripted when replaying. *)
val set_recorder : t -> Vmm_replay.Recorder.t -> unit

(** [window t ~start ~stop ~profile] arms [profile] for the sim-time
    interval [start, stop); both edges are Engine events, so the schedule
    is part of the deterministic replay. *)
val window : t -> start:int64 -> stop:int64 -> profile:profile -> unit

val active : t -> bool
val stats : t -> counters

(** [wrap ?source t sink] is a sink that applies the chaos (when active)
    before forwarding to [sink].  [source] (default ["chaos"]) labels
    this wrap's verdicts in the recorded trace — give each direction its
    own label so replay matches them positionally. *)
val wrap : ?source:string -> t -> (int -> unit) -> int -> unit
