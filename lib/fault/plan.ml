(* A seeded schedule of faults against a running debug setup.

   One Plan owns one Rng stream (split per armed fault so classes do not
   perturb each other) and one Chaos wire.  [arm] translates a fault
   class into concrete Engine events: a link window for link classes, a
   Monitor.inject for adversarial-guest classes, a device hook for the
   rest.  Everything is a function of (seed, schedule), so a failing
   stability run reproduces from the seed printed by the test.

   The plan — not Chaos — owns all scheduling, through cancellable
   Engine handles, so armings can be disarmed before (or, for link
   windows, while) they fire.  Overlap semantics: at most one live
   arming per class (re-arming a class disarms its predecessor —
   last-writer-wins); distinct link classes active at the same time
   merge field-wise (each probability is the max over active windows),
   so a drop window overlapping a dup window yields a wire that does
   both. *)

module Engine = Vmm_sim.Engine
module Rng = Vmm_sim.Rng
module Machine = Vmm_hw.Machine
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Monitor = Core.Monitor

type fault_class =
  | Link_drop
  | Link_corrupt
  | Link_dup
  | Link_delay
  | Guest_wild_jump
  | Guest_wild_store
  | Guest_iht_clobber
  | Guest_ptb_clobber
  | Guest_irq_storm
  | Guest_wedge
  | Scsi_error
  | Nic_stall

let all =
  [
    Link_drop; Link_corrupt; Link_dup; Link_delay;
    Guest_wild_jump; Guest_wild_store; Guest_iht_clobber; Guest_ptb_clobber;
    Guest_irq_storm; Guest_wedge;
    Scsi_error; Nic_stall;
  ]

let name = function
  | Link_drop -> "link-drop"
  | Link_corrupt -> "link-corrupt"
  | Link_dup -> "link-dup"
  | Link_delay -> "link-delay"
  | Guest_wild_jump -> "guest-wild-jump"
  | Guest_wild_store -> "guest-wild-store"
  | Guest_iht_clobber -> "guest-iht-clobber"
  | Guest_ptb_clobber -> "guest-ptb-clobber"
  | Guest_irq_storm -> "guest-irq-storm"
  | Guest_wedge -> "guest-wedge"
  | Scsi_error -> "scsi-error"
  | Nic_stall -> "nic-stall"

let is_link = function
  | Link_drop | Link_corrupt | Link_dup | Link_delay -> true
  | _ -> false

(* One live arming.  [handles] are the pending Engine events (window
   edges, or the single trigger); [spent] flips when the arming can no
   longer have any future effect — fired (one-shots) or past its window
   (link classes). *)
type arming = {
  cls : fault_class;
  profile : Chaos.profile option;  (* Some for link classes *)
  until : int64;
  mutable handles : Vmm_sim.Event_queue.handle list;
  mutable disarmed : bool;
  mutable spent : bool;
}

type t = {
  seed : int64;
  engine : Engine.t;
  rng : Rng.t;
  chaos : Chaos.t;
  mutable armed : int;
  mutable disarms : int;
  mutable armings : arming list;  (* arm order, oldest first *)
}

let create ~seed ~engine =
  let rng = Rng.create ~seed in
  let chaos = Chaos.create ~engine ~rng:(Rng.split rng) () in
  { seed; engine; rng; chaos; armed = 0; disarms = 0; armings = [] }

let seed t = t.seed
let chaos t = t.chaos
let armed t = t.armed
let disarms t = t.disarms

let live a = (not a.disarmed) && not a.spent

let armed_classes t = List.map (fun a -> a.cls) (List.filter live t.armings)

(* Recompute the Chaos wire from the link windows active right now:
   field-wise max over their profiles, active iff any window covers the
   current time.  Called from every window edge and from disarm, so the
   wire always reflects exactly the live armings. *)
let refresh_link t =
  let now = Engine.now t.engine in
  let merge acc p =
    {
      Chaos.drop_p = Float.max acc.Chaos.drop_p p.Chaos.drop_p;
      corrupt_p = Float.max acc.Chaos.corrupt_p p.Chaos.corrupt_p;
      dup_p = Float.max acc.Chaos.dup_p p.Chaos.dup_p;
      delay_p = Float.max acc.Chaos.delay_p p.Chaos.delay_p;
      max_delay_cycles =
        Int.max acc.Chaos.max_delay_cycles p.Chaos.max_delay_cycles;
    }
  in
  let active_profiles =
    List.filter_map
      (fun a ->
        match a.profile with
        | Some p when live a && Int64.compare now a.until < 0 -> Some p
        | _ -> None)
      t.armings
  in
  match active_profiles with
  | [] ->
    Chaos.set_active t.chaos false;
    Chaos.set_profile t.chaos Chaos.quiet
  | ps ->
    Chaos.set_profile t.chaos (List.fold_left merge Chaos.quiet ps);
    Chaos.set_active t.chaos true

(* Moderate per-byte probabilities: high enough that a window over a few
   packet exchanges is all but certain to hit, low enough that the retry
   budget beats the noise. *)
let link_profile rng fault =
  let p () = 0.02 +. Rng.float rng 0.04 in
  match fault with
  | Link_drop -> { Chaos.quiet with Chaos.drop_p = p () }
  | Link_corrupt -> { Chaos.quiet with Chaos.corrupt_p = p () }
  | Link_dup -> { Chaos.quiet with Chaos.dup_p = 0.05 +. Rng.float rng 0.1 }
  | Link_delay ->
    {
      Chaos.quiet with
      Chaos.delay_p = 0.05 +. Rng.float rng 0.1;
      Chaos.max_delay_cycles = 200_000 + Rng.int rng 200_000;
    }
  | _ -> invalid_arg "Plan.link_profile: not a link fault"

let cancel_handles t a =
  List.iter (fun h -> ignore (Engine.cancel t.engine h : bool)) a.handles;
  a.handles <- []

let disarm_arming t a =
  if live a then begin
    a.disarmed <- true;
    cancel_handles t a;
    t.disarms <- t.disarms + 1;
    if is_link a.cls then refresh_link t
  end

let disarm t cls =
  let hit = List.exists (fun a -> a.cls = cls && live a) t.armings in
  List.iter (fun a -> if a.cls = cls then disarm_arming t a) t.armings;
  hit

let arm t ~monitor fault ~at ~until =
  if Int64.compare until at < 0 then invalid_arg "Plan.arm: until < at";
  (* Last-writer-wins: a re-arm supersedes the class's previous live
     arming entirely, rather than stacking with it. *)
  List.iter
    (fun a -> if a.cls = fault && live a then disarm_arming t a)
    t.armings;
  t.armed <- t.armed + 1;
  let rng = Rng.split t.rng in
  let machine = Monitor.machine monitor in
  let profile =
    if is_link fault then Some (link_profile rng fault) else None
  in
  let arming =
    { cls = fault; profile; until; handles = []; disarmed = false; spent = false }
  in
  t.armings <- t.armings @ [ arming ];
  let one_shot f =
    let h =
      Engine.at t.engine ~time:at (fun () ->
          arming.spent <- true;
          arming.handles <- [];
          f ())
    in
    arming.handles <- [ h ]
  in
  let inject f = one_shot (fun () -> Monitor.inject monitor f) in
  match fault with
  | Link_drop | Link_corrupt | Link_dup | Link_delay ->
    let h_start = Engine.at t.engine ~time:at (fun () -> refresh_link t) in
    let h_stop =
      Engine.at t.engine ~time:until (fun () ->
          arming.spent <- true;
          arming.handles <- [];
          refresh_link t)
    in
    arming.handles <- [ h_start; h_stop ]
  | Guest_wild_jump ->
    (* an address far outside the mapped image *)
    inject (Monitor.Wild_jump (0x0F00_0000 lor Rng.int rng 0xFFFF))
  | Guest_wild_store ->
    (* aims at monitor-reserved territory: the shadow tables' home *)
    inject (Monitor.Wild_store (0x0FF0_0000 lor Rng.int rng 0xFFFF))
  | Guest_iht_clobber -> inject Monitor.Iht_clobber
  | Guest_ptb_clobber -> inject Monitor.Ptb_clobber
  | Guest_irq_storm ->
    inject
      (Monitor.Irq_storm
         { lines = 2 + Rng.int rng 6; rounds = 50 + Rng.int rng 200 })
  | Guest_wedge -> inject Monitor.Guest_wedge
  | Scsi_error ->
    one_shot (fun () ->
        Scsi.inject_read_errors (Machine.scsi machine) (1 + Rng.int rng 4))
  | Nic_stall ->
    one_shot (fun () ->
        let cycles = Int64.sub until at in
        Nic.stall_tx (Machine.nic machine) ~cycles)
