(* A seeded schedule of faults against a running debug setup.

   One Plan owns one Rng stream (split per armed fault so classes do not
   perturb each other) and one Chaos wire.  [arm] translates a fault
   class into concrete Engine events: a chaos window for link classes, a
   Monitor.inject for adversarial-guest classes, a device hook for the
   rest.  Everything is a function of (seed, schedule), so a failing
   stability run reproduces from the seed printed by the test. *)

module Engine = Vmm_sim.Engine
module Rng = Vmm_sim.Rng
module Machine = Vmm_hw.Machine
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Monitor = Core.Monitor

type fault_class =
  | Link_drop
  | Link_corrupt
  | Link_dup
  | Link_delay
  | Guest_wild_jump
  | Guest_wild_store
  | Guest_iht_clobber
  | Guest_ptb_clobber
  | Guest_irq_storm
  | Guest_wedge
  | Scsi_error
  | Nic_stall

let all =
  [
    Link_drop; Link_corrupt; Link_dup; Link_delay;
    Guest_wild_jump; Guest_wild_store; Guest_iht_clobber; Guest_ptb_clobber;
    Guest_irq_storm; Guest_wedge;
    Scsi_error; Nic_stall;
  ]

let name = function
  | Link_drop -> "link-drop"
  | Link_corrupt -> "link-corrupt"
  | Link_dup -> "link-dup"
  | Link_delay -> "link-delay"
  | Guest_wild_jump -> "guest-wild-jump"
  | Guest_wild_store -> "guest-wild-store"
  | Guest_iht_clobber -> "guest-iht-clobber"
  | Guest_ptb_clobber -> "guest-ptb-clobber"
  | Guest_irq_storm -> "guest-irq-storm"
  | Guest_wedge -> "guest-wedge"
  | Scsi_error -> "scsi-error"
  | Nic_stall -> "nic-stall"

type t = {
  seed : int64;
  engine : Engine.t;
  rng : Rng.t;
  chaos : Chaos.t;
  mutable armed : int;
}

let create ~seed ~engine =
  let rng = Rng.create ~seed in
  let chaos = Chaos.create ~engine ~rng:(Rng.split rng) () in
  { seed; engine; rng; chaos; armed = 0 }

let seed t = t.seed
let chaos t = t.chaos
let armed t = t.armed

(* Moderate per-byte probabilities: high enough that a window over a few
   packet exchanges is all but certain to hit, low enough that the retry
   budget beats the noise. *)
let link_profile rng fault =
  let p () = 0.02 +. Rng.float rng 0.04 in
  match fault with
  | Link_drop -> { Chaos.quiet with Chaos.drop_p = p () }
  | Link_corrupt -> { Chaos.quiet with Chaos.corrupt_p = p () }
  | Link_dup -> { Chaos.quiet with Chaos.dup_p = 0.05 +. Rng.float rng 0.1 }
  | Link_delay ->
    {
      Chaos.quiet with
      Chaos.delay_p = 0.05 +. Rng.float rng 0.1;
      Chaos.max_delay_cycles = 200_000 + Rng.int rng 200_000;
    }
  | _ -> invalid_arg "Plan.link_profile: not a link fault"

let arm t ~monitor fault ~at ~until =
  if Int64.compare until at < 0 then invalid_arg "Plan.arm: until < at";
  t.armed <- t.armed + 1;
  let rng = Rng.split t.rng in
  let machine = Monitor.machine monitor in
  let inject f = ignore (Engine.at t.engine ~time:at (fun () -> Monitor.inject monitor f)) in
  match fault with
  | Link_drop | Link_corrupt | Link_dup | Link_delay ->
    Chaos.window t.chaos ~start:at ~stop:until ~profile:(link_profile rng fault)
  | Guest_wild_jump ->
    (* an address far outside the mapped image *)
    inject (Monitor.Wild_jump (0x0F00_0000 lor Rng.int rng 0xFFFF))
  | Guest_wild_store ->
    (* aims at monitor-reserved territory: the shadow tables' home *)
    inject (Monitor.Wild_store (0x0FF0_0000 lor Rng.int rng 0xFFFF))
  | Guest_iht_clobber -> inject Monitor.Iht_clobber
  | Guest_ptb_clobber -> inject Monitor.Ptb_clobber
  | Guest_irq_storm ->
    inject
      (Monitor.Irq_storm
         { lines = 2 + Rng.int rng 6; rounds = 50 + Rng.int rng 200 })
  | Guest_wedge -> inject Monitor.Guest_wedge
  | Scsi_error ->
    ignore
      (Engine.at t.engine ~time:at (fun () ->
           Scsi.inject_read_errors (Machine.scsi machine) (1 + Rng.int rng 4)))
  | Nic_stall ->
    ignore
      (Engine.at t.engine ~time:at (fun () ->
           let cycles = Int64.sub until at in
           Nic.stall_tx (Machine.nic machine) ~cycles))
