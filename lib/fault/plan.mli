(** A seeded schedule of faults against a running debug setup.

    One plan owns one {!Vmm_sim.Rng} stream (split per armed fault so
    classes do not perturb each other) and one {!Chaos} wire.  {!arm}
    translates a fault class into concrete Engine events: a link window
    for link classes, a {!Core.Monitor.inject} for adversarial-guest
    classes, a device hook for the rest.  Everything is a function of
    (seed, schedule), so a failing stability run reproduces from the seed
    printed by the test.

    The plan owns all scheduling through cancellable Engine handles, so
    an arming can be withdrawn with {!disarm} before — or, for link
    windows, while — it fires.

    Overlap semantics: at most one live arming per class.  Re-arming a
    class disarms its predecessor first (last-writer-wins).  Distinct
    link classes whose windows overlap merge field-wise — each
    probability is the max over the active windows — so a drop window
    overlapping a dup window yields a wire that does both. *)

type fault_class =
  | Link_drop  (** bytes vanish from the debug wire *)
  | Link_corrupt  (** bytes are bit-flipped in transit *)
  | Link_dup  (** bytes arrive twice *)
  | Link_delay  (** bytes arrive late, possibly reordered *)
  | Guest_wild_jump  (** guest pc teleports outside its image *)
  | Guest_wild_store  (** guest store into monitor-reserved territory *)
  | Guest_iht_clobber  (** guest interrupt-handler table zeroed *)
  | Guest_ptb_clobber  (** guest page-table base loaded with garbage *)
  | Guest_irq_storm  (** a burst of virtual interrupts *)
  | Guest_wedge  (** interrupts off + halt *)
  | Scsi_error  (** disk reads fail at the medium *)
  | Nic_stall  (** the NIC wire refuses to serialize *)

(** Every class, in declaration order — the stability suite iterates
    this. *)
val all : fault_class list

val name : fault_class -> string

type t

val create : seed:int64 -> engine:Vmm_sim.Engine.t -> t
val seed : t -> int64

(** The plan's lossy wire; wrap the session's byte streams with
    [Chaos.wrap (chaos plan)] to expose them to the link classes. *)
val chaos : t -> Chaos.t

(** [arm t ~monitor fault ~at ~until] schedules [fault] (sim-time cycles).
    Link classes are active over [[at, until)]; guest and device classes
    trigger at [at] ([until] additionally sizes the NIC stall).  An
    earlier live arming of the same class is disarmed first. *)
val arm :
  t -> monitor:Core.Monitor.t -> fault_class -> at:int64 -> until:int64 -> unit

(** [disarm t cls] withdraws every live arming of [cls]: pending
    triggers are cancelled and an in-progress link window deactivates
    immediately.  Effects already delivered (an injected fault, a device
    hook that ran) stand.  True when something live was disarmed. *)
val disarm : t -> fault_class -> bool

(** [armed_classes t] — classes with a live arming: armed, not
    disarmed, and not yet spent (fired / window elapsed), in arm
    order. *)
val armed_classes : t -> fault_class list

(** [armed t] — faults scheduled so far (cumulative, disarms included). *)
val armed : t -> int

(** [disarms t] — live armings withdrawn via {!disarm} or superseded by
    a re-arm. *)
val disarms : t -> int
