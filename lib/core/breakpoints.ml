type mode = Patch | Virtual

let mode_of_env () =
  match Sys.getenv_opt "LWVMM_BP" with
  | Some "patch" -> Patch
  | Some _ | None -> Virtual

type t = {
  mode : mode;
  table : (int, string) Hashtbl.t;
  pages : (int, int) Hashtbl.t; (* page base -> armed-site count *)
  observe : (int, unit) Hashtbl.t;
      (* observe-only sites (race witnesses): they keep their page NX in
         virtual mode but never stop the guest — an exec fault there is
         noted and stepped through transparently *)
}

let page_mask = lnot (Vmm_hw.Mmu.page_size - 1)
let page_of addr = addr land page_mask

let create ?mode () =
  let mode = match mode with Some m -> m | None -> mode_of_env () in
  {
    mode;
    table = Hashtbl.create 16;
    pages = Hashtbl.create 8;
    observe = Hashtbl.create 8;
  }

let mode t = t.mode

let page_incr t page =
  Hashtbl.replace t.pages page
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pages page))

let page_decr t page =
  match Hashtbl.find_opt t.pages page with
  | Some 1 -> Hashtbl.remove t.pages page
  | Some n -> Hashtbl.replace t.pages page (n - 1)
  | None -> ()

let add t ~addr ~saved =
  if Hashtbl.mem t.table addr then false
  else begin
    Hashtbl.add t.table addr saved;
    page_incr t (page_of addr);
    true
  end

let remove t ~addr =
  match Hashtbl.find_opt t.table addr with
  | Some saved ->
    Hashtbl.remove t.table addr;
    page_decr t (page_of addr);
    Some saved
  | None -> None

let saved_at t ~addr = Hashtbl.find_opt t.table addr
let mem t ~addr = Hashtbl.mem t.table addr
let count t = Hashtbl.length t.table

let page_armed t ~page =
  Hashtbl.length t.pages > 0 && Hashtbl.mem t.pages (page_of page)

let armed_pages t =
  List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.pages [])

let addresses t =
  List.sort compare (Hashtbl.fold (fun addr _ acc -> addr :: acc) t.table [])

let add_observe t ~addr =
  if Hashtbl.mem t.observe addr then false
  else begin
    Hashtbl.add t.observe addr ();
    page_incr t (page_of addr);
    true
  end

let remove_observe t ~addr =
  if Hashtbl.mem t.observe addr then begin
    Hashtbl.remove t.observe addr;
    page_decr t (page_of addr);
    true
  end
  else false

let observe_mem t ~addr = Hashtbl.mem t.observe addr
let observe_count t = Hashtbl.length t.observe

let observed t =
  List.sort compare (Hashtbl.fold (fun addr () acc -> addr :: acc) t.observe [])

(* Detach clears only the stub's breakpoints: observe sites belong to the
   monitor's race-witness machinery and keep their page refcounts. *)
let clear t =
  let entries = Hashtbl.fold (fun addr saved acc -> (addr, saved) :: acc) t.table [] in
  List.iter (fun (addr, _) -> page_decr t (page_of addr)) entries;
  Hashtbl.reset t.table;
  entries
