module Engine = Vmm_sim.Engine

type config = { period_cycles : int64; max_stalled_periods : int }

let default_config = { period_cycles = 1_000_000L; max_stalled_periods = 5 }

type sample = {
  retired : int64;
  irq_acks : int;
  interruptible : bool;
  halted : bool;
  suspended : bool;
}

type t = {
  config : config;
  engine : Engine.t;
  sample : unit -> sample;
  on_wedge : stalled_periods:int -> unit;
  mutable prev : sample;
  mutable stalled : int;
  mutable running : bool;
  mutable handle : Vmm_sim.Event_queue.handle option;
  (* counters *)
  mutable checks : int;
  mutable stalled_total : int;
  mutable breakins : int;
}

(* The progress predicate.  A period is healthy when the guest acked a
   virtual interrupt, or is legitimately idle (halted with interrupts
   enabled, waiting for one), or retired instructions while it could
   still be interrupted.  Retiring instructions with interrupts masked
   does NOT count: a tight loop behind CLI is indistinguishable from a
   fault loop, and a real kernel never masks for whole watchdog periods.
   Halted with interrupts masked retires nothing and acks nothing — the
   classic hard wedge — and fails every clause. *)
let healthy ~prev ~cur =
  cur.irq_acks > prev.irq_acks
  || (cur.halted && cur.interruptible)
  || (Int64.compare cur.retired prev.retired > 0 && cur.interruptible)

let rec tick t =
  if t.running then begin
    t.checks <- t.checks + 1;
    let cur = t.sample () in
    if cur.suspended then
      (* Stopped by the debugger, crashed, or shut down: not the guest's
         fault that nothing moves.  Don't accumulate stall periods. *)
      t.stalled <- 0
    else if healthy ~prev:t.prev ~cur then t.stalled <- 0
    else begin
      t.stalled <- t.stalled + 1;
      t.stalled_total <- t.stalled_total + 1;
      if t.stalled >= t.config.max_stalled_periods then begin
        t.breakins <- t.breakins + 1;
        t.stalled <- 0;
        t.on_wedge ~stalled_periods:t.config.max_stalled_periods
      end
    end;
    t.prev <- cur;
    schedule t
  end

and schedule t =
  t.handle <-
    Some
      (Engine.after t.engine ~delay:t.config.period_cycles (fun () -> tick t))

let create ?(config = default_config) ~engine ~sample ~on_wedge () =
  if Int64.compare config.period_cycles 1L < 0 then
    invalid_arg "Watchdog.create: period_cycles";
  if config.max_stalled_periods < 1 then
    invalid_arg "Watchdog.create: max_stalled_periods";
  {
    config;
    engine;
    sample;
    on_wedge;
    prev = sample ();
    stalled = 0;
    running = false;
    handle = None;
    checks = 0;
    stalled_total = 0;
    breakins = 0;
  }

let start t =
  if not t.running then begin
    t.running <- true;
    t.prev <- t.sample ();
    t.stalled <- 0;
    schedule t
  end

let stop t =
  t.running <- false;
  (match t.handle with
   | Some h -> ignore (Engine.cancel t.engine h)
   | None -> ());
  t.handle <- None

(* Forget accumulated stall periods — called after a warm restart so the
   new guest gets a full grace window. *)
let note_reset t =
  t.stalled <- 0;
  t.prev <- t.sample ()

let running t = t.running
let stalled_periods t = t.stalled
let checks t = t.checks
let stalled_total t = t.stalled_total
let breakins t = t.breakins
let config t = t.config
