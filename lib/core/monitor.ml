module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Isa = Vmm_hw.Isa
module Mmu = Vmm_hw.Mmu
module Pic = Vmm_hw.Pic
module Pit = Vmm_hw.Pit
module Uart = Vmm_hw.Uart
module Io_bus = Vmm_hw.Io_bus
module Phys_mem = Vmm_hw.Phys_mem
module Costs = Vmm_hw.Costs
module Asm = Vmm_hw.Asm
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Verifier = Vmm_analysis.Verifier
module Races = Vmm_analysis.Races
module Recorder = Vmm_replay.Recorder
module Event = Vmm_replay.Event
module Profiler = Vmm_profile.Profiler
module Flight = Vmm_profile.Flight
module Bundle = Vmm_profile.Bundle

type passthrough = { base : int; count : int }

let default_passthrough =
  [
    { base = Machine.Ports.scsi; count = 7 };
    { base = Machine.Ports.nic; count = 8 };
  ]

type stats = {
  world_switches : int;
  pic_emulations : int;
  pit_emulations : int;
  cpu_emulations : int;
  io_emulations : int;
  shadow_fills : int;
  reflected_irqs : int;
  reflected_faults : int;
  hypercalls : int;
  escalations : int;
  (* stability observability: the debug link and injected-fault story *)
  link_retransmits : int;
  link_bad_checksums : int;
  link_resets : int;
  link_downs : int;
  injected_faults : int;
  (* lifecycle & recovery *)
  wedge_breakins : int;
  crashes : int;
  restarts : int;
}

(* Crash containment: when reflection cannot hand a fault to the guest
   (double fault, unmapped stack, machine check, ...) the guest moves to
   [Crashed] — frozen, quarantined, but fully inspectable.  The report
   keeps the faulting context; [chain] lists the nested delivery
   attempts (vector, pc) that led here, innermost last. *)
type crash_report = {
  cause : string;
  vector : int;
  pc : int;
  chain : (int * int) list;
}

type lifecycle = Healthy | Crashed of crash_report

(* One statically-reported race site under dynamic observation: an
   observe-only virtual breakpoint on the load opens the window, and a
   virtual-interrupt delivery landing inside [(load_pc, store_pc]] with
   the site's vector is a witnessed interleaving. *)
type race_watch = {
  rsite : Races.site;
  mutable rw_windows : int;  (* executions of the load observed *)
  mutable rw_witnessed : int;  (* handler deliveries inside the window *)
}

type t = {
  machine : Machine.t;
  cpu : Cpu.t;
  costs : Costs.t;
  layout : Vm_layout.t;
  shadow : Shadow.t;
  vpic : Pic.t;
  mutable vpit : Pit.t option;
  mutable v_if : bool;
  mutable v_iht : int;
  mutable v_ptb : int;
  mutable v_cpl : int;
  v_stacks : int array;
  mutable v_halted : bool;
  mutable stub : Stub.t option;
  watchpoints : Watchpoints.t;
  samples : (int, int) Hashtbl.t;
      (* pc -> hits; sampled at every reflected timer interrupt *)
  mutable reprotect_pages : int list;
      (* pages to re-protect after a monitor-internal single step.  A
         list, not a slot: one stepped instruction can need several
         pages opened at once (e.g. a fetch from a breakpoint-armed page
         storing to a watched page), and losing one would leave it
         permanently unprotected *)
  mutable mon_step_only : bool;
      (* the trap flag was set by the monitor, not the stub *)
  mutable watch_resume : int option;
      (* page to step across when the stub resumes after a watch hit *)
  mutable vbp_pass : int option;
      (* one-shot pass for virtual breakpoints: the next exec fault
         landing exactly on this pc is stepped through, not reported —
         how resuming off a hit makes progress while the site stays
         armed *)
  console_buf : Buffer.t;
  mutable shutdown : bool;
  (* load-time static verification *)
  passthrough : passthrough list;
  mutable verify_on_boot : bool;
  mutable boot_image : (Asm.program * int) option;
  mutable last_verify : Verifier.report option;
  mutable c_verifies : int;
  (* dynamic cross-validation of statically-reported races *)
  mutable race_witness : bool;
  mutable race_sites : race_watch array;
  mutable c_race_windows : int;
  mutable c_race_witnessed : int;
  (* lifecycle & recovery *)
  mutable lifecycle : lifecycle;
  mutable snapshot : Snapshot.t option;
  (* reverse debugging: ring of periodic mid-run checkpoints, newest
     first *)
  mutable checkpoints : Snapshot.Full.t list;
  mutable checkpoint_keep : int;
  mutable checkpoint_gen : int;
      (* bumping it orphans any armed periodic capture event *)
  mutable c_checkpoints : int;
  mutable watchdog : Watchdog.t option;
  mutable last_wedge : (int * int) option;
      (* (pc, stalled periods) of the most recent watchdog break-in *)
  (* counters *)
  mutable c_world : int;
  mutable c_pic : int;
  mutable c_pit : int;
  mutable c_cpu : int;
  mutable c_io : int;
  mutable c_irq : int;
  mutable c_fault : int;
  mutable c_hyper : int;
  mutable c_escal : int;
  mutable c_vbp_faults : int;
  mutable c_vbp_hits : int;
  mutable c_vbp_steps : int;
  mutable c_inject : int;
  mutable c_crashes : int;
  mutable c_restarts : int;
  (* crash bundles *)
  mutable c_bundles : int;
  mutable last_bundle : string option;
      (* most recent crash/wedge bundle; sticky across warm restarts so
         the post-mortem stays retrievable over [qR], cleared on a fresh
         boot *)
  mutable capture_bundle : cause:string -> unit;
      (* late bound in [install]: the fault path that triggers a capture
         is defined long before the snapshot/report helpers the bundle
         composer needs *)
}

let real_ring_of_vring vring = if vring land 3 = 3 then 3 else 1

let get_stub t =
  match t.stub with Some s -> s | None -> assert false

let get_vpit t =
  match t.vpit with Some p -> p | None -> assert false

let charge t cycles = Cpu.charge t.cpu cycles

let trace t severity message =
  Vmm_sim.Trace.emit
    (Machine.trace t.machine)
    ~time:(Vmm_sim.Engine.now (Machine.engine t.machine))
    ~component:"monitor" ~severity message

(* Record/replay tap: the monitor reports its own nondeterminism sources
   (virtual-IRQ injections, crashes, wedge break-ins, checkpoints) into
   the machine-wide recorder alongside the device taps — and into the
   always-on flight ring, so a crash bundle shows them even when nothing
   was recording. *)
let emit_event t source payload =
  let cycle = Vmm_sim.Engine.now (Machine.engine t.machine) in
  Recorder.emit (Machine.recorder t.machine) ~cycle ~source payload;
  Flight.note (Machine.flight t.machine) ~cycle ~kind:source
    (Format.asprintf "%a" Event.pp_payload payload)

(* Deterministic monitor activity (trap reflection, emulated port I/O,
   decoded protocol frames) is not record/replay material but belongs in
   the flight ring's last-moments view. *)
let flight_note t kind detail =
  Flight.note (Machine.flight t.machine)
    ~cycle:(Vmm_sim.Engine.now (Machine.engine t.machine))
    ~kind detail

let world_switch t =
  t.c_world <- t.c_world + 1;
  charge t t.costs.Costs.world_switch

(* Cycle attribution: every [charge] books to the load's current
   category, so pinning a category for the duration of a handler is all
   the bookkeeping attribution needs — nesting restores the outer
   category, and per-category totals keep summing to the busy total by
   construction.  When the machine tracer is enabled the same scope also
   appears as a Perfetto span. *)
let span t cat name f =
  let body () =
    Vmm_sim.Stats.with_category (Machine.load t.machine) cat f
  in
  let tracer = Machine.tracer t.machine in
  if Vmm_obs.Tracer.enabled tracer then
    Vmm_obs.Tracer.with_span tracer ~cat name body
  else body ()

(* Category only, no span: for closures fired on every stub byte, where
   a trace event apiece would drown the timeline. *)
let with_cat t cat f =
  Vmm_sim.Stats.with_category (Machine.load t.machine) cat f

(* -- Guest-virtual memory access through the guest's own tables -- *)

let translate_guest t vaddr =
  let vaddr = vaddr land 0xFFFFFFFF in
  if t.v_ptb = 0 then
    if Vm_layout.guest_owns t.layout vaddr then Some vaddr else None
  else
    match Mmu.probe (Machine.mem t.machine) ~ptb:t.v_ptb vaddr with
    | Some pte ->
      let frame = Mmu.frame_of pte in
      if Vm_layout.guest_owns t.layout frame then
        Some (frame lor (vaddr land 0xFFF))
      else None
    | None -> None

let guest_read t ~addr ~len =
  if len < 0 then None
  else begin
    let buf = Bytes.create len in
    let rec go pos =
      if pos = len then Some (Bytes.to_string buf)
      else
        let vaddr = addr + pos in
        let room = min (len - pos) (Mmu.page_size - (vaddr land 0xFFF)) in
        match translate_guest t vaddr with
        | Some paddr ->
          Phys_mem.blit_to_bytes (Machine.mem t.machine) ~addr:paddr buf
            ~off:pos ~len:room;
          go (pos + room)
        | None -> None
    in
    go 0
  end

let guest_write t ~addr ~data =
  let len = String.length data in
  let rec go pos =
    if pos = len then true
    else
      let vaddr = addr + pos in
      let room = min (len - pos) (Mmu.page_size - (vaddr land 0xFFF)) in
      match translate_guest t vaddr with
      | Some paddr ->
        Phys_mem.load_bytes (Machine.mem t.machine) ~addr:paddr
          (Bytes.of_string (String.sub data pos room));
        go (pos + room)
      | None -> false
  in
  go 0

let guest_read_u32 t vaddr =
  match guest_read t ~addr:vaddr ~len:4 with
  | Some s ->
    Some
      (Char.code s.[0]
      lor (Char.code s.[1] lsl 8)
      lor (Char.code s.[2] lsl 16)
      lor (Char.code s.[3] lsl 24))
  | None -> None

let guest_write_u32 t vaddr v =
  let s =
    String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))
  in
  guest_write t ~addr:vaddr ~data:s

(* -- Guest-visible flags -- *)

let guest_flags_word t =
  Cpu.flags_word t.cpu land 0x7
  lor (if t.v_if then 0x200 else 0)
  lor (t.v_cpl lsl 12)

let set_guest_flags t w =
  (* Restore condition codes into the real flags; keep real IF on (the
     monitor owns it) and the trap flag under stub control. *)
  let real = Cpu.flags_word t.cpu in
  let real = real land lnot 0x7 lor (w land 0x7) in
  Cpu.set_flags_word t.cpu real;
  Cpu.set_interrupts_enabled t.cpu true;
  t.v_if <- w land 0x200 <> 0;
  t.v_cpl <- (w lsr 12) land 3;
  Cpu.set_cpl t.cpu (real_ring_of_vring t.v_cpl)

(* -- Escalation: the guest is beyond saving; keep the debugger alive --

   Classify the failure, quarantine the guest in [Crashed] (first report
   wins — later faults of an already-dead guest add no information) and
   hand control to the stub.  The stub stays fully responsive: registers,
   memory and the [qW] report remain readable; only resume is refused
   until a warm restart. *)

let escalate ?(cause = "unrecoverable_fault") ?(chain = []) t ~vector ~pc =
  t.c_escal <- t.c_escal + 1;
  (match t.lifecycle with
   | Crashed _ -> ()
   | Healthy ->
     t.c_crashes <- t.c_crashes + 1;
     t.lifecycle <- Crashed { cause; vector; pc; chain };
     emit_event t "monitor" (Event.Crash { vector; pc });
     (* Capture the post-mortem now, while the flight ring still ends on
        the fatal event: later host-side debug traffic must not dilute
        the last moments. *)
     t.capture_bundle ~cause);
  trace t Vmm_sim.Trace.Error
    (Printf.sprintf
       "guest unrecoverable (%s): vector %d at 0x%x; stopped for debug" cause
       vector pc);
  Stub.on_guest_fault (get_stub t) ~vector ~pc

(* -- Reflection into the guest's virtual interrupt table -- *)

let read_guest_gate t vector =
  if vector < 0 || vector >= 64 then None
  else
    let base = t.v_iht + (8 * vector) in
    match (guest_read_u32 t base, guest_read_u32 t (base + 4)) with
    | Some handler, Some info when info land 1 <> 0 ->
      Some (handler, (info lsr 1) land 3, (info lsr 3) land 3)
    | _ -> None

let rec reflect ?(check_dpl = false) ?(chain = []) t ~vector ~error ~return_pc
    ~depth =
  span t "irq" "reflect" @@ fun () ->
  t.c_fault <- t.c_fault + 1;
  flight_note t "monitor.reflect"
    (Printf.sprintf "vector=%d pc=0x%x depth=%d" vector return_pc depth);
  (* [chain] records each delivery attempt (vector, pc), innermost last,
     so a crash report shows the whole nested-exception cascade. *)
  let chain = chain @ [ (vector, return_pc) ] in
  match read_guest_gate t vector with
  | None ->
    if depth > 0 || vector = Isa.vec_protection then
      (* Guest double/triple fault: stop it, tell the debugger. *)
      escalate t
        ~cause:(if depth > 0 then "double_fault" else "no_fault_gate")
        ~chain ~vector ~pc:return_pc
    else
      reflect ~chain t ~vector:Isa.vec_protection ~error:vector ~return_pc
        ~depth:(depth + 1)
  | Some (_, _, dpl) when check_dpl && dpl < t.v_cpl ->
    (* Software interrupt through a gate the caller may not use: #GP,
       like the hardware path. *)
    reflect ~chain t ~vector:Isa.vec_protection ~error:vector ~return_pc
      ~depth:(depth + 1)
  | Some (handler, target_vring, _dpl) ->
    let sp0 =
      if target_vring < t.v_cpl then t.v_stacks.(target_vring)
      else Cpu.read_reg t.cpu Isa.sp
    in
    let flags = guest_flags_word t in
    let push sp v = if guest_write_u32 t (sp - 4) v then Some (sp - 4) else None in
    let frame =
      match push sp0 (Cpu.read_reg t.cpu Isa.sp) with
      | Some sp1 ->
        (match push sp1 flags with
         | Some sp2 ->
           (match push sp2 (return_pc land 0xFFFFFFFF) with
            | Some sp3 -> push sp3 (error land 0xFFFFFFFF)
            | None -> None)
         | None -> None)
      | None -> None
    in
    (match frame with
     | Some sp4 ->
       Cpu.write_reg t.cpu Isa.sp sp4;
       t.v_cpl <- target_vring;
       Cpu.set_cpl t.cpu (real_ring_of_vring target_vring);
       t.v_if <- false;
       Cpu.set_pc t.cpu handler;
       charge t t.costs.Costs.interrupt_delivery
     | None ->
       (* The guest's stack is unmapped: unrecoverable from its side. *)
       escalate t ~cause:"stack_unmapped" ~chain ~vector ~pc:return_pc)

(* -- Virtual interrupt delivery -- *)

let kick t =
  (* Deliver a pending virtual interrupt when the guest can take it.  The
     trap-flag check defers delivery across a debugger single-step. *)
  if
    t.v_if
    && (not (Cpu.stopped t.cpu))
    && (not (Cpu.trap_flag t.cpu))
    && Pic.pending t.vpic
  then
    match Pic.ack t.vpic with
    | Some vvector ->
      t.c_irq <- t.c_irq + 1;
      (* interrupt-driven pc sampling: the timer tick observes where the
         guest was about to resume *)
      if vvector = Pic.vector_base t.vpic + Machine.Irq.timer then begin
        let pc = Cpu.pc t.cpu in
        Hashtbl.replace t.samples pc
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.samples pc))
      end;
      (* Race-witness cross-validation: this delivery preempts the
         mainline at [pc].  If that pc lies strictly inside a sampled
         RMW window and the vector matches the static report, the
         handler really is interleaving the read-modify-write — upgrade
         the diagnostic from "static" to "witnessed".  Flight-ring only:
         the replay stream must not change with witnessing on. *)
      if Array.length t.race_sites > 0 then begin
        let pc = Cpu.pc t.cpu in
        Array.iter
          (fun w ->
            let s = w.rsite in
            if
              s.Races.vector = vvector
              && s.Races.load_pc < pc
              && pc <= s.Races.store_pc
            then begin
              w.rw_witnessed <- w.rw_witnessed + 1;
              t.c_race_witnessed <- t.c_race_witnessed + 1;
              flight_note t "race.witness"
                (Printf.sprintf
                   "vector %d interleaved rmw 0x%x..0x%x at pc 0x%x" vvector
                   s.Races.load_pc s.Races.store_pc pc)
            end)
          t.race_sites
      end;
      if t.v_halted then begin
        t.v_halted <- false;
        Cpu.set_halted t.cpu false
      end;
      reflect t ~vector:vvector ~error:0 ~return_pc:(Cpu.pc t.cpu) ~depth:0
    | None -> ()

let virtual_irq t line =
  emit_event t "monitor.virq" (Event.Irq_inject { line });
  Pic.raise_irq t.vpic line;
  if t.v_halted && t.v_if && Pic.pending t.vpic then begin
    t.v_halted <- false;
    Cpu.set_halted t.cpu false
  end;
  kick t

(* -- Privileged-instruction emulation (guest kernel only) -- *)

let emulate_lptb t value =
  t.v_ptb <- value;
  Shadow.clear t.shadow;
  Cpu.set_ptb t.cpu (Shadow.root t.shadow);
  charge t t.costs.Costs.shadow_pt_sync

let emulate_privileged t instr pc =
  span t "mon_cpu" "emulate_priv" @@ fun () ->
  t.c_cpu <- t.c_cpu + 1;
  world_switch t;
  charge t t.costs.Costs.emulate_cpu;
  let next = (pc + Isa.width) land 0xFFFFFFFF in
  let reg r = Cpu.read_reg t.cpu r in
  match instr with
  | Isa.Sti ->
    t.v_if <- true;
    Cpu.set_pc t.cpu next;
    kick t
  | Isa.Cli ->
    t.v_if <- false;
    Cpu.set_pc t.cpu next
  | Isa.Hlt ->
    t.v_halted <- true;
    Cpu.set_pc t.cpu next;
    if t.v_if && Pic.pending t.vpic then kick t
    else Cpu.set_halted t.cpu true
  | Isa.Iret ->
    let sp = Cpu.read_reg t.cpu Isa.sp in
    (match
       ( guest_read_u32 t sp,
         guest_read_u32 t (sp + 4),
         guest_read_u32 t (sp + 8),
         guest_read_u32 t (sp + 12) )
     with
     | Some _error, Some return_pc, Some flags, Some old_sp ->
       set_guest_flags t flags;
       Cpu.write_reg t.cpu Isa.sp old_sp;
       Cpu.set_pc t.cpu return_pc;
       kick t
     | _ -> escalate t ~cause:"bad_iret_frame" ~vector:Isa.vec_protection ~pc)
  | Isa.Liht r ->
    t.v_iht <- reg r;
    Cpu.set_pc t.cpu next
  | Isa.Lptb r ->
    emulate_lptb t (reg r);
    Cpu.set_pc t.cpu next
  | Isa.Lstk (ring, r) ->
    t.v_stacks.(ring land 3) <- reg r;
    Cpu.set_pc t.cpu next
  | Isa.Tlbflush ->
    Shadow.clear t.shadow;
    Cpu.set_ptb t.cpu (Shadow.root t.shadow);
    Cpu.set_pc t.cpu next
  | Isa.Nop | Isa.Movi _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _ | Isa.Sub _
  | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _ | Isa.Shl _ | Isa.Shr _ | Isa.Mul _
  | Isa.Cmp _ | Isa.Cmpi _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _ | Isa.Stb _
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _ | Isa.Jb _
  | Isa.Jae _ | Isa.Jr _ | Isa.Call _ | Isa.Ret | Isa.Push _ | Isa.Pop _
  | Isa.In_ _ | Isa.Ini _ | Isa.Out _ | Isa.Outi _ | Isa.Int_ _ | Isa.Copy _
  | Isa.Csum _ | Isa.Rdtsc _ | Isa.Vmcall _ | Isa.Brk ->
    (* Not privileged; cannot reach here via a privilege fault. *)
    escalate t ~vector:Isa.vec_protection ~pc

(* -- Emulated port I/O (the paper's "indirect access" resources) -- *)

let pic_base = Machine.Ports.pic
let pit_base = Machine.Ports.pit
let uart_base = Machine.Ports.uart

let emulated_in t port =
  if port >= pic_base && port < pic_base + 3 then begin
    t.c_pic <- t.c_pic + 1;
    span t "mon_pic" "vpic_in" @@ fun () ->
    charge t t.costs.Costs.emulate_pic;
    Pic.io_read t.vpic (port - pic_base)
  end
  else if port >= pit_base && port < pit_base + 3 then begin
    t.c_pit <- t.c_pit + 1;
    span t "mon_pit" "vpit_in" @@ fun () ->
    charge t t.costs.Costs.emulate_pit;
    Pit.io_read (get_vpit t) (port - pit_base)
  end
  else if port >= uart_base && port < uart_base + 3 then begin
    charge t t.costs.Costs.emulate_cpu;
    (* The real UART belongs to the monitor; the guest sees an always-idle
       virtual one. *)
    if port = uart_base + 1 then 2 else 0
  end
  else begin
    (* Any other trapped port is forwarded to the real bus.  The paper's
       configuration passes data devices through, so this path only
       carries stray accesses — and the E7 ablation, which deliberately
       routes device traffic here to price monitor-mediated access. *)
    charge t t.costs.Costs.emulate_cpu;
    Io_bus.read (Machine.bus t.machine) port
  end

let emulated_out t port value =
  if port >= pic_base && port < pic_base + 3 then begin
    t.c_pic <- t.c_pic + 1;
    span t "mon_pic" "vpic_out" @@ fun () ->
    charge t t.costs.Costs.emulate_pic;
    Pic.io_write t.vpic (port - pic_base) value;
    kick t
  end
  else if port >= pit_base && port < pit_base + 3 then begin
    t.c_pit <- t.c_pit + 1;
    span t "mon_pit" "vpit_out" @@ fun () ->
    charge t t.costs.Costs.emulate_pit;
    Pit.io_write (get_vpit t) (port - pit_base) value
  end
  else if port >= uart_base && port < uart_base + 3 then begin
    charge t t.costs.Costs.emulate_cpu;
    if port = uart_base then Buffer.add_char t.console_buf (Char.chr (value land 0xFF))
  end
  else begin
    charge t t.costs.Costs.emulate_cpu;
    Io_bus.write (Machine.bus t.machine) port value
  end

let emulate_io t port pc =
  span t "mon_io" "emulate_io" @@ fun () ->
  t.c_io <- t.c_io + 1;
  flight_note t "monitor.io" (Printf.sprintf "port=0x%x pc=0x%x" port pc);
  world_switch t;
  let next = (pc + Isa.width) land 0xFFFFFFFF in
  match Cpu.read_instr t.cpu pc with
  | Isa.In_ (rd, _) | Isa.Ini (rd, _) ->
    Cpu.write_reg t.cpu rd (emulated_in t port);
    Cpu.set_pc t.cpu next
  | Isa.Out (_, rs) ->
    emulated_out t port (Cpu.read_reg t.cpu rs);
    Cpu.set_pc t.cpu next
  | Isa.Outi (_, rs) ->
    emulated_out t port (Cpu.read_reg t.cpu rs);
    Cpu.set_pc t.cpu next
  | Isa.Nop | Isa.Hlt | Isa.Movi _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _
  | Isa.Sub _ | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _ | Isa.Shl _ | Isa.Shr _
  | Isa.Mul _ | Isa.Cmp _ | Isa.Cmpi _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _
  | Isa.Stb _ | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _
  | Isa.Jb _ | Isa.Jae _ | Isa.Jr _ | Isa.Call _ | Isa.Ret | Isa.Push _
  | Isa.Pop _ | Isa.Int_ _ | Isa.Iret | Isa.Sti | Isa.Cli | Isa.Liht _
  | Isa.Lptb _ | Isa.Lstk _ | Isa.Tlbflush | Isa.Copy _ | Isa.Csum _
  | Isa.Rdtsc _ | Isa.Vmcall _ | Isa.Brk ->
    escalate t ~vector:Isa.vec_protection ~pc

(* -- Shadow page-fault handling -- *)

(* Virtual breakpoints: does the (virtual) page holding [addr] carry an
   armed site?  Consulted on every shadow fill — the empty-table case is
   one hash-length check, so the no-breakpoints hot path stays flat. *)
let vbp_page_armed t addr =
  match t.stub with
  | Some stub ->
    let bps = Stub.breakpoints stub in
    Breakpoints.mode bps = Breakpoints.Virtual
    && Breakpoints.page_armed bps ~page:addr
  | None -> false

let fill_shadow t ~vaddr ~frame ~writable ~user =
  (* Watched pages stay read-only in the shadow so every store traps. *)
  let writable =
    writable && not (Watchpoints.page_watched t.watchpoints (vaddr land lnot 0xFFF))
  in
  (* Pages with armed virtual breakpoints stay readable/writable (guest
     data reads see pristine text) but no-execute: every fetch traps. *)
  let nx = vbp_page_armed t vaddr in
  (try Shadow.map t.shadow ~vaddr ~frame ~writable ~user ~nx
   with Shadow.Out_of_shadow_memory ->
     Shadow.clear t.shadow;
     Cpu.set_ptb t.cpu (Shadow.root t.shadow);
     Shadow.map t.shadow ~vaddr ~frame ~writable ~user ~nx);
  Cpu.flush_tlb t.cpu;
  charge t t.costs.Costs.shadow_pt_sync

(* Replay a store on a protected page: map it writable (bypassing the
   watch), single-step the faulting instruction, and re-protect on the
   step trap.  [mon_step_only] distinguishes the monitor's own trap-flag
   use from a host-requested single step happening at the same time. *)
let unprotect_for_step ?(for_write = false) t page =
  (* Only the first unprotect of a step window may claim the trap flag:
     a later one in the same window would read the flag the monitor just
     set and wrongly conclude the stub asked for the step. *)
  if t.reprotect_pages = [] then
    t.mon_step_only <- not (Cpu.trap_flag t.cpu);
  let frame, writable, user =
    if t.v_ptb = 0 then (page, true, true)
    else
      match Mmu.probe (Machine.mem t.machine) ~ptb:t.v_ptb page with
      | Some pte -> (Mmu.frame_of pte, Mmu.is_writable pte, Mmu.is_user pte)
      | None -> (page, true, true)
  in
  (* A virtual-breakpoint step-through only needs the page executable;
     lifting a watchpoint's write protection at the same time would let
     watched stores on a shared page slip through unreported.  Only the
     watch machinery itself ([for_write]) may bypass its protection. *)
  let writable =
    writable && (for_write || not (Watchpoints.page_watched t.watchpoints page))
  in
  (try Shadow.map t.shadow ~vaddr:page ~frame ~writable ~user
   with Shadow.Out_of_shadow_memory ->
     Shadow.clear t.shadow;
     Cpu.set_ptb t.cpu (Shadow.root t.shadow);
     Shadow.map t.shadow ~vaddr:page ~frame ~writable ~user);
  Cpu.flush_tlb t.cpu;
  Cpu.set_trap_flag t.cpu true;
  if not (List.mem page t.reprotect_pages) then
    t.reprotect_pages <- page :: t.reprotect_pages

let reprotect_after_step t pages =
  List.iter (fun page -> Shadow.unmap t.shadow ~vaddr:page) pages;
  Cpu.flush_tlb t.cpu;
  t.reprotect_pages <- []

(* An exec fault on a page carrying armed virtual breakpoints.  Hit
   detection keys on [pc] — the faulting instruction's address — not the
   fault vaddr, so an instruction straddling into an armed page does not
   masquerade as a hit on its tail byte.  Anything that is not a hit
   (unrelated code sharing the hot page, a one-shot pass after resume)
   is transparently stepped through: map the page executable for exactly
   one instruction, then the step trap re-protects it.  The pass is
   consumed by the first vbp exec fault regardless of match, so a stale
   pass can never swallow a later legitimate hit. *)
let handle_vbp_fault t ~vaddr ~pc =
  t.c_vbp_faults <- t.c_vbp_faults + 1;
  let stub = get_stub t in
  let pass = t.vbp_pass in
  t.vbp_pass <- None;
  if Breakpoints.mem (Stub.breakpoints stub) ~addr:pc && pass <> Some pc then begin
    t.c_vbp_hits <- t.c_vbp_hits + 1;
    trace t Vmm_sim.Trace.Info
      (Printf.sprintf "virtual breakpoint hit at pc 0x%x" pc);
    emit_event t "monitor.vbp" (Event.Vbp_hit { pc });
    (* Same stop the BRK trap would have produced: Break at the site's
       pc, before the instruction executes — wire-identical to patch
       mode.  (During an [rs] replay the stub grants itself a pass and
       sets the trap flag instead of stopping; the retried fetch then
       takes the step-through path below.) *)
    Stub.on_breakpoint stub ~pc
  end
  else begin
    (* Observe-only race-witness site: count the open window, note it in
       the flight ring, and fall through to the transparent step — the
       guest never stops and the replay stream is untouched. *)
    if Breakpoints.observe_mem (Stub.breakpoints stub) ~addr:pc then begin
      Array.iter
        (fun w ->
          if w.rsite.Races.load_pc = pc then begin
            w.rw_windows <- w.rw_windows + 1;
            t.c_race_windows <- t.c_race_windows + 1
          end)
        t.race_sites;
      flight_note t "race.window"
        (Printf.sprintf "rmw window opened at 0x%x" pc)
    end;
    t.c_vbp_steps <- t.c_vbp_steps + 1;
    unprotect_for_step t (vaddr land lnot 0xFFF)
  end

let handle_page_fault t (f : Mmu.fault) pc =
  span t "mon_shadow" "page_fault" @@ fun () ->
  world_switch t;
  let vaddr = f.Mmu.vaddr in
  let page = vaddr land lnot 0xFFF in
  if t.v_ptb = 0 then begin
    if
      Vm_layout.guest_owns t.layout vaddr
      && f.Mmu.access = Mmu.Exec
      && vbp_page_armed t vaddr
    then handle_vbp_fault t ~vaddr ~pc
    else if
      Vm_layout.guest_owns t.layout vaddr
      && f.Mmu.access = Mmu.Write
      && Watchpoints.page_watched t.watchpoints page
    then begin
      match Watchpoints.hit t.watchpoints vaddr with
      | Some _ ->
        t.watch_resume <- Some page;
        Stub.on_watchpoint (get_stub t) ~pc ~addr:vaddr
      | None -> unprotect_for_step ~for_write:true t page
    end
    else if Vm_layout.guest_owns t.layout vaddr then
      fill_shadow t ~vaddr ~frame:page ~writable:true ~user:true
      (* pc unchanged: the faulting access retries against the new entry *)
    else reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0
  end
  else
    match Mmu.probe (Machine.mem t.machine) ~ptb:t.v_ptb vaddr with
    | Some pte ->
      let frame = Mmu.frame_of pte in
      let writable = Mmu.is_writable pte and user = Mmu.is_user pte in
      let guest_allows =
        Vm_layout.guest_owns t.layout frame
        && (match f.Mmu.access with Mmu.Write -> writable | Mmu.Read | Mmu.Exec -> true)
        && ((t.v_cpl < 3) || user)
      in
      let page = vaddr land lnot 0xFFF in
      if guest_allows && f.Mmu.access = Mmu.Exec && vbp_page_armed t vaddr
      then handle_vbp_fault t ~vaddr ~pc
      else if
        guest_allows && f.Mmu.access = Mmu.Write
        && Watchpoints.page_watched t.watchpoints page
      then begin
        match Watchpoints.hit t.watchpoints vaddr with
        | Some _ ->
          t.watch_resume <- Some page;
          trace t Vmm_sim.Trace.Info
            (Printf.sprintf "watchpoint hit: store to 0x%x at pc 0x%x" vaddr pc);
          Stub.on_watchpoint (get_stub t) ~pc ~addr:vaddr
        | None -> unprotect_for_step ~for_write:true t page
      end
      else if guest_allows then fill_shadow t ~vaddr ~frame ~writable ~user
      else
        reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0
    | None ->
      reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0

(* -- Hypercalls -- *)

let handle_hypercall t imm =
  span t "mon_cpu" "hypercall" @@ fun () ->
  t.c_hyper <- t.c_hyper + 1;
  world_switch t;
  charge t t.costs.Costs.emulate_cpu;
  match imm with
  | 0 ->
    Buffer.add_char t.console_buf
      (Char.chr (Cpu.read_reg t.cpu 1 land 0xFF))
  | 1 -> Cpu.write_reg t.cpu 1 0x0100 (* monitor version 1.0 *)
  | 2 ->
    t.shutdown <- true;
    t.v_halted <- true;
    trace t Vmm_sim.Trace.Info "guest requested shutdown";
    Cpu.set_halted t.cpu true
  | _ -> ()

(* -- Fault injection (the robustness harness's guest-misbehaviour menu) --

   Each case drives an existing monitor path exactly as a hostile or
   broken guest would: the point of injecting here rather than patching
   guest code is that the schedule is deterministic in sim time, so a
   seeded run reproduces byte-for-byte. *)

type injected_fault =
  | Wild_jump of int
      (** guest jumps into unmapped / monitor-reserved space *)
  | Wild_store of int
      (** guest stores into a monitor-reserved physical range *)
  | Iht_clobber  (** guest overwrites its own interrupt-handler table *)
  | Ptb_clobber  (** guest loads a wild page-table base *)
  | Irq_storm of { lines : int; rounds : int }
      (** interrupt storm across PIC lines, including unhandled ones *)
  | Guest_wedge  (** guest halts with interrupts masked: dead CPU *)

let pp_injected_fault fmt = function
  | Wild_jump addr -> Format.fprintf fmt "wild jump to 0x%x" addr
  | Wild_store addr -> Format.fprintf fmt "wild store to 0x%x" addr
  | Iht_clobber -> Format.pp_print_string fmt "IHT clobbered"
  | Ptb_clobber -> Format.pp_print_string fmt "PTB clobbered"
  | Irq_storm { lines; rounds } ->
    Format.fprintf fmt "IRQ storm (%d lines x %d rounds)" lines rounds
  | Guest_wedge -> Format.pp_print_string fmt "guest wedged (halt, IF=0)"

let inject t fault =
  t.c_inject <- t.c_inject + 1;
  trace t Vmm_sim.Trace.Warn
    (Format.asprintf "injected fault: %a" pp_injected_fault fault);
  match fault with
  | Wild_jump addr -> Cpu.set_pc t.cpu addr
  | Wild_store vaddr ->
    (* The paper's canonical bug: a store lands in monitor-owned memory.
       The MMU would refuse it, so enter through the page-fault path. *)
    handle_page_fault t
      { Mmu.vaddr; access = Mmu.Write; not_present = false }
      (Cpu.pc t.cpu)
  | Iht_clobber ->
    ignore (guest_write t ~addr:t.v_iht ~data:(String.make (64 * 8) '\000'))
  | Ptb_clobber -> emulate_lptb t 0
  | Irq_storm { lines; rounds } ->
    for _ = 1 to rounds do
      for line = 0 to lines - 1 do
        virtual_irq t (line land 7)
      done
    done
  | Guest_wedge ->
    t.v_if <- false;
    t.v_halted <- true;
    Cpu.set_halted t.cpu true

(* -- Real interrupt routing -- *)

let drain_uart t =
  span t "stub" "drain_uart" @@ fun () ->
  let uart = Machine.uart t.machine in
  let stub = get_stub t in
  let rec go () =
    if Uart.io_read uart 1 land 1 <> 0 then begin
      let byte = Uart.io_read uart 0 in
      charge t t.costs.Costs.port_io;
      Stub.on_rx_byte stub byte;
      go ()
    end
  in
  go ()

let handle_real_irq t vector =
  span t "irq" "real_irq" @@ fun () ->
  world_switch t;
  let line = vector - Pic.vector_base (Machine.pic t.machine) in
  (* The monitor owns the physical controller: retire the interrupt now. *)
  Pic.io_write (Machine.pic t.machine) 0 0x20;
  if line = Machine.Irq.uart then drain_uart t
  else begin
    t.c_pic <- t.c_pic + 1;
    charge t t.costs.Costs.emulate_pic;
    virtual_irq t line
  end

(* -- The hook -- *)

let handle_fault t kind pc =
  match kind with
  | Cpu.Gp (Cpu.Privileged_instruction instr) ->
    if t.v_cpl = 0 then emulate_privileged t instr pc
    else
      span t "mon_cpu" "gp" @@ fun () ->
      world_switch t;
      reflect t ~vector:Isa.vec_protection ~error:0 ~return_pc:pc ~depth:0
  | Cpu.Gp (Cpu.Io_denied port) ->
    if t.v_cpl = 0 then emulate_io t port pc
    else begin
      span t "mon_cpu" "gp" @@ fun () ->
      world_switch t;
      reflect t ~vector:Isa.vec_protection ~error:port ~return_pc:pc ~depth:0
    end
  | Cpu.Gp _ ->
    span t "mon_cpu" "gp" @@ fun () ->
    world_switch t;
    reflect t ~vector:Isa.vec_protection ~error:0 ~return_pc:pc ~depth:0
  | Cpu.Page f -> handle_page_fault t f pc
  | Cpu.Breakpoint_trap ->
    span t "stub" "breakpoint" @@ fun () ->
    world_switch t;
    Stub.on_breakpoint (get_stub t) ~pc
  | Cpu.Step_trap ->
    span t "stub" "step_trap" @@ fun () ->
    world_switch t;
    (match t.reprotect_pages with
     | _ :: _ as pages ->
       reprotect_after_step t pages;
       if t.mon_step_only then begin
         Cpu.set_trap_flag t.cpu false;
         (* A virtual IRQ raised during the protected step was deferred
            by the trap flag ([kick] refuses while TF is set); deliver
            it now or a guest spinning on a protected page never takes
            another interrupt. *)
         kick t
       end
       else Stub.on_step_trap (get_stub t) ~pc
     | [] -> Stub.on_step_trap (get_stub t) ~pc)
  | Cpu.Undefined opcode ->
    span t "mon_cpu" "undefined" @@ fun () ->
    world_switch t;
    reflect t ~vector:Isa.vec_undefined ~error:opcode ~return_pc:pc ~depth:0
  | Cpu.Machine_check _ ->
    (* A fetch or access beyond physical memory — the signature of a wild
       jump outside anything mapped. *)
    span t "mon_cpu" "machine_check" @@ fun () ->
    world_switch t;
    escalate t ~cause:"machine_check" ~vector:Isa.vec_machine_check ~pc

let hook t _cpu event =
  (match event with
   | Cpu.Irq vector -> handle_real_irq t vector
   | Cpu.Fault (kind, pc) -> handle_fault t kind pc
   | Cpu.Soft_int (vector, next_pc) ->
     span t "mon_cpu" "soft_int" @@ fun () ->
     world_switch t;
     t.c_cpu <- t.c_cpu + 1;
     reflect ~check_dpl:true t ~vector ~error:0 ~return_pc:next_pc ~depth:0
   | Cpu.Hypercall (imm, _) -> handle_hypercall t imm);
  Cpu.Handled

(* -- Profiling -- *)

let profile t =
  Hashtbl.fold (fun pc count acc -> (pc, count) :: acc) t.samples []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let clear_profile t = Hashtbl.reset t.samples

(* The [qP] payload: the continuous profiler's dump once it is armed (or
   has samples), else the legacy timer-interrupt histogram rendered in
   the same self-describing format ([period=0] marks it; the timer tick
   cannot see the ring or attribution category, so both read as
   unknown). *)
let profile_dump t =
  let prof = Machine.profiler t.machine in
  let base =
    if Profiler.enabled prof || Profiler.total_samples prof > 0 then
      Profiler.dump prof
    else begin
      let pairs = profile t in
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "samples=%d period=0 buckets=%d\n"
           (List.fold_left (fun acc (_, c) -> acc + c) 0 pairs)
           (List.length pairs));
      List.iter
        (fun (pc, count) ->
          Buffer.add_string b
            (Printf.sprintf "pc=0x%x ring=0 cat=timer count=%d\n" pc count))
        pairs;
      Buffer.contents b
    end
  in
  (* Trailer: the block translator's cache counters ride along so a host
     profiling session sees translation behaviour without a separate
     query.  [Profiler.parse_dump] keeps only [pc=...] bucket lines, so
     the extra line is transparent to existing consumers. *)
  base
  ^ Printf.sprintf
      "jit compiled=%d hits=%d invalidations=%d chains=%d fallbacks=%d\n"
      (Cpu.blocks_compiled t.cpu) (Cpu.block_hits t.cpu)
      (Cpu.block_invalidations t.cpu)
      (Cpu.block_chain_follows t.cpu)
      (Cpu.block_fallbacks t.cpu)

(* -- Lifecycle: watchdog, crash reporting, warm restart -- *)

let lifecycle t = t.lifecycle
let crashed t = match t.lifecycle with Crashed _ -> true | Healthy -> false

let watchdog_sample t () =
  {
    Watchdog.retired = Cpu.instructions_retired t.cpu;
    irq_acks = Pic.acks t.vpic;
    interruptible = t.v_if;
    halted = t.v_halted;
    suspended = Cpu.stopped t.cpu || t.shutdown || crashed t;
  }

(* Watchdog verdict: the guest made no progress for the whole stall
   budget.  Force a break-in exactly like a debugger stop and tell the
   host why ([Wedged]); the full context stays readable via [qW]. *)
let on_wedge t ~stalled_periods =
  let pc = Cpu.pc t.cpu in
  t.last_wedge <- Some (pc, stalled_periods);
  emit_event t "monitor.watchdog" (Event.Wedge { pc });
  trace t Vmm_sim.Trace.Warn
    (Printf.sprintf
       "watchdog: no guest progress for %d periods; break-in at 0x%x"
       stalled_periods pc);
  (* A wedge of a healthy guest gets its own bundle; a crash bundle
     already frozen by [escalate] is never overwritten. *)
  if not (crashed t) then t.capture_bundle ~cause:"wedge";
  Stub.on_wedge (get_stub t) ~pc

let watchdog_start ?period_cycles ?max_stalled_periods t =
  (match t.watchdog with Some w -> Watchdog.stop w | None -> ());
  let config =
    {
      Watchdog.period_cycles =
        (match period_cycles with
         | Some c -> c
         | None -> Costs.cycles_of_seconds t.costs 0.001);
      max_stalled_periods = Option.value max_stalled_periods ~default:5;
    }
  in
  let w =
    Watchdog.create ~config
      ~engine:(Machine.engine t.machine)
      ~sample:(watchdog_sample t)
      ~on_wedge:(fun ~stalled_periods -> on_wedge t ~stalled_periods)
      ()
  in
  t.watchdog <- Some w;
  Watchdog.start w

let watchdog_stop t =
  match t.watchdog with Some w -> Watchdog.stop w | None -> ()

let watchdog t = t.watchdog

(* The [qW] payload: flat [key=value] pairs, single tokens only, so the
   host side needs no quoting rules. *)
let watchdog_report t =
  let b = Buffer.create 128 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (match t.lifecycle with
   | Healthy -> add "lifecycle=healthy"
   | Crashed { cause; vector; pc; chain } ->
     add "lifecycle=crashed cause=%s vector=%d pc=0x%x" cause vector pc;
     if chain <> [] then
       add " chain=%s"
         (String.concat ","
            (List.map (fun (v, p) -> Printf.sprintf "%d@0x%x" v p) chain)));
  (match t.watchdog with
   | None -> add " watchdog=off"
   | Some w ->
     add " watchdog=%s checks=%d stalled=%d stalled_total=%d breakins=%d"
       (if Watchdog.running w then "on" else "stopped")
       (Watchdog.checks w)
       (Watchdog.stalled_periods w)
       (Watchdog.stalled_total w) (Watchdog.breakins w));
  (match t.last_wedge with
   | Some (pc, periods) -> add " wedge_pc=0x%x wedge_periods=%d" pc periods
   | None -> ());
  add " restarts=%d" t.c_restarts;
  Buffer.contents b

(* -- Load-time static verification -- *)

(* The verifier sees exactly what the monitor enforces dynamically: the
   guest owns physical memory below [monitor_base], and may touch the
   emulated PIC/PIT/UART registers plus whatever was passed through. *)
let verify_config t =
  let emulated base = (base, base + 2) in
  {
    Verifier.guest_owns = Vm_layout.guest_owns t.layout;
    allowed_ports =
      emulated Machine.Ports.pic :: emulated Machine.Ports.pit
      :: emulated Machine.Ports.uart
      :: List.map (fun { base; count } -> (base, base + count - 1)) t.passthrough;
    entry_ring = 0;
  }

let verify_guest t program ~entry =
  let report = Verifier.verify (verify_config t) ~entry program in
  t.c_verifies <- t.c_verifies + 1;
  t.last_verify <- Some report;
  if not report.Verifier.clean then
    trace t Vmm_sim.Trace.Warn
      (Printf.sprintf "static verifier: %d diagnostic(s) in the guest image"
         (List.length report.Verifier.diagnostics));
  report

let set_verify_on_boot t flag = t.verify_on_boot <- flag
let verify_on_boot t = t.verify_on_boot
let verification t = t.last_verify

(* The [qV] payload; same flat [key=value] shape as [qW].  When race
   witnessing is armed, a wire-compatible trailer reports the dynamic
   cross-validation state: sampled sites, observed windows, and one
   [wN=0xSTORE:COUNT] token per site actually witnessed. *)
let verify_report_text t =
  match t.last_verify with
  | None -> "analysis=off"
  | Some r ->
    let base = Verifier.summary r in
    if Array.length t.race_sites = 0 then base
    else begin
      let b = Buffer.create 160 in
      Buffer.add_string b base;
      Printf.bprintf b " witness=on wsites=%d wwindows=%d wseen=%d"
        (Array.length t.race_sites)
        t.c_race_windows t.c_race_witnessed;
      Array.iteri
        (fun i w ->
          if w.rw_witnessed > 0 then
            Printf.bprintf b " w%d=0x%x:%d" i w.rsite.Races.store_pc
              w.rw_witnessed)
        t.race_sites;
      Buffer.contents b
    end

(* Monitor exit counters, shadow state and the guest-side debug link
   join the machine registry (kvm_stat style: one place to read why the
   guest keeps exiting).  Called from [install] and again after every
   warm restart: registration goes through [Hashtbl.replace], so a
   re-registered callback supersedes the previous one for every
   subsystem — no gauge can keep reading state orphaned by a restart.
   (Today no subsystem is re-created on restart — devices, shadow,
   watchdog and stub are all reset in place, and every closure below
   reads through [t] — so re-registration is a safety net; the
   regression test in test_core pins the property.)  The vpic latency
   histogram is deliberately replaced fresh: pre-restart latencies
   describe a dead history line. *)
let register_metrics t =
  let registry = Machine.registry t.machine in
  let g name f = Vmm_obs.Registry.int_gauge registry name f in
  g "monitor_world_switches_total" (fun () -> t.c_world);
  g "monitor_pic_emulations_total" (fun () -> t.c_pic);
  g "monitor_pit_emulations_total" (fun () -> t.c_pit);
  g "monitor_cpu_emulations_total" (fun () -> t.c_cpu);
  g "monitor_io_emulations_total" (fun () -> t.c_io);
  g "monitor_reflected_irqs_total" (fun () -> t.c_irq);
  g "monitor_reflected_faults_total" (fun () -> t.c_fault);
  g "monitor_hypercalls_total" (fun () -> t.c_hyper);
  g "monitor_escalations_total" (fun () -> t.c_escal);
  g "monitor_injected_faults_total" (fun () -> t.c_inject);
  g "shadow_fills_total" (fun () -> Shadow.fills t.shadow);
  g "shadow_mappings" (fun () -> Shadow.mappings t.shadow);
  g "stublink_retransmits_total" (fun () ->
      (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.retransmits);
  g "stublink_bad_checksums_total" (fun () ->
      (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.bad_checksums);
  g "stublink_duplicates_dropped_total" (fun () ->
      (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.duplicates_dropped);
  g "stublink_resets_total" (fun () ->
      (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.link_resets);
  g "stublink_downs_total" (fun () -> Stub.link_downs (get_stub t));
  g "stub_commands_handled_total" (fun () ->
      Stub.commands_handled (get_stub t));
  g "stub_notifications_sent_total" (fun () ->
      Stub.notifications_sent (get_stub t));
  Pic.set_latency_probe t.vpic
    ~now:(fun () -> Vmm_sim.Engine.now (Machine.engine t.machine))
    ~observe:
      (let h =
         Vmm_obs.Registry.histogram registry "vpic_delivery_latency_cycles"
           ~buckets:64 ~width:2000.0
       in
       Vmm_sim.Stats.observe h);
  g "vpic_irqs_raised_total" (fun () -> Pic.raises t.vpic);
  g "vpic_irqs_acked_total" (fun () -> Pic.acks t.vpic);
  (* Lifecycle & recovery: is the guest quarantined, has the watchdog
     fired, how many warm restarts — the gauntlet's vital signs. *)
  g "monitor_crashes_total" (fun () -> t.c_crashes);
  g "monitor_restarts_total" (fun () -> t.c_restarts);
  g "monitor_crash_bundles_total" (fun () -> t.c_bundles);
  g "monitor_checkpoints_total" (fun () -> t.c_checkpoints);
  g "monitor_checkpoints_held" (fun () -> List.length t.checkpoints);
  g "stub_reverse_ops_total" (fun () -> Stub.reverse_ops (get_stub t));
  g "monitor_lifecycle_crashed" (fun () -> if crashed t then 1 else 0);
  g "watchdog_checks_total" (fun () ->
      match t.watchdog with Some w -> Watchdog.checks w | None -> 0);
  g "watchdog_stalled_periods_total" (fun () ->
      match t.watchdog with Some w -> Watchdog.stalled_total w | None -> 0);
  g "watchdog_breakins_total" (fun () ->
      match t.watchdog with Some w -> Watchdog.breakins w | None -> 0);
  (* Load-time static verification of the booted image. *)
  g "analysis_runs_total" (fun () -> t.c_verifies);
  g "analysis_clean" (fun () ->
      match t.last_verify with
      | Some r -> if r.Verifier.clean then 1 else 0
      | None -> 0);
  g "analysis_diagnostics" (fun () ->
      match t.last_verify with
      | Some r -> List.length r.Verifier.diagnostics
      | None -> 0);
  g "analysis_instructions" (fun () ->
      match t.last_verify with
      | Some r -> r.Verifier.instructions
      | None -> 0);
  g "analysis_blocks" (fun () ->
      match t.last_verify with Some r -> r.Verifier.blocks | None -> 0);
  (* Interprocedural race pass + its dynamic cross-validation. *)
  g "analysis_race_sites" (fun () ->
      match t.last_verify with
      | Some r -> List.length r.Verifier.race_sites
      | None -> 0);
  g "analysis_summary_incomplete" (fun () ->
      match t.last_verify with
      | Some r -> r.Verifier.summary_incomplete
      | None -> 0);
  g "race_witness_armed_sites" (fun () -> Array.length t.race_sites);
  g "race_windows_total" (fun () -> t.c_race_windows);
  g "race_witnessed_total" (fun () -> t.c_race_witnessed);
  (* Virtual breakpoints: armed footprint plus the fault economics
     (faults = hits + step-throughs; steps/hit is the overhead of
     sharing a hot page with unrelated code). *)
  let vbps f =
    match t.stub with Some stub -> f (Stub.breakpoints stub) | None -> 0
  in
  g "bp_virtual_mode" (fun () ->
      vbps (fun bps ->
          match Breakpoints.mode bps with
          | Breakpoints.Virtual -> 1
          | Breakpoints.Patch -> 0));
  g "bp_virtual_armed_sites" (fun () ->
      vbps (fun bps ->
          if Breakpoints.mode bps = Breakpoints.Virtual then
            Breakpoints.count bps
          else 0));
  g "bp_virtual_armed_pages" (fun () ->
      vbps (fun bps ->
          if Breakpoints.mode bps = Breakpoints.Virtual then
            List.length (Breakpoints.armed_pages bps)
          else 0));
  g "bp_virtual_exec_faults_total" (fun () -> t.c_vbp_faults);
  g "bp_virtual_hits_total" (fun () -> t.c_vbp_hits);
  g "bp_virtual_step_throughs_total" (fun () -> t.c_vbp_steps)

(* Warm restart: put guest-visible state back to the boot snapshot while
   the debug plane — stub, reliable link, watchpoint table, host session
   — stays exactly as it is.  Mirrors [boot_guest] plus the device and
   virtual-interrupt state a reboot would reset. *)
let restart_guest t =
  match t.snapshot with
  | None -> false
  | Some snap ->
    trace t Vmm_sim.Trace.Info
      (Printf.sprintf "warm restart: reloading guest image, entry 0x%x"
         (Snapshot.entry snap));
    Snapshot.restore snap ~mem:(Machine.mem t.machine);
    Scsi.reset (Machine.scsi t.machine);
    Nic.reset (Machine.nic t.machine);
    Pic.reset t.vpic;
    Pit.io_write (get_vpit t) 2 0;
    Buffer.clear t.console_buf;
    Hashtbl.reset t.samples;
    for i = 0 to 15 do
      Cpu.write_reg t.cpu i 0
    done;
    t.v_if <- false;
    t.v_iht <- 0;
    t.v_ptb <- 0;
    t.v_cpl <- 0;
    Array.fill t.v_stacks 0 (Array.length t.v_stacks) 0;
    t.v_halted <- false;
    t.shutdown <- false;
    t.lifecycle <- Healthy;
    t.reprotect_pages <- [];
    t.mon_step_only <- false;
    t.watch_resume <- None;
    t.vbp_pass <- None;
    (* Armed virtual breakpoints survive the restart by construction:
       the table is stub state, and the shadow clear below means every
       armed page re-arms (NX) on its first post-restart fill. *)
    Shadow.clear t.shadow;
    Cpu.set_ptb t.cpu (Shadow.root t.shadow);
    Cpu.set_cpl t.cpu 1;
    Cpu.set_interrupts_enabled t.cpu true;
    Cpu.set_trap_flag t.cpu false;
    Cpu.set_pc t.cpu (Snapshot.entry snap);
    Cpu.set_halted t.cpu false;
    Cpu.set_stopped t.cpu false;
    t.c_restarts <- t.c_restarts + 1;
    (* Pre-restart checkpoints describe a dead history line. *)
    t.checkpoints <- [];
    (match t.watchdog with Some w -> Watchdog.note_reset w | None -> ());
    (* The restore overwrote planted BRK bytes with boot-image bytes;
       the stub re-plants its breakpoints and forgets any stop state. *)
    Stub.note_restart (get_stub t);
    (* Re-register every gauge so a restarted world never serves metric
       reads through callbacks registered against superseded state. *)
    register_metrics t;
    (* The restored memory is the boot image again: re-verify so the qV
       report always describes what is actually running. *)
    (match t.boot_image with
    | Some (p, entry) when t.verify_on_boot -> ignore (verify_guest t p ~entry)
    | _ -> ());
    true

let snapshot t = t.snapshot

(* -- Mid-run checkpoints & reverse execution --

   A checkpoint is a full guest-visible freeze ({!Snapshot.Full}):
   memory image, CPU context, the monitor's virtualized privileged
   state, and device state with relative DMA offsets.  Restoring one is
   a {e forward} time-shift — the engine clock never rewinds; the device
   restores re-arm their pending completions at [now + remaining] and
   the epoch guards orphan whatever was in flight — so reverse-step and
   reverse-continue become "restore, then deterministically re-execute
   to an instruction boundary". *)

let mon_state t =
  {
    Snapshot.Full.v_if = t.v_if;
    v_iht = t.v_iht;
    v_ptb = t.v_ptb;
    v_cpl = t.v_cpl;
    v_stacks = Array.copy t.v_stacks;
    v_halted = t.v_halted;
    console = Buffer.contents t.console_buf;
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let checkpoint_now t =
  let full =
    Snapshot.Full.capture ~machine:t.machine ~layout:t.layout ~vpic:t.vpic
      ~vpit:(get_vpit t)
      ~link:(Stub.endpoint (get_stub t))
      ~mon:(mon_state t)
  in
  t.c_checkpoints <- t.c_checkpoints + 1;
  emit_event t "monitor.ckpt"
    (Event.Checkpoint
       { index = t.c_checkpoints; retired = Snapshot.Full.retired full });
  t.checkpoints <- full :: take (t.checkpoint_keep - 1) t.checkpoints;
  full

let checkpoint_start ?period_cycles ?(keep = 8) t =
  let period =
    match period_cycles with
    | Some c -> c
    | None -> Costs.cycles_of_seconds t.costs 0.001
  in
  t.checkpoint_gen <- t.checkpoint_gen + 1;
  t.checkpoint_keep <- max 1 keep;
  let gen = t.checkpoint_gen in
  ignore (checkpoint_now t);
  let engine = Machine.engine t.machine in
  let rec arm () =
    ignore
      (Vmm_sim.Engine.after engine ~delay:period (fun () ->
           if gen = t.checkpoint_gen then begin
             (* Skip while quarantined (the crash context must stay
                frozen), while a reverse operation is re-executing
                history (those instructions were already captured), and
                while the guest is stopped by the debugger (its state is
                not changing, and a checkpoint captured on the current
                boundary would let [rc] skip re-execution — and with it
                any breakpoint planted in history). *)
             (if
                (not (crashed t))
                && (not (Stub.replaying (get_stub t)))
                && not (Cpu.stopped (Machine.cpu t.machine))
              then ignore (checkpoint_now t));
             arm ()
           end))
  in
  arm ()

let checkpoint_stop t = t.checkpoint_gen <- t.checkpoint_gen + 1
let checkpoints t = t.checkpoints

(* Restore: mirrors [restart_guest], except the target state is a
   mid-run checkpoint instead of the boot snapshot, and the debug plane
   — stub, breakpoint table, reliable link, host session — is left
   exactly as it is (the stub re-plants its breakpoints itself).  Goes
   through the normal store path so the decoded-instruction cache
   invalidates. *)
let restore_checkpoint t (full : Snapshot.Full.t) =
  Phys_mem.load_bytes (Machine.mem t.machine) ~addr:0 full.Snapshot.Full.image;
  for i = 0 to 15 do
    Cpu.write_reg t.cpu i full.Snapshot.Full.regs.(i)
  done;
  Cpu.set_flags_word t.cpu full.Snapshot.Full.flags;
  Cpu.set_cpl t.cpu full.Snapshot.Full.cpl;
  Cpu.set_pc t.cpu full.Snapshot.Full.pc;
  Cpu.set_halted t.cpu full.Snapshot.Full.halted;
  Cpu.set_trap_flag t.cpu false;
  Cpu.set_interrupts_enabled t.cpu true;
  Cpu.set_instructions_retired t.cpu full.Snapshot.Full.retired;
  let mon = full.Snapshot.Full.mon in
  t.v_if <- mon.Snapshot.Full.v_if;
  t.v_iht <- mon.Snapshot.Full.v_iht;
  t.v_ptb <- mon.Snapshot.Full.v_ptb;
  t.v_cpl <- mon.Snapshot.Full.v_cpl;
  Array.blit mon.Snapshot.Full.v_stacks 0 t.v_stacks 0
    (Array.length t.v_stacks);
  t.v_halted <- mon.Snapshot.Full.v_halted;
  Buffer.clear t.console_buf;
  Buffer.add_string t.console_buf mon.Snapshot.Full.console;
  Pic.restore t.vpic full.Snapshot.Full.vpic;
  Pit.restore_phase (get_vpit t) full.Snapshot.Full.vpit;
  Pic.restore (Machine.pic t.machine) full.Snapshot.Full.pic;
  Pit.restore_phase (Machine.pit t.machine) full.Snapshot.Full.pit;
  Scsi.restore (Machine.scsi t.machine) full.Snapshot.Full.scsi;
  Nic.restore (Machine.nic t.machine) full.Snapshot.Full.nic;
  (* The link is deliberately NOT restored: the host session is live. *)
  Shadow.clear t.shadow;
  Cpu.set_ptb t.cpu (Shadow.root t.shadow);
  Cpu.flush_tlb t.cpu;
  t.lifecycle <- Healthy;
  t.shutdown <- false;
  t.reprotect_pages <- [];
  t.mon_step_only <- false;
  t.watch_resume <- None;
  t.vbp_pass <- None;
  (match t.watchdog with Some w -> Watchdog.note_reset w | None -> ());
  trace t Vmm_sim.Trace.Info
    (Printf.sprintf "checkpoint restored: retired=%Ld pc=0x%x"
       full.Snapshot.Full.retired full.Snapshot.Full.pc)

(* -- Crash bundles --

   One self-describing text artifact freezing the moment of death: the
   crash/watchdog report, the flight ring (the last events before the
   verdict), the continuous profile, a full-snapshot digest of
   guest-visible state, the tail of the replay trace (when recording)
   and the metrics registry.  Captured eagerly on the first escalation
   and on every watchdog break-in of a healthy guest; retrievable over
   [qR] and saved by the gauntlet next to its replay traces. *)

let bundle_trace_tail = 64

(* The [static-races] bundle section: the verifier's race sites with the
   dynamic cross-validation verdict folded in, one {!Races.render_site}
   line each, so post-mortem triage reads the warnings next to the
   flight ring that may have witnessed them. *)
let static_races_text t =
  match t.last_verify with
  | None -> "analysis=off\n"
  | Some r ->
    let b = Buffer.create 256 in
    Printf.bprintf b "sites=%d sampled=%d windows=%d witnessed=%d\n"
      (List.length r.Verifier.race_sites)
      (Array.length t.race_sites)
      t.c_race_windows t.c_race_witnessed;
    List.iter
      (fun (s : Races.site) ->
        let watch =
          Array.fold_left
            (fun acc w ->
              if
                w.rsite.Races.load_pc = s.Races.load_pc
                && w.rsite.Races.store_pc = s.Races.store_pc
                && w.rsite.Races.vector = s.Races.vector
              then Some w
              else acc)
            None t.race_sites
        in
        let status, windows =
          match watch with
          | Some w when w.rw_witnessed > 0 -> ("witnessed", w.rw_windows)
          | Some w -> ("static", w.rw_windows)
          | None -> ("static", 0)
        in
        Printf.bprintf b "%s\n" (Races.render_site ~status ~windows s))
      r.Verifier.race_sites;
    Buffer.contents b

let compose_crash_bundle t ~cause =
  let machine = t.machine in
  (* Close spans left open by the interrupted scopes into the tracer
     buffer, so the bundle's event view includes them. *)
  let spans_flushed = Vmm_obs.Tracer.flush_open_spans (Machine.tracer machine) in
  let full =
    Snapshot.Full.capture ~machine ~layout:t.layout ~vpic:t.vpic
      ~vpit:(get_vpit t)
      ~link:(Stub.endpoint (get_stub t))
      ~mon:(mon_state t)
  in
  let snapshot_text =
    Printf.sprintf "digest=%Lx retired=%Ld pc=0x%x spans_flushed=%d\n"
      (Snapshot.Full.digest full) (Snapshot.Full.retired full)
      full.Snapshot.Full.pc spans_flushed
  in
  let trace_tail =
    let events = Recorder.recorded (Machine.recorder machine) in
    let n = List.length events in
    let tail =
      if n <= bundle_trace_tail then events
      else List.filteri (fun i _ -> i >= n - bundle_trace_tail) events
    in
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "recorded=%d shown=%d\n" n (List.length tail));
    List.iter
      (fun e -> Buffer.add_string b (Format.asprintf "%a\n" Event.pp e))
      tail;
    Buffer.contents b
  in
  Bundle.compose ~cause
    ~cycle:(Vmm_sim.Engine.now (Machine.engine machine))
    [
      Bundle.section ~name:"crash-report" (watchdog_report t);
      Bundle.section ~name:"flight" (Flight.dump (Machine.flight machine));
      Bundle.section ~name:"profile" (profile_dump t);
      Bundle.section ~name:"snapshot-digest" snapshot_text;
      Bundle.section ~name:"trace-tail" trace_tail;
      Bundle.section ~name:"static-races" (static_races_text t);
      Bundle.section ~name:"metrics"
        (Vmm_obs.Registry.dump (Machine.registry machine));
    ]

let capture_crash_bundle t ~cause =
  t.c_bundles <- t.c_bundles + 1;
  t.last_bundle <- Some (compose_crash_bundle t ~cause)

let crash_bundle t = t.last_bundle
let flight_report t = Flight.dump (Machine.flight t.machine)

(* The [qR] payload: the post-mortem bundle once one exists (sticky
   across warm restarts), the live flight ring otherwise. *)
let flight_query t =
  match t.last_bundle with
  | Some bundle -> bundle
  | None -> flight_report t

(* -- Stub target -- *)

let vbp_sync_page t addr =
  Shadow.unmap t.shadow ~vaddr:(addr land lnot 0xFFF);
  Cpu.flush_tlb t.cpu

(* -- Race-witness arming --

   Observe-only virtual breakpoints on a sample of the statically
   reported race sites.  Virtual mode only: arming is a shadow-unmap
   (the page re-fills NX), so nothing touches guest text and the replay
   stream is unchanged — witnessing writes to the flight ring, never to
   the recorder. *)

let race_sample_cap = 8

let disarm_race_sites t =
  (match t.stub with
  | Some stub ->
    let bps = Stub.breakpoints stub in
    Array.iter
      (fun w ->
        if Breakpoints.remove_observe bps ~addr:w.rsite.Races.load_pc then
          vbp_sync_page t w.rsite.Races.load_pc)
      t.race_sites
  | None -> ());
  t.race_sites <- [||]

let arm_race_sites t =
  disarm_race_sites t;
  if t.race_witness then
    match (t.stub, t.last_verify) with
    | Some stub, Some r
      when Breakpoints.mode (Stub.breakpoints stub) = Breakpoints.Virtual ->
      let sample = take race_sample_cap r.Verifier.race_sites in
      t.race_sites <-
        Array.of_list
          (List.map
             (fun rsite -> { rsite; rw_windows = 0; rw_witnessed = 0 })
             sample);
      let bps = Stub.breakpoints stub in
      Array.iter
        (fun w ->
          if Breakpoints.add_observe bps ~addr:w.rsite.Races.load_pc then
            vbp_sync_page t w.rsite.Races.load_pc)
        t.race_sites
    | _ -> ()

let set_race_witness t flag =
  t.race_witness <- flag;
  if flag then arm_race_sites t else disarm_race_sites t

let race_witness t = t.race_witness
let race_witness_sites t = Array.length t.race_sites
let race_windows t = t.c_race_windows
let race_witnessed t = t.c_race_witnessed

let make_target t =
  {
    Stub.read_registers =
      (fun () ->
        Array.init 18 (fun i ->
            if i < 16 then Cpu.read_reg t.cpu i
            else if i = 16 then Cpu.pc t.cpu
            else guest_flags_word t));
    write_register =
      (fun idx v ->
        if idx < 0 || idx > 17 then false
        else begin
          (if idx < 16 then Cpu.write_reg t.cpu idx v
           else if idx = 16 then Cpu.set_pc t.cpu v
           else set_guest_flags t v);
          true
        end);
    read_memory = (fun ~addr ~len -> guest_read t ~addr ~len);
    write_memory = (fun ~addr ~data -> guest_write t ~addr ~data);
    current_pc = (fun () -> Cpu.pc t.cpu);
    stop = (fun () -> Cpu.set_stopped t.cpu true);
    resume =
      (fun () ->
        Cpu.set_stopped t.cpu false;
        (match t.watch_resume with
         | Some page ->
           t.watch_resume <- None;
           unprotect_for_step ~for_write:true t page
         | None -> ());
        kick t);
    set_step = (fun flag -> Cpu.set_trap_flag t.cpu flag);
    read_console =
      (fun () ->
        let text = Buffer.contents t.console_buf in
        Buffer.clear t.console_buf;
        text);
    read_profile = (fun () -> profile_dump t);
    set_watch =
      (fun ~addr ~len ->
        if len <= 0 || not (Watchpoints.add t.watchpoints ~addr ~len) then
          false
        else begin
          List.iter
            (fun page ->
              Shadow.unmap t.shadow ~vaddr:page)
            (Watchpoints.pages_of ~addr ~len);
          Cpu.flush_tlb t.cpu;
          true
        end);
    clear_watch =
      (fun ~addr ~len ->
        if Watchpoints.remove t.watchpoints ~addr ~len then begin
          (* Drop the read-only shadow entries; the next fault refills
             them with the guest's real permissions. *)
          List.iter
            (fun page -> Shadow.unmap t.shadow ~vaddr:page)
            (Watchpoints.pages_of ~addr ~len);
          Cpu.flush_tlb t.cpu;
          true
        end
        else false);
    send_byte =
      (fun byte ->
        with_cat t "stub" @@ fun () ->
        charge t t.costs.Costs.port_io;
        Uart.io_write (Machine.uart t.machine) 0 byte);
    charge = (fun cycles -> with_cat t "stub" (fun () -> charge t cycles));
    note_flight = (fun detail -> flight_note t "stub.cmd" detail);
    query_watchdog = (fun () -> watchdog_report t);
    query_verify = (fun () -> verify_report_text t);
    query_flight = (fun () -> flight_query t);
    restart = (fun () -> restart_guest t);
    crashed = (fun () -> crashed t);
    retired = (fun () -> Cpu.instructions_retired t.cpu);
    checkpoint_restore =
      (fun ~max_retired ->
        (* Newest first: the first eligible checkpoint minimizes the
           re-execution distance. *)
        let rec find = function
          | [] -> None
          | full :: rest ->
            if Int64.compare (Snapshot.Full.retired full) max_retired <= 0
            then Some full
            else find rest
        in
        match find t.checkpoints with
        | None -> None
        | Some full ->
          restore_checkpoint t full;
          Some (Snapshot.Full.retired full));
    set_retire_stop =
      (fun spec ->
        match spec with
        | None -> Cpu.set_retire_stop t.cpu None
        | Some target ->
          Cpu.set_retire_stop t.cpu
            (Some
               ( target,
                 fun cpu ->
                   Stub.on_retire_stop (get_stub t) ~pc:(Cpu.pc cpu) )));
    set_replay_mute =
      (fun flag -> Recorder.set_muted (Machine.recorder t.machine) flag);
    (* Arming and disarming both just resync the page: drop its shadow
       mapping (and with the TLB flush, every compiled block touching
       it) so the next fetch refills with NX recomputed from the live
       table. *)
    vbp_arm = (fun ~page -> vbp_sync_page t page);
    vbp_disarm = (fun ~page -> vbp_sync_page t page);
    vbp_pass = (fun ~pc -> t.vbp_pass <- Some pc);
  }

(* -- Construction -- *)

let install ?(passthrough = default_passthrough) machine =
  let cpu = Machine.cpu machine in
  let costs = Machine.costs machine in
  let layout = Vm_layout.default ~mem_size:(Phys_mem.size (Machine.mem machine)) in
  let shadow = Shadow.create ~mem:(Machine.mem machine) ~layout () in
  let t =
    {
      machine;
      cpu;
      costs;
      layout;
      shadow;
      vpic = Pic.create ();
      vpit = None;
      v_if = false;
      v_iht = 0;
      v_ptb = 0;
      v_cpl = 0;
      v_stacks = Array.make 4 0;
      v_halted = false;
      stub = None;
      watchpoints = Watchpoints.create ();
      samples = Hashtbl.create 256;
      reprotect_pages = [];
      mon_step_only = false;
      watch_resume = None;
      vbp_pass = None;
      console_buf = Buffer.create 256;
      shutdown = false;
      passthrough;
      verify_on_boot = true;
      boot_image = None;
      last_verify = None;
      c_verifies = 0;
      race_witness = false;
      race_sites = [||];
      c_race_windows = 0;
      c_race_witnessed = 0;
      lifecycle = Healthy;
      snapshot = None;
      checkpoints = [];
      checkpoint_keep = 8;
      checkpoint_gen = 0;
      c_checkpoints = 0;
      watchdog = None;
      last_wedge = None;
      c_world = 0;
      c_pic = 0;
      c_pit = 0;
      c_cpu = 0;
      c_io = 0;
      c_irq = 0;
      c_fault = 0;
      c_hyper = 0;
      c_escal = 0;
      c_vbp_faults = 0;
      c_vbp_hits = 0;
      c_vbp_steps = 0;
      c_inject = 0;
      c_crashes = 0;
      c_restarts = 0;
      c_bundles = 0;
      last_bundle = None;
      capture_bundle = (fun ~cause:_ -> ());
    }
  in
  t.capture_bundle <- (fun ~cause -> capture_crash_bundle t ~cause);
  t.vpit <-
    Some
      (Pit.create ~engine:(Machine.engine machine) ~costs
         ~raise_irq:(fun () -> virtual_irq t Machine.Irq.timer)
         ());
  t.stub <-
    Some
      (Stub.create
         ~link_config:
           { Vmm_proto.Reliable.default_config with
             Vmm_proto.Reliable.byte_cycles = costs.Costs.uart_cycles_per_byte
           }
         ~target:(make_target t) ~dispatch_cost:costs.Costs.stub_dispatch
         ~engine:(Machine.engine machine) ());
  (* A planted breakpoint must head its own translated block: the BRK
     patch itself already invalidates the compiled text (write
     generations), but pinning keeps the translator from re-compiling a
     run that would bury the trap site mid-block.  The predicate reads
     the live table, so it tracks Z0/z0 traffic with no further hooks.
     Patch mode only: virtual breakpoints never appear in guest text —
     the armed page is NX in the shadow, and since every block dispatch
     performs a real exec translation, a compiled run reaching the page
     faults at the exact boundary pc with no per-site pinning. *)
  Cpu.set_jit_pin cpu (fun pc ->
      match t.stub with
      | Some stub ->
        let bps = Stub.breakpoints stub in
        Breakpoints.mode bps = Breakpoints.Patch
        && Breakpoints.mem bps ~addr:pc
      | None -> false);
  register_metrics t;
  (* Open direct device access; everything else traps. *)
  List.iter
    (fun { base; count } ->
      for port = base to base + count - 1 do
        Cpu.allow_port cpu port true
      done)
    passthrough;
  (* The monitor owns the real interrupt path. *)
  Pic.io_write (Machine.pic machine) 1 0x00;
  Cpu.set_interrupts_enabled cpu true;
  Uart.io_write (Machine.uart machine) 2 1;
  Cpu.set_ptb cpu (Shadow.root shadow);
  Cpu.set_hypervisor cpu (Some (hook t));
  t

let uninstall t = Cpu.set_hypervisor t.cpu None

let boot_guest t program ~entry =
  let size = Bytes.length program.Asm.code in
  if not (Vm_layout.guest_range_ok t.layout ~addr:program.Asm.origin ~len:size)
  then invalid_arg "Monitor.boot_guest: image overlaps monitor memory";
  Asm.load program (Machine.mem t.machine);
  for i = 0 to 15 do
    Cpu.write_reg t.cpu i 0
  done;
  t.v_if <- false;
  t.v_iht <- 0;
  t.v_ptb <- 0;
  t.v_cpl <- 0;
  t.v_halted <- false;
  t.shutdown <- false;
  t.lifecycle <- Healthy;
  t.last_wedge <- None;
  t.last_bundle <- None;
  t.checkpoints <- [];
  Shadow.clear t.shadow;
  Cpu.set_ptb t.cpu (Shadow.root t.shadow);
  Cpu.set_cpl t.cpu 1;
  Cpu.set_interrupts_enabled t.cpu true;
  Cpu.set_trap_flag t.cpu false;
  Cpu.set_pc t.cpu entry;
  Cpu.set_halted t.cpu false;
  Cpu.set_stopped t.cpu false;
  (* Capture the warm-restart snapshot now: the image is loaded, the
     registers are zero, the devices idle — exactly the state a restart
     must reproduce. *)
  t.snapshot <-
    Some (Snapshot.capture ~mem:(Machine.mem t.machine) ~layout:t.layout ~entry);
  (match t.watchdog with Some w -> Watchdog.note_reset w | None -> ());
  (* Static verification of the image just loaded (record-only: the
     report is queryable over qV and published as analysis_* gauges, but
     never blocks the boot). *)
  t.boot_image <- Some (program, entry);
  if t.verify_on_boot then ignore (verify_guest t program ~entry);
  (* Re-sample race sites against the image just loaded.  (A warm
     restart needs no re-arm: the observe table is stub state and the
     shadow clear re-arms every observed page NX on its first fill.) *)
  if t.race_witness then arm_race_sites t;
  trace t Vmm_sim.Trace.Info
    (Printf.sprintf "guest booted at 0x%x (ring 1, shadow paging)" entry)

(* -- Accessors -- *)

let guest_interrupts_enabled t = t.v_if
let guest_cpl t = t.v_cpl
let guest_iht t = t.v_iht
let guest_ptb t = t.v_ptb
let guest_halted t = t.v_halted
let stub t = get_stub t
let machine t = t.machine
let layout t = t.layout
let shadow t = t.shadow
let virtual_pic t = t.vpic
let virtual_pit t = get_vpit t

let stats t =
  {
    world_switches = t.c_world;
    pic_emulations = t.c_pic;
    pit_emulations = t.c_pit;
    cpu_emulations = t.c_cpu;
    io_emulations = t.c_io;
    shadow_fills = Shadow.fills t.shadow;
    reflected_irqs = t.c_irq;
    reflected_faults = t.c_fault;
    hypercalls = t.c_hyper;
    escalations = t.c_escal;
    link_retransmits = (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.retransmits;
    link_bad_checksums =
      (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.bad_checksums;
    link_resets = (Stub.link_stats (get_stub t)).Vmm_proto.Reliable.link_resets;
    link_downs = Stub.link_downs (get_stub t);
    injected_faults = t.c_inject;
    wedge_breakins =
      (match t.watchdog with Some w -> Watchdog.breakins w | None -> 0);
    crashes = t.c_crashes;
    restarts = t.c_restarts;
  }

let console t = Buffer.contents t.console_buf
let shutdown_requested t = t.shutdown

let watchpoints t = t.watchpoints
