(** The lightweight virtual machine monitor (the paper's contribution).

    The monitor installs itself as the CPU's hypervisor hook and runs the
    guest OS deprivileged: guest "ring 0" executes in real ring 1, guest
    applications in real ring 3.  It emulates {e only} the hardware that
    the remote-debugging function depends on — the interrupt controller,
    the timer, the communication device and the privileged CPU resources
    (interrupt-handling table, page tables, interrupt flag) — while
    high-throughput devices (SCSI, NIC) are accessed {e directly} by the
    guest through the I/O permission bitmap.  Guest memory is virtualized
    with lazily-filled shadow page tables that never map monitor frames,
    yielding the application / guest-OS / monitor three-level protection
    the paper describes on two-level hardware.

    The embedded {!Stub} services the host debugger; the monitor routes
    UART interrupts to it and escalates unrecoverable guest faults (e.g. a
    corrupted interrupt table) to it instead of dying — the stability
    property. *)

type t

(** Pass-through port ranges: these ports are opened in the I/O permission
    bitmap so the guest reaches the devices without monitor involvement. *)
type passthrough = { base : int; count : int }

(** The default pass-through set: the SCSI controller and the NIC. *)
val default_passthrough : passthrough list

(** Cumulative event counts, exposed for tests and the benchmarks. *)
type stats = {
  world_switches : int;
  pic_emulations : int;
  pit_emulations : int;
  cpu_emulations : int;
  io_emulations : int;
  shadow_fills : int;
  reflected_irqs : int;
  reflected_faults : int;
  hypercalls : int;
  escalations : int;
  link_retransmits : int;
  link_bad_checksums : int;
  link_resets : int;
  link_downs : int;
  injected_faults : int;
  wedge_breakins : int;
  crashes : int;
  restarts : int;
}

(** {2 Guest lifecycle}

    A guest the monitor cannot reflect a fault into — double fault,
    unmapped exception stack, wild jump beyond mapped memory — is moved
    to [Crashed]: frozen and quarantined, but fully inspectable through
    the stub.  Resume is refused ([E03]) until a {!restart_guest}. *)

type crash_report = {
  cause : string;  (** single-token classification, e.g. [double_fault] *)
  vector : int;
  pc : int;
  chain : (int * int) list;
      (** nested delivery attempts (vector, pc), innermost last *)
}

type lifecycle = Healthy | Crashed of crash_report

(** [install ?passthrough machine] takes ownership of the machine:
    registers the hypervisor hook, opens pass-through ports, unmasks the
    physical interrupt controller, enables the debug UART's receive
    interrupt and prepares empty shadow tables. *)
val install : ?passthrough:passthrough list -> Vmm_hw.Machine.t -> t

(** [uninstall t] removes the hook (the machine reverts to bare metal). *)
val uninstall : t -> unit

(** [boot_guest t program ~entry] loads a guest image into guest-owned
    memory and starts it at guest ring 0 with interrupts disabled and
    paging off (behind the identity shadow).
    @raise Invalid_argument if the image overlaps monitor memory. *)
val boot_guest : t -> Vmm_hw.Asm.program -> entry:int -> unit

(** {2 Guest-visible state} *)

val guest_interrupts_enabled : t -> bool
val guest_cpl : t -> int
val guest_iht : t -> int
val guest_ptb : t -> int
val guest_halted : t -> bool

(** [guest_flags_word t] — the flags word the guest believes it has. *)
val guest_flags_word : t -> int

(** [guest_read t ~addr ~len] reads guest-virtual memory through the
    guest's own page tables; [None] when any page is unmapped. *)
val guest_read : t -> addr:int -> len:int -> string option

(** [guest_write t ~addr ~data] writes guest-virtual memory (debugger
    privilege: ignores guest write protection). *)
val guest_write : t -> addr:int -> data:string -> bool

(** {2 Components} *)

val stub : t -> Stub.t
val machine : t -> Vmm_hw.Machine.t
val layout : t -> Vm_layout.t
val shadow : t -> Shadow.t
val virtual_pic : t -> Vmm_hw.Pic.t
val watchpoints : t -> Watchpoints.t

(** [profile t] — the legacy timer-interrupt profile (pc, hits), hottest
    first.  The monitor samples the interrupted guest pc at every
    reflected timer interrupt, so the histogram approximates where guest
    time goes — but goes blind when the guest masks interrupts.  The
    continuous profiler ({!Vmm_hw.Machine.set_profiling}) has no such
    blind spot. *)
val profile : t -> (int * int) list

val clear_profile : t -> unit

(** [profile_dump t] — the [qP] payload: the continuous profiler's
    {!Vmm_profile.Profiler.dump} once it is armed or has samples, else
    the legacy timer-interrupt histogram rendered in the same format
    (recognizable by [period=0]). *)
val profile_dump : t -> string

(** [flight_report t] — the machine's live flight-ring dump
    ({!Vmm_profile.Flight.dump}). *)
val flight_report : t -> string

(** [crash_bundle t] — the most recent crash/wedge bundle
    ({!Vmm_profile.Bundle} format: crash report, flight ring, profile,
    snapshot digest, replay-trace tail, metrics registry), captured
    eagerly at the first escalation and at each watchdog break-in of a
    healthy guest.  Sticky across warm restarts; cleared by a fresh
    {!boot_guest}. *)
val crash_bundle : t -> string option
val virtual_pit : t -> Vmm_hw.Pit.t
val stats : t -> stats

(** [console t] — text the guest wrote via the console hypercall or its
    (virtualized) serial port. *)
val console : t -> string

(** [shutdown_requested t] — the guest invoked the shutdown hypercall. *)
val shutdown_requested : t -> bool

(** {2 Fault injection}

    Adversarial-guest behaviours, driven through the monitor's own
    emulation paths so the damage is exactly what a misbehaving guest
    could cause — never more.  The stability claim under test: whatever
    the guest does, the monitor and its debug stub survive and the host
    session keeps working. *)

type injected_fault =
  | Wild_jump of int  (** guest pc teleports to an arbitrary address *)
  | Wild_store of int
      (** guest store into an address its tables do not map (e.g. a
          monitor-reserved frame): vectors through the page-fault path *)
  | Iht_clobber  (** the guest's interrupt-handler table is zeroed *)
  | Ptb_clobber
      (** the guest loads a garbage page-table base (paging off) *)
  | Irq_storm of { lines : int; rounds : int }
      (** a burst of [lines * rounds] virtual interrupts *)
  | Guest_wedge  (** interrupts off + halt: the classic hard hang *)

(** [inject t fault] perturbs the running guest.  The guest may crash —
    that is the point — but the monitor must not. *)
val inject : t -> injected_fault -> unit

(** {2 Lifecycle & recovery} *)

val lifecycle : t -> lifecycle
val crashed : t -> bool

(** [watchdog_start ?period_cycles ?max_stalled_periods t] arms the
    monitor-owned watchdog (default: 1 ms periods, 5 progress-free
    periods to a break-in).  Runs on the monitor's timer — a periodic
    engine event, never the physical PIT — and charges no guest cycles,
    so workload telemetry is unchanged.  Restarting replaces any
    previous watchdog. *)
val watchdog_start :
  ?period_cycles:int64 -> ?max_stalled_periods:int -> t -> unit

val watchdog_stop : t -> unit
val watchdog : t -> Watchdog.t option

(** [watchdog_report t] — the [qW] payload: flat [key=value] pairs
    covering lifecycle, crash context (cause, vector, pc, nested-fault
    chain), watchdog counters and restart count. *)
val watchdog_report : t -> string

(** [restart_guest t] reloads the boot snapshot and reboots the guest
    without touching the stub, the reliable link or the watchpoint
    table; planted breakpoints are re-applied over the restored image.
    False when no guest was ever booted. *)
val restart_guest : t -> bool

(** [snapshot t] — the boot snapshot captured by {!boot_guest}. *)
val snapshot : t -> Snapshot.t option

(** {2 Mid-run checkpoints & reverse execution}

    Periodic {!Snapshot.Full} checkpoints make reverse debugging a
    restore-then-re-execute operation: the stub's [rs]/[rc] verbs pick
    the newest checkpoint at or before the target retirement boundary,
    the monitor restores it (a {e forward} time-shift — the engine clock
    never rewinds; device restores re-arm pending DMA at
    [now + remaining]), and the CPU replays deterministically to the
    requested instruction count.  The debug plane (stub, link,
    breakpoint table, host session) is never touched by a restore. *)

(** [checkpoint_now t] captures a full checkpoint immediately and adds
    it to the ring. *)
val checkpoint_now : t -> Snapshot.Full.t

(** [checkpoint_start ?period_cycles ?keep t] captures one checkpoint
    now and then every [period_cycles] (default: 1 ms of guest time),
    keeping the newest [keep] (default 8).  Capture is skipped while the
    guest is quarantined or a reverse operation is re-executing
    history. *)
val checkpoint_start : ?period_cycles:int64 -> ?keep:int -> t -> unit

(** [checkpoint_stop t] disarms the periodic capture (kept checkpoints
    stay available). *)
val checkpoint_stop : t -> unit

(** [checkpoints t] — the held ring, newest first. *)
val checkpoints : t -> Snapshot.Full.t list

(** [restore_checkpoint t full] puts the guest back to [full]'s
    instruction boundary.  Guest memory, CPU context, virtualized
    privileged state and device state are reinstated; the lifecycle
    returns to healthy; the reliable link and stub state are untouched.
    Used by the stub's reverse verbs, exposed for tests and tooling. *)
val restore_checkpoint : t -> Snapshot.Full.t -> unit

(** {2 Load-time static verification}

    On every {!boot_guest} (and again on each warm restart, since the
    restore puts the boot image back) the monitor runs the
    {!Vmm_analysis.Verifier} over the guest image: the same
    guest-owns-memory and I/O-bitmap policy it enforces dynamically at
    trap time, proven statically at load time.  Verification is
    record-only — a dirty report never blocks the boot — and is
    published as [analysis_*] registry gauges and over the [qV] debug
    query. *)

(** [set_verify_on_boot t flag] — enable/disable load-time verification
    (on by default).  Affects subsequent boots and restarts. *)
val set_verify_on_boot : t -> bool -> unit

val verify_on_boot : t -> bool

(** [verify_guest t program ~entry] runs the verifier immediately under
    the monitor's memory/port policy and records the report. *)
val verify_guest : t -> Vmm_hw.Asm.program -> entry:int -> Vmm_analysis.Verifier.report

(** [verification t] — the most recent report, if any guest was verified. *)
val verification : t -> Vmm_analysis.Verifier.report option

(** [verify_report_text t] — the [qV] payload: flat [key=value] pairs
    ([analysis=clean|dirty], counts, and the first diagnostics as
    [dN=<class>@0xADDR] tokens); ["analysis=off"] before any
    verification ran.  With race witnessing armed, a wire-compatible
    trailer follows: [witness=on wsites= wwindows= wseen=] plus one
    [wN=0xSTORE:COUNT] token per site actually witnessed. *)
val verify_report_text : t -> string

(** {2 Race-witness cross-validation}

    The verifier's interprocedural race pass ({!Vmm_analysis.Races})
    reports static [irq-race] sites.  When witnessing is enabled the
    monitor arms observe-only virtual breakpoints on a sample of those
    sites' load addresses: every execution of the load is counted as an
    open window ([race.window] flight note), and a virtual-interrupt
    delivery landing strictly inside the window with the reported vector
    upgrades the site to "witnessed" ([race.witness] flight note, [qV]
    trailer, [static-races] crash-bundle section).  Observation is
    flight-ring only — the record/replay event stream and golden digests
    are unchanged — and requires virtual breakpoint mode (a no-op under
    [Patch]). *)

(** [set_race_witness t flag] — arm (sampling the latest report) or
    disarm.  Sites re-sample automatically on the next boot. *)
val set_race_witness : t -> bool -> unit

val race_witness : t -> bool

(** Number of sites currently under observation. *)
val race_witness_sites : t -> int

(** Total open windows observed (executions of a sampled load). *)
val race_windows : t -> int

(** Total witnessed interleavings (deliveries inside an open window). *)
val race_witnessed : t -> int
