(** Shadow page tables.

    The CPU's real page-table base always points here while the guest runs;
    guest-visible translations are copied in lazily (on real page faults)
    from the guest's own tables, after the monitor has verified that the
    target frame belongs to the guest.  Monitor frames are never mapped, so
    no guest ring can touch them — the three-level protection of the
    paper.

    Tables are carved from the monitor's physical arena by a bump
    allocator; [clear] recycles everything (used when the guest reloads its
    page-table base or flushes its TLB). *)

type t

exception Out_of_shadow_memory

(** [create ~mem ~layout ()] initializes an empty page directory. *)
val create : mem:Vmm_hw.Phys_mem.t -> layout:Vm_layout.t -> unit -> t

(** [root t] — physical address of the shadow page directory (what the
    real PTB holds while the guest runs). *)
val root : t -> int

(** [clear t] drops every shadow mapping (cheap: resets the arena). *)
val clear : t -> unit

(** [map t ~vaddr ~frame ~writable ~user] installs a 4 KiB translation.
    The caller has already validated frame ownership.  [?nx] marks the
    leaf no-execute — used for pages holding armed virtual breakpoints,
    which stay readable/writable but trap every fetch into the monitor.
    @raise Out_of_shadow_memory when the arena is exhausted. *)
val map :
  ?nx:bool -> t -> vaddr:int -> frame:int -> writable:bool -> user:bool -> unit

(** [unmap t ~vaddr] clears one shadow entry if present (used when the
    guest invalidates a single page). *)
val unmap : t -> vaddr:int -> unit

(** [mappings t] — number of live leaf entries (for tests/benches). *)
val mappings : t -> int

(** [fills t] — total leaf installs since creation. *)
val fills : t -> int
