(** Monitor-owned guest watchdog.

    The paper gives the monitor exclusive ownership of its timer; this
    module uses that timer (a periodic simulation-engine event — the
    physical PIT stays untouched) to notice a guest that has stopped
    making progress.  Each period it samples retired instructions,
    virtual-interrupt acknowledgements and the halt/IF state; after
    [max_stalled_periods] consecutive progress-free periods it calls
    [on_wedge], which the monitor turns into a forced break-in reported
    to the host as a [Wedged] stop.

    Checks charge no CPU cycles and mutate no guest state, so arming the
    watchdog leaves workload telemetry untouched. *)

type config = { period_cycles : int64; max_stalled_periods : int }

val default_config : config

(** One progress observation, supplied by the monitor. *)
type sample = {
  retired : int64;  (** cumulative instructions retired *)
  irq_acks : int;  (** cumulative virtual-PIC acknowledgements *)
  interruptible : bool;  (** guest IF *)
  halted : bool;  (** guest executed HLT *)
  suspended : bool;
      (** stopped by the debugger / crashed / shut down — periods in this
          state never count as stalls *)
}

type t

(** [create ?config ~engine ~sample ~on_wedge ()] — inert until
    {!start}.  [sample] must be cheap and side-effect-free.
    @raise Invalid_argument on a non-positive period or stall budget. *)
val create :
  ?config:config ->
  engine:Vmm_sim.Engine.t ->
  sample:(unit -> sample) ->
  on_wedge:(stalled_periods:int -> unit) ->
  unit ->
  t

val start : t -> unit
val stop : t -> unit

(** [note_reset t] clears the consecutive-stall count and re-baselines —
    called after a warm restart. *)
val note_reset : t -> unit

val running : t -> bool

(** [stalled_periods t] — current consecutive progress-free periods. *)
val stalled_periods : t -> int

(** Cumulative counters (metrics feed). *)
val checks : t -> int

val stalled_total : t -> int
val breakins : t -> int
val config : t -> config
