(** The monitor's remote-debugging function ("stub").

    Lives inside the monitor, owns the communication device, speaks the
    {!Vmm_proto} protocol with the host debugger, and controls the guest
    through a narrow {!target} interface: registers, memory, stop/resume
    and the single-step flag.

    Breakpoints come in two modes (see {!Breakpoints.mode}, selected by
    [LWVMM_BP]).  Patch mode plants BRK over the guest's instruction and
    remembers the original bytes; the stub makes the patch invisible to
    host memory reads and steps across it on continue.  Virtual mode
    (default) never mutates guest memory: armed pages are mapped
    no-execute in the shadow tables and the monitor fields the exec
    faults, so the wire semantics ([Z0]/[z0]/[T] stops) are identical
    while the guest can neither observe nor corrupt its breakpoints. *)

(** What the stub needs from the monitor/machine. *)
type target = {
  read_registers : unit -> int array;
      (** 18 guest-visible words: r0-r15, pc, flags *)
  write_register : int -> int -> bool;
  read_memory : addr:int -> len:int -> string option;
      (** guest-virtual addressing; [None] when unmapped *)
  write_memory : addr:int -> data:string -> bool;
  current_pc : unit -> int;
  stop : unit -> unit;  (** freeze guest execution *)
  resume : unit -> unit;
  set_step : bool -> unit;  (** guest trap flag *)
  set_watch : addr:int -> len:int -> bool;
      (** install a write watchpoint (shadow-page protection) *)
  clear_watch : addr:int -> len:int -> bool;
  read_console : unit -> string;
      (** drain the guest's console output captured by the monitor *)
  read_profile : unit -> string;
      (** the continuous profiler's textual sample dump
          ({!Vmm_profile.Profiler.dump} format), hottest first *)
  send_byte : int -> unit;  (** transmit on the debug link *)
  charge : int -> unit;  (** book monitor cycles *)
  note_flight : string -> unit;
      (** record one decoded protocol frame in the flight ring *)
  query_watchdog : unit -> string;
      (** the monitor's lifecycle/watchdog report for [qW] *)
  query_verify : unit -> string;
      (** the monitor's load-time static-verification report for [qV] *)
  query_flight : unit -> string;
      (** the flight-recorder dump for [qR]: crash bundle when crashed
          or wedged, live flight ring otherwise *)
  restart : unit -> bool;
      (** warm-restart the guest from its boot snapshot; false when no
          snapshot exists *)
  crashed : unit -> bool;
      (** the guest is quarantined ([Crashed]); resume must be refused *)
  retired : unit -> int64;
      (** instructions retired so far — the reverse-debug time axis *)
  checkpoint_restore : max_retired:int64 -> int64 option;
      (** restore the newest checkpoint at or before [max_retired]
          retirements; returns the restored boundary, [None] when no
          eligible checkpoint exists *)
  set_retire_stop : int64 option -> unit;
      (** arm/disarm a stop at an absolute retirement count
          (replay-to-N); the monitor routes the landing back through
          {!on_retire_stop} *)
  set_replay_mute : bool -> unit;
      (** mute the machine recorder while re-executing replayed history
          so it is not logged twice *)
  vbp_arm : page:int -> unit;
      (** a virtual breakpoint was armed at this address: drop the
          page's shadow mapping so the next fetch refills no-execute
          (the NX decision is recomputed from the table at fill time) *)
  vbp_disarm : page:int -> unit;
      (** a virtual breakpoint was removed at this address: resync the
          page's shadow mapping the same way — the refill re-arms only
          if other sites remain on the page *)
  vbp_pass : pc:int -> unit;
      (** grant a one-shot pass: the next exec fault landing exactly on
          [pc] is stepped through instead of reported, so resuming off a
          virtual-breakpoint hit makes progress without disarming it *)
}

type t

(** [create ~target ~dispatch_cost ~engine ()] — [dispatch_cost] cycles
    are charged per decoded command.  The stub talks through a
    {!Vmm_proto.Reliable} endpoint whose retransmission timers run on
    [engine]; [link_config] tunes its timeouts and retry budget. *)
val create :
  ?link_config:Vmm_proto.Reliable.config ->
  target:target ->
  dispatch_cost:int ->
  engine:Vmm_sim.Engine.t ->
  unit ->
  t

(** {2 Events from the monitor} *)

(** [on_rx_byte t byte] — a byte arrived on the debug link. *)
val on_rx_byte : t -> int -> unit

(** [on_breakpoint t ~pc] — the guest executed BRK (patch mode / guest's
    own trap) or a virtual-breakpoint exec fault matched an armed site;
    either way the stop reports [Break pc] identically on the wire. *)
val on_breakpoint : t -> pc:int -> unit

(** [on_step_trap t ~pc] — the guest retired a single-stepped
    instruction. *)
val on_step_trap : t -> pc:int -> unit

(** [on_watchpoint t ~pc ~addr] — a guest store hit a watched range;
    the guest is already frozen by the monitor's page protection. *)
val on_watchpoint : t -> pc:int -> addr:int -> unit

(** [on_guest_fault t ~vector ~pc] — the monitor gave up on a guest fault
    (e.g. triple fault); the guest is stopped and the host notified — the
    paper's stability property in action. *)
val on_guest_fault : t -> vector:int -> pc:int -> unit

(** [on_wedge t ~pc] — the monitor's watchdog saw no guest progress and
    forced a break-in; the host is notified with a [Wedged] stop. *)
val on_wedge : t -> pc:int -> unit

(** [on_retire_stop t ~pc] — a reverse operation's replay-to-N landed on
    the requested retirement boundary; the stub reports [Step_done] at
    [pc] and un-mutes the recorder. *)
val on_retire_stop : t -> pc:int -> unit

(** [note_restart t] — the monitor completed a warm restart: re-plant
    breakpoints over the restored image and return to [Running].  Called
    from inside {!target.restart}; the link state is untouched. *)
val note_restart : t -> unit

(** {2 State} *)

val stopped : t -> bool

(** [replaying t] — a reverse operation is re-executing from a restored
    checkpoint (the monitor skips periodic checkpoint capture and chaos
    decisions feed from the muted recorder's script meanwhile). *)
val replaying : t -> bool

(** [reverse_ops t] — completed checkpoint restores on behalf of
    [rs]/[rc]. *)
val reverse_ops : t -> int

val breakpoints : t -> Breakpoints.t
val commands_handled : t -> int
val notifications_sent : t -> int

(** The stub's end of the reliable link. *)
val endpoint : t -> Vmm_proto.Reliable.t

val link_stats : t -> Vmm_proto.Reliable.counters

(** [retransmissions t] — replies resent after a host NAK or an ack
    timeout (noisy wire). *)
val retransmissions : t -> int

(** [link_downs t] — times the stub's retry budget ran out.  Each one
    stopped the guest (if running) so the session stays reconnectable. *)
val link_downs : t -> int
