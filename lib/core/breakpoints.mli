(** Breakpoint table for the debug stub — dual mode.

    [Patch] is the legacy mechanism: plant a [BRK] in guest text and
    remember the original bytes so continue/step-over can restore and
    re-insert them.  [Virtual] is the page-permission design (Price 2019):
    guest text is never touched; instead every page holding an armed site
    is mapped no-execute in the shadow tables and the monitor fields the
    resulting exec faults.  The table itself is mode-agnostic — it always
    records addresses, saved bytes (empty in virtual mode) and per-page
    armed-site counts; the stub and monitor consult [mode] to decide what
    arming means. *)

type mode = Patch | Virtual

type t

(** [create ?mode ()] — default mode comes from the [LWVMM_BP] environment
    variable ("patch" selects [Patch]; anything else, or unset, selects
    [Virtual]). *)
val create : ?mode:mode -> unit -> t

val mode : t -> mode

(** [mode_of_env ()] — the mode [create] would pick from [LWVMM_BP]. *)
val mode_of_env : unit -> mode

(** [add t ~addr ~saved] registers a breakpoint; [false] when one already
    exists at [addr] (the caller must not double-patch). *)
val add : t -> addr:int -> saved:string -> bool

(** [remove t ~addr] unregisters and returns the saved bytes. *)
val remove : t -> addr:int -> string option

(** [saved_at t ~addr] — saved bytes without removing. *)
val saved_at : t -> addr:int -> string option

val mem : t -> addr:int -> bool
val count : t -> int

(** [page_armed t ~page] — some armed site lives on the 4 KiB page
    containing [page] (any address on the page may be passed).  O(1), and
    the empty-table case is a single length check — this sits on the
    monitor's page-fault path. *)
val page_armed : t -> page:int -> bool

(** [armed_pages t] — sorted page base addresses holding at least one
    armed site. *)
val armed_pages : t -> int list

(** [addresses t] — sorted list of breakpoint addresses. *)
val addresses : t -> int list

(** Observe-only sites: the monitor's race-witness machinery arms these
    on statically-reported race windows.  They share the per-page
    armed-site counts (so their pages map NX in virtual mode) but live
    outside the stub's table — an exec fault at one never stops the
    guest, and {!clear} (stub detach) leaves them armed. *)

(** [add_observe t ~addr] — [false] if already observed. *)
val add_observe : t -> addr:int -> bool

(** [remove_observe t ~addr] — [true] if it was present. *)
val remove_observe : t -> addr:int -> bool

val observe_mem : t -> addr:int -> bool
val observe_count : t -> int

(** Sorted observe-site addresses. *)
val observed : t -> int list

(** [clear t] forgets the stub's breakpoints (detach); returns the
    entries that were present so the caller can unpatch/disarm them.
    Observe-only sites survive. *)
val clear : t -> (int * string) list
