module Command = Vmm_proto.Command
module Reliable = Vmm_proto.Reliable
module Isa = Vmm_hw.Isa

type target = {
  read_registers : unit -> int array;
  write_register : int -> int -> bool;
  read_memory : addr:int -> len:int -> string option;
  write_memory : addr:int -> data:string -> bool;
  current_pc : unit -> int;
  stop : unit -> unit;
  resume : unit -> unit;
  set_step : bool -> unit;
  set_watch : addr:int -> len:int -> bool;
  clear_watch : addr:int -> len:int -> bool;
  read_console : unit -> string;
  read_profile : unit -> string;
  send_byte : int -> unit;
  charge : int -> unit;
  note_flight : string -> unit;
  query_watchdog : unit -> string;
  query_verify : unit -> string;
  query_flight : unit -> string;
  restart : unit -> bool;
  crashed : unit -> bool;
  (* reverse debugging: checkpoint + deterministic replay-to-N *)
  retired : unit -> int64;
  checkpoint_restore : max_retired:int64 -> int64 option;
  set_retire_stop : int64 option -> unit;
  set_replay_mute : bool -> unit;
  (* page-permission virtual breakpoints *)
  vbp_arm : page:int -> unit;
  vbp_disarm : page:int -> unit;
  vbp_pass : pc:int -> unit;
}

type run_state =
  | Running
  | Stopped of Command.stop_reason
  | Step_over of int  (** stepping off a breakpoint, then keep running *)
  | Client_step of int option  (** host-requested step; re-patch addr after *)
  | Replaying of { as_step : bool }
      (** re-executing forward from a restored checkpoint toward a
          retirement target; [as_step] when driven by [rs] (breakpoints
          are stepped over silently), cleared for [rc] (breakpoints
          stop) *)

type t = {
  target : target;
  dispatch_cost : int;
  mutable endpoint : Reliable.t option;
      (** option only to tie the construction knot; always Some after create *)
  breakpoints : Breakpoints.t;
  mutable state : run_state;
  mutable replay_bp : int option;
      (** breakpoint being silently stepped across during an [rs] replay *)
  mutable commands : int;
  mutable notifications : int;
  mutable link_downs : int;
  mutable reverse_ops : int;
}

let brk_bytes = Bytes.to_string (Isa.encode Isa.Brk)

let virtual_mode t = Breakpoints.mode t.breakpoints = Breakpoints.Virtual

let get_endpoint t =
  match t.endpoint with Some e -> e | None -> assert false

(* Tear down an in-flight reverse execution (retire stop disarmed, the
   recorder un-muted) before any transition that ends it early. *)
let end_replay t =
  match t.state with
  | Replaying _ ->
    t.target.set_retire_stop None;
    t.target.set_replay_mute false;
    t.replay_bp <- None
  | Running | Stopped _ | Step_over _ | Client_step _ -> ()

let rec create ?link_config ~target ~dispatch_cost ~engine () =
  let t =
    {
      target;
      dispatch_cost;
      endpoint = None;
      breakpoints = Breakpoints.create ();
      state = Running;
      replay_bp = None;
      commands = 0;
      notifications = 0;
      link_downs = 0;
      reverse_ops = 0;
    }
  in
  let endpoint =
    Reliable.create ?config:link_config ~engine ~send_byte:target.send_byte
      ~deliver:(fun payload -> deliver t payload)
      ()
  in
  (* A dead link must not wedge the stub: drop the pending traffic, keep
     the debug state, and wait for the host's Resync.  The guest is
     stopped so nothing is lost while nobody is listening — the monitor
     stays quiescent in the paper's "attached, guest stopped" state. *)
  Reliable.set_on_link_down endpoint (fun () ->
      t.link_downs <- t.link_downs + 1;
      match t.state with
      | Stopped _ -> ()
      | Running | Step_over _ | Client_step _ | Replaying _ ->
        end_replay t;
        let pc = t.target.current_pc () in
        t.target.set_step false;
        t.target.stop ();
        t.state <- Stopped (Command.Halt_requested pc));
  t.endpoint <- Some endpoint;
  t

and send_reply t reply =
  Reliable.send (get_endpoint t) (Command.reply_to_wire reply)

and notify t reason =
  t.notifications <- t.notifications + 1;
  send_reply t (Command.Stopped reason)

and stop_with t reason =
  t.target.stop ();
  t.state <- Stopped reason

(* Breakpoint arming.

   Patch mode plants BRK over the guest's instruction and remembers the
   original bytes.  Virtual mode never touches guest memory: the address
   goes in the table and the monitor is told to drop the page's shadow
   mapping, so the next fetch from it refills no-execute and every
   subsequent fetch traps ([vbp_arm]/[vbp_disarm] are that resync; the
   NX decision itself is recomputed from the table at fill time). *)

and patch_brk t addr =
  match t.target.read_memory ~addr ~len:Isa.width with
  | None -> false (* unmapped/invalid address in both modes *)
  | Some saved ->
    if virtual_mode t then begin
      if Breakpoints.add t.breakpoints ~addr ~saved:"" then
        t.target.vbp_arm ~page:addr;
      true (* re-arming an armed site is idempotent *)
    end
    else if Breakpoints.add t.breakpoints ~addr ~saved then
      t.target.write_memory ~addr ~data:brk_bytes
    else true (* already present: idempotent *)

and unpatch_brk t addr =
  match Breakpoints.remove t.breakpoints ~addr with
  | Some saved ->
    if virtual_mode t then t.target.vbp_disarm ~page:addr
    else ignore (t.target.write_memory ~addr ~data:saved)
  | None -> ()

(* Make patches invisible: splice saved bytes into data read from memory.
   Virtual mode has nothing to hide — guest text is pristine — so reads
   pass through untouched (splicing stale plant-time bytes would in fact
   corrupt the view of self-modifying text). *)
and splice_saved t ~addr ~len data =
  if virtual_mode t then data
  else splice_saved_patch t ~addr ~len data

and splice_saved_patch t ~addr ~len data =
  let buf = Bytes.of_string data in
  List.iter
    (fun bp_addr ->
      match Breakpoints.saved_at t.breakpoints ~addr:bp_addr with
      | None -> ()
      | Some saved ->
        for i = 0 to String.length saved - 1 do
          let pos = bp_addr + i - addr in
          if pos >= 0 && pos < len then Bytes.set buf pos saved.[i]
        done)
    (Breakpoints.addresses t.breakpoints);
  Bytes.to_string buf

(* Writes that overlap a patch update the saved copy, not the BRK bytes.
   Virtual mode writes straight through: armed sites live only in the
   table and the shadow NX overlay, neither of which a data write can
   touch. *)
and write_memory_spliced t ~addr ~data =
  if virtual_mode t then t.target.write_memory ~addr ~data
  else write_memory_spliced_patch t ~addr ~data

and write_memory_spliced_patch t ~addr ~data =
  let len = String.length data in
  let bps = Breakpoints.addresses t.breakpoints in
  let overlapping =
    List.filter
      (fun a -> a + Isa.width > addr && a < addr + len)
      bps
  in
  if overlapping = [] then t.target.write_memory ~addr ~data
  else begin
    (* Write through, then restore the BRKs with refreshed saved bytes. *)
    let ok = ref (t.target.write_memory ~addr ~data) in
    List.iter
      (fun bp_addr ->
        match Breakpoints.remove t.breakpoints ~addr:bp_addr with
        | None -> ()
        | Some old_saved ->
          let saved = Bytes.of_string old_saved in
          for i = 0 to Bytes.length saved - 1 do
            let pos = bp_addr + i - addr in
            if pos >= 0 && pos < len then Bytes.set saved pos data.[pos]
          done;
          ignore
            (Breakpoints.add t.breakpoints ~addr:bp_addr
               ~saved:(Bytes.to_string saved));
          if not (t.target.write_memory ~addr:bp_addr ~data:brk_bytes) then
            ok := false)
      overlapping;
    !ok
  end

(* Resuming. *)

and continue_guest t =
  let pc = t.target.current_pc () in
  (if Breakpoints.mem t.breakpoints ~addr:pc then
     if virtual_mode t then begin
       (* One-shot pass: the monitor steps through the first exec fault
          at this pc instead of re-reporting the hit we resumed from.
          The site stays armed the whole time. *)
       t.target.vbp_pass ~pc;
       t.state <- Running
     end
     else begin
       (* Step across the patched instruction, then re-insert it. *)
       unpatch_brk t pc;
       t.target.set_step true;
       t.state <- Step_over pc
     end
   else t.state <- Running);
  t.target.resume ()

and step_guest t =
  let pc = t.target.current_pc () in
  let repatch =
    if Breakpoints.mem t.breakpoints ~addr:pc then
      if virtual_mode t then begin
        t.target.vbp_pass ~pc;
        None (* nothing planted, nothing to re-patch *)
      end
      else begin
        unpatch_brk t pc;
        Some pc
      end
    else None
  in
  t.target.set_step true;
  t.state <- Client_step repatch;
  t.target.resume ()

(* Reverse execution = checkpoint restore + deterministic replay-to-N.
   The retirement counter is the time axis: [rs] targets one instruction
   before the current boundary, [rc] re-runs to the current boundary —
   stopping early at the first breakpoint planted along the way — which
   for a crashed guest is the exact pre-crash instruction (the faulting
   instruction never retired, so the stop lands with pc on it, poised
   but not yet executed).

   The restore overwrote guest memory with the checkpoint image, so the
   current breakpoints are re-planted immediately (their saved bytes in
   the table are the original code bytes, which remain correct whether
   or not the image contained the BRK patch).  The recorder is muted
   while re-executing: replayed history must not re-enter the log. *)
and reverse_guest t ~as_step =
  match t.state with
  | Running | Step_over _ | Client_step _ | Replaying _ ->
    send_reply t (Command.Error 0x02)
  | Stopped _ ->
    let retired = t.target.retired () in
    let target_retired = if as_step then Int64.sub retired 1L else retired in
    if Int64.compare target_retired 0L < 0 then
      send_reply t (Command.Error 0x04)
    else begin
      match t.target.checkpoint_restore ~max_retired:target_retired with
      | None -> send_reply t (Command.Error 0x04)
      | Some at ->
        t.reverse_ops <- t.reverse_ops + 1;
        (* Virtual breakpoints survive the restore by construction: the
           restore cleared the shadow tables and the table-driven refill
           re-arms every page lazily.  Only patch mode must re-plant. *)
        if not (virtual_mode t) then
          List.iter
            (fun addr ->
              ignore (t.target.write_memory ~addr ~data:brk_bytes))
            (Breakpoints.addresses t.breakpoints);
        send_reply t Command.Ok_reply;
        if Int64.compare at target_retired >= 0 then begin
          (* The checkpoint sits exactly on the target boundary: no
             re-execution needed, report the landing directly. *)
          let pc = t.target.current_pc () in
          stop_with t (Command.Step_done pc);
          notify t (Command.Step_done pc)
        end
        else begin
          t.target.set_replay_mute true;
          t.target.set_retire_stop (Some target_retired);
          t.state <- Replaying { as_step };
          t.target.resume ()
        end
    end

(* Command dispatch. *)

and handle_command t command =
  t.commands <- t.commands + 1;
  (* Protocol frames land in the flight ring at frame granularity (the
     UART taps only show per-byte ingress); long payloads truncate. *)
  (let wire = Command.command_to_wire command in
   t.target.note_flight
     (if String.length wire > 24 then String.sub wire 0 24 ^ "..." else wire));
  t.target.charge t.dispatch_cost;
  match command with
  | Command.Read_registers ->
    send_reply t (Command.Registers (t.target.read_registers ()))
  | Command.Write_register (idx, v) ->
    if t.target.write_register idx v then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x01)
  | Command.Read_memory { addr; len } ->
    (match t.target.read_memory ~addr ~len with
     | Some data ->
       send_reply t (Command.Memory (splice_saved t ~addr ~len data))
     | None -> send_reply t (Command.Error 0x0E))
  | Command.Write_memory { addr; data } ->
    if write_memory_spliced t ~addr ~data then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x0E)
  | Command.Insert_breakpoint addr ->
    if patch_brk t addr then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x0E)
  | Command.Remove_breakpoint addr ->
    unpatch_brk t addr;
    send_reply t Command.Ok_reply
  | Command.Insert_watchpoint { addr; len } ->
    if t.target.set_watch ~addr ~len then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x0E)
  | Command.Remove_watchpoint { addr; len } ->
    if t.target.clear_watch ~addr ~len then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x0E)
  | Command.Continue ->
    (* [c] and [s] always answer exactly once, immediately: OK when the
       resume is accepted (stop reports still arrive separately as [T]
       notifications), an error code when refused.  The host sends them
       fire-and-forget, so without a guaranteed ack a refusal would land
       in the middle of some later command's reply window and shift the
       positional command/reply pairing. *)
    (match t.state with
     | Stopped _ ->
       (* A quarantined guest must not run again until restarted: its
          state is exactly what the crash left, and resuming it would
          only re-enter the fault.  E03 tells the host to restart. *)
       if t.target.crashed () then send_reply t (Command.Error 0x03)
       else begin
         send_reply t Command.Ok_reply;
         continue_guest t
       end
     | Running | Step_over _ | Client_step _ | Replaying _ ->
       send_reply t Command.Ok_reply)
  | Command.Step ->
    (match t.state with
     | Stopped _ ->
       if t.target.crashed () then send_reply t (Command.Error 0x03)
       else begin
         send_reply t Command.Ok_reply;
         step_guest t
       end
     | Running | Step_over _ | Client_step _ | Replaying _ ->
       send_reply t (Command.Error 0x02))
  | Command.Reverse_step -> reverse_guest t ~as_step:true
  | Command.Reverse_continue -> reverse_guest t ~as_step:false
  | Command.Halt ->
    (match t.state with
     | Stopped reason -> notify t reason
     | Running | Step_over _ | Client_step _ | Replaying _ ->
       end_replay t;
       let pc = t.target.current_pc () in
       t.target.set_step false;
       stop_with t (Command.Halt_requested pc);
       notify t (Command.Halt_requested pc))
  | Command.Read_console ->
    send_reply t (Command.Memory (t.target.read_console ()))
  | Command.Query_watchdog ->
    send_reply t (Command.Memory (t.target.query_watchdog ()))
  | Command.Query_verify ->
    send_reply t (Command.Memory (t.target.query_verify ()))
  | Command.Query_flight ->
    send_reply t (Command.Memory (t.target.query_flight ()))
  | Command.Restart ->
    (* The monitor reloads the snapshot and calls [note_restart] below
       before returning, so by the time OK goes out the breakpoints are
       re-planted and the guest is running from its entry point. *)
    if t.target.restart () then send_reply t Command.Ok_reply
    else send_reply t (Command.Error 0x0F)
  | Command.Read_profile ->
    send_reply t (Command.Memory (t.target.read_profile ()))
  | Command.Query_stop ->
    (match t.state with
     | Stopped reason -> send_reply t (Command.Stopped reason)
     | Running | Step_over _ | Client_step _ | Replaying _ ->
       send_reply t Command.Running)
  | Command.Resync ->
    (* The host is re-establishing a link it declared dead; restart the
       ARQ state on this side too, then confirm over the fresh link. *)
    Reliable.reset (get_endpoint t);
    Reliable.set_sequenced (get_endpoint t) true;
    send_reply t Command.Sync_ok
  | Command.Detach ->
    let was_virtual = virtual_mode t in
    List.iter
      (fun (addr, saved) ->
        if was_virtual then t.target.vbp_disarm ~page:addr
        else ignore (t.target.write_memory ~addr ~data:saved))
      (Breakpoints.clear t.breakpoints);
    (match t.state with
     | Stopped _ ->
       t.state <- Running;
       t.target.resume ()
     | Replaying _ ->
       end_replay t;
       t.state <- Running
     | Running | Step_over _ | Client_step _ -> ());
    send_reply t Command.Ok_reply

and deliver t payload =
  match Command.command_of_wire payload with
  | Some command -> handle_command t command
  | None -> send_reply t Command.Unsupported

let on_rx_byte t byte = Reliable.on_rx_byte (get_endpoint t) byte

(* Events from the guest side. *)

let on_breakpoint t ~pc =
  match t.state with
  | Replaying { as_step = true } when Breakpoints.mem t.breakpoints ~addr:pc ->
    (* [rs] re-execution: breakpoints along the replayed path are not
       stops.  Patch mode: unpatch, trap-step across, re-patch on the
       step trap.  Virtual mode: grant a one-shot pass (the retried
       fetch faults again and the monitor steps through) — the site
       never leaves the table. *)
    if virtual_mode t then t.target.vbp_pass ~pc
    else begin
      unpatch_brk t pc;
      t.replay_bp <- Some pc
    end;
    t.target.set_step true
  | Replaying { as_step = false } ->
    (* [rc] re-execution: first breakpoint after the checkpoint wins. *)
    end_replay t;
    t.target.set_step false;
    stop_with t (Command.Break pc);
    notify t (Command.Break pc)
  | _ ->
    end_replay t;
    t.target.set_step false;
    stop_with t (Command.Break pc);
    notify t (Command.Break pc)

let on_step_trap t ~pc =
  match t.state with
  | Step_over bp_addr ->
    ignore (patch_brk t bp_addr);
    t.target.set_step false;
    t.state <- Running
  | Client_step repatch ->
    (match repatch with
     | Some addr -> ignore (patch_brk t addr)
     | None -> ());
    t.target.set_step false;
    stop_with t (Command.Step_done pc);
    notify t (Command.Step_done pc)
  | Replaying _ ->
    (* End of a silent step across a replayed breakpoint: re-plant and
       keep re-executing toward the retirement target. *)
    (match t.replay_bp with
     | Some addr ->
       ignore (patch_brk t addr);
       t.replay_bp <- None
     | None -> ());
    t.target.set_step false
  | Running | Stopped _ ->
    (* The guest set its own trap flag; surface it like a breakpoint. *)
    t.target.set_step false;
    stop_with t (Command.Step_done pc);
    notify t (Command.Step_done pc)

(* The CPU landed on the requested retirement boundary: the reverse
   operation is over; report it like a completed step. *)
let on_retire_stop t ~pc =
  (match t.replay_bp with
   | Some addr ->
     ignore (patch_brk t addr);
     t.replay_bp <- None
   | None -> ());
  t.target.set_step false;
  t.target.set_replay_mute false;
  t.target.set_retire_stop None;
  stop_with t (Command.Step_done pc);
  notify t (Command.Step_done pc)

let on_watchpoint t ~pc ~addr =
  end_replay t;
  t.target.set_step false;
  stop_with t (Command.Watch_hit { pc; addr });
  notify t (Command.Watch_hit { pc; addr })

let on_guest_fault t ~vector ~pc =
  end_replay t;
  t.target.set_step false;
  stop_with t (Command.Faulted { vector; pc });
  notify t (Command.Faulted { vector; pc })

let on_wedge t ~pc =
  end_replay t;
  t.target.set_step false;
  stop_with t (Command.Wedged pc);
  notify t (Command.Wedged pc)

(* Called by the monitor from inside a warm restart, after the snapshot
   restore overwrote guest memory: re-plant every breakpoint (the saved
   bytes still match — they are the boot-image bytes the restore just
   wrote back) and forget any stop state; the guest is running again.
   Virtual breakpoints need no re-plant: the restart cleared the shadow
   tables and the table-driven NX refill re-arms every page lazily. *)
let note_restart t =
  end_replay t;
  if not (virtual_mode t) then
    List.iter
      (fun addr -> ignore (t.target.write_memory ~addr ~data:brk_bytes))
      (Breakpoints.addresses t.breakpoints);
  t.target.set_step false;
  t.state <- Running

let stopped t =
  match t.state with
  | Stopped _ -> true
  | Running | Step_over _ | Client_step _ | Replaying _ -> false

let replaying t =
  match t.state with
  | Replaying _ -> true
  | Running | Stopped _ | Step_over _ | Client_step _ -> false

let reverse_ops t = t.reverse_ops
let endpoint t = get_endpoint t
let link_stats t = Reliable.stats (get_endpoint t)
let retransmissions t = (link_stats t).Reliable.retransmits
let link_downs t = t.link_downs
let breakpoints t = t.breakpoints
let commands_handled t = t.commands
let notifications_sent t = t.notifications
