module Phys_mem = Vmm_hw.Phys_mem

type t = { entry : int; image : Bytes.t }

(* The guest owns everything below [monitor_base]; registers are all zero
   at boot (boot_guest clears them) and device queues are empty, so the
   guest-visible machine state at boot is exactly this byte image plus
   the entry point.  Device power-on state is re-established at restore
   time by the per-device [reset] functions the monitor calls. *)
let capture ~mem ~layout ~entry =
  {
    entry;
    image =
      Phys_mem.read_bytes mem ~addr:0 ~len:layout.Vm_layout.monitor_base;
  }

(* Restoring goes through the normal store path, so write generations
   bump and the CPU's decoded-instruction cache invalidates itself. *)
let restore t ~mem = Phys_mem.load_bytes mem ~addr:0 t.image
let entry t = t.entry
let image_bytes t = Bytes.length t.image
