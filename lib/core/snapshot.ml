module Phys_mem = Vmm_hw.Phys_mem

type t = { entry : int; image : Bytes.t }

(* The guest owns everything below [monitor_base]; registers are all zero
   at boot (boot_guest clears them) and device queues are empty, so the
   guest-visible machine state at boot is exactly this byte image plus
   the entry point.  Device power-on state is re-established at restore
   time by the per-device [reset] functions the monitor calls. *)
let capture ~mem ~layout ~entry =
  {
    entry;
    image =
      Phys_mem.read_bytes mem ~addr:0 ~len:layout.Vm_layout.monitor_base;
  }

(* Restoring goes through the normal store path, so write generations
   bump and the CPU's decoded-instruction cache invalidates itself. *)
let restore t ~mem = Phys_mem.load_bytes mem ~addr:0 t.image
let entry t = t.entry
let image_bytes t = Bytes.length t.image

(* Mid-run full checkpoints: everything a reverse-debug restore needs to
   put the guest back on an instruction boundary — memory image, CPU
   architectural state, the monitor's virtualized privileged state, and
   device state including in-flight DMA (captured with {e relative}
   completion offsets, so a restore at any later absolute time re-arms
   the same schedule without rewinding the engine clock). *)
module Full = struct
  module Cpu = Vmm_hw.Cpu
  module Machine = Vmm_hw.Machine
  module Pic = Vmm_hw.Pic
  module Pit = Vmm_hw.Pit
  module Scsi = Vmm_hw.Scsi
  module Nic = Vmm_hw.Nic
  module Isa = Vmm_hw.Isa
  module Reliable = Vmm_proto.Reliable

  type monitor_state = {
    v_if : bool;
    v_iht : int;
    v_ptb : int;
    v_cpl : int;
    v_stacks : int array;
    v_halted : bool;
    console : string;
  }

  type t = {
    cycle : int64;
    retired : int64;
    image : Bytes.t;
    regs : int array;  (* r0..r15 *)
    pc : int;
    flags : int;  (* real flags word (TF/IF/CPL bits included) *)
    cpl : int;
    halted : bool;
    mon : monitor_state;
    vpic : Pic.state;
    vpit : Pit.phase;
    pic : Pic.state;
    pit : Pit.phase;
    scsi : Scsi.state;
    nic : Nic.state;
    link : Reliable.seq_state;
  }

  let capture ~machine ~layout ~vpic ~vpit ~link ~mon =
    let cpu = Machine.cpu machine in
    {
      cycle = Machine.now machine;
      retired = Cpu.instructions_retired cpu;
      image =
        Phys_mem.read_bytes (Machine.mem machine) ~addr:0
          ~len:layout.Vm_layout.monitor_base;
      regs = Array.init Isa.num_regs (fun i -> Cpu.read_reg cpu i);
      pc = Cpu.pc cpu;
      flags = Cpu.flags_word cpu;
      cpl = Cpu.cpl cpu;
      halted = Cpu.halted cpu;
      mon;
      vpic = Pic.capture vpic;
      vpit = Pit.capture_phase vpit;
      pic = Pic.capture (Machine.pic machine);
      pit = Pit.capture_phase (Machine.pit machine);
      scsi = Scsi.capture (Machine.scsi machine);
      nic = Nic.capture (Machine.nic machine);
      link = Reliable.seq_state link;
    }

  let cycle t = t.cycle
  let retired t = t.retired

  (* FNV-1a 64 over a canonical serialization of the guest-visible state.
     The engine cycle is deliberately excluded: restores never rewind the
     clock, so two captures of identical guest state at different
     absolute times must digest equally (all time-like fields inside are
     already relative). *)
  let fnv_prime = 0x100000001b3L
  let fnv_offset = 0xcbf29ce484222325L

  let mix h byte =
    Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xFF))) fnv_prime

  let mix_int h v =
    let h = ref h in
    for i = 0 to 7 do
      h := mix !h ((v lsr (8 * i)) land 0xFF)
    done;
    !h

  let mix_int64 h v =
    let h = ref h in
    for i = 0 to 7 do
      h := mix !h (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done;
    !h

  let mix_bool h b = mix h (if b then 1 else 0)

  let mix_bytes h b =
    let h = ref (mix_int h (Bytes.length b)) in
    for i = 0 to Bytes.length b - 1 do
      h := mix !h (Char.code (Bytes.unsafe_get b i))
    done;
    !h

  let mix_string h s = mix_bytes h (Bytes.unsafe_of_string s)

  let mix_pic h (p : Pic.state) =
    let h = mix_int h p.Pic.st_vector_base in
    let h = mix_int h p.Pic.st_request in
    let h = mix_int h p.Pic.st_service in
    mix_int h p.Pic.st_mask

  let mix_pit h (p : Pit.phase) =
    let h = mix_int h p.Pit.ph_reload in
    let h = mix_int h p.Pit.ph_mode in
    mix_int64 h p.Pit.ph_remaining

  let digest t =
    let h = fnv_offset in
    let h = mix_int64 h t.retired in
    let h = mix_bytes h t.image in
    let h = Array.fold_left mix_int h t.regs in
    let h = mix_int h t.pc in
    let h = mix_int h t.flags in
    let h = mix_int h t.cpl in
    let h = mix_bool h t.halted in
    let h = mix_bool h t.mon.v_if in
    let h = mix_int h t.mon.v_iht in
    let h = mix_int h t.mon.v_ptb in
    let h = mix_int h t.mon.v_cpl in
    let h = Array.fold_left mix_int h t.mon.v_stacks in
    let h = mix_bool h t.mon.v_halted in
    let h = mix_string h t.mon.console in
    let h = mix_pic h t.vpic in
    let h = mix_pit h t.vpit in
    let h = mix_pic h t.pic in
    let h = mix_pit h t.pit in
    let s = t.scsi in
    let h = mix_int h s.Scsi.s_sel_target in
    let h = mix_int h s.Scsi.s_sel_lba in
    let h = mix_int h s.Scsi.s_sel_count in
    let h = mix_int h s.Scsi.s_sel_dma in
    let h = mix_bool h s.Scsi.s_error in
    let h =
      Array.fold_left
        (fun h (ts : Scsi.tgt_state) ->
          let h = mix_bool h ts.Scsi.ts_busy in
          let h = mix_bool h ts.Scsi.ts_done in
          let h =
            List.fold_left
              (fun h (sector, block) -> mix_bytes (mix_int h sector) block)
              h ts.Scsi.ts_sectors
          in
          mix_bytes h ts.Scsi.ts_staging)
        h s.Scsi.s_targets
    in
    let h =
      List.fold_left
        (fun h (os : Scsi.op_state) ->
          let h = mix_int h os.Scsi.os_target in
          let h = mix_int h os.Scsi.os_cmd in
          let h = mix_int h os.Scsi.os_lba in
          let h = mix_int h os.Scsi.os_count in
          let h = mix_int h os.Scsi.os_dma in
          mix_int64 h os.Scsi.os_remaining)
        h s.Scsi.s_inflight
    in
    let n = t.nic in
    let h = mix_int h n.Nic.n_tx_addr in
    let h = mix_int h n.Nic.n_tx_len in
    let h = mix_int h n.Nic.n_completions in
    let h = mix_bool h n.Nic.n_overflow in
    let h = mix_int64 h n.Nic.n_wire_remaining in
    let h = List.fold_left mix_bytes h n.Nic.n_rx in
    let h = mix_int h n.Nic.n_rx_addr in
    let h =
      List.fold_left
        (fun h (xs : Nic.tx_op_state) ->
          mix_int64 (mix_bytes h xs.Nic.xs_data) xs.Nic.xs_remaining)
        h n.Nic.n_inflight
    in
    let h = mix_int h t.link.Reliable.sq_next_seq in
    let h = mix_int h t.link.Reliable.sq_last_rx_seq in
    let h = mix_bool h t.link.Reliable.sq_sequenced in
    mix_bool h t.link.Reliable.sq_up
end
