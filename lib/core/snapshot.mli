(** Boot-time snapshot of guest-visible machine state, for warm restart.

    Captured by the monitor immediately after loading a guest image:
    every guest-owned physical byte (the region below the monitor
    reservation) plus the entry point.  Registers are architecturally
    zero at boot and device queues empty, so image + entry is the whole
    guest-visible state; the monitor re-establishes device power-on
    state via the per-device [reset] hooks when it restores.

    Restore writes through the normal store path, so physically tagged
    caches (the CPU's decoded-instruction cache) invalidate without
    explicit flushes. *)

type t

(** [capture ~mem ~layout ~entry] copies the guest-owned region out. *)
val capture : mem:Vmm_hw.Phys_mem.t -> layout:Vm_layout.t -> entry:int -> t

(** [restore t ~mem] writes the captured image back. *)
val restore : t -> mem:Vmm_hw.Phys_mem.t -> unit

val entry : t -> int

(** [image_bytes t] — size of the captured image (metrics/tests). *)
val image_bytes : t -> int
