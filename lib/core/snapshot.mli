(** Boot-time snapshot of guest-visible machine state, for warm restart.

    Captured by the monitor immediately after loading a guest image:
    every guest-owned physical byte (the region below the monitor
    reservation) plus the entry point.  Registers are architecturally
    zero at boot and device queues empty, so image + entry is the whole
    guest-visible state; the monitor re-establishes device power-on
    state via the per-device [reset] hooks when it restores.

    Restore writes through the normal store path, so physically tagged
    caches (the CPU's decoded-instruction cache) invalidate without
    explicit flushes. *)

type t

(** [capture ~mem ~layout ~entry] copies the guest-owned region out. *)
val capture : mem:Vmm_hw.Phys_mem.t -> layout:Vm_layout.t -> entry:int -> t

(** [restore t ~mem] writes the captured image back. *)
val restore : t -> mem:Vmm_hw.Phys_mem.t -> unit

val entry : t -> int

(** [image_bytes t] — size of the captured image (metrics/tests). *)
val image_bytes : t -> int

(** Mid-run full checkpoints for reverse debugging.

    A [Full.t] captures everything needed to put the guest back on an
    exact instruction boundary: the guest memory image, CPU architectural
    state, the monitor's virtualized privileged state, real and virtual
    interrupt-controller/timer state, SCSI/NIC device state including
    in-flight DMA, and the reliable-link sequence numbers.  All time-like
    fields are stored {e relative} to the capture instant, so a restore
    at any later absolute engine time re-arms the same schedule without
    rewinding the clock.

    {!Full.digest} hashes the guest-visible subset (FNV-1a 64) —
    excluding the engine cycle and debug-plane link state — so
    capture→restore→recapture digests compare equal and record/replay
    runs can assert bit-exact convergence. *)
module Full : sig
  (** The monitor's virtualized privileged state, supplied by the
      monitor at capture time (it is not reachable from the machine). *)
  type monitor_state = {
    v_if : bool;  (** virtual interrupt-enable flag *)
    v_iht : int;  (** virtual interrupt-handler table base *)
    v_ptb : int;  (** virtual page-table base *)
    v_cpl : int;  (** virtualized guest privilege level *)
    v_stacks : int array;  (** per-ring virtual stack pointers *)
    v_halted : bool;  (** guest executed virtual HLT *)
    console : string;  (** pending console buffer contents *)
  }

  type t = {
    cycle : int64;  (** absolute engine time at capture *)
    retired : int64;  (** instructions retired at capture *)
    image : Bytes.t;  (** guest-owned physical memory *)
    regs : int array;  (** r0..r15 *)
    pc : int;
    flags : int;  (** real CPU flags word *)
    cpl : int;
    halted : bool;
    mon : monitor_state;
    vpic : Vmm_hw.Pic.state;  (** virtual PIC presented to the guest *)
    vpit : Vmm_hw.Pit.phase;  (** virtual PIT presented to the guest *)
    pic : Vmm_hw.Pic.state;  (** real interrupt controller *)
    pit : Vmm_hw.Pit.phase;  (** real timer *)
    scsi : Vmm_hw.Scsi.state;
    nic : Vmm_hw.Nic.state;
    link : Vmm_proto.Reliable.seq_state;
  }

  val capture :
    machine:Vmm_hw.Machine.t ->
    layout:Vm_layout.t ->
    vpic:Vmm_hw.Pic.t ->
    vpit:Vmm_hw.Pit.t ->
    link:Vmm_proto.Reliable.t ->
    mon:monitor_state ->
    t

  val cycle : t -> int64
  val retired : t -> int64

  (** [digest t] — FNV-1a 64 over the guest-visible state.  Equal
      digests ⇒ bit-identical guest-visible state (memory, registers,
      virtualized privileged state, device state with relative DMA
      offsets).  Excludes the absolute capture cycle and link state. *)
  val digest : t -> int64
end
