module Phys_mem = Vmm_hw.Phys_mem
module Mmu = Vmm_hw.Mmu

exception Out_of_shadow_memory

type t = {
  mem : Phys_mem.t;
  arena_base : int;
  arena_size : int;
  mutable next_page : int; (* bump pointer, page units from arena base *)
  mutable pd : int;
  mutable live : int;
  mutable fills : int;
}

let page = Mmu.page_size

let alloc_page t =
  let offset = t.next_page * page in
  if offset + page > t.arena_size then raise Out_of_shadow_memory;
  t.next_page <- t.next_page + 1;
  let addr = t.arena_base + offset in
  Phys_mem.fill t.mem ~addr ~len:page 0;
  addr

let create ~mem ~layout () =
  let t =
    {
      mem;
      arena_base = layout.Vm_layout.shadow_base;
      arena_size = layout.Vm_layout.shadow_size;
      next_page = 0;
      pd = 0;
      live = 0;
      fills = 0;
    }
  in
  t.pd <- alloc_page t;
  t

let root t = t.pd

let clear t =
  t.next_page <- 0;
  t.live <- 0;
  t.pd <- alloc_page t

let map ?(nx = false) t ~vaddr ~frame ~writable ~user =
  let pde_addr = t.pd + (4 * Mmu.dir_index vaddr) in
  let pde = Phys_mem.read_u32 t.mem pde_addr in
  let pt =
    if Mmu.is_present pde then Mmu.frame_of pde
    else begin
      let pt = alloc_page t in
      (* Directory entries stay maximally permissive; the leaf enforces. *)
      Phys_mem.write_u32 t.mem pde_addr (Mmu.make_pte ~frame:pt ~writable:true ~user:true);
      pt
    end
  in
  let pte_addr = pt + (4 * Mmu.table_index vaddr) in
  let old = Phys_mem.read_u32 t.mem pte_addr in
  if not (Mmu.is_present old) then t.live <- t.live + 1;
  let pte = Mmu.make_pte ~frame ~writable ~user in
  Phys_mem.write_u32 t.mem pte_addr (if nx then pte lor Mmu.pte_nx else pte);
  t.fills <- t.fills + 1

let unmap t ~vaddr =
  let pde_addr = t.pd + (4 * Mmu.dir_index vaddr) in
  let pde = Phys_mem.read_u32 t.mem pde_addr in
  if Mmu.is_present pde then begin
    let pte_addr = Mmu.frame_of pde + (4 * Mmu.table_index vaddr) in
    if Mmu.is_present (Phys_mem.read_u32 t.mem pte_addr) then begin
      Phys_mem.write_u32 t.mem pte_addr 0;
      t.live <- t.live - 1
    end
  end

let mappings t = t.live
let fills t = t.fills
