(** Experiment harness: runs the HiTactix data-transfer workload on each of
    the paper's three systems and measures what Fig 3.1 plots — CPU load as
    a function of transfer rate — plus the throughput actually achieved on
    the wire. *)

type system =
  | Bare_metal  (** "real hardware" in Fig 3.1 *)
  | Lightweight_vmm  (** the paper's monitor *)
  | Hosted_full_vmm  (** the VMware Workstation 4 stand-in *)

val system_name : system -> string
val all_systems : system list

type measurement = {
  system : system;
  requested_mbps : float;
  achieved_mbps : float;  (** wire bytes (headers included) over the window *)
  cpu_load : float;  (** busy fraction over the measurement window *)
  duration_s : float;
  frames : int;  (** frames on the wire during the window *)
  counters : Vmm_guest.Kernel.counters;  (** guest's own view, cumulative *)
  busy_cycles : int64;  (** busy cycles inside the window *)
  elapsed_cycles : int64;
  breakdown : (string * int64) list;
      (** per-category busy cycles over the window (guest, mon_*, irq,
          stub — see docs/OBSERVABILITY.md); sums to [busy_cycles] *)
  irq_latency_p50 : float;  (** raise-to-ack delivery latency, cycles *)
  irq_latency_p99 : float;
      (** measured on the guest-facing interrupt controller (virtual PIC
          under a monitor, physical PIC on bare metal) *)
}

(** Live handles for callers that want system-specific statistics. *)
type context =
  | Ctx_bare of Vmm_hw.Machine.t
  | Ctx_lw of Core.Monitor.t
  | Ctx_full of Vmm_baseline.Full_vmm.t

val machine_of : context -> Vmm_hw.Machine.t

(** [prepare ?costs ?mem_size system ~config] builds a machine, installs
    the system and boots the guest kernel. *)
val prepare :
  ?costs:Vmm_hw.Costs.t ->
  ?mem_size:int ->
  system ->
  config:Vmm_guest.Kernel.config ->
  context * Vmm_hw.Asm.program

(** [measure ctx program ~config ~warmup_s ~duration_s] runs the prepared
    system and measures over [duration_s] after discarding [warmup_s]. *)
val measure :
  context ->
  Vmm_hw.Asm.program ->
  config:Vmm_guest.Kernel.config ->
  warmup_s:float ->
  duration_s:float ->
  measurement

(** [run ?costs ?mem_size system ~rate_mbps ~duration_s] — prepare +
    measure with the paper's default workload shape at [rate_mbps]. *)
val run :
  ?costs:Vmm_hw.Costs.t ->
  ?mem_size:int ->
  ?warmup_s:float ->
  system ->
  rate_mbps:float ->
  duration_s:float ->
  measurement * context

(** [max_sustainable_rate ?costs system ~lo ~hi ~steps] — bisection for the
    highest rate the system still delivers (achieved >= 95% of requested
    with CPU load < 99%); used for the paper's 5.4x / 26% headline. *)
val max_sustainable_rate :
  ?costs:Vmm_hw.Costs.t ->
  ?duration_s:float ->
  system ->
  lo:float ->
  hi:float ->
  steps:int ->
  float
