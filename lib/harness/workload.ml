module Machine = Vmm_hw.Machine
module Nic = Vmm_hw.Nic
module Costs = Vmm_hw.Costs
module Stats = Vmm_sim.Stats
module Kernel = Vmm_guest.Kernel
module Monitor = Core.Monitor
module Full_vmm = Vmm_baseline.Full_vmm

type system =
  | Bare_metal
  | Lightweight_vmm
  | Hosted_full_vmm

let system_name = function
  | Bare_metal -> "real hardware"
  | Lightweight_vmm -> "lightweight VMM"
  | Hosted_full_vmm -> "full VMM (hosted)"

let all_systems = [ Bare_metal; Lightweight_vmm; Hosted_full_vmm ]

type measurement = {
  system : system;
  requested_mbps : float;
  achieved_mbps : float;
  cpu_load : float;
  duration_s : float;
  frames : int;
  counters : Kernel.counters;
  busy_cycles : int64;
  elapsed_cycles : int64;
  breakdown : (string * int64) list;
  irq_latency_p50 : float;
  irq_latency_p99 : float;
}

type context =
  | Ctx_bare of Machine.t
  | Ctx_lw of Monitor.t
  | Ctx_full of Full_vmm.t

let machine_of = function
  | Ctx_bare m -> m
  | Ctx_lw mon -> Monitor.machine mon
  | Ctx_full vmm -> Full_vmm.machine vmm

let system_of_context = function
  | Ctx_bare _ -> Bare_metal
  | Ctx_lw _ -> Lightweight_vmm
  | Ctx_full _ -> Hosted_full_vmm

let prepare ?(costs = Costs.default) ?(mem_size = 16 * 1024 * 1024) system
    ~config =
  let m = Machine.create ~mem_size ~costs () in
  let program = Kernel.build config in
  let ctx =
    match system with
    | Bare_metal ->
      Machine.boot m program ~entry:Kernel.entry;
      Ctx_bare m
    | Lightweight_vmm ->
      let mon = Monitor.install m in
      Monitor.boot_guest mon program ~entry:Kernel.entry;
      Ctx_lw mon
    | Hosted_full_vmm ->
      let vmm = Full_vmm.install m in
      Full_vmm.boot_guest vmm program ~entry:Kernel.entry;
      Ctx_full vmm
  in
  (ctx, program)

(* Per-category deltas over a window.  [busy_by_category] values only
   grow, so every [before] category reappears in [after] and the deltas
   sum to the window's busy-cycle delta. *)
let breakdown_delta before after =
  List.filter_map
    (fun (cat, v) ->
      let v0 = Option.value ~default:0L (List.assoc_opt cat before) in
      let d = Int64.sub v v0 in
      if Int64.compare d 0L > 0 then Some (cat, d) else None)
    after

let measure ctx program ~config ~warmup_s ~duration_s =
  let m = machine_of ctx in
  let nic = Machine.nic m in
  Machine.run_seconds m warmup_s;
  (* Delivery latency comes from the interrupt controller the guest
     actually takes interrupts from: the monitor's virtual PIC when one
     is installed, the physical PIC otherwise.  Reset after warmup so the
     percentiles describe only the measurement window. *)
  let registry = Machine.registry m in
  let irq_hist =
    match
      Vmm_obs.Registry.find_histogram registry "vpic_delivery_latency_cycles"
    with
    | Some h -> Some h
    | None ->
      Vmm_obs.Registry.find_histogram registry "pic_delivery_latency_cycles"
  in
  Option.iter Stats.reset_histogram irq_hist;
  let t0 = Machine.now m in
  let busy0 = Stats.busy_cycles (Machine.load m) in
  let by_cat0 = Stats.busy_by_category (Machine.load m) in
  let bytes0 = Nic.bytes_sent nic in
  let frames0 = Nic.frames_sent nic in
  Machine.run_seconds m duration_s;
  let elapsed = Int64.sub (Machine.now m) t0 in
  let busy = Int64.sub (Stats.busy_cycles (Machine.load m)) busy0 in
  let bytes = Int64.sub (Nic.bytes_sent nic) bytes0 in
  let frames = Nic.frames_sent nic - frames0 in
  let costs = Machine.costs m in
  let seconds = Costs.seconds_of_cycles costs elapsed in
  let cpu_load =
    if Int64.compare elapsed 0L <= 0 then 0.0
    else min 1.0 (Int64.to_float busy /. Int64.to_float elapsed)
  in
  let achieved_mbps =
    if seconds <= 0.0 then 0.0
    else Int64.to_float bytes *. 8.0 /. seconds /. 1e6
  in
  let percentile p =
    match irq_hist with Some h -> Stats.percentile h p | None -> 0.0
  in
  {
    system = system_of_context ctx;
    requested_mbps = config.Kernel.rate_mbps;
    achieved_mbps;
    cpu_load;
    duration_s = seconds;
    frames;
    counters = Kernel.read_counters (Machine.mem m) program;
    busy_cycles = busy;
    elapsed_cycles = elapsed;
    breakdown =
      breakdown_delta by_cat0 (Stats.busy_by_category (Machine.load m));
    irq_latency_p50 = percentile 50.0;
    irq_latency_p99 = percentile 99.0;
  }

let run ?costs ?mem_size ?(warmup_s = 0.05) system ~rate_mbps ~duration_s =
  let config = Kernel.default_config ~rate_mbps in
  let ctx, program = prepare ?costs ?mem_size system ~config in
  let m = measure ctx program ~config ~warmup_s ~duration_s in
  (m, ctx)

let sustains ?costs ~duration_s system rate =
  (* Widen the window at low rates so it covers enough segments that
     quantization noise cannot mask a sustained rate. *)
  let config = Kernel.default_config ~rate_mbps:rate in
  let segment_s =
    float_of_int (8 * config.Kernel.segment_bytes) /. (rate *. 1e6)
  in
  let duration_s = max duration_s (20.0 *. segment_s) in
  let m, _ = run ?costs system ~rate_mbps:rate ~duration_s in
  m.achieved_mbps >= 0.95 *. rate && m.cpu_load < 0.99

let max_sustainable_rate ?costs ?(duration_s = 0.2) system ~lo ~hi ~steps =
  let rec bisect lo hi steps =
    if steps = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if sustains ?costs ~duration_s system mid then bisect mid hi (steps - 1)
      else bisect lo mid (steps - 1)
  in
  if sustains ?costs ~duration_s system hi then hi
  else if not (sustains ?costs ~duration_s system lo) then lo
  else bisect lo hi steps
