module Engine = Vmm_sim.Engine

type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;
      start : int64;
      stop : int64;
    }
  | Instant of { name : string; cat : string; tid : int; time : int64 }
  | Counter of { name : string; cat : string; time : int64; value : float }

type open_span = {
  span_name : string;
  span_cat : string;
  span_start : int64;
  mutable child_cycles : int64;
}

type t = {
  engine : Engine.t;
  capacity : int;
  mutable enabled : bool;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable stack : open_span list;
  mutable unbalanced : int;
  mutable dropped : int;
  by_cat : (string, int64 ref) Hashtbl.t;
}

let tid_cpu = 0
let tid_dma = 1

let create ?(capacity = 65536) ~engine () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
  {
    engine;
    capacity;
    enabled = false;
    events = [];
    count = 0;
    stack = [];
    unbalanced = 0;
    dropped = 0;
    by_cat = Hashtbl.create 16;
  }

let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let record t event =
  if t.count >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.events <- event :: t.events;
    t.count <- t.count + 1
  end

let attribute t cat cycles =
  match Hashtbl.find_opt t.by_cat cat with
  | Some r -> r := Int64.add !r cycles
  | None -> Hashtbl.add t.by_cat cat (ref cycles)

let begin_span t ~cat name =
  if t.enabled then
    t.stack <-
      {
        span_name = name;
        span_cat = cat;
        span_start = Engine.now t.engine;
        child_cycles = 0L;
      }
      :: t.stack

let end_span t =
  if t.enabled then
    match t.stack with
    | [] -> t.unbalanced <- t.unbalanced + 1
    | span :: rest ->
      t.stack <- rest;
      let stop = Engine.now t.engine in
      let duration = Int64.sub stop span.span_start in
      let exclusive = Int64.sub duration span.child_cycles in
      let exclusive = if Int64.compare exclusive 0L < 0 then 0L else exclusive in
      attribute t span.span_cat exclusive;
      (match rest with
       | parent :: _ ->
         parent.child_cycles <- Int64.add parent.child_cycles duration
       | [] -> ());
      record t
        (Complete
           {
             name = span.span_name;
             cat = span.span_cat;
             tid = tid_cpu;
             start = span.span_start;
             stop;
           })

let with_span t ~cat name f =
  if not t.enabled then f ()
  else begin
    begin_span t ~cat name;
    Fun.protect ~finally:(fun () -> end_span t) f
  end

let instant t ~cat name =
  if t.enabled then
    record t
      (Instant { name; cat; tid = tid_cpu; time = Engine.now t.engine })

let counter t ~cat name value =
  if t.enabled then
    record t (Counter { name; cat; time = Engine.now t.engine; value })

let add_complete t ?(tid = tid_dma) ~cat ~name ~start ~stop () =
  if t.enabled then record t (Complete { name; cat; tid; start; stop })

(* Close every open span at the current instant, innermost first, via
   the normal [end_span] path so exclusive-time attribution and parent
   child-cycle bookkeeping stay exact.  Crash-bundle capture calls this
   so spans open at crash time are flushed, not lost.  [end_span] is
   gated on [enabled], so force it on for the drain: a tracer disabled
   mid-run can still carry an open stack. *)
let flush_open_spans t =
  let flushed = List.length t.stack in
  let was_enabled = t.enabled in
  t.enabled <- true;
  while t.stack <> [] do
    end_span t
  done;
  t.enabled <- was_enabled;
  flushed

let events t = List.rev t.events
let event_count t = t.count
let depth t = List.length t.stack
let unbalanced_ends t = t.unbalanced
let dropped t = t.dropped

let breakdown t =
  Hashtbl.fold (fun cat r acc -> (cat, !r) :: acc) t.by_cat []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t =
  t.events <- [];
  t.count <- 0;
  t.stack <- [];
  t.unbalanced <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.by_cat

let to_chrome_json ?(cpu_hz = 1.26e9) t =
  let us_of_cycles c = Int64.to_float c /. cpu_hz *. 1e6 in
  let common ~name ~cat ~tid ~ts rest =
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
         ("ts", Json.Float (us_of_cycles ts));
       ]
      @ rest)
  in
  let event_json = function
    | Complete { name; cat; tid; start; stop } ->
      common ~name ~cat ~tid ~ts:start
        [
          ("ph", Json.String "X");
          ("dur", Json.Float (us_of_cycles (Int64.sub stop start)));
        ]
    | Instant { name; cat; tid; time } ->
      common ~name ~cat ~tid ~ts:time
        [ ("ph", Json.String "i"); ("s", Json.String "t") ]
    | Counter { name; cat; time; value } ->
      (* Chrome phase "C": Perfetto renders one counter track per name,
         plotting args.value over time. *)
      common ~name ~cat ~tid:tid_cpu ~ts:time
        [
          ("ph", Json.String "C");
          ("args", Json.Obj [ ("value", Json.Float value) ]);
        ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (events t)));
      ("displayTimeUnit", Json.String "ns");
    ]
