(** Minimal JSON tree, emitter and parser.

    The observability exporters (Chrome trace events, bench telemetry)
    need structured output and the tests need to re-read it, but the
    project deliberately carries no external JSON dependency — this is
    the smallest codec that round-trips what we emit.

    Emission notes: [Float] values that are not finite serialize as
    [null] (JSON has no NaN/Inf); strings are escaped per RFC 8259. The
    parser accepts any RFC 8259 document whose numbers fit [int]/[float]
    and decodes [\uXXXX] escapes below 0x80 directly (others become
    ['?'] — the exporters never emit them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [of_string s] parses one JSON document (trailing whitespace allowed;
    trailing garbage is an error). *)
val of_string : string -> (t, string) result

(** {2 Accessors (for tests and consumers)} *)

(** [member key json] — field lookup on [Obj]; [None] otherwise. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
