module Stats = Vmm_sim.Stats

type metric =
  | M_counter of Stats.counter
  | M_gauge of (unit -> float)
  | M_histogram of Stats.histogram

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
    }

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let check_name name =
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf
         "Registry: metric name %S violates the subsystem_name_unit \
          convention (lowercase, digits, underscores)"
         name)

let kind_mismatch name =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered with another kind" name)

let counter t name =
  check_name name;
  match Hashtbl.find_opt t.table name with
  | Some (M_counter c) -> c
  | Some _ -> kind_mismatch name
  | None ->
    let c = Stats.counter name in
    Hashtbl.add t.table name (M_counter c);
    c

let gauge t name f =
  check_name name;
  (match Hashtbl.find_opt t.table name with
   | Some (M_gauge _) | None -> ()
   | Some _ -> kind_mismatch name);
  Hashtbl.replace t.table name (M_gauge f)

let int_gauge t name f = gauge t name (fun () -> float_of_int (f ()))

let histogram t name ~buckets ~width =
  check_name name;
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) -> h
  | Some _ -> kind_mismatch name
  | None ->
    let h = Stats.histogram ~buckets ~width in
    Hashtbl.add t.table name (M_histogram h);
    h

let find_histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) -> Some h
  | Some _ | None -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort String.compare

let read = function
  | M_counter c -> Counter (Stats.counter_value c)
  | M_gauge f -> Gauge (f ())
  | M_histogram h ->
    Histogram
      {
        count = Stats.histogram_count h;
        mean = Stats.histogram_mean h;
        p50 = Stats.percentile h 50.0;
        p99 = Stats.percentile h 99.0;
      }

let snapshot t =
  List.map (fun name -> (name, read (Hashtbl.find t.table name))) (names t)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %Ld\n" name c)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float g))
      | Histogram { count; mean; p50; p99 } ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count);
        Buffer.add_string buf
          (Printf.sprintf "%s_mean %s\n" name (fmt_float mean));
        Buffer.add_string buf
          (Printf.sprintf "%s_p50 %s\n" name (fmt_float p50));
        Buffer.add_string buf
          (Printf.sprintf "%s_p99 %s\n" name (fmt_float p99)))
    (snapshot t);
  Buffer.contents buf

let reset t =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | M_counter c -> Stats.reset_counter c
      | M_histogram h -> Stats.reset_histogram h
      | M_gauge _ -> ())
    t.table
