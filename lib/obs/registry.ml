module Stats = Vmm_sim.Stats

type metric =
  | M_counter of Stats.counter
  | M_gauge of (unit -> float)
  | M_histogram of Stats.histogram

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
    }

type t = {
  table : (string, metric) Hashtbl.t;
  help : (string, string) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; help = Hashtbl.create 64 }

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let check_name name =
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf
         "Registry: metric name %S violates the subsystem_name_unit \
          convention (lowercase, digits, underscores)"
         name)

let kind_mismatch name =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered with another kind" name)

(* A metric registered without [?help] still gets a HELP line: real
   Prometheus tooling treats a missing HELP as an exposition smell, and
   the naming convention is descriptive enough to fall back on. *)
let default_help name = String.map (function '_' -> ' ' | c -> c) name

let set_help t name = function
  | Some text -> Hashtbl.replace t.help name text
  | None -> ()

let help_of t name =
  match Hashtbl.find_opt t.help name with
  | Some text -> text
  | None -> default_help name

let counter ?help t name =
  check_name name;
  set_help t name help;
  match Hashtbl.find_opt t.table name with
  | Some (M_counter c) -> c
  | Some _ -> kind_mismatch name
  | None ->
    let c = Stats.counter name in
    Hashtbl.add t.table name (M_counter c);
    c

let gauge ?help t name f =
  check_name name;
  set_help t name help;
  (match Hashtbl.find_opt t.table name with
   | Some (M_gauge _) | None -> ()
   | Some _ -> kind_mismatch name);
  Hashtbl.replace t.table name (M_gauge f)

let int_gauge ?help t name f = gauge ?help t name (fun () -> float_of_int (f ()))

let histogram ?help t name ~buckets ~width =
  check_name name;
  set_help t name help;
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) -> h
  | Some _ -> kind_mismatch name
  | None ->
    let h = Stats.histogram ~buckets ~width in
    Hashtbl.add t.table name (M_histogram h);
    h

let find_histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (M_histogram h) -> Some h
  | Some _ | None -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort String.compare

let read = function
  | M_counter c -> Counter (Stats.counter_value c)
  | M_gauge f -> Gauge (f ())
  | M_histogram h ->
    Histogram
      {
        count = Stats.histogram_count h;
        mean = Stats.histogram_mean h;
        p50 = Stats.percentile h 50.0;
        p99 = Stats.percentile h 99.0;
      }

let snapshot t =
  List.map (fun name -> (name, read (Hashtbl.find t.table name))) (names t)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Prometheus exposition.  Histograms emit the real scrape shape —
   cumulative [_bucket{le="..."}] samples (each bucket counts every
   observation at or below its upper bound, last bucket [+Inf] equals
   [_count]) plus [_sum]/[_count] — not midpoint percentiles, which no
   scraper can aggregate. *)
let dump t =
  let buf = Buffer.create 1024 in
  let meta name kind =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (help_of t name));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun name ->
      match Hashtbl.find t.table name with
      | M_counter c ->
        meta name "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s %Ld\n" name (Stats.counter_value c))
      | M_gauge f ->
        meta name "gauge";
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float (f ())))
      | M_histogram h ->
        meta name "histogram";
        let counts = Stats.bucket_counts h in
        let width = Stats.histogram_width h in
        let buckets = Array.length counts - 1 in
        let cumulative = ref 0 in
        for i = 0 to buckets - 1 do
          cumulative := !cumulative + counts.(i);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
               (fmt_float (float_of_int (i + 1) *. width))
               !cumulative)
        done;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
             (Stats.histogram_count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" name
             (fmt_float (Stats.histogram_sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count %d\n" name (Stats.histogram_count h)))
    (names t);
  Buffer.contents buf

let reset t =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | M_counter c -> Stats.reset_counter c
      | M_histogram h -> Stats.reset_histogram h
      | M_gauge _ -> ())
    t.table

(* Fleet-style collection: a pure fold over per-instance registries into
   a fresh one — the inputs are never mutated and hold no reference to
   the result.  Counters sum; compatible histograms merge bucket-wise;
   gauges become a callback summing the live per-instance callbacks
   (collecting a fleet total at read time).  A name registered with
   different kinds (or incompatible histogram shapes) across instances
   raises [Invalid_argument]. *)
let merge registries =
  let out = create () in
  List.iter
    (fun src ->
      Hashtbl.iter
        (fun name text ->
          if not (Hashtbl.mem out.help name) then
            Hashtbl.replace out.help name text)
        src.help;
      List.iter
        (fun name ->
          let metric = Hashtbl.find src.table name in
          match (Hashtbl.find_opt out.table name, metric) with
          | None, M_counter c ->
            let merged = Stats.counter name in
            Stats.add merged (Stats.counter_value c);
            Hashtbl.add out.table name (M_counter merged)
          | Some (M_counter acc), M_counter c ->
            Stats.add acc (Stats.counter_value c)
          | None, M_gauge f -> Hashtbl.add out.table name (M_gauge f)
          | Some (M_gauge g), M_gauge f ->
            Hashtbl.replace out.table name (M_gauge (fun () -> g () +. f ()))
          | None, M_histogram h ->
            Hashtbl.add out.table name (M_histogram (Stats.copy_histogram h))
          | Some (M_histogram acc), M_histogram h ->
            Hashtbl.replace out.table name
              (M_histogram (Stats.add_histograms acc h))
          | Some _, _ -> kind_mismatch name)
        (names src))
    registries;
  out
