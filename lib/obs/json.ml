type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- Emission -- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep integral floats readable and stable across platforms *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit buf json;
  Buffer.contents buf

(* -- Parsing: recursive descent over a string cursor -- *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let parse_hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           let v = try parse_hex4 () with _ -> fail "bad \\u escape" in
           Buffer.add_char buf (if v < 0x80 then Char.chr v else '?')
         | Some c -> fail (Printf.sprintf "bad escape '\\%c'" c)
         | None -> fail "unterminated escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt text with
         | Some f -> Float f
         | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_list ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let value = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          fields ((key, value) :: acc)
        | Some '}' ->
          advance ();
          List.rev ((key, value) :: acc)
        | _ -> fail "expected ',' or '}'"
      in
      Obj (fields [])
    end
  and parse_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      List []
    end
    else begin
      let rec items acc =
        let value = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          items (value :: acc)
        | Some ']' ->
          advance ();
          List.rev (value :: acc)
        | _ -> fail "expected ',' or ']'"
      in
      List (items [])
    end
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* -- Accessors -- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
