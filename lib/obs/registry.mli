(** Metrics registry: named counters, gauges and histograms registered
    per subsystem, with a stable snapshot API and a Prometheus-style
    text dump.

    Naming convention: [subsystem_name_unit] in [snake_case] —
    [scsi_reads_completed_total], [pic_delivery_latency_cycles],
    [nic_tx_queued_frames] (see docs/OBSERVABILITY.md).  Registration is
    idempotent: registering an existing name with the same kind returns
    the existing instrument; a kind mismatch raises [Invalid_argument].

    Counters and histograms are owned by the registry (created on
    registration); gauges are callbacks sampled at snapshot/dump time,
    so a subsystem can expose an internal mutable field without handing
    out state. *)

type t

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
    }

val create : unit -> t

(** [counter t name] registers (or finds) a counter. *)
val counter : t -> string -> Vmm_sim.Stats.counter

(** [gauge t name f] registers a gauge sampled via [f].  Re-registering
    replaces the callback (a reattached subsystem supersedes the old
    one). *)
val gauge : t -> string -> (unit -> float) -> unit

(** [int_gauge t name f] — convenience wrapper over {!gauge}. *)
val int_gauge : t -> string -> (unit -> int) -> unit

(** [histogram t name ~buckets ~width] registers (or finds) a histogram
    covering [[0, buckets*width)] plus an overflow bucket. *)
val histogram : t -> string -> buckets:int -> width:float -> Vmm_sim.Stats.histogram

(** [find_histogram t name] — the registered histogram, if any. *)
val find_histogram : t -> string -> Vmm_sim.Stats.histogram option

(** {2 Reading} *)

(** [names t] — registered names, sorted. *)
val names : t -> string list

(** [snapshot t] — every metric's current value, sorted by name.  Two
    snapshots with no intervening activity are equal (gauges must be
    pure reads for this to hold — theirs are). *)
val snapshot : t -> (string * value) list

(** [dump t] — Prometheus-style text exposition: [# TYPE] comment plus
    one sample line per metric ([_count]/[_mean]/[_p50]/[_p99] lines for
    histograms), sorted by name, trailing newline. *)
val dump : t -> string

(** {2 Reset}

    [reset t] zeroes every counter and histogram.  Gauges are live
    callbacks into subsystem state and are deliberately left alone — a
    benchmark that wants a clean interval snapshots before and after
    instead. *)
val reset : t -> unit
