(** Metrics registry: named counters, gauges and histograms registered
    per subsystem, with a stable snapshot API and a Prometheus-style
    text exposition.

    Naming convention: [subsystem_name_unit] in [snake_case] —
    [scsi_reads_completed_total], [pic_delivery_latency_cycles],
    [nic_tx_queued_frames] (see docs/OBSERVABILITY.md).  Registration is
    idempotent: registering an existing name with the same kind returns
    the existing instrument; a kind mismatch raises [Invalid_argument].

    Counters and histograms are owned by the registry (created on
    registration); gauges are callbacks sampled at snapshot/dump time,
    so a subsystem can expose an internal mutable field without handing
    out state.

    Registries are plain values: one per {!Vmm_hw.Machine} (and one per
    host-side session), never a process-wide singleton, so hundreds of
    instances can coexist per domain and be collected with {!merge}. *)

type t

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
    }

val create : unit -> t

(** [counter t name] registers (or finds) a counter.  [?help] sets the
    [# HELP] text (last registration wins; a readable default is derived
    from the name otherwise). *)
val counter : ?help:string -> t -> string -> Vmm_sim.Stats.counter

(** [gauge t name f] registers a gauge sampled via [f].  Re-registering
    replaces the callback (a reattached subsystem supersedes the old
    one). *)
val gauge : ?help:string -> t -> string -> (unit -> float) -> unit

(** [int_gauge t name f] — convenience wrapper over {!gauge}. *)
val int_gauge : ?help:string -> t -> string -> (unit -> int) -> unit

(** [histogram t name ~buckets ~width] registers (or finds) a histogram
    covering [[0, buckets*width)] plus an overflow bucket. *)
val histogram :
  ?help:string -> t -> string -> buckets:int -> width:float ->
  Vmm_sim.Stats.histogram

(** [find_histogram t name] — the registered histogram, if any. *)
val find_histogram : t -> string -> Vmm_sim.Stats.histogram option

(** {2 Reading} *)

(** [names t] — registered names, sorted. *)
val names : t -> string list

(** [snapshot t] — every metric's current value, sorted by name.  Two
    snapshots with no intervening activity are equal (gauges must be
    pure reads for this to hold — theirs are). *)
val snapshot : t -> (string * value) list

(** [dump t] — Prometheus text exposition, sorted by name, trailing
    newline.  Every metric gets [# HELP] and [# TYPE] comments.
    Counters and gauges emit one sample line; histograms emit the
    scrapeable shape: cumulative [name_bucket{le="<upper>"}] samples
    (the final bucket is [le="+Inf"] and equals [name_count]), then
    [name_sum] and [name_count]. *)
val dump : t -> string

(** {2 Fleet collection}

    [merge registries] — a pure fold of per-instance registries into a
    fresh one; the inputs are never mutated.  Counters sum into new
    counters; histograms with identical shapes sum bucket-wise into new
    histograms; gauges compose into a callback summing the live
    per-instance callbacks.  A name registered with different kinds (or
    incompatible histogram shapes) across instances raises
    [Invalid_argument]. *)
val merge : t list -> t

(** {2 Reset}

    [reset t] zeroes every counter and histogram.  Gauges are live
    callbacks into subsystem state and are deliberately left alone — a
    benchmark that wants a clean interval snapshots before and after
    instead. *)
val reset : t -> unit
