(** Cycle-attribution span tracer.

    Records begin/end spans in simulation time so every cycle of a run
    can be attributed to a category — guest-direct execution, the
    monitor's trap kinds, interrupt delivery, the debug stub, device DMA
    — and exported as Chrome trace-event JSON that opens directly in
    Perfetto or about:tracing (see docs/OBSERVABILITY.md for the
    category taxonomy).

    The tracer starts {e disabled}: every probe is a cheap early-return
    so instrumented hot paths pay one load and one branch.  Spans nest;
    each completed span contributes its {e exclusive} time (duration
    minus nested children) to its category, so the per-category
    breakdown never double-counts.  Unbalanced [end_span] calls are
    counted and ignored rather than corrupting the stack. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      tid : int;
      start : int64;
      stop : int64;
    }  (** a closed span: Chrome phase "X" *)
  | Instant of { name : string; cat : string; tid : int; time : int64 }
      (** a point event: Chrome phase "i" *)
  | Counter of { name : string; cat : string; time : int64; value : float }
      (** a counter-track sample: Chrome phase "C"; Perfetto plots one
          track per name (used for the CPU's block-cache counters) *)

type t

(** [create ~engine ()] — spans are timestamped with [engine]'s clock.
    At most [capacity] events are retained (default 65536); later events
    are dropped and counted in {!dropped}. *)
val create : ?capacity:int -> engine:Vmm_sim.Engine.t -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** [begin_span t ~cat name] opens a nested span on the CPU track.
    No-op while disabled. *)
val begin_span : t -> cat:string -> string -> unit

(** [end_span t] closes the innermost span.  With no span open, the call
    is ignored and counted in {!unbalanced_ends}. *)
val end_span : t -> unit

(** [with_span t ~cat name f] — [begin_span]/[f ()]/[end_span], closing
    the span even if [f] raises. *)
val with_span : t -> cat:string -> string -> (unit -> 'a) -> 'a

(** [instant t ~cat name] records a point event at the current time. *)
val instant : t -> cat:string -> string -> unit

(** [counter t ~cat name value] records a counter-track sample at the
    current time.  Counter events bypass the nesting stack and the
    category breakdown — they carry a value, not CPU time. *)
val counter : t -> cat:string -> string -> float -> unit

(** [add_complete t ?tid ~cat ~name ~start ~stop ()] records an
    already-timed span, e.g. an asynchronous device DMA whose completion
    time is known when it is scheduled.  [tid] selects the track
    (default {!tid_dma}); these spans bypass the nesting stack and do
    not feed the category breakdown (device time is not CPU time). *)
val add_complete :
  t ->
  ?tid:int ->
  cat:string ->
  name:string ->
  start:int64 ->
  stop:int64 ->
  unit ->
  unit

(** The CPU track (nested spans) and the device-DMA track. *)
val tid_cpu : int

val tid_dma : int

(** {2 Introspection} *)

(** [events t] — retained events, oldest first. *)
val events : t -> event list

val event_count : t -> int

(** [depth t] — currently open spans. *)
val depth : t -> int

(** [flush_open_spans t] closes every open span at the current instant,
    innermost first, through the normal {!end_span} path (exclusive-time
    attribution stays exact).  Returns how many spans were flushed.
    Crash-bundle capture uses this so spans open at crash time land in
    the exported trace instead of being silently dropped. *)
val flush_open_spans : t -> int

val unbalanced_ends : t -> int
val dropped : t -> int

(** [breakdown t] — exclusive cycles per category over all {e closed}
    CPU-track spans, sorted by category name. *)
val breakdown : t -> (string * int64) list

(** [clear t] drops events, open spans and counters (enabled state and
    capacity survive). *)
val clear : t -> unit

(** {2 Export} *)

(** [to_chrome_json ?cpu_hz t] — a Chrome trace-event document
    ([{"traceEvents": [...], ...}]).  Timestamps are microseconds;
    [cpu_hz] (default 1.26e9, the simulated part) converts cycles.
    Open spans are not exported. *)
val to_chrome_json : ?cpu_hz:float -> t -> Json.t
