(** Measurement helpers: counters, busy-time (CPU load) accounting and
    fixed-bucket histograms.

    CPU load is defined as in the paper's Fig 3.1: the fraction of elapsed
    cycles during which the processor was doing work (guest code, monitor
    emulation, interrupt handling) rather than halted. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int64 -> unit
val counter_name : counter -> string
val counter_value : counter -> int64
val reset_counter : counter -> unit

(** {1 Busy-time accounting} *)

type load

(** [load ()] is a fresh accumulator with zero busy time, attributing to
    {!default_category}. *)
val load : unit -> load

(** [note_busy load cycles] records [cycles] of non-idle execution,
    attributed to the current category. *)
val note_busy : load -> int64 -> unit

(** {2 Cycle attribution}

    Every busy cycle lands in exactly one named category (the one
    current when it is charged), so the per-category totals always sum
    to {!busy_cycles} — the invariant the Fig 3.1 breakdown relies on.
    The monitor switches category around its trap handlers; code that
    never calls {!set_category} books everything to the default. *)

(** ["guest"] — direct guest execution. *)
val default_category : string

(** [set_category load cat] routes subsequent busy cycles to [cat]. *)
val set_category : load -> string -> unit

(** [category load] — the current attribution category. *)
val category : load -> string

(** [with_category load cat f] runs [f] with the category switched to
    [cat], restoring the previous category even if [f] raises. *)
val with_category : load -> string -> (unit -> 'a) -> 'a

(** [busy_by_category load] — nonzero per-category busy cycles, sorted
    by category name.  The values sum to {!busy_cycles}. *)
val busy_by_category : load -> (string * int64) list

(** [busy_cycles load] is the accumulated busy time. *)
val busy_cycles : load -> int64

(** [utilization load ~elapsed] is busy/elapsed clamped to [0,1];
    0 when [elapsed] is 0. *)
val utilization : load -> elapsed:int64 -> float

val reset_load : load -> unit

(** {1 Histograms} *)

type histogram

(** [histogram ~buckets ~width] covers [\[0, buckets*width)] plus an
    overflow bucket. *)
val histogram : buckets:int -> width:float -> histogram

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_mean : histogram -> float

(** [histogram_sum h] — the running sum of every observed value (the
    Prometheus [_sum] sample). *)
val histogram_sum : histogram -> float

(** [histogram_width h] — the fixed bucket width, from which the
    cumulative [le] upper bounds derive: bucket [i] covers values
    [< (i+1) * width], the final bucket is unbounded ([+Inf]). *)
val histogram_width : histogram -> float

(** [bucket_counts h] includes the final overflow bucket. *)
val bucket_counts : histogram -> int array

(** [copy_histogram h] — an independent copy (mutating either side never
    affects the other). *)
val copy_histogram : histogram -> histogram

(** [add_histograms a b] — a fresh histogram holding the bucket-wise sum;
    neither input is mutated.
    @raise Invalid_argument when shapes (width, bucket count) differ. *)
val add_histograms : histogram -> histogram -> histogram

(** [percentile h p] approximates the [p]-th percentile ([0 <= p <= 100])
    from bucket midpoints; 0 on an empty histogram.

    The overflow bucket is unbounded, so a percentile landing there is
    reported as the midpoint of a {e nominal} extra bucket,
    [(buckets + 0.5) * width] — an underestimate whenever real
    observations exceed [(buckets + 1) * width].  Size histograms so the
    percentiles you care about stay out of overflow. *)
val percentile : histogram -> float -> float

(** [reset_histogram h] zeroes every bucket, the count and the sum. *)
val reset_histogram : histogram -> unit
