(** Bounded in-memory event trace.

    Components append tagged records (device name, severity, message,
    timestamp, optional structured fields); the ring keeps the most
    recent [capacity] entries.  Tests and the debugger use it to assert
    on event ordering without scraping logs.

    A minimum-severity threshold makes low-severity emission a cheap
    no-op on hot paths: a filtered [emit] is one comparison — nothing is
    stored or counted. *)

type severity = Debug | Info | Warn | Error

type record = {
  time : int64;
  component : string;
  severity : severity;
  message : string;
  fields : (string * string) list;
      (** structured key/value context, e.g. [("port", "0x2C0")] *)
}

type t

(** [create ~capacity ()] holds at most [capacity] records (>= 1) and
    starts with the threshold at [Debug] (everything recorded). *)
val create : capacity:int -> unit -> t

(** [set_level t level] — records below [level] are discarded at the
    emission site from now on. *)
val set_level : t -> severity -> unit

val level : t -> severity

(** [emit t ~time ~component ~severity ?fields message] appends a record
    if [severity] is at or above the threshold. *)
val emit :
  t ->
  time:int64 ->
  component:string ->
  severity:severity ->
  ?fields:(string * string) list ->
  string ->
  unit

(** [records t] is the retained history, oldest first. *)
val records : t -> record list

(** [find ?min_severity t ~component] filters retained records by
    component and severity (default [Debug]: component only), oldest
    first. *)
val find : ?min_severity:severity -> t -> component:string -> record list

(** [count t] is the number of retained records. *)
val count : t -> int

(** [total t] counts every record ever emitted, including evicted ones
    (but not ones filtered by the severity threshold). *)
val total : t -> int

val clear : t -> unit

val severity_to_string : severity -> string

(** [pp_record fmt r] prints ["\[time\] component level: message"]
    followed by [" key=value"] per structured field. *)
val pp_record : Format.formatter -> record -> unit
