type t = {
  mutable clock : int64;
  queue : (unit -> unit) Event_queue.t;
  mutable wake : int;
}

let create () = { clock = 0L; queue = Event_queue.create (); wake = 0 }

let now t = t.clock

let wake_generation t = t.wake

let advance t cycles =
  if Int64.compare cycles 0L < 0 then invalid_arg "Engine.advance: negative";
  t.clock <- Int64.add t.clock cycles

let at t ~time f =
  let time = if Int64.compare time t.clock < 0 then t.clock else time in
  t.wake <- t.wake + 1;
  Event_queue.add t.queue ~time f

let after t ~delay f = at t ~time:(Int64.add t.clock delay) f

let cancel t handle = Event_queue.cancel t.queue handle

let next_event_time t = Event_queue.peek_time t.queue

let dispatch_due t =
  let rec loop n =
    match Event_queue.peek_time t.queue with
    | Some time when Int64.compare time t.clock <= 0 ->
      (match Event_queue.pop t.queue with
       | Some (_, f) ->
         f ();
         loop (n + 1)
       | None -> n)
    | Some _ | None -> n
  in
  loop 0

let run_until t ~time =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some event_time when Int64.compare event_time time <= 0 ->
      (match Event_queue.pop t.queue with
       | Some (event_time, f) ->
         if Int64.compare event_time t.clock > 0 then t.clock <- event_time;
         f ();
         loop ()
       | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  if Int64.compare time t.clock > 0 then t.clock <- time

let run_until_idle ?(max_events = 10_000_000) t =
  let rec loop n =
    if n >= max_events then n
    else
      match Event_queue.pop t.queue with
      | Some (event_time, f) ->
        if Int64.compare event_time t.clock > 0 then t.clock <- event_time;
        f ();
        loop (n + 1)
      | None -> n
  in
  loop 0

let pending t = Event_queue.length t.queue
