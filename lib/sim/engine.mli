(** Discrete-event simulation engine.

    Time is counted in CPU cycles ([int64]).  Components schedule thunks at
    absolute or relative times; [run_until] advances the clock to each event
    in order and executes it.  The machine simulator interleaves instruction
    execution with event dispatch by consulting [next_event_time]. *)

type t

(** [create ()] is an engine with the clock at cycle 0. *)
val create : unit -> t

(** [now engine] is the current simulation time in cycles. *)
val now : t -> int64

(** [advance engine cycles] moves the clock forward by [cycles] without
    dispatching events (used by the CPU to account instruction time).
    @raise Invalid_argument if [cycles] is negative. *)
val advance : t -> int64 -> unit

(** [at engine ~time f] schedules [f] to run when the clock reaches [time].
    Scheduling in the past clamps to the current time. *)
val at : t -> time:int64 -> (unit -> unit) -> Event_queue.handle

(** [after engine ~delay f] schedules [f] at [now + delay]. *)
val after : t -> delay:int64 -> (unit -> unit) -> Event_queue.handle

(** [cancel engine handle] cancels a scheduled thunk; false if already run. *)
val cancel : t -> Event_queue.handle -> bool

(** [next_event_time engine] is the timestamp of the next pending event. *)
val next_event_time : t -> int64 option

(** [wake_generation engine] increments every time something is scheduled.
    A batched run loop captures it before entering a tight stepping loop and
    re-checks it each iteration: any change means the event horizon it
    computed may be stale (e.g. a port write scheduled an earlier event),
    so the batch must fall back to the dispatcher. *)
val wake_generation : t -> int

(** [dispatch_due engine] runs every event whose time is [<= now], in order.
    Returns the number of events dispatched. *)
val dispatch_due : t -> int

(** [run_until engine ~time] dispatches events in time order, advancing the
    clock to each, until the queue holds nothing at or before [time]; the
    clock finishes at exactly [time]. *)
val run_until : t -> time:int64 -> unit

(** [run_until_idle ?max_events engine] dispatches until the queue is empty
    or [max_events] (default 10_000_000) have run; returns events run. *)
val run_until_idle : ?max_events:int -> t -> int

(** [pending engine] is the number of scheduled events. *)
val pending : t -> int
