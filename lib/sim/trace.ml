type severity = Debug | Info | Warn | Error

type record = {
  time : int64;
  component : string;
  severity : severity;
  message : string;
  fields : (string * string) list;
}

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int;
  mutable stored : int;
  mutable emitted : int;
  mutable level : severity;
}

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let create ~capacity () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    stored = 0;
    emitted = 0;
    level = Debug;
  }

let set_level t level = t.level <- level
let level t = t.level

let emit t ~time ~component ~severity ?(fields = []) message =
  (* Below-threshold emission is the cheap no-op hot paths rely on: one
     comparison, no allocation, no ring write, not counted. *)
  if rank severity >= rank t.level then begin
    t.ring.(t.next) <- Some { time; component; severity; message; fields };
    t.next <- (t.next + 1) mod t.capacity;
    if t.stored < t.capacity then t.stored <- t.stored + 1;
    t.emitted <- t.emitted + 1
  end

let records t =
  let start = (t.next - t.stored + t.capacity) mod t.capacity in
  let rec collect i acc =
    if i < 0 then acc
    else
      let slot = (start + i) mod t.capacity in
      match t.ring.(slot) with
      | Some r -> collect (i - 1) (r :: acc)
      | None -> collect (i - 1) acc
  in
  collect (t.stored - 1) []

let find ?(min_severity = Debug) t ~component =
  List.filter
    (fun r ->
      String.equal r.component component
      && rank r.severity >= rank min_severity)
    (records t)

let count t = t.stored

let total t = t.emitted

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.stored <- 0;
  t.emitted <- 0

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp_record fmt r =
  Format.fprintf fmt "[%Ld] %s %s: %s" r.time r.component
    (severity_to_string r.severity)
    r.message;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) r.fields
