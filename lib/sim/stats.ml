type counter = {
  name : string;
  mutable value : int64;
}

let counter name = { name; value = 0L }
let incr c = c.value <- Int64.add c.value 1L
let add c v = c.value <- Int64.add c.value v
let counter_name c = c.name
let counter_value c = c.value
let reset_counter c = c.value <- 0L

type load = {
  mutable busy : int64;
  mutable category : string;
  mutable current : int64 ref; (* cache of by_cat.(category) *)
  by_cat : (string, int64 ref) Hashtbl.t;
}

let default_category = "guest"

let cat_ref l cat =
  match Hashtbl.find_opt l.by_cat cat with
  | Some r -> r
  | None ->
    let r = ref 0L in
    Hashtbl.add l.by_cat cat r;
    r

let load () =
  let by_cat = Hashtbl.create 16 in
  let current = ref 0L in
  Hashtbl.add by_cat default_category current;
  { busy = 0L; category = default_category; current; by_cat }

let note_busy l cycles =
  l.busy <- Int64.add l.busy cycles;
  l.current := Int64.add !(l.current) cycles

let busy_cycles l = l.busy

let set_category l cat =
  if not (String.equal cat l.category) then begin
    l.category <- cat;
    l.current <- cat_ref l cat
  end

let category l = l.category

let with_category l cat f =
  let prev = l.category in
  set_category l cat;
  Fun.protect ~finally:(fun () -> set_category l prev) f

let busy_by_category l =
  Hashtbl.fold
    (fun cat r acc -> if Int64.equal !r 0L then acc else (cat, !r) :: acc)
    l.by_cat []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let utilization l ~elapsed =
  if Int64.compare elapsed 0L <= 0 then 0.0
  else
    let u = Int64.to_float l.busy /. Int64.to_float elapsed in
    if u < 0.0 then 0.0 else if u > 1.0 then 1.0 else u

let reset_load l =
  l.busy <- 0L;
  Hashtbl.iter (fun _ r -> r := 0L) l.by_cat

type histogram = {
  width : float;
  counts : int array; (* last slot is the overflow bucket *)
  mutable total : int;
  mutable sum : float;
}

let histogram ~buckets ~width =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if width <= 0.0 then invalid_arg "Stats.histogram: width <= 0";
  { width; counts = Array.make (buckets + 1) 0; total = 0; sum = 0.0 }

let observe h v =
  let buckets = Array.length h.counts - 1 in
  let index =
    if v < 0.0 then 0
    else
      let i = int_of_float (v /. h.width) in
      if i >= buckets then buckets else i
  in
  h.counts.(index) <- h.counts.(index) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. v

let reset_histogram h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.total <- 0;
  h.sum <- 0.0

let histogram_count h = h.total

let histogram_mean h = if h.total = 0 then 0.0 else h.sum /. float_of_int h.total

let histogram_sum h = h.sum
let histogram_width h = h.width

let copy_histogram h = { h with counts = Array.copy h.counts }

let add_histograms a b =
  if a.width <> b.width || Array.length a.counts <> Array.length b.counts then
    invalid_arg "Stats.add_histograms: incompatible histogram shapes";
  {
    width = a.width;
    counts = Array.mapi (fun i v -> v + b.counts.(i)) a.counts;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
  }

let bucket_counts h = Array.copy h.counts

let percentile h p =
  if h.total = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int h.total in
    let rec scan i acc =
      if i >= Array.length h.counts then
        h.width *. float_of_int (Array.length h.counts)
      else
        let acc = acc + h.counts.(i) in
        if float_of_int acc >= rank then (float_of_int i +. 0.5) *. h.width
        else scan (i + 1) acc
    in
    scan 0 0
  end
