(* Binary min-heap keyed by (time, sequence).  Cancellation flips the cell's
   shared liveness ref and lets the dead cell sift out lazily at pop time, so
   cancel is O(1) and handles stay type-safe ([bool ref] does not mention
   the payload type). *)

type 'a cell = {
  time : int64;
  seq : int;
  payload : 'a;
  live : bool ref;
}

type 'a t = {
  mutable heap : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
  mutable live_count : int;
}

type handle = bool ref

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0; live_count = 0 }

let is_empty q = q.live_count = 0

let length q = q.live_count

let cell_lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let get q i =
  match q.heap.(i) with
  | Some c -> c
  | None -> assert false

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt (get q i) (get q parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && cell_lt (get q left) (get q !smallest) then smallest := left;
  if right < q.size && cell_lt (get q right) (get q !smallest) then smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let heap = Array.make (2 * Array.length q.heap) None in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let add q ~time payload =
  if q.size = Array.length q.heap then grow q;
  let live = ref true in
  let cell = { time; seq = q.next_seq; payload; live } in
  q.next_seq <- q.next_seq + 1;
  q.heap.(q.size) <- Some cell;
  q.size <- q.size + 1;
  q.live_count <- q.live_count + 1;
  sift_up q (q.size - 1);
  live

(* Rebuild the heap from its live cells.  The compaction in [cancel] keeps
   heavy cancel traffic (ARQ retransmit timers) from leaving the array
   mostly dead, which would make every sift walk over garbage. *)
let compact q =
  let heap = q.heap in
  let j = ref 0 in
  for i = 0 to q.size - 1 do
    match heap.(i) with
    | Some c when !(c.live) ->
      heap.(!j) <- Some c;
      incr j
    | _ -> ()
  done;
  for i = !j to q.size - 1 do
    heap.(i) <- None
  done;
  q.size <- !j;
  for i = (q.size / 2) - 1 downto 0 do
    sift_down q i
  done

let cancel q h =
  if !h then begin
    h := false;
    q.live_count <- q.live_count - 1;
    if q.size >= 32 && q.size - q.live_count > q.size / 2 then compact q;
    true
  end
  else false

let remove_root q =
  let root = get q 0 in
  q.size <- q.size - 1;
  q.heap.(0) <- q.heap.(q.size);
  q.heap.(q.size) <- None;
  if q.size > 0 then sift_down q 0;
  root

(* Drop dead cells sitting at the root so peek/pop see a live minimum. *)
let rec drain_dead q =
  if q.size > 0 && not !((get q 0).live) then begin
    ignore (remove_root q);
    drain_dead q
  end

let peek_time q =
  drain_dead q;
  if q.size = 0 then None else Some (get q 0).time

let pop q =
  drain_dead q;
  if q.size = 0 then None
  else begin
    let cell = remove_root q in
    cell.live := false;
    q.live_count <- q.live_count - 1;
    Some (cell.time, cell.payload)
  end

let clear q =
  for i = 0 to q.size - 1 do
    match q.heap.(i) with
    | Some c -> c.live := false
    | None -> ()
  done;
  Array.fill q.heap 0 q.size None;
  q.size <- 0;
  q.live_count <- 0
