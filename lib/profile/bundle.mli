(** Crash bundles: one self-describing text artifact assembling
    everything needed to diagnose a dead guest offline — the flight
    ring, the full-snapshot digest, the tail of the replay trace, the
    metrics-registry snapshot, the crash report itself — composed from
    pre-rendered sections.

    The format is deliberately plain text: a magic first line, a
    [cause=… cycle=… sections=N] header, then framed sections.  It can
    be read with a pager, split with grep, parsed back with
    {!sections}, shipped as a CI artifact, and served over the debug
    link ([qR]) without any binary framing. *)

type section

val magic : string

(** [section ~name body] — a named section.  Names are
    [a-z0-9_-]; anything else raises [Invalid_argument]. *)
val section : name:string -> string -> section

(** [compose ~cause ~cycle sections] renders the bundle. *)
val compose : cause:string -> cycle:int64 -> section list -> string

(** [header text] — the header key/value pairs ([cause], [cycle],
    [sections]); [None] when [text] is not a bundle. *)
val header : string -> (string * string) list option

(** [sections text] — every framed [(name, body)], in order; empty when
    [text] is not a bundle. *)
val sections : string -> (string * string) list

val find_section : string -> string -> string option
