(** Always-on flight recorder: a fixed-size ring of recent structured
    events — traps, IRQ deliveries, I/O and DMA activity, protocol
    frames, watchdog/chaos verdicts — fed by the machine and the
    monitor.

    In steady state a recorded event costs one ring write (no
    allocation beyond the entry, no formatting, no I/O); the ring is
    only rendered when a dump is requested — on crash/wedge into the
    crash bundle, or over the debug link via [qR].  When the ring wraps,
    the oldest entries are overwritten and counted in {!dropped}: the
    ring always holds the {e last} [capacity] events before the dump,
    which is exactly the "last millisecond before it died" view. *)

type entry = {
  cycle : int64;  (** engine time the event was recorded *)
  kind : string;  (** dot-separated source, e.g. [irq.deliver] *)
  detail : string;
}

type t

val default_capacity : int

(** [create ()] — an empty ring of [capacity] entries (default 512). *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** [note t ~cycle ~kind detail] records one event, overwriting the
    oldest when full. *)
val note : t -> cycle:int64 -> kind:string -> string -> unit

(** [total t] — events ever recorded. *)
val total : t -> int

(** [retained t] — events currently in the ring. *)
val retained : t -> int

(** [dropped t] — events overwritten by wrap ([total - retained]). *)
val dropped : t -> int

(** [entries t] — retained entries, oldest first. *)
val entries : t -> entry list

val clear : t -> unit

(** [dump t] — self-describing text (the [qR] payload): a
    [flight total=… retained=… dropped=… capacity=…] header, then one
    [@cycle kind: detail] line per entry, oldest first. *)
val dump : t -> string
