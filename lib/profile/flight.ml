type entry = {
  cycle : int64;
  kind : string;
  detail : string;
}

type t = {
  ring : entry array;
  mutable next : int;
  mutable total : int;
}

let no_entry = { cycle = 0L; kind = ""; detail = "" }
let default_capacity = 512

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  { ring = Array.make capacity no_entry; next = 0; total = 0 }

let capacity t = Array.length t.ring

(* Steady-state cost is exactly this: one record build, one array store,
   two index updates.  No allocation beyond the entry itself, no I/O,
   no formatting until a dump is requested. *)
let note t ~cycle ~kind detail =
  t.ring.(t.next) <- { cycle; kind; detail };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let total t = t.total
let retained t = min t.total (Array.length t.ring)
let dropped t = t.total - retained t

let entries t =
  let n = retained t in
  let cap = Array.length t.ring in
  List.init n (fun i -> t.ring.((t.next - n + i + (2 * cap)) mod cap))

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) no_entry;
  t.next <- 0;
  t.total <- 0

(* Self-describing text — the [qR] payload and the crash-bundle flight
   section: a header line, then one [@cycle kind: detail] line per
   retained entry, oldest first. *)
let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "flight total=%d retained=%d dropped=%d capacity=%d\n"
       t.total (retained t) (dropped t) (capacity t));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "@%Ld %s: %s\n" e.cycle e.kind e.detail))
    (entries t);
  Buffer.contents buf
