type section = {
  s_name : string;
  s_body : string;
}

let magic = "LWVMM-CRASH-BUNDLE v1"

let valid_section_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
       name

let section ~name body =
  if not (valid_section_name name) then
    invalid_arg (Printf.sprintf "Bundle.section: bad section name %S" name);
  { s_name = name; s_body = body }

let compose ~cause ~cycle sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "cause=%s cycle=%Ld sections=%d\n" cause cycle
       (List.length sections));
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "--- begin %s ---\n" s.s_name);
      Buffer.add_string buf s.s_body;
      if s.s_body <> "" && s.s_body.[String.length s.s_body - 1] <> '\n' then
        Buffer.add_char buf '\n';
      Buffer.add_string buf (Printf.sprintf "--- end %s ---\n" s.s_name))
    sections;
  Buffer.contents buf

let header text =
  match String.split_on_char '\n' text with
  | m :: hdr :: _ when m = magic ->
    Some
      (List.filter_map
         (fun tok ->
           match String.index_opt tok '=' with
           | Some i ->
             Some
               ( String.sub tok 0 i,
                 String.sub tok (i + 1) (String.length tok - i - 1) )
           | None -> None)
         (String.split_on_char ' ' hdr))
  | _ -> None

let sections text =
  match String.split_on_char '\n' text with
  | m :: _ when m = magic ->
    let rec go lines acc current =
      match lines with
      | [] -> List.rev acc
      | line :: rest ->
        (match current with
         | None ->
           let pre = "--- begin " and post = " ---" in
           if
             String.length line > String.length pre + String.length post
             && String.sub line 0 (String.length pre) = pre
             && String.sub line
                  (String.length line - String.length post)
                  (String.length post)
                = post
           then
             let name =
               String.sub line (String.length pre)
                 (String.length line - String.length pre
                - String.length post)
             in
             go rest acc (Some (name, Buffer.create 256))
           else go rest acc None
         | Some (name, buf) ->
           if line = Printf.sprintf "--- end %s ---" name then
             go rest ((name, Buffer.contents buf) :: acc) None
           else begin
             Buffer.add_string buf line;
             Buffer.add_char buf '\n';
             go rest acc current
           end)
    in
    go (String.split_on_char '\n' text) [] None
  | _ -> []

let find_section text name = List.assoc_opt name (sections text)
