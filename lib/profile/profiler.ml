module Engine = Vmm_sim.Engine
module Json = Vmm_obs.Json

type key = {
  k_pc : int;
  k_ring : int;
  k_cat : string;
}

(* Internally a bucket is a packed int — [pc lsl 8 | ring lsl 6 | cat
   id] — so the steady-state path hashes machine integers instead of a
   record holding a string, and the recent ring is two plain int arrays
   (no write barriers, no boxing).  The public {!key} record is
   reconstructed on demand.  Ring takes 2 bits (CPL is 0..3) and the
   category id 6; category 63 doubles as an overflow bucket in the
   unlikely event a machine grows more than 63 distinct load
   categories. *)
let cat_bits = 6
let max_cats = (1 lsl cat_bits) - 1
let ring_shift = cat_bits
let pc_shift = cat_bits + 2

type t = {
  engine : Engine.t;
  mutable period : int64;
  mutable next_due : int64;
  counts : (int, int ref) Hashtbl.t; (* packed bucket -> hits *)
  mutable cats : string array; (* category id -> name *)
  mutable ncats : int;
  (* One-entry caches: tight guest loops sample the same bucket over and
     over, and the load category changes far less often than samples
     fire.  [cat_memo] is compared physically — Stats.category hands
     back its stored string, so only a real switch changes identity (a
     structurally-equal-but-distinct string merely rescans the small
     category table, which is still correct). *)
  mutable cat_memo : string;
  mutable cat_memo_id : int;
  mutable memo_packed : int;
  mutable memo_count : int ref;
  (* Bounded ring of the most recent samples, for time-resolved export
     (Perfetto counter tracks).  The aggregate table above is unbounded
     in distinct buckets but those are few; the ring is what bounds
     per-sample memory.  Cycles fit 63-bit ints with room to spare. *)
  recent_cycle : int array;
  recent_packed : int array;
  mutable recent_next : int;
  mutable recent_total : int;
  mutable total : int;
}

let default_period = 8192L

(* A fresh 1-byte string: physically distinct from every real category
   (zero-length strings are a shared atom, so an empty guard could
   falsely hit). *)
let fresh_guard () = String.make 1 '\000'

let create ?(recent_capacity = 4096) ~engine () =
  if recent_capacity < 1 then
    invalid_arg "Profiler.create: recent_capacity < 1";
  {
    engine;
    period = 0L;
    next_due = 0L;
    counts = Hashtbl.create 256;
    cats = Array.make 8 "";
    ncats = 0;
    cat_memo = fresh_guard ();
    cat_memo_id = 0;
    memo_packed = -1;
    memo_count = ref 0;
    recent_cycle = Array.make recent_capacity 0;
    recent_packed = Array.make recent_capacity 0;
    recent_next = 0;
    recent_total = 0;
    total = 0;
  }

let cat_id t cat =
  if cat == t.cat_memo then t.cat_memo_id
  else begin
    let rec find i =
      if i >= t.ncats then
        if t.ncats >= max_cats then max_cats (* overflow bucket *)
        else begin
          let id = t.ncats in
          if id >= Array.length t.cats then begin
            let bigger = Array.make (2 * Array.length t.cats) "" in
            Array.blit t.cats 0 bigger 0 (Array.length t.cats);
            t.cats <- bigger
          end;
          t.cats.(id) <- cat;
          t.ncats <- id + 1;
          id
        end
      else if String.equal t.cats.(i) cat then i
      else find (i + 1)
    in
    let id = find 0 in
    t.cat_memo <- cat;
    t.cat_memo_id <- id;
    id
  end

let pack t ~pc ~ring ~cat =
  (pc lsl pc_shift) lor ((ring land 3) lsl ring_shift) lor cat_id t cat

let key_of_packed t packed =
  {
    k_pc = packed lsr pc_shift;
    k_ring = (packed lsr ring_shift) land 3;
    k_cat =
      (let id = packed land max_cats in
       if id < t.ncats then t.cats.(id)
       else if id = max_cats then "overflow"
       else "");
  }

let period t = t.period
let enabled t = Int64.compare t.period 0L > 0

let set_period t p =
  if Int64.compare p 0L < 0 then invalid_arg "Profiler.set_period: negative";
  t.period <- p;
  t.next_due <- if enabled t then Int64.add (Engine.now t.engine) p else 0L

(* [due]/[note_sampled] implement the every-N-cycles cadence for callers
   that drive sampling themselves (the CPU dispatch loop owns its own
   copy of this check so the off case costs one compare — see
   Cpu.set_sampling). *)
let due t =
  enabled t && Int64.compare (Engine.now t.engine) t.next_due >= 0

(* The steady-state cost of an armed profiler is this function, so the
   common path stays cheap: pack the bucket into one int, and a repeat
   of the last bucket is an int compare plus an increment.  A miss is an
   int-keyed hashtable probe — no string hashing, no key allocation. *)
let sample t ~pc ~ring ~cat =
  let packed = pack t ~pc ~ring ~cat in
  if packed = t.memo_packed then incr t.memo_count
  else begin
    let r =
      match Hashtbl.find_opt t.counts packed with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add t.counts packed r;
        r
    in
    incr r;
    t.memo_packed <- packed;
    t.memo_count <- r
  end;
  t.recent_cycle.(t.recent_next) <- Int64.to_int (Engine.now t.engine);
  t.recent_packed.(t.recent_next) <- packed;
  t.recent_next <- (t.recent_next + 1) mod Array.length t.recent_packed;
  t.recent_total <- t.recent_total + 1;
  t.total <- t.total + 1;
  t.next_due <- Int64.add (Engine.now t.engine) t.period

let total_samples t = t.total

let buckets t =
  Hashtbl.fold (fun packed r acc -> (key_of_packed t packed, !r) :: acc)
    t.counts []
  |> List.sort (fun (ka, ca) (kb, cb) ->
         if ca <> cb then compare cb ca
         else compare (ka.k_pc, ka.k_ring, ka.k_cat) (kb.k_pc, kb.k_ring, kb.k_cat))

let sum_by proj t =
  let table = Hashtbl.create 16 in
  Hashtbl.iter
    (fun packed r ->
      let k = proj (key_of_packed t packed) in
      match Hashtbl.find_opt table k with
      | Some acc -> acc := !acc + !r
      | None -> Hashtbl.add table k (ref !r))
    t.counts;
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []

let by_pc t =
  sum_by (fun k -> k.k_pc) t
  |> List.sort (fun (pa, ca) (pb, cb) ->
         if ca <> cb then compare cb ca else compare pa pb)

let by_ring t =
  sum_by (fun k -> k.k_ring) t |> List.sort (fun (a, _) (b, _) -> compare a b)

let by_category t =
  sum_by (fun k -> k.k_cat) t
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t =
  Hashtbl.reset t.counts;
  (* category ids stay valid: names are interned for the profiler's
     lifetime, so the cat memo survives a clear *)
  t.memo_packed <- -1;
  t.memo_count <- ref 0;
  t.recent_next <- 0;
  t.recent_total <- 0;
  t.total <- 0

(* Self-describing text dump — the [qP] payload.  First line is the
   header; every following line is one aggregate bucket, hottest
   first. *)
let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "samples=%d period=%Ld buckets=%d\n" t.total t.period
       (Hashtbl.length t.counts));
  List.iter
    (fun (key, count) ->
      Buffer.add_string buf
        (Printf.sprintf "pc=0x%x ring=%d cat=%s count=%d\n" key.k_pc
           key.k_ring key.k_cat count))
    (buckets t);
  Buffer.contents buf

(* Parse [dump] output back into (header fields, buckets); the session
   layer uses this on the qP payload. *)
let parse_dump text =
  let fields line =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' line)
  in
  match String.split_on_char '\n' (String.trim text) with
  | [] -> None
  | header :: rest ->
    let hdr = fields header in
    if not (List.mem_assoc "samples" hdr) then None
    else
      let bucket line =
        let f = fields line in
        match
          ( List.assoc_opt "pc" f,
            List.assoc_opt "ring" f,
            List.assoc_opt "cat" f,
            List.assoc_opt "count" f )
        with
        | Some pc, Some ring, Some cat, Some count ->
          (try
             Some
               ( { k_pc = int_of_string pc;
                   k_ring = int_of_string ring;
                   k_cat = cat;
                 },
                 int_of_string count )
           with Failure _ -> None)
        | _ -> None
      in
      Some (hdr, List.filter_map bucket (List.filter (( <> ) "") rest))

let default_resolve pc = Printf.sprintf "0x%x" pc

(* Collapsed-stack ("folded") text: one line per bucket,
   [cat;ring<r>;<frame> <count>], directly consumable by flamegraph
   tooling.  [resolve] maps a pc to a frame name (CFG/symbol attribution
   lives with the caller so this library stays dependency-light). *)
let collapsed ?(resolve = default_resolve) t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, count) ->
      Buffer.add_string buf
        (Printf.sprintf "%s;ring%d;%s %d\n"
           (if key.k_cat = "" then "uncategorized" else key.k_cat)
           key.k_ring (resolve key.k_pc) count))
    (buckets t);
  Buffer.contents buf

(* Perfetto counter tracks from the recent-sample ring: the retained
   window is sliced into fixed time buckets and each slice emits one
   "C" (counter) event per track — per-ring sample counts on one track,
   per-category on another.  Opens directly in Perfetto/about:tracing
   alongside Tracer.to_chrome_json output. *)
let perfetto_counters ?(cpu_hz = 1.26e9) ?(slices = 64) t =
  let us_of_cycles c = Int64.to_float c /. cpu_hz *. 1e6 in
  let capacity = Array.length t.recent_packed in
  let retained = min t.recent_total capacity in
  let samples =
    (* oldest first *)
    List.init retained (fun i ->
        let idx = (t.recent_next - retained + i + (2 * capacity)) mod capacity in
        (Int64.of_int t.recent_cycle.(idx), key_of_packed t t.recent_packed.(idx)))
  in
  match samples with
  | [] -> Json.Obj [ ("traceEvents", Json.List []) ]
  | (first_cycle, _) :: _ ->
    let last_cycle =
      List.fold_left (fun _ (c, _) -> c) first_cycle samples
    in
    let span = Int64.sub last_cycle first_cycle in
    let slices = max 1 slices in
    let slice_width =
      let w = Int64.div span (Int64.of_int slices) in
      if Int64.compare w 1L < 0 then 1L else w
    in
    let slice_of c =
      let i = Int64.to_int (Int64.div (Int64.sub c first_cycle) slice_width) in
      if i >= slices then slices - 1 else i
    in
    let rings = Hashtbl.create 8 and cats = Hashtbl.create 8 in
    let bump table k slice =
      let arr =
        match Hashtbl.find_opt table k with
        | Some a -> a
        | None ->
          let a = Array.make slices 0 in
          Hashtbl.add table k a;
          a
      in
      arr.(slice) <- arr.(slice) + 1
    in
    List.iter
      (fun (cycle, key) ->
        let s = slice_of cycle in
        bump rings (Printf.sprintf "ring%d" key.k_ring) s;
        bump cats (if key.k_cat = "" then "uncategorized" else key.k_cat) s)
      samples;
    let counter_events name table =
      List.concat
        (List.init slices (fun s ->
             let ts =
               us_of_cycles
                 (Int64.add first_cycle
                    (Int64.mul (Int64.of_int s) slice_width))
             in
             let args =
               Hashtbl.fold (fun k arr acc -> (k, Json.Int arr.(s)) :: acc)
                 table []
               |> List.sort (fun (a, _) (b, _) -> String.compare a b)
             in
             if args = [] then []
             else
               [
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("ph", Json.String "C");
                     ("pid", Json.Int 0);
                     ("ts", Json.Float ts);
                     ("args", Json.Obj args);
                   ];
               ]))
    in
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            (counter_events "profile_samples_by_ring" rings
            @ counter_events "profile_samples_by_category" cats) );
        ("displayTimeUnit", Json.String "ns");
      ]
