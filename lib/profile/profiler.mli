(** Continuous PC-sampling profiler.

    The monitor samples the guest program counter every N guest cycles
    from the CPU dispatch loop — no cooperation from guest code, no
    dependence on the guest's own timer (unlike the legacy
    timer-interrupt sampling, which goes blind when the guest masks
    interrupts or wedges).  Each sample is attributed to a
    (pc, ring, category) bucket: the ring is the guest's privilege level
    at the sample instant, the category is the monitor's current
    cycle-attribution category (see {!Vmm_sim.Stats.with_category}), so
    one profile answers both "where in the guest" and "guest code or
    monitor emulation".

    Sampling reads state and never advances the simulation clock or
    schedules events, so enabling it cannot perturb guest-visible
    behaviour — record/replay bit-equality holds with profiling on.

    Symbolization is the caller's business: reports accept a [resolve]
    callback (pc to frame name) so this library depends on nothing but
    the simulator core, and CFG/symbol attribution plugs in from the
    debugger side. *)

(** One aggregate bucket key. *)
type key = {
  k_pc : int;
  k_ring : int;
  k_cat : string;
}

type t

(** The default sampling period used by the CLI and benches when none is
    given: every 8192 guest cycles (~6.5 us at the simulated 1.26 GHz —
    ~154k samples per simulated second). *)
val default_period : int64

(** [create ~engine ()] — a disabled profiler (period 0).  The newest
    [recent_capacity] samples (default 4096) are additionally retained
    time-stamped for the Perfetto counter export. *)
val create : ?recent_capacity:int -> engine:Vmm_sim.Engine.t -> unit -> t

(** [period t] — sampling period in guest cycles; [0L] = disabled. *)
val period : t -> int64

val enabled : t -> bool

(** [set_period t p] sets the period ([0L] disables) and re-arms the
    next sample one period from now.
    @raise Invalid_argument on a negative period. *)
val set_period : t -> int64 -> unit

(** [due t] — the cadence check for callers driving sampling by hand:
    enabled and at least one period elapsed since the last sample. *)
val due : t -> bool

(** [sample t ~pc ~ring ~cat] records one sample at the current engine
    time and re-arms the cadence. *)
val sample : t -> pc:int -> ring:int -> cat:string -> unit

val total_samples : t -> int

(** {2 Aggregates} *)

(** [buckets t] — (key, count), hottest first. *)
val buckets : t -> (key * int) list

(** [by_pc t] — per-pc totals over all rings/categories, hottest first
    (the legacy profile shape). *)
val by_pc : t -> (int * int) list

(** [by_ring t] — per-privilege-ring totals, sorted by ring. *)
val by_ring : t -> (int * int) list

(** [by_category t] — per-attribution-category totals, sorted by name. *)
val by_category : t -> (string * int) list

(** [clear t] drops all samples (period and cadence survive). *)
val clear : t -> unit

(** {2 Reports} *)

(** [dump t] — self-describing text, the [qP] payload: a
    [samples=N period=P buckets=B] header line, then one
    [pc=0x… ring=R cat=C count=N] line per bucket, hottest first. *)
val dump : t -> string

(** [parse_dump text] — parse {!dump} output back into (header fields,
    buckets); [None] when the header is missing. *)
val parse_dump : string -> ((string * string) list * (key * int) list) option

(** [collapsed ?resolve t] — collapsed-stack ("folded") text for
    flame-graph tooling: one [cat;ring<r>;<frame> <count>] line per
    bucket.  [resolve] maps pc to frame name (default hex). *)
val collapsed : ?resolve:(int -> string) -> t -> string

(** [perfetto_counters ?cpu_hz ?slices t] — a Chrome trace-event
    document of counter ("C") tracks built from the recent-sample ring:
    per-ring and per-category sample rates over [slices] time buckets
    (default 64).  Merges cleanly next to {!Vmm_obs.Tracer.to_chrome_json}
    output. *)
val perfetto_counters : ?cpu_hz:float -> ?slices:int -> t -> Vmm_obs.Json.t
