module J = Vmm_obs.Json

type header = { version : int; seed : int64; label : string }

let format_tag = "lwvmm-trace"
let current_version = 1

let make_header ?(label = "") ~seed () = { version = current_version; seed; label }

let header_to_json h =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int h.version);
      ("seed", J.Int (Int64.to_int h.seed));
      ("label", J.String h.label);
    ]

let ( let* ) r f = Result.bind r f

let req name j of_j =
  match Option.bind (J.member name j) of_j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace header: bad or missing %S" name)

let header_of_json j =
  let* format = req "format" j J.to_string_opt in
  if format <> format_tag then
    Error (Printf.sprintf "not a %s file (format %S)" format_tag format)
  else
    let* version = req "version" j J.to_int_opt in
    if version <> current_version then
      Error
        (Printf.sprintf "unsupported trace version %d (expected %d)" version
           current_version)
    else
      let* seed = req "seed" j J.to_int_opt in
      let* label = req "label" j J.to_string_opt in
      Ok { version; seed = Int64.of_int seed; label }

let to_string header events =
  let buf = Buffer.create (256 + (64 * List.length events)) in
  Buffer.add_string buf (J.to_string (header_to_json header));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (J.to_string (Event.to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace"
  | header_line :: event_lines ->
    let* hj = J.of_string header_line in
    let* header = header_of_json hj in
    let rec parse acc n = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let* j =
          Result.map_error
            (fun e -> Printf.sprintf "trace line %d: %s" n e)
            (J.of_string line)
        in
        let* e =
          Result.map_error
            (fun e -> Printf.sprintf "trace line %d: %s" n e)
            (Event.of_json j)
        in
        parse (e :: acc) (n + 1) rest
    in
    let* events = parse [] 2 event_lines in
    Ok (header, events)

let save ~path header events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string header events))

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e -> Error e
