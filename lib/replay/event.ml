type chaos_verdict =
  | Drop
  | Deliver of { mask : int; dup : bool; delay : int }

type payload =
  | Irq_inject of { line : int }
  | Timer_fire of { count : int }
  | Dma_complete of { chan : string; seq : int }
  | Uart_rx of { byte : int }
  | Nic_rx of { len : int }
  | Chaos of chaos_verdict
  | Wedge of { pc : int }
  | Crash of { vector : int; pc : int }
  | Checkpoint of { index : int; retired : int64 }
  | Vbp_hit of { pc : int }

type t = { cycle : int64; source : string; payload : payload }

let equal a b = a = b

let pp_payload fmt = function
  | Irq_inject { line } -> Format.fprintf fmt "irq line=%d" line
  | Timer_fire { count } -> Format.fprintf fmt "timer count=%d" count
  | Dma_complete { chan; seq } -> Format.fprintf fmt "dma chan=%s seq=%d" chan seq
  | Uart_rx { byte } -> Format.fprintf fmt "uart_rx byte=0x%02x" byte
  | Nic_rx { len } -> Format.fprintf fmt "nic_rx len=%d" len
  | Chaos Drop -> Format.fprintf fmt "chaos drop"
  | Chaos (Deliver { mask; dup; delay }) ->
    Format.fprintf fmt "chaos deliver mask=0x%02x dup=%b delay=%d" mask dup delay
  | Wedge { pc } -> Format.fprintf fmt "wedge pc=0x%x" pc
  | Crash { vector; pc } -> Format.fprintf fmt "crash vector=%d pc=0x%x" vector pc
  | Checkpoint { index; retired } ->
    Format.fprintf fmt "checkpoint index=%d retired=%Ld" index retired
  | Vbp_hit { pc } -> Format.fprintf fmt "vbp pc=0x%x" pc

let pp fmt t =
  Format.fprintf fmt "@@%Ld %s: %a" t.cycle t.source pp_payload t.payload

module J = Vmm_obs.Json

let payload_fields = function
  | Irq_inject { line } -> ("irq", [ ("line", J.Int line) ])
  | Timer_fire { count } -> ("timer", [ ("count", J.Int count) ])
  | Dma_complete { chan; seq } ->
    ("dma", [ ("chan", J.String chan); ("seq", J.Int seq) ])
  | Uart_rx { byte } -> ("uart_rx", [ ("byte", J.Int byte) ])
  | Nic_rx { len } -> ("nic_rx", [ ("len", J.Int len) ])
  | Chaos Drop -> ("chaos", [ ("verdict", J.String "drop") ])
  | Chaos (Deliver { mask; dup; delay }) ->
    ( "chaos",
      [
        ("verdict", J.String "deliver");
        ("mask", J.Int mask);
        ("dup", J.Bool dup);
        ("delay", J.Int delay);
      ] )
  | Wedge { pc } -> ("wedge", [ ("pc", J.Int pc) ])
  | Crash { vector; pc } ->
    ("crash", [ ("vector", J.Int vector); ("pc", J.Int pc) ])
  | Checkpoint { index; retired } ->
    ( "checkpoint",
      [ ("index", J.Int index); ("retired", J.Int (Int64.to_int retired)) ] )
  | Vbp_hit { pc } -> ("vbp", [ ("pc", J.Int pc) ])

let to_json t =
  let kind, fields = payload_fields t.payload in
  J.Obj
    (("c", J.Int (Int64.to_int t.cycle))
     :: ("s", J.String t.source)
     :: ("k", J.String kind)
     :: fields)

let ( let* ) r f = Result.bind r f

let field j name of_j =
  match J.member name j with
  | Some v ->
    (match of_j v with
     | Some x -> Ok x
     | None -> Error (Printf.sprintf "field %S: wrong type" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field j name = field j name J.to_int_opt
let str_field j name = field j name J.to_string_opt

let bool_field j name =
  field j name (function J.Bool b -> Some b | _ -> None)

let payload_of_json j kind =
  match kind with
  | "irq" ->
    let* line = int_field j "line" in
    Ok (Irq_inject { line })
  | "timer" ->
    let* count = int_field j "count" in
    Ok (Timer_fire { count })
  | "dma" ->
    let* chan = str_field j "chan" in
    let* seq = int_field j "seq" in
    Ok (Dma_complete { chan; seq })
  | "uart_rx" ->
    let* byte = int_field j "byte" in
    Ok (Uart_rx { byte })
  | "nic_rx" ->
    let* len = int_field j "len" in
    Ok (Nic_rx { len })
  | "chaos" ->
    let* verdict = str_field j "verdict" in
    (match verdict with
     | "drop" -> Ok (Chaos Drop)
     | "deliver" ->
       let* mask = int_field j "mask" in
       let* dup = bool_field j "dup" in
       let* delay = int_field j "delay" in
       Ok (Chaos (Deliver { mask; dup; delay }))
     | other -> Error (Printf.sprintf "unknown chaos verdict %S" other))
  | "wedge" ->
    let* pc = int_field j "pc" in
    Ok (Wedge { pc })
  | "crash" ->
    let* vector = int_field j "vector" in
    let* pc = int_field j "pc" in
    Ok (Crash { vector; pc })
  | "checkpoint" ->
    let* index = int_field j "index" in
    let* retired = int_field j "retired" in
    Ok (Checkpoint { index; retired = Int64.of_int retired })
  | "vbp" ->
    let* pc = int_field j "pc" in
    Ok (Vbp_hit { pc })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_json j =
  let* cycle = int_field j "c" in
  let* source = str_field j "s" in
  let* kind = str_field j "k" in
  let* payload = payload_of_json j kind in
  Ok { cycle = Int64.of_int cycle; source; payload }
