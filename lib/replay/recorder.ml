type mode = Off | Record | Replay

type divergence = {
  index : int;
  cycle : int64;
  source : string;
  expected : Event.t option;
  actual : Event.t option;
}

let pp_divergence fmt d =
  let pp_opt fmt = function
    | Some e -> Event.pp fmt e
    | None -> Format.pp_print_string fmt "<none>"
  in
  Format.fprintf fmt
    "divergence at event %d (cycle %Ld, source %s):@ expected %a,@ actual %a"
    d.index d.cycle d.source pp_opt d.expected pp_opt d.actual

type t = {
  mutable mode : mode;
  mutable log : Event.t list;  (* reversed *)
  mutable count : int;
  mutable script : Event.t array;
  mutable cursor : int;
  mutable muted : bool;
  mutable div : divergence option;
}

let create () =
  {
    mode = Off;
    log = [];
    count = 0;
    script = [||];
    cursor = 0;
    muted = false;
    div = None;
  }

let mode t = t.mode

let start_record t =
  t.mode <- Record;
  t.log <- [];
  t.count <- 0;
  t.script <- [||];
  t.cursor <- 0;
  t.muted <- false;
  t.div <- None

let start_replay t events =
  t.mode <- Replay;
  t.log <- [];
  t.count <- 0;
  t.script <- Array.of_list events;
  t.cursor <- 0;
  t.muted <- false;
  t.div <- None

let stop t = t.mode <- Off
let recorded t = List.rev t.log
let position t = match t.mode with Replay -> t.cursor | _ -> t.count
let divergence t = t.div
let set_muted t flag = t.muted <- flag
let muted t = t.muted

let diverge t ~expected ~actual =
  if t.div = None then begin
    let cycle, source =
      match (actual : Event.t option) with
      | Some e -> (e.cycle, e.source)
      | None ->
        (match expected with
         | Some (e : Event.t) -> (e.cycle, e.source)
         | None -> (0L, "?"))
    in
    t.div <- Some { index = t.cursor; cycle; source; expected; actual }
  end

(* Replay checking stops at the first divergence: everything after a
   mismatch differs by construction and would only bury the signal. *)
let check t (actual : Event.t) =
  if t.div = None then begin
    if t.cursor >= Array.length t.script then
      diverge t ~expected:None ~actual:(Some actual)
    else begin
      let expected = t.script.(t.cursor) in
      if Event.equal expected actual then t.cursor <- t.cursor + 1
      else diverge t ~expected:(Some expected) ~actual:(Some actual)
    end
  end

let emit t ~cycle ~source payload =
  match t.mode with
  | Off -> ()
  | _ when t.muted -> ()
  | Record ->
    t.log <- { Event.cycle; source; payload } :: t.log;
    t.count <- t.count + 1
  | Replay -> check t { Event.cycle; source; payload }

let decide_chaos t ~cycle ~source ~roll =
  match t.mode with
  | Off -> roll ()
  | _ when t.muted -> roll ()
  | Record ->
    let v = roll () in
    t.log <- { Event.cycle; source; payload = Chaos v } :: t.log;
    t.count <- t.count + 1;
    v
  | Replay ->
    if t.div <> None then roll ()
    else if t.cursor >= Array.length t.script then begin
      diverge t ~expected:None
        ~actual:(Some { Event.cycle; source; payload = Chaos Drop });
      roll ()
    end
    else begin
      let expected = t.script.(t.cursor) in
      match expected.payload with
      | Chaos v when expected.cycle = cycle && expected.source = source ->
        t.cursor <- t.cursor + 1;
        v
      | _ ->
        let v = roll () in
        diverge t ~expected:(Some expected)
          ~actual:(Some { Event.cycle; source; payload = Chaos v });
        v
    end

let finish_replay t =
  if t.mode = Replay && t.div = None && t.cursor < Array.length t.script then
    diverge t ~expected:(Some t.script.(t.cursor)) ~actual:None;
  t.div
