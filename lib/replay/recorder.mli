(** Record/replay hub.

    One recorder hangs off each {!Vmm_hw.Machine.t}; every tap at the
    monitor boundary reports nondeterministic events through {!emit} (or
    {!decide_chaos} for decisions that must {e drive} behaviour on
    replay).  Modes:

    - [Off] (default): every call is a cheap no-op.
    - [Record]: events append, in order, to an in-memory log.
    - [Replay]: each reported event is checked against the next scripted
      one; the first mismatch is latched as a {!divergence} (index,
      cycle, source, expected-vs-actual) and checking stops.  Chaos
      verdicts are {e taken from the script} instead of the live RNG, so
      a replayed run is closed under the trace.

    {!set_muted} suppresses reporting during reverse-debug re-execution:
    the replayed window's events are already in the log and must be
    neither re-appended nor re-checked. *)

type mode = Off | Record | Replay

type divergence = {
  index : int;  (** position in the global event sequence (0-based) *)
  cycle : int64;  (** cycle of the event actually observed *)
  source : string;  (** source of the event actually observed *)
  expected : Event.t option;  (** [None]: live run produced extra events *)
  actual : Event.t option;  (** [None]: live run ended with script left *)
}

val pp_divergence : Format.formatter -> divergence -> unit

type t

val create : unit -> t
val mode : t -> mode

(** [start_record t] clears any previous log and begins recording. *)
val start_record : t -> unit

(** [start_replay t events] begins checking against [events]. *)
val start_replay : t -> Event.t list -> unit

(** [stop t] returns to [Off]; the log (or script position) survives for
    inspection. *)
val stop : t -> unit

(** [recorded t] — the events logged so far, in order. *)
val recorded : t -> Event.t list

(** [position t] — events logged (Record) or consumed (Replay). *)
val position : t -> int

(** [emit t ~cycle ~source payload] — report one nondeterministic
    event. *)
val emit : t -> cycle:int64 -> source:string -> Event.payload -> unit

(** [decide_chaos t ~cycle ~source ~roll] — obtain the chaos verdict for
    one byte.  [Off]: [roll ()].  [Record]: [roll ()], logged.
    [Replay]: the scripted verdict (the RNG is not consulted); on
    mismatch the divergence latches and [roll ()] is used. *)
val decide_chaos :
  t -> cycle:int64 -> source:string -> roll:(unit -> Event.chaos_verdict) ->
  Event.chaos_verdict

val divergence : t -> divergence option

(** [finish_replay t] — end-of-run check: latches a divergence if
    scripted events remain unconsumed.  Returns {!divergence}. *)
val finish_replay : t -> divergence option

val set_muted : t -> bool -> unit
val muted : t -> bool
