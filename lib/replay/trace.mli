(** Versioned on-disk trace: JSON-lines, one header object followed by
    one object per event.

    The header pins the format ([{"format":"lwvmm-trace","version":1}])
    plus the seed and a free-form label so a trace is self-describing;
    {!load} rejects unknown formats and versions rather than replaying
    garbage. *)

type header = { version : int; seed : int64; label : string }

val current_version : int

(** [make_header ?label ~seed ()] — a header at {!current_version}. *)
val make_header : ?label:string -> seed:int64 -> unit -> header

(** [to_string header events] renders the full trace document. *)
val to_string : header -> Event.t list -> string

(** [of_string s] parses a trace document; [Error] on format drift,
    version mismatch or any malformed line. *)
val of_string : string -> (header * Event.t list, string) result

(** [save ~path header events] / [load ~path] — file convenience
    wrappers over {!to_string}/{!of_string}. *)
val save : path:string -> header -> Event.t list -> unit

val load : path:string -> (header * Event.t list, string) result
