test/test_sim.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Vmm_sim
