test/test_guest.ml: Alcotest Bytes Char Core Gen List Option Printf QCheck QCheck_alcotest String Vmm_guest Vmm_hw Vmm_sim
