test/test_hw.ml: Alcotest Bytes Char Gen Int64 List QCheck QCheck_alcotest Vmm_hw Vmm_sim
