test/test_integration.ml: Alcotest Bytes Char Core List Printf String Vmm_guest Vmm_harness Vmm_hw
