test/test_debugger.mli:
