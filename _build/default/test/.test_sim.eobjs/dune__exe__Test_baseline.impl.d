test/test_baseline.ml: Alcotest Buffer Char List String Vmm_baseline Vmm_guest Vmm_hw Vmm_proto Vmm_sim
