test/test_debugger.ml: Alcotest Array Bytes Char Core Format List String Vmm_debugger Vmm_guest Vmm_hw Vmm_proto
