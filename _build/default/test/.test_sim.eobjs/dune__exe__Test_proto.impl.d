test/test_proto.ml: Alcotest Array Char Format Gen List Option QCheck QCheck_alcotest String Vmm_proto
