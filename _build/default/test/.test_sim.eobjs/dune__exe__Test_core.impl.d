test/test_core.ml: Alcotest Array Bytes Char Core Gen List Printexc QCheck QCheck_alcotest Queue String Vmm_hw Vmm_proto Vmm_sim
