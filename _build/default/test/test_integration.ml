(* Cross-system integration tests: the same guest binary on all three
   systems, load ordering, and the harness measurement machinery. *)

module Machine = Vmm_hw.Machine
module Nic = Vmm_hw.Nic
module Kernel = Vmm_guest.Kernel
module Netfmt = Vmm_guest.Netfmt
module Monitor = Core.Monitor
module Workload = Vmm_harness.Workload

let check = Alcotest.check
let bool = Alcotest.bool

let run sys rate =
  let m, ctx = Workload.run sys ~rate_mbps:rate ~duration_s:0.1 in
  (m, ctx)

let test_all_systems_deliver_at_low_rate () =
  List.iter
    (fun sys ->
      let m, _ = run sys 20.0 in
      check bool
        (Workload.system_name sys ^ " achieves requested rate")
        true
        (abs_float (m.Workload.achieved_mbps -. 20.0) < 3.0))
    Workload.all_systems

let test_load_ordering () =
  (* At the same delivered rate the paper's ordering must hold:
     bare < lightweight < full. *)
  let load sys =
    let m, _ = run sys 25.0 in
    m.Workload.cpu_load
  in
  let bare = load Workload.Bare_metal in
  let lw = load Workload.Lightweight_vmm in
  let full = load Workload.Hosted_full_vmm in
  check bool "bare < lw" true (bare < lw);
  check bool "lw < full" true (lw < full);
  check bool "bare is light" true (bare < 0.10);
  check bool "full is heavy" true (full > 3.0 *. lw /. 2.0)

let test_same_bytes_on_all_systems () =
  (* Data integrity is system-independent: first frame payload matches the
     disk pattern everywhere. *)
  List.iter
    (fun sys ->
      let config = Kernel.default_config ~rate_mbps:20.0 in
      let ctx, _program = Workload.prepare sys ~config in
      let m = Workload.machine_of ctx in
      let first = ref None in
      Nic.set_on_frame (Machine.nic m) (fun f ->
          if !first = None then first := Some (Bytes.copy f));
      Machine.run_seconds m 0.08;
      match !first with
      | None -> Alcotest.failf "%s: no frame" (Workload.system_name sys)
      | Some f ->
        (match Netfmt.parse f with
         | None -> Alcotest.failf "%s: frame did not parse" (Workload.system_name sys)
         | Some frame ->
           String.iteri
             (fun i c ->
               let expected = Vmm_hw.Scsi.pattern_byte ~target:0 ~offset:i in
               if Char.code c <> expected then
                 Alcotest.failf "%s: byte %d mismatch" (Workload.system_name sys) i)
             frame.Netfmt.payload))
    Workload.all_systems

let test_monitor_stats_under_workload () =
  let config = Kernel.default_config ~rate_mbps:50.0 in
  let ctx, program = Workload.prepare Workload.Lightweight_vmm ~config in
  let m =
    Workload.measure ctx program ~config ~warmup_s:0.02 ~duration_s:0.1
  in
  check bool "frames measured" true (m.Workload.frames > 100);
  match ctx with
  | Workload.Ctx_lw mon ->
    let stats = Monitor.stats mon in
    (* NIC completions coalesce inside the long SCSI/send path, so the
       reflection count is per-batch, not per-frame *)
    check bool "irq reflections" true (stats.Monitor.reflected_irqs > 20);
    check bool "pit emulated (guest programming)" true
      (stats.Monitor.pit_emulations >= 3);
    check bool "no escalations" true (stats.Monitor.escalations = 0);
    (* every frame costs a send syscall (trapped INT + IRET) *)
    check bool "per-frame syscall traps" true
      (stats.Monitor.cpu_emulations > m.Workload.frames)
  | Workload.Ctx_bare _ | Workload.Ctx_full _ -> Alcotest.fail "wrong context"

let test_max_rate_band () =
  (* Keep the calibration honest: the reproduced headline figures must
     stay near the paper's (5.4x between monitors, LW ~26% of native).
     Short measurement windows, so accept generous bands. *)
  let max_of sys = Workload.max_sustainable_rate ~duration_s:0.15 sys ~lo:5.0 ~hi:1000.0 ~steps:7 in
  let bare = max_of Workload.Bare_metal in
  let lw = max_of Workload.Lightweight_vmm in
  let full = max_of Workload.Hosted_full_vmm in
  let lw_vs_bare = lw /. bare in
  let lw_vs_full = lw /. full in
  check bool
    (Printf.sprintf "lw/bare = %.2f in [0.18, 0.36]" lw_vs_bare)
    true
    (lw_vs_bare > 0.18 && lw_vs_bare < 0.36);
  check bool
    (Printf.sprintf "lw/full = %.2f in [4.0, 7.0]" lw_vs_full)
    true
    (lw_vs_full > 4.0 && lw_vs_full < 7.0)

let test_measurement_window_excludes_warmup () =
  let config = Kernel.default_config ~rate_mbps:50.0 in
  let ctx, program = Workload.prepare Workload.Bare_metal ~config in
  let m = Workload.measure ctx program ~config ~warmup_s:0.05 ~duration_s:0.1 in
  check bool "duration close to request" true
    (abs_float (m.Workload.duration_s -. 0.1) < 0.01);
  (* cumulative guest counters exceed the window's frames (warmup counted) *)
  check bool "counters cumulative" true
    (m.Workload.counters.Kernel.frames_sent > m.Workload.frames)

let () =
  Alcotest.run "integration"
    [
      ( "cross-system",
        [
          Alcotest.test_case "all deliver at low rate" `Quick
            test_all_systems_deliver_at_low_rate;
          Alcotest.test_case "load ordering" `Quick test_load_ordering;
          Alcotest.test_case "same bytes everywhere" `Quick
            test_same_bytes_on_all_systems;
          Alcotest.test_case "monitor stats under workload" `Quick
            test_monitor_stats_under_workload;
          Alcotest.test_case "headline band" `Slow test_max_rate_band;
          Alcotest.test_case "measurement window" `Quick
            test_measurement_window_excludes_warmup;
        ] );
    ]
