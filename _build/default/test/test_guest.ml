(* Tests for the guest RTOS: network frame formatting, kernel image
   construction, and an end-to-end bare-metal run validating that every
   transmitted UDP frame carries correctly-checksummed disk data at the
   requested rate. *)

module Machine = Vmm_hw.Machine
module Asm = Vmm_hw.Asm
module Nic = Vmm_hw.Nic
module Scsi = Vmm_hw.Scsi
module Phys_mem = Vmm_hw.Phys_mem
module Kernel = Vmm_guest.Kernel
module Netfmt = Vmm_guest.Netfmt

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* -- Netfmt -- *)

let test_template_shape () =
  let h =
    Netfmt.header_template ~src:Netfmt.default_source
      ~dst:Netfmt.default_destination
  in
  check int "length" Netfmt.header_bytes (String.length h);
  check int "ethertype" 0x08 (Char.code h.[Netfmt.off_ethertype]);
  check int "ip version/ihl" 0x45 (Char.code h.[14]);
  check int "udp proto" 0x11 (Char.code h.[Netfmt.off_ip_proto])

let test_template_validation () =
  let bad = { Netfmt.default_source with Netfmt.mac = "xx" } in
  Alcotest.check_raises "bad mac"
    (Invalid_argument "Netfmt.header_template: mac must be 6 bytes")
    (fun () ->
      ignore
        (Netfmt.header_template ~src:bad ~dst:Netfmt.default_destination))

let build_frame ~payload ~ip_id =
  let h =
    Netfmt.header_template ~src:Netfmt.default_source
      ~dst:Netfmt.default_destination
  in
  let total = String.length payload + 28 in
  let buf = Bytes.of_string (h ^ payload) in
  let be16 off v =
    Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (off + 1) (Char.chr (v land 0xFF))
  in
  be16 Netfmt.off_ip_total_len total;
  be16 Netfmt.off_ip_id ip_id;
  be16 Netfmt.off_udp_len (String.length payload + 8);
  be16 Netfmt.off_udp_checksum (Netfmt.payload_checksum payload);
  buf

let test_parse_roundtrip () =
  let frame = build_frame ~payload:"hello, hitactix!" ~ip_id:77 in
  match Netfmt.parse frame with
  | Some f ->
    check Alcotest.string "payload" "hello, hitactix!" f.Netfmt.payload;
    check int "ip id" 77 f.Netfmt.ip_id;
    check int "sport" 9000 f.Netfmt.src.Netfmt.port;
    check int "dport" 9001 f.Netfmt.dst.Netfmt.port;
    check int "checksum field" (Netfmt.payload_checksum "hello, hitactix!")
      f.Netfmt.udp_checksum
  | None -> Alcotest.fail "frame did not parse"

let test_parse_rejects () =
  check bool "short" true (Netfmt.parse (Bytes.create 10) = None);
  let frame = build_frame ~payload:"x" ~ip_id:0 in
  Bytes.set frame Netfmt.off_ethertype '\x00';
  check bool "not ipv4" true (Netfmt.parse frame = None);
  let frame = build_frame ~payload:"x" ~ip_id:0 in
  Bytes.set frame Netfmt.off_ip_total_len '\xFF';
  check bool "length mismatch" true (Netfmt.parse frame = None)

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"netfmt parse inverts build" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 1458)) (int_bound 0xFFFF))
    (fun (payload, ip_id) ->
      match Netfmt.parse (build_frame ~payload ~ip_id) with
      | Some f -> f.Netfmt.payload = payload && f.Netfmt.ip_id = ip_id
      | None -> false)

(* -- Kernel construction -- *)

let test_kernel_validation () =
  let bad_rate = { (Kernel.default_config ~rate_mbps:10.0) with Kernel.rate_mbps = -1.0 } in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Kernel.build: negative rate") (fun () ->
      ignore (Kernel.build bad_rate));
  let bad_payload =
    { (Kernel.default_config ~rate_mbps:10.0) with Kernel.payload_bytes = 4000 }
  in
  Alcotest.check_raises "payload too big"
    (Invalid_argument "Kernel.build: payload_bytes out of range") (fun () ->
      ignore (Kernel.build bad_payload));
  let bad_disks = { (Kernel.default_config ~rate_mbps:10.0) with Kernel.disks = 7 } in
  Alcotest.check_raises "too many disks"
    (Invalid_argument "Kernel.build: disks out of range") (fun () ->
      ignore (Kernel.build bad_disks))

let test_kernel_symbols_present () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:10.0) in
  List.iter
    (fun (name, _doc) ->
      check bool name true (List.mem_assoc name p.Asm.symbols))
    Kernel.interesting_symbols;
  check bool "counters" true (List.mem_assoc "counters" p.Asm.symbols);
  check int "entry is boot" (Asm.symbol p "boot") Kernel.entry

(* -- End-to-end bare-metal workload -- *)

let run_collect ?(user_mode = false) ~rate ~seconds () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let config =
    { (Kernel.default_config ~rate_mbps:rate) with Kernel.user_mode }
  in
  let program = Kernel.build config in
  let frames = ref [] in
  Nic.set_on_frame (Machine.nic m) (fun f -> frames := Bytes.copy f :: !frames);
  Machine.boot m program ~entry:Kernel.entry;
  Machine.run_seconds m seconds;
  (m, program, config, List.rev !frames)

let test_workload_frames_valid () =
  let _, _, config, frames = run_collect ~rate:50.0 ~seconds:0.1 () in
  check bool "frames flowed" true (List.length frames > 100);
  let parsed = List.filter_map (fun f -> Netfmt.parse f) frames in
  check int "every frame parses" (List.length frames) (List.length parsed);
  List.iter
    (fun f ->
      check int "checksum verifies"
        (Netfmt.payload_checksum f.Netfmt.payload)
        f.Netfmt.udp_checksum;
      check bool "payload sized" true
        (String.length f.Netfmt.payload <= config.Kernel.payload_bytes))
    parsed;
  (* ip_id is the frame sequence number *)
  List.iteri
    (fun i f -> check int "sequence" (i land 0xFFFF) f.Netfmt.ip_id)
    parsed

let test_workload_carries_disk_data () =
  (* The first transmitted segment comes from disk 0, LBA 0: its payload
     must be the disk's synthetic pattern, byte for byte. *)
  let _, _, config, frames = run_collect ~rate:50.0 ~seconds:0.05 () in
  let parsed = List.filter_map (fun f -> Netfmt.parse f) frames in
  let frames_per_segment =
    (config.Kernel.segment_bytes + config.Kernel.payload_bytes - 1)
    / config.Kernel.payload_bytes
  in
  check bool "at least one segment" true
    (List.length parsed >= frames_per_segment);
  List.iteri
    (fun i f ->
      if i < frames_per_segment then begin
        let base = i * config.Kernel.payload_bytes in
        String.iteri
          (fun j c ->
            let expected = Scsi.pattern_byte ~target:0 ~offset:(base + j) in
            if Char.code c <> expected then
              Alcotest.failf "payload byte %d of frame %d: got %d want %d"
                j i (Char.code c) expected)
          f.Netfmt.payload
      end)
    parsed

let test_workload_rate_accuracy () =
  let m, program, _, frames = run_collect ~rate:100.0 ~seconds:0.2 () in
  let bytes =
    List.fold_left (fun acc f -> acc + Bytes.length f) 0 frames
  in
  let mbps = float_of_int (bytes * 8) /. 0.2 /. 1e6 in
  check bool "within 8% of requested" true (abs_float (mbps -. 100.0) < 8.0);
  let counters = Kernel.read_counters (Machine.mem m) program in
  check bool "no skipped reads" true (counters.Kernel.reads_skipped = 0);
  check bool "segments flowed" true (counters.Kernel.segments_done > 10);
  check int "guest frame count matches wire" (List.length frames)
    counters.Kernel.frames_sent

let test_workload_zero_rate_idles () =
  let m, program, _, frames = run_collect ~rate:0.0 ~seconds:0.05 () in
  check int "no frames" 0 (List.length frames);
  let counters = Kernel.read_counters (Machine.mem m) program in
  check int "no ticks" 0 counters.Kernel.ticks

let test_user_mode_frames_valid () =
  (* Same workload with the application at ring 3 behind guest-built page
     tables: every frame still parses and checksums. *)
  let m, _, _, frames = run_collect ~user_mode:true ~rate:50.0 ~seconds:0.1 () in
  check bool "frames flowed" true (List.length frames > 100);
  let parsed = List.filter_map (fun f -> Netfmt.parse f) frames in
  check int "every frame parses" (List.length frames) (List.length parsed);
  List.iter
    (fun f ->
      check int "checksum verifies"
        (Netfmt.payload_checksum f.Netfmt.payload)
        f.Netfmt.udp_checksum)
    parsed;
  (* the app really is in ring 3 while packetizing: sample the CPU *)
  check int "paging enabled" 0x600000 (Vmm_hw.Cpu.ptb (Machine.cpu m))

let test_user_mode_matches_kernel_mode_data () =
  let _, _, _, kframes = run_collect ~rate:30.0 ~seconds:0.08 () in
  let _, _, _, uframes =
    run_collect ~user_mode:true ~rate:30.0 ~seconds:0.08 ()
  in
  let payloads frames =
    List.filter_map (fun f -> Option.map (fun p -> p.Netfmt.payload) (Netfmt.parse f)) frames
  in
  let k = payloads kframes and u = payloads uframes in
  let n = min (List.length k) (List.length u) in
  check bool "both streams carry frames" true (n > 50);
  List.iteri
    (fun i (a, b) ->
      if i < n && not (String.equal a b) then
        Alcotest.failf "payload %d differs between modes" i)
    (List.combine
       (List.filteri (fun i _ -> i < n) k)
       (List.filteri (fun i _ -> i < n) u))

let test_counters_monotonic () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let config = Kernel.default_config ~rate_mbps:50.0 in
  let program = Kernel.build config in
  Machine.boot m program ~entry:Kernel.entry;
  Machine.run_seconds m 0.05;
  let c1 = Kernel.read_counters (Machine.mem m) program in
  Machine.run_seconds m 0.05;
  let c2 = Kernel.read_counters (Machine.mem m) program in
  check bool "ticks grow" true (c2.Kernel.ticks > c1.Kernel.ticks);
  check bool "frames grow" true (c2.Kernel.frames_sent > c1.Kernel.frames_sent);
  check bool "issued >= done" true
    (c2.Kernel.segments_issued >= c2.Kernel.segments_done);
  check bool "acks trail frames" true
    (c2.Kernel.tx_acked <= c2.Kernel.frames_sent)

(* -- RX logger appliance -- *)

module Rx_logger = Vmm_guest.Rx_logger
module Io_bus = Vmm_hw.Io_bus
module Engine = Vmm_sim.Engine
module Costs = Vmm_hw.Costs

let rx_rig ?(monitor = false) () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let program = Rx_logger.build Rx_logger.default_config in
  if monitor then begin
    let mon = Core.Monitor.install m in
    Core.Monitor.boot_guest mon program ~entry:Rx_logger.entry
  end
  else Machine.boot m program ~entry:Rx_logger.entry;
  (m, program)

let inject_frames m ~count ~corrupt_every ~fps =
  let interval = Costs.cycles_of_seconds (Machine.costs m) (1.0 /. fps) in
  let engine = Machine.engine m in
  let rec inject i =
    if i < count then begin
      let payload = Printf.sprintf "payload-%03d-%s" i (String.make 64 'x') in
      let frame = Netfmt.build ~payload ~ip_id:i in
      if corrupt_every > 0 && i mod corrupt_every = corrupt_every - 1 then
        Bytes.set frame (Netfmt.off_payload + 1) '\xFF';
      Nic.inject_rx (Machine.nic m) frame;
      ignore (Engine.after engine ~delay:interval (fun () -> inject (i + 1)))
    end
  in
  ignore (Engine.after engine ~delay:interval (fun () -> inject 0))

let test_rx_logger_validates_and_logs () =
  let m, program = rx_rig () in
  inject_frames m ~count:100 ~corrupt_every:5 ~fps:5000.0;
  Machine.run_seconds m 0.1;
  let c = Rx_logger.read_counters (Machine.mem m) program in
  check int "all frames received" 100 c.Rx_logger.rx_frames;
  check int "corrupted rejected" 20 c.Rx_logger.rx_invalid;
  check int "valid accepted" 80 c.Rx_logger.rx_valid;
  check int "every valid payload logged or dropped" 80
    (c.Rx_logger.logged + c.Rx_logger.log_dropped);
  check bool "most logged" true (c.Rx_logger.logged >= 70)

let test_rx_logger_disk_contents () =
  let m, program = rx_rig () in
  inject_frames m ~count:10 ~corrupt_every:0 ~fps:1000.0;
  Machine.run_seconds m 0.1;
  let c = Rx_logger.read_counters (Machine.mem m) program in
  check int "ten logged" 10 c.Rx_logger.logged;
  (* read slots back through the controller and compare *)
  let bus = Machine.bus m in
  let base = Machine.Ports.scsi in
  List.iteri
    (fun slot expected ->
      Io_bus.write bus base 0;
      Io_bus.write bus (base + 1)
        (Rx_logger.log_first_lba + (slot * Rx_logger.log_stride_sectors));
      Io_bus.write bus (base + 2) (String.length expected);
      Io_bus.write bus (base + 3) 0x700000;
      Io_bus.write bus (base + 4) 1;
      ignore (Engine.run_until_idle (Machine.engine m));
      Io_bus.write bus (base + 6) 0;
      let got =
        Bytes.to_string
          (Phys_mem.read_bytes (Machine.mem m) ~addr:0x700000
             ~len:(String.length expected))
      in
      if not (String.equal got expected) then
        Alcotest.failf "log slot %d mismatch" slot)
    (List.init 10 (fun i -> Printf.sprintf "payload-%03d-%s" i (String.make 64 'x')))

let test_rx_logger_under_monitor () =
  let m, program = rx_rig ~monitor:true () in
  inject_frames m ~count:50 ~corrupt_every:0 ~fps:5000.0;
  Machine.run_seconds m 0.1;
  let c = Rx_logger.read_counters (Machine.mem m) program in
  check int "all received under monitor" 50 c.Rx_logger.rx_frames;
  check int "all valid" 50 c.Rx_logger.rx_valid

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmm_guest"
    [
      ( "netfmt",
        [
          Alcotest.test_case "template shape" `Quick test_template_shape;
          Alcotest.test_case "template validation" `Quick test_template_validation;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
        ]
        @ qsuite [ prop_parse_roundtrip ] );
      ( "kernel",
        [
          Alcotest.test_case "config validation" `Quick test_kernel_validation;
          Alcotest.test_case "symbols present" `Quick test_kernel_symbols_present;
        ] );
      ( "workload",
        [
          Alcotest.test_case "frames valid" `Quick test_workload_frames_valid;
          Alcotest.test_case "carries disk data" `Quick
            test_workload_carries_disk_data;
          Alcotest.test_case "rate accuracy" `Quick test_workload_rate_accuracy;
          Alcotest.test_case "zero rate idles" `Quick test_workload_zero_rate_idles;
          Alcotest.test_case "counters monotonic" `Quick test_counters_monotonic;
          Alcotest.test_case "user mode frames valid" `Quick
            test_user_mode_frames_valid;
          Alcotest.test_case "user mode same data" `Quick
            test_user_mode_matches_kernel_mode_data;
        ] );
      ( "rx_logger",
        [
          Alcotest.test_case "validates and logs" `Quick
            test_rx_logger_validates_and_logs;
          Alcotest.test_case "disk contents" `Quick test_rx_logger_disk_contents;
          Alcotest.test_case "under the monitor" `Quick
            test_rx_logger_under_monitor;
        ] );
    ]
