examples/profiling_session.mli:
