examples/profiling_session.ml: Core List Printf Vmm_debugger Vmm_guest Vmm_hw
