examples/streaming_server.ml: Array Core List Printf Sys Vmm_baseline Vmm_guest Vmm_harness
