examples/quickstart.mli:
