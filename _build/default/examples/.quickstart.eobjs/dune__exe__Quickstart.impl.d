examples/quickstart.ml: Core Option Printf Vmm_debugger Vmm_guest Vmm_hw
