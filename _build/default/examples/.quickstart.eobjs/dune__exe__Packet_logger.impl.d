examples/packet_logger.ml: Bytes Char Core Printf String Vmm_guest Vmm_hw Vmm_sim
