examples/packet_logger.mli:
