examples/crash_injection.mli:
