examples/device_bringup.ml: Core Int64 Printf Vmm_hw Vmm_sim
