examples/crash_injection.ml: Buffer Char Core List Printf String Vmm_baseline Vmm_debugger Vmm_hw Vmm_proto Vmm_sim
