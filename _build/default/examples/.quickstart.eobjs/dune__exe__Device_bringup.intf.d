examples/device_bringup.mli:
