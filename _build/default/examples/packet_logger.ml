(* The receive-side appliance: a UDP logger.

   The paper's workload streams *out* of the appliance; this example runs
   the complementary path under the same lightweight monitor: frames
   arrive on the gigabit NIC (direct access), the guest validates each
   UDP payload checksum and appends valid payloads to a SCSI disk — all
   while remaining fully debuggable.

   The harness plays the network: it injects a mix of valid and corrupted
   frames, then audits the guest's verdicts and reads the log back off
   the disk.

   Run with: dune exec examples/packet_logger.exe *)

module Machine = Vmm_hw.Machine
module Engine = Vmm_sim.Engine
module Nic = Vmm_hw.Nic
module Io_bus = Vmm_hw.Io_bus
module Phys_mem = Vmm_hw.Phys_mem
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Rx_logger = Vmm_guest.Rx_logger
module Netfmt = Vmm_guest.Netfmt

let payload_of i =
  Printf.sprintf "log-entry-%04d:%s" i (String.make 100 (Char.chr (65 + (i mod 26))))

let () =
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let monitor = Monitor.install machine in
  let program = Rx_logger.build Rx_logger.default_config in
  Monitor.boot_guest monitor program ~entry:Rx_logger.entry;
  Printf.printf "UDP logger appliance booted under the lightweight monitor\n";

  (* the "network": 200 frames at 20k frames/s, every 10th corrupted *)
  let total = 200 in
  let interval =
    Costs.cycles_of_seconds (Machine.costs machine) (1.0 /. 20_000.0)
  in
  let engine = Machine.engine machine in
  let rec inject i =
    if i < total then begin
      let frame = Netfmt.build ~payload:(payload_of i) ~ip_id:i in
      if i mod 10 = 9 then
        Bytes.set frame
          (Netfmt.off_payload + 3)
          (Char.chr (Char.code (Bytes.get frame (Netfmt.off_payload + 3)) lxor 0xFF));
      Nic.inject_rx (Machine.nic machine) frame;
      ignore (Engine.after engine ~delay:interval (fun () -> inject (i + 1)))
    end
  in
  ignore (Engine.after engine ~delay:interval (fun () -> inject 0));
  Machine.run_seconds machine 0.1;

  let c = Rx_logger.read_counters (Machine.mem machine) program in
  Printf.printf "\ninjected          : %d frames (every 10th corrupted)\n" total;
  Printf.printf "guest received    : %d frames, %d bytes\n" c.Rx_logger.rx_frames
    c.Rx_logger.rx_bytes;
  Printf.printf "checksum verdicts : %d valid, %d invalid\n" c.Rx_logger.rx_valid
    c.Rx_logger.rx_invalid;
  Printf.printf "logged to disk    : %d payloads (%d dropped while busy)\n"
    c.Rx_logger.logged c.Rx_logger.log_dropped;

  (* audit: read the first logged payload back off the disk through the
     controller, like a maintenance console would *)
  let bus = Machine.bus machine in
  let base = Machine.Ports.scsi in
  let expected = payload_of 0 in
  Io_bus.write bus base 0;
  Io_bus.write bus (base + 1) Rx_logger.log_first_lba;
  Io_bus.write bus (base + 2) (String.length expected);
  Io_bus.write bus (base + 3) 0x700000;
  Io_bus.write bus (base + 4) 1;
  ignore (Engine.run_until_idle engine);
  Io_bus.write bus (base + 6) 0;
  let read_back =
    Bytes.to_string
      (Phys_mem.read_bytes (Machine.mem machine) ~addr:0x700000
         ~len:(String.length expected))
  in
  Printf.printf "\ndisk audit        : first log slot %s\n"
    (if String.equal read_back expected then "matches the injected payload"
     else "MISMATCH");

  let stats = Monitor.stats monitor in
  Printf.printf
    "monitor           : %d world switches, %d reflected irqs -- receive \
     path is pass-through too\n"
    stats.Monitor.world_switches stats.Monitor.reflected_irqs
