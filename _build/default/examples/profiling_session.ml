(* Interrupt-driven profiling of a live appliance.

   The monitor samples the interrupted guest pc at every reflected timer
   tick, so the host debugger can ask "where does the CPU go?" without
   stopping the target — the kind of question the paper's environment is
   built to answer while the OS runs high-throughput I/O.

   This session profiles the streaming guest at a low and a high rate and
   shows the shift from idle time to the packetization path.

   Run with: dune exec examples/profiling_session.exe *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Symbols = Vmm_debugger.Symbols
module Cli = Vmm_debugger.Cli

let profile_at rate =
  let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 } in
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  (* user-mode guest: the application packetizes with interrupts enabled,
     so timer samples can land in it.  (The kernel-mode guest does all its
     work inside interrupt handlers with IF clear — invisible to timer
     sampling, exactly as on real hardware.) *)
  let program =
    Kernel.build
      { (Kernel.default_config ~rate_mbps:rate) with Kernel.user_mode = true }
  in
  Monitor.boot_guest monitor program ~entry:Kernel.entry;
  Machine.run_seconds machine 0.5 (* sampling window *);
  let session = Session.attach machine in
  let symbols = Symbols.of_program program in
  let cli = Cli.create ~session ~symbols in
  Printf.printf "\n--- profile at %.0f Mbps ---\n%s\n" rate
    (Cli.execute cli "profile 6")

let () =
  Printf.printf
    "Timer-interrupt pc sampling of the streaming appliance under the\n\
     lightweight monitor (the guest keeps running throughout).\n";
  List.iter profile_at [ 20.0; 150.0 ];
  Printf.printf
    "\nAt 20 Mbps every sample lands in the kernel's wait-segment block\n\
     point (the appliance is idle); at 150 Mbps the samples migrate into\n\
     the application's payload copy/checksum loop -- live evidence of\n\
     where the transfer budget goes, gathered without stopping the guest.\n"
