(* The paper's motivating scenario: an appliance streaming server (cf. the
   HiTactix streaming work the paper cites) reading from three SCSI disks
   and pushing UDP over gigabit Ethernet — executed on all three debugging
   environments at a chosen rate, with the CPU-load comparison of Fig 3.1.

   Run with: dune exec examples/streaming_server.exe [-- rate_mbps] *)

module Workload = Vmm_harness.Workload
module Kernel = Vmm_guest.Kernel
module Monitor = Core.Monitor
module Full_vmm = Vmm_baseline.Full_vmm

let () =
  let rate =
    if Array.length Sys.argv > 1 then
      match float_of_string_opt Sys.argv.(1) with
      | Some r when r > 0.0 && r <= 1000.0 -> r
      | Some _ | None ->
        prerr_endline "usage: streaming_server [rate_mbps in (0, 1000]]";
        exit 1
    else 100.0
  in
  Printf.printf
    "Streaming server workload: 3 SCSI disks -> 64 KiB segments -> UDP/GbE\n";
  Printf.printf "Requested rate: %.0f Mbps, measured over 0.3 s after warmup\n\n"
    rate;
  Printf.printf "%-22s %10s %10s %8s %8s\n" "system" "requested" "achieved"
    "load" "frames";
  let contexts =
    List.map
      (fun sys ->
        let m, ctx = Workload.run sys ~rate_mbps:rate ~duration_s:0.3 in
        Printf.printf "%-22s %8.1f %10.1f %7.1f%% %8d\n"
          (Workload.system_name sys) m.Workload.requested_mbps
          m.Workload.achieved_mbps
          (100.0 *. m.Workload.cpu_load)
          m.Workload.frames;
        (sys, m, ctx))
      Workload.all_systems
  in
  print_newline ();
  List.iter
    (fun (sys, m, ctx) ->
      match ctx with
      | Workload.Ctx_lw mon ->
        let s = Monitor.stats mon in
        Printf.printf
          "%s detail: %d world switches, %d emulated PIC ops, %d emulated \
           timer ops,\n  %d privileged-CPU emulations (incl. per-packet send \
           syscalls), %d shadow fills\n"
          (Workload.system_name sys) s.Monitor.world_switches
          s.Monitor.pic_emulations s.Monitor.pit_emulations
          s.Monitor.cpu_emulations s.Monitor.shadow_fills
      | Workload.Ctx_full vmm ->
        let s = Full_vmm.stats vmm in
        Printf.printf
          "%s detail: %d host round trips, %d host syscalls, %d device \
           forwards,\n  %d packets and %d disk transfers through the host, \
           %d bounce-copied bytes\n"
          (Workload.system_name sys) s.Full_vmm.host_switches
          s.Full_vmm.host_syscalls s.Full_vmm.device_forwards
          s.Full_vmm.packets_forwarded s.Full_vmm.disk_transfers_forwarded
          s.Full_vmm.bytes_copied
      | Workload.Ctx_bare _ ->
        let c = m.Workload.counters in
        Printf.printf
          "%s detail: %d ticks, %d segments, %d frames, %d tx acks (no \
           virtualization overhead)\n"
          (Workload.system_name sys) c.Kernel.ticks c.Kernel.segments_done
          c.Kernel.frames_sent c.Kernel.tx_acked)
    contexts;
  print_newline ();
  Printf.printf
    "The guest binary is identical in all three rows; only the cost of\n\
     reaching the hardware differs -- the comparison of the paper's Fig 3.1.\n"
