(* Customizability demonstration (the paper's second claim): bring up a
   brand-new high-throughput I/O device and give the guest direct access
   to it without touching a single line of monitor code.

   The device here is a "capture card" that DMA-writes video fields into
   memory at a constant rate — the kind of appliance hardware HiTactix
   targeted.  Under the lightweight VMM the bring-up recipe is only:
     1. attach the device model to the bus (hardware exists),
     2. open its ports in the I/O permission bitmap (one install argument),
     3. write a guest driver.
   Under the full VMM the same device would additionally require a device
   emulation model inside the VMM before the guest could use it at all.

   Run with: dune exec examples/device_bringup.exe *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Io_bus = Vmm_hw.Io_bus
module Engine = Vmm_sim.Engine
module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Phys_mem = Vmm_hw.Phys_mem
module Pic = Vmm_hw.Pic
module Monitor = Core.Monitor

(* --- The new device: a frame-capture card ----------------------------- *)

module Capture_card = struct
  let port_base = 0x3C0
  let irq_line = 7
  let field_bytes = 4096

  type t = {
    engine : Engine.t;
    mem : Phys_mem.t;
    raise_irq : unit -> unit;
    mutable dma_addr : int;
    mutable running : bool;
    mutable fields_captured : int;
    interval_cycles : int64;
  }

  let create ~engine ~mem ~raise_irq ~fields_per_second ~cpu_hz =
    {
      engine;
      mem;
      raise_irq;
      dma_addr = 0;
      running = false;
      fields_captured = 0;
      interval_cycles = Int64.of_float (cpu_hz /. fields_per_second);
    }

  let rec capture t =
    if t.running then begin
      (* synthesize a video field directly into memory (device DMA) *)
      for i = 0 to field_bytes - 1 do
        Phys_mem.write_u8 t.mem (t.dma_addr + i)
          ((t.fields_captured + i) land 0xFF)
      done;
      t.fields_captured <- t.fields_captured + 1;
      t.raise_irq ();
      ignore (Engine.after t.engine ~delay:t.interval_cycles (fun () -> capture t))
    end

  let io_read t = function
    | 0 -> t.dma_addr
    | 1 -> if t.running then 1 else 0
    | 2 -> t.fields_captured
    | _ -> 0xFFFFFFFF

  let io_write t offset v =
    match offset with
    | 0 -> t.dma_addr <- v
    | 1 ->
      let was = t.running in
      t.running <- v land 1 <> 0;
      if t.running && not was then capture t
    | _ -> ()

  let attach t bus =
    Io_bus.register bus ~name:"capture" ~base:port_base ~count:3
      ~read:(io_read t) ~write:(io_write t)
end

(* --- A guest driver for it, in 20 instructions ------------------------ *)

let capture_guest () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  (* point the card at a buffer and start it: direct port access *)
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.outi a (Asm.imm Capture_card.port_base) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (Capture_card.port_base + 1)) 2;
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");
  (* per-field interrupt: count fields in r7, checksum first word in r8 *)
  Asm.label a "field_handler";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.ld a 8 2 0;
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 2;
  Asm.iret a;
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    if v = Isa.vec_irq_base_default + Capture_card.irq_line then begin
      Asm.word a (Asm.lbl "field_handler");
      Asm.word a (Asm.imm 1)
    end
    else begin
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
    end
  done;
  Asm.assemble a

let () =
  Printf.printf "Device bring-up under the lightweight VMM (paper claim 2).\n\n";
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) () in

  (* step 1: the new hardware appears on the bus *)
  let card =
    Capture_card.create ~engine:(Machine.engine machine)
      ~mem:(Machine.mem machine)
      ~raise_irq:(fun () ->
        Pic.raise_irq (Machine.pic machine) Capture_card.irq_line)
      ~fields_per_second:60.0
      ~cpu_hz:(Machine.costs machine).Vmm_hw.Costs.cpu_hz
  in
  Capture_card.attach card (Machine.bus machine);
  Printf.printf "1. capture card attached at ports 0x%x-0x%x, IRQ %d\n"
    Capture_card.port_base
    (Capture_card.port_base + 2)
    Capture_card.irq_line;

  (* step 2: install the monitor, declaring the card pass-through.
     NOTE: this is configuration, not monitor code — the monitor has no
     idea what a capture card is. *)
  let passthrough =
    { Monitor.base = Capture_card.port_base; count = 3 }
    :: Monitor.default_passthrough
  in
  let monitor = Monitor.install ~passthrough machine in
  Printf.printf
    "2. monitor installed; capture ports opened in the I/O bitmap\n";

  (* step 3: boot a guest with a driver for it *)
  Monitor.boot_guest monitor (capture_guest ()) ~entry:0x1000;
  Printf.printf "3. guest booted with a 20-instruction driver\n\n";

  Machine.run_seconds machine 0.5;
  let fields = Cpu.read_reg (Machine.cpu machine) 7 in
  let stats = Monitor.stats monitor in
  Printf.printf "after 0.5 s simulated: guest serviced %d field interrupts\n"
    fields;
  Printf.printf "fields captured by the card: %d\n"
    (Capture_card.io_read card 2);
  Printf.printf
    "trapped i/o: %d total, all of them PIC end-of-interrupt writes (%d);\n\
     the capture card's own ports never trapped\n"
    stats.Monitor.io_emulations stats.Monitor.pic_emulations;
  Printf.printf
    "\nMonitor source files changed to support the new device: 0.\n\
     A conventional full VMM would have needed a capture-card emulator\n\
     before the guest's first port access could succeed.\n"
