(* Quickstart: boot the HiTactix-like guest under the lightweight monitor,
   attach the host debugger over the (simulated) serial wire, and drive a
   small source-level debugging session — while the guest keeps streaming.

   This is the textual counterpart of the paper's Fig 2.1: it prints the
   realized architecture (who owns which hardware resource) and then shows
   the remote-debugging loop in action.

   Run with: dune exec examples/quickstart.exe *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Io_bus = Vmm_hw.Io_bus
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Symbols = Vmm_debugger.Symbols
module Cli = Vmm_debugger.Cli

let banner title =
  Printf.printf "\n=== %s ===\n" title

let print_architecture machine monitor =
  banner "Debugging environment (cf. paper Fig 2.1)";
  let layout = Monitor.layout monitor in
  Printf.printf "host machine   : remote debugger <-> serial wire (115200 8N1)\n";
  Printf.printf "target machine : lightweight VMM at ring 0, guest OS at ring 1\n";
  Printf.printf "guest memory   : 0x000000 - 0x%x\n" (layout.Core.Vm_layout.monitor_base - 1);
  Printf.printf "monitor memory : 0x%x - 0x%x (never mapped for the guest)\n"
    layout.Core.Vm_layout.monitor_base
    (layout.Core.Vm_layout.mem_size - 1);
  let describe base count =
    let owner = Option.value ~default:"-" (Io_bus.owner (Machine.bus machine) base) in
    let cpu = Machine.cpu machine in
    let direct = Vmm_hw.Cpu.port_allowed cpu base in
    Printf.printf "  ports 0x%03x-0x%03x  %-5s %s\n" base (base + count - 1) owner
      (if direct then "direct access (pass-through)"
       else "indirect access (trapped and emulated by the monitor)")
  in
  describe Machine.Ports.pic 3;
  describe Machine.Ports.pit 3;
  describe Machine.Ports.uart 3;
  describe Machine.Ports.scsi 7;
  describe Machine.Ports.nic 8

let () =
  (* A faster serial line keeps the demo snappy; the default models real
     115200 baud. *)
  let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 } in
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  let config = Kernel.default_config ~rate_mbps:30.0 in
  let program = Kernel.build config in
  Monitor.boot_guest monitor program ~entry:Kernel.entry;
  print_architecture machine monitor;

  banner "Booting guest and letting it stream at 30 Mbps";
  Machine.run_seconds machine 0.05;
  let counters () = Kernel.read_counters (Machine.mem machine) program in
  let c = counters () in
  Printf.printf "guest alive: %d timer ticks, %d frames transmitted\n"
    c.Kernel.ticks c.Kernel.frames_sent;

  banner "Attaching the remote debugger";
  let session = Session.attach machine in
  let symbols = Symbols.of_program program in
  let cli = Cli.create ~session ~symbols in
  let run line =
    Printf.printf "(dbg) %s\n%s\n" line (Cli.execute cli line)
  in
  run "status";
  run "regs";
  run "disas timer_handler 4";

  banner "Breakpoint on the segment-transmit path";
  run "break send_segment";
  run "wait";
  run "regs";
  run "step";
  run "step";
  run "x counters 32";
  run "delete send_segment";
  run "continue";

  banner "Watchpoint on the guest's tick counter";
  run "watch counters 4";
  run "wait";
  run "unwatch counters 4";
  run "continue";

  banner "The guest streams on after the session";
  Machine.run_seconds machine 0.1;
  let c2 = counters () in
  Printf.printf "frames now %d (was %d) -- debugging did not stop the I/O path\n"
    c2.Kernel.frames_sent c.Kernel.frames_sent;
  let stats = Monitor.stats monitor in
  Printf.printf
    "monitor totals: %d world switches, %d shadow fills, %d reflected irqs\n"
    stats.Monitor.world_switches stats.Monitor.shadow_fills
    stats.Monitor.reflected_irqs
