lib/harness/workload.mli: Core Vmm_baseline Vmm_guest Vmm_hw
