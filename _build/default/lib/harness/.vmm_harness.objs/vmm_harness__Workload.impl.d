lib/harness/workload.ml: Core Int64 Vmm_baseline Vmm_guest Vmm_hw Vmm_sim
