let header_bytes = 42
let off_ethertype = 12
let off_ip_total_len = 16
let off_ip_id = 18
let off_ip_proto = 23
let off_udp_len = 38
let off_udp_checksum = 40
let off_payload = 42

type endpoint = {
  mac : string;
  ip : string;
  port : int;
}

let default_source =
  { mac = "\x02\x00\x00\x0A\x00\x01"; ip = "\x0A\x00\x00\x01"; port = 9000 }

let default_destination =
  { mac = "\x02\x00\x00\x0A\x00\x02"; ip = "\x0A\x00\x00\x02"; port = 9001 }

let be16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get_be16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let header_template ~src ~dst =
  if String.length src.mac <> 6 || String.length dst.mac <> 6 then
    invalid_arg "Netfmt.header_template: mac must be 6 bytes";
  if String.length src.ip <> 4 || String.length dst.ip <> 4 then
    invalid_arg "Netfmt.header_template: ip must be 4 bytes";
  let buf = Bytes.make header_bytes '\000' in
  Bytes.blit_string dst.mac 0 buf 0 6;
  Bytes.blit_string src.mac 0 buf 6 6;
  be16 buf off_ethertype 0x0800;
  (* IPv4: version 4, header length 5 words *)
  Bytes.set buf 14 '\x45';
  Bytes.set buf 22 '\x40' (* ttl 64 *);
  Bytes.set buf off_ip_proto '\x11' (* UDP *);
  Bytes.blit_string src.ip 0 buf 26 4;
  Bytes.blit_string dst.ip 0 buf 30 4;
  be16 buf 34 src.port;
  be16 buf 36 dst.port;
  Bytes.to_string buf

(* Internet checksum with the same little-endian byte pairing the CSUM
   instruction uses. *)
let payload_checksum payload =
  let sum = ref 0 in
  String.iteri
    (fun i c ->
      if i land 1 = 0 then sum := !sum + Char.code c
      else sum := !sum + (Char.code c lsl 8))
    payload;
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let build ~payload ~ip_id =
  let header = header_template ~src:default_source ~dst:default_destination in
  let buf = Bytes.of_string (header ^ payload) in
  be16 buf off_ip_total_len (String.length payload + 28);
  be16 buf off_ip_id ip_id;
  be16 buf off_udp_len (String.length payload + 8);
  be16 buf off_udp_checksum (payload_checksum payload);
  buf

type frame = {
  src : endpoint;
  dst : endpoint;
  ip_id : int;
  payload : string;
  udp_checksum : int;
}

let parse b =
  if Bytes.length b < header_bytes then None
  else if get_be16 b off_ethertype <> 0x0800 then None
  else if Char.code (Bytes.get b 14) <> 0x45 then None
  else if Char.code (Bytes.get b off_ip_proto) <> 0x11 then None
  else begin
    let total_len = get_be16 b off_ip_total_len in
    let udp_len = get_be16 b off_udp_len in
    if total_len <> Bytes.length b - 14 then None
    else if udp_len <> total_len - 20 then None
    else begin
      let payload_len = udp_len - 8 in
      let src =
        {
          mac = Bytes.sub_string b 6 6;
          ip = Bytes.sub_string b 26 4;
          port = get_be16 b 34;
        }
      and dst =
        {
          mac = Bytes.sub_string b 0 6;
          ip = Bytes.sub_string b 30 4;
          port = get_be16 b 36;
        }
      in
      Some
        {
          src;
          dst;
          ip_id = get_be16 b off_ip_id;
          payload = Bytes.sub_string b off_payload payload_len;
          udp_checksum = get_be16 b off_udp_checksum;
        }
    end
  end
