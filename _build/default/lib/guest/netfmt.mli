(** Ethernet/IPv4/UDP frame layout shared between the guest's transmit
    path and the host-side validation code.

    The guest builds each frame by copying a 42-byte header template and
    patching the length, identification and checksum fields; this module
    generates the template and parses frames coming off the simulated
    wire.

    Simplification (documented in DESIGN.md): the UDP checksum field
    carries the Internet checksum of the payload only (no pseudo-header),
    big-endian.  The IP header checksum is left zero. *)

val header_bytes : int

(** Field offsets within the frame. *)
val off_ethertype : int

val off_ip_total_len : int
val off_ip_id : int
val off_ip_proto : int
val off_udp_len : int
val off_udp_checksum : int
val off_payload : int

type endpoint = {
  mac : string;  (** 6 bytes *)
  ip : string;  (** 4 bytes *)
  port : int;
}

val default_source : endpoint
val default_destination : endpoint

(** [header_template ~src ~dst] is the 42-byte header with zero
    length/id/checksum fields.
    @raise Invalid_argument on malformed endpoint field sizes. *)
val header_template : src:endpoint -> dst:endpoint -> string

(** [build ~payload ~ip_id] constructs a complete wire frame (the inverse
    of {!parse}); used by harnesses that inject traffic toward the
    guest's receive path. *)
val build : payload:string -> ip_id:int -> bytes

type frame = {
  src : endpoint;
  dst : endpoint;
  ip_id : int;
  payload : string;
  udp_checksum : int;
}

(** [parse b] decodes a frame from the wire; [None] when too short, not
    IPv4/UDP, or the length fields disagree with the frame size. *)
val parse : bytes -> frame option

(** [payload_checksum payload] — the checksum value the guest should have
    placed in the UDP checksum field. *)
val payload_checksum : string -> int
