(** A second guest appliance: the UDP logger.

    Receives UDP frames on the NIC, verifies each payload's checksum
    against the header field, and appends valid payloads to the first
    SCSI disk — the receive-side counterpart of the paper's transmit
    workload, used by the RX examples and tests.  Like the transmit
    kernel, the same binary runs on bare hardware, under the lightweight
    monitor and under the hosted full VMM. *)

type config = {
  log_to_disk : bool;  (** write valid payloads to SCSI target 0 *)
}

val default_config : config

val entry : int

(** Physical address of the receive staging buffer. *)
val rx_buffer : int

(** Disk layout of the log: each logged payload occupies this many
    512-byte sectors starting at sector {!log_first_lba}. *)
val log_stride_sectors : int

val log_first_lba : int

val build : config -> Vmm_hw.Asm.program

type counters = {
  rx_frames : int;  (** frames DMA'd from the NIC *)
  rx_valid : int;  (** payload checksum matched the header *)
  rx_invalid : int;
  rx_bytes : int;
  logged : int;  (** payloads written to disk *)
  log_dropped : int;  (** disk was busy; payload not logged *)
}

val read_counters : Vmm_hw.Phys_mem.t -> Vmm_hw.Asm.program -> counters
