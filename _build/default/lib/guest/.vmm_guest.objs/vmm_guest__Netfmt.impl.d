lib/guest/netfmt.ml: Bytes Char String
