lib/guest/netfmt.mli:
