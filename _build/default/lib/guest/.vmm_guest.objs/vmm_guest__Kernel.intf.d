lib/guest/kernel.mli: Vmm_hw
