lib/guest/rx_logger.mli: Vmm_hw
