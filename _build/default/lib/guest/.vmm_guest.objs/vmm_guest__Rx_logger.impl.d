lib/guest/rx_logger.ml: List Netfmt Vmm_hw
