lib/guest/kernel.ml: Bytes List Netfmt Printf Vmm_hw
