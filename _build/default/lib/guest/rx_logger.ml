module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Machine = Vmm_hw.Machine
module Phys_mem = Vmm_hw.Phys_mem

type config = { log_to_disk : bool }

let default_config = { log_to_disk = true }

let entry = 0x1000
let stack_top = 0x80000
let rx_buffer = 0x300000
let log_stride_sectors = 4 (* 2 KiB per slot > any MTU payload *)
let log_first_lba = 0

(* Counter offsets. *)
let off_rx_frames = 0
let off_rx_valid = 4
let off_rx_invalid = 8
let off_rx_bytes = 12
let off_logged = 16
let off_log_dropped = 20
let off_lba_cursor = 24

let pic = Machine.Ports.pic
let scsi = Machine.Ports.scsi
let nic = Machine.Ports.nic

let build config =
  let a = Asm.create ~origin:entry () in

  (* ---- boot ---- *)
  Asm.label a "boot";
  Asm.movi a Isa.sp (Asm.imm stack_top);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");

  (* ---- NIC interrupt: drain and validate received frames ---- *)
  Asm.label a "nic_handler";
  List.iter (Asm.push a) [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  Asm.movi a 8 (Asm.lbl "counters");
  Asm.label a "rx_check";
  Asm.ini a 1 (Asm.imm (nic + 3));
  Asm.movi a 2 (Asm.imm 8);
  Asm.and_ a 2 1 2;
  Asm.jz a (Asm.lbl "rx_done");
  Asm.ini a 3 (Asm.imm (nic + 7)) (* waiting frame length *);
  Asm.cmpi a 3 (Asm.imm 0);
  Asm.jz a (Asm.lbl "rx_done");
  (* DMA the frame into the staging buffer *)
  Asm.movi a 4 (Asm.imm rx_buffer);
  Asm.outi a (Asm.imm (nic + 6)) 4;
  Asm.movi a 5 (Asm.imm 2);
  Asm.outi a (Asm.imm (nic + 2)) 5;
  (* rx_frames++, rx_bytes += length *)
  Asm.ld a 9 8 off_rx_frames;
  Asm.addi a 9 9 (Asm.imm 1);
  Asm.st a 8 off_rx_frames 9;
  Asm.ld a 9 8 off_rx_bytes;
  Asm.add a 9 9 3;
  Asm.st a 8 off_rx_bytes 9;
  (* validate: need a full header, then payload checksum must match *)
  Asm.cmpi a 3 (Asm.imm Netfmt.header_bytes);
  Asm.jb a (Asm.lbl "rx_invalid");
  Asm.movi a 6 (Asm.imm Netfmt.header_bytes);
  Asm.sub a 6 3 6 (* payload length *);
  Asm.movi a 5 (Asm.imm (rx_buffer + Netfmt.off_payload));
  Asm.csum a 7 5 6;
  Asm.movi a 4 (Asm.imm rx_buffer);
  Asm.ldb a 5 4 Netfmt.off_udp_checksum;
  Asm.movi a 9 (Asm.imm 8);
  Asm.shl a 5 5 9;
  Asm.ldb a 9 4 (Netfmt.off_udp_checksum + 1);
  Asm.or_ a 5 5 9;
  Asm.cmp a 5 7;
  Asm.jnz a (Asm.lbl "rx_invalid");
  Asm.ld a 9 8 off_rx_valid;
  Asm.addi a 9 9 (Asm.imm 1);
  Asm.st a 8 off_rx_valid 9;
  if config.log_to_disk then begin
    Asm.cmpi a 6 (Asm.imm 0);
    Asm.jz a (Asm.lbl "rx_check") (* empty payload: nothing to log *);
    (* disk 0 still busy with the previous write? *)
    Asm.ini a 5 (Asm.imm (scsi + 5));
    Asm.movi a 9 (Asm.imm 0x10000);
    Asm.and_ a 5 5 9;
    Asm.jnz a (Asm.lbl "rx_drop");
    Asm.movi a 5 (Asm.imm 0);
    Asm.outi a (Asm.imm scsi) 5 (* target 0 *);
    Asm.ld a 5 8 off_lba_cursor;
    Asm.outi a (Asm.imm (scsi + 1)) 5;
    Asm.addi a 5 5 (Asm.imm log_stride_sectors);
    Asm.st a 8 off_lba_cursor 5;
    Asm.outi a (Asm.imm (scsi + 2)) 6 (* byte count = payload length *);
    Asm.movi a 5 (Asm.imm (rx_buffer + Netfmt.off_payload));
    Asm.outi a (Asm.imm (scsi + 3)) 5;
    Asm.movi a 5 (Asm.imm 2);
    Asm.outi a (Asm.imm (scsi + 4)) 5 (* write *);
    Asm.ld a 9 8 off_logged;
    Asm.addi a 9 9 (Asm.imm 1);
    Asm.st a 8 off_logged 9;
    Asm.jmp a (Asm.lbl "rx_check");
    Asm.label a "rx_drop";
    Asm.ld a 9 8 off_log_dropped;
    Asm.addi a 9 9 (Asm.imm 1);
    Asm.st a 8 off_log_dropped 9
  end;
  Asm.jmp a (Asm.lbl "rx_check");
  Asm.label a "rx_invalid";
  Asm.ld a 9 8 off_rx_invalid;
  Asm.addi a 9 9 (Asm.imm 1);
  Asm.st a 8 off_rx_invalid 9;
  Asm.jmp a (Asm.lbl "rx_check");
  Asm.label a "rx_done";
  Asm.movi a 1 (Asm.imm 0x20);
  Asm.outi a (Asm.imm pic) 1;
  List.iter (Asm.pop a) [ 9; 8; 7; 6; 5; 4; 3; 2; 1 ];
  Asm.iret a;

  (* ---- SCSI completion: retire finished log writes ---- *)
  Asm.label a "scsi_handler";
  List.iter (Asm.push a) [ 1; 2; 3; 4 ];
  Asm.ini a 1 (Asm.imm (scsi + 5));
  Asm.movi a 2 (Asm.imm 0);
  Asm.label a "scsi_ack_loop";
  Asm.movi a 3 (Asm.imm 1);
  Asm.shl a 3 3 2;
  Asm.and_ a 4 1 3;
  Asm.jz a (Asm.lbl "scsi_ack_next");
  Asm.outi a (Asm.imm (scsi + 6)) 2;
  Asm.label a "scsi_ack_next";
  Asm.addi a 2 2 (Asm.imm 1);
  Asm.cmpi a 2 (Asm.imm 3);
  Asm.jb a (Asm.lbl "scsi_ack_loop");
  Asm.movi a 1 (Asm.imm 0x20);
  Asm.outi a (Asm.imm pic) 1;
  List.iter (Asm.pop a) [ 4; 3; 2; 1 ];
  Asm.iret a;

  (* ---- data ---- *)
  Asm.align a 8;
  Asm.label a "counters";
  Asm.space a 32;
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    let gate =
      if v = Isa.vec_irq_base_default + Machine.Irq.nic then Some "nic_handler"
      else if v = Isa.vec_irq_base_default + Machine.Irq.scsi then
        Some "scsi_handler"
      else None
    in
    match gate with
    | Some target ->
      Asm.word a (Asm.lbl target);
      Asm.word a (Asm.imm 1)
    | None ->
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
  done;
  Asm.assemble a

type counters = {
  rx_frames : int;
  rx_valid : int;
  rx_invalid : int;
  rx_bytes : int;
  logged : int;
  log_dropped : int;
}

let read_counters mem program =
  let base = Asm.symbol program "counters" in
  let word off = Phys_mem.read_u32 mem (base + off) in
  {
    rx_frames = word off_rx_frames;
    rx_valid = word off_rx_valid;
    rx_invalid = word off_rx_invalid;
    rx_bytes = word off_rx_bytes;
    logged = word off_logged;
    log_dropped = word off_log_dropped;
  }
