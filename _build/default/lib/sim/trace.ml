type severity = Debug | Info | Warn | Error

type record = {
  time : int64;
  component : string;
  severity : severity;
  message : string;
}

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int;
  mutable stored : int;
  mutable emitted : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  { capacity; ring = Array.make capacity None; next = 0; stored = 0; emitted = 0 }

let emit t ~time ~component ~severity message =
  t.ring.(t.next) <- Some { time; component; severity; message };
  t.next <- (t.next + 1) mod t.capacity;
  if t.stored < t.capacity then t.stored <- t.stored + 1;
  t.emitted <- t.emitted + 1

let records t =
  let start = (t.next - t.stored + t.capacity) mod t.capacity in
  let rec collect i acc =
    if i < 0 then acc
    else
      let slot = (start + i) mod t.capacity in
      match t.ring.(slot) with
      | Some r -> collect (i - 1) (r :: acc)
      | None -> collect (i - 1) acc
  in
  collect (t.stored - 1) []

let find t ~component =
  List.filter (fun r -> String.equal r.component component) (records t)

let count t = t.stored

let total t = t.emitted

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.stored <- 0;
  t.emitted <- 0

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp_record fmt r =
  Format.fprintf fmt "[%Ld] %s %s: %s" r.time r.component
    (severity_to_string r.severity)
    r.message
