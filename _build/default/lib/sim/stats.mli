(** Measurement helpers: counters, busy-time (CPU load) accounting and
    fixed-bucket histograms.

    CPU load is defined as in the paper's Fig 3.1: the fraction of elapsed
    cycles during which the processor was doing work (guest code, monitor
    emulation, interrupt handling) rather than halted. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int64 -> unit
val counter_name : counter -> string
val counter_value : counter -> int64
val reset_counter : counter -> unit

(** {1 Busy-time accounting} *)

type load

(** [load ()] is a fresh accumulator with zero busy time. *)
val load : unit -> load

(** [note_busy load cycles] records [cycles] of non-idle execution. *)
val note_busy : load -> int64 -> unit

(** [busy_cycles load] is the accumulated busy time. *)
val busy_cycles : load -> int64

(** [utilization load ~elapsed] is busy/elapsed clamped to [0,1];
    0 when [elapsed] is 0. *)
val utilization : load -> elapsed:int64 -> float

val reset_load : load -> unit

(** {1 Histograms} *)

type histogram

(** [histogram ~buckets ~width] covers [\[0, buckets*width)] plus an
    overflow bucket. *)
val histogram : buckets:int -> width:float -> histogram

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_mean : histogram -> float

(** [bucket_counts h] includes the final overflow bucket. *)
val bucket_counts : histogram -> int array

(** [percentile h p] approximates the [p]-th percentile ([0 <= p <= 100])
    from bucket midpoints; 0 on an empty histogram. *)
val percentile : histogram -> float -> float
