(* PCG-XSH-RR 64/32 (O'Neill 2014).  64-bit LCG state, 32-bit output with a
   random rotation; small, fast and statistically solid for simulation. *)

type t = {
  mutable state : int64;
  inc : int64; (* stream selector, must be odd *)
}

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.add (Int64.mul t.state multiplier) t.inc

let output state =
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical
            (Int64.logxor (Int64.shift_right_logical state 18) state)
            27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical state 59) in
  let v = (xorshifted lsr rot) lor (xorshifted lsl (-rot land 31)) in
  Int64.of_int (v land 0xFFFFFFFF)

let create_stream ~seed ~stream =
  let inc = Int64.logor (Int64.shift_left stream 1) 1L in
  let t = { state = 0L; inc } in
  step t;
  t.state <- Int64.add t.state seed;
  step t;
  t

let create ~seed = create_stream ~seed ~stream:0x14057B7EF767814FL

let bits32 t =
  step t;
  output t.state

let split t =
  let seed = bits32 t and stream = bits32 t in
  create_stream
    ~seed:(Int64.logor (Int64.shift_left seed 32) (bits32 t))
    ~stream:(Int64.logor (Int64.shift_left stream 16) (bits32 t))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.mul (Int64.div 0x1_0000_0000L bound64) bound64 in
  let rec draw () =
    let v = bits32 t in
    if Int64.compare v limit < 0 then Int64.to_int (Int64.rem v bound64)
    else draw ()
  in
  draw ()

let float t bound =
  let v = Int64.to_float (bits32 t) /. 4294967296.0 in
  v *. bound

let bool t = Int64.logand (bits32 t) 1L = 1L

let exponential t ~mean =
  let rec positive () =
    let u = float t 1.0 in
    if u > 0.0 then u else positive ()
  in
  -.mean *. log (positive ())
