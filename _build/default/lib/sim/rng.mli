(** Deterministic pseudo-random number generator (PCG-32).

    Simulations must be reproducible, so every stochastic component draws
    from an explicitly seeded stream rather than [Random].  Streams can be
    split so independent devices do not perturb each other's sequences. *)

type t

(** [create ~seed] makes a generator; equal seeds yield equal sequences. *)
val create : seed:int64 -> t

(** [split t] derives an independent generator; deterministic in [t]'s
    state and advance count. *)
val split : t -> t

(** [bits32 t] is the next raw 32-bit draw (in [0, 2{^32})). *)
val bits32 : t -> int64

(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [exponential t ~mean] draws from Exp(1/mean); used for jittered device
    service times. *)
val exponential : t -> mean:float -> float
