(** Priority queue of timestamped events.

    The queue orders events by [(time, sequence)]: events scheduled for the
    same time fire in insertion order, which keeps simulations deterministic.
    Times are abstract 64-bit counts (the simulator uses CPU cycles). *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [is_empty q] is true when no event is pending. *)
val is_empty : 'a t -> bool

(** [length q] is the number of pending events. *)
val length : 'a t -> int

(** Handle to a scheduled event, usable for cancellation. *)
type handle

(** [add q ~time payload] schedules [payload] at [time] and returns a handle.
    [time] may be in the past relative to previously popped events; ordering
    is the caller's concern. *)
val add : 'a t -> time:int64 -> 'a -> handle

(** [cancel q h] removes the event behind [h]; returns [false] when the event
    already fired or was cancelled before. *)
val cancel : 'a t -> handle -> bool

(** [peek_time q] is the timestamp of the earliest pending event. *)
val peek_time : 'a t -> int64 option

(** [pop q] removes and returns the earliest event as [(time, payload)]. *)
val pop : 'a t -> (int64 * 'a) option

(** [clear q] drops every pending event. *)
val clear : 'a t -> unit
