(** Bounded in-memory event trace.

    Components append tagged records (device name, severity, message,
    timestamp); the ring keeps the most recent [capacity] entries.  Tests and
    the debugger use it to assert on event ordering without scraping logs. *)

type severity = Debug | Info | Warn | Error

type record = {
  time : int64;
  component : string;
  severity : severity;
  message : string;
}

type t

(** [create ~capacity ()] holds at most [capacity] records (>= 1). *)
val create : capacity:int -> unit -> t

(** [emit t ~time ~component ~severity message] appends a record. *)
val emit : t -> time:int64 -> component:string -> severity:severity -> string -> unit

(** [records t] is the retained history, oldest first. *)
val records : t -> record list

(** [find t ~component] filters retained records by component, oldest
    first. *)
val find : t -> component:string -> record list

(** [count t] is the number of retained records. *)
val count : t -> int

(** [total t] counts every record ever emitted, including evicted ones. *)
val total : t -> int

val clear : t -> unit

val severity_to_string : severity -> string

(** [pp_record fmt r] prints ["\[time\] component level: message"]. *)
val pp_record : Format.formatter -> record -> unit
