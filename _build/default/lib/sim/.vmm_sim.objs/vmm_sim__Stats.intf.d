lib/sim/stats.mli:
