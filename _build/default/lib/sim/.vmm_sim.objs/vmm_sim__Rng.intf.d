lib/sim/rng.mli:
