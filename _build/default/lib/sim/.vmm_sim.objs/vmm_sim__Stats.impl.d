lib/sim/stats.ml: Array Int64
