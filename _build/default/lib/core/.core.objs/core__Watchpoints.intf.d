lib/core/watchpoints.mli:
