lib/core/stub.mli: Breakpoints
