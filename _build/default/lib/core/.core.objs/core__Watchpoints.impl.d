lib/core/watchpoints.ml: List Vmm_hw
