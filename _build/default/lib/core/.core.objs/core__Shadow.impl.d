lib/core/shadow.ml: Vm_layout Vmm_hw
