lib/core/monitor.mli: Shadow Stub Vm_layout Vmm_hw Watchpoints
