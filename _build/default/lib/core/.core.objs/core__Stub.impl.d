lib/core/stub.ml: Breakpoints Bytes Char List Printf String Vmm_hw Vmm_proto
