lib/core/breakpoints.ml: Hashtbl List
