lib/core/breakpoints.mli:
