lib/core/vm_layout.ml:
