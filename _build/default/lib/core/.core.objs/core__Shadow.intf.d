lib/core/shadow.mli: Vm_layout Vmm_hw
