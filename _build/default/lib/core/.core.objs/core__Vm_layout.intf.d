lib/core/vm_layout.mli:
