lib/core/monitor.ml: Array Buffer Bytes Char Hashtbl List Option Printf Shadow String Stub Vm_layout Vmm_hw Vmm_sim Watchpoints
