(** Breakpoint table for the debug stub.

    Each entry remembers the original instruction bytes that the BRK patch
    replaced, so continue/step-over can restore and re-insert them. *)

type t

val create : unit -> t

(** [add t ~addr ~saved] registers a breakpoint; [false] when one already
    exists at [addr] (the caller must not double-patch). *)
val add : t -> addr:int -> saved:string -> bool

(** [remove t ~addr] unregisters and returns the saved bytes. *)
val remove : t -> addr:int -> string option

(** [saved_at t ~addr] — saved bytes without removing. *)
val saved_at : t -> addr:int -> string option

val mem : t -> addr:int -> bool
val count : t -> int

(** [addresses t] — sorted list of breakpoint addresses. *)
val addresses : t -> int list

(** [clear t] forgets everything (detach); returns the entries that were
    present so the caller can unpatch them. *)
val clear : t -> (int * string) list
