type t = { table : (int, string) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let add t ~addr ~saved =
  if Hashtbl.mem t.table addr then false
  else begin
    Hashtbl.add t.table addr saved;
    true
  end

let remove t ~addr =
  match Hashtbl.find_opt t.table addr with
  | Some saved ->
    Hashtbl.remove t.table addr;
    Some saved
  | None -> None

let saved_at t ~addr = Hashtbl.find_opt t.table addr
let mem t ~addr = Hashtbl.mem t.table addr
let count t = Hashtbl.length t.table

let addresses t =
  List.sort compare (Hashtbl.fold (fun addr _ acc -> addr :: acc) t.table [])

let clear t =
  let entries = Hashtbl.fold (fun addr saved acc -> (addr, saved) :: acc) t.table [] in
  Hashtbl.reset t.table;
  entries
