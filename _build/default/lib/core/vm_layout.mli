(** Physical-memory layout under the lightweight monitor.

    The monitor reserves the top of physical memory for itself (shadow page
    tables and bookkeeping); everything below is the guest's.  Protection
    comes from the shadow tables simply never mapping monitor frames — the
    paper's "lightweight mechanism protecting memory regions": the guest OS
    and its applications cannot name monitor memory at all. *)

type t = {
  mem_size : int;
  monitor_base : int;  (** first byte owned by the monitor *)
  shadow_base : int;  (** shadow page-table arena *)
  shadow_size : int;
}

(** [default ~mem_size] reserves the top quarter (at least 2 MiB) for the
    monitor: 64 KiB of private monitor memory followed by the shadow
    arena.
    @raise Invalid_argument when memory is too small (< 8 MiB). *)
val default : mem_size:int -> t

(** [guest_owns t paddr] — may the guest map/touch this physical address? *)
val guest_owns : t -> int -> bool

(** [guest_range_ok t ~addr ~len] checks a whole physical range. *)
val guest_range_ok : t -> addr:int -> len:int -> bool
