let page_size = Vmm_hw.Mmu.page_size

type t = { mutable ranges : (int * int) list }

let create () = { ranges = [] }

let add t ~addr ~len =
  if len <= 0 then invalid_arg "Watchpoints.add: len <= 0";
  if List.mem (addr, len) t.ranges then false
  else begin
    t.ranges <- (addr, len) :: t.ranges;
    true
  end

let remove t ~addr ~len =
  if List.mem (addr, len) t.ranges then begin
    t.ranges <- List.filter (( <> ) (addr, len)) t.ranges;
    true
  end
  else false

let hit t vaddr =
  List.find_opt (fun (addr, len) -> vaddr >= addr && vaddr < addr + len) t.ranges

let pages_of ~addr ~len =
  let first = addr land lnot (page_size - 1) in
  let last = (addr + len - 1) land lnot (page_size - 1) in
  let rec collect page acc =
    if page > last then List.rev acc else collect (page + page_size) (page :: acc)
  in
  collect first []

let page_watched t page_base =
  List.exists
    (fun (addr, len) -> List.mem page_base (pages_of ~addr ~len))
    t.ranges

let count t = List.length t.ranges
let ranges t = t.ranges

let clear t =
  let old = t.ranges in
  t.ranges <- [];
  old
