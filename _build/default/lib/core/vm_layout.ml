type t = {
  mem_size : int;
  monitor_base : int;
  shadow_base : int;
  shadow_size : int;
}

let mib = 1024 * 1024

let default ~mem_size =
  if mem_size < 8 * mib then invalid_arg "Vm_layout.default: memory < 8 MiB";
  let reserve = max (2 * mib) (mem_size / 4) in
  let monitor_base = (mem_size - reserve) land lnot 0xFFF in
  (* The first 64 KiB of the monitor region is private (monitor code and
     data in a real deployment); the shadow arena follows it. *)
  let shadow_base = monitor_base + 0x10000 in
  { mem_size; monitor_base; shadow_base; shadow_size = mem_size - shadow_base }

let guest_owns t paddr = paddr >= 0 && paddr < t.monitor_base

let guest_range_ok t ~addr ~len =
  len >= 0 && guest_owns t addr && (len = 0 || guest_owns t (addr + len - 1))
