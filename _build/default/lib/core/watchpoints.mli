(** Write-watchpoint table.

    The monitor implements data breakpoints with the same shadow-paging
    machinery that protects its own memory: pages containing a watched
    range are mapped read-only in the shadow tables, so every guest store
    to them faults.  Stores inside a watched range stop the guest and
    notify the debugger; stores elsewhere on the page are replayed
    transparently (unprotect, single-step, re-protect). *)

type t

val create : unit -> t

(** [add t ~addr ~len] registers a range; [false] when an identical range
    already exists.  @raise Invalid_argument when [len <= 0]. *)
val add : t -> addr:int -> len:int -> bool

(** [remove t ~addr ~len] — [false] when no such range. *)
val remove : t -> addr:int -> len:int -> bool

(** [hit t vaddr] — the watched range containing [vaddr], if any. *)
val hit : t -> int -> (int * int) option

(** [page_watched t page_base] — does any range touch this 4 KiB page? *)
val page_watched : t -> int -> bool

(** [pages_of ~addr ~len] — page base addresses a range covers. *)
val pages_of : addr:int -> len:int -> int list

val count : t -> int
val ranges : t -> (int * int) list
val clear : t -> (int * int) list
