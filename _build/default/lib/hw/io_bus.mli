(** Port-mapped I/O bus.

    Devices claim contiguous port ranges; the CPU's IN/OUT instructions (and
    the monitor, directly) dispatch through here.  Ports carry 32-bit values
    in this machine.  Reads from unclaimed ports float high (0xFFFFFFFF);
    writes to unclaimed ports are dropped — like a real ISA bus. *)

type t

exception Port_conflict of { port : int; owner : string }

val port_space : int

val create : unit -> t

(** [register t ~name ~base ~count ~read ~write] claims ports
    [base, base+count).  Handlers receive the offset from [base].
    @raise Port_conflict when any port is already claimed. *)
val register :
  t ->
  name:string ->
  base:int ->
  count:int ->
  read:(int -> int) ->
  write:(int -> int -> unit) ->
  unit

(** [unregister t ~base ~count] releases a range (device hot-unplug in
    tests). *)
val unregister : t -> base:int -> count:int -> unit

(** [read t port] dispatches a port read. *)
val read : t -> int -> int

(** [write t port v] dispatches a port write. *)
val write : t -> int -> int -> unit

(** [owner t port] is the claiming device's name, if any. *)
val owner : t -> int -> string option
