(** Physical memory: a flat, byte-addressable array with little-endian
    multi-byte access.

    Addresses are physical; translation lives in {!Mmu}.  Out-of-range
    accesses raise {!Bus_error}, which the CPU turns into a machine check. *)

type t

exception Bus_error of int

(** [create ~size] is zero-filled memory of [size] bytes. *)
val create : size:int -> t

val size : t -> int

(** 8-bit access; value in [0, 255]. *)
val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit

(** 16-bit little-endian access. *)
val read_u16 : t -> int -> int

val write_u16 : t -> int -> int -> unit

(** 32-bit little-endian access. *)
val read_u32 : t -> int -> Word.t

val write_u32 : t -> int -> Word.t -> unit

(** [load_bytes t ~addr bytes] copies [bytes] into memory at [addr]. *)
val load_bytes : t -> addr:int -> bytes -> unit

(** [read_bytes t ~addr ~len] copies a region out. *)
val read_bytes : t -> addr:int -> len:int -> bytes

(** [blit t ~src ~dst ~len] copies within physical memory (used by the DMA
    engine and the COPY instruction); handles overlap like [Bytes.blit]. *)
val blit : t -> src:int -> dst:int -> len:int -> unit

(** [checksum t ~addr ~len] is the ones'-complement 16-bit sum used by the
    guest's UDP stack (and by tests to validate transmitted frames). *)
val checksum : t -> addr:int -> len:int -> int

(** [fill t ~addr ~len v] sets a region to byte [v]. *)
val fill : t -> addr:int -> len:int -> int -> unit
