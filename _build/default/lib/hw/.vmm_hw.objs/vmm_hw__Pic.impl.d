lib/hw/pic.ml: Io_bus Isa
