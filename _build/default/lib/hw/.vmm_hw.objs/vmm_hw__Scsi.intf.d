lib/hw/scsi.mli: Costs Io_bus Phys_mem Vmm_sim
