lib/hw/pic.mli: Io_bus
