lib/hw/scsi.ml: Array Bytes Char Costs Hashtbl Int64 Io_bus Phys_mem Vmm_sim
