lib/hw/pit.mli: Costs Io_bus Vmm_sim
