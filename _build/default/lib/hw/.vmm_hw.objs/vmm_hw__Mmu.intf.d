lib/hw/mmu.mli: Costs Phys_mem
