lib/hw/pit.ml: Costs Int64 Io_bus Vmm_sim
