lib/hw/asm.mli: Isa Phys_mem
