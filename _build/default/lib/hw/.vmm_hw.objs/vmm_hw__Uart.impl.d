lib/hw/uart.ml: Costs Int64 Io_bus Queue Vmm_sim
