lib/hw/isa.ml: Bytes Char Costs Phys_mem Printf Word
