lib/hw/machine.ml: Asm Costs Cpu Int64 Io_bus Nic Phys_mem Pic Pit Scsi Uart Vmm_sim
