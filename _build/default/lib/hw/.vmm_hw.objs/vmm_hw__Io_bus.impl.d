lib/hw/io_bus.ml: Array
