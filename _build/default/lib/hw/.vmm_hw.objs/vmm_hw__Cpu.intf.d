lib/hw/cpu.mli: Costs Format Io_bus Isa Mmu Phys_mem Vmm_sim Word
