lib/hw/uart.mli: Costs Io_bus Vmm_sim
