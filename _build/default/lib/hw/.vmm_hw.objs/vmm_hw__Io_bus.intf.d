lib/hw/io_bus.mli:
