lib/hw/nic.ml: Bytes Costs Int64 Io_bus Phys_mem Queue Vmm_sim
