lib/hw/phys_mem.ml: Bytes Char
