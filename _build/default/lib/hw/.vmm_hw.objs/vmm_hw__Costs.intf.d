lib/hw/costs.mli:
