lib/hw/cpu.ml: Array Bytes Char Costs Format Int64 Io_bus Isa Mmu Phys_mem Printf Vmm_sim Word
