lib/hw/mmu.ml: Array Costs Int64 Phys_mem
