lib/hw/isa.mli: Costs Phys_mem Word
