lib/hw/costs.ml: Int64
