lib/hw/asm.ml: Bytes Char Hashtbl Isa List Phys_mem Printf String
