lib/hw/machine.mli: Asm Costs Cpu Io_bus Nic Phys_mem Pic Pit Scsi Uart Vmm_sim
