(** 32-bit machine words represented as OCaml [int]s in [0, 2{^32}).

    All arithmetic wraps modulo 2{^32}; helpers exist for the signed view
    used by comparisons.  Keeping words as plain [int]s (OCaml ints are 63
    bits) avoids boxing in the interpreter's hot path. *)

type t = int

val mask : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** Shift amounts are taken modulo 32, as on x86. *)
val shift_left : t -> int -> t

val shift_right : t -> int -> t

(** [to_signed w] reinterprets the word as a two's-complement 32-bit value. *)
val to_signed : t -> int

(** [of_signed v] wraps a (possibly negative) integer into a word. *)
val of_signed : int -> t

(** [byte w i] extracts byte [i] (0 = least significant). *)
val byte : t -> int -> int

(** [equal], [unsigned_lt], [signed_lt] are the comparison predicates the
    CPU flags are derived from. *)
val equal : t -> t -> bool

val unsigned_lt : t -> t -> bool
val signed_lt : t -> t -> bool
val pp : Format.formatter -> t -> unit
