type t = int

let mask v = v land 0xFFFFFFFF
let add a b = mask (a + b)
let sub a b = mask (a - b)
let mul a b = mask (a * b)
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let shift_left a n = mask (a lsl (n land 31))
let shift_right a n = mask a lsr (n land 31)
let to_signed w = if w land 0x80000000 <> 0 then w - 0x100000000 else w
let of_signed v = v land 0xFFFFFFFF
let byte w i = (w lsr (8 * i)) land 0xFF
let equal a b = mask a = mask b
let unsigned_lt a b = mask a < mask b
let signed_lt a b = to_signed a < to_signed b
let pp fmt w = Format.fprintf fmt "0x%08x" (mask w)
