(** Two-pass assembler for LWM-32, used to build the guest OS and test
    programs from OCaml.

    Usage: create a unit, emit instructions and labels in order, then
    [assemble].  Jump/call/movi targets may be symbolic ({!lbl}); the second
    pass resolves them.  The resulting {!program} carries a symbol table the
    debugger consumes. *)

type t

(** Immediate operand: a literal or a forward/backward label reference,
    optionally displaced. *)
type operand =
  | Imm of int
  | Lbl of string
  | Lbl_off of string * int

val imm : int -> operand
val lbl : string -> operand

exception Undefined_label of string
exception Duplicate_label of string

(** [create ?origin ()] starts a unit whose first byte lands at [origin]
    (default 0). *)
val create : ?origin:int -> unit -> t

(** [here t] is the address of the next emitted byte. *)
val here : t -> int

(** [label t name] binds [name] to the current address.
    @raise Duplicate_label on rebinding. *)
val label : t -> string -> unit

(** [instr t i] emits a fully resolved instruction. *)
val instr : t -> Isa.instr -> unit

(** {2 Instruction helpers} — one per mnemonic; targets take operands. *)

val nop : t -> unit
val hlt : t -> unit
val movi : t -> Isa.reg -> operand -> unit
val mov : t -> Isa.reg -> Isa.reg -> unit
val add : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val addi : t -> Isa.reg -> Isa.reg -> operand -> unit
val sub : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val and_ : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val or_ : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val xor_ : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val shl : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val shr : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val mul : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val cmp : t -> Isa.reg -> Isa.reg -> unit
val cmpi : t -> Isa.reg -> operand -> unit
val ld : t -> Isa.reg -> Isa.reg -> int -> unit
val st : t -> Isa.reg -> int -> Isa.reg -> unit
val ldb : t -> Isa.reg -> Isa.reg -> int -> unit
val stb : t -> Isa.reg -> int -> Isa.reg -> unit
val jmp : t -> operand -> unit
val jz : t -> operand -> unit
val jnz : t -> operand -> unit
val jlt : t -> operand -> unit
val jge : t -> operand -> unit
val jb : t -> operand -> unit
val jae : t -> operand -> unit
val jr : t -> Isa.reg -> unit
val call : t -> operand -> unit
val ret : t -> unit
val push : t -> Isa.reg -> unit
val pop : t -> Isa.reg -> unit
val in_ : t -> Isa.reg -> Isa.reg -> unit
val ini : t -> Isa.reg -> operand -> unit
val out : t -> Isa.reg -> Isa.reg -> unit
val outi : t -> operand -> Isa.reg -> unit
val int_ : t -> int -> unit
val iret : t -> unit
val sti : t -> unit
val cli : t -> unit
val liht : t -> Isa.reg -> unit
val lptb : t -> Isa.reg -> unit
val lstk : t -> int -> Isa.reg -> unit
val tlbflush : t -> unit
val copy : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val csum : t -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val rdtsc : t -> Isa.reg -> unit
val vmcall : t -> operand -> unit
val brk : t -> unit

(** {2 Data directives} *)

(** [word t op] emits a 32-bit little-endian datum (label-resolvable). *)
val word : t -> operand -> unit

(** [bytes t b] emits raw bytes. *)
val bytes : t -> bytes -> unit

(** [space t n] reserves [n] zero bytes. *)
val space : t -> int -> unit

(** [align t n] pads with zeros to the next multiple of [n]. *)
val align : t -> int -> unit

(** {2 Output} *)

type program = {
  origin : int;
  code : bytes;
  symbols : (string * int) list;  (** sorted by address *)
}

(** [assemble t] resolves labels and produces the image.
    @raise Undefined_label when a referenced label was never bound. *)
val assemble : t -> program

(** [symbol p name] looks up a label's absolute address.
    @raise Not_found when absent. *)
val symbol : program -> string -> int

(** [load p mem] copies the image into physical memory at its origin. *)
val load : program -> Phys_mem.t -> unit

(** [disassemble p ~addr ~count] renders [count] instructions starting at
    absolute address [addr], annotated with symbols. *)
val disassemble : program -> addr:int -> count:int -> string list
