type t = {
  mutable vector_base : int;
  mutable request : int;
  mutable service : int;
  mutable mask : int;
  mutable intr : bool -> unit;
  mutable intr_level : bool;
}

let lines = 8

let create ?(vector_base = Isa.vec_irq_base_default) () =
  {
    vector_base;
    request = 0;
    service = 0;
    mask = 0;
    intr = (fun _ -> ());
    intr_level = false;
  }

let lowest_bit v =
  let rec scan i = if i >= lines then None else if v land (1 lsl i) <> 0 then Some i else scan (i + 1) in
  scan 0

(* A request is deliverable when unmasked and of strictly higher priority
   (lower line number) than everything currently in service. *)
let deliverable t =
  match lowest_bit (t.request land lnot t.mask) with
  | None -> None
  | Some line ->
    (match lowest_bit t.service with
     | Some s when s <= line -> None
     | Some _ | None -> Some line)

let update_intr t =
  let level = deliverable t <> None in
  if level <> t.intr_level then begin
    t.intr_level <- level;
    t.intr level
  end

let set_intr t f =
  t.intr <- f;
  t.intr_level <- deliverable t <> None;
  f t.intr_level

let raise_irq t line =
  if line < 0 || line >= lines then invalid_arg "Pic.raise_irq";
  t.request <- t.request lor (1 lsl line);
  update_intr t

let pending t = deliverable t <> None

let ack t =
  match deliverable t with
  | None -> None
  | Some line ->
    t.request <- t.request land lnot (1 lsl line);
    t.service <- t.service lor (1 lsl line);
    update_intr t;
    Some (t.vector_base + line)

let vector_base t = t.vector_base

let eoi t =
  match lowest_bit t.service with
  | Some line ->
    t.service <- t.service land lnot (1 lsl line);
    update_intr t
  | None -> ()

let io_read t offset =
  match offset with
  | 0 -> t.service
  | 1 -> t.mask
  | 2 -> t.vector_base
  | _ -> 0xFFFFFFFF

let io_write t offset v =
  match offset with
  | 0 -> if v land 0xFF = 0x20 then eoi t
  | 1 ->
    t.mask <- v land 0xFF;
    update_intr t
  | 2 -> t.vector_base <- v land 0x3F
  | _ -> ()

let attach t bus ~base =
  Io_bus.register bus ~name:"pic" ~base ~count:3 ~read:(io_read t)
    ~write:(io_write t)

let requested t = t.request
let in_service t = t.service
let mask t = t.mask
