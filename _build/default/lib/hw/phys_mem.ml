type t = { data : Bytes.t }

exception Bus_error of int

let create ~size =
  if size <= 0 then invalid_arg "Phys_mem.create: size <= 0";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr len =
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bus_error addr)

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.chr (v land 0xFF))

let read_u16 t addr =
  check t addr 2;
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)

let write_u16 t addr v =
  check t addr 2;
  Bytes.unsafe_set t.data addr (Char.chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF))

let read_u32 t addr =
  check t addr 4;
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 3)) lsl 24)

let write_u32 t addr v =
  check t addr 4;
  Bytes.unsafe_set t.data addr (Char.chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t.data (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set t.data (addr + 3) (Char.chr ((v lsr 24) land 0xFF))

let load_bytes t ~addr bytes =
  check t addr (Bytes.length bytes);
  Bytes.blit bytes 0 t.data addr (Bytes.length bytes)

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let checksum t ~addr ~len =
  check t addr len;
  (* Standard Internet checksum: 16-bit ones'-complement sum, odd trailing
     byte padded with zero. *)
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + Char.code (Bytes.unsafe_get t.data (addr + !i))
           + (Char.code (Bytes.unsafe_get t.data (addr + !i + 1)) lsl 8);
    i := !i + 2
  done;
  if len land 1 = 1 then
    sum := !sum + Char.code (Bytes.unsafe_get t.data (addr + len - 1));
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let fill t ~addr ~len v =
  check t addr len;
  Bytes.fill t.data addr len (Char.chr (v land 0xFF))
