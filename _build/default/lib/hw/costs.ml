type t = {
  cpu_hz : float;
  base_instr : int;
  mem_access : int;
  mul_extra : int;
  tlb_miss : int;
  copy_per_byte : float;
  csum_per_byte : float;
  port_io : int;
  interrupt_delivery : int;
  iret_cost : int;
  world_switch : int;
  emulate_pic : int;
  emulate_pit : int;
  emulate_cpu : int;
  shadow_pt_sync : int;
  stub_dispatch : int;
  host_switch : int;
  host_syscall : int;
  host_io_per_byte : float;
  host_packet_overhead : int;
  uart_cycles_per_byte : int;
  disk_rate_mbps : float;
  disk_setup_cycles : int;
  nic_gbps : float;
  nic_setup_cycles : int;
}

(* Calibration notes: a 1500-byte frame at the native saturation point of
   ~700 Mbps leaves a budget of ~21.5k cycles per frame on a 1.26 GHz part,
   which the per-byte copy/checksum costs below roughly consume (the 2002-era
   stack copies each payload twice and checksums it once).  The monitor adds
   a handful of world switches per interrupt; the hosted VMM adds host
   context switches, system calls and an extra copy per packet. *)
let default =
  {
    cpu_hz = 1.26e9;
    base_instr = 1;
    mem_access = 2;
    mul_extra = 3;
    tlb_miss = 40;
    copy_per_byte = 7.5;
    csum_per_byte = 5.0;
    port_io = 200;
    interrupt_delivery = 300;
    iret_cost = 150;
    world_switch = 19000;
    emulate_pic = 900;
    emulate_pit = 900;
    emulate_cpu = 700;
    shadow_pt_sync = 1200;
    stub_dispatch = 800;
    host_switch = 46500;
    host_syscall = 10000;
    host_io_per_byte = 7.0;
    host_packet_overhead = 30000;
    uart_cycles_per_byte = 109_375; (* 115200 baud, 8N1 at 1.26 GHz *)
    disk_rate_mbps = 320.0;
    disk_setup_cycles = 2500;
    nic_gbps = 1.0;
    nic_setup_cycles = 600;
  }

let cycles_of_seconds t s = Int64.of_float (s *. t.cpu_hz)

let seconds_of_cycles t c = Int64.to_float c /. t.cpu_hz

let cycles_for_bytes ~per_byte n =
  int_of_float (ceil (float_of_int n *. per_byte))
