(** Cycle-cost model for the simulated 1.26 GHz machine.

    Every latency in the simulator comes from this record so experiments can
    sweep individual constants (ablations E6/E7 in DESIGN.md).  The defaults
    are calibrated once against the shape of the paper's Fig 3.1; the
    calibration is documented in EXPERIMENTS.md. *)

type t = {
  cpu_hz : float;  (** processor frequency, cycles per second *)
  base_instr : int;  (** cycles for a simple ALU/branch instruction *)
  mem_access : int;  (** additional cycles for a load/store *)
  mul_extra : int;  (** additional cycles for MUL *)
  tlb_miss : int;  (** two-level page-walk penalty *)
  copy_per_byte : float;  (** COPY instruction, cycles per byte *)
  csum_per_byte : float;  (** CSUM instruction, cycles per byte *)
  port_io : int;  (** IN/OUT when access is permitted *)
  interrupt_delivery : int;  (** hardware vectoring, stack switch *)
  iret_cost : int;  (** return-from-interrupt *)
  world_switch : int;
      (** guest to/from monitor transition, including the TLB and cache
          refill the paper's monitor pays on every trap *)
  emulate_pic : int;  (** per emulated interrupt-controller operation *)
  emulate_pit : int;  (** per emulated timer operation *)
  emulate_cpu : int;  (** per emulated privileged CPU operation *)
  shadow_pt_sync : int;  (** per shadow page-table entry fill *)
  stub_dispatch : int;  (** debug-stub command decode/dispatch *)
  host_switch : int;  (** hosted VMM: guest to host-OS world switch *)
  host_syscall : int;  (** hosted VMM: host-OS system-call path *)
  host_io_per_byte : float;  (** hosted VMM: extra copy through the host *)
  host_packet_overhead : int;  (** hosted VMM: per-packet host processing *)
  uart_cycles_per_byte : int;  (** serial-line serialization time *)
  disk_rate_mbps : float;  (** per-disk sustained media rate, megabits/s *)
  disk_setup_cycles : int;  (** controller command turnaround *)
  nic_gbps : float;  (** wire rate of the gigabit NIC *)
  nic_setup_cycles : int;  (** NIC command turnaround *)
}

(** Calibrated default model (see EXPERIMENTS.md, "Calibration"). *)
val default : t

(** [cycles_of_seconds t s] converts wall time to cycles at [t.cpu_hz]. *)
val cycles_of_seconds : t -> float -> int64

(** [seconds_of_cycles t c] converts cycles to seconds. *)
val seconds_of_cycles : t -> int64 -> float

(** [cycles_for_bytes ~per_byte n] rounds [n * per_byte] up to whole
    cycles. *)
val cycles_for_bytes : per_byte:float -> int -> int
