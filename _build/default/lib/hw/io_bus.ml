type handler = {
  name : string;
  read : int -> int;
  write : int -> int -> unit;
  base : int;
}

type t = { ports : handler option array }

exception Port_conflict of { port : int; owner : string }

let port_space = 65536

let create () = { ports = Array.make port_space None }

let check_range base count =
  if base < 0 || count <= 0 || base + count > port_space then
    invalid_arg "Io_bus.register: bad range"

let register t ~name ~base ~count ~read ~write =
  check_range base count;
  for p = base to base + count - 1 do
    match t.ports.(p) with
    | Some h -> raise (Port_conflict { port = p; owner = h.name })
    | None -> ()
  done;
  let h = { name; read; write; base } in
  for p = base to base + count - 1 do
    t.ports.(p) <- Some h
  done

let unregister t ~base ~count =
  check_range base count;
  for p = base to base + count - 1 do
    t.ports.(p) <- None
  done

let read t port =
  if port < 0 || port >= port_space then 0xFFFFFFFF
  else
    match t.ports.(port) with
    | Some h -> h.read (port - h.base)
    | None -> 0xFFFFFFFF

let write t port v =
  if port >= 0 && port < port_space then
    match t.ports.(port) with
    | Some h -> h.write (port - h.base) v
    | None -> ()

let owner t port =
  if port < 0 || port >= port_space then None
  else
    match t.ports.(port) with
    | Some h -> Some h.name
    | None -> None
