type operand =
  | Imm of int
  | Lbl of string
  | Lbl_off of string * int

let imm v = Imm v
let lbl name = Lbl name

exception Undefined_label of string
exception Duplicate_label of string

type item =
  | Fixed of Isa.instr
  | Deferred of (int -> Isa.instr) * operand (* resolved value fed back *)
  | Data32 of operand
  | Raw of bytes
  | Zeros of int

type t = {
  origin : int;
  mutable items : item list; (* reversed *)
  mutable cursor : int; (* current absolute address *)
  symbols : (string, int) Hashtbl.t;
}

let create ?(origin = 0) () =
  { origin; items = []; cursor = origin; symbols = Hashtbl.create 64 }

let here t = t.cursor

let label t name =
  if Hashtbl.mem t.symbols name then raise (Duplicate_label name);
  Hashtbl.add t.symbols name t.cursor

let item_size = function
  | Fixed _ | Deferred _ -> Isa.width
  | Data32 _ -> 4
  | Raw b -> Bytes.length b
  | Zeros n -> n

let push_item t item =
  t.items <- item :: t.items;
  t.cursor <- t.cursor + item_size item

let instr t i = push_item t (Fixed i)

let deferred t f op =
  match op with
  | Imm v -> push_item t (Fixed (f v))
  | Lbl _ | Lbl_off _ -> push_item t (Deferred (f, op))

(* Mnemonic helpers. *)
let nop t = instr t Isa.Nop
let hlt t = instr t Isa.Hlt
let movi t rd op = deferred t (fun v -> Isa.Movi (rd, v land 0xFFFFFFFF)) op
let mov t rd rs = instr t (Isa.Mov (rd, rs))
let add t rd a b = instr t (Isa.Add (rd, a, b))
let addi t rd a op = deferred t (fun v -> Isa.Addi (rd, a, v land 0xFFFFFFFF)) op
let sub t rd a b = instr t (Isa.Sub (rd, a, b))
let and_ t rd a b = instr t (Isa.And_ (rd, a, b))
let or_ t rd a b = instr t (Isa.Or_ (rd, a, b))
let xor_ t rd a b = instr t (Isa.Xor_ (rd, a, b))
let shl t rd a b = instr t (Isa.Shl (rd, a, b))
let shr t rd a b = instr t (Isa.Shr (rd, a, b))
let mul t rd a b = instr t (Isa.Mul (rd, a, b))
let cmp t a b = instr t (Isa.Cmp (a, b))
let cmpi t a op = deferred t (fun v -> Isa.Cmpi (a, v land 0xFFFFFFFF)) op
let ld t rd base off = instr t (Isa.Ld (rd, base, off land 0xFFFFFFFF))
let st t base off src = instr t (Isa.St (base, off land 0xFFFFFFFF, src))
let ldb t rd base off = instr t (Isa.Ldb (rd, base, off land 0xFFFFFFFF))
let stb t base off src = instr t (Isa.Stb (base, off land 0xFFFFFFFF, src))
let jmp t op = deferred t (fun v -> Isa.Jmp v) op
let jz t op = deferred t (fun v -> Isa.Jz v) op
let jnz t op = deferred t (fun v -> Isa.Jnz v) op
let jlt t op = deferred t (fun v -> Isa.Jlt v) op
let jge t op = deferred t (fun v -> Isa.Jge v) op
let jb t op = deferred t (fun v -> Isa.Jb v) op
let jae t op = deferred t (fun v -> Isa.Jae v) op
let jr t rs = instr t (Isa.Jr rs)
let call t op = deferred t (fun v -> Isa.Call v) op
let ret t = instr t Isa.Ret
let push t rs = instr t (Isa.Push rs)
let pop t rd = instr t (Isa.Pop rd)
let in_ t rd rs = instr t (Isa.In_ (rd, rs))
let ini t rd op = deferred t (fun v -> Isa.Ini (rd, v)) op
let out t p v = instr t (Isa.Out (p, v))
let outi t op v = deferred t (fun p -> Isa.Outi (p, v)) op
let int_ t vec = instr t (Isa.Int_ vec)
let iret t = instr t Isa.Iret
let sti t = instr t Isa.Sti
let cli t = instr t Isa.Cli
let liht t rs = instr t (Isa.Liht rs)
let lptb t rs = instr t (Isa.Lptb rs)
let lstk t ring rs = instr t (Isa.Lstk (ring, rs))
let tlbflush t = instr t Isa.Tlbflush
let copy t d s n = instr t (Isa.Copy (d, s, n))
let csum t rd a n = instr t (Isa.Csum (rd, a, n))
let rdtsc t rd = instr t (Isa.Rdtsc rd)
let vmcall t op = deferred t (fun v -> Isa.Vmcall v) op
let brk t = instr t Isa.Brk

let word t op = push_item t (Data32 op)
let bytes t b = push_item t (Raw (Bytes.copy b))
let space t n =
  if n < 0 then invalid_arg "Asm.space: negative";
  if n > 0 then push_item t (Zeros n)

let align t n =
  if n <= 0 then invalid_arg "Asm.align: non-positive";
  let rem = t.cursor mod n in
  if rem <> 0 then space t (n - rem)

type program = {
  origin : int;
  code : bytes;
  symbols : (string * int) list;
}

let resolve (t : t) = function
  | Imm v -> v
  | Lbl name ->
    (match Hashtbl.find_opt t.symbols name with
     | Some v -> v
     | None -> raise (Undefined_label name))
  | Lbl_off (name, off) ->
    (match Hashtbl.find_opt t.symbols name with
     | Some v -> v + off
     | None -> raise (Undefined_label name))

let assemble t =
  let items = List.rev t.items in
  let total = t.cursor - t.origin in
  let code = Bytes.make total '\000' in
  let write_at pos item =
    (match item with
     | Fixed i -> Bytes.blit (Isa.encode i) 0 code pos Isa.width
     | Deferred (f, op) ->
       let i = f (resolve t op) in
       Bytes.blit (Isa.encode i) 0 code pos Isa.width
     | Data32 op ->
       let v = resolve t op in
       Bytes.set code pos (Char.chr (v land 0xFF));
       Bytes.set code (pos + 1) (Char.chr ((v lsr 8) land 0xFF));
       Bytes.set code (pos + 2) (Char.chr ((v lsr 16) land 0xFF));
       Bytes.set code (pos + 3) (Char.chr ((v lsr 24) land 0xFF))
     | Raw b -> Bytes.blit b 0 code pos (Bytes.length b)
     | Zeros _ -> ());
    pos + item_size item
  in
  let _end = List.fold_left write_at 0 items in
  let symbols =
    Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) t.symbols []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  { origin = t.origin; code; symbols }

let symbol p name =
  match List.assoc_opt name p.symbols with
  | Some v -> v
  | None -> raise Not_found

let load p mem = Phys_mem.load_bytes mem ~addr:p.origin p.code

let disassemble p ~addr ~count =
  let sym_at a =
    List.filter_map (fun (n, v) -> if v = a then Some n else None) p.symbols
  in
  let rec loop a n acc =
    if n = 0 then List.rev acc
    else
      let off = a - p.origin in
      if off < 0 || off + Isa.width > Bytes.length p.code then List.rev acc
      else begin
        let labels =
          match sym_at a with
          | [] -> ""
          | names -> String.concat ", " names ^ ":\n"
        in
        let i = Isa.decode ~addr:a p.code ~off in
        let line = Printf.sprintf "%s  %08x: %s" labels a (Isa.to_string i) in
        loop (a + Isa.width) (n - 1) (line :: acc)
      end
  in
  loop addr count []
