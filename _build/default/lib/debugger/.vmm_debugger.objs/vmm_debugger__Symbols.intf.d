lib/debugger/symbols.mli: Vmm_hw
