lib/debugger/symbols.ml: Array Hashtbl List Printf Vmm_hw
