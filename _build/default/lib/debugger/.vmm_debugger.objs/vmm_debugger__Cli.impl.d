lib/debugger/cli.ml: Array Buffer Bytes Char List Option Printf Session String Symbols Vmm_hw Vmm_proto
