lib/debugger/session.ml: Char Int64 List Queue String Vmm_hw Vmm_proto
