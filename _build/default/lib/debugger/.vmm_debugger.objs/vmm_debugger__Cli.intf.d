lib/debugger/cli.mli: Session Symbols
