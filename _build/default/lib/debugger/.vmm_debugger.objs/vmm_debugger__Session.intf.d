lib/debugger/session.mli: Vmm_hw Vmm_proto
