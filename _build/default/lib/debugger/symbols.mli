(** Symbol table for the host debugger, built from an assembled guest
    image. *)

type t

val of_program : Vmm_hw.Asm.program -> t

(** [address t name] — the label's absolute address. *)
val address : t -> string -> int option

(** [nearest t addr] — the closest label at or below [addr], with the
    offset from it; [None] below the first symbol. *)
val nearest : t -> int -> (string * int) option

(** [format_addr t addr] — ["label+0x10 (0x1234)"] style rendering. *)
val format_addr : t -> int -> string

val all : t -> (string * int) list
