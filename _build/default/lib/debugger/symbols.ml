type t = { by_name : (string, int) Hashtbl.t; sorted : (string * int) array }

let of_program (p : Vmm_hw.Asm.program) =
  let by_name = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace by_name name addr) p.Vmm_hw.Asm.symbols;
  let sorted = Array.of_list p.Vmm_hw.Asm.symbols in
  Array.sort (fun (_, a) (_, b) -> compare a b) sorted;
  { by_name; sorted }

let address t name = Hashtbl.find_opt t.by_name name

let nearest t addr =
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let _, a = t.sorted.(mid) in
      if a <= addr then search (mid + 1) hi (Some t.sorted.(mid))
      else search lo (mid - 1) best
  in
  search 0 (Array.length t.sorted - 1) None

let format_addr t addr =
  match nearest t addr with
  | Some (name, base) when addr = base -> Printf.sprintf "%s (0x%x)" name addr
  | Some (name, base) -> Printf.sprintf "%s+0x%x (0x%x)" name (addr - base) addr
  | None -> Printf.sprintf "0x%x" addr

let all t = Array.to_list t.sorted
