(** Debugger command language — the user-facing layer of the host
    debugger.

    Commands accept symbolic or hex addresses:
    - [regs] — dump registers
    - [reg <n> <value>] — set a register
    - [x <addr> <len>] — hex dump of target memory
    - [w <addr> <hexbytes>] — write target memory
    - [disas <addr> <count>] — disassemble
    - [break <addr>] / [delete <addr>] — breakpoints
    - [continue] / [step] / [halt] / [status] / [wait] — execution control
    - [symbols] — list known labels
    - [help] *)

type t

val create : session:Session.t -> symbols:Symbols.t -> t

(** [execute t line] runs one command and returns its output text
    (possibly multi-line, no trailing newline). Unknown commands return a
    usage hint. *)
val execute : t -> string -> string

(** [parse_address t token] resolves a symbol name, [label+off] or
    0x-hex/decimal literal. *)
val parse_address : t -> string -> int option
