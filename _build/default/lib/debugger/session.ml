module Machine = Vmm_hw.Machine
module Uart = Vmm_hw.Uart
module Costs = Vmm_hw.Costs
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command

type t = {
  machine : Machine.t;
  decoder : Packet.decoder;
  replies : string Queue.t;  (** raw non-stop payloads *)
  stops : Command.stop_reason Queue.t;
  mutable sent : int;
  mutable received : int;
  mutable last_latency_s : float;
  mutable last_tx : string option;  (** last framed command, for NAK *)
  mutable retransmissions : int;
}

let default_timeout_s = 5.0

let is_stop_payload payload = String.length payload >= 3 && payload.[0] = 'T'

let attach machine =
  let t =
    {
      machine;
      decoder = Packet.decoder ();
      replies = Queue.create ();
      stops = Queue.create ();
      sent = 0;
      received = 0;
      last_latency_s = 0.0;
      last_tx = None;
      retransmissions = 0;
    }
  in
  Uart.set_on_tx (Machine.uart machine) (fun byte ->
      match Packet.feed t.decoder byte with
      | Some (Packet.Packet payload) ->
        t.received <- t.received + 1;
        if is_stop_payload payload then begin
          match Command.reply_of_wire payload with
          | Some (Command.Stopped reason) -> Queue.add reason t.stops
          | Some _ | None -> Queue.add payload t.replies
        end
        else Queue.add payload t.replies
      | Some Packet.Bad_checksum ->
        (* corrupted reply: ask the stub to retransmit *)
        Uart.inject_rx (Machine.uart machine) (Char.code Packet.nak)
      | Some Packet.Nak ->
        (* the stub saw a corrupted command: resend it *)
        (match t.last_tx with
         | Some framed ->
           t.retransmissions <- t.retransmissions + 1;
           String.iter
             (fun c -> Uart.inject_rx (Machine.uart machine) (Char.code c))
             framed
         | None -> ())
      | Some Packet.Ack | None -> ());
  t

let send t command =
  t.sent <- t.sent + 1;
  let wire = Packet.frame (Command.command_to_wire command) in
  t.last_tx <- Some wire;
  String.iter
    (fun c -> Uart.inject_rx (Machine.uart t.machine) (Char.code c))
    wire

(* Pump the shared simulation in slices until [ready] or timeout.  The
   slice bounds the latency-measurement quantization, not correctness. *)
let pump_until t ~timeout_s ready =
  let slice = 0.0005 in
  let rec go budget =
    if ready () then true
    else if budget <= 0.0 then false
    else begin
      Machine.run_seconds t.machine slice;
      go (budget -. slice)
    end
  in
  go timeout_s

let transact ?(timeout_s = default_timeout_s) t command =
  let start = Machine.now t.machine in
  send t command;
  let got = pump_until t ~timeout_s (fun () -> not (Queue.is_empty t.replies)) in
  let costs = Machine.costs t.machine in
  t.last_latency_s <-
    Costs.seconds_of_cycles costs (Int64.sub (Machine.now t.machine) start);
  if got then Some (Queue.pop t.replies) else None

let read_registers ?timeout_s t =
  match transact ?timeout_s t Command.Read_registers with
  | Some payload ->
    (match Command.reply_of_wire payload with
     | Some (Command.Registers regs) -> Some regs
     | Some _ | None -> None)
  | None -> None

let expect_ok ?timeout_s t command =
  match transact ?timeout_s t command with
  | Some "OK" -> true
  | Some _ | None -> false

let write_register ?timeout_s t idx v =
  expect_ok ?timeout_s t (Command.Write_register (idx, v))

let read_memory ?timeout_s t ~addr ~len =
  match transact ?timeout_s t (Command.Read_memory { addr; len }) with
  | Some payload ->
    if String.length payload = 3 && payload.[0] = 'E' then None
    else Packet.of_hex payload
  | None -> None

let write_memory ?timeout_s t ~addr ~data =
  expect_ok ?timeout_s t (Command.Write_memory { addr; data })

let insert_breakpoint ?timeout_s t addr =
  expect_ok ?timeout_s t (Command.Insert_breakpoint addr)

let remove_breakpoint ?timeout_s t addr =
  expect_ok ?timeout_s t (Command.Remove_breakpoint addr)

let read_console ?timeout_s t =
  match transact ?timeout_s t Command.Read_console with
  | Some payload -> Packet.of_hex payload
  | None -> None

let read_profile ?timeout_s t =
  match transact ?timeout_s t Command.Read_profile with
  | Some payload ->
    (match Packet.of_hex payload with
     | Some text ->
       let parse_pair pair =
         match String.split_on_char ',' pair with
         | [ pc; count ] ->
           (match (Packet.int_of_hex pc, Packet.int_of_hex count) with
            | Some pc, Some count -> Some (pc, count)
            | _ -> None)
         | _ -> None
       in
       if text = "" then Some []
       else
         Some (List.filter_map parse_pair (String.split_on_char ';' text))
     | None -> None)
  | None -> None

let insert_watchpoint ?timeout_s t ~addr ~len =
  expect_ok ?timeout_s t (Command.Insert_watchpoint { addr; len })

let remove_watchpoint ?timeout_s t ~addr ~len =
  expect_ok ?timeout_s t (Command.Remove_watchpoint { addr; len })

(* Stop replies to '?' land in the stop queue like asynchronous
   notifications; a query therefore waits for either queue. *)
let query_raw ?(timeout_s = default_timeout_s) t =
  send t Command.Query_stop;
  let ready () =
    (not (Queue.is_empty t.replies)) || not (Queue.is_empty t.stops)
  in
  if pump_until t ~timeout_s ready then
    match Queue.take_opt t.stops with
    | Some reason -> Some (Error reason)
    | None -> Some (Ok (Queue.pop t.replies))
  else None

let query ?timeout_s t =
  match query_raw ?timeout_s t with
  | Some (Error reason) -> Some reason
  | Some (Ok _) | None -> None

let is_running ?timeout_s t =
  match query_raw ?timeout_s t with
  | Some (Ok "R") -> Some true
  | Some (Error _) -> Some false
  | Some (Ok _) | None -> None

let wait_stop ?(timeout_s = default_timeout_s) t =
  let got = pump_until t ~timeout_s (fun () -> not (Queue.is_empty t.stops)) in
  if got then Some (Queue.pop t.stops) else None

let continue_ t = send t Command.Continue

let step ?timeout_s t =
  send t Command.Step;
  wait_stop ?timeout_s t

let halt ?timeout_s t =
  send t Command.Halt;
  wait_stop ?timeout_s t

let detach ?timeout_s t = expect_ok ?timeout_s t Command.Detach

let pending_stop t = Queue.take_opt t.stops
let retransmissions t = t.retransmissions
let packets_sent t = t.sent
let packets_received t = t.received
let last_latency_s t = t.last_latency_s
