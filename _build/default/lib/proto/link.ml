type endpoint = {
  send : int -> unit;
  set_receive : (int -> unit) -> unit;
}

type side = {
  mutable receive : (int -> unit) option;
  backlog : int Queue.t;
}

let deliver side byte =
  match side.receive with
  | Some f -> f byte
  | None -> Queue.add byte side.backlog

let make_side () = { receive = None; backlog = Queue.create () }

let endpoint_of ~peer ~own =
  {
    send = (fun byte -> deliver peer (byte land 0xFF));
    set_receive =
      (fun f ->
        own.receive <- Some f;
        while not (Queue.is_empty own.backlog) do
          f (Queue.pop own.backlog)
        done);
  }

let loopback () =
  let a = make_side () and b = make_side () in
  (endpoint_of ~peer:b ~own:a, endpoint_of ~peer:a ~own:b)

let send_string e s = String.iter (fun c -> e.send (Char.code c)) s
