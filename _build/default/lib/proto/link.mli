(** Byte-stream endpoints connecting a debugger to a target.

    An endpoint sends bytes one way and surfaces received bytes through a
    registered callback.  The production link wraps the simulated UART (see
    [Vmm_debugger.Session.over_uart]); [loopback] provides a zero-latency
    in-memory pair for protocol tests. *)

type endpoint = {
  send : int -> unit;  (** transmit one byte *)
  set_receive : (int -> unit) -> unit;  (** register the receive callback *)
}

(** [loopback ()] is a connected pair: bytes sent on one side arrive
    synchronously at the other.  Bytes sent before a receiver is registered
    are buffered. *)
val loopback : unit -> endpoint * endpoint

(** [send_string e s] sends every byte of [s]. *)
val send_string : endpoint -> string -> unit
