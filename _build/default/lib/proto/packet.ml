let ack = '+'
let nak = '-'

let needs_escape c = c = '$' || c = '#' || c = '}'

let escape payload =
  let buf = Buffer.create (String.length payload + 8) in
  String.iter
    (fun c ->
      if needs_escape c then begin
        Buffer.add_char buf '}';
        Buffer.add_char buf (Char.chr (Char.code c lxor 0x20))
      end
      else Buffer.add_char buf c)
    payload;
  Buffer.contents buf

let checksum payload =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xFF) payload;
  !sum

let hex_digit v = "0123456789abcdef".[v land 0xF]

let hex_of_int v ~width =
  if v < 0 then invalid_arg "Packet.hex_of_int: negative";
  String.init width (fun i -> hex_digit (v lsr (4 * (width - 1 - i))))

let digit_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let int_of_hex s =
  if String.length s = 0 then None
  else
    let rec go i acc =
      if i = String.length s then Some acc
      else
        match digit_value s.[i] with
        | Some d -> go (i + 1) ((acc lsl 4) lor d)
        | None -> None
    in
    go 0 0

let to_hex s =
  String.concat ""
    (List.map (fun c -> hex_of_int (Char.code c) ~width:2)
       (List.init (String.length s) (String.get s)))

let of_hex s =
  let n = String.length s in
  if n land 1 = 1 then None
  else
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i = n / 2 then Some (Bytes.to_string buf)
      else
        match (digit_value s.[2 * i], digit_value s.[(2 * i) + 1]) with
        | Some hi, Some lo ->
          Bytes.set buf i (Char.chr ((hi lsl 4) lor lo));
          go (i + 1)
        | _ -> None
    in
    go 0

let frame payload =
  let escaped = escape payload in
  Printf.sprintf "$%s#%s" escaped (hex_of_int (checksum escaped) ~width:2)

(* Incremental decoder: a small state machine over wire bytes. *)

type state =
  | Idle
  | Body  (** inside $...# *)
  | Body_escaped
  | Check1
  | Check2 of int  (** first checksum nibble *)

type decoder = {
  mutable state : state;
  body : Buffer.t;  (** unescaped payload *)
  mutable raw_sum : int;  (** checksum over escaped bytes *)
}

type event =
  | Packet of string
  | Bad_checksum
  | Ack
  | Nak

let decoder () = { state = Idle; body = Buffer.create 64; raw_sum = 0 }

let reset d =
  d.state <- Idle;
  Buffer.clear d.body;
  d.raw_sum <- 0

let start d =
  Buffer.clear d.body;
  d.raw_sum <- 0;
  d.state <- Body

let feed d byte =
  let c = Char.chr (byte land 0xFF) in
  match d.state with
  | Idle ->
    (match c with
     | '+' -> Some Ack
     | '-' -> Some Nak
     | '$' ->
       start d;
       None
     | _ -> None)
  | Body ->
    (match c with
     | '#' ->
       d.state <- Check1;
       None
     | '$' ->
       (* Lost synchronization: restart on the fresh packet. *)
       start d;
       None
     | '}' ->
       d.raw_sum <- (d.raw_sum + Char.code c) land 0xFF;
       d.state <- Body_escaped;
       None
     | _ ->
       d.raw_sum <- (d.raw_sum + Char.code c) land 0xFF;
       Buffer.add_char d.body c;
       None)
  | Body_escaped ->
    d.raw_sum <- (d.raw_sum + Char.code c) land 0xFF;
    Buffer.add_char d.body (Char.chr (Char.code c lxor 0x20));
    d.state <- Body;
    None
  | Check1 ->
    (match digit_value c with
     | Some hi ->
       d.state <- Check2 hi;
       None
     | None ->
       reset d;
       Some Bad_checksum)
  | Check2 hi ->
    (match digit_value c with
     | Some lo ->
       let expected = (hi lsl 4) lor lo in
       let payload = Buffer.contents d.body in
       let sum = d.raw_sum in
       reset d;
       if sum = expected then Some (Packet payload) else Some Bad_checksum
     | None ->
       reset d;
       Some Bad_checksum)

let feed_string d s =
  List.filter_map (feed d)
    (List.init (String.length s) (fun i -> Char.code s.[i]))
