lib/proto/link.ml: Char Queue String
