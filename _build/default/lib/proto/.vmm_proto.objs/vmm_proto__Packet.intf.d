lib/proto/packet.mli:
