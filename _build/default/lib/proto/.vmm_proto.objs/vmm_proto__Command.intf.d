lib/proto/command.mli: Format
