lib/proto/link.mli:
