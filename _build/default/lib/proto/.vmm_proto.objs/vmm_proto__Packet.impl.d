lib/proto/packet.ml: Buffer Bytes Char List Printf String
