lib/proto/command.ml: Array Format Option Packet Printf String
