(** The "hardware simulator working with a software debugger" environment
    from the paper's introduction.

    A full-system simulator gives perfect stability and visibility but
    executes the target orders of magnitude slower than real time and
    cannot drive the physical I/O devices, so I/O-heavy debugging sessions
    are impractical.  This module models that cost structure: the same
    workload's wall-clock time and effective achievable I/O rate under a
    configurable slowdown, plus the qualitative properties the paper's
    three-way comparison rests on. *)

type t = { slowdown : float  (** simulated-seconds-to-wall ratio *) }

(** A 2005-era cycle-level full-system simulator: ~500x. *)
val default : t

(** [wall_clock_seconds t ~simulated_seconds] — how long the user waits. *)
val wall_clock_seconds : t -> simulated_seconds:float -> float

(** [effective_rate_mbps t ~native_rate_mbps] — the I/O rate the target
    appears to sustain from the outside world's point of view. *)
val effective_rate_mbps : t -> native_rate_mbps:float -> float

type properties = {
  name : string;
  stable_under_os_crash : bool;
  needs_device_model_per_device : bool;
  io_efficiency : float;  (** fraction of native I/O rate achievable *)
}

(** [properties t] for the simulator environment. *)
val properties : t -> properties

(** The comparison rows for the other environments, used by the
    customizability/stability experiment printouts. *)
val comparison_rows : lwvmm_io_efficiency:float -> fullvmm_io_efficiency:float -> properties list
