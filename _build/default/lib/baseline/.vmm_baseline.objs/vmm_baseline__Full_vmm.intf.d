lib/baseline/full_vmm.mli: Vmm_hw
