lib/baseline/embedded_debugger.ml: Array Bytes Char String Vmm_hw Vmm_proto
