lib/baseline/hw_simulator.ml:
