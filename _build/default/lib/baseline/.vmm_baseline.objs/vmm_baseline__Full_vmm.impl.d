lib/baseline/full_vmm.ml: Array Bytes Core Vmm_hw
