lib/baseline/embedded_debugger.mli: Vmm_hw
