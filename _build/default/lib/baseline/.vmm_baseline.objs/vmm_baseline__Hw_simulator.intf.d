lib/baseline/hw_simulator.mli:
