(** A software debugger {e embedded in the operating system under
    development} — the conventional alternative the paper's introduction
    rules out for stability reasons.

    The agent lives inside guest-reachable memory and depends on the
    guest's own integrity: its code/data region can be overwritten by a
    wild store, and it can only run when the guest kernel is well enough
    to dispatch it.  [service] models the agent's command loop: it first
    verifies its own integrity (checksum over its region) and the
    machine's liveness; once either is violated the agent never answers
    again — unlike the lightweight monitor's stub, which survives
    arbitrary guest failure (experiment E3). *)

type t

(** [attach machine ~region] plants the agent's image at physical
    [region] (guest-reachable) and takes over the UART. *)
val attach : Vmm_hw.Machine.t -> region:int -> t

(** Size of the planted agent image in bytes. *)
val footprint : int

(** [alive t] — integrity check: region unmodified and machine not
    panicked. *)
val alive : t -> bool

(** [mark_machine_dead t] — the harness calls this when the bare-metal
    machine panics (triple fault); the embedded agent dies with it. *)
val mark_machine_dead : t -> unit

(** [service t] processes any debugger bytes waiting in the UART: replies
    while [alive], stays silent forever otherwise.  Returns the number of
    commands answered. *)
val service : t -> int

val commands_answered : t -> int
