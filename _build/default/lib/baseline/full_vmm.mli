(** A conventional {e hosted} full virtual machine monitor — the VMware
    Workstation 4 stand-in the paper compares against (architecture per
    Sugerman et al., USENIX ATC'01, which the paper cites).

    Differences from the lightweight monitor in [Core.Monitor]:

    - {b no pass-through}: every device port access traps and is routed
      through the host operating system (a modeled context switch plus a
      system call) before reaching the device;
    - {b per-packet host processing}: network sends pay the host's network
      stack and an extra buffer copy on top of the guest's own work;
    - {b per-transfer host processing}: disk reads pay the host file
      system path and a bounce-buffer copy;
    - {b interrupt delivery through the host}: a device interrupt is
      fielded by the host OS, handed to the VMM application, and only then
      reflected into the guest.

    The guest binary and the devices are identical to the other two
    systems; only the access-cost structure differs — which is exactly
    what Fig 3.1 measures. *)

type t

type stats = {
  host_switches : int;  (** guest <-> host-OS round trips *)
  host_syscalls : int;
  device_forwards : int;  (** emulated device register accesses *)
  packets_forwarded : int;
  disk_transfers_forwarded : int;
  bytes_copied : int;  (** bounce-buffer bytes through the host *)
  reflected_irqs : int;
  cpu_emulations : int;
  shadow_fills : int;
}

(** [install machine] takes ownership like a hosted VMM would. *)
val install : Vmm_hw.Machine.t -> t

val uninstall : t -> unit

(** [boot_guest t program ~entry] — as [Core.Monitor.boot_guest]. *)
val boot_guest : t -> Vmm_hw.Asm.program -> entry:int -> unit

val stats : t -> stats
val guest_halted : t -> bool
val machine : t -> Vmm_hw.Machine.t
val shutdown_requested : t -> bool
