type t = { slowdown : float }

let default = { slowdown = 500.0 }

let wall_clock_seconds t ~simulated_seconds = simulated_seconds *. t.slowdown

let effective_rate_mbps t ~native_rate_mbps = native_rate_mbps /. t.slowdown

type properties = {
  name : string;
  stable_under_os_crash : bool;
  needs_device_model_per_device : bool;
  io_efficiency : float;
}

let properties t =
  {
    name = "hardware simulator + debugger";
    stable_under_os_crash = true;
    needs_device_model_per_device = true;
    io_efficiency = 1.0 /. t.slowdown;
  }

let comparison_rows ~lwvmm_io_efficiency ~fullvmm_io_efficiency =
  [
    {
      name = "embedded in-OS debugger";
      stable_under_os_crash = false;
      needs_device_model_per_device = false;
      io_efficiency = 1.0;
    };
    {
      name = "full VMM (hosted)";
      stable_under_os_crash = true;
      needs_device_model_per_device = true;
      io_efficiency = fullvmm_io_efficiency;
    };
    {
      name = "lightweight VMM (this paper)";
      stable_under_os_crash = true;
      needs_device_model_per_device = false;
      io_efficiency = lwvmm_io_efficiency;
    };
  ]
