module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Isa = Vmm_hw.Isa
module Mmu = Vmm_hw.Mmu
module Pic = Vmm_hw.Pic
module Pit = Vmm_hw.Pit
module Io_bus = Vmm_hw.Io_bus
module Phys_mem = Vmm_hw.Phys_mem
module Costs = Vmm_hw.Costs
module Asm = Vmm_hw.Asm
module Shadow = Core.Shadow
module Vm_layout = Core.Vm_layout

type stats = {
  host_switches : int;
  host_syscalls : int;
  device_forwards : int;
  packets_forwarded : int;
  disk_transfers_forwarded : int;
  bytes_copied : int;
  reflected_irqs : int;
  cpu_emulations : int;
  shadow_fills : int;
}

type t = {
  machine : Machine.t;
  cpu : Cpu.t;
  costs : Costs.t;
  layout : Vm_layout.t;
  shadow : Shadow.t;
  vpic : Pic.t;
  mutable vpit : Pit.t option;
  mutable v_if : bool;
  mutable v_iht : int;
  mutable v_ptb : int;
  mutable v_cpl : int;
  v_stacks : int array;
  mutable v_halted : bool;
  mutable dead : bool;  (** guest crashed; hosted VMM just parks it *)
  mutable shutdown : bool;
  (* device shadow registers, observed as the guest programs them *)
  mutable nic_tx_len : int;
  mutable scsi_count : int;
  (* counters *)
  mutable c_host : int;
  mutable c_syscall : int;
  mutable c_forward : int;
  mutable c_packets : int;
  mutable c_disk : int;
  mutable c_copied : int;
  mutable c_irq : int;
  mutable c_cpu : int;
}

let real_ring_of_vring vring = if vring land 3 = 3 then 3 else 1

let get_vpit t = match t.vpit with Some p -> p | None -> assert false

let charge t cycles = Cpu.charge t.cpu cycles

(* Every guest exit goes through the host OS scheduler and back. *)
let host_round_trip t =
  t.c_host <- t.c_host + 1;
  charge t t.costs.Costs.host_switch

let host_syscall t =
  t.c_syscall <- t.c_syscall + 1;
  charge t t.costs.Costs.host_syscall

(* -- Guest-virtual memory (same approach as the monitor) -- *)

let translate_guest t vaddr =
  let vaddr = vaddr land 0xFFFFFFFF in
  if t.v_ptb = 0 then
    if Vm_layout.guest_owns t.layout vaddr then Some vaddr else None
  else
    match Mmu.probe (Machine.mem t.machine) ~ptb:t.v_ptb vaddr with
    | Some pte ->
      let frame = Mmu.frame_of pte in
      if Vm_layout.guest_owns t.layout frame then
        Some (frame lor (vaddr land 0xFFF))
      else None
    | None -> None

let guest_read_u32 t vaddr =
  match translate_guest t vaddr with
  | Some paddr when vaddr land 0xFFF <= Mmu.page_size - 4 ->
    Some (Phys_mem.read_u32 (Machine.mem t.machine) paddr)
  | Some _ | None -> None

let guest_write_u32 t vaddr v =
  match translate_guest t vaddr with
  | Some paddr when vaddr land 0xFFF <= Mmu.page_size - 4 ->
    Phys_mem.write_u32 (Machine.mem t.machine) paddr v;
    true
  | Some _ | None -> false

let guest_flags_word t =
  Cpu.flags_word t.cpu land 0x7
  lor (if t.v_if then 0x200 else 0)
  lor (t.v_cpl lsl 12)

let set_guest_flags t w =
  let real = Cpu.flags_word t.cpu in
  Cpu.set_flags_word t.cpu (real land lnot 0x7 lor (w land 0x7));
  Cpu.set_interrupts_enabled t.cpu true;
  t.v_if <- w land 0x200 <> 0;
  t.v_cpl <- (w lsr 12) land 3;
  Cpu.set_cpl t.cpu (real_ring_of_vring t.v_cpl)

(* A hosted VMM has no independent debug channel: a crashed guest is
   simply parked (the user restarts the VM). *)
let park t =
  t.dead <- true;
  Cpu.set_stopped t.cpu true

let read_guest_gate t vector =
  if vector < 0 || vector >= 64 then None
  else
    let base = t.v_iht + (8 * vector) in
    match (guest_read_u32 t base, guest_read_u32 t (base + 4)) with
    | Some handler, Some info when info land 1 <> 0 ->
      Some (handler, (info lsr 1) land 3)
    | _ -> None

let rec reflect t ~vector ~error ~return_pc ~depth =
  match read_guest_gate t vector with
  | None ->
    if depth > 0 || vector = Isa.vec_protection then park t
    else
      reflect t ~vector:Isa.vec_protection ~error:vector ~return_pc
        ~depth:(depth + 1)
  | Some (handler, target_vring) ->
    let sp0 =
      if target_vring < t.v_cpl then t.v_stacks.(target_vring)
      else Cpu.read_reg t.cpu Isa.sp
    in
    let flags = guest_flags_word t in
    let push sp v = if guest_write_u32 t (sp - 4) v then Some (sp - 4) else None in
    let frame =
      match push sp0 (Cpu.read_reg t.cpu Isa.sp) with
      | Some sp1 ->
        (match push sp1 flags with
         | Some sp2 ->
           (match push sp2 (return_pc land 0xFFFFFFFF) with
            | Some sp3 -> push sp3 (error land 0xFFFFFFFF)
            | None -> None)
         | None -> None)
      | None -> None
    in
    (match frame with
     | Some sp4 ->
       Cpu.write_reg t.cpu Isa.sp sp4;
       t.v_cpl <- target_vring;
       Cpu.set_cpl t.cpu (real_ring_of_vring target_vring);
       t.v_if <- false;
       Cpu.set_pc t.cpu handler;
       charge t t.costs.Costs.interrupt_delivery
     | None -> park t)

let kick t =
  if t.v_if && (not (Cpu.stopped t.cpu)) && Pic.pending t.vpic then
    match Pic.ack t.vpic with
    | Some vvector ->
      t.c_irq <- t.c_irq + 1;
      if t.v_halted then begin
        t.v_halted <- false;
        Cpu.set_halted t.cpu false
      end;
      reflect t ~vector:vvector ~error:0 ~return_pc:(Cpu.pc t.cpu) ~depth:0
    | None -> ()

let virtual_irq t line =
  Pic.raise_irq t.vpic line;
  if t.v_halted && t.v_if && Pic.pending t.vpic then begin
    t.v_halted <- false;
    Cpu.set_halted t.cpu false
  end;
  kick t

(* -- Privileged CPU emulation (host application doing the work) -- *)

let emulate_privileged t instr pc =
  t.c_cpu <- t.c_cpu + 1;
  host_round_trip t;
  charge t t.costs.Costs.emulate_cpu;
  let next = (pc + Isa.width) land 0xFFFFFFFF in
  let reg r = Cpu.read_reg t.cpu r in
  match instr with
  | Isa.Sti ->
    t.v_if <- true;
    Cpu.set_pc t.cpu next;
    kick t
  | Isa.Cli ->
    t.v_if <- false;
    Cpu.set_pc t.cpu next
  | Isa.Hlt ->
    t.v_halted <- true;
    Cpu.set_pc t.cpu next;
    if t.v_if && Pic.pending t.vpic then kick t
    else Cpu.set_halted t.cpu true
  | Isa.Iret ->
    let sp = Cpu.read_reg t.cpu Isa.sp in
    (match
       ( guest_read_u32 t sp,
         guest_read_u32 t (sp + 4),
         guest_read_u32 t (sp + 8),
         guest_read_u32 t (sp + 12) )
     with
     | Some _error, Some return_pc, Some flags, Some old_sp ->
       set_guest_flags t flags;
       Cpu.write_reg t.cpu Isa.sp old_sp;
       Cpu.set_pc t.cpu return_pc;
       kick t
     | _ -> park t)
  | Isa.Liht r ->
    t.v_iht <- reg r;
    Cpu.set_pc t.cpu next
  | Isa.Lptb r ->
    t.v_ptb <- reg r;
    Shadow.clear t.shadow;
    Cpu.set_ptb t.cpu (Shadow.root t.shadow);
    charge t t.costs.Costs.shadow_pt_sync;
    Cpu.set_pc t.cpu next
  | Isa.Lstk (ring, r) ->
    t.v_stacks.(ring land 3) <- reg r;
    Cpu.set_pc t.cpu next
  | Isa.Tlbflush ->
    Shadow.clear t.shadow;
    Cpu.set_ptb t.cpu (Shadow.root t.shadow);
    Cpu.set_pc t.cpu next
  | Isa.Nop | Isa.Movi _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _ | Isa.Sub _
  | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _ | Isa.Shl _ | Isa.Shr _ | Isa.Mul _
  | Isa.Cmp _ | Isa.Cmpi _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _ | Isa.Stb _
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _ | Isa.Jb _
  | Isa.Jae _ | Isa.Jr _ | Isa.Call _ | Isa.Ret | Isa.Push _ | Isa.Pop _
  | Isa.In_ _ | Isa.Ini _ | Isa.Out _ | Isa.Outi _ | Isa.Int_ _ | Isa.Copy _
  | Isa.Csum _ | Isa.Rdtsc _ | Isa.Vmcall _ | Isa.Brk ->
    park t

(* -- Device forwarding through the host OS -- *)

let nic_base = Machine.Ports.nic
let scsi_base = Machine.Ports.scsi
let pic_base = Machine.Ports.pic
let pit_base = Machine.Ports.pit

(* Extra host-side work for data-carrying operations: the hosted VMM
   copies the payload between guest memory and host buffers and runs the
   host network/disk stack. *)
let charge_host_data t bytes =
  t.c_copied <- t.c_copied + bytes;
  charge t (Costs.cycles_for_bytes ~per_byte:t.costs.Costs.host_io_per_byte bytes)

let forward_out t port value =
  t.c_forward <- t.c_forward + 1;
  host_syscall t;
  if port = nic_base + 1 then t.nic_tx_len <- value
  else if port = scsi_base + 2 then t.scsi_count <- value;
  if port = nic_base + 2 && value land 3 = 1 then begin
    (* packet send: host network-stack path plus a bounce copy *)
    t.c_packets <- t.c_packets + 1;
    charge t t.costs.Costs.host_packet_overhead;
    charge_host_data t t.nic_tx_len
  end
  else if port = scsi_base + 4 && value land 3 <> 0 then begin
    (* disk transfer: host file-system path plus a bounce copy *)
    t.c_disk <- t.c_disk + 1;
    charge t t.costs.Costs.host_packet_overhead;
    charge_host_data t t.scsi_count
  end;
  Io_bus.write (Machine.bus t.machine) port value

let forward_in t port =
  t.c_forward <- t.c_forward + 1;
  host_syscall t;
  Io_bus.read (Machine.bus t.machine) port

let emulated_in t port =
  if port >= pic_base && port < pic_base + 3 then
    Pic.io_read t.vpic (port - pic_base)
  else if port >= pit_base && port < pit_base + 3 then
    Pit.io_read (get_vpit t) (port - pit_base)
  else forward_in t port

let emulated_out t port value =
  if port >= pic_base && port < pic_base + 3 then begin
    Pic.io_write t.vpic (port - pic_base) value;
    kick t
  end
  else if port >= pit_base && port < pit_base + 3 then
    Pit.io_write (get_vpit t) (port - pit_base) value
  else forward_out t port value

let emulate_io t port pc =
  host_round_trip t;
  let next = (pc + Isa.width) land 0xFFFFFFFF in
  match Cpu.read_instr t.cpu pc with
  | Isa.In_ (rd, _) | Isa.Ini (rd, _) ->
    Cpu.write_reg t.cpu rd (emulated_in t port);
    Cpu.set_pc t.cpu next
  | Isa.Out (_, rs) | Isa.Outi (_, rs) ->
    emulated_out t port (Cpu.read_reg t.cpu rs);
    Cpu.set_pc t.cpu next
  | Isa.Nop | Isa.Hlt | Isa.Movi _ | Isa.Mov _ | Isa.Add _ | Isa.Addi _
  | Isa.Sub _ | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _ | Isa.Shl _ | Isa.Shr _
  | Isa.Mul _ | Isa.Cmp _ | Isa.Cmpi _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _
  | Isa.Stb _ | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _
  | Isa.Jb _ | Isa.Jae _ | Isa.Jr _ | Isa.Call _ | Isa.Ret | Isa.Push _
  | Isa.Pop _ | Isa.Int_ _ | Isa.Iret | Isa.Sti | Isa.Cli | Isa.Liht _
  | Isa.Lptb _ | Isa.Lstk _ | Isa.Tlbflush | Isa.Copy _ | Isa.Csum _
  | Isa.Rdtsc _ | Isa.Vmcall _ | Isa.Brk ->
    park t

(* -- Page faults (same shadow mechanism, hosted costs) -- *)

let fill_shadow t ~vaddr ~frame ~writable ~user =
  (try Shadow.map t.shadow ~vaddr ~frame ~writable ~user
   with Shadow.Out_of_shadow_memory ->
     Shadow.clear t.shadow;
     Cpu.set_ptb t.cpu (Shadow.root t.shadow);
     Shadow.map t.shadow ~vaddr ~frame ~writable ~user);
  Cpu.flush_tlb t.cpu;
  charge t t.costs.Costs.shadow_pt_sync

let handle_page_fault t (f : Mmu.fault) pc =
  host_round_trip t;
  let vaddr = f.Mmu.vaddr in
  if t.v_ptb = 0 then begin
    if Vm_layout.guest_owns t.layout vaddr then
      fill_shadow t ~vaddr ~frame:(vaddr land lnot 0xFFF) ~writable:true ~user:true
    else reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0
  end
  else
    match Mmu.probe (Machine.mem t.machine) ~ptb:t.v_ptb vaddr with
    | Some pte ->
      let frame = Mmu.frame_of pte in
      let writable = Mmu.is_writable pte and user = Mmu.is_user pte in
      let guest_allows =
        Vm_layout.guest_owns t.layout frame
        && (match f.Mmu.access with
           | Mmu.Write -> writable
           | Mmu.Read | Mmu.Exec -> true)
        && (t.v_cpl < 3 || user)
      in
      if guest_allows then fill_shadow t ~vaddr ~frame ~writable ~user
      else reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0
    | None ->
      reflect t ~vector:Isa.vec_page_fault ~error:vaddr ~return_pc:pc ~depth:0

(* -- Interrupts arrive at the host first -- *)

let handle_real_irq t vector =
  (* host IRQ handler -> VMM application wakeup -> virtual delivery *)
  host_round_trip t;
  host_syscall t;
  let line = vector - Pic.vector_base (Machine.pic t.machine) in
  Pic.io_write (Machine.pic t.machine) 0 0x20;
  virtual_irq t line

let handle_fault t kind pc =
  match kind with
  | Cpu.Gp (Cpu.Privileged_instruction instr) ->
    if t.v_cpl = 0 then emulate_privileged t instr pc
    else begin
      host_round_trip t;
      reflect t ~vector:Isa.vec_protection ~error:0 ~return_pc:pc ~depth:0
    end
  | Cpu.Gp (Cpu.Io_denied port) ->
    if t.v_cpl = 0 then emulate_io t port pc
    else begin
      host_round_trip t;
      reflect t ~vector:Isa.vec_protection ~error:port ~return_pc:pc ~depth:0
    end
  | Cpu.Gp _ ->
    host_round_trip t;
    reflect t ~vector:Isa.vec_protection ~error:0 ~return_pc:pc ~depth:0
  | Cpu.Page f -> handle_page_fault t f pc
  | Cpu.Breakpoint_trap | Cpu.Step_trap ->
    (* no debugging facility: treat like a guest fault *)
    host_round_trip t;
    reflect t ~vector:Isa.vec_breakpoint ~error:0 ~return_pc:pc ~depth:0
  | Cpu.Undefined opcode ->
    host_round_trip t;
    reflect t ~vector:Isa.vec_undefined ~error:opcode ~return_pc:pc ~depth:0
  | Cpu.Machine_check _ ->
    host_round_trip t;
    park t

let handle_hypercall t imm =
  host_round_trip t;
  match imm with
  | 2 ->
    t.shutdown <- true;
    t.v_halted <- true;
    Cpu.set_halted t.cpu true
  | _ -> ()

let hook t _cpu event =
  (match event with
   | Cpu.Irq vector -> handle_real_irq t vector
   | Cpu.Fault (kind, pc) -> handle_fault t kind pc
   | Cpu.Soft_int (vector, next_pc) ->
     host_round_trip t;
     reflect t ~vector ~error:0 ~return_pc:next_pc ~depth:0
   | Cpu.Hypercall (imm, _) -> handle_hypercall t imm);
  Cpu.Handled

let install machine =
  let cpu = Machine.cpu machine in
  let costs = Machine.costs machine in
  let layout =
    Vm_layout.default ~mem_size:(Phys_mem.size (Machine.mem machine))
  in
  let shadow = Shadow.create ~mem:(Machine.mem machine) ~layout () in
  let t =
    {
      machine;
      cpu;
      costs;
      layout;
      shadow;
      vpic = Pic.create ();
      vpit = None;
      v_if = false;
      v_iht = 0;
      v_ptb = 0;
      v_cpl = 0;
      v_stacks = Array.make 4 0;
      v_halted = false;
      dead = false;
      shutdown = false;
      nic_tx_len = 0;
      scsi_count = 0;
      c_host = 0;
      c_syscall = 0;
      c_forward = 0;
      c_packets = 0;
      c_disk = 0;
      c_copied = 0;
      c_irq = 0;
      c_cpu = 0;
    }
  in
  t.vpit <-
    Some
      (Pit.create ~engine:(Machine.engine machine) ~costs
         ~raise_irq:(fun () -> virtual_irq t Machine.Irq.timer)
         ());
  (* No pass-through at all: the I/O bitmap stays empty. *)
  Pic.io_write (Machine.pic machine) 1 0x00;
  Cpu.set_interrupts_enabled cpu true;
  Cpu.set_ptb cpu (Shadow.root shadow);
  Cpu.set_hypervisor cpu (Some (hook t));
  t

let uninstall t = Cpu.set_hypervisor t.cpu None

let boot_guest t program ~entry =
  let size = Bytes.length program.Asm.code in
  if not (Vm_layout.guest_range_ok t.layout ~addr:program.Asm.origin ~len:size)
  then invalid_arg "Full_vmm.boot_guest: image overlaps VMM memory";
  Asm.load program (Machine.mem t.machine);
  for i = 0 to 15 do
    Cpu.write_reg t.cpu i 0
  done;
  t.v_if <- false;
  t.v_iht <- 0;
  t.v_ptb <- 0;
  t.v_cpl <- 0;
  t.v_halted <- false;
  t.dead <- false;
  t.shutdown <- false;
  Shadow.clear t.shadow;
  Cpu.set_ptb t.cpu (Shadow.root t.shadow);
  Cpu.set_cpl t.cpu 1;
  Cpu.set_interrupts_enabled t.cpu true;
  Cpu.set_trap_flag t.cpu false;
  Cpu.set_pc t.cpu entry;
  Cpu.set_halted t.cpu false;
  Cpu.set_stopped t.cpu false

let stats t =
  {
    host_switches = t.c_host;
    host_syscalls = t.c_syscall;
    device_forwards = t.c_forward;
    packets_forwarded = t.c_packets;
    disk_transfers_forwarded = t.c_disk;
    bytes_copied = t.c_copied;
    reflected_irqs = t.c_irq;
    cpu_emulations = t.c_cpu;
    shadow_fills = Shadow.fills t.shadow;
  }

let guest_halted t = t.v_halted
let machine t = t.machine
let shutdown_requested t = t.shutdown
