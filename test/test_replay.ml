(* Record/replay and reverse-debugging suite: a recorded run under
   chaos replays to a bit-identical final state; the divergence detector
   pins the first mismatching event; full checkpoints round-trip every
   device's state; and the stub's [rs]/[rc] verbs land on the exact
   pre-crash instruction via checkpoint restore + deterministic
   re-execution. *)

module Machine = Vmm_hw.Machine
module Isa = Vmm_hw.Isa
module Asm = Vmm_hw.Asm
module Costs = Vmm_hw.Costs
module Command = Vmm_proto.Command
module Reliable = Vmm_proto.Reliable
module Monitor = Core.Monitor
module Stub = Core.Stub
module Snapshot = Core.Snapshot
module Vm_layout = Core.Vm_layout
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Chaos = Vmm_fault.Chaos
module Rng = Vmm_sim.Rng
module Stats = Vmm_sim.Stats
module Recorder = Vmm_replay.Recorder
module Trace = Vmm_replay.Trace
module Event = Vmm_replay.Event

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Fast serial line so debug round-trips stay cheap in simulated time. *)
let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let cyc s = Costs.cycles_of_seconds test_costs s

(* ---------------------------------------------------------------- *)
(* Trace format                                                      *)
(* ---------------------------------------------------------------- *)

let sample_events =
  [
    { Event.cycle = 100L; source = "monitor.virq";
      payload = Event.Irq_inject { line = 3 } };
    { Event.cycle = 200L; source = "pit";
      payload = Event.Timer_fire { count = 7 } };
    { Event.cycle = 300L; source = "scsi.irq";
      payload = Event.Dma_complete { chan = "scsi"; seq = 2 } };
    { Event.cycle = 400L; source = "uart";
      payload = Event.Uart_rx { byte = 0xA5 } };
    { Event.cycle = 500L; source = "nic";
      payload = Event.Nic_rx { len = 64 } };
    { Event.cycle = 600L; source = "chaos.h2t"; payload = Event.Chaos Event.Drop };
    { Event.cycle = 700L; source = "chaos.t2h";
      payload =
        Event.Chaos (Event.Deliver { mask = 0x40; dup = true; delay = 12 }) };
    { Event.cycle = 800L; source = "monitor.watchdog";
      payload = Event.Wedge { pc = 0x1040 } };
    { Event.cycle = 900L; source = "monitor";
      payload = Event.Crash { vector = 13; pc = 0x2000 } };
    { Event.cycle = 1000L; source = "monitor.ckpt";
      payload = Event.Checkpoint { index = 4; retired = 123456L } };
  ]

let test_trace_round_trip () =
  let header = Trace.make_header ~label:"unit-test" ~seed:42L () in
  match Trace.of_string (Trace.to_string header sample_events) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok (h, evs) ->
    check int "version" Trace.current_version h.Trace.version;
    check bool "seed" true (h.Trace.seed = 42L);
    check Alcotest.string "label" "unit-test" h.Trace.label;
    check int "count" (List.length sample_events) (List.length evs);
    List.iter2
      (fun a b -> check bool "event round-trips" true (Event.equal a b))
      sample_events evs

let test_trace_rejects_version_drift () =
  check bool "not a trace" true
    (Result.is_error (Trace.of_string "hello world\n"));
  let doc = Trace.to_string (Trace.make_header ~seed:1L ()) sample_events in
  let needle = "\"version\":" in
  let i =
    let rec find i =
      if i + String.length needle > String.length doc then
        Alcotest.fail "no version field"
      else if String.sub doc i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let j = i + String.length needle in
  let bumped = String.sub doc 0 j ^ "9" ^ String.sub doc j (String.length doc - j) in
  check bool "version drift refused" true (Result.is_error (Trace.of_string bumped))

(* ---------------------------------------------------------------- *)
(* Record / replay convergence                                       *)
(* ---------------------------------------------------------------- *)

(* One debug campaign under a lossy wire: boot the streaming kernel,
   checkpoint periodically, exchange debugger traffic through an active
   chaos wrap, recover, and read the final-state digest.  With [replay]
   the same campaign consumes the recorded trace instead of the live
   chaos RNG. *)
let drive ?replay ?(profile = false) ?(jit = true) ~seed () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  Vmm_hw.Cpu.set_jit_enabled (Machine.cpu m) jit;
  let recorder = Machine.recorder m in
  (match replay with
   | None -> Recorder.start_record recorder
   | Some events -> Recorder.start_replay recorder events);
  let mon = Monitor.install m in
  if profile then
    Machine.set_profiling m ~period:Vmm_profile.Profiler.default_period;
  Monitor.boot_guest mon
    (Kernel.build (Kernel.default_config ~rate_mbps:50.0))
    ~entry:Kernel.entry;
  Monitor.checkpoint_start ~period_cycles:(cyc 0.005) mon;
  let chaos = Chaos.create ~engine:(Machine.engine m) ~rng:(Rng.create ~seed) () in
  Chaos.set_recorder chaos recorder;
  let session =
    Session.attach
      ~wrap_to_target:(Chaos.wrap ~source:"chaos.h2t" chaos)
      ~wrap_to_host:(Chaos.wrap ~source:"chaos.t2h" chaos)
      m
  in
  Machine.run_seconds m 0.01;
  ignore (Session.read_registers ~timeout_s:1.0 session);
  Chaos.set_profile chaos
    { Chaos.drop_p = 0.02; corrupt_p = 0.02; dup_p = 0.02; delay_p = 0.05;
      max_delay_cycles = 5000 };
  Chaos.set_active chaos true;
  for _ = 1 to 4 do
    ignore (Session.read_registers ~timeout_s:0.5 session);
    Machine.run_seconds m 0.005
  done;
  Chaos.set_active chaos false;
  if not (Session.link_up session) then
    ignore (Session.reconnect ~timeout_s:1.0 session);
  ignore (Session.read_registers ~timeout_s:1.0 session);
  Machine.run_seconds m 0.01;
  let digest = Snapshot.Full.digest (Monitor.checkpoint_now mon) in
  let busy = Stats.busy_cycles (Machine.load m) in
  let divergence =
    match replay with
    | Some _ -> Recorder.finish_replay recorder
    | None -> None
  in
  let events = Recorder.recorded recorder in
  Recorder.stop recorder;
  (events, digest, busy, divergence)

let test_record_replay_converges () =
  let events, digest, busy, _ = drive ~seed:11L () in
  check bool "events recorded" true (List.length events > 0);
  let _, digest', busy', div = drive ~replay:events ~seed:11L () in
  (match div with
   | Some d ->
     Alcotest.failf "replay diverged: %s"
       (Format.asprintf "%a" Recorder.pp_divergence d)
   | None -> ());
  check bool "final-state digest identical" true (digest' = digest);
  check bool "busy-cycle total identical" true (busy' = busy)

let test_record_replay_profiled () =
  (* The continuous profiler only reads pc/cpl, so arming it must not
     perturb the simulation: a profiled run matches the unprofiled run
     event-for-event and digest-for-digest at the same seed, and a
     profiled replay of the profiled recording converges bit-exactly. *)
  let events, digest, busy, _ = drive ~seed:11L () in
  let events_p, digest_p, busy_p, _ = drive ~profile:true ~seed:11L () in
  check int "same event count with profiler armed" (List.length events)
    (List.length events_p);
  List.iter2
    (fun a b -> check bool "same events with profiler armed" true (Event.equal a b))
    events events_p;
  check bool "same digest with profiler armed" true (digest_p = digest);
  check bool "same busy cycles with profiler armed" true (busy_p = busy);
  let _, digest', busy', div = drive ~replay:events_p ~profile:true ~seed:11L () in
  (match div with
   | Some d ->
     Alcotest.failf "profiled replay diverged: %s"
       (Format.asprintf "%a" Recorder.pp_divergence d)
   | None -> ());
  check bool "profiled replay digest identical" true (digest' = digest);
  check bool "profiled replay busy identical" true (busy' = busy)

let test_record_replay_jit_cross_mode () =
  (* The block translator must be invisible to the recorder: a run with
     the JIT off records the same events and lands on the same digest as
     the JIT-on run at the same seed, and a trace recorded with the JIT
     on replays bit-exactly with it off. *)
  let events_on, digest_on, busy_on, _ = drive ~seed:13L () in
  check bool "events recorded" true (List.length events_on > 0);
  let events_off, digest_off, busy_off, _ = drive ~jit:false ~seed:13L () in
  check int "same event count with JIT off" (List.length events_on)
    (List.length events_off);
  List.iter2
    (fun a b -> check bool "same events with JIT off" true (Event.equal a b))
    events_on events_off;
  check bool "same digest with JIT off" true (digest_off = digest_on);
  check bool "same busy cycles with JIT off" true (busy_off = busy_on);
  let _, digest', busy', div =
    drive ~replay:events_on ~jit:false ~seed:13L ()
  in
  (match div with
   | Some d ->
     Alcotest.failf "cross-mode replay diverged: %s"
       (Format.asprintf "%a" Recorder.pp_divergence d)
   | None -> ());
  check bool "cross-mode replay digest identical" true (digest' = digest_on);
  check bool "cross-mode replay busy identical" true (busy' = busy_on)

let test_divergence_detector () =
  let events, _, _, _ = drive ~seed:12L () in
  (* tamper the cycle stamp of one non-chaos event past the warm-up *)
  let idx, orig =
    let rec find i = function
      | [] -> Alcotest.fail "no non-chaos event to tamper"
      | e :: tl ->
        (match e.Event.payload with
         | Event.Chaos _ -> find (i + 1) tl
         | _ when i > 0 -> (i, e)
         | _ -> find (i + 1) tl)
    in
    find 0 events
  in
  let tampered =
    List.mapi
      (fun i e ->
        if i = idx then { e with Event.cycle = Int64.add e.Event.cycle 1L }
        else e)
      events
  in
  let _, _, _, div = drive ~replay:tampered ~seed:12L () in
  match div with
  | None -> Alcotest.fail "tampered trace did not diverge"
  | Some d ->
    check int "first mismatch index" idx d.Recorder.index;
    check bool "cycle names the observed event" true
      (d.Recorder.cycle = orig.Event.cycle);
    check Alcotest.string "source names the observed event" orig.Event.source
      d.Recorder.source;
    (match (d.Recorder.expected, d.Recorder.actual) with
     | Some e, Some a ->
       check bool "expected is the tampered stamp" true
         (e.Event.cycle = Int64.add a.Event.cycle 1L)
     | _ -> Alcotest.fail "divergence lacks expected/actual events")

(* ---------------------------------------------------------------- *)
(* Checkpoint round-trip                                             *)
(* ---------------------------------------------------------------- *)

let test_checkpoint_restore_digest () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  Monitor.boot_guest mon
    (Kernel.build (Kernel.default_config ~rate_mbps:50.0))
    ~entry:Kernel.entry;
  let session = Session.attach m in
  (* run with live SCSI/NIC traffic so device state is non-trivial *)
  Machine.run_seconds m 0.02;
  ignore (Session.read_registers ~timeout_s:1.0 session);
  let ck = Monitor.checkpoint_now mon in
  let d0 = Snapshot.Full.digest ck in
  (* advance guest and devices only: the digest covers the live link's
     sequence numbers, which a restore deliberately leaves untouched *)
  Machine.run_seconds m 0.03;
  let moved = Snapshot.Full.digest (Monitor.checkpoint_now mon) in
  check bool "state advanced between checkpoints" true (moved <> d0);
  Monitor.restore_checkpoint mon ck;
  let d1 = Snapshot.Full.digest (Monitor.checkpoint_now mon) in
  check bool "restore round-trips the digest" true (d1 = d0);
  (* the debug plane survived the restore *)
  check bool "session still answers" true
    (Session.read_registers ~timeout_s:1.0 session <> None)

let test_link_seq_state_round_trip () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  Monitor.boot_guest mon
    (Kernel.build (Kernel.default_config ~rate_mbps:50.0))
    ~entry:Kernel.entry;
  let session = Session.attach m in
  Machine.run_seconds m 0.01;
  ignore (Session.read_registers ~timeout_s:1.0 session);
  ignore (Session.read_memory ~timeout_s:1.0 session ~addr:Kernel.entry ~len:8);
  let ep = Stub.endpoint (Monitor.stub mon) in
  let st = Reliable.seq_state ep in
  check bool "sequenced after traffic" true st.Reliable.sq_sequenced;
  Reliable.restore_seq_state ep st;
  check bool "seq state round-trips" true (Reliable.seq_state ep = st);
  check bool "link still talks after restore" true
    (Session.read_registers ~timeout_s:1.0 session <> None)

(* ---------------------------------------------------------------- *)
(* Reverse execution                                                 *)
(* ---------------------------------------------------------------- *)

(* Straight-line guest, interrupts off: a counted run of [addi], then a
   wild store into monitor memory that faults.  Every instruction
   address is [entry + k*width], so the landing pcs are exact. *)
let test_reverse_lands_pre_crash () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let layout = Monitor.layout mon in
  let victim = layout.Vm_layout.monitor_base + 0x100 in
  let entry = 0x1000 in
  let a = Asm.create ~origin:entry () in
  Asm.movi a 1 (Asm.imm 0);
  for _ = 1 to 64 do
    Asm.addi a 1 1 (Asm.imm 1)
  done;
  Asm.movi a 2 (Asm.imm victim);
  Asm.st a 2 0 1 (* wild store: faults, never retires *);
  Asm.vmcall a (Asm.imm 2);
  let boom = entry + (66 * Isa.width) in
  Monitor.boot_guest mon (Asm.assemble a) ~entry;
  Monitor.checkpoint_start ~period_cycles:(cyc 0.0005) mon;
  let session = Session.attach m in
  (match Session.wait_stop ~timeout_s:2.0 session with
   | Some (Command.Faulted { pc; _ }) -> check int "fault pc" boom pc
   | _ -> Alcotest.fail "guest did not fault");
  check bool "guest quarantined" true (Monitor.crashed mon);
  (* rc: back to the exact pre-crash instruction *)
  (match Session.reverse_continue ~timeout_s:2.0 session with
   | Some (Command.Step_done pc) -> check int "rc lands on pre-crash pc" boom pc
   | _ -> Alcotest.fail "rc reported no landing");
  check bool "guest healthy after restore" true (not (Monitor.crashed mon));
  (match Session.read_registers ~timeout_s:1.0 session with
   | Some regs -> check int "history replayed (r1 = 64)" 64 regs.(1)
   | None -> Alcotest.fail "no registers after rc");
  (* rs: exactly one instruction further back *)
  (match Session.reverse_step ~timeout_s:2.0 session with
   | Some (Command.Step_done pc) ->
     check int "rs lands one instruction earlier" (boom - Isa.width) pc
   | _ -> Alcotest.fail "rs reported no landing");
  (* a breakpoint planted in history stops rc first *)
  let bp = entry + (10 * Isa.width) in
  check bool "bp set" true (Session.insert_breakpoint ~timeout_s:1.0 session bp);
  (match Session.reverse_continue ~timeout_s:2.0 session with
   | Some (Command.Break pc) -> check int "rc honors planted breakpoint" bp pc
   | _ -> Alcotest.fail "rc did not stop at the breakpoint");
  check bool "bp removed" true
    (Session.remove_breakpoint ~timeout_s:1.0 session bp)

let () =
  Alcotest.run "replay (record/replay + reverse debugging)"
    [
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "rejects version drift" `Quick
            test_trace_rejects_version_drift;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay converges" `Quick
            test_record_replay_converges;
          Alcotest.test_case "record/replay across JIT modes" `Quick
            test_record_replay_jit_cross_mode;
          Alcotest.test_case "record/replay with profiler armed" `Quick
            test_record_replay_profiled;
          Alcotest.test_case "divergence detector" `Quick
            test_divergence_detector;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "restore round-trips digest" `Quick
            test_checkpoint_restore_digest;
          Alcotest.test_case "link seq state round-trips" `Quick
            test_link_seq_state_round_trip;
        ] );
      ( "reverse",
        [
          Alcotest.test_case "rc/rs land pre-crash" `Quick
            test_reverse_lands_pre_crash;
        ] );
    ]
