(* Tests for the comparison environments: the hosted full VMM, the
   embedded in-OS debugger (fate-sharing) and the hardware-simulator
   model. *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Asm = Vmm_hw.Asm
module Nic = Vmm_hw.Nic
module Uart = Vmm_hw.Uart
module Phys_mem = Vmm_hw.Phys_mem
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Full_vmm = Vmm_baseline.Full_vmm
module Embedded_debugger = Vmm_baseline.Embedded_debugger
module Hw_simulator = Vmm_baseline.Hw_simulator
module Kernel = Vmm_guest.Kernel

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh () = Machine.create ~mem_size:(16 * 1024 * 1024) ()

(* -- Full VMM -- *)

let test_full_vmm_runs_guest () =
  let m = fresh () in
  let vmm = Full_vmm.install m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 20);
  Asm.addi a 2 1 (Asm.imm 22);
  Asm.vmcall a (Asm.imm 2);
  Full_vmm.boot_guest vmm (Asm.assemble a) ~entry:0x1000;
  Machine.run_seconds m 0.001;
  check int "computed" 42 (Cpu.read_reg (Machine.cpu m) 2);
  check bool "shutdown seen" true (Full_vmm.shutdown_requested vmm)

let test_full_vmm_no_passthrough () =
  (* A NIC doorbell under the full VMM must go through the host: device
     forwards and host switches both climb, and the frame still lands. *)
  let m = fresh () in
  let vmm = Full_vmm.install m in
  let frames = ref 0 in
  Nic.set_on_frame (Machine.nic m) (fun _ -> incr frames);
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0x30000);
  Asm.outi a (Asm.imm Machine.Ports.nic) 1;
  Asm.movi a 1 (Asm.imm 128);
  Asm.outi a (Asm.imm (Machine.Ports.nic + 1)) 1;
  Asm.movi a 1 (Asm.imm 1);
  Asm.outi a (Asm.imm (Machine.Ports.nic + 2)) 1;
  Asm.vmcall a (Asm.imm 2);
  Full_vmm.boot_guest vmm (Asm.assemble a) ~entry:0x1000;
  Machine.run_seconds m 0.002;
  check int "frame delivered" 1 !frames;
  let stats = Full_vmm.stats vmm in
  check bool "forwards counted" true (stats.Full_vmm.device_forwards >= 3);
  check bool "host switches counted" true (stats.Full_vmm.host_switches >= 3);
  check int "one packet forwarded" 1 stats.Full_vmm.packets_forwarded;
  check int "bounce bytes" 128 stats.Full_vmm.bytes_copied

let test_full_vmm_workload () =
  (* The full guest kernel must run unmodified under the full VMM, just
     slower. *)
  let m = fresh () in
  let vmm = Full_vmm.install m in
  let config = Kernel.default_config ~rate_mbps:20.0 in
  let program = Kernel.build config in
  Full_vmm.boot_guest vmm program ~entry:Kernel.entry;
  Machine.run_seconds m 0.1;
  let counters = Kernel.read_counters (Machine.mem m) program in
  check bool "frames flowed" true (counters.Kernel.frames_sent > 50);
  let stats = Full_vmm.stats vmm in
  check bool "irqs reflected" true (stats.Full_vmm.reflected_irqs > 0);
  check bool "disk transfers through host" true
    (stats.Full_vmm.disk_transfers_forwarded > 0)

let test_full_vmm_user_mode_guest () =
  (* The ring-3 variant of the workload also runs under the hosted VMM
     (albeit expensively): frames flow at a gentle rate. *)
  let m = fresh () in
  let vmm = Full_vmm.install m in
  let config =
    { (Kernel.default_config ~rate_mbps:10.0) with Kernel.user_mode = true }
  in
  let program = Kernel.build config in
  Full_vmm.boot_guest vmm program ~entry:Kernel.entry;
  Machine.run_seconds m 0.15;
  let counters = Kernel.read_counters (Machine.mem m) program in
  check bool "frames flowed at ring 3" true (counters.Kernel.frames_sent > 40)

let test_full_vmm_parks_crashed_guest () =
  let m = fresh () in
  let vmm = Full_vmm.install m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0xFFFFF000);
  Asm.jr a 1 (* jump into unmapped space, no handler *);
  Full_vmm.boot_guest vmm (Asm.assemble a) ~entry:0x1000;
  Machine.run_seconds m 0.01;
  check bool "guest parked" true (Cpu.stopped (Machine.cpu m))

(* -- Embedded debugger -- *)

let host_wire m =
  let received = Buffer.create 64 in
  Uart.set_on_tx (Machine.uart m) (fun b -> Buffer.add_char received (Char.chr b));
  let send s =
    String.iter (fun c -> Uart.inject_rx (Machine.uart m) (Char.code c)) s
  in
  (send, received)

let test_embedded_answers_when_healthy () =
  let m = fresh () in
  let dbg = Embedded_debugger.attach m ~region:0x80000 in
  let send, received = host_wire m in
  send (Packet.frame (Command.command_to_wire Command.Read_registers));
  let answered = Embedded_debugger.service dbg in
  ignore (Vmm_sim.Engine.run_until_idle (Machine.engine m));
  check int "one command answered" 1 answered;
  check bool "reply on wire" true (Buffer.length received > 0);
  check bool "alive" true (Embedded_debugger.alive dbg)

let test_embedded_dies_with_guest () =
  (* The definitive contrast with the monitor's stub: a wild store over
     the agent's region silences it permanently. *)
  let m = fresh () in
  let dbg = Embedded_debugger.attach m ~region:0x80000 in
  let send, received = host_wire m in
  (* the "OS bug": overwrite part of the embedded debugger *)
  Phys_mem.fill (Machine.mem m) ~addr:0x80100 ~len:64 0;
  check bool "dead after corruption" false (Embedded_debugger.alive dbg);
  send (Packet.frame (Command.command_to_wire Command.Read_registers));
  let answered = Embedded_debugger.service dbg in
  ignore (Vmm_sim.Engine.run_until_idle (Machine.engine m));
  check int "no commands answered" 0 answered;
  check int "silence on the wire" 0 (Buffer.length received)

let test_embedded_dies_with_machine () =
  let m = fresh () in
  let dbg = Embedded_debugger.attach m ~region:0x80000 in
  let send, _ = host_wire m in
  Embedded_debugger.mark_machine_dead dbg;
  send (Packet.frame (Command.command_to_wire Command.Read_registers));
  check int "dead machine, no answers" 0 (Embedded_debugger.service dbg)

(* -- Hardware simulator model -- *)

let test_hw_simulator_model () =
  let sim = Hw_simulator.default in
  check (Alcotest.float 1e-6) "wall clock" 50.0
    (Hw_simulator.wall_clock_seconds sim ~simulated_seconds:0.1);
  check (Alcotest.float 1e-6) "effective rate" 1.4
    (Hw_simulator.effective_rate_mbps sim ~native_rate_mbps:700.0);
  let props = Hw_simulator.properties sim in
  check bool "stable" true props.Hw_simulator.stable_under_os_crash;
  check bool "needs device models" true
    props.Hw_simulator.needs_device_model_per_device;
  let rows =
    Hw_simulator.comparison_rows ~lwvmm_io_efficiency:0.26
      ~fullvmm_io_efficiency:0.05
  in
  check int "three comparison rows" 3 (List.length rows)

let () =
  Alcotest.run "vmm_baseline"
    [
      ( "full_vmm",
        [
          Alcotest.test_case "runs guest" `Quick test_full_vmm_runs_guest;
          Alcotest.test_case "no pass-through" `Quick test_full_vmm_no_passthrough;
          Alcotest.test_case "runs workload" `Quick test_full_vmm_workload;
          Alcotest.test_case "parks crashed guest" `Quick
            test_full_vmm_parks_crashed_guest;
          Alcotest.test_case "ring-3 guest" `Quick test_full_vmm_user_mode_guest;
        ] );
      ( "embedded_debugger",
        [
          Alcotest.test_case "answers when healthy" `Quick
            test_embedded_answers_when_healthy;
          Alcotest.test_case "dies with guest" `Quick test_embedded_dies_with_guest;
          Alcotest.test_case "dies with machine" `Quick
            test_embedded_dies_with_machine;
        ] );
      ( "hw_simulator",
        [ Alcotest.test_case "cost model" `Quick test_hw_simulator_model ] );
    ]
