(* Tests for the observability layer: the JSON codec, the span tracer
   and its Chrome exporter, the metrics registry, and the end-to-end
   invariant the Fig 3.1 telemetry relies on — per-category cycles
   summing to the busy total. *)

module Engine = Vmm_sim.Engine
module Stats = Vmm_sim.Stats
module Json = Vmm_obs.Json
module Tracer = Vmm_obs.Tracer
module Registry = Vmm_obs.Registry
module Workload = Vmm_harness.Workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* -- JSON codec -- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 2.5);
        ("s", Json.String "quote \" backslash \\ newline \n tab \t");
        ("l", Json.List [ Json.Int 1; Json.String "two"; Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []) ]);
      ]
  in
  check bool "round trips" true (roundtrip doc = doc)

let test_json_escapes () =
  check string "control chars escaped" "\"\\u0001\\n\""
    (Json.to_string (Json.String "\001\n"));
  (match Json.of_string "\"a\\u0041b\"" with
   | Ok (Json.String s) -> check string "unicode escape decoded" "aAb" s
   | Ok _ | Error _ -> Alcotest.fail "expected a string");
  check string "non-finite floats become null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_malformed () =
  let bad input =
    match Json.of_string input with Ok _ -> false | Error _ -> true
  in
  check bool "truncated object" true (bad "{\"a\": 1");
  check bool "trailing garbage" true (bad "{} x");
  check bool "bare word" true (bad "frue");
  check bool "unterminated string" true (bad "\"abc");
  check bool "empty input" true (bad "")

(* -- Tracer -- *)

let test_tracer_disabled_is_silent () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.begin_span t ~cat:"mon_cpu" "trap";
  Tracer.end_span t;
  Tracer.instant t ~cat:"irq" "tick";
  Tracer.add_complete t ~cat:"dma" ~name:"scsi_read" ~start:0L ~stop:10L ();
  check int "no events while disabled" 0 (Tracer.event_count t);
  check int "no open spans either" 0 (Tracer.depth t)

let test_tracer_nesting_exclusive () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  (* outer [0, 100] with an inner [30, 70]: outer's exclusive share is
     60, inner's is 40 — they sum to the outer wall time. *)
  Tracer.begin_span t ~cat:"mon_cpu" "outer";
  Engine.advance engine 30L;
  Tracer.begin_span t ~cat:"irq" "inner";
  Engine.advance engine 40L;
  Tracer.end_span t;
  Engine.advance engine 30L;
  Tracer.end_span t;
  check int "two complete events" 2 (Tracer.event_count t);
  check
    (Alcotest.list (Alcotest.pair string Alcotest.int64))
    "exclusive breakdown"
    [ ("irq", 40L); ("mon_cpu", 60L) ]
    (Tracer.breakdown t)

let test_tracer_unbalanced_end () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  Tracer.end_span t;
  Tracer.begin_span t ~cat:"guest" "s";
  Tracer.end_span t;
  Tracer.end_span t;
  check int "unbalanced ends counted" 2 (Tracer.unbalanced_ends t);
  check int "balanced span still recorded" 1 (Tracer.event_count t)

let test_tracer_with_span_exception () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  (try Tracer.with_span t ~cat:"stub" "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  check int "span closed on raise" 0 (Tracer.depth t);
  check int "and recorded" 1 (Tracer.event_count t)

let test_tracer_capacity () =
  let engine = Engine.create () in
  let t = Tracer.create ~capacity:2 ~engine () in
  Tracer.set_enabled t true;
  for _ = 1 to 5 do
    Tracer.instant t ~cat:"guest" "e"
  done;
  check int "capacity respected" 2 (Tracer.event_count t);
  check int "overflow counted" 3 (Tracer.dropped t)

let test_tracer_depth_tracking () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  check int "flat" 0 (Tracer.depth t);
  Tracer.begin_span t ~cat:"mon_cpu" "a";
  Tracer.begin_span t ~cat:"irq" "b";
  Tracer.begin_span t ~cat:"stub" "c";
  check int "three deep" 3 (Tracer.depth t);
  Tracer.end_span t;
  check int "two deep" 2 (Tracer.depth t);
  Tracer.end_span t;
  Tracer.end_span t;
  check int "flat again" 0 (Tracer.depth t);
  check int "no unbalanced ends" 0 (Tracer.unbalanced_ends t);
  check int "all three recorded" 3 (Tracer.event_count t)

let test_tracer_flush_open_spans () =
  (* A crash can leave spans open; the bundle composer flushes them so
     the trace still renders complete events. *)
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  Tracer.begin_span t ~cat:"mon_cpu" "outer";
  Engine.advance engine 10L;
  Tracer.begin_span t ~cat:"irq" "inner";
  Engine.advance engine 5L;
  check int "two flushed" 2 (Tracer.flush_open_spans t);
  check int "nothing open" 0 (Tracer.depth t);
  check int "both recorded as complete events" 2 (Tracer.event_count t);
  (* innermost closed first: both categories carry their elapsed time *)
  check
    (Alcotest.list (Alcotest.pair string Alcotest.int64))
    "flushed breakdown"
    [ ("irq", 5L); ("mon_cpu", 10L) ]
    (Tracer.breakdown t);
  (* flushing did not manufacture unbalanced ends *)
  check int "no unbalanced ends" 0 (Tracer.unbalanced_ends t);
  (* idempotent when nothing is open *)
  check int "nothing to flush" 0 (Tracer.flush_open_spans t);
  (* and it drains even a disabled tracer: a crash dump must not lose
     spans because tracing was toggled off on the way down *)
  Tracer.begin_span t ~cat:"stub" "s";
  Tracer.set_enabled t false;
  check int "flushes while disabled" 1 (Tracer.flush_open_spans t);
  check int "depth zero after disabled flush" 0 (Tracer.depth t)

let test_tracer_dropped_accounting () =
  let engine = Engine.create () in
  let t = Tracer.create ~capacity:3 ~engine () in
  Tracer.set_enabled t true;
  for _ = 1 to 3 do
    Tracer.instant t ~cat:"guest" "kept"
  done;
  check int "nothing dropped at capacity" 0 (Tracer.dropped t);
  for _ = 1 to 4 do
    Tracer.with_span t ~cat:"mon_cpu" "spilled" (fun () ->
        Engine.advance engine 1L)
  done;
  check int "events capped" 3 (Tracer.event_count t);
  check int "every overflow counted" 4 (Tracer.dropped t);
  Tracer.clear t;
  check int "clear resets events" 0 (Tracer.event_count t);
  check int "clear resets dropped" 0 (Tracer.dropped t)

let test_tracer_chrome_golden () =
  let engine = Engine.create () in
  let t = Tracer.create ~engine () in
  Tracer.set_enabled t true;
  Engine.advance engine 100L;
  Tracer.begin_span t ~cat:"mon_cpu" "trap";
  Engine.advance engine 200L;
  Tracer.end_span t;
  (* cpu_hz = 1e6 makes one cycle one microsecond, so the golden text is
     round numbers. *)
  let text = Json.to_string (Tracer.to_chrome_json ~cpu_hz:1e6 t) in
  check string "chrome trace event document"
    "{\"traceEvents\":[{\"name\":\"trap\",\"cat\":\"mon_cpu\",\"pid\":0,\
     \"tid\":0,\"ts\":100.0,\"ph\":\"X\",\"dur\":200.0}],\
     \"displayTimeUnit\":\"ns\"}"
    text;
  (* and the exporter's output is parseable by our own reader *)
  match Json.of_string text with
  | Ok doc ->
    (match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
     | Some [ ev ] ->
       check (Alcotest.option string) "phase"
         (Some "X")
         (Option.bind (Json.member "ph" ev) Json.to_string_opt);
       check
         (Alcotest.option (Alcotest.float 1e-9))
         "duration" (Some 200.0)
         (Option.bind (Json.member "dur" ev) Json.to_float_opt)
     | Some _ | None -> Alcotest.fail "expected exactly one trace event")
  | Error msg -> Alcotest.failf "exporter output does not parse: %s" msg

(* -- Registry -- *)

let test_registry_idempotent () =
  let r = Registry.create () in
  let c1 = Registry.counter r "demo_events_total" in
  let c2 = Registry.counter r "demo_events_total" in
  Stats.incr c1;
  check Alcotest.int64 "same counter" 1L (Stats.counter_value c2);
  let h1 = Registry.histogram r "demo_latency_cycles" ~buckets:4 ~width:10.0 in
  let h2 = Registry.histogram r "demo_latency_cycles" ~buckets:8 ~width:5.0 in
  Stats.observe h1 3.0;
  check int "same histogram" 1 (Stats.histogram_count h2)

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter r "demo_events_total");
  check bool "gauge over counter raises" true
    (try
       Registry.gauge r "demo_events_total" (fun () -> 0.0);
       false
     with Invalid_argument _ -> true);
  check bool "bad name raises" true
    (try
       ignore (Registry.counter r "Bad-Name");
       false
     with Invalid_argument _ -> true)

let test_registry_snapshot_stable () =
  let r = Registry.create () in
  let c = Registry.counter r "demo_events_total" in
  Registry.gauge r "demo_queue_depth" (fun () -> 3.0);
  let h = Registry.histogram r "demo_latency_cycles" ~buckets:4 ~width:10.0 in
  Stats.incr c;
  Stats.incr c;
  Stats.observe h 17.0;
  check bool "snapshots are stable" true
    (Registry.snapshot r = Registry.snapshot r);
  check
    (Alcotest.list string)
    "names sorted"
    [ "demo_events_total"; "demo_latency_cycles"; "demo_queue_depth" ]
    (Registry.names r)

let test_registry_dump_golden () =
  let r = Registry.create () in
  let c = Registry.counter r "demo_events_total" in
  Registry.gauge r "demo_queue_depth" (fun () -> 3.0);
  let h = Registry.histogram r "demo_latency_cycles" ~buckets:4 ~width:10.0 in
  Stats.incr c;
  Stats.incr c;
  Stats.observe h 17.0;
  check string "prometheus text dump"
    "# HELP demo_events_total demo events total\n\
     # TYPE demo_events_total counter\n\
     demo_events_total 2\n\
     # HELP demo_latency_cycles demo latency cycles\n\
     # TYPE demo_latency_cycles histogram\n\
     demo_latency_cycles_bucket{le=\"10\"} 0\n\
     demo_latency_cycles_bucket{le=\"20\"} 1\n\
     demo_latency_cycles_bucket{le=\"30\"} 1\n\
     demo_latency_cycles_bucket{le=\"40\"} 1\n\
     demo_latency_cycles_bucket{le=\"+Inf\"} 1\n\
     demo_latency_cycles_sum 17\n\
     demo_latency_cycles_count 1\n\
     # HELP demo_queue_depth demo queue depth\n\
     # TYPE demo_queue_depth gauge\n\
     demo_queue_depth 3\n"
    (Registry.dump r)

let test_registry_help_override () =
  let r = Registry.create () in
  ignore (Registry.counter ~help:"events seen by the demo" r "demo_events_total");
  Registry.gauge r "demo_queue_depth" (fun () -> 0.0);
  let dump = Registry.dump r in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length dump && (String.sub dump i n = sub || go (i + 1))
    in
    go 0
  in
  check bool "explicit help text" true
    (has "# HELP demo_events_total events seen by the demo\n");
  check bool "derived help text" true
    (has "# HELP demo_queue_depth demo queue depth\n")

let test_registry_merge () =
  (* Per-instance registries fold into a fleet view: counters and
     histograms sum, gauges compose live, inputs stay untouched. *)
  let mk live =
    let r = Registry.create () in
    let c = Registry.counter r "demo_events_total" in
    Stats.incr c;
    Stats.incr c;
    Registry.gauge r "demo_queue_depth" (fun () -> !live);
    let h = Registry.histogram r "demo_latency_cycles" ~buckets:4 ~width:10.0 in
    Stats.observe h 17.0;
    r
  in
  let l1 = ref 3.0 and l2 = ref 4.0 in
  let r1 = mk l1 and r2 = mk l2 in
  let merged = Registry.merge [ r1; r2 ] in
  (match List.assoc "demo_events_total" (Registry.snapshot merged) with
   | Registry.Counter n -> check Alcotest.int64 "counters summed" 4L n
   | _ -> Alcotest.fail "expected a counter");
  (match List.assoc "demo_queue_depth" (Registry.snapshot merged) with
   | Registry.Gauge g -> check (Alcotest.float 1e-9) "gauges summed" 7.0 g
   | _ -> Alcotest.fail "expected a gauge");
  (match List.assoc "demo_latency_cycles" (Registry.snapshot merged) with
   | Registry.Histogram { count; _ } ->
     check int "histograms summed" 2 count
   | _ -> Alcotest.fail "expected a histogram");
  (* gauges are live: moving a source moves the merged view *)
  l2 := 10.0;
  (match List.assoc "demo_queue_depth" (Registry.snapshot merged) with
   | Registry.Gauge g -> check (Alcotest.float 1e-9) "gauge stays live" 13.0 g
   | _ -> Alcotest.fail "expected a gauge");
  (* pure fold: the inputs were not mutated *)
  (match List.assoc "demo_events_total" (Registry.snapshot r1) with
   | Registry.Counter n -> check Alcotest.int64 "input untouched" 2L n
   | _ -> Alcotest.fail "expected a counter");
  (* incompatible kinds across instances are refused *)
  let r3 = Registry.create () in
  Registry.gauge r3 "demo_events_total" (fun () -> 0.0);
  check bool "kind clash raises" true
    (try
       ignore (Registry.merge [ r1; r3 ]);
       false
     with Invalid_argument _ -> true);
  (* and so are histograms with different shapes *)
  let r4 = Registry.create () in
  ignore (Registry.histogram r4 "demo_latency_cycles" ~buckets:8 ~width:5.0);
  check bool "shape clash raises" true
    (try
       ignore (Registry.merge [ r1; r4 ]);
       false
     with Invalid_argument _ -> true)

let test_registry_reset () =
  let r = Registry.create () in
  let c = Registry.counter r "demo_events_total" in
  let h = Registry.histogram r "demo_latency_cycles" ~buckets:4 ~width:10.0 in
  let live = ref 7.0 in
  Registry.gauge r "demo_queue_depth" (fun () -> !live);
  Stats.incr c;
  Stats.observe h 17.0;
  Registry.reset r;
  check Alcotest.int64 "counter zeroed" 0L (Stats.counter_value c);
  check int "histogram zeroed" 0 (Stats.histogram_count h);
  (match List.assoc "demo_queue_depth" (Registry.snapshot r) with
   | Registry.Gauge g -> check (Alcotest.float 1e-9) "gauge untouched" 7.0 g
   | _ -> Alcotest.fail "expected a gauge");
  (* counters keep working after a reset *)
  Stats.incr c;
  check Alcotest.int64 "counts again" 1L (Stats.counter_value c)

(* -- End-to-end: the telemetry invariant -- *)

let test_breakdown_sums_to_busy () =
  (* Run the actual Fig 3.1 workload under the monitor and assert the
     attribution invariant: per-category cycles sum exactly to the busy
     total, with monitor categories actually populated. *)
  let m, _ctx =
    Workload.run Workload.Lightweight_vmm ~rate_mbps:50.0 ~duration_s:0.05
  in
  let sum =
    List.fold_left
      (fun acc (_, v) -> Int64.add acc v)
      0L m.Workload.breakdown
  in
  check Alcotest.int64 "breakdown sums to busy cycles" m.Workload.busy_cycles
    sum;
  check bool "busy within elapsed" true
    (Int64.compare m.Workload.busy_cycles m.Workload.elapsed_cycles <= 0);
  let has cat = List.mem_assoc cat m.Workload.breakdown in
  check bool "guest cycles present" true (has "guest");
  check bool "monitor cycles present" true (has "mon_cpu");
  check bool "delivery cycles present" true (has "irq")

let test_machine_registry_wired () =
  let machine = Vmm_hw.Machine.create () in
  let monitor = Core.Monitor.install machine in
  ignore (monitor : Core.Monitor.t);
  let names = Registry.names (Vmm_hw.Machine.registry machine) in
  List.iter
    (fun expected ->
      check bool (expected ^ " registered") true (List.mem expected names))
    [
      "cpu_busy_cycles_total";
      "nic_frames_sent_total";
      "scsi_reads_completed_total";
      "pic_delivery_latency_cycles";
      "pit_ticks_total";
      "monitor_world_switches_total";
      "monitor_io_emulations_total";
      "shadow_fills_total";
      "stublink_retransmits_total";
      "vpic_delivery_latency_cycles";
    ]

let () =
  Alcotest.run "vmm_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is silent" `Quick
            test_tracer_disabled_is_silent;
          Alcotest.test_case "nesting exclusive" `Quick
            test_tracer_nesting_exclusive;
          Alcotest.test_case "unbalanced end" `Quick test_tracer_unbalanced_end;
          Alcotest.test_case "with_span on raise" `Quick
            test_tracer_with_span_exception;
          Alcotest.test_case "capacity" `Quick test_tracer_capacity;
          Alcotest.test_case "depth tracking" `Quick test_tracer_depth_tracking;
          Alcotest.test_case "flush open spans" `Quick
            test_tracer_flush_open_spans;
          Alcotest.test_case "dropped accounting" `Quick
            test_tracer_dropped_accounting;
          Alcotest.test_case "chrome golden" `Quick test_tracer_chrome_golden;
        ] );
      ( "registry",
        [
          Alcotest.test_case "idempotent" `Quick test_registry_idempotent;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "snapshot stable" `Quick
            test_registry_snapshot_stable;
          Alcotest.test_case "dump golden" `Quick test_registry_dump_golden;
          Alcotest.test_case "help override" `Quick test_registry_help_override;
          Alcotest.test_case "merge" `Quick test_registry_merge;
          Alcotest.test_case "reset semantics" `Quick test_registry_reset;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "breakdown sums to busy" `Quick
            test_breakdown_sums_to_busy;
          Alcotest.test_case "machine registry wired" `Quick
            test_machine_registry_wired;
        ] );
    ]
