(* Tests for the lightweight VMM: deprivileged guest execution over shadow
   paging, privileged-instruction and device emulation, virtual interrupt
   reflection, the three-level protection property and the remote debug
   stub driven over the simulated serial wire. *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Isa = Vmm_hw.Isa
module Asm = Vmm_hw.Asm
module Uart = Vmm_hw.Uart
module Nic = Vmm_hw.Nic
module Phys_mem = Vmm_hw.Phys_mem
module Costs = Vmm_hw.Costs
module Mmu = Vmm_hw.Mmu
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Monitor = Core.Monitor
module Stub = Core.Stub
module Shadow = Core.Shadow
module Vm_layout = Core.Vm_layout
module Breakpoints = Core.Breakpoints

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Fast serial line so debug round-trips stay cheap in simulated time. *)
let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let fresh () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  (m, mon)

let reg m r = Cpu.read_reg (Machine.cpu m) r

(* Emit a 64-entry interrupt table; [gates] maps vector -> (label, ring, dpl). *)
let emit_iht a ~label ~gates =
  Asm.align a 8;
  Asm.label a label;
  for v = 0 to 63 do
    match List.assoc_opt v gates with
    | Some (target, ring, dpl) ->
      Asm.word a (Asm.lbl target);
      Asm.word a (Asm.imm (1 lor (ring lsl 1) lor (dpl lsl 3)))
    | None ->
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
  done

let run_seconds m s = Machine.run_seconds m s

(* -- Basic deprivileged execution -- *)

let test_guest_runs_deprivileged () =
  let m, mon = fresh () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 21);
  Asm.add a 2 1 1;
  Asm.vmcall a (Asm.imm 2) (* shutdown *);
  let p = Asm.assemble a in
  Monitor.boot_guest mon p ~entry:0x1000;
  check int "real ring 1" 1 (Cpu.cpl (Machine.cpu m));
  run_seconds m 0.001;
  check int "computed" 42 (reg m 2);
  check bool "shutdown" true (Monitor.shutdown_requested mon);
  let stats = Monitor.stats mon in
  check bool "shadow fills happened" true (stats.Monitor.shadow_fills > 0);
  check bool "world switches happened" true (stats.Monitor.world_switches > 0)

let test_sti_cli_emulated () =
  let m, mon = fresh () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.sti a;
  Asm.cli a;
  Asm.sti a;
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.001;
  check bool "virtual IF set" true (Monitor.guest_interrupts_enabled mon);
  check bool "real IF stayed with monitor" true
    (Cpu.interrupts_enabled (Machine.cpu m));
  let stats = Monitor.stats mon in
  check bool "three cpu emulations" true (stats.Monitor.cpu_emulations >= 3)

let test_hypercall_console () =
  let m, mon = fresh () in
  let a = Asm.create ~origin:0x1000 () in
  String.iter
    (fun c ->
      Asm.movi a 1 (Asm.imm (Char.code c));
      Asm.vmcall a (Asm.imm 0))
    "hi!";
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.001;
  check Alcotest.string "console" "hi!" (Monitor.console mon)

(* -- Virtual timer + interrupt reflection -- *)

let timer_guest () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  (* program the *virtual* PIT: periodic, 2000 input ticks *)
  Asm.movi a 2 (Asm.imm 2000);
  Asm.outi a (Asm.imm Machine.Ports.pit) 2;
  Asm.movi a 2 (Asm.imm 0);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 1)) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 2)) 2;
  Asm.movi a 7 (Asm.imm 0) (* tick counter *);
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.cmpi a 7 (Asm.imm 5);
  Asm.jlt a (Asm.lbl "idle");
  Asm.vmcall a (Asm.imm 2);
  Asm.label a "timer_handler";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 2 (* EOI to virtual PIC *);
  Asm.iret a;
  emit_iht a ~label:"iht"
    ~gates:[ (Isa.vec_irq_base_default + Machine.Irq.timer, ("timer_handler", 0, 0)) ];
  Asm.assemble a

let test_virtual_timer_reflection () =
  let m, mon = fresh () in
  Monitor.boot_guest mon (timer_guest ()) ~entry:0x1000;
  run_seconds m 0.05;
  check bool "five ticks delivered" true (Monitor.shutdown_requested mon);
  check int "handler count" 5 (reg m 7);
  let stats = Monitor.stats mon in
  check bool "irqs reflected" true (stats.Monitor.reflected_irqs >= 5);
  check bool "pit emulated" true (stats.Monitor.pit_emulations >= 3);
  check bool "pic emulated (EOIs)" true (stats.Monitor.pic_emulations >= 5)

(* -- Pass-through device access -- *)

let test_nic_passthrough_direct () =
  let m, mon = fresh () in
  let frames = ref 0 in
  Nic.set_on_frame (Machine.nic m) (fun _ -> incr frames);
  let a = Asm.create ~origin:0x1000 () in
  (* guest touches NIC ports directly; no monitor trap expected *)
  Asm.movi a 1 (Asm.imm 0x30000);
  Asm.outi a (Asm.imm Machine.Ports.nic) 1;
  Asm.movi a 1 (Asm.imm 256);
  Asm.outi a (Asm.imm (Machine.Ports.nic + 1)) 1;
  Asm.movi a 1 (Asm.imm 1);
  Asm.outi a (Asm.imm (Machine.Ports.nic + 2)) 1;
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  let io_before = (Monitor.stats mon).Monitor.io_emulations in
  run_seconds m 0.001;
  check int "frame hit the wire" 1 !frames;
  check int "no emulated i/o" io_before (Monitor.stats mon).Monitor.io_emulations

let test_non_passthrough_port_traps () =
  let m, mon = fresh () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.ini a 3 (Asm.imm Machine.Ports.pit) (* PIT read: must trap+emulate *);
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.001;
  check bool "io emulation counted" true
    ((Monitor.stats mon).Monitor.io_emulations >= 1);
  check bool "virtual pit consulted" true
    ((Monitor.stats mon).Monitor.pit_emulations >= 1)

(* -- Protection: the paper's stability property -- *)

let test_monitor_memory_unreachable () =
  let m, mon = fresh () in
  let layout = Monitor.layout mon in
  let victim = layout.Vm_layout.monitor_base + 0x100 in
  Phys_mem.write_u32 (Machine.mem m) victim 0x5AFE5AFE;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm victim);
  Asm.movi a 2 (Asm.imm 0xDEAD);
  Asm.st a 1 0 2 (* wild store into monitor memory *);
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.01;
  (* The store must not land; with no guest fault handler installed the
     guest is stopped and the debugger notified -- the monitor survives. *)
  check int "monitor memory intact" 0x5AFE5AFE
    (Phys_mem.read_u32 (Machine.mem m) victim);
  check bool "guest stopped" true (Cpu.stopped (Machine.cpu m));
  check bool "debugger notified" true
    (Stub.notifications_sent (Monitor.stub mon) >= 1);
  check bool "escalation recorded" true
    ((Monitor.stats mon).Monitor.escalations >= 1)

let test_guest_page_fault_reflected () =
  (* With a guest #PF handler installed, a wild access reflects into the
     guest instead of stopping it. *)
  let m, mon = fresh () in
  let layout = Monitor.layout mon in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm layout.Vm_layout.monitor_base);
  Asm.ld a 3 2 0 (* wild read *);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "pf_handler";
  Asm.ld a 5 Isa.sp 0 (* error slot = faulting address *);
  Asm.vmcall a (Asm.imm 2);
  emit_iht a ~label:"iht" ~gates:[ (Isa.vec_page_fault, ("pf_handler", 0, 0)) ];
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.001;
  check bool "guest handled its own fault" true (Monitor.shutdown_requested mon);
  check int "fault address delivered" layout.Vm_layout.monitor_base (reg m 5);
  check bool "not escalated" true ((Monitor.stats mon).Monitor.escalations = 0)

(* -- Guest paging on shadow tables -- *)

let test_guest_paging_via_shadow () =
  let m, mon = fresh () in
  let mem = Machine.mem m in
  (* Guest builds identity tables for its first 2 MiB at 0x100000. *)
  let pd = 0x100000 and pt = 0x101000 in
  Phys_mem.write_u32 mem pd (Mmu.make_pte ~frame:pt ~writable:true ~user:false);
  for i = 0 to 511 do
    Phys_mem.write_u32 mem
      (pt + (4 * i))
      (Mmu.make_pte ~frame:(i * 4096) ~writable:true ~user:false)
  done;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm pd);
  Asm.lptb a 1 (* trapped: shadow rebuilt, v_ptb recorded *);
  Asm.movi a 2 (Asm.imm 0x9000);
  Asm.movi a 3 (Asm.imm 0xFEED);
  Asm.st a 2 0 3;
  Asm.ld a 4 2 0;
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.005;
  check bool "completed" true (Monitor.shutdown_requested mon);
  check int "memory through guest mapping" 0xFEED (reg m 4);
  check int "guest ptb tracked" pd (Monitor.guest_ptb mon);
  check bool "shadow populated" true (Shadow.mappings (Monitor.shadow mon) > 0)

let test_guest_mapping_monitor_frame_denied () =
  (* Guest page tables that point a virtual page at a monitor frame must
     not take effect. *)
  let m, mon = fresh () in
  let mem = Machine.mem m in
  let layout = Monitor.layout mon in
  let pd = 0x100000 and pt = 0x101000 in
  Phys_mem.write_u32 mem pd (Mmu.make_pte ~frame:pt ~writable:true ~user:false);
  for i = 0 to 511 do
    Phys_mem.write_u32 mem
      (pt + (4 * i))
      (Mmu.make_pte ~frame:(i * 4096) ~writable:true ~user:false)
  done;
  (* evil: map virtual 0x00200000 at the monitor base *)
  Phys_mem.write_u32 mem (pd + 4)
    (Mmu.make_pte ~frame:pt ~writable:true ~user:false);
  Phys_mem.write_u32 mem pt
    (Mmu.make_pte ~frame:0 ~writable:true ~user:false);
  let pt2_index = Mmu.table_index 0x00200000 in
  Phys_mem.write_u32 mem
    (pt + (4 * pt2_index))
    (Mmu.make_pte ~frame:layout.Vm_layout.monitor_base ~writable:true ~user:false);
  Phys_mem.write_u32 mem
    (layout.Vm_layout.monitor_base + 0x40)
    0x0C0FFEE0;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm pd);
  Asm.lptb a 1;
  Asm.movi a 2 (Asm.imm 0x00200000);
  Asm.movi a 3 (Asm.imm 0xBADBAD);
  Asm.st a 2 0x40 3;
  Asm.vmcall a (Asm.imm 2);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.01;
  check int "monitor frame untouched" 0x0C0FFEE0
    (Phys_mem.read_u32 mem (layout.Vm_layout.monitor_base + 0x40));
  check bool "guest stopped (no handler)" true (Cpu.stopped (Machine.cpu m))

let test_user_app_cannot_touch_kernel_memory () =
  (* Full three-level stack: the monitor protects itself from the guest
     kernel, and the guest kernel protects itself from its application.
     An app-level wild store must arrive at the guest kernel's #PF
     handler, not corrupt kernel data and not involve an escalation. *)
  let m, mon = fresh () in
  let mem = Machine.mem m in
  (* guest page tables: 2 MiB identity; page 0x9000 is user (app code +
     stack), everything else supervisor *)
  let pd = 0x100000 and pt = 0x101000 in
  Phys_mem.write_u32 mem pd (Mmu.make_pte ~frame:pt ~writable:true ~user:true);
  for i = 0 to 511 do
    Phys_mem.write_u32 mem
      (pt + (4 * i))
      (Mmu.make_pte ~frame:(i * 4096) ~writable:true ~user:(i = 9))
  done;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0x8000);
  Asm.lstk a 0 1;
  Asm.movi a 1 (Asm.imm pd);
  Asm.lptb a 1;
  (* drop to ring 3 at the app page *)
  Asm.movi a 3 (Asm.imm 0x9800);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0x3000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0x9000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "pf_handler";
  Asm.ld a 5 Isa.sp 0 (* faulting address from the error slot *);
  Asm.vmcall a (Asm.imm 2);
  emit_iht a ~label:"iht" ~gates:[ (Isa.vec_page_fault, ("pf_handler", 0, 0)) ];
  let p = Asm.assemble a in
  Monitor.boot_guest mon p ~entry:0x1000;
  (* the application: store into kernel data at 0x2000, then spin *)
  let app = Asm.create ~origin:0x9000 () in
  Asm.movi app 1 (Asm.imm 0x2000);
  Asm.movi app 2 (Asm.imm 0xEF11);
  Asm.st app 1 0 2;
  Asm.label app "app_spin";
  Asm.jmp app (Asm.lbl "app_spin");
  Asm.load (Asm.assemble app) mem;
  Phys_mem.write_u32 mem 0x2000 0x0C0DE;
  run_seconds m 0.01;
  check bool "guest kernel caught the app" true (Monitor.shutdown_requested mon);
  check int "fault address delivered" 0x2000 (reg m 5);
  check int "kernel data intact" 0x0C0DE (Phys_mem.read_u32 mem 0x2000);
  check int "no monitor escalation" 0 (Monitor.stats mon).Monitor.escalations

(* -- Remote debugging over the wire -- *)

type host = {
  send : string -> unit;
  decoder : Packet.decoder;
  inbox : Packet.event Queue.t;
}

let attach_host m =
  let uart = Machine.uart m in
  let decoder = Packet.decoder () in
  let inbox = Queue.create () in
  Uart.set_on_tx uart (fun b ->
      match Packet.feed decoder b with
      | Some e -> Queue.add e inbox
      | None -> ());
  let send s = String.iter (fun c -> Uart.inject_rx uart (Char.code c)) s in
  { send; decoder; inbox }

let send_command host cmd =
  host.send (Packet.frame (Command.command_to_wire cmd))

let rec next_reply ?(tries = 200) m host =
  match Queue.take_opt host.inbox with
  | Some (Packet.Packet p) -> Command.reply_of_wire p
  | Some (Packet.Ack | Packet.Nak | Packet.Bad_checksum) ->
    next_reply ~tries m host
  | None ->
    if tries = 0 then None
    else begin
      Machine.run_seconds m 0.002;
      next_reply ~tries:(tries - 1) m host
    end

(* A guest that idles on the virtual timer and counts ticks in r7;
   "work_marker" labels the instruction the tests breakpoint. *)
let idle_guest () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 20000);
  Asm.outi a (Asm.imm Machine.Ports.pit) 2;
  Asm.movi a 2 (Asm.imm 0);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 1)) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 2)) 2;
  Asm.movi a 7 (Asm.imm 0);
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");
  Asm.label a "timer_handler";
  Asm.label a "work_marker";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 2;
  Asm.iret a;
  emit_iht a ~label:"iht"
    ~gates:[ (Isa.vec_irq_base_default + Machine.Irq.timer, ("timer_handler", 0, 0)) ];
  Asm.assemble a

let test_stub_read_registers_while_running () =
  let m, mon = fresh () in
  let host = attach_host m in
  Monitor.boot_guest mon (idle_guest ()) ~entry:0x1000;
  Machine.run_seconds m 0.01 (* guest settles into its tick loop *);
  send_command host Command.Read_registers;
  (match next_reply m host with
   | Some (Command.Registers regs) ->
     check int "18 registers" 18 (Array.length regs);
     check int "r7 mirrors guest state" (reg m 7) regs.(7)
   | _ -> Alcotest.fail "expected register dump");
  (* the guest kept running while being inspected *)
  let ticks_before = reg m 7 in
  Machine.run_seconds m 0.05;
  check bool "guest still live" true (reg m 7 > ticks_before)

let test_stub_memory_round_trip () =
  let m, mon = fresh () in
  let host = attach_host m in
  Monitor.boot_guest mon (idle_guest ()) ~entry:0x1000;
  Machine.run_seconds m 0.005;
  send_command host (Command.Write_memory { addr = 0x18000; data = "\x01\x02\x03\x04" });
  (match next_reply m host with
   | Some Command.Ok_reply -> ()
   | _ -> Alcotest.fail "expected OK");
  send_command host (Command.Read_memory { addr = 0x18000; len = 4 });
  match next_reply m host with
  | Some (Command.Memory data) -> check Alcotest.string "data" "\x01\x02\x03\x04" data
  | _ -> Alcotest.fail "expected memory"

let test_stub_breakpoint_cycle () =
  let m, mon = fresh () in
  let host = attach_host m in
  let p = idle_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  Machine.run_seconds m 0.005;
  let marker = Asm.symbol p "work_marker" in
  send_command host (Command.Insert_breakpoint marker);
  (match next_reply m host with
   | Some Command.Ok_reply -> ()
   | _ -> Alcotest.fail "expected OK for Z0");
  (* next timer tick runs into the breakpoint *)
  (match next_reply m host with
   | Some (Command.Stopped (Command.Break addr)) ->
     check int "stopped at marker" marker addr;
     check int "pc at marker" marker (Cpu.pc (Machine.cpu m))
   | _ -> Alcotest.fail "expected break notification");
  let ticks = reg m 7 in
  (* memory read at the breakpoint must show original bytes, not BRK *)
  send_command host (Command.Read_memory { addr = marker; len = Isa.width });
  (match next_reply m host with
   | Some (Command.Memory data) ->
     let original = Isa.decode ~addr:marker (Bytes.of_string data) ~off:0 in
     check bool "patch invisible" true (original = Isa.Addi (7, 7, 1))
   | _ -> Alcotest.fail "expected memory");
  (* single step: executes the addi *)
  send_command host Command.Step;
  (match next_reply m host with
   | Some Command.Ok_reply -> ()
   | _ -> Alcotest.fail "expected step ack");
  (match next_reply m host with
   | Some (Command.Stopped (Command.Step_done addr)) ->
     check int "stepped past" (marker + Isa.width) addr;
     check int "tick counted by step" (ticks + 1) (reg m 7)
   | _ -> Alcotest.fail "expected step notification");
  (* continue: must hit the breakpoint again on the next tick *)
  send_command host Command.Continue;
  (match next_reply m host with
   | Some Command.Ok_reply -> ()
   | _ -> Alcotest.fail "expected continue ack");
  (match next_reply m host with
   | Some (Command.Stopped (Command.Break addr)) ->
     check int "hit again" marker addr
   | _ -> Alcotest.fail "expected second break");
  (* remove and continue: guest ticks freely again *)
  send_command host (Command.Remove_breakpoint marker);
  (match next_reply m host with
   | Some Command.Ok_reply -> ()
   | _ -> Alcotest.fail "expected OK for z0");
  send_command host Command.Continue;
  Machine.run_seconds m 0.1;
  check bool "guest running freely" true (reg m 7 > ticks + 3)

let test_stub_halt_and_query () =
  let m, mon = fresh () in
  let host = attach_host m in
  Monitor.boot_guest mon (idle_guest ()) ~entry:0x1000;
  Machine.run_seconds m 0.005;
  send_command host Command.Query_stop;
  (match next_reply m host with
   | Some Command.Running -> ()
   | _ -> Alcotest.fail "expected running");
  send_command host Command.Halt;
  (match next_reply m host with
   | Some (Command.Stopped (Command.Halt_requested _)) -> ()
   | _ -> Alcotest.fail "expected halt notification");
  check bool "guest frozen" true (Cpu.stopped (Machine.cpu m));
  let ticks = reg m 7 in
  Machine.run_seconds m 0.1;
  check int "no progress while stopped" ticks (reg m 7);
  send_command host Command.Continue;
  Machine.run_seconds m 0.1;
  check bool "resumed" true (reg m 7 > ticks)

let test_stub_survives_guest_crash () =
  (* The key claim: after the guest destroys itself, the debugger still
     reads memory and registers. *)
  let m, mon = fresh () in
  let host = attach_host m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0xFFFFF000) (* unmapped, beyond guest memory *);
  Asm.jr a 1 (* jump into the void: fetch fault, no handler *);
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  Machine.run_seconds m 0.01;
  (match next_reply m host with
   | Some (Command.Stopped (Command.Faulted _)) -> ()
   | _ -> Alcotest.fail "expected crash notification");
  send_command host (Command.Read_memory { addr = 0x1000; len = 8 });
  match next_reply m host with
  | Some (Command.Memory data) -> check int "still serving" Isa.width (String.length data)
  | _ -> Alcotest.fail "debugger died with the guest"

let test_stub_nak_and_retransmission () =
  (* Direction 1: a corrupted command makes the stub NAK.  Direction 2: a
     host NAK makes the stub retransmit its last reply verbatim. *)
  let m, mon = fresh () in
  Monitor.boot_guest mon (idle_guest ()) ~entry:0x1000;
  Machine.run_seconds m 0.005;
  let host = attach_host m in
  (* corrupt the checksum of a well-formed command *)
  let good = Packet.frame (Command.command_to_wire Command.Read_registers) in
  let bad = Bytes.of_string good in
  Bytes.set bad (Bytes.length bad - 1) '0';
  Bytes.set bad (Bytes.length bad - 2) '0';
  host.send (Bytes.to_string bad);
  Machine.run_seconds m 0.05;
  (match Queue.take_opt host.inbox with
   | Some Packet.Nak -> ()
   | _ -> Alcotest.fail "expected NAK for corrupted command");
  (* now a good exchange *)
  send_command host Command.Read_registers;
  let first =
    match next_reply m host with
    | Some (Command.Registers regs) -> regs
    | _ -> Alcotest.fail "expected registers"
  in
  (* pretend the reply was corrupted: NAK it; the stub must resend *)
  host.send "-";
  Machine.run_seconds m 0.05;
  let second =
    match next_reply m host with
    | Some (Command.Registers regs) -> regs
    | _ -> Alcotest.fail "expected retransmitted registers"
  in
  check bool "identical retransmission" true (first = second);
  check bool "stub counted it" true
    (Core.Stub.retransmissions (Monitor.stub mon) >= 1)

let test_monitor_trace_records_events () =
  let m, mon = fresh () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0xFFFFF000);
  Asm.jr a 1;
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  run_seconds m 0.01;
  let records = Vmm_sim.Trace.find (Machine.trace m) ~component:"monitor" in
  check bool "boot recorded" true
    (List.exists
       (fun r -> r.Vmm_sim.Trace.severity = Vmm_sim.Trace.Info)
       records);
  check bool "escalation recorded" true
    (List.exists
       (fun r -> r.Vmm_sim.Trace.severity = Vmm_sim.Trace.Error)
       records)

let test_monitor_survives_random_guest_code =
  (* Robustness: arbitrary bytes executed as guest code must never take
     the monitor down, and the stub must still answer afterwards. *)
  QCheck.Test.make ~name:"monitor survives random guest code" ~count:25
    QCheck.(make Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (512 -- 2048)))
    (fun code ->
      let m = Machine.create ~mem_size:(8 * 1024 * 1024) ~costs:test_costs () in
      let mon = Monitor.install m in
      let a = Asm.create ~origin:0x1000 () in
      Asm.bytes a (Bytes.of_string code);
      Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
      (try Machine.run_seconds m 0.002
       with exn ->
         QCheck.Test.fail_reportf "monitor raised %s" (Printexc.to_string exn));
      let host = attach_host m in
      send_command host Command.Read_registers;
      match next_reply ~tries:100 m host with
      | Some (Command.Registers _) -> true
      | _ -> QCheck.Test.fail_report "stub unresponsive after fuzzed guest")

(* -- Breakpoints table unit tests -- *)

let test_breakpoints_table () =
  let b = Breakpoints.create () in
  check bool "add" true (Breakpoints.add b ~addr:0x100 ~saved:"12345678");
  check bool "no dup" false (Breakpoints.add b ~addr:0x100 ~saved:"x");
  check bool "mem" true (Breakpoints.mem b ~addr:0x100);
  check (Alcotest.option Alcotest.string) "saved" (Some "12345678")
    (Breakpoints.saved_at b ~addr:0x100);
  ignore (Breakpoints.add b ~addr:0x50 ~saved:"abcdefgh");
  check (Alcotest.list int) "sorted" [ 0x50; 0x100 ] (Breakpoints.addresses b);
  check (Alcotest.option Alcotest.string) "remove" (Some "12345678")
    (Breakpoints.remove b ~addr:0x100);
  check int "count" 1 (Breakpoints.count b);
  check int "clear" 1 (List.length (Breakpoints.clear b));
  check int "empty" 0 (Breakpoints.count b)

let test_watchpoints_table () =
  let w = Core.Watchpoints.create () in
  check bool "add" true (Core.Watchpoints.add w ~addr:0x1000 ~len:8);
  check bool "dup" false (Core.Watchpoints.add w ~addr:0x1000 ~len:8);
  check bool "hit inside" true (Core.Watchpoints.hit w 0x1004 <> None);
  check bool "miss outside" true (Core.Watchpoints.hit w 0x1008 = None);
  check bool "page watched" true (Core.Watchpoints.page_watched w 0x1000);
  check bool "other page" false (Core.Watchpoints.page_watched w 0x2000);
  check (Alcotest.list int) "pages spanning" [ 0x1000; 0x2000 ]
    (Core.Watchpoints.pages_of ~addr:0x1FFE ~len:4);
  check bool "remove" true (Core.Watchpoints.remove w ~addr:0x1000 ~len:8);
  check bool "remove twice" false (Core.Watchpoints.remove w ~addr:0x1000 ~len:8);
  check int "count" 0 (Core.Watchpoints.count w);
  Alcotest.check_raises "bad len" (Invalid_argument "Watchpoints.add: len <= 0")
    (fun () -> ignore (Core.Watchpoints.add w ~addr:0 ~len:0))

let test_vm_layout () =
  let l = Vm_layout.default ~mem_size:(16 * 1024 * 1024) in
  check bool "guest owns low" true (Vm_layout.guest_owns l 0);
  check bool "monitor owns top" false (Vm_layout.guest_owns l (16 * 1024 * 1024 - 1));
  check bool "range check straddling" false
    (Vm_layout.guest_range_ok l ~addr:(l.Vm_layout.monitor_base - 8) ~len:16);
  Alcotest.check_raises "too small" (Invalid_argument "Vm_layout.default: memory < 8 MiB")
    (fun () -> ignore (Vm_layout.default ~mem_size:(4 * 1024 * 1024)))

let test_shadow_unit () =
  let mem = Phys_mem.create ~size:(16 * 1024 * 1024) in
  let layout = Vm_layout.default ~mem_size:(16 * 1024 * 1024) in
  let s = Shadow.create ~mem ~layout () in
  Shadow.map s ~vaddr:0x5000 ~frame:0x9000 ~writable:true ~user:false;
  check int "one mapping" 1 (Shadow.mappings s);
  (match Mmu.probe mem ~ptb:(Shadow.root s) 0x5000 with
   | Some pte -> check int "frame" 0x9000 (Mmu.frame_of pte)
   | None -> Alcotest.fail "expected shadow mapping");
  Shadow.unmap s ~vaddr:0x5000;
  check int "unmapped" 0 (Shadow.mappings s);
  Shadow.map s ~vaddr:0x5000 ~frame:0x9000 ~writable:true ~user:false;
  Shadow.clear s;
  check int "cleared" 0 (Shadow.mappings s);
  check bool "probe empty after clear" true
    (Mmu.probe mem ~ptb:(Shadow.root s) 0x5000 = None)

let () =
  Alcotest.run "core (lightweight VMM)"
    [
      ( "execution",
        [
          Alcotest.test_case "deprivileged guest" `Quick test_guest_runs_deprivileged;
          Alcotest.test_case "sti/cli emulation" `Quick test_sti_cli_emulated;
          Alcotest.test_case "hypercall console" `Quick test_hypercall_console;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "virtual timer reflection" `Quick
            test_virtual_timer_reflection;
        ] );
      ( "devices",
        [
          Alcotest.test_case "nic pass-through" `Quick test_nic_passthrough_direct;
          Alcotest.test_case "pit traps" `Quick test_non_passthrough_port_traps;
        ] );
      ( "protection",
        [
          Alcotest.test_case "monitor memory unreachable" `Quick
            test_monitor_memory_unreachable;
          Alcotest.test_case "guest #PF reflected" `Quick
            test_guest_page_fault_reflected;
          Alcotest.test_case "guest paging via shadow" `Quick
            test_guest_paging_via_shadow;
          Alcotest.test_case "evil mapping denied" `Quick
            test_guest_mapping_monitor_frame_denied;
          Alcotest.test_case "three-level protection" `Quick
            test_user_app_cannot_touch_kernel_memory;
        ] );
      ( "stub",
        [
          Alcotest.test_case "read regs while running" `Quick
            test_stub_read_registers_while_running;
          Alcotest.test_case "memory round trip" `Quick test_stub_memory_round_trip;
          Alcotest.test_case "breakpoint cycle" `Quick test_stub_breakpoint_cycle;
          Alcotest.test_case "halt/query/resume" `Quick test_stub_halt_and_query;
          Alcotest.test_case "survives guest crash" `Quick
            test_stub_survives_guest_crash;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "monitor trace" `Quick
            test_monitor_trace_records_events;
          Alcotest.test_case "nak + retransmission" `Quick
            test_stub_nak_and_retransmission;
          QCheck_alcotest.to_alcotest test_monitor_survives_random_guest_code;
        ] );
      ( "units",
        [
          Alcotest.test_case "breakpoints table" `Quick test_breakpoints_table;
          Alcotest.test_case "watchpoints table" `Quick test_watchpoints_table;
          Alcotest.test_case "vm layout" `Quick test_vm_layout;
          Alcotest.test_case "shadow tables" `Quick test_shadow_unit;
        ] );
    ]
