(* Tests for the observability plane added around the continuous
   profiler: the PC-sampling profiler itself (bucketing, cadence,
   reports), the always-on flight recorder (ring semantics, dump
   format), the crash-bundle container format, and the end-to-end paths
   — profiler armed on a live machine, qP/qR over the debug wire, the
   crash bundle captured at escalation and its lifecycle across warm
   restarts. *)

module Engine = Vmm_sim.Engine
module Json = Vmm_obs.Json
module Registry = Vmm_obs.Registry
module Profiler = Vmm_profile.Profiler
module Flight = Vmm_profile.Flight
module Bundle = Vmm_profile.Bundle
module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

(* -- Profiler: bucketing and cadence -- *)

let test_profiler_disabled_by_default () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  check bool "disabled" false (Profiler.enabled p);
  check bool "never due" false (Profiler.due p);
  check int "no samples" 0 (Profiler.total_samples p);
  check bool "negative period refused" true
    (try
       Profiler.set_period p (-1L);
       false
     with Invalid_argument _ -> true)

let test_profiler_cadence () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 100L;
  check bool "armed" true (Profiler.enabled p);
  check bool "not due immediately" false (Profiler.due p);
  Engine.advance engine 99L;
  check bool "not due one cycle early" false (Profiler.due p);
  Engine.advance engine 1L;
  check bool "due at the period" true (Profiler.due p);
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  check bool "re-armed after sample" false (Profiler.due p);
  Engine.advance engine 100L;
  check bool "due again" true (Profiler.due p)

let test_profiler_buckets () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 1L;
  (* Repeats at one bucket exercise the memoized fast path; the
     interleavings exercise the miss path — the counts must agree with
     a naive tally regardless of which path recorded them. *)
  for _ = 1 to 5 do
    Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest"
  done;
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"mon_cpu";
  Profiler.sample p ~pc:0x1000 ~ring:3 ~cat:"guest";
  for _ = 1 to 2 do
    Profiler.sample p ~pc:0x2000 ~ring:1 ~cat:"guest"
  done;
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  check int "total" 10 (Profiler.total_samples p);
  let count key =
    match List.assoc_opt key (Profiler.buckets p) with Some n -> n | None -> 0
  in
  check int "memoized bucket"
    6 (count { Profiler.k_pc = 0x1000; k_ring = 1; k_cat = "guest" });
  check int "category split"
    1 (count { Profiler.k_pc = 0x1000; k_ring = 1; k_cat = "mon_cpu" });
  check int "ring split"
    1 (count { Profiler.k_pc = 0x1000; k_ring = 3; k_cat = "guest" });
  check int "pc split"
    2 (count { Profiler.k_pc = 0x2000; k_ring = 1; k_cat = "guest" });
  (* hottest first *)
  (match Profiler.buckets p with
   | (k, n) :: _ ->
     check int "hottest count" 6 n;
     check int "hottest pc" 0x1000 k.Profiler.k_pc
   | [] -> Alcotest.fail "no buckets");
  check
    (Alcotest.list (Alcotest.pair int int))
    "by_ring" [ (1, 9); (3, 1) ] (Profiler.by_ring p);
  check
    (Alcotest.list (Alcotest.pair string int))
    "by_category" [ ("guest", 9); ("mon_cpu", 1) ] (Profiler.by_category p);
  check
    (Alcotest.list (Alcotest.pair int int))
    "by_pc" [ (0x1000, 8); (0x2000, 2) ] (Profiler.by_pc p)

let test_profiler_clear () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 10L;
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  Profiler.clear p;
  check int "cleared" 0 (Profiler.total_samples p);
  check int "no buckets" 0 (List.length (Profiler.buckets p));
  check bool "period survives" true (Profiler.period p = 10L);
  (* the memoized hot bucket must not leak counts across a clear *)
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  check int "counts from one again" 1 (Profiler.total_samples p);
  check
    (Alcotest.list (Alcotest.pair int int))
    "bucket re-counts" [ (0x1000, 1) ] (Profiler.by_pc p)

let test_profiler_dump_round_trip () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 50L;
  for _ = 1 to 3 do
    Profiler.sample p ~pc:0x1040 ~ring:1 ~cat:"guest"
  done;
  Profiler.sample p ~pc:0x2080 ~ring:3 ~cat:"irq";
  let text = Profiler.dump p in
  check bool "header first" true
    (String.length text > 8 && String.sub text 0 8 = "samples=");
  match Profiler.parse_dump text with
  | None -> Alcotest.fail "dump did not parse"
  | Some (fields, buckets) ->
    check (Alcotest.option string) "samples" (Some "4")
      (List.assoc_opt "samples" fields);
    check (Alcotest.option string) "period" (Some "50")
      (List.assoc_opt "period" fields);
    check (Alcotest.option string) "buckets" (Some "2")
      (List.assoc_opt "buckets" fields);
    check bool "buckets round-trip" true (buckets = Profiler.buckets p)

let test_profiler_collapsed () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 1L;
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest";
  Profiler.sample p ~pc:0x2000 ~ring:3 ~cat:"irq";
  let resolve pc = if pc = 0x1000 then "idle_loop" else "unknown" in
  let text = Profiler.collapsed ~resolve p in
  check bool "resolved frame" true (contains text "guest;ring1;idle_loop 2");
  check bool "other frame" true (contains text "irq;ring3;unknown 1");
  (* default resolver renders hex *)
  check bool "hex fallback" true
    (contains (Profiler.collapsed p) "0x1000")

let test_profiler_perfetto_counters () =
  let engine = Engine.create () in
  let p = Profiler.create ~engine () in
  Profiler.set_period p 10L;
  for _ = 1 to 20 do
    Engine.advance engine 10L;
    Profiler.sample p ~pc:0x1000 ~ring:1 ~cat:"guest"
  done;
  let doc = Profiler.perfetto_counters ~slices:4 p in
  (* must be a chrome trace-event document with counter events *)
  match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
  | Some evs ->
    check bool "has counter events" true (List.length evs > 0);
    List.iter
      (fun ev ->
        check (Alcotest.option string) "counter phase" (Some "C")
          (Option.bind (Json.member "ph" ev) Json.to_string_opt))
      evs
  | None -> Alcotest.fail "no traceEvents list"

(* -- Flight recorder -- *)

let test_flight_ring_wrap () =
  let f = Flight.create ~capacity:4 () in
  check int "default capacity sane" 512 Flight.default_capacity;
  for i = 1 to 10 do
    Flight.note f ~cycle:(Int64.of_int (i * 100)) ~kind:"irq.deliver"
      (Printf.sprintf "line=%d" i)
  done;
  check int "total" 10 (Flight.total f);
  check int "retained" 4 (Flight.retained f);
  check int "dropped" 6 (Flight.dropped f);
  (* the ring holds the LAST capacity events, oldest first *)
  check
    (Alcotest.list string)
    "last events, oldest first"
    [ "line=7"; "line=8"; "line=9"; "line=10" ]
    (List.map (fun e -> e.Flight.detail) (Flight.entries f));
  Flight.clear f;
  check int "cleared" 0 (Flight.total f);
  check int "nothing retained" 0 (Flight.retained f)

let test_flight_dump_golden () =
  let f = Flight.create ~capacity:2 () in
  Flight.note f ~cycle:100L ~kind:"trap.pf" "pc=0x1000";
  Flight.note f ~cycle:250L ~kind:"io.out" "port=0x64 val=0xfe";
  Flight.note f ~cycle:300L ~kind:"irq.deliver" "line=3";
  check string "dump"
    "flight total=3 retained=2 dropped=1 capacity=2\n\
     @250 io.out: port=0x64 val=0xfe\n\
     @300 irq.deliver: line=3\n"
    (Flight.dump f)

(* -- Crash bundles -- *)

let test_bundle_round_trip () =
  let text =
    Bundle.compose ~cause:"double_fault" ~cycle:123456L
      [
        Bundle.section ~name:"crash-report" "cause=double_fault\nvector=8\n";
        (* a body whose lines look like framing must still round-trip *)
        Bundle.section ~name:"flight"
          "flight total=1 retained=1 dropped=0 capacity=512\n\
           @10 note: --- begin sneaky ---\n";
        Bundle.section ~name:"metrics" "demo_total 1" (* no trailing \n *);
      ]
  in
  check bool "magic first line" true
    (String.sub text 0 (String.length Bundle.magic) = Bundle.magic);
  (match Bundle.header text with
   | None -> Alcotest.fail "header did not parse"
   | Some fields ->
     check (Alcotest.option string) "cause" (Some "double_fault")
       (List.assoc_opt "cause" fields);
     check (Alcotest.option string) "cycle" (Some "123456")
       (List.assoc_opt "cycle" fields);
     check (Alcotest.option string) "sections" (Some "3")
       (List.assoc_opt "sections" fields));
  check
    (Alcotest.list string)
    "section order"
    [ "crash-report"; "flight"; "metrics" ]
    (List.map fst (Bundle.sections text));
  (match Bundle.find_section text "flight" with
   | Some body ->
     check bool "tricky body intact" true
       (contains body "@10 note: --- begin sneaky ---")
   | None -> Alcotest.fail "flight section missing");
  (match Bundle.find_section text "metrics" with
   | Some body -> check string "newline normalized" "demo_total 1\n" body
   | None -> Alcotest.fail "metrics section missing");
  check bool "absent section" true (Bundle.find_section text "nope" = None);
  (* not-a-bundle inputs *)
  check bool "no header on garbage" true (Bundle.header "hello\nworld" = None);
  check int "no sections on garbage" 0
    (List.length (Bundle.sections "hello\nworld"))

let test_bundle_section_name_validation () =
  let bad name =
    try
      ignore (Bundle.section ~name "body");
      false
    with Invalid_argument _ -> true
  in
  check bool "empty name" true (bad "");
  check bool "spaces" true (bad "two words");
  check bool "uppercase" true (bad "Flight");
  check bool "slash" true (bad "a/b");
  check bool "valid name accepted" true
    (try
       ignore (Bundle.section ~name:"trace-tail_2" "body");
       true
     with Invalid_argument _ -> false)

(* -- End-to-end: profiler on a live machine, qP/qR over the wire -- *)

let rig ?(rate = 50.0) () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  Monitor.boot_guest mon
    (Kernel.build (Kernel.default_config ~rate_mbps:rate))
    ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let session = Session.attach m in
  (m, mon, session)

let test_machine_profiler_live () =
  let m, mon, session = rig () in
  Machine.set_profiling m ~period:1024L;
  Machine.run_seconds m 0.05;
  let p = Machine.profiler m in
  check bool "samples collected" true (Profiler.total_samples p > 10);
  (* every sample is attributed: by_ring and by_category sum to total *)
  let sum l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  check int "rings sum to total" (Profiler.total_samples p)
    (sum (Profiler.by_ring p));
  check int "categories sum to total" (Profiler.total_samples p)
    (sum (Profiler.by_category p));
  (* the monitor serves the continuous profile as the qP payload *)
  (match Profiler.parse_dump (Monitor.profile_dump mon) with
   | Some (fields, _) ->
     check (Alcotest.option string) "armed period reported" (Some "1024")
       (List.assoc_opt "period" fields)
   | None -> Alcotest.fail "profile_dump did not parse");
  (* halt the guest so no samples land during the wire exchange, then
     the wire view must agree exactly with the monitor-side view *)
  ignore (Session.halt session);
  match Session.read_profile_dump session with
  | Some (_, fields, buckets) ->
    check (Alcotest.option string) "samples over the wire"
      (Some (string_of_int (Profiler.total_samples p)))
      (List.assoc_opt "samples" fields);
    check int "buckets over the wire" (List.length (Profiler.buckets p))
      (List.length buckets)
  | None -> Alcotest.fail "no qP reply"

let test_query_flight_live () =
  (* On a healthy guest qR serves the live flight ring. *)
  let m, _, session = rig () in
  Machine.run_seconds m 0.02;
  match Session.query_flight session with
  | Some text ->
    check bool "flight header" true
      (String.length text > 6 && String.sub text 0 6 = "flight");
    check bool "not a bundle" true (Bundle.header text = None);
    (* the ring is fed by device taps: real traffic leaves real events *)
    check bool "events present" true (contains text "@")
  | None -> Alcotest.fail "no qR reply"

let test_crash_bundle_lifecycle () =
  let m, mon, session = rig () in
  Machine.set_profiling m ~period:1024L;
  Machine.run_seconds m 0.05;
  check bool "no bundle while healthy" true (Monitor.crash_bundle mon = None);
  Monitor.inject mon Monitor.Iht_clobber;
  Machine.run_seconds m 0.02;
  check bool "guest crashed" true (Monitor.crashed mon);
  let bundle =
    match Monitor.crash_bundle mon with
    | Some b -> b
    | None -> Alcotest.fail "crash produced no bundle"
  in
  (* the bundle is a well-formed container with every section present *)
  (match Bundle.header bundle with
   | Some fields ->
     check bool "cause recorded" true (List.mem_assoc "cause" fields)
   | None -> Alcotest.fail "bundle header did not parse");
  List.iter
    (fun name ->
      check bool (name ^ " section present") true
        (Bundle.find_section bundle name <> None))
    [ "crash-report"; "flight"; "profile"; "snapshot-digest"; "trace-tail";
      "metrics" ];
  (* the profile section is the armed continuous profile *)
  (match Bundle.find_section bundle "profile" with
   | Some body ->
     (match Profiler.parse_dump body with
      | Some (fields, _) ->
        check (Alcotest.option string) "continuous profile in bundle"
          (Some "1024")
          (List.assoc_opt "period" fields)
      | None -> Alcotest.fail "profile section did not parse")
   | None -> Alcotest.fail "profile section missing");
  (* qR on a crashed guest serves the bundle, bit-identical *)
  (match Session.query_flight session with
   | Some text -> check bool "qR serves the bundle" true (text = bundle)
   | None -> Alcotest.fail "no qR reply from crashed guest");
  (* sticky across a warm restart: the artifact survives the recovery *)
  check bool "warm restart" true (Monitor.restart_guest mon);
  check bool "bundle survives restart" true
    (Monitor.crash_bundle mon = Some bundle);
  (* a fresh boot starts a new story: the old bundle is dropped *)
  Monitor.boot_guest mon
    (Kernel.build (Kernel.default_config ~rate_mbps:50.0))
    ~entry:Kernel.entry;
  check bool "fresh boot clears bundle" true (Monitor.crash_bundle mon = None)

let test_restart_gauges_stay_live () =
  (* Regression: every gauge registered at install must read live state
     after warm restarts — no stale closures over pre-restart objects,
     no duplicate registrations. *)
  let m, mon, _session = rig () in
  let reg = Machine.registry m in
  let names_before = Registry.names reg in
  Monitor.inject mon Monitor.Iht_clobber;
  Machine.run_seconds m 0.02;
  check bool "restart 1" true (Monitor.restart_guest mon);
  Machine.run_seconds m 0.02;
  check bool "restart 2" true (Monitor.restart_guest mon);
  Machine.run_seconds m 0.02;
  check
    (Alcotest.list string)
    "no duplicate or lost registrations" names_before (Registry.names reg);
  let gauge_value name =
    match List.assoc_opt name (Registry.snapshot reg) with
    | Some (Registry.Gauge g) -> int_of_float g
    | Some _ -> Alcotest.failf "%s is not a gauge" name
    | None -> Alcotest.failf "%s not registered" name
  in
  check int "restart gauge live" 2 (gauge_value "monitor_restarts_total");
  check int "crash gauge live" 1 (gauge_value "monitor_crashes_total");
  check int "bundle gauge live" 1 (gauge_value "monitor_crash_bundles_total");
  (* the dump renders without raising and reflects the same values *)
  check bool "dump shows live restarts" true
    (contains (Registry.dump reg) "monitor_restarts_total 2");
  (* snapshots remain stable (gauges are pure reads) *)
  check bool "snapshot stable" true (Registry.snapshot reg = Registry.snapshot reg)

let () =
  Alcotest.run "vmm_profile"
    [
      ( "profiler",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_profiler_disabled_by_default;
          Alcotest.test_case "cadence" `Quick test_profiler_cadence;
          Alcotest.test_case "buckets" `Quick test_profiler_buckets;
          Alcotest.test_case "clear" `Quick test_profiler_clear;
          Alcotest.test_case "dump round trip" `Quick
            test_profiler_dump_round_trip;
          Alcotest.test_case "collapsed" `Quick test_profiler_collapsed;
          Alcotest.test_case "perfetto counters" `Quick
            test_profiler_perfetto_counters;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap" `Quick test_flight_ring_wrap;
          Alcotest.test_case "dump golden" `Quick test_flight_dump_golden;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "round trip" `Quick test_bundle_round_trip;
          Alcotest.test_case "section names" `Quick
            test_bundle_section_name_validation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "live profiler + qP" `Quick
            test_machine_profiler_live;
          Alcotest.test_case "qR live flight" `Quick test_query_flight_live;
          Alcotest.test_case "crash-bundle lifecycle" `Quick
            test_crash_bundle_lifecycle;
          Alcotest.test_case "restart gauges live" `Quick
            test_restart_gauges_stay_live;
        ] );
    ]
