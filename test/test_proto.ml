(* Tests for the debug wire protocol: framing, escaping, incremental
   decoding, hex helpers and the typed command/reply grammar. *)

module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Link = Vmm_proto.Link

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* -- Framing -- *)

let test_frame_simple () =
  (* "g" -> checksum 0x67 *)
  check string "framed" "$g#67" (Packet.frame "g")

let test_frame_escaping () =
  let framed = Packet.frame "a$b" in
  check bool "escaped dollar" true
    (String.length framed > String.length "$a$b#xx" - 1);
  let d = Packet.decoder () in
  match Packet.feed_string d framed with
  | [ Packet.Packet p ] -> check string "roundtrip" "a$b" p
  | _ -> Alcotest.fail "expected one packet"

let test_decoder_noise_and_ack () =
  let d = Packet.decoder () in
  let events = Packet.feed_string d ("xx+" ^ Packet.frame "OK" ^ "-junk") in
  match events with
  | [ Packet.Ack; Packet.Packet "OK"; Packet.Nak ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_decoder_bad_checksum () =
  let d = Packet.decoder () in
  match Packet.feed_string d "$abc#00" with
  | [ Packet.Bad_checksum ] -> ()
  | _ -> Alcotest.fail "expected checksum failure"

let test_decoder_resync_on_dollar () =
  (* A truncated packet followed by a fresh one decodes the fresh one. *)
  let d = Packet.decoder () in
  match Packet.feed_string d ("$garbage" ^ Packet.frame "ok") with
  | [ Packet.Packet "ok" ] -> ()
  | _ -> Alcotest.fail "expected resynchronization"

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame/decode roundtrip any payload" ~count:500
    QCheck.(string_of_size (Gen.int_bound 200))
    (fun payload ->
      let d = Packet.decoder () in
      match Packet.feed_string d (Packet.frame payload) with
      | [ Packet.Packet p ] -> String.equal p payload
      | _ -> false)

let prop_frame_roundtrip_split =
  QCheck.Test.make ~name:"roundtrip survives byte-at-a-time delivery"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_bound 100)) (string_of_size (Gen.int_bound 100)))
    (fun (p1, p2) ->
      let d = Packet.decoder () in
      let wire = Packet.frame p1 ^ "+" ^ Packet.frame p2 in
      let events = ref [] in
      String.iter
        (fun c ->
          match Packet.feed d (Char.code c) with
          | Some e -> events := e :: !events
          | None -> ())
        wire;
      match List.rev !events with
      | [ Packet.Packet a; Packet.Ack; Packet.Packet b ] ->
        String.equal a p1 && String.equal b p2
      | _ -> false)

(* -- Hex -- *)

let test_hex_helpers () =
  check string "to_hex" "68690a" (Packet.to_hex "hi\n");
  check (Alcotest.option string) "of_hex" (Some "hi\n")
    (Packet.of_hex "68690a");
  check (Alcotest.option string) "odd length" None (Packet.of_hex "abc");
  check (Alcotest.option string) "bad digit" None (Packet.of_hex "zz");
  check string "fixed width" "00ff" (Packet.hex_of_int 255 ~width:4);
  check (Alcotest.option int) "int_of_hex" (Some 0xDEAD)
    (Packet.int_of_hex "dead");
  check (Alcotest.option int) "empty" None (Packet.int_of_hex "")

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500 QCheck.string (fun s ->
      Packet.of_hex (Packet.to_hex s) = Some s)

(* -- Commands -- *)

let command_gen : Command.command QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = map (fun v -> v land 0xFFFFFFFF) int in
  oneof
    [
      return Command.Read_registers;
      map2 (fun i v -> Command.Write_register (i land 0x1F, v land 0xFFFFFFFF)) int int;
      map2 (fun a l -> Command.Read_memory { addr = a; len = l land 0xFFFF }) addr int;
      map
        (fun data -> Command.Write_memory { addr = 0x1000; data })
        (string_size (int_bound 64));
      map (fun a -> Command.Insert_breakpoint a) addr;
      map (fun a -> Command.Remove_breakpoint a) addr;
      return Command.Continue;
      return Command.Step;
      return Command.Halt;
      return Command.Query_stop;
      return Command.Query_watchdog;
      return Command.Query_verify;
      return Command.Detach;
    ]

let command_arbitrary =
  QCheck.make command_gen ~print:(fun c ->
      Format.asprintf "%a" Command.pp_command c)

let prop_command_roundtrip =
  QCheck.Test.make ~name:"command wire roundtrip" ~count:500 command_arbitrary
    (fun c -> Command.command_of_wire (Command.command_to_wire c) = Some c)

let reply_gen : Command.reply QCheck.Gen.t =
  let open QCheck.Gen in
  let addr = map (fun v -> v land 0xFFFFFFFF) int in
  oneof
    [
      return Command.Ok_reply;
      map (fun c -> Command.Error (c land 0xFF)) int;
      map
        (fun l -> Command.Registers (Array.of_list (List.map (fun v -> v land 0xFFFFFFFF) l)))
        (list_repeat Command.register_count int);
      map (fun a -> Command.Stopped (Command.Break a)) addr;
      map (fun a -> Command.Stopped (Command.Step_done a)) addr;
      map2
        (fun v p -> Command.Stopped (Command.Faulted { vector = v land 0x3F; pc = p }))
        int addr;
      map (fun a -> Command.Stopped (Command.Halt_requested a)) addr;
      return Command.Running;
    ]

let reply_arbitrary =
  QCheck.make reply_gen ~print:(fun r -> Format.asprintf "%a" Command.pp_reply r)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply wire roundtrip" ~count:500 reply_arbitrary
    (fun r -> Command.reply_of_wire (Command.reply_to_wire r) = Some r)

let test_command_examples () =
  check (Alcotest.option bool) "read regs" (Some true)
    (Option.map (fun c -> c = Command.Read_registers)
       (Command.command_of_wire "g"));
  check bool "qV parses" true
    (Command.command_of_wire "qV" = Some Command.Query_verify);
  check Alcotest.string "qV wire form" "qV"
    (Command.command_to_wire Command.Query_verify);
  (match Command.command_of_wire "m00001000,00000010" with
   | Some (Command.Read_memory { addr; len }) ->
     check int "addr" 0x1000 addr;
     check int "len" 16 len
   | _ -> Alcotest.fail "read memory parse");
  match Command.command_of_wire "M00002000,00000002:abcd" with
  | Some (Command.Write_memory { addr; data }) ->
    check int "addr" 0x2000 addr;
    check string "data" "\xab\xcd" data
  | _ -> Alcotest.fail "write memory parse"

let test_command_rejects_garbage () =
  check bool "empty" true (Command.command_of_wire "" = None);
  check bool "unknown" true (Command.command_of_wire "Q!" = None);
  check bool "bad length" true
    (Command.command_of_wire "M00000000,00000005:ab" = None)

(* -- Link -- *)

let test_loopback () =
  let a, b = Link.loopback () in
  let got = ref [] in
  b.Link.set_receive (fun byte -> got := byte :: !got);
  Link.send_string a "abc";
  check (Alcotest.list int) "delivered in order"
    [ Char.code 'a'; Char.code 'b'; Char.code 'c' ]
    (List.rev !got)

let test_loopback_backlog () =
  let a, b = Link.loopback () in
  Link.send_string a "xy" (* no receiver yet *);
  let got = ref [] in
  b.Link.set_receive (fun byte -> got := byte :: !got);
  check (Alcotest.list int) "backlog flushed"
    [ Char.code 'x'; Char.code 'y' ]
    (List.rev !got)

(* Re-entrancy regression: a receive callback installed while a backlog
   is pending may itself trigger new traffic; the drain must deliver
   those late arrivals too instead of losing them (they land in the
   backlog while [receive] is still unset). *)
let test_loopback_reentrant_drain () =
  let a, b = Link.loopback () in
  Link.send_string a "ab" (* no receiver yet *);
  let got = ref [] in
  b.Link.set_receive (fun byte ->
      if Char.chr byte = 'a' then Link.send_string a "c";
      got := byte :: !got);
  check (Alcotest.list int) "late arrivals drained"
    [ Char.code 'a'; Char.code 'b'; Char.code 'c' ]
    (List.rev !got)

(* -- Decoder fuzz -- *)

(* 10k random byte streams: the decoder must never raise, and whatever
   state the noise leaves behind, at most one following frame may be
   sacrificed to it (a trailing escape or checksum state can swallow a
   single '$') — the one after that must decode. *)
let test_decoder_fuzz () =
  let seed = 0xF00DL in
  Printf.printf "[fuzz] decoder seed=%Ld\n%!" seed;
  let rng = Vmm_sim.Rng.create ~seed in
  for _ = 1 to 10_000 do
    let d = Packet.decoder () in
    let len = Vmm_sim.Rng.int rng 65 in
    (try
       for _ = 1 to len do
         ignore (Packet.feed d (Vmm_sim.Rng.int rng 256))
       done
     with e ->
       Alcotest.failf "decoder raised on noise: %s" (Printexc.to_string e));
    let probe = Packet.frame "probe" in
    let events = Packet.feed_string d (probe ^ probe) in
    let decoded =
      List.exists (function Packet.Packet "probe" -> true | _ -> false) events
    in
    if not decoded then Alcotest.fail "decoder failed to resynchronize"
  done

(* -- Reliable ARQ -- *)

module Reliable = Vmm_proto.Reliable
module Engine = Vmm_sim.Engine

let arq_config =
  { Reliable.byte_cycles = 10; slack_bytes = 10; max_retries = 3; backoff_exp_cap = 2 }

(* A connected pair with a cuttable wire in each direction. *)
let arq_pair () =
  let engine = Engine.create () in
  let a_cut = ref false and b_cut = ref false in
  let a_got = ref [] and b_got = ref [] in
  let a = ref None and b = ref None in
  let to_b byte = if not !a_cut then Reliable.on_rx_byte (Option.get !b) byte in
  let to_a byte = if not !b_cut then Reliable.on_rx_byte (Option.get !a) byte in
  a :=
    Some
      (Reliable.create ~config:arq_config ~engine ~send_byte:to_b
         ~deliver:(fun p -> a_got := p :: !a_got)
         ());
  b :=
    Some
      (Reliable.create ~config:arq_config ~engine ~send_byte:to_a
         ~deliver:(fun p -> b_got := p :: !b_got)
         ());
  let a = Option.get !a and b = Option.get !b in
  Reliable.set_sequenced a true;
  (engine, a, b, a_cut, b_cut, a_got, b_got)

let settle engine = Engine.run_until engine ~time:10_000_000L

let test_arq_delivery () =
  let engine, a, b, _, _, _, b_got = arq_pair () in
  Reliable.send a "hello";
  Reliable.send a "world";
  settle engine;
  check (Alcotest.list string) "in order once" [ "hello"; "world" ]
    (List.rev !b_got);
  check bool "peer upgraded" true (Reliable.sequenced b);
  check int "nothing in flight" 0 (Reliable.pending_tx a)

let test_arq_retransmit_on_loss () =
  let engine, a, _, a_cut, _, _, b_got = arq_pair () in
  a_cut := true (* first transmission vanishes *);
  Reliable.send a "persist";
  check (Alcotest.list string) "lost for now" [] !b_got;
  a_cut := false;
  settle engine (* timeout fires, retransmit goes through *);
  check (Alcotest.list string) "delivered by retry" [ "persist" ] !b_got;
  check bool "retry counted" true ((Reliable.stats a).Reliable.retransmits >= 1);
  check bool "still up" true (Reliable.link_up a)

let test_arq_duplicate_suppressed () =
  let engine, a, b, _, b_cut, _, b_got = arq_pair () in
  b_cut := true (* b's acks never arrive, so a keeps retransmitting *);
  Reliable.send a "once";
  settle engine;
  (* b saw the original plus timeout retransmits: all the same seq. *)
  check (Alcotest.list string) "delivered exactly once" [ "once" ] !b_got;
  check bool "duplicates counted" true
    ((Reliable.stats b).Reliable.duplicates_dropped >= 1)

let test_arq_link_down_and_reset () =
  let engine, a, b, a_cut, _, _, b_got = arq_pair () in
  let downs = ref 0 in
  Reliable.set_on_link_down a (fun () -> incr downs);
  a_cut := true;
  Reliable.send a "doomed";
  Reliable.send a "queued-behind";
  settle engine;
  check bool "down after bounded retries" false (Reliable.link_up a);
  check int "one down event" 1 !downs;
  check int "queue dropped" 0 (Reliable.pending_tx a);
  Reliable.send a "ignored while down";
  check int "sends dropped while down" 0 (Reliable.pending_tx a);
  (* Reconnect: both ends restart their sequence spaces. *)
  a_cut := false;
  Reliable.reset a;
  Reliable.reset b;
  Reliable.send a "after reset";
  settle engine;
  check bool "back up" true (Reliable.link_up a);
  check (Alcotest.list string) "fresh exchange works" [ "after reset" ] !b_got;
  check bool "reset counted" true ((Reliable.stats a).Reliable.link_resets >= 1)

let test_arq_plain_compat () =
  (* A plain-mode peer (the historical protocol): unsequenced frames in,
     bare acks out, NAK retransmits the last frame. *)
  let engine = Engine.create () in
  let wire_to_peer = Buffer.create 64 in
  let got = ref [] in
  let e =
    Reliable.create ~config:arq_config ~engine
      ~send_byte:(fun byte -> Buffer.add_char wire_to_peer (Char.chr byte))
      ~deliver:(fun p -> got := p :: !got)
      ()
  in
  String.iter
    (fun c -> Reliable.on_rx_byte e (Char.code c))
    (Packet.frame "g");
  check (Alcotest.list string) "plain frame delivered" [ "g" ] !got;
  check bool "stays plain" false (Reliable.sequenced e);
  Buffer.clear wire_to_peer;
  Reliable.send e "reply";
  let sent_once = Buffer.contents wire_to_peer in
  check string "fire and forget framing" (Packet.frame "reply") sent_once;
  Reliable.on_rx_byte e (Char.code '-') (* peer NAKs: retransmit *);
  check string "nak retransmit" (sent_once ^ sent_once)
    (Buffer.contents wire_to_peer);
  check bool "retransmit counted" true ((Reliable.stats e).Reliable.retransmits >= 1)

(* -- Sequence-wraparound model test --

   The ARQ sequence number is 8 bits, so any stream past 256 frames
   wraps.  Push 300 frames through a lossy serial wire — faults in both
   directions, so acks suffer too — and require the model property: the
   receiver delivers exactly the sent sequence, in order, once, and the
   link stays up.  Each qcheck case is one seeded world.

   The wire model matters.  A UART serializes: bytes occupy the wire one
   after another and cannot overtake, so each direction is paced at one
   byte per [byte_cycles] and chaos delay is kept below the byte slot
   (jitter, not reordering).  An unpaced wire lets a delayed byte from
   one transmission land inside the next; the additive 8-bit checksum is
   permutation-invariant, so such interleaving can assemble
   validly-checksummed garbage — a physical impossibility on a serial
   link, not a protocol failure.  Fault classes likewise run in separate
   legs of the stream: an 8-bit checksum only detects errors that do not
   cancel, and a drop plus a duplicate of equal byte values in one frame
   cancel exactly.  The wrap itself (frames 256..299) happens in the
   drop leg, where every loss forces the retransmit path. *)

module Chaos = Vmm_fault.Chaos

let wraparound_config =
  {
    Reliable.byte_cycles = 10;
    slack_bytes = 64;
    max_retries = 200;
    backoff_exp_cap = 4;
  }

(* One direction of the serial wire: bytes queue for the next free
   byte slot, then pass through [chaos] into [sink]. *)
let paced_wire ~engine chaos sink =
  let gap = Int64.of_int wraparound_config.Reliable.byte_cycles in
  let chaos_sink = Chaos.wrap chaos sink in
  let next_slot = ref 0L in
  fun byte ->
    let now = Engine.now engine in
    let at = if Int64.compare !next_slot now > 0 then !next_slot else now in
    next_slot := Int64.add at gap;
    ignore (Engine.at engine ~time:at (fun () -> chaos_sink byte))

let quiet = { Chaos.drop_p = 0.; corrupt_p = 0.; dup_p = 0.; delay_p = 0.; max_delay_cycles = 1 }

let wraparound_legs =
  [
    ("delay", { quiet with Chaos.delay_p = 0.5; max_delay_cycles = 8 });
    ("dup", { quiet with Chaos.dup_p = 0.03 });
    ("drop", { quiet with Chaos.drop_p = 0.03 });
  ]

let prop_arq_wraparound =
  QCheck.Test.make ~name:"sequence wraparound under chaos (300 frames)"
    ~count:10
    QCheck.(int_bound 0xFFFF)
    (fun salt ->
      let seed = Int64.of_int (0xA5EED + salt) in
      let engine = Engine.create () in
      let rng = Vmm_sim.Rng.create ~seed in
      let wire () =
        let chaos = Chaos.create ~engine ~rng:(Vmm_sim.Rng.split rng) () in
        Chaos.set_active chaos true;
        chaos
      in
      let chaos_ab = wire () and chaos_ba = wire () in
      let b_got = ref [] in
      let a = ref None and b = ref None in
      let to_b =
        paced_wire ~engine chaos_ab (fun byte ->
            Reliable.on_rx_byte (Option.get !b) byte)
      in
      let to_a =
        paced_wire ~engine chaos_ba (fun byte ->
            Reliable.on_rx_byte (Option.get !a) byte)
      in
      a :=
        Some
          (Reliable.create ~config:wraparound_config ~engine ~send_byte:to_b
             ~deliver:(fun _ -> ())
             ());
      b :=
        Some
          (Reliable.create ~config:wraparound_config ~engine ~send_byte:to_a
             ~deliver:(fun p -> b_got := p :: !b_got)
             ());
      let a = Option.get !a in
      Reliable.set_sequenced a true;
      let sent = List.init 300 (Printf.sprintf "m%04d") in
      List.iteri
        (fun i (_, profile) ->
          Chaos.set_profile chaos_ab profile;
          Chaos.set_profile chaos_ba profile;
          List.iter (Reliable.send a)
            (List.filteri (fun j _ -> j / 100 = i) sent);
          ignore (Engine.run_until_idle engine))
        wraparound_legs;
      List.rev !b_got = sent && Reliable.link_up a)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* The wraparound property quantifies over seeded worlds, so the test is
   only meaningful if the same worlds are checked every run: pin the
   qcheck generator state instead of inheriting a per-run random seed. *)
let qsuite_pinned tests =
  List.map
    (fun t ->
      QCheck_alcotest.to_alcotest
        ~rand:(Random.State.make [| 0xA5EED |]) (* determinism-ok: fixed seed *)
        t)
    tests

let () =
  Alcotest.run "vmm_proto"
    [
      ( "packet",
        [
          Alcotest.test_case "frame" `Quick test_frame_simple;
          Alcotest.test_case "escaping" `Quick test_frame_escaping;
          Alcotest.test_case "noise + acks" `Quick test_decoder_noise_and_ack;
          Alcotest.test_case "bad checksum" `Quick test_decoder_bad_checksum;
          Alcotest.test_case "resync" `Quick test_decoder_resync_on_dollar;
          Alcotest.test_case "hex helpers" `Quick test_hex_helpers;
        ]
        @ qsuite [ prop_frame_roundtrip; prop_frame_roundtrip_split; prop_hex_roundtrip ]
      );
      ( "command",
        [
          Alcotest.test_case "examples" `Quick test_command_examples;
          Alcotest.test_case "rejects garbage" `Quick test_command_rejects_garbage;
        ]
        @ qsuite [ prop_command_roundtrip; prop_reply_roundtrip ] );
      ( "link",
        [
          Alcotest.test_case "loopback" `Quick test_loopback;
          Alcotest.test_case "backlog" `Quick test_loopback_backlog;
          Alcotest.test_case "re-entrant drain" `Quick
            test_loopback_reentrant_drain;
        ] );
      ("fuzz", [ Alcotest.test_case "decoder total" `Quick test_decoder_fuzz ]);
      ( "reliable",
        [
          Alcotest.test_case "delivery" `Quick test_arq_delivery;
          Alcotest.test_case "retransmit on loss" `Quick
            test_arq_retransmit_on_loss;
          Alcotest.test_case "duplicate suppressed" `Quick
            test_arq_duplicate_suppressed;
          Alcotest.test_case "link down + reset" `Quick
            test_arq_link_down_and_reset;
          Alcotest.test_case "plain-mode compat" `Quick test_arq_plain_compat;
        ]
        @ qsuite_pinned [ prop_arq_wraparound ] );
    ]
