(* Tests for the hardware model: word arithmetic, physical memory, ISA
   encode/decode, the assembler, MMU translation, CPU execution semantics
   (including privilege, interrupts and paging) and the device models. *)

module Engine = Vmm_sim.Engine
module Word = Vmm_hw.Word
module Phys_mem = Vmm_hw.Phys_mem
module Isa = Vmm_hw.Isa
module Asm = Vmm_hw.Asm
module Mmu = Vmm_hw.Mmu
module Cpu = Vmm_hw.Cpu
module Io_bus = Vmm_hw.Io_bus
module Pic = Vmm_hw.Pic
module Pit = Vmm_hw.Pit
module Uart = Vmm_hw.Uart
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* -- Word -- *)

let test_word_wrap () =
  check int "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  check int "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  check int "mul wraps" 0xFFFFFFFE (Word.mul 0xFFFFFFFF 2);
  check int "signed view" (-1) (Word.to_signed 0xFFFFFFFF);
  check int "of_signed" 0xFFFFFFFF (Word.of_signed (-1))

let test_word_shifts () =
  check int "shl" 0x80000000 (Word.shift_left 1 31);
  check int "shl mod 32" 2 (Word.shift_left 1 33);
  check int "shr" 1 (Word.shift_right 0x80000000 31);
  check int "byte" 0xCD (Word.byte 0xABCD1234 2)

let test_word_compare () =
  check bool "unsigned" true (Word.unsigned_lt 1 0xFFFFFFFF);
  check bool "signed" true (Word.signed_lt 0xFFFFFFFF 1)

(* -- Phys_mem -- *)

let test_mem_rw () =
  let m = Phys_mem.create ~size:4096 in
  Phys_mem.write_u32 m 0 0xDEADBEEF;
  check int "u32" 0xDEADBEEF (Phys_mem.read_u32 m 0);
  check int "u8 LE" 0xEF (Phys_mem.read_u8 m 0);
  check int "u16 LE" 0xBEEF (Phys_mem.read_u16 m 0);
  Phys_mem.write_u16 m 100 0x1234;
  check int "u16 rt" 0x1234 (Phys_mem.read_u16 m 100)

let test_mem_bounds () =
  let m = Phys_mem.create ~size:16 in
  Alcotest.check_raises "oob read" (Phys_mem.Bus_error 16) (fun () ->
      ignore (Phys_mem.read_u8 m 16));
  Alcotest.check_raises "straddling u32" (Phys_mem.Bus_error 13) (fun () ->
      ignore (Phys_mem.read_u32 m 13))

let test_mem_checksum_matches_rfc () =
  (* Independent reference implementation. *)
  let m = Phys_mem.create ~size:64 in
  let data = [ 0x45; 0x00; 0x00; 0x3c; 0x1c; 0x46; 0x40; 0x00 ] in
  List.iteri (fun i v -> Phys_mem.write_u8 m i v) data;
  let reference =
    let sum =
      (0x45 lor (0x00 lsl 8))
      + (0x00 lor (0x3c lsl 8))
      + (0x1c lor (0x46 lsl 8))
      + (0x40 lor (0x00 lsl 8))
    in
    let s = (sum land 0xFFFF) + (sum lsr 16) in
    lnot ((s land 0xFFFF) + (s lsr 16)) land 0xFFFF
  in
  check int "checksum" reference (Phys_mem.checksum m ~addr:0 ~len:8)

let test_mem_checksum_odd_len () =
  let m = Phys_mem.create ~size:8 in
  Phys_mem.write_u8 m 0 0xAB;
  Phys_mem.write_u8 m 1 0xCD;
  Phys_mem.write_u8 m 2 0x12;
  let sum = 0xAB lor (0xCD lsl 8) in
  let sum = sum + 0x12 in
  let s = (sum land 0xFFFF) + (sum lsr 16) in
  check int "odd trailing byte" (lnot s land 0xFFFF)
    (Phys_mem.checksum m ~addr:0 ~len:3)

(* -- ISA encode/decode -- *)

let reg_gen = QCheck.Gen.int_bound 15
let imm_gen = QCheck.Gen.map (fun v -> v land 0xFFFFFFFF) QCheck.Gen.int

let instr_gen : Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let r = reg_gen and i = imm_gen in
  oneof
    [
      return Isa.Nop;
      return Isa.Hlt;
      map2 (fun a b -> Isa.Movi (a, b)) r i;
      map2 (fun a b -> Isa.Mov (a, b)) r r;
      map3 (fun a b c -> Isa.Add (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Addi (a, b, c)) r r i;
      map3 (fun a b c -> Isa.Sub (a, b, c)) r r r;
      map3 (fun a b c -> Isa.And_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Or_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Xor_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Shl (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Shr (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Mul (a, b, c)) r r r;
      map2 (fun a b -> Isa.Cmp (a, b)) r r;
      map2 (fun a b -> Isa.Cmpi (a, b)) r i;
      map3 (fun a b c -> Isa.Ld (a, b, c)) r r i;
      map3 (fun a b c -> Isa.St (a, b, c)) r i r;
      map3 (fun a b c -> Isa.Ldb (a, b, c)) r r i;
      map3 (fun a b c -> Isa.Stb (a, b, c)) r i r;
      map (fun a -> Isa.Jmp a) i;
      map (fun a -> Isa.Jz a) i;
      map (fun a -> Isa.Jnz a) i;
      map (fun a -> Isa.Jlt a) i;
      map (fun a -> Isa.Jge a) i;
      map (fun a -> Isa.Jb a) i;
      map (fun a -> Isa.Jae a) i;
      map (fun a -> Isa.Jr a) r;
      map (fun a -> Isa.Call a) i;
      return Isa.Ret;
      map (fun a -> Isa.Push a) r;
      map (fun a -> Isa.Pop a) r;
      map2 (fun a b -> Isa.In_ (a, b)) r r;
      map2 (fun a b -> Isa.Ini (a, b)) r i;
      map2 (fun a b -> Isa.Out (a, b)) r r;
      map2 (fun a b -> Isa.Outi (a, b)) i r;
      map (fun v -> Isa.Int_ (v land 0x3F)) (int_bound 63);
      return Isa.Iret;
      return Isa.Sti;
      return Isa.Cli;
      map (fun a -> Isa.Liht a) r;
      map (fun a -> Isa.Lptb a) r;
      map2 (fun a b -> Isa.Lstk (a land 15, b)) (int_bound 15) r;
      return Isa.Tlbflush;
      map3 (fun a b c -> Isa.Copy (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Csum (a, b, c)) r r r;
      map (fun a -> Isa.Rdtsc a) r;
      map (fun a -> Isa.Vmcall a) i;
      return Isa.Brk;
    ]

let instr_arbitrary =
  QCheck.make instr_gen ~print:(fun i -> Isa.to_string i)

let prop_isa_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 instr_arbitrary
    (fun i ->
      let b = Isa.encode i in
      Bytes.length b = Isa.width && Isa.decode ~addr:0 b ~off:0 = i)

let test_isa_decode_error () =
  let b = Bytes.make 8 '\xFE' in
  Alcotest.check_raises "bad opcode"
    (Isa.Decode_error { addr = 0; opcode = 0xFE })
    (fun () -> ignore (Isa.decode ~addr:0 b ~off:0))

let test_isa_privileged_set () =
  check bool "sti" true (Isa.is_privileged Isa.Sti);
  check bool "hlt" true (Isa.is_privileged Isa.Hlt);
  check bool "add" false (Isa.is_privileged (Isa.Add (0, 1, 2)));
  check bool "in" false (Isa.is_privileged (Isa.Ini (0, 0x20)))

(* -- Assembler -- *)

let test_asm_labels () =
  let a = Asm.create ~origin:0x100 () in
  Asm.jmp a (Asm.lbl "target");
  Asm.nop a;
  Asm.label a "target";
  Asm.hlt a;
  let p = Asm.assemble a in
  check int "label addr" (0x100 + 16) (Asm.symbol p "target");
  let i = Isa.decode ~addr:0 p.Asm.code ~off:0 in
  check bool "jump resolved" true (i = Isa.Jmp (0x100 + 16))

let test_asm_undefined_label () =
  let a = Asm.create () in
  Asm.jmp a (Asm.lbl "nowhere");
  Alcotest.check_raises "undefined" (Asm.Undefined_label "nowhere") (fun () ->
      ignore (Asm.assemble a))

let test_asm_duplicate_label () =
  let a = Asm.create () in
  Asm.label a "x";
  Alcotest.check_raises "duplicate" (Asm.Duplicate_label "x") (fun () ->
      Asm.label a "x")

let test_asm_data_and_align () =
  let a = Asm.create ~origin:0 () in
  Asm.bytes a (Bytes.of_string "abc");
  Asm.align a 8;
  Asm.label a "data";
  Asm.word a (Asm.lbl "data");
  let p = Asm.assemble a in
  check int "aligned" 8 (Asm.symbol p "data");
  let m = Phys_mem.create ~size:64 in
  Asm.load p m;
  check int "word self-ref" 8 (Phys_mem.read_u32 m 8)

(* -- Machine helpers -- *)

let fresh_machine () = Machine.create ~mem_size:(2 * 1024 * 1024) ()

let run_program ?(limit = 200_000) build =
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  build a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  let halted = Machine.run_until_halted ~limit m in
  check bool "program halted" true halted;
  (m, p)

let reg m r = Cpu.read_reg (Machine.cpu m) r

(* -- CPU basics -- *)

let test_cpu_arith () =
  let m, _ =
    run_program (fun a ->
        Asm.movi a 1 (Asm.imm 10);
        Asm.movi a 2 (Asm.imm 32);
        Asm.add a 3 1 2;
        Asm.sub a 4 2 1;
        Asm.mul a 5 1 2;
        Asm.movi a 6 (Asm.imm 0xF0F0);
        Asm.movi a 7 (Asm.imm 0x0FF0);
        Asm.and_ a 8 6 7;
        Asm.or_ a 9 6 7;
        Asm.xor_ a 10 6 7;
        Asm.hlt a)
  in
  check int "add" 42 (reg m 3);
  check int "sub" 22 (reg m 4);
  check int "mul" 320 (reg m 5);
  check int "and" 0x00F0 (reg m 8);
  check int "or" 0xFFF0 (reg m 9);
  check int "xor" 0xFF00 (reg m 10)

let test_cpu_branches () =
  let m, _ =
    run_program (fun a ->
        (* r1 counts loop iterations 0..4 *)
        Asm.movi a 1 (Asm.imm 0);
        Asm.label a "loop";
        Asm.addi a 1 1 (Asm.imm 1);
        Asm.cmpi a 1 (Asm.imm 5);
        Asm.jnz a (Asm.lbl "loop");
        (* signed comparison: -1 < 1 *)
        Asm.movi a 2 (Asm.imm 0xFFFFFFFF);
        Asm.movi a 3 (Asm.imm 1);
        Asm.cmp a 2 3;
        Asm.jlt a (Asm.lbl "signed_ok");
        Asm.movi a 4 (Asm.imm 0);
        Asm.hlt a;
        Asm.label a "signed_ok";
        Asm.movi a 4 (Asm.imm 1);
        (* unsigned: 0xFFFFFFFF > 1 *)
        Asm.cmp a 2 3;
        Asm.jae a (Asm.lbl "unsigned_ok");
        Asm.movi a 5 (Asm.imm 0);
        Asm.hlt a;
        Asm.label a "unsigned_ok";
        Asm.movi a 5 (Asm.imm 1);
        Asm.hlt a)
  in
  check int "loop count" 5 (reg m 1);
  check int "signed" 1 (reg m 4);
  check int "unsigned" 1 (reg m 5)

let test_cpu_call_stack () =
  let m, _ =
    run_program (fun a ->
        Asm.movi a Isa.sp (Asm.imm 0x8000);
        Asm.movi a 1 (Asm.imm 7);
        Asm.call a (Asm.lbl "double");
        Asm.hlt a;
        Asm.label a "double";
        Asm.push a 2;
        Asm.add a 2 1 1;
        Asm.mov a 1 2;
        Asm.pop a 2;
        Asm.ret a)
  in
  check int "doubled" 14 (reg m 1);
  check int "sp restored" 0x8000 (reg m Isa.sp)

let test_cpu_memory () =
  let m, _ =
    run_program (fun a ->
        Asm.movi a 1 (Asm.imm 0x9000);
        Asm.movi a 2 (Asm.imm 0xCAFEBABE);
        Asm.st a 1 4 2;
        Asm.ld a 3 1 4;
        Asm.ldb a 4 1 4;
        Asm.movi a 5 (Asm.imm 0x55);
        Asm.stb a 1 100 5;
        Asm.ldb a 6 1 100;
        Asm.hlt a)
  in
  check int "ld" 0xCAFEBABE (reg m 3);
  check int "ldb low byte" 0xBE (reg m 4);
  check int "stb/ldb" 0x55 (reg m 6)

let test_cpu_copy_csum () =
  let m = fresh_machine () in
  let mem = Machine.mem m in
  let src = 0x10000 and dst = 0x20000 and len = 1000 in
  for i = 0 to len - 1 do
    Phys_mem.write_u8 mem (src + i) ((i * 31) land 0xFF)
  done;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm dst);
  Asm.movi a 2 (Asm.imm src);
  Asm.movi a 3 (Asm.imm len);
  Asm.copy a 1 2 3;
  Asm.csum a 4 1 3;
  Asm.hlt a;
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  ignore (Machine.run_until_halted m);
  check bool "copied" true
    (Phys_mem.read_bytes mem ~addr:src ~len
    = Phys_mem.read_bytes mem ~addr:dst ~len);
  check int "checksum matches reference"
    (Phys_mem.checksum mem ~addr:dst ~len)
    (reg m 4)

let test_cpu_rdtsc_monotonic () =
  let m, _ =
    run_program (fun a ->
        Asm.rdtsc a 1;
        Asm.nop a;
        Asm.nop a;
        Asm.rdtsc a 2;
        Asm.hlt a)
  in
  check bool "tsc advanced" true (reg m 2 > reg m 1)

(* -- Interrupt table plumbing -- *)

let gate_flags ~ring ~dpl = 1 lor (ring lsl 1) lor (dpl lsl 3)

let write_gate mem ~table ~vector ~handler ~ring ~dpl =
  Phys_mem.write_u32 mem (table + (8 * vector)) handler;
  Phys_mem.write_u32 mem (table + (8 * vector) + 4) (gate_flags ~ring ~dpl)

let test_cpu_software_interrupt () =
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 0);
  Asm.int_ a 48;
  (* handler returns here *)
  Asm.addi a 2 2 (Asm.imm 100);
  Asm.hlt a;
  Asm.label a "handler";
  Asm.addi a 2 2 (Asm.imm 1);
  Asm.iret a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:48
    ~handler:(Asm.symbol p "handler") ~ring:0 ~dpl:3;
  ignore (Machine.run_until_halted m);
  check int "handler then continuation" 101 (reg m 2)

let test_cpu_privilege_fault_ring3 () =
  (* STI at ring 3 must deliver #GP to the ring-0 handler. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  (* ring-0 setup *)
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0x9000);
  Asm.lstk a 0 1;
  (* drop to ring 3 via iret: frame = error, pc, flags(cpl=3), sp *)
  Asm.movi a 3 (Asm.imm 0x7000);
  Asm.push a 3 (* user sp *);
  Asm.movi a 3 (Asm.imm 0x3000) (* flags: cpl=3, if=0 *);
  Asm.push a 3;
  Asm.movi a 3 (Asm.lbl "user");
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "user";
  Asm.sti a (* must fault *);
  Asm.label a "unreachable";
  Asm.jmp a (Asm.lbl "unreachable");
  Asm.label a "gp_handler";
  Asm.movi a 5 (Asm.imm 0xFA17);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:Isa.vec_protection
    ~handler:(Asm.symbol p "gp_handler") ~ring:0 ~dpl:0;
  ignore (Machine.run_until_halted m);
  check int "gp handler ran" 0xFA17 (reg m 5);
  check int "back at ring 0" 0 (Cpu.cpl (Machine.cpu m))

let test_cpu_stack_switch_on_ring_change () =
  (* Interrupt from ring 3 must land on the ring-0 stack from LSTK. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0xA000);
  Asm.lstk a 0 1;
  Asm.movi a 3 (Asm.imm 0x7000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0x3000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.lbl "user");
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "user";
  Asm.int_ a 48;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "handler";
  Asm.mov a 6 Isa.sp;
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:48
    ~handler:(Asm.symbol p "handler") ~ring:0 ~dpl:3;
  ignore (Machine.run_until_halted m);
  (* 4 words pushed below the ring-0 entry stack top *)
  check int "switched stack" (0xA000 - 16) (reg m 6)

let test_cpu_int_gate_dpl_enforced () =
  (* INT 49 from ring 3 with dpl 0 must raise #GP instead. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0xA000);
  Asm.lstk a 0 1;
  Asm.movi a 3 (Asm.imm 0x7000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0x3000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.lbl "user");
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "user";
  Asm.int_ a 49;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "kernel_gate";
  Asm.movi a 5 (Asm.imm 0xBAD);
  Asm.hlt a;
  Asm.label a "gp";
  Asm.movi a 5 (Asm.imm 0x600D);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:49
    ~handler:(Asm.symbol p "kernel_gate") ~ring:0 ~dpl:0;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:Isa.vec_protection
    ~handler:(Asm.symbol p "gp") ~ring:0 ~dpl:0;
  ignore (Machine.run_until_halted m);
  check int "gp instead of gate" 0x600D (reg m 5)

let test_cpu_hardware_interrupt () =
  (* Program the PIT one-shot; the handler bumps a counter and halts. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 100);
  Asm.outi a (Asm.imm Vmm_hw.Machine.Ports.pit) 2 (* reload low *);
  Asm.movi a 2 (Asm.imm 0);
  Asm.outi a (Asm.imm (Vmm_hw.Machine.Ports.pit + 1)) 2;
  Asm.movi a 2 (Asm.imm 2);
  Asm.outi a (Asm.imm (Vmm_hw.Machine.Ports.pit + 2)) 2 (* one-shot *);
  Asm.sti a;
  Asm.label a "wait";
  Asm.jmp a (Asm.lbl "wait");
  Asm.label a "timer";
  Asm.movi a 7 (Asm.imm 0x7E57);
  (* EOI *)
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Vmm_hw.Machine.Ports.pic) 2;
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000
    ~vector:(Isa.vec_irq_base_default + Machine.Irq.timer)
    ~handler:(Asm.symbol p "timer") ~ring:0 ~dpl:0;
  ignore (Machine.run_until_halted ~limit:2_000_000 m);
  check int "timer handler ran" 0x7E57 (reg m 7);
  check int "pit fired once" 1 (Pit.ticks_fired (Machine.pit m))

let test_cpu_if_masks_interrupts () =
  (* With IF clear the PIT interrupt must stay pending. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 2 (Asm.imm 10);
  Asm.outi a (Asm.imm Vmm_hw.Machine.Ports.pit) 2;
  Asm.movi a 2 (Asm.imm 0);
  Asm.outi a (Asm.imm (Vmm_hw.Machine.Ports.pit + 1)) 2;
  Asm.movi a 2 (Asm.imm 2);
  Asm.outi a (Asm.imm (Vmm_hw.Machine.Ports.pit + 2)) 2;
  (* busy loop long enough for the one-shot to expire *)
  Asm.movi a 1 (Asm.imm 0);
  Asm.label a "loop";
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.cmpi a 1 (Asm.imm 50_000);
  Asm.jnz a (Asm.lbl "loop");
  Asm.hlt a;
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  ignore (Machine.run_until_halted ~limit:2_000_000 m);
  check bool "request latched, not delivered" true
    (Pic.requested (Machine.pic m) land 1 = 1);
  check Alcotest.int64 "no interrupt taken" 0L
    (Cpu.interrupts_taken (Machine.cpu m))

(* -- Paging -- *)

let build_identity_tables mem ~pd ~pt ~mbytes ~user =
  (* One page table covers 4 MiB; map [0, mbytes MiB) identity. *)
  let pages = mbytes * 256 in
  Phys_mem.write_u32 mem pd (Mmu.make_pte ~frame:pt ~writable:true ~user);
  for i = 0 to pages - 1 do
    Phys_mem.write_u32 mem
      (pt + (4 * i))
      (Mmu.make_pte ~frame:(i * 4096) ~writable:true ~user)
  done

let test_mmu_translate_and_bits () =
  let costs = Costs.default in
  let mem = Phys_mem.create ~size:(2 * 1024 * 1024) in
  let mmu = Mmu.create costs in
  build_identity_tables mem ~pd:0x4000 ~pt:0x5000 ~mbytes:1 ~user:false;
  let paddr, cyc = Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Read 0x1234 in
  check int "identity" 0x1234 paddr;
  check bool "miss charged" true (cyc > 0);
  let _, cyc2 = Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Read 0x1238 in
  check int "tlb hit free" 0 cyc2;
  let pte = Phys_mem.read_u32 mem (0x5000 + 4) in
  check bool "accessed set" true (pte land Mmu.pte_accessed <> 0);
  ignore (Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Write 0x1300);
  let pte = Phys_mem.read_u32 mem (0x5000 + 4) in
  check bool "dirty set" true (pte land Mmu.pte_dirty <> 0)

let test_mmu_faults () =
  let costs = Costs.default in
  let mem = Phys_mem.create ~size:(2 * 1024 * 1024) in
  let mmu = Mmu.create costs in
  build_identity_tables mem ~pd:0x4000 ~pt:0x5000 ~mbytes:1 ~user:false;
  (* unmapped: beyond 1 MiB *)
  (try
     ignore (Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Read 0x200000);
     Alcotest.fail "expected not-present fault"
   with Mmu.Page_fault f -> check bool "not present" true f.Mmu.not_present);
  (* user access to supervisor page *)
  (try
     ignore (Mmu.translate mmu mem ~ptb:0x4000 ~cpl:3 Mmu.Read 0x1000);
     Alcotest.fail "expected protection fault"
   with Mmu.Page_fault f -> check bool "protection" false f.Mmu.not_present);
  (* write to read-only page *)
  Phys_mem.write_u32 mem (0x5000 + 8)
    (Mmu.make_pte ~frame:0x2000 ~writable:false ~user:false);
  Mmu.flush mmu;
  try
    ignore (Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Write 0x2000);
    Alcotest.fail "expected write fault"
  with Mmu.Page_fault f -> check bool "write prot" false f.Mmu.not_present

let test_mmu_probe () =
  let mem = Phys_mem.create ~size:(2 * 1024 * 1024) in
  build_identity_tables mem ~pd:0x4000 ~pt:0x5000 ~mbytes:1 ~user:true;
  (match Mmu.probe mem ~ptb:0x4000 0x3000 with
   | Some pte ->
     check int "frame" 0x3000 (Mmu.frame_of pte);
     check bool "user" true (Mmu.is_user pte)
   | None -> Alcotest.fail "expected mapping");
  check bool "unmapped probe" true (Mmu.probe mem ~ptb:0x4000 0x600000 = None)

let test_mmu_write_hit_dirty_cached () =
  (* The TLB caches the dirty state: after the first write marks the PTE,
     later write hits must not re-read or re-write it.  Pin that by clearing
     the PTE's dirty bit behind the TLB's back — a write hit must leave it
     clear, and only a flush (which drops the cached state) re-sets it. *)
  let costs = Costs.default in
  let mem = Phys_mem.create ~size:(2 * 1024 * 1024) in
  let mmu = Mmu.create costs in
  build_identity_tables mem ~pd:0x4000 ~pt:0x5000 ~mbytes:1 ~user:false;
  let pte_addr = 0x5000 + 4 (* vpn 1 *) in
  let pte_dirty () = Phys_mem.read_u32 mem pte_addr land Mmu.pte_dirty <> 0 in
  let _, fill = Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Read 0x1000 in
  check bool "fill charged" true (fill > 0);
  check bool "read fill leaves clean" false (pte_dirty ());
  let _, hit = Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Write 0x1004 in
  check int "write hit free" 0 hit;
  check bool "first write sets dirty" true (pte_dirty ());
  Phys_mem.write_u32 mem pte_addr
    (Phys_mem.read_u32 mem pte_addr land lnot Mmu.pte_dirty);
  ignore (Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Write 0x1008);
  check bool "later write hits skip the PTE" false (pte_dirty ());
  Mmu.flush mmu;
  let _, refill = Mmu.translate mmu mem ~ptb:0x4000 ~cpl:0 Mmu.Write 0x100C in
  check bool "miss after flush" true (refill > 0);
  check bool "dirty re-set after flush" true (pte_dirty ());
  check bool "hits counted" true (Int64.compare (Mmu.tlb_hits mmu) 2L >= 0)

let test_cpu_page_fault_delivery () =
  (* Enable paging, then touch an unmapped page; #PF handler records the
     faulting address from the error slot. *)
  let m = fresh_machine () in
  let mem = Machine.mem m in
  build_identity_tables mem ~pd:0x40000 ~pt:0x41000 ~mbytes:1 ~user:false;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0x40000);
  Asm.lptb a 1;
  Asm.movi a 2 (Asm.imm 0x500000);
  Asm.ld a 3 2 0 (* faults: beyond mapped 1 MiB *);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "pf";
  Asm.ld a 4 Isa.sp 0 (* error slot = faulting vaddr *);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate mem ~table:0x2000 ~vector:Isa.vec_page_fault
    ~handler:(Asm.symbol p "pf") ~ring:0 ~dpl:0;
  ignore (Machine.run_until_halted m);
  check int "faulting address" 0x500000 (reg m 4)

(* -- Devices -- *)

let test_pic_priority_and_eoi () =
  let pic = Pic.create () in
  Pic.raise_irq pic 5;
  Pic.raise_irq pic 2;
  check (Alcotest.option int) "highest priority first"
    (Some (Isa.vec_irq_base_default + 2))
    (Pic.ack pic);
  (* 5 still pending but blocked? line 5 is lower priority than in-service 2 *)
  check bool "blocked by in-service" false (Pic.pending pic);
  Pic.io_write pic 0 0x20 (* EOI *);
  check (Alcotest.option int) "then lower priority"
    (Some (Isa.vec_irq_base_default + 5))
    (Pic.ack pic);
  Pic.io_write pic 0 0x20;
  check bool "drained" false (Pic.pending pic)

let test_pic_higher_priority_preempts_service () =
  let pic = Pic.create () in
  Pic.raise_irq pic 5;
  ignore (Pic.ack pic);
  Pic.raise_irq pic 1;
  check bool "higher priority deliverable over in-service 5" true
    (Pic.pending pic)

let test_pic_mask () =
  let pic = Pic.create () in
  Pic.io_write pic 1 0x01 (* mask line 0 *);
  Pic.raise_irq pic 0;
  check bool "masked" false (Pic.pending pic);
  Pic.io_write pic 1 0x00;
  check bool "unmasked" true (Pic.pending pic)

let test_pic_intr_line_callback () =
  let pic = Pic.create () in
  let level = ref false in
  Pic.set_intr pic (fun l -> level := l);
  Pic.raise_irq pic 3;
  check bool "asserted" true !level;
  ignore (Pic.ack pic);
  Pic.io_write pic 0 0x20;
  check bool "deasserted" false !level

let test_pit_periodic () =
  let engine = Engine.create () in
  let fired = ref 0 in
  let costs = Costs.default in
  let pit = Pit.create ~engine ~costs ~raise_irq:(fun () -> incr fired) () in
  (* 1000 input ticks per period *)
  Pit.io_write pit 0 1000;
  Pit.io_write pit 1 0;
  Pit.io_write pit 2 1;
  let second = Costs.cycles_of_seconds costs 1.0 in
  Engine.run_until engine ~time:second;
  (* 1193182/1000 ≈ 1193 expiries in one second *)
  check bool "rate" true (abs (!fired - 1193) <= 2);
  Pit.io_write pit 2 0;
  let before = !fired in
  Engine.run_until engine ~time:(Int64.mul second 2L);
  check int "stopped" before !fired

let test_uart_wire () =
  let engine = Engine.create () in
  let costs = Costs.default in
  let uart = Uart.create ~engine ~costs () in
  let received = ref [] in
  Uart.set_on_tx uart (fun b -> received := b :: !received);
  Uart.io_write uart 0 (Char.code 'h');
  Uart.io_write uart 0 (Char.code 'i');
  check int "tx busy" 0 (Uart.io_read uart 1 land 2);
  ignore (Engine.run_until_idle engine);
  check (Alcotest.list int) "bytes in order"
    [ Char.code 'h'; Char.code 'i' ]
    (List.rev !received);
  check int "tx idle" 2 (Uart.io_read uart 1 land 2)

let test_uart_rx_irq () =
  let engine = Engine.create () in
  let uart = Uart.create ~engine ~costs:Costs.default () in
  let irqs = ref 0 in
  Uart.set_irq uart (fun () -> incr irqs);
  Uart.inject_rx uart 0x41;
  check int "no irq while disabled" 0 !irqs;
  Uart.io_write uart 2 1 (* enable: pending byte raises at once *);
  check int "irq on enable with pending" 1 !irqs;
  check int "status rx ready" 1 (Uart.io_read uart 1 land 1);
  check int "data" 0x41 (Uart.io_read uart 0);
  check int "drained" 0 (Uart.io_read uart 1 land 1)

let test_scsi_read () =
  let m = fresh_machine () in
  let scsi = Machine.scsi m and bus = Machine.bus m in
  let base = Machine.Ports.scsi in
  Io_bus.write bus base 1 (* target 1 *);
  Io_bus.write bus (base + 1) 4 (* lba 4 *);
  Io_bus.write bus (base + 2) 2048 (* bytes *);
  Io_bus.write bus (base + 3) 0x30000 (* dma *);
  Io_bus.write bus (base + 4) 1 (* read *);
  check int "busy bit" (1 lsl 17) (Io_bus.read bus (base + 5) land (1 lsl 17));
  ignore (Engine.run_until_idle (Machine.engine m));
  check int "done bit" 2 (Io_bus.read bus (base + 5) land 2);
  let off = 4 * Scsi.sector_size in
  let ok = ref true in
  for i = 0 to 2047 do
    if
      Phys_mem.read_u8 (Machine.mem m) (0x30000 + i)
      <> Scsi.pattern_byte ~target:1 ~offset:(off + i)
    then ok := false
  done;
  check bool "pattern data" true !ok;
  check bool "irq raised" true
    (Pic.requested (Machine.pic m) land (1 lsl Machine.Irq.scsi) <> 0);
  Io_bus.write bus (base + 6) 1 (* ack *);
  check int "done cleared" 0 (Io_bus.read bus (base + 5) land 2);
  check int "one read" 1 (Scsi.reads_completed scsi)

let test_scsi_write_readback () =
  let m = fresh_machine () in
  let bus = Machine.bus m and mem = Machine.mem m in
  let base = Machine.Ports.scsi in
  Phys_mem.fill mem ~addr:0x30000 ~len:512 0xAB;
  Io_bus.write bus base 0;
  Io_bus.write bus (base + 1) 10;
  Io_bus.write bus (base + 2) 512;
  Io_bus.write bus (base + 3) 0x30000;
  Io_bus.write bus (base + 4) 2 (* write *);
  ignore (Engine.run_until_idle (Machine.engine m));
  Io_bus.write bus (base + 6) 0;
  (* read it back elsewhere *)
  Io_bus.write bus base 0;
  Io_bus.write bus (base + 1) 10;
  Io_bus.write bus (base + 2) 512;
  Io_bus.write bus (base + 3) 0x40000;
  Io_bus.write bus (base + 4) 1;
  ignore (Engine.run_until_idle (Machine.engine m));
  check int "written data read back" 0xAB (Phys_mem.read_u8 mem 0x40000);
  check int "last byte too" 0xAB (Phys_mem.read_u8 mem (0x40000 + 511))

let test_scsi_streaming_rate () =
  (* Completion time of a 1 MiB read must match the configured media rate. *)
  let m = fresh_machine () in
  let bus = Machine.bus m in
  let base = Machine.Ports.scsi in
  let costs = Machine.costs m in
  let bytes = 1024 * 1024 in
  Io_bus.write bus base 0;
  Io_bus.write bus (base + 1) 0;
  Io_bus.write bus (base + 2) bytes;
  Io_bus.write bus (base + 3) 0x100000;
  let t0 = Engine.now (Machine.engine m) in
  Io_bus.write bus (base + 4) 1;
  ignore (Engine.run_until_idle (Machine.engine m));
  let elapsed = Int64.to_float (Int64.sub (Engine.now (Machine.engine m)) t0) in
  let expected =
    float_of_int (8 * bytes) /. (costs.Costs.disk_rate_mbps *. 1e6)
    *. costs.Costs.cpu_hz
  in
  check bool "rate within 5%" true
    (abs_float (elapsed -. expected) /. expected < 0.05)

let test_nic_tx () =
  let m = fresh_machine () in
  let nic = Machine.nic m and bus = Machine.bus m and mem = Machine.mem m in
  let frames = ref [] in
  Nic.set_on_frame nic (fun f -> frames := f :: !frames);
  let base = Machine.Ports.nic in
  Phys_mem.fill mem ~addr:0x50000 ~len:100 0x5A;
  Io_bus.write bus base 0x50000;
  Io_bus.write bus (base + 1) 100;
  Io_bus.write bus (base + 2) 1;
  ignore (Engine.run_until_idle (Machine.engine m));
  (match !frames with
   | [ f ] ->
     check int "length" 100 (Bytes.length f);
     check int "payload" 0x5A (Char.code (Bytes.get f 50))
   | _ -> Alcotest.fail "expected one frame");
  check int "counter" 1 (Nic.frames_sent nic);
  check bool "irq" true
    (Pic.requested (Machine.pic m) land (1 lsl Machine.Irq.nic) <> 0);
  check int "completion pending" 2 (Io_bus.read bus (base + 3) land 2);
  Io_bus.write bus (base + 4) 1;
  check int "completion consumed" 0 (Io_bus.read bus (base + 3) land 2)

let test_nic_wire_rate () =
  (* Two back-to-back 1500-byte frames serialize sequentially at 1 Gbps. *)
  let m = fresh_machine () in
  let nic = Machine.nic m and bus = Machine.bus m in
  let times = ref [] in
  Nic.set_on_frame nic (fun _ -> times := Engine.now (Machine.engine m) :: !times);
  let base = Machine.Ports.nic in
  Io_bus.write bus base 0x50000;
  Io_bus.write bus (base + 1) 1500;
  Io_bus.write bus (base + 2) 1;
  Io_bus.write bus (base + 2) 1;
  ignore (Engine.run_until_idle (Machine.engine m));
  match List.rev !times with
  | [ t1; t2 ] ->
    let costs = Machine.costs m in
    let gap = Int64.to_float (Int64.sub t2 t1) /. costs.Costs.cpu_hz in
    let expected = 1500.0 *. 8.0 /. 1e9 in
    check bool "serialization gap" true (abs_float (gap -. expected) /. expected < 0.2)
  | _ -> Alcotest.fail "expected two frames"

let test_nic_clear_on_frame () =
  (* Detaching the consumer must stop the callback (and the per-frame copy
     it forces); re-attaching brings it back. *)
  let m = fresh_machine () in
  let nic = Machine.nic m and bus = Machine.bus m in
  let calls = ref 0 in
  Nic.set_on_frame nic (fun _ -> incr calls);
  Nic.clear_on_frame nic;
  let base = Machine.Ports.nic in
  let send () =
    Io_bus.write bus base 0x50000;
    Io_bus.write bus (base + 1) 100;
    Io_bus.write bus (base + 2) 1;
    ignore (Engine.run_until_idle (Machine.engine m))
  in
  send ();
  check int "detached consumer not called" 0 !calls;
  Nic.set_on_frame nic (fun _ -> incr calls);
  send ();
  check int "re-attached consumer called" 1 !calls;
  check int "both frames sent" 2 (Nic.frames_sent nic)

let test_nic_rx () =
  let m = fresh_machine () in
  let nic = Machine.nic m and bus = Machine.bus m and mem = Machine.mem m in
  let base = Machine.Ports.nic in
  Nic.inject_rx nic (Bytes.of_string "hello-frame");
  check int "rx waiting" 8 (Io_bus.read bus (base + 3) land 8);
  check int "rx length" 11 (Io_bus.read bus (base + 7));
  Io_bus.write bus (base + 6) 0x60000;
  Io_bus.write bus (base + 2) 2;
  check bool "frame in memory" true
    (Bytes.to_string (Phys_mem.read_bytes mem ~addr:0x60000 ~len:11)
    = "hello-frame")

let test_io_bus_unclaimed () =
  let bus = Io_bus.create () in
  check int "floating read" 0xFFFFFFFF (Io_bus.read bus 0x999);
  Io_bus.write bus 0x999 42 (* must not raise *)

let test_io_bus_conflict () =
  let bus = Io_bus.create () in
  Io_bus.register bus ~name:"a" ~base:0x10 ~count:4
    ~read:(fun _ -> 0)
    ~write:(fun _ _ -> ());
  Alcotest.check_raises "conflict"
    (Io_bus.Port_conflict { port = 0x12; owner = "a" })
    (fun () ->
      Io_bus.register bus ~name:"b" ~base:0x12 ~count:2
        ~read:(fun _ -> 0)
        ~write:(fun _ _ -> ()))

let test_io_permission_bitmap () =
  (* OUT at ring 3 to a non-permitted port must #GP; permitted goes through. *)
  let m = fresh_machine () in
  let hits = ref [] in
  Io_bus.register (Machine.bus m) ~name:"probe" ~base:0x500 ~count:2
    ~read:(fun _ -> 0)
    ~write:(fun off v -> hits := (off, v) :: !hits);
  Cpu.allow_port (Machine.cpu m) 0x501 true;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0xA000);
  Asm.lstk a 0 1;
  Asm.movi a 3 (Asm.imm 0x7000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0x3000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.lbl "user");
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "user";
  Asm.movi a 2 (Asm.imm 77);
  Asm.outi a (Asm.imm 0x501) 2 (* permitted: direct *);
  Asm.outi a (Asm.imm 0x500) 2 (* denied: #GP *);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "gp";
  Asm.ld a 5 Isa.sp 0 (* error = port *);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate (Machine.mem m) ~table:0x2000 ~vector:Isa.vec_protection
    ~handler:(Asm.symbol p "gp") ~ring:0 ~dpl:0;
  ignore (Machine.run_until_halted m);
  check (Alcotest.list (Alcotest.pair int int)) "only permitted write landed"
    [ (1, 77) ] !hits;
  check int "gp error carries port" 0x500 (reg m 5)

(* -- CPU edge cases -- *)

let test_cpu_fetch_across_page_boundary () =
  (* Data directives can misalign code; a fetch straddling two pages must
     still decode (byte-at-a-time translation path). *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:(0x2000 - 4) () in
  Asm.space a 4 (* push the first instruction to 0x2000 - wait, origin
                   already offsets; place an instruction at 0xFFC *);
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  (* hand-place an instruction straddling 0x2FFC..0x3003 *)
  let mem = Machine.mem m in
  Phys_mem.load_bytes mem ~addr:0x2FFC (Isa.encode (Isa.Movi (1, 0x1234)));
  Phys_mem.load_bytes mem ~addr:0x3004 (Isa.encode Isa.Hlt);
  Vmm_hw.Cpu.set_pc (Machine.cpu m) 0x2FFC;
  ignore (Machine.run_until_halted m);
  check int "instruction decoded across boundary" 0x1234 (reg m 1)

let test_cpu_unaligned_u32_across_pages () =
  let m, _ =
    run_program (fun a ->
        Asm.movi a 1 (Asm.imm 0x2FFE) (* straddles 0x2FFF/0x3000 *);
        Asm.movi a 2 (Asm.imm 0xA1B2C3D4);
        Asm.st a 1 0 2;
        Asm.ld a 3 1 0;
        Asm.hlt a)
  in
  check int "unaligned store/load across pages" 0xA1B2C3D4 (reg m 3)

let test_cpu_copy_across_pages () =
  let m = fresh_machine () in
  let mem = Machine.mem m in
  for i = 0 to 9999 do
    Phys_mem.write_u8 mem (0x2800 + i) ((i * 13) land 0xFF)
  done;
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0x8800) (* destination also crosses pages *);
  Asm.movi a 2 (Asm.imm 0x2800);
  Asm.movi a 3 (Asm.imm 10000);
  Asm.copy a 1 2 3;
  Asm.hlt a;
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  ignore (Machine.run_until_halted m);
  check bool "multi-page copy" true
    (Phys_mem.read_bytes mem ~addr:0x2800 ~len:10000
    = Phys_mem.read_bytes mem ~addr:0x8800 ~len:10000)

let test_cpu_iret_to_ring3_with_pending_step () =
  (* IRET restoring a flags word with TF set must trap after the first
     user instruction. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 1 (Asm.imm 0xA000);
  Asm.lstk a 0 1;
  Asm.movi a 3 (Asm.imm 0x7000);
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm (0x3000 lor 0x100)) (* ring 3, TF *);
  Asm.push a 3;
  Asm.movi a 3 (Asm.lbl "user");
  Asm.push a 3;
  Asm.movi a 3 (Asm.imm 0);
  Asm.push a 3;
  Asm.iret a;
  Asm.label a "user";
  Asm.movi a 5 (Asm.imm 1);
  Asm.movi a 5 (Asm.imm 2);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "step_handler";
  Asm.mov a 6 5 (* captures r5 at trap time *);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  let gate_flags = 1 in
  Phys_mem.write_u32 (Machine.mem m) (0x2000 + (8 * Isa.vec_debug_step))
    (Asm.symbol p "step_handler");
  Phys_mem.write_u32 (Machine.mem m)
    (0x2000 + (8 * Isa.vec_debug_step) + 4)
    gate_flags;
  ignore (Machine.run_until_halted m);
  check int "trapped after exactly one instruction" 1 (reg m 6)

(* -- Cross-checking properties -- *)

let prop_mmu_probe_agrees_with_translate =
  (* For random guest-style mappings, a successful translate and probe
     must agree on the physical frame; a probe miss must mean translate
     faults. *)
  QCheck.Test.make ~name:"mmu probe agrees with translate" ~count:100
    QCheck.(
      pair (int_bound 255)
        (list_of_size (Gen.int_range 1 32) (pair (int_bound 255) (int_bound 255))))
    (fun (probe_page, mappings) ->
      let mem = Phys_mem.create ~size:(4 * 1024 * 1024) in
      let mmu = Mmu.create Costs.default in
      let pd = 0x200000 and pt = 0x201000 in
      Phys_mem.write_u32 mem pd (Mmu.make_pte ~frame:pt ~writable:true ~user:true);
      List.iter
        (fun (vpage, ppage) ->
          Phys_mem.write_u32 mem
            (pt + (4 * (vpage land 0xFF)))
            (Mmu.make_pte ~frame:((ppage land 0xFF) * 4096) ~writable:true ~user:true))
        mappings;
      let vaddr = (probe_page land 0xFF) * 4096 in
      let probe = Mmu.probe mem ~ptb:pd vaddr in
      let translate =
        try Some (fst (Mmu.translate mmu mem ~ptb:pd ~cpl:3 Mmu.Read vaddr))
        with Mmu.Page_fault _ -> None
      in
      match (probe, translate) with
      | Some pte, Some paddr -> Mmu.frame_of pte = paddr
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_disassembly_roundtrip =
  (* Assembling a random instruction list and disassembling from memory
     yields the same instruction sequence. *)
  QCheck.Test.make ~name:"assemble/disassemble roundtrip" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 64) instr_arbitrary)
    (fun instrs ->
      let a = Asm.create ~origin:0x2000 () in
      List.iteri
        (fun i instr ->
          ignore i;
          Asm.instr a instr)
        instrs;
      let p = Asm.assemble a in
      let mem = Phys_mem.create ~size:(64 * 1024) in
      Asm.load p mem;
      List.for_all
        (fun (i, instr) -> Isa.read mem (0x2000 + (i * Isa.width)) = instr)
        (List.mapi (fun i instr -> (i, instr)) instrs))

let test_machine_determinism () =
  (* Two machines running the same program for the same simulated time
     must agree on every observable. *)
  let run () =
    let m = fresh_machine () in
    let a = Asm.create ~origin:0x1000 () in
    Asm.movi a Isa.sp (Asm.imm 0x8000);
    Asm.movi a 1 (Asm.imm 0);
    Asm.label a "loop";
    Asm.addi a 1 1 (Asm.imm 1);
    Asm.movi a 2 (Asm.imm 0x30000);
    Asm.st a 2 0 1;
    Asm.jmp a (Asm.lbl "loop");
    Machine.boot m (Asm.assemble a) ~entry:0x1000;
    Machine.run_seconds m 0.001;
    ( Cpu.read_reg (Machine.cpu m) 1,
      Cpu.instructions_retired (Machine.cpu m),
      Vmm_sim.Stats.busy_cycles (Machine.load m) )
  in
  let a = run () and b = run () in
  check bool "identical observables" true (a = b)

(* -- Load accounting -- *)

let test_machine_idle_vs_busy () =
  (* A program that halts immediately: almost all time is idle. *)
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.hlt a;
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  (* a far-future event so the idle skip has a target *)
  ignore
    (Engine.at (Machine.engine m)
       ~time:(Costs.cycles_of_seconds (Machine.costs m) 0.01)
       (fun () -> ()));
  let t0 = Machine.now m and b0 = Vmm_sim.Stats.busy_cycles (Machine.load m) in
  Machine.run_seconds m 0.01;
  let u = Machine.utilization m ~since:t0 ~since_busy:b0 in
  check bool "mostly idle" true (u < 0.001)

let test_machine_busy_loop () =
  let m = fresh_machine () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.label a "loop";
  Asm.jmp a (Asm.lbl "loop");
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  let t0 = Machine.now m and b0 = Vmm_sim.Stats.busy_cycles (Machine.load m) in
  Machine.run_for m ~cycles:100_000L;
  let u = Machine.utilization m ~since:t0 ~since_busy:b0 in
  check bool "fully busy" true (u > 0.99)

(* -- Decoded-instruction cache -- *)

let test_icache_self_modifying () =
  (* The guest overwrites an instruction it already executed; the refetch
     must observe the store and re-decode, not replay the cached decode. *)
  let enc = Isa.encode (Isa.Movi (1, 99)) in
  let word off =
    Char.code (Bytes.get enc off)
    lor (Char.code (Bytes.get enc (off + 1)) lsl 8)
    lor (Char.code (Bytes.get enc (off + 2)) lsl 16)
    lor (Char.code (Bytes.get enc (off + 3)) lsl 24)
  in
  let m, _ =
    run_program (fun a ->
        (* a few store-free iterations first, so some refetches hit *)
        Asm.movi a 3 (Asm.imm 0);
        Asm.label a "warm";
        Asm.addi a 3 3 (Asm.imm 1);
        Asm.cmpi a 3 (Asm.imm 3);
        Asm.jnz a (Asm.lbl "warm");
        Asm.movi a 5 (Asm.imm 0);
        Asm.label a "patchme";
        Asm.movi a 1 (Asm.imm 1);
        Asm.addi a 5 5 (Asm.imm 1);
        Asm.cmpi a 5 (Asm.imm 2);
        Asm.jz a (Asm.lbl "done");
        Asm.movi a 6 (Asm.imm (word 0));
        Asm.movi a 7 (Asm.imm (word 4));
        Asm.movi a 8 (Asm.lbl "patchme");
        Asm.st a 8 0 6;
        Asm.st a 8 4 7;
        Asm.jmp a (Asm.lbl "patchme");
        Asm.label a "done";
        Asm.hlt a)
  in
  let cpu = Machine.cpu m in
  check int "patched instruction executed" 99 (reg m 1);
  check bool "invalidation counted" true (Cpu.icache_invalidations cpu >= 1);
  check bool "straight-line refetches hit" true (Cpu.icache_hits cpu > 0)

let test_icache_breakpoint_patch () =
  (* Host-side text patching — exactly what the debug stub's breakpoint
     plant/remove does — must invalidate the cached decode both ways. *)
  let m = fresh_machine () in
  let mem = Machine.mem m and cpu = Machine.cpu m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 0);
  Asm.label a "loop";
  Asm.addi a 2 2 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Asm.label a "handler";
  Asm.movi a 9 (Asm.imm 1);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate mem ~table:0x2000 ~vector:Isa.vec_breakpoint
    ~handler:(Asm.symbol p "handler") ~ring:0 ~dpl:0;
  ignore (Machine.run_steps m 50) (* warm the cache on the loop body *);
  let site = Asm.symbol p "loop" in
  let saved = Phys_mem.read_bytes mem ~addr:site ~len:Isa.width in
  let inval0 = Cpu.icache_invalidations cpu in
  Isa.write mem site Isa.Brk;
  check bool "halted in handler" true (Machine.run_until_halted ~limit:100 m);
  check int "breakpoint handler ran" 1 (reg m 9);
  check bool "plant invalidated cached decode" true
    (Cpu.icache_invalidations cpu > inval0);
  let count_at_bp = reg m 2 in
  Phys_mem.load_bytes mem ~addr:site saved;
  Cpu.set_pc cpu site;
  Cpu.set_halted cpu false;
  ignore (Machine.run_steps m 10);
  check bool "loop resumed after removal" true (reg m 2 > count_at_bp)

let test_icache_dma_invalidation () =
  (* SCSI DMA lands byte-identical data on top of executing code: the
     generation bump must force a re-decode even though nothing changed,
     and the program must keep running unperturbed. *)
  let m = fresh_machine () in
  let cpu = Machine.cpu m and bus = Machine.bus m in
  let base = Machine.Ports.scsi in
  let a = Asm.create ~origin:0x1000 () in
  Asm.label a "loop";
  Asm.movi a 1 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  ignore (Machine.run_steps m 40) (* warm the cache *);
  let issue cmd =
    Io_bus.write bus base 0 (* target *);
    Io_bus.write bus (base + 1) 7 (* lba *);
    Io_bus.write bus (base + 2) 512 (* bytes *);
    Io_bus.write bus (base + 3) 0x1000 (* dma over the loop's text *);
    Io_bus.write bus (base + 4) cmd;
    ignore (Engine.run_until_idle (Machine.engine m));
    Io_bus.write bus (base + 6) 3 (* ack *)
  in
  issue 2 (* write: latch the code bytes onto the disk *);
  let inval0 = Cpu.icache_invalidations cpu in
  issue 1 (* read: DMA the same bytes back over the cached text *);
  ignore (Machine.run_steps m 20);
  check bool "dma invalidated cached text" true
    (Cpu.icache_invalidations cpu > inval0);
  check int "program unperturbed" 1 (reg m 1)

let test_icache_set_ptb_remap () =
  (* Same virtual pc, different physical frame after a PTB reload: the
     physically-tagged cache must miss and decode the new frame's bytes. *)
  let m = fresh_machine () in
  let mem = Machine.mem m and cpu = Machine.cpu m in
  build_identity_tables mem ~pd:0x40000 ~pt:0x41000 ~mbytes:1 ~user:false;
  let vaddr = 0x8000 in
  let pte_addr = 0x41000 + (4 * (vaddr / 4096)) in
  let place frame value =
    Phys_mem.write_u32 mem pte_addr
      (Mmu.make_pte ~frame ~writable:true ~user:false);
    Isa.write mem frame (Isa.Movi (1, value));
    Isa.write mem (frame + Isa.width) (Isa.Jmp vaddr)
  in
  place 0x10000 11;
  Cpu.set_ptb cpu 0x40000;
  Cpu.set_pc cpu vaddr;
  ignore (Machine.run_steps m 20);
  check int "old frame's code" 11 (reg m 1);
  let misses0 = Cpu.icache_misses cpu in
  place 0x11000 22;
  Cpu.set_ptb cpu 0x40000 (* the guest's lptb remap idiom *);
  ignore (Machine.run_steps m 20);
  check int "new frame's code" 22 (reg m 1);
  check bool "remap re-decoded" true (Cpu.icache_misses cpu > misses0)

let test_fetch_beyond_ram_machine_check () =
  (* A jump past the end of physical memory (identity map: paging off) must
     deliver a machine check, exactly as before the decoded-instruction
     cache — the icache generation probe must never read out-of-range
     granules. *)
  let m = fresh_machine () in
  let mem = Machine.mem m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 9 (Asm.imm 0);
  Asm.jmp a (Asm.imm 0x400000) (* 4 MiB: past the machine's 2 MiB of RAM *);
  Asm.label a "handler";
  Asm.movi a 9 (Asm.imm 1);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate mem ~table:0x2000 ~vector:Isa.vec_machine_check
    ~handler:(Asm.symbol p "handler") ~ring:0 ~dpl:0;
  check bool "halted in handler" true (Machine.run_until_halted ~limit:100 m);
  check int "machine check delivered" 1 (reg m 9)

(* -- Block translator (threaded-code JIT) -- *)

(* The translator only engages on the batched dispatch path
   ([Machine.run_until]/[run_for]/[run_seconds] -> [Cpu.run_batch]);
   [run_steps] and [run_until_halted] deliberately stay per-instruction.
   Every test here therefore drives the machine by cycle budget. *)

let run_batched ?(jit = true) ~cycles build =
  let m = fresh_machine () in
  Cpu.set_jit_enabled (Machine.cpu m) jit;
  let a = Asm.create ~origin:0x1000 () in
  build a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  Machine.run_for m ~cycles;
  (m, p)

let test_jit_compiles_and_chains () =
  let m, _ =
    run_batched ~cycles:100_000L (fun a ->
        Asm.movi a Isa.sp (Asm.imm 0x8000);
        Asm.movi a 2 (Asm.imm 0);
        Asm.label a "loop";
        Asm.call a (Asm.lbl "fn");
        Asm.addi a 2 2 (Asm.imm 1);
        Asm.jmp a (Asm.lbl "loop");
        Asm.label a "fn";
        Asm.addi a 3 3 (Asm.imm 1);
        Asm.ret a)
  in
  let cpu = Machine.cpu m in
  check bool "progress made" true (reg m 2 > 0);
  check bool "blocks compiled" true (Cpu.blocks_compiled cpu > 0);
  check bool "block cache hits" true (Cpu.block_hits cpu > 0);
  check bool "superblock chains followed" true
    (Cpu.block_chain_follows cpu > 0)

(* A workload touching every compiled op class: ALU, memory, stack,
   flags, a multiply, and a conditional back-edge. *)
let jit_workload a =
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0);
  Asm.movi a 4 (Asm.imm 0x4000);
  Asm.label a "loop";
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.st a 4 0 1;
  Asm.ld a 5 4 0;
  Asm.add a 6 6 5;
  Asm.mul a 7 1 5;
  Asm.push a 6;
  Asm.pop a 8;
  Asm.cmpi a 1 (Asm.imm 10_000_000);
  Asm.jnz a (Asm.lbl "loop");
  Asm.hlt a

let test_jit_on_off_identical () =
  (* Same program, same cycle budget, translator on vs off: every
     architectural observable — clock, retirement count, busy cycles,
     registers, pc, flags — must be bit-identical. *)
  let observe jit =
    let m, _ = run_batched ~jit ~cycles:200_000L jit_workload in
    let cpu = Machine.cpu m in
    ( Machine.now m,
      Cpu.instructions_retired cpu,
      Vmm_sim.Stats.busy_cycles (Machine.load m),
      List.map (fun r -> Cpu.read_reg cpu r) [ 1; 4; 5; 6; 7; 8 ],
      Cpu.pc cpu,
      Cpu.flags_word cpu,
      Cpu.blocks_compiled cpu > 0 )
  in
  let now_on, ret_on, busy_on, regs_on, pc_on, fl_on, compiled = observe true in
  let now_off, ret_off, busy_off, regs_off, pc_off, fl_off, _ =
    observe false
  in
  check bool "translator engaged" true compiled;
  check bool "same clock" true (now_on = now_off);
  check bool "same retirement count" true (ret_on = ret_off);
  check bool "same busy cycles" true (busy_on = busy_off);
  check bool "same registers" true (regs_on = regs_off);
  check int "same pc" pc_off pc_on;
  check int "same flags" fl_off fl_on

let test_jit_self_modifying () =
  (* The guest patches an instruction inside a block it already
     executed: the store lands on compiled text, the generation check
     must invalidate the block, and the re-compiled block must execute
     the new bytes. *)
  let enc = Isa.encode (Isa.Movi (1, 99)) in
  let word off =
    Char.code (Bytes.get enc off)
    lor (Char.code (Bytes.get enc (off + 1)) lsl 8)
    lor (Char.code (Bytes.get enc (off + 2)) lsl 16)
    lor (Char.code (Bytes.get enc (off + 3)) lsl 24)
  in
  let m, _ =
    run_batched ~cycles:50_000L (fun a ->
        Asm.movi a 5 (Asm.imm 0);
        (* enter via a jump so [patchme] heads its own block — the loop
           back-edge then re-dispatches the patched block at the same
           key and must see the invalidation *)
        Asm.jmp a (Asm.lbl "patchme");
        Asm.label a "patchme";
        Asm.movi a 1 (Asm.imm 1);
        Asm.addi a 5 5 (Asm.imm 1);
        Asm.cmpi a 5 (Asm.imm 2);
        Asm.jz a (Asm.lbl "done");
        Asm.movi a 6 (Asm.imm (word 0));
        Asm.movi a 7 (Asm.imm (word 4));
        Asm.movi a 8 (Asm.lbl "patchme");
        Asm.st a 8 0 6;
        Asm.st a 8 4 7;
        Asm.jmp a (Asm.lbl "patchme");
        Asm.label a "done";
        Asm.hlt a)
  in
  let cpu = Machine.cpu m in
  check bool "halted at done" true (Cpu.halted cpu);
  check int "patched instruction executed" 99 (reg m 1);
  check bool "compiled text invalidated" true
    (Cpu.block_invalidations cpu >= 1)

let test_jit_dma_invalidation () =
  (* Device DMA over compiled text: the block must re-validate against
     the bumped write generations and recompile, even though the DMA'd
     bytes are identical. *)
  let m = fresh_machine () in
  let cpu = Machine.cpu m and bus = Machine.bus m in
  let base = Machine.Ports.scsi in
  let a = Asm.create ~origin:0x1000 () in
  Asm.label a "loop";
  Asm.movi a 1 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  Machine.run_for m ~cycles:20_000L (* compile + warm the loop block *);
  check bool "loop block compiled" true (Cpu.blocks_compiled cpu > 0);
  let issue cmd =
    Io_bus.write bus base 0 (* target *);
    Io_bus.write bus (base + 1) 7 (* lba *);
    Io_bus.write bus (base + 2) 512 (* bytes *);
    Io_bus.write bus (base + 3) 0x1000 (* dma over the loop's text *);
    Io_bus.write bus (base + 4) cmd;
    ignore (Engine.run_until_idle (Machine.engine m));
    Io_bus.write bus (base + 6) 3 (* ack *)
  in
  issue 2 (* write: latch the code bytes onto the disk *);
  let inval0 = Cpu.block_invalidations cpu in
  issue 1 (* read: DMA the same bytes back over the compiled text *);
  Machine.run_for m ~cycles:20_000L;
  check bool "dma invalidated compiled block" true
    (Cpu.block_invalidations cpu > inval0);
  check int "program unperturbed" 1 (reg m 1)

let test_jit_breakpoint_patch () =
  (* A BRK planted into an already-compiled block (the debug stub's
     plant idiom) must invalidate the block and fire on the next pass —
     never stay buried under stale threaded code. *)
  let m = fresh_machine () in
  let mem = Machine.mem m and cpu = Machine.cpu m in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x2000);
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 0);
  Asm.label a "loop";
  Asm.addi a 2 2 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Asm.label a "handler";
  Asm.movi a 9 (Asm.imm 1);
  Asm.hlt a;
  let p = Asm.assemble a in
  Machine.boot m p ~entry:0x1000;
  write_gate mem ~table:0x2000 ~vector:Isa.vec_breakpoint
    ~handler:(Asm.symbol p "handler") ~ring:0 ~dpl:0;
  Machine.run_for m ~cycles:20_000L (* compile + warm the loop block *);
  check bool "loop block compiled" true (Cpu.blocks_compiled cpu > 0);
  check bool "not yet trapped" true (reg m 9 = 0);
  let inval0 = Cpu.block_invalidations cpu in
  Isa.write mem (Asm.symbol p "loop") Isa.Brk;
  Machine.run_for m ~cycles:20_000L;
  check int "breakpoint handler ran" 1 (reg m 9);
  check bool "halted in handler" true (Cpu.halted cpu);
  check bool "plant invalidated compiled text" true
    (Cpu.block_invalidations cpu > inval0);
  check bool "trap fell back to the interpreter" true
    (Cpu.block_fallbacks cpu > 0)

let test_jit_set_ptb_remap () =
  (* Same virtual pc, different physical frame after a PTB reload: the
     physically-keyed block cache must compile and run the new frame's
     code, not replay the old frame's block. *)
  let m = fresh_machine () in
  let mem = Machine.mem m and cpu = Machine.cpu m in
  build_identity_tables mem ~pd:0x40000 ~pt:0x41000 ~mbytes:1 ~user:false;
  let vaddr = 0x8000 in
  let pte_addr = 0x41000 + (4 * (vaddr / 4096)) in
  let place frame value =
    Phys_mem.write_u32 mem pte_addr
      (Mmu.make_pte ~frame ~writable:true ~user:false);
    Isa.write mem frame (Isa.Movi (1, value));
    Isa.write mem (frame + Isa.width) (Isa.Jmp vaddr)
  in
  place 0x10000 11;
  Cpu.set_ptb cpu 0x40000;
  Cpu.set_pc cpu vaddr;
  Cpu.set_halted cpu false;
  Machine.run_for m ~cycles:20_000L;
  check int "old frame's code" 11 (reg m 1);
  check bool "blocks compiled" true (Cpu.blocks_compiled cpu > 0);
  place 0x11000 22;
  Cpu.set_ptb cpu 0x40000 (* the guest's lptb remap idiom *);
  Machine.run_for m ~cycles:20_000L;
  check int "new frame's code" 22 (reg m 1)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmm_hw"
    [
      ( "word",
        [
          Alcotest.test_case "wrapping" `Quick test_word_wrap;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "comparisons" `Quick test_word_compare;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "checksum" `Quick test_mem_checksum_matches_rfc;
          Alcotest.test_case "checksum odd" `Quick test_mem_checksum_odd_len;
        ] );
      ( "isa",
        [
          Alcotest.test_case "decode error" `Quick test_isa_decode_error;
          Alcotest.test_case "privileged set" `Quick test_isa_privileged_set;
        ]
        @ qsuite [ prop_isa_roundtrip ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "data/align" `Quick test_asm_data_and_align;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "arithmetic" `Quick test_cpu_arith;
          Alcotest.test_case "branches" `Quick test_cpu_branches;
          Alcotest.test_case "call/stack" `Quick test_cpu_call_stack;
          Alcotest.test_case "memory" `Quick test_cpu_memory;
          Alcotest.test_case "copy/csum" `Quick test_cpu_copy_csum;
          Alcotest.test_case "rdtsc" `Quick test_cpu_rdtsc_monotonic;
          Alcotest.test_case "software interrupt" `Quick
            test_cpu_software_interrupt;
          Alcotest.test_case "ring3 privilege fault" `Quick
            test_cpu_privilege_fault_ring3;
          Alcotest.test_case "stack switch" `Quick
            test_cpu_stack_switch_on_ring_change;
          Alcotest.test_case "int gate dpl" `Quick test_cpu_int_gate_dpl_enforced;
          Alcotest.test_case "hardware interrupt" `Quick
            test_cpu_hardware_interrupt;
          Alcotest.test_case "IF masks" `Quick test_cpu_if_masks_interrupts;
          Alcotest.test_case "page fault delivery" `Quick
            test_cpu_page_fault_delivery;
          Alcotest.test_case "io permission bitmap" `Quick
            test_io_permission_bitmap;
          Alcotest.test_case "fetch across pages" `Quick
            test_cpu_fetch_across_page_boundary;
          Alcotest.test_case "unaligned u32 across pages" `Quick
            test_cpu_unaligned_u32_across_pages;
          Alcotest.test_case "copy across pages" `Quick
            test_cpu_copy_across_pages;
          Alcotest.test_case "iret with TF" `Quick
            test_cpu_iret_to_ring3_with_pending_step;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "translate + bits" `Quick test_mmu_translate_and_bits;
          Alcotest.test_case "faults" `Quick test_mmu_faults;
          Alcotest.test_case "probe" `Quick test_mmu_probe;
          Alcotest.test_case "write hit caches dirty" `Quick
            test_mmu_write_hit_dirty_cached;
        ] );
      ( "pic",
        [
          Alcotest.test_case "priority/eoi" `Quick test_pic_priority_and_eoi;
          Alcotest.test_case "preemption" `Quick
            test_pic_higher_priority_preempts_service;
          Alcotest.test_case "mask" `Quick test_pic_mask;
          Alcotest.test_case "intr line" `Quick test_pic_intr_line_callback;
        ] );
      ("pit", [ Alcotest.test_case "periodic rate" `Quick test_pit_periodic ]);
      ( "uart",
        [
          Alcotest.test_case "tx wire" `Quick test_uart_wire;
          Alcotest.test_case "rx irq" `Quick test_uart_rx_irq;
        ] );
      ( "scsi",
        [
          Alcotest.test_case "read + pattern" `Quick test_scsi_read;
          Alcotest.test_case "write readback" `Quick test_scsi_write_readback;
          Alcotest.test_case "streaming rate" `Quick test_scsi_streaming_rate;
        ] );
      ( "nic",
        [
          Alcotest.test_case "tx" `Quick test_nic_tx;
          Alcotest.test_case "wire rate" `Quick test_nic_wire_rate;
          Alcotest.test_case "clear_on_frame" `Quick test_nic_clear_on_frame;
          Alcotest.test_case "rx" `Quick test_nic_rx;
        ] );
      ( "io_bus",
        [
          Alcotest.test_case "unclaimed" `Quick test_io_bus_unclaimed;
          Alcotest.test_case "conflict" `Quick test_io_bus_conflict;
        ] );
      ( "machine",
        [
          Alcotest.test_case "idle accounting" `Quick test_machine_idle_vs_busy;
          Alcotest.test_case "busy loop" `Quick test_machine_busy_loop;
          Alcotest.test_case "determinism" `Quick test_machine_determinism;
        ] );
      ( "icache",
        [
          Alcotest.test_case "self-modifying code" `Quick
            test_icache_self_modifying;
          Alcotest.test_case "breakpoint plant/remove" `Quick
            test_icache_breakpoint_patch;
          Alcotest.test_case "dma invalidation" `Quick
            test_icache_dma_invalidation;
          Alcotest.test_case "set_ptb remap" `Quick test_icache_set_ptb_remap;
          Alcotest.test_case "fetch beyond RAM" `Quick
            test_fetch_beyond_ram_machine_check;
        ] );
      ( "jit",
        [
          Alcotest.test_case "compiles, hits, chains" `Quick
            test_jit_compiles_and_chains;
          Alcotest.test_case "on/off bit-identical" `Quick
            test_jit_on_off_identical;
          Alcotest.test_case "self-modifying code" `Quick
            test_jit_self_modifying;
          Alcotest.test_case "dma invalidation" `Quick
            test_jit_dma_invalidation;
          Alcotest.test_case "breakpoint plant" `Quick
            test_jit_breakpoint_patch;
          Alcotest.test_case "set_ptb remap" `Quick test_jit_set_ptb_remap;
        ] );
      ( "properties",
        qsuite [ prop_mmu_probe_agrees_with_translate; prop_disassembly_roundtrip ] );
    ]
