(* Stability suite: the paper's robustness claim under adversarial
   conditions.  For every fault class — lossy/corrupting/duplicating/
   delaying debug wire, wild guest jumps and stores, clobbered interrupt
   table or page-table base, interrupt storms, a wedged guest, failing
   disks, a stalled NIC — the guest may crash, but the monitor and its
   debug stub must survive: afterwards the host can still set a
   breakpoint, read memory and resume.  Every run is deterministic in the
   seed printed on entry, so a failure replays exactly. *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Chaos = Vmm_fault.Chaos
module Plan = Vmm_fault.Plan
module Rng = Vmm_sim.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A fast wire keeps the suite quick without changing any semantics: all
   timeouts scale with the same cost table. *)
let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let cyc s = Costs.cycles_of_seconds test_costs s

let rig ~seed =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let plan = Plan.create ~seed ~engine:(Machine.engine m) in
  let chaos = Plan.chaos plan in
  let session =
    Session.attach ~wrap_to_target:(Chaos.wrap chaos)
      ~wrap_to_host:(Chaos.wrap chaos) m
  in
  (m, mon, plan, session)

let is_link = function
  | Plan.Link_drop | Plan.Link_corrupt | Plan.Link_dup | Plan.Link_delay ->
    true
  | _ -> false

(* After the fault window the wire is clean again, so recovery is
   deterministic: at most a few Resync exchanges. *)
let recover session =
  let alive () = Session.read_registers ~timeout_s:1.0 session <> None in
  let rec go tries = alive () || (tries > 0 && (ignore (Session.reconnect ~timeout_s:1.0 session); go (tries - 1))) in
  go 5

let stability cls () =
  let seed = Int64.of_int (0x5EED00 + Hashtbl.hash (Plan.name cls) mod 0xFFFF) in
  Printf.printf "[stability] %-18s seed=%Ld\n%!" (Plan.name cls) seed;
  let m, mon, plan, session = rig ~seed in
  check bool "healthy before fault" true
    (Session.read_registers session <> None);
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon cls ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  (* Drive load through the fault.  Link classes get live traffic inside
     the window (that is what they corrupt); the rest just need sim time
     for the fault to land and do its damage. *)
  if is_link cls then
    for _ = 1 to 12 do
      ignore (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry ~len:32);
      if not (Session.link_up session) then
        ignore (Session.reconnect ~timeout_s:0.5 session)
    done
  else Machine.run_seconds m 0.1;
  (* Past the window: the wire is quiet, the guest may be dead. *)
  check bool "link recovered" true (recover session);
  (* The paper's claim: whatever happened, debugging still works. *)
  check bool "insert breakpoint" true
    (Session.insert_breakpoint session Kernel.entry);
  (match Session.read_memory session ~addr:Kernel.entry ~len:16 with
   | Some data -> check int "memory read length" 16 (String.length data)
   | None -> Alcotest.fail "memory read failed after fault");
  check bool "remove breakpoint" true
    (Session.remove_breakpoint session Kernel.entry);
  Session.continue_ session;
  check bool "target answers after resume" true
    (Session.is_running session <> None);
  (* The monitor survived and counted what happened to it. *)
  let stats = Monitor.stats mon in
  if not (is_link cls) && cls <> Plan.Scsi_error && cls <> Plan.Nic_stall then
    check bool "fault was injected" true (stats.Monitor.injected_faults >= 1)

(* Device-fault classes additionally check the device-side counters the
   stability run relies on. *)

let test_scsi_error_counted () =
  let seed = 77L in
  let m, mon, plan, _session = rig ~seed in
  let scsi = Machine.scsi m in
  let before = Scsi.read_errors scsi in
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon Plan.Scsi_error ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  Machine.run_seconds m 0.2;
  check bool "read errors surfaced" true (Scsi.read_errors scsi > before)

let test_nic_stall_counted () =
  let seed = 78L in
  let m, mon, plan, _session = rig ~seed in
  let nic = Machine.nic m in
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon Plan.Nic_stall ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  Machine.run_seconds m 0.1;
  check int "stall recorded" 1 (Nic.tx_stalls nic)

(* Reconnection semantics on a healthy wire: reset + Resync is cheap and
   idempotent. *)
let test_reconnect_idempotent () =
  let _, _, _, session = rig ~seed:79L in
  check bool "first reconnect" true (Session.reconnect session);
  check bool "second reconnect" true (Session.reconnect session);
  check bool "still debuggable" true
    (Session.read_registers session <> None);
  check bool "resets counted" true
    ((Session.link_stats session).Vmm_proto.Reliable.link_resets >= 2)

(* A deliberately hostile wire must eventually yield Link_down (bounded
   retries — no hang), and reconnecting afterwards must succeed. *)
(* Loss only on the target->host direction: the stub receives the
   command, retries its reply into the void, exhausts its budget and
   parks the guest; the host independently concludes the same from the
   missing ack. *)
let test_link_down_and_back () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let chaos =
    Chaos.create ~engine:(Machine.engine m) ~rng:(Rng.create ~seed:80L) ()
  in
  let session = Session.attach ~wrap_to_host:(Chaos.wrap chaos) m in
  check bool "healthy first" true (Session.read_registers session <> None);
  Chaos.set_profile chaos { Chaos.quiet with Chaos.drop_p = 1.0 };
  Chaos.set_active chaos true;
  (match Session.read_memory ~timeout_s:60.0 session ~addr:Kernel.entry ~len:8 with
   | Some _ -> Alcotest.fail "read should not survive a 100%-loss wire"
   | None -> ());
  check bool "link declared down" false (Session.link_up session);
  check int "one link-down event" 1 (Session.link_downs session);
  (* Let the stub finish exhausting its own retry budget. *)
  Machine.run_seconds m 5.0;
  check bool "stub declared down too" true (Core.Stub.link_downs (Monitor.stub mon) >= 1);
  (* While nobody could talk to it, the stub parked the guest: the
     reconnectable "attached, guest stopped" state. *)
  check bool "stub parked the guest" true (Core.Stub.stopped (Monitor.stub mon));
  Chaos.set_active chaos false;
  check bool "reconnect after down" true (Session.reconnect session);
  check bool "debuggable again" true (Session.read_registers session <> None);
  (* The parked guest resumes and the session keeps answering. *)
  Session.continue_ session;
  check bool "target answers after resume" true
    (Session.is_running session <> None)

(* Regression: replies pair with commands by order, so an abandoned wait
   must not shift the pairing.  A guest fault mid-traffic queues a stop
   notification; [is_running] answers from it, leaving its own '?' reply
   in flight.  That late reply must be discarded — every later transact
   still gets its own reply, and reconnect finds the real resync ack. *)
let test_stale_reply_no_desync () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let session = Session.attach m in
  let storm iter =
    let now = Machine.now m in
    ignore
      (Vmm_sim.Engine.at (Machine.engine m)
         ~time:(Int64.add now (cyc 0.002))
         (fun () -> Monitor.inject mon (Monitor.Wild_jump 0x0F00_1234)));
    for i = 1 to 8 do
      check bool
        (Printf.sprintf "%s read %d" iter i)
        true
        (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry ~len:32
        <> None)
    done;
    Machine.run_seconds m 0.05;
    check bool (iter ^ " regs") true
      (Session.read_registers ~timeout_s:1.0 session <> None);
    Session.continue_ session;
    (* Answers from the queued stop notification, abandoning the '?'
       reply — the trigger for the historical desync. *)
    check bool (iter ^ " is_running answers") true
      (Session.is_running ~timeout_s:1.0 session <> None)
  in
  storm "first";
  storm "second";
  check bool "reads still paired" true
    (Session.read_memory ~timeout_s:1.0 session ~addr:Kernel.entry ~len:32
    <> None);
  check bool "reconnect on healthy link" true
    (Session.reconnect ~timeout_s:1.0 session);
  check bool "debuggable after resync" true
    (Session.read_registers ~timeout_s:1.0 session <> None)

let () =
  let stability_cases =
    List.map
      (fun cls ->
        Alcotest.test_case (Plan.name cls) `Quick (fun () -> stability cls ()))
      Plan.all
  in
  Alcotest.run "vmm_fault"
    [
      ("stability", stability_cases);
      ( "fault-machinery",
        [
          Alcotest.test_case "scsi errors counted" `Quick test_scsi_error_counted;
          Alcotest.test_case "nic stall counted" `Quick test_nic_stall_counted;
          Alcotest.test_case "reconnect idempotent" `Quick test_reconnect_idempotent;
          Alcotest.test_case "link down and back" `Quick test_link_down_and_back;
          Alcotest.test_case "stale reply no desync" `Quick
            test_stale_reply_no_desync;
        ] );
    ]
