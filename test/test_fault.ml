(* Stability suite: the paper's robustness claim under adversarial
   conditions.  For every fault class — lossy/corrupting/duplicating/
   delaying debug wire, wild guest jumps and stores, clobbered interrupt
   table or page-table base, interrupt storms, a wedged guest, failing
   disks, a stalled NIC — the guest may crash, but the monitor and its
   debug stub must survive: afterwards the host can still set a
   breakpoint, read memory and resume.  Every run is deterministic in the
   seed printed on entry, so a failure replays exactly. *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Scsi = Vmm_hw.Scsi
module Nic = Vmm_hw.Nic
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Chaos = Vmm_fault.Chaos
module Plan = Vmm_fault.Plan
module Rng = Vmm_sim.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A fast wire keeps the suite quick without changing any semantics: all
   timeouts scale with the same cost table. *)
let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let cyc s = Costs.cycles_of_seconds test_costs s

let rig ~seed =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let plan = Plan.create ~seed ~engine:(Machine.engine m) in
  let chaos = Plan.chaos plan in
  let session =
    Session.attach ~wrap_to_target:(Chaos.wrap chaos)
      ~wrap_to_host:(Chaos.wrap chaos) m
  in
  (m, mon, plan, session)

let is_link = function
  | Plan.Link_drop | Plan.Link_corrupt | Plan.Link_dup | Plan.Link_delay ->
    true
  | _ -> false

(* After the fault window the wire is clean again, so recovery is
   deterministic: at most a few Resync exchanges. *)
let recover session =
  let alive () = Session.read_registers ~timeout_s:1.0 session <> None in
  let rec go tries = alive () || (tries > 0 && (ignore (Session.reconnect ~timeout_s:1.0 session); go (tries - 1))) in
  go 5

let stability cls () =
  let seed = Int64.of_int (0x5EED00 + Hashtbl.hash (Plan.name cls) mod 0xFFFF) in
  Printf.printf "[stability] %-18s seed=%Ld\n%!" (Plan.name cls) seed;
  let m, mon, plan, session = rig ~seed in
  check bool "healthy before fault" true
    (Session.read_registers session <> None);
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon cls ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  (* Drive load through the fault.  Link classes get live traffic inside
     the window (that is what they corrupt); the rest just need sim time
     for the fault to land and do its damage. *)
  if is_link cls then
    for _ = 1 to 12 do
      ignore (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry ~len:32);
      if not (Session.link_up session) then
        ignore (Session.reconnect ~timeout_s:0.5 session)
    done
  else Machine.run_seconds m 0.1;
  (* Past the window: the wire is quiet, the guest may be dead. *)
  check bool "link recovered" true (recover session);
  (* The paper's claim: whatever happened, debugging still works. *)
  check bool "insert breakpoint" true
    (Session.insert_breakpoint session Kernel.entry);
  (match Session.read_memory session ~addr:Kernel.entry ~len:16 with
   | Some data -> check int "memory read length" 16 (String.length data)
   | None -> Alcotest.fail "memory read failed after fault");
  check bool "remove breakpoint" true
    (Session.remove_breakpoint session Kernel.entry);
  Session.continue_ session;
  check bool "target answers after resume" true
    (Session.is_running session <> None);
  (* The monitor survived and counted what happened to it. *)
  let stats = Monitor.stats mon in
  if not (is_link cls) && cls <> Plan.Scsi_error && cls <> Plan.Nic_stall then
    check bool "fault was injected" true (stats.Monitor.injected_faults >= 1)

(* Device-fault classes additionally check the device-side counters the
   stability run relies on. *)

let test_scsi_error_counted () =
  let seed = 77L in
  let m, mon, plan, _session = rig ~seed in
  let scsi = Machine.scsi m in
  let before = Scsi.read_errors scsi in
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon Plan.Scsi_error ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  Machine.run_seconds m 0.2;
  check bool "read errors surfaced" true (Scsi.read_errors scsi > before)

let test_nic_stall_counted () =
  let seed = 78L in
  let m, mon, plan, _session = rig ~seed in
  let nic = Machine.nic m in
  let now = Machine.now m in
  Plan.arm plan ~monitor:mon Plan.Nic_stall ~at:(Int64.add now (cyc 0.002))
    ~until:(Int64.add now (cyc 0.08));
  Machine.run_seconds m 0.1;
  check int "stall recorded" 1 (Nic.tx_stalls nic)

(* Reconnection semantics on a healthy wire: reset + Resync is cheap and
   idempotent. *)
let test_reconnect_idempotent () =
  let _, _, _, session = rig ~seed:79L in
  check bool "first reconnect" true (Session.reconnect session);
  check bool "second reconnect" true (Session.reconnect session);
  check bool "still debuggable" true
    (Session.read_registers session <> None);
  check bool "resets counted" true
    ((Session.link_stats session).Vmm_proto.Reliable.link_resets >= 2)

(* A deliberately hostile wire must eventually yield Link_down (bounded
   retries — no hang), and reconnecting afterwards must succeed. *)
(* Loss only on the target->host direction: the stub receives the
   command, retries its reply into the void, exhausts its budget and
   parks the guest; the host independently concludes the same from the
   missing ack. *)
let test_link_down_and_back () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let chaos =
    Chaos.create ~engine:(Machine.engine m) ~rng:(Rng.create ~seed:80L) ()
  in
  let session = Session.attach ~wrap_to_host:(Chaos.wrap chaos) m in
  check bool "healthy first" true (Session.read_registers session <> None);
  Chaos.set_profile chaos { Chaos.quiet with Chaos.drop_p = 1.0 };
  Chaos.set_active chaos true;
  (match Session.read_memory ~timeout_s:60.0 session ~addr:Kernel.entry ~len:8 with
   | Some _ -> Alcotest.fail "read should not survive a 100%-loss wire"
   | None -> ());
  check bool "link declared down" false (Session.link_up session);
  check int "one link-down event" 1 (Session.link_downs session);
  (* Let the stub finish exhausting its own retry budget. *)
  Machine.run_seconds m 5.0;
  check bool "stub declared down too" true (Core.Stub.link_downs (Monitor.stub mon) >= 1);
  (* While nobody could talk to it, the stub parked the guest: the
     reconnectable "attached, guest stopped" state. *)
  check bool "stub parked the guest" true (Core.Stub.stopped (Monitor.stub mon));
  Chaos.set_active chaos false;
  check bool "reconnect after down" true (Session.reconnect session);
  check bool "debuggable again" true (Session.read_registers session <> None);
  (* The parked guest resumes and the session keeps answering. *)
  Session.continue_ session;
  check bool "target answers after resume" true
    (Session.is_running session <> None)

(* Regression: replies pair with commands by order, so an abandoned wait
   must not shift the pairing.  A guest fault mid-traffic queues a stop
   notification; [is_running] answers from it, leaving its own '?' reply
   in flight.  That late reply must be discarded — every later transact
   still gets its own reply, and reconnect finds the real resync ack. *)
let test_stale_reply_no_desync () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let session = Session.attach m in
  let storm iter =
    let now = Machine.now m in
    ignore
      (Vmm_sim.Engine.at (Machine.engine m)
         ~time:(Int64.add now (cyc 0.002))
         (fun () -> Monitor.inject mon (Monitor.Wild_jump 0x0F00_1234)));
    for i = 1 to 8 do
      check bool
        (Printf.sprintf "%s read %d" iter i)
        true
        (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry ~len:32
        <> None)
    done;
    Machine.run_seconds m 0.05;
    check bool (iter ^ " regs") true
      (Session.read_registers ~timeout_s:1.0 session <> None);
    Session.continue_ session;
    (* Answers from the queued stop notification, abandoning the '?'
       reply — the trigger for the historical desync. *)
    check bool (iter ^ " is_running answers") true
      (Session.is_running ~timeout_s:1.0 session <> None)
  in
  storm "first";
  storm "second";
  check bool "reads still paired" true
    (Session.read_memory ~timeout_s:1.0 session ~addr:Kernel.entry ~len:32
    <> None);
  check bool "reconnect on healthy link" true
    (Session.reconnect ~timeout_s:1.0 session);
  check bool "debuggable after resync" true
    (Session.read_registers ~timeout_s:1.0 session <> None)

(* -- Plan arming surface: overlap, disarm, introspection -- *)

let test_plan_disarm_and_overlap () =
  let m, mon, plan, session = rig ~seed:81L in
  let now = Machine.now m in
  let at = Int64.add now (cyc 0.002) and until = Int64.add now (cyc 0.5) in
  Plan.arm plan ~monitor:mon Plan.Link_drop ~at ~until;
  Plan.arm plan ~monitor:mon Plan.Link_delay ~at ~until;
  check (Alcotest.list Alcotest.string) "both armings live"
    [ Plan.name Plan.Link_drop; Plan.name Plan.Link_delay ]
    (List.map Plan.name (Plan.armed_classes plan));
  (* Re-arming a live class replaces it (last-writer-wins), never stacks. *)
  Plan.arm plan ~monitor:mon Plan.Link_drop ~at ~until;
  check int "still two armings" 2 (List.length (Plan.armed_classes plan));
  check bool "disarm hits the live arming" true
    (Plan.disarm plan Plan.Link_drop);
  check bool "second disarm is a no-op" false
    (Plan.disarm plan Plan.Link_drop);
  check (Alcotest.list Alcotest.string) "only delay remains"
    [ Plan.name Plan.Link_delay ]
    (List.map Plan.name (Plan.armed_classes plan));
  check bool "disarm the rest" true (Plan.disarm plan Plan.Link_delay);
  check int "disarms counted (incl. the replacement)" 3 (Plan.disarms plan);
  (* Everything was disarmed before the window opened: the wire stays
     clean through what would have been the fault window. *)
  for _ = 1 to 5 do
    check bool "clean read" true
      (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry ~len:32
      <> None)
  done;
  check int "no retransmissions" 0 (Session.retransmissions session)

(* -- Lifecycle: watchdog break-in, crash containment, warm restart -- *)

module Command = Vmm_proto.Command

let test_watchdog_breakin () =
  let m, mon, _plan, session = rig ~seed:82L in
  Monitor.watchdog_start mon;
  Monitor.inject mon Monitor.Guest_wedge;
  Machine.run_seconds m 0.02;
  check bool "break-in counted" true
    ((Monitor.stats mon).Monitor.wedge_breakins >= 1);
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Wedged _) -> ()
   | _ -> Alcotest.fail "expected a wedged (T07) stop");
  match Session.query_watchdog session with
  | Some (_, fields) ->
    check Alcotest.string "watchdog running" "on"
      (List.assoc "watchdog" fields);
    check bool "break-ins reported" true
      (int_of_string (List.assoc "breakins" fields) >= 1);
    check bool "wedge context recorded" true (List.mem_assoc "wedge_pc" fields)
  | None -> Alcotest.fail "no qW reply"

let test_crash_containment () =
  let m, mon, _plan, session = rig ~seed:83L in
  Monitor.inject mon Monitor.Iht_clobber;
  Machine.run_seconds m 0.02;
  check bool "guest crashed" true (Monitor.crashed mon);
  (* Quarantined, not dead: the stub answers everything. *)
  check bool "registers readable" true (Session.read_registers session <> None);
  check bool "memory readable" true
    (Session.read_memory session ~addr:Kernel.entry ~len:16 <> None);
  (match Session.query_watchdog session with
   | Some (_, fields) ->
     check Alcotest.string "lifecycle reported" "crashed"
       (List.assoc "lifecycle" fields);
     check bool "cause recorded" true (List.mem_assoc "cause" fields)
   | None -> Alcotest.fail "no qW reply");
  (* Resume is refused (E03): the target stays stopped. *)
  Session.continue_ session;
  check (Alcotest.option bool) "still stopped" (Some false)
    (Session.is_running session);
  ignore (Session.step ~timeout_s:1.0 session);
  check (Alcotest.option bool) "still stopped after step" (Some false)
    (Session.is_running session);
  (* Both refusals (E03 to [c] and to [s]) are absorbed by the
     fire-and-forget discard slots and tallied, never shifting the
     command/reply pairing. *)
  check bool "refusals counted" true (Session.unsolicited_errors session >= 2);
  (* The only way out is a warm restart. *)
  (match Session.restart session with
   | Session.Restarted -> ()
   | _ -> Alcotest.fail "restart should succeed");
  check bool "healthy after restart" false (Monitor.crashed mon);
  Machine.run_seconds m 0.02;
  check (Alcotest.option bool) "running again" (Some true)
    (Session.is_running session)

let test_warm_restart_preserves_session () =
  let m, mon, _plan, session = rig ~seed:84L in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  let target = Vmm_hw.Asm.symbol program "scsi_handler" in
  check bool "insert" true (Session.insert_breakpoint session target);
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break a) -> check int "hit before restart" target a
   | _ -> Alcotest.fail "expected a breakpoint hit");
  (match Session.restart session with
   | Session.Restarted -> ()
   | _ -> Alcotest.fail "restart failed");
  check int "restart counted" 1 (Monitor.stats mon).Monitor.restarts;
  (* Same session, same reliable link — no reconnect needed. *)
  check bool "registers after restart" true
    (Session.read_registers session <> None);
  check int "no link resets" 0
    (Session.link_stats session).Vmm_proto.Reliable.link_resets;
  (* The planted breakpoint was re-applied over the restored image. *)
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break a) -> check int "hit again on fresh boot" target a
   | _ -> Alcotest.fail "breakpoint should survive the restart");
  check bool "remove" true (Session.remove_breakpoint session target);
  Session.continue_ session;
  Machine.run_seconds m 0.1;
  let c = Kernel.read_counters (Machine.mem m) program in
  check bool "workload streams after restart" true (c.Kernel.frames_sent > 0)

(* Warm restart really is a reboot: the same workload slice after a
   restart produces the same telemetry as a fresh boot (modulo the
   sub-slice phase at which the restart lands). *)
let test_restart_matches_fresh_boot () =
  let close_enough label a b =
    let tol = max 3 (a / 10) in
    check bool (Printf.sprintf "%s: fresh=%d restarted=%d" label a b) true
      (abs (a - b) <= tol)
  in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  let reference =
    let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
    let mon = Monitor.install m in
    Monitor.boot_guest mon program ~entry:Kernel.entry;
    Machine.run_seconds m 0.25;
    Kernel.read_counters (Machine.mem m) program
  in
  let m, _mon, _plan, session = rig ~seed:85L in
  Machine.run_seconds m 0.1;
  (match Session.restart session with
   | Session.Restarted -> ()
   | _ -> Alcotest.fail "restart failed");
  Machine.run_seconds m 0.25;
  let after = Kernel.read_counters (Machine.mem m) program in
  close_enough "ticks" reference.Kernel.ticks after.Kernel.ticks;
  close_enough "segments done" reference.Kernel.segments_done
    after.Kernel.segments_done;
  close_enough "frames sent" reference.Kernel.frames_sent
    after.Kernel.frames_sent

let () =
  let stability_cases =
    List.map
      (fun cls ->
        Alcotest.test_case (Plan.name cls) `Quick (fun () -> stability cls ()))
      Plan.all
  in
  Alcotest.run "vmm_fault"
    [
      ("stability", stability_cases);
      ( "fault-machinery",
        [
          Alcotest.test_case "scsi errors counted" `Quick test_scsi_error_counted;
          Alcotest.test_case "nic stall counted" `Quick test_nic_stall_counted;
          Alcotest.test_case "reconnect idempotent" `Quick test_reconnect_idempotent;
          Alcotest.test_case "link down and back" `Quick test_link_down_and_back;
          Alcotest.test_case "stale reply no desync" `Quick
            test_stale_reply_no_desync;
          Alcotest.test_case "plan disarm + overlap" `Quick
            test_plan_disarm_and_overlap;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "watchdog break-in" `Quick test_watchdog_breakin;
          Alcotest.test_case "crash containment" `Quick
            test_crash_containment;
          Alcotest.test_case "warm restart preserves session" `Quick
            test_warm_restart_preserves_session;
          Alcotest.test_case "restart matches fresh boot" `Quick
            test_restart_matches_fresh_boot;
        ] );
    ]
